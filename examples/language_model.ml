(* Language modeling (§6.4 in miniature): an unrolled LSTM over a
   Zipf-distributed synthetic token stream, with a sharded embedding
   layer (§4.2's Part -> Gather -> Stitch composition) and both softmax
   strategies:

   - full softmax over the whole vocabulary, and
   - sampled softmax over the true class plus random negatives,

   trained for a fixed wall-clock budget each so the words/sec advantage
   of sampling is visible even at laptop scale.

     dune exec examples/language_model.exe *)

open Octf_tensor
module B = Octf.Builder
module Vs = Octf_nn.Var_store

let vocab = 512
let dim = 24
let unroll = 6
let batch = 8

type model = {
  inputs : B.output;
  targets : B.output;
  loss : B.output;
  train_op : B.output;
  init : B.output;
  graph : Octf.Graph.t;
}

let build ~sampled () =
  let b = B.create () in
  let store = Vs.create b in
  let inputs =
    B.placeholder b ~name:"inputs" ~shape:[| batch; unroll |] Dtype.I32
  in
  let targets =
    B.placeholder b ~name:"targets" ~shape:[| batch; unroll |] Dtype.I32
  in
  let embedding =
    Octf_nn.Embedding.create store ~name:"embedding" ~vocab ~dim
      ~num_shards:4 ()
  in
  let cell = Octf_nn.Lstm.cell store ~name:"lstm" ~input_dim:dim ~units:dim in
  (* Slice out each timestep's token column, embed, and unroll. *)
  let step_input t =
    let col =
      B.slice b inputs ~begin_:[| 0; t |] ~size:[| batch; 1 |]
    in
    let ids = B.reshape b col [| batch |] in
    Octf_nn.Embedding.lookup embedding b ids
  in
  let xs = List.init unroll step_input in
  let hs = Octf_nn.Lstm.unroll cell b ~xs ~batch in
  let softmax_w =
    Vs.get store ~init:(Octf_nn.Init.uniform ~lo:(-0.08) ~hi:0.08 ())
      ~name:"softmax_w" [| vocab; dim |]
  in
  let step_loss t h =
    let col = B.slice b targets ~begin_:[| 0; t |] ~size:[| batch; 1 |] in
    let labels = B.reshape b col [| batch |] in
    if sampled then
      Octf_nn.Sampled_softmax.sampled_softmax_loss b ~weights:softmax_w.Vs.read
        ~hidden:h ~labels ~num_sampled:32 ~num_classes:vocab
    else
      Octf_nn.Sampled_softmax.full_softmax_loss b ~weights:softmax_w.Vs.read
        ~hidden:h ~labels ~num_classes:vocab
  in
  let losses = List.mapi step_loss hs in
  let loss =
    B.div b (B.add_n b losses) (B.const_f b (float_of_int unroll))
  in
  let train_op =
    Octf_train.Optimizer.minimize store
      ~algorithm:Octf_train.Optimizer.adagrad_default ~clip_norm:5.0 ~lr:0.3
      ~loss ()
  in
  { inputs; targets; loss; train_op; init = Vs.init_op store; graph = B.graph b }

let train name model budget_s =
  let session = Octf.Session.create model.graph in
  Octf.Session.run_unit session [ model.init ];
  let rng = Rng.create 23 in
  let stream =
    Octf_data.Synthetic.token_stream rng ~vocab ~length:20_000 ~zipf_s:1.2
  in
  let t0 = Unix.gettimeofday () in
  let steps = ref 0 and last_loss = ref Float.nan in
  let first_loss = ref Float.nan in
  while Unix.gettimeofday () -. t0 < budget_s do
    let xs, ys =
      Octf_data.Synthetic.lm_batch rng ~stream ~batch ~unroll
        ~position:(!steps * batch)
    in
    let options =
      Octf.Session.Run_options.v
        ~feeds:[ (model.inputs, xs); (model.targets, ys) ]
        ~targets:[ model.train_op ] ()
    in
    (match Octf.Session.run_with_metadata ~options session [ model.loss ] with
    | [ l ], _ ->
        last_loss := Tensor.flat_get_f l 0;
        if Float.is_nan !first_loss then first_loss := !last_loss
    | _ -> assert false);
    incr steps
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let words = float_of_int (!steps * batch * unroll) in
  Printf.printf
    "%-16s %4d steps in %.1fs -> %7.0f words/sec, loss %.3f -> %.3f\n%!" name
    !steps dt (words /. dt) !first_loss !last_loss

let () =
  Printf.printf "vocabulary %d, %d-d embedding over 4 shards, %d-step LSTM\n%!"
    vocab dim unroll;
  train "full softmax" (build ~sampled:false ()) 6.0;
  train "sampled softmax" (build ~sampled:true ()) 6.0;
  Printf.printf
    "(sampled softmax computes a %d-class problem instead of %d: the \
     words/sec gap is the Figure 9 effect at laptop scale)\n"
    (1 + 32) vocab
