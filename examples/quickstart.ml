(* Quickstart: linear regression with the dataflow graph, automatic
   differentiation (§4.1) and an SGD update subgraph.

     dune exec examples/quickstart.exe

   Builds y = x·w + b, minimizes mean squared error against synthetic
   data generated from known weights, and prints the recovered
   parameters. *)

open Octf_tensor
module B = Octf.Builder
module Vs = Octf_nn.Var_store

let () =
  let true_w = [| 2.0; -3.4; 0.7 |] and true_b = 4.2 in
  let dim = Array.length true_w in
  let batch = 64 in

  (* 1. Build the dataflow graph. *)
  let b = B.create () in
  let store = Vs.create b in
  let x = B.placeholder b ~name:"x" ~shape:[| batch; dim |] Dtype.F32 in
  let y = B.placeholder b ~name:"y" ~shape:[| batch; 1 |] Dtype.F32 in
  let w = Vs.get store ~init:Octf_nn.Init.zeros ~name:"w" [| dim; 1 |] in
  let bias = Vs.get store ~init:Octf_nn.Init.zeros ~name:"b" [| 1 |] in
  let predictions = B.add b (B.matmul b x w.Vs.read) bias.Vs.read in
  let loss = Octf_nn.Losses.mse b ~predictions ~targets:y in
  let train_op = Octf_train.Optimizer.minimize store ~lr:0.1 ~loss () in
  let init = Vs.init_op store in

  (* 2. Run it: one session, many steps on the cached subgraph. *)
  let session = Octf.Session.create (B.graph b) in
  Octf.Session.run_unit session [ init ];
  let rng = Rng.create 17 in
  for step = 0 to 200 do
    let xs, ys =
      Octf_data.Synthetic.regression_batch rng ~batch ~dim ~w:true_w
        ~bias:true_b ~noise:0.01
    in
    let feeds = [ (x, xs); (y, ys) ] in
    if step mod 50 = 0 then begin
      let options = Octf.Session.Run_options.v ~feeds () in
      match Octf.Session.run_with_metadata ~options session [ loss ] with
      | [ l ], md ->
          Printf.printf "step %3d  loss %.5f  (%.2f ms)\n%!" step
            (Tensor.flat_get_f l 0)
            (1000.0 *. md.Octf.Session.Run_metadata.wall_time)
      | _ -> assert false
    end;
    Octf.Session.run_unit ~feeds session [ train_op ]
  done;

  (* 3. Inspect the learned parameters. *)
  match Octf.Session.run session [ w.Vs.read; bias.Vs.read ] with
  | [ learned_w; learned_b ] ->
      Printf.printf "true w = [%s], b = %.2f\n"
        (String.concat "; "
           (Array.to_list (Array.map (Printf.sprintf "%.2f") true_w)))
        true_b;
      Printf.printf "learned w = [%s], b = %.2f\n"
        (String.concat "; "
           (Array.to_list
              (Array.map (Printf.sprintf "%.2f")
                 (Tensor.to_float_array learned_w))))
        (Tensor.flat_get_f learned_b 0)
  | _ -> assert false
