(* Image classification with a small convolutional network, the paper's
   Figure-1 training pipeline in miniature:

   - a queue-based input pipeline filled by preprocessing threads (§3.2),
   - a convnet built from unprivileged layer compositions,
   - Adam (a §4.1 user-level optimizer),
   - periodic user-level checkpointing and a restore-and-finetune pass
     (§4.3).

     dune exec examples/mnist_cnn.exe *)

open Octf_tensor
module B = Octf.Builder
module Vs = Octf_nn.Var_store
module L = Octf_nn.Layers

let classes = 4
let image_size = 12
let batch = 16

let build_model store pixels =
  let b = Vs.builder store in
  let conv1 =
    L.conv2d store ~activation:`Relu ~name:"conv1" ~in_channels:1
      ~out_channels:8 ~ksize:(3, 3) pixels
  in
  let pool1 = L.max_pool2d b ~ksize:(2, 2) conv1 in
  let conv2 =
    L.conv2d store ~activation:`Relu ~name:"conv2" ~in_channels:8
      ~out_channels:16 ~ksize:(3, 3) pool1
  in
  let pool2 = L.max_pool2d b ~ksize:(2, 2) conv2 in
  let side = image_size / 4 in
  let flat = L.flatten b ~features:(side * side * 16) pool2 in
  let hidden =
    L.dense store ~activation:`Relu ~name:"fc1"
      ~in_dim:(side * side * 16)
      ~out_dim:32 flat
  in
  L.dense store ~name:"logits" ~in_dim:32 ~out_dim:classes hidden

let () =
  let b = B.create () in
  let store = Vs.create b in

  (* Input pipeline: producers are placeholders fed by filler threads
     running concurrent enqueue steps; training steps dequeue. *)
  let pixels_in =
    B.placeholder b ~name:"pixels_in"
      ~shape:[| batch; image_size; image_size; 1 |]
      Dtype.F32
  in
  let labels_in =
    B.placeholder b ~name:"labels_in" ~shape:[| batch |] Dtype.I32
  in
  let pipeline =
    Octf_data.Pipeline.create b ~capacity:8 ~name:"input"
      ~producers:[ pixels_in; labels_in ] ()
  in
  let pixels, labels =
    match Octf_data.Pipeline.batch pipeline with
    | [ p; l ] -> (p, l)
    | _ -> assert false
  in

  let logits = build_model store pixels in
  let loss =
    Octf_nn.Losses.sparse_softmax_cross_entropy_mean b ~num_classes:classes
      ~logits ~labels
  in
  let accuracy = Octf_nn.Losses.accuracy b ~logits ~labels in
  let train_op =
    Octf_train.Optimizer.minimize store
      ~algorithm:Octf_train.Optimizer.adam_default ~lr:0.003 ~loss ()
  in
  let init = Vs.init_op store in
  let saver = Octf_train.Saver.create ~keep:2 store in

  let session = Octf.Session.create (B.graph b) in
  Octf.Session.run_unit session [ init ];

  (* Fillers: each call produces a fresh synthetic batch. *)
  let feed_rng = Rng.create 5 in
  let feed _i =
    let imgs =
      Octf_data.Synthetic.image_batch feed_rng ~batch ~size:image_size
        ~channels:1 ~classes
    in
    [ (pixels_in, imgs.Octf_data.Synthetic.pixels);
      (labels_in, imgs.Octf_data.Synthetic.labels) ]
  in
  let steps = 120 in
  let fillers =
    Octf_data.Pipeline.start_fillers pipeline session ~threads:2
      ~steps:((steps / 2) + 4) ~feed ()
  in

  let ckpt = Filename.temp_file "mnist_cnn" ".ckpt" in
  (* [train_op] is a target: executed for effect, not fetched. *)
  let step_options = Octf.Session.Run_options.v ~targets:[ train_op ] () in
  for step = 1 to steps do
    (match
       Octf.Session.run_with_metadata ~options:step_options session
         [ loss; accuracy ]
     with
    | [ l; a ], _ ->
        if step mod 20 = 0 then begin
          Printf.printf "step %3d  loss %.4f  accuracy %.2f\n%!" step
            (Tensor.flat_get_f l 0) (Tensor.flat_get_f a 0);
          Octf_train.Saver.save saver session ~path:ckpt
        end
    | _ -> assert false)
  done;
  Octf_data.Pipeline.close pipeline session;
  Octf_data.Pipeline.join_fillers fillers;

  (* Transfer-learning flavour (§4.3): restore the checkpoint into a
     fresh session and fine-tune only the classifier head. *)
  let session2 = Octf.Session.create (B.graph b) in
  Octf.Session.run_unit session2 [ init ];
  Octf_train.Saver.restore saver session2 ~path:ckpt;
  let head_vars =
    List.filter
      (fun (v : Vs.variable) ->
        String.length v.Vs.name >= 6 && String.sub v.Vs.name 0 6 = "logits")
      (Vs.trainable store)
  in
  let finetune =
    Octf_train.Optimizer.minimize store ~var_list:head_vars ~lr:0.01 ~loss ()
  in
  let eval_feed = feed 0 in
  (* Fine-tune directly through the enqueue -> dequeue path one batch at
     a time: run the enqueue step with feeds, then the train step. *)
  for _ = 1 to 10 do
    Octf.Session.run_unit ~feeds:(feed 0) session2
      [ Octf_data.Pipeline.enqueue_op pipeline ];
    Octf.Session.run_unit session2 [ finetune ]
  done;
  Octf.Session.run_unit ~feeds:eval_feed session2
    [ Octf_data.Pipeline.enqueue_op pipeline ];
  (match Octf.Session.run session2 [ accuracy ] with
  | [ a ] ->
      Printf.printf "after restore + fine-tune: accuracy %.2f\n"
        (Tensor.flat_get_f a 0);
      Sys.remove ckpt
  | _ -> assert false);

  (* Serving epilogue: freeze the fine-tuned model — variables folded
     into constants, graph pruned to the inference subgraph — and
     answer single-image requests through the micro-batching server.
     The inference tower shares the store's weights but reads from a
     direct placeholder: the queue pipeline is training-only state and
     must not survive the freeze. *)
  let module Serving = Octf_serving.Serving in
  let serve_pixels = B.placeholder b ~name:"serve_pixels" Dtype.F32 in
  let serve_logits = build_model store serve_pixels in
  let frozen =
    Serving.freeze_session ~inputs:[ serve_pixels ] ~outputs:[ serve_logits ]
      session2
  in
  let server =
    Serving.create ~name:"mnist" ~max_batch_size:4 ~max_queue_delay:0.001
      ~session:frozen ~inputs:[ serve_pixels ] ~outputs:[ serve_logits ] ()
  in
  let request =
    let imgs =
      Octf_data.Synthetic.image_batch feed_rng ~batch:1 ~size:image_size
        ~channels:1 ~classes
    in
    Tensor.reshape imgs.Octf_data.Synthetic.pixels
      [| image_size; image_size; 1 |]
  in
  (match Serving.infer server [ request ] with
  | Ok [ scores ] ->
      let best = ref 0 in
      for k = 1 to classes - 1 do
        if Tensor.flat_get_f scores k > Tensor.flat_get_f scores !best then
          best := k
      done;
      Printf.printf "served one frozen inference: class %d\n" !best
  | Ok _ -> assert false
  | Error f -> failwith (Octf.Step_failure.to_string f));
  Serving.shutdown server
