(* Distributed data-parallel training on an in-process cluster (§3.3,
   §4.4): parameters live on two "ps" tasks, worker threads run replica
   steps through real Send/Recv partitions, and the three coordination
   schemes of Figure 4 are exercised in turn:

   - asynchronous (4a): workers apply gradients as they are produced;
   - synchronous (4b): a queue barrier aggregates all gradients;
   - synchronous + backup (4c): one extra replica runs, the chief
     aggregates the first three and drops the straggler's stale update.

     dune exec examples/distributed_training.exe *)

open Octf_tensor
module B = Octf.Builder
module Vs = Octf_nn.Var_store
module Sr = Octf_train.Sync_replicas

let dim = 5

let true_w = [| 1.0; -2.0; 3.0; -4.0; 5.0 |]

let build_replica () =
  let b = B.create () in
  let store = Vs.create b in
  let x = B.placeholder b ~name:"x" ~shape:[| 32; dim |] Dtype.F32 in
  let y = B.placeholder b ~name:"y" ~shape:[| 32; 1 |] Dtype.F32 in
  (* Parameters are pinned to the PS job; placement colocates reads and
     updates with them and partitioning inserts Send/Recv pairs. *)
  let w =
    Vs.get store ~device:"/job:ps/task:0" ~init:Octf_nn.Init.zeros ~name:"w"
      [| dim; 1 |]
  in
  let bias =
    Vs.get store ~device:"/job:ps/task:1" ~init:Octf_nn.Init.zeros ~name:"b"
      [| 1 |]
  in
  let predictions = B.add b (B.matmul b x w.Vs.read) bias.Vs.read in
  let loss = Octf_nn.Losses.mse b ~predictions ~targets:y in
  (b, store, x, y, loss, w)

let run_mode name mode ~num_workers ~steps_per_worker =
  let cluster =
    Octf.Cluster.create
      ~jobs:
        [ ("ps", 2, [ Octf.Device.CPU ]); ("worker", 1, [ Octf.Device.CPU ]) ]
  in
  let b, store, x, y, loss, w = build_replica () in
  let coord = Sr.build store ~mode ~num_workers ~lr:0.05 ~loss () in
  let init = Vs.init_op store in
  let session = Octf.Cluster.session cluster (B.graph b) in
  Octf.Session.run_unit session [ init ];
  Sr.start coord session;
  let rng = Rng.create 99 in
  let batches = Mutex.create () in
  let next_batch () =
    Mutex.lock batches;
    let batch =
      Octf_data.Synthetic.regression_batch rng ~batch:32 ~dim ~w:true_w
        ~bias:0.5 ~noise:0.05
    in
    Mutex.unlock batches;
    batch
  in
  let threads =
    List.init num_workers (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to steps_per_worker do
              let xs, ys = next_batch () in
              try Sr.worker_step ~feeds:[ (x, xs); (y, ys) ] coord session
              with Octf.Session.Run_error _ -> ()
            done)
          ())
  in
  (match mode with
  | Sr.Async -> List.iter Thread.join threads
  | Sr.Sync | Sr.Sync_backup _ ->
      for _ = 1 to steps_per_worker do
        try Sr.chief_step coord session
        with Octf.Session.Run_error _ -> ()
      done;
      Sr.shutdown coord session;
      List.iter Thread.join threads);
  match
    Octf.Session.run_with_metadata session [ w.Vs.read ]
  with
  | [ learned ], _ ->
      let err = ref 0.0 in
      Array.iteri
        (fun i v -> err := !err +. Float.abs (Tensor.flat_get_f learned i -. v))
        true_w;
      Printf.printf "%-22s %3d aggregate updates; mean |w - w*| = %.3f\n%!"
        name
        (Sr.global_step coord session)
        (!err /. float_of_int dim)
  | _ -> assert false

let () =
  Printf.printf "cluster: 2 PS tasks + worker threads; 32-example batches\n%!";
  run_mode "asynchronous" Sr.Async ~num_workers:3 ~steps_per_worker:60;
  run_mode "synchronous" Sr.Sync ~num_workers:3 ~steps_per_worker:40;
  run_mode "sync + 1 backup"
    (Sr.Sync_backup { aggregate = 3 })
    ~num_workers:4 ~steps_per_worker:40
