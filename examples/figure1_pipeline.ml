(* The complete training pipeline of the paper's Figure 1, end to end:

     [record files]                       (distributed file system)
       -> RecordReader / ReadRecord      (I/O subgraph)
       -> DecodeExample -> normalize     (preprocessing subgraph)
       -> RandomShuffleQueue             (input queue, backpressure)
       -> DequeueMany -> convnet -> SGD  (training subgraph)
       -> periodic Save                  (checkpointing subgraph)

   All four subgraphs live in ONE dataflow graph and run as concurrent
   steps of one session, coordinated only by the queue and the shared
   variables — no privileged runtime code.

     dune exec examples/figure1_pipeline.exe *)

open Octf_tensor
module B = Octf.Builder
module Vs = Octf_nn.Var_store
module L = Octf_nn.Layers

let classes = 4
let size = 8
let batch = 8

let () =
  (* The "distributed file system": two shard files of synthetic images. *)
  let rng = Rng.create 42 in
  let shards =
    List.init 2 (fun i ->
        let path = Filename.temp_file (Printf.sprintf "shard%d" i) ".rec" in
        Octf_data.Records.write_image_dataset rng ~path ~examples:400 ~size
          ~channels:1 ~classes;
        path)
  in

  let b = B.create () in
  let store = Vs.create b in

  (* I/O + preprocessing subgraph: one step reads, decodes and enqueues
     one normalized example. *)
  let reader = B.record_reader b ~files:shards () in
  let record = B.read_record b reader in
  let pixels, label =
    match
      B.decode_example b record ~features:Octf_data.Records.image_features
    with
    | [ p; l ] -> (p, l)
    | _ -> assert false
  in
  let normalized =
    B.mul b (B.sub b pixels (B.const_f b 0.25)) (B.const_f b 2.0)
  in
  let queue =
    B.random_shuffle_queue b ~name:"input" ~seed:7 ~capacity:64
      ~num_components:2 ()
  in
  let enqueue = B.enqueue b queue [ normalized; label ] in

  (* Training subgraph: dequeue a batch, run the model, apply SGD. *)
  let batch_pixels, batch_labels =
    match B.dequeue_many b queue ~n:batch ~num_components:2 with
    | [ p; l ] -> (p, l)
    | _ -> assert false
  in
  let conv =
    L.conv2d store ~activation:`Relu ~name:"conv" ~in_channels:1
      ~out_channels:8 ~ksize:(3, 3) batch_pixels
  in
  let pooled = L.max_pool2d b ~ksize:(2, 2) conv in
  let flat = L.flatten b ~features:(size / 2 * (size / 2) * 8) pooled in
  let logits =
    L.dense store ~name:"logits"
      ~in_dim:(size / 2 * (size / 2) * 8)
      ~out_dim:classes flat
  in
  let loss =
    Octf_nn.Losses.sparse_softmax_cross_entropy_mean b ~num_classes:classes
      ~logits ~labels:batch_labels
  in
  let accuracy = Octf_nn.Losses.accuracy b ~logits ~labels:batch_labels in
  let train_op =
    Octf_train.Optimizer.minimize store
      ~algorithm:Octf_train.Optimizer.momentum_default ~lr:0.05 ~loss ()
  in

  (* Checkpointing subgraph. *)
  let saver = Octf_train.Saver.create ~keep:2 store in
  let ckpt_prefix = Filename.temp_file "figure1" "" in
  Sys.remove ckpt_prefix;

  let session = Octf.Session.create (B.graph b) in
  Octf.Session.run_unit session [ Vs.init_op store ];

  (* Concurrent preprocessing steps fill the queue until the readers run
     dry; each filler failure (end of input) ends that filler. *)
  let fillers =
    List.init 3 (fun _ ->
        Thread.create
          (fun () ->
            let continue_ = ref true in
            while !continue_ do
              try Octf.Session.run_unit session [ enqueue ]
              with Octf.Session.Run_error _ -> continue_ := false
            done)
          ())
  in

  (* Training steps drain it concurrently; every 20th step also collects
     per-node step stats through the Run_options/Run_metadata API. *)
  let steps = (2 * 400 / batch) - 8 in
  for step = 1 to steps do
    let collect_stats = step mod 20 = 0 in
    let options =
      Octf.Session.Run_options.v ~targets:[ train_op ] ~collect_stats ()
    in
    match
      Octf.Session.run_with_metadata ~options session [ loss; accuracy ]
    with
    | [ l; a ], md ->
        if collect_stats then begin
          Printf.printf "step %3d  loss %.4f  accuracy %.2f\n%!" step
            (Tensor.flat_get_f l 0) (Tensor.flat_get_f a 0);
          (match md.Octf.Session.Run_metadata.step_stats with
          | Some stats ->
              Printf.printf "  %s\n%!"
                (Format.asprintf "%a" Octf.Step_stats.pp_summary stats)
          | None -> ());
          ignore
            (Octf_train.Saver.save_numbered saver session ~prefix:ckpt_prefix
               ~step)
        end
    | _ -> assert false
  done;
  List.iter Thread.join fillers;
  (match Octf_train.Saver.latest_checkpoint ~prefix:ckpt_prefix with
  | Some p -> Printf.printf "latest checkpoint: %s\n" (Filename.basename p)
  | None -> print_endline "no checkpoint written!");
  List.iter Sys.remove shards;
  Printf.printf
    "pipeline drained %d records through reader -> decode -> shuffle queue \
     -> training\n"
    (2 * 400)
