.PHONY: all build test fmt bench-smoke bench-kernels bench-memory bench-pipeline bench-serving bench-quant fault-smoke metrics-smoke pipeline-smoke serving-smoke quant-smoke dist-smoke ci clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

# Exercises both scheduler policies end to end and writes
# BENCH_dispatch.json (small sizes; seconds, not minutes).
bench-smoke:
	OCTF_BENCH_SMOKE=1 dune exec bench/main.exe -- dispatch-wide

# Intra-op kernel throughput (matmul / conv2d / elementwise GFLOP/s at
# 1/2/4/8 threads), the transposed-matmul regression guard, and the
# fused elementwise chain: a 12-op chain fused vs unfused, asserting
# one fused kernel stands in for >= 10 ops with bit-identical output
# and >= 3x speedup (> 1x in smoke mode); writes BENCH_kernels.json.
# Full sizes — set OCTF_BENCH_SMOKE=1 for CI speed.
bench-kernels:
	dune exec bench/main.exe -- kernels

# Peak live tensor bytes with memory planning on vs off (MLP training);
# writes BENCH_memory.json and fails if planning saves < 30%. Full
# sizes — set OCTF_BENCH_SMOKE=1 for CI speed.
bench-memory:
	dune exec bench/main.exe -- memory

# Pipelined execution against a fault-injected straggler reader:
# steps/sec at K in {1,2,4}; writes BENCH_pipeline.json and fails if
# K=4 is less than 1.5x K=1. Full sizes — set OCTF_BENCH_SMOKE=1 for
# CI speed.
bench-pipeline:
	dune exec bench/main.exe -- pipeline

# Frozen-graph serving throughput: 8 pipelined clients against the
# miniature MNIST convnet, micro-batched vs batch-size-1; writes
# BENCH_serving.json (req/s, p50/p99) and fails if coalescing is less
# than 2x. Full sizes — set OCTF_BENCH_SMOKE=1 for CI speed.
bench-serving:
	dune exec bench/main.exe -- serving

# End-to-end serve smoke: freeze both model zoo entries from a live
# session, drive them with concurrent clients through the CLI, and
# require that requests actually coalesced (--assert-batched); then
# the serving benchmark in smoke sizes.
serving-smoke:
	dune exec bin/octf_cli.exe -- serve --model mnist-cnn \
	  --train-steps 10 --clients 4 --requests 20 --assert-batched
	dune exec bin/octf_cli.exe -- serve --model lstm \
	  --train-steps 10 --clients 4 --requests 20 --assert-batched
	OCTF_BENCH_SMOKE=1 dune exec bench/main.exe -- serving

# Quantized inference: freeze + calibrate + int8-rewrite the MNIST
# convnet, measure img/s and top-1 agreement against the float frozen
# twin; writes BENCH_quant.json and fails unless the quantized leg is
# >= 1.3x faster OR the mechanism holds (>= 2 islands rewritten, 4x
# weight-memory cut, top-1 delta <= 0.15). Full sizes — set
# OCTF_BENCH_SMOKE=1 for CI speed.
bench-quant:
	dune exec bench/main.exe -- quant

# Quantized-serving smoke: the serve CLI over an int8-rewritten frozen
# graph (dynamic ranges), then the quant benchmark in smoke sizes.
quant-smoke:
	dune exec bin/octf_cli.exe -- serve --model mnist-cnn \
	  --train-steps 10 --clients 4 --requests 20 --quantize=true
	OCTF_BENCH_SMOKE=1 dune exec bench/main.exe -- quant

# Deterministic-seed smoke for the fault injector: the same seed must
# reproduce the same fault sequence.
fault-smoke:
	dune exec bin/octf_cli.exe -- fault-smoke

# End-to-end pipelined training: the CLI train loop at K=4 (windowed
# run_async issue, admission-time variable snapshots) must converge the
# same linear model the synchronous loop does, and the pipeline bench
# must show K=4 beating K=1 by 1.5x against a slow reader.
pipeline-smoke:
	dune exec bin/octf_cli.exe -- train --steps 60 --max-in-flight 4
	OCTF_MAX_IN_FLIGHT=4 dune exec bin/octf_cli.exe -- train --steps 60
	OCTF_BENCH_SMOKE=1 dune exec bench/main.exe -- pipeline

# Pool-scheduled training run with metrics export; asserts the
# acceptance-critical series (queue depth, rendezvous bytes, step
# counter) are present and non-zero in valid Prometheus text format.
metrics-smoke:
	dune exec bin/octf_cli.exe -- train --steps 30 --scheduler pool \
	  --metrics=METRICS_train.prom --stats-every 10
	grep -Eq '^octf_queue_depth_max\{queue="input"\} [1-9]' METRICS_train.prom
	grep -Eq '^octf_rendezvous_send_bytes_total [1-9]' METRICS_train.prom
	grep -Eq '^octf_session_steps_total [1-9]' METRICS_train.prom
	grep -Eq '^# TYPE octf_session_step_seconds histogram' METRICS_train.prom

# Two-OS-process recovery drills over real TCP: kill the parameter
# server mid-training (heartbeat death, reconnect with backoff, restore
# from checkpoint, converge), plus corrupt-frame, dropped-connection and
# delayed-frame fault injection. Each scenario is timeout-bounded: a
# hang is a failure, not a stall.
dist-smoke: build
	timeout -k 5 90 ./_build/default/bin/octf_cli.exe dist-smoke --scenario pskill
	timeout -k 5 90 ./_build/default/bin/octf_cli.exe dist-smoke --scenario corrupt
	timeout -k 5 90 ./_build/default/bin/octf_cli.exe dist-smoke --scenario dropconn
	timeout -k 5 90 ./_build/default/bin/octf_cli.exe dist-smoke --scenario framedelay

ci: build test fmt bench-smoke fault-smoke metrics-smoke pipeline-smoke serving-smoke quant-smoke dist-smoke
	OCTF_SCHEDULER=pool dune runtest --force
	OCTF_INTRA_OP_THREADS=1 OCTF_SCHEDULER=inline dune runtest --force
	OCTF_INTRA_OP_THREADS=4 OCTF_SCHEDULER=inline dune runtest --force
	OCTF_INTRA_OP_THREADS=1 OCTF_SCHEDULER=pool dune runtest --force
	OCTF_INTRA_OP_THREADS=4 OCTF_SCHEDULER=pool dune runtest --force
	OCTF_SCHEDULER=inline dune exec test/test_main.exe -- test faults
	OCTF_SCHEDULER=pool dune exec test/test_main.exe -- test faults
	OCTF_SCHEDULER=inline dune exec test/test_main.exe -- test metrics
	OCTF_SCHEDULER=pool dune exec test/test_main.exe -- test metrics
	OCTF_MEMORY_PLANNING=off dune runtest --force
	OCTF_FUSION=off dune runtest --force
	OCTF_QUANTIZE=off dune runtest --force
	OCTF_QUANTIZE=on dune exec test/test_main.exe -- test quantization
	OCTF_QUANTIZE=on dune exec test/test_main.exe -- test quant_accuracy
	OCTF_MEMORY_PLANNING=on dune exec test/test_main.exe -- test differential
	OCTF_MEMORY_PLANNING=off dune exec test/test_main.exe -- test differential
	OCTF_FUSION=on dune exec test/test_main.exe -- test differential
	OCTF_FUSION=off dune exec test/test_main.exe -- test differential
	OCTF_SCHEDULER=inline OCTF_MAX_IN_FLIGHT=1 dune exec test/test_main.exe -- test differential
	OCTF_SCHEDULER=inline OCTF_MAX_IN_FLIGHT=4 dune exec test/test_main.exe -- test differential
	OCTF_SCHEDULER=pool OCTF_MAX_IN_FLIGHT=1 dune exec test/test_main.exe -- test differential
	OCTF_SCHEDULER=pool OCTF_MAX_IN_FLIGHT=4 dune exec test/test_main.exe -- test differential
	OCTF_MAX_IN_FLIGHT=4 dune exec test/test_main.exe -- test data
	OCTF_BENCH_SMOKE=1 dune exec bench/main.exe -- kernels
	OCTF_BENCH_SMOKE=1 dune exec bench/main.exe -- memory

clean:
	dune clean
