.PHONY: all build test fmt bench-smoke fault-smoke ci clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

# Exercises both scheduler policies end to end and writes
# BENCH_dispatch.json (small sizes; seconds, not minutes).
bench-smoke:
	OCTF_BENCH_SMOKE=1 dune exec bench/main.exe -- dispatch-wide

# Deterministic-seed smoke for the fault injector: the same seed must
# reproduce the same fault sequence.
fault-smoke:
	dune exec bin/octf_cli.exe -- fault-smoke

ci: build test fmt bench-smoke fault-smoke
	OCTF_SCHEDULER=pool dune runtest --force
	OCTF_SCHEDULER=inline dune exec test/test_main.exe -- test faults
	OCTF_SCHEDULER=pool dune exec test/test_main.exe -- test faults

clean:
	dune clean
