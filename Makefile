.PHONY: all build test fmt bench-smoke ci clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

# Exercises both scheduler policies end to end and writes
# BENCH_dispatch.json (small sizes; seconds, not minutes).
bench-smoke:
	OCTF_BENCH_SMOKE=1 dune exec bench/main.exe -- dispatch-wide

ci: build test fmt bench-smoke
	OCTF_SCHEDULER=pool dune runtest --force

clean:
	dune clean
