examples/figure1_pipeline.ml: Filename List Octf Octf_data Octf_nn Octf_tensor Octf_train Printf Rng Sys Tensor Thread
