examples/mnist_cnn.mli:
