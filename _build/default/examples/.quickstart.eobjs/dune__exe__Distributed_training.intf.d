examples/distributed_training.mli:
