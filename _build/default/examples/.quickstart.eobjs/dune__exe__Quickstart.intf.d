examples/quickstart.mli:
