examples/distributed_training.ml: Array Dtype Float List Mutex Octf Octf_data Octf_nn Octf_tensor Octf_train Printf Rng Tensor Thread
