examples/figure1_pipeline.mli:
