examples/language_model.mli:
