examples/mnist_cnn.ml: Dtype Filename List Octf Octf_data Octf_nn Octf_tensor Octf_train Printf Rng String Sys Tensor Thread
