examples/language_model.ml: Dtype Float List Octf Octf_data Octf_nn Octf_tensor Octf_train Printf Rng Tensor Unix
