examples/quickstart.ml: Array Dtype Octf Octf_data Octf_nn Octf_tensor Octf_train Printf Rng String Tensor
