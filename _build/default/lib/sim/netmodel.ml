type lane = { mutable free : float }

let lane () = { free = 0.0 }

let reset l = l.free <- 0.0

let busy_until l = l.free

let occupy l ~now ~duration =
  let start = Float.max now l.free in
  l.free <- start +. duration;
  l.free

type params = {
  bandwidth : float;
  latency : float;
  per_transfer : float;
}

let default_params =
  { bandwidth = 1.6e9; latency = 2.5e-4; per_transfer = 3.0e-5 }

let transfer p ~src_out ~dst_in ~now ~bytes =
  (* Cut-through: the transfer occupies both lanes for its wire time;
     when neither lane is contended the transfer is fully pipelined. *)
  let service = (bytes /. p.bandwidth) +. p.per_transfer in
  let src_done = occupy src_out ~now ~duration:service in
  let dst_done = occupy dst_in ~now ~duration:service in
  Float.max src_done dst_done +. p.latency
