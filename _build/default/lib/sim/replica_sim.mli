(** The shared-cluster training simulator behind Figures 6–9 (DESIGN.md,
    substitution 2).

    One simulated training step per worker: fetch the model shards from
    the PS tasks (through contended NICs), run any PS-colocated
    computation (softmax offload, §6.4), compute on the worker (with
    lognormal noise and an occasional heavy-tail pause — the shared
    production cluster's stragglers), then push updates back. Replica
    coordination follows §4.4: asynchronous free-running workers,
    a full synchronous barrier, or an m-of-n barrier with backup
    workers. *)

type coordination =
  | Async
  | Sync of { backup : int }
      (** [backup = 0] is the plain barrier of Figure 4(b); [backup = b]
          runs [n] workers but each round aggregates the first
          [n - b]. *)

type config = {
  workload : Octf_models.Workload.t;
  num_workers : int;
  num_ps : int;
  coordination : coordination;
  worker_flops_rate : float;  (** sustained FLOP/s per worker device *)
  ps_flops_rate : float;  (** sustained FLOP/s per PS task *)
  net : Netmodel.params;
  straggler_sigma : float;  (** lognormal sigma on worker compute *)
  heavy_tail_prob : float;  (** chance of a long pause per step *)
  heavy_tail_scale : float;  (** pause multiplier *)
  sync_overhead : float;  (** per-round coordination cost (queues) *)
  step_overhead : float;  (** fixed per-step client/runtime cost *)
  seed : int;
}

val default : workload:Octf_models.Workload.t -> config
(** Calibrated defaults: K40-class workers (≈0.55 TFLOP/s sustained for
    2016-era cuDNN training), 8-core IvyBridge PS tasks (≈0.3 TFLOP/s),
    16 PS, 1 worker, asynchronous. *)

type result = {
  step_times : float array;  (** seconds per applied step/round *)
  summary : Stats.summary;
  wall_time : float;
  throughput : float;  (** workload items (images, words) per second *)
}

val run : config -> steps:int -> result
(** Simulate [steps] rounds (synchronous) or [steps] steps per worker
    (asynchronous). *)
