lib/sim/replica_sim.mli: Netmodel Octf_models Stats
