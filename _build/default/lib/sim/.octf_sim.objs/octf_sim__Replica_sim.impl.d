lib/sim/replica_sim.ml: Array Event_queue List Netmodel Octf_models Octf_tensor Rng Stats
