lib/sim/netmodel.ml: Float
