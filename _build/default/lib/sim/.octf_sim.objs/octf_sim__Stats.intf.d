lib/sim/stats.mli:
