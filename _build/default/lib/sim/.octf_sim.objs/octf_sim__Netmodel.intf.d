lib/sim/netmodel.mli:
