(** Network and compute resources of the simulated shared cluster
    (DESIGN.md, substitution 2).

    Each node has a full-duplex NIC modelled as two serial lanes (in and
    out); a transfer occupies the source's out-lane and the destination's
    in-lane for [bytes / bandwidth + per_transfer] seconds, and delivery
    additionally pays a propagation latency. Serialization at the
    parameter-server NICs under many concurrent workers is exactly the
    contention the paper identifies as the limit to scaling (§6.2–6.3).
    Compute units use the same serial-lane abstraction. *)

type lane

val lane : unit -> lane

val reset : lane -> unit

val busy_until : lane -> float

(** Occupy a lane starting no earlier than [now]; returns completion. *)
val occupy : lane -> now:float -> duration:float -> float

type params = {
  bandwidth : float;  (** bytes/s per lane *)
  latency : float;  (** propagation delay per transfer *)
  per_transfer : float;  (** fixed NIC service cost per transfer *)
}

val default_params : params
(** Calibrated to the paper's cluster-class interconnect: ≈1.6 GB/s per
    NIC lane, 250 µs latency, 30 µs per-transfer service. *)

val transfer :
  params -> src_out:lane -> dst_in:lane -> now:float -> bytes:float -> float
(** Completion (delivery) time of one transfer. *)
