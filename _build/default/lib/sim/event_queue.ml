type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable count : int;
  mutable next_seq : int;
}

let dummy payload = { time = 0.0; seq = 0; payload }

let create () = { heap = [||]; count = 0; next_seq = 0 }

let is_empty t = t.count = 0

let size t = t.count

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.count && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.count && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time payload =
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  let cap = Array.length t.heap in
  if t.count >= cap then begin
    let ncap = max 16 (cap * 2) in
    let fresh = Array.make ncap (dummy payload) in
    Array.blit t.heap 0 fresh 0 t.count;
    t.heap <- fresh
  end;
  t.heap.(t.count) <- entry;
  t.count <- t.count + 1;
  sift_up t (t.count - 1)

let pop t =
  if t.count = 0 then None
  else begin
    let top = t.heap.(0) in
    t.count <- t.count - 1;
    if t.count > 0 then begin
      t.heap.(0) <- t.heap.(t.count);
      sift_down t 0
    end;
    Some (top.time, top.payload)
  end
