(** Percentiles and summaries for simulated step-time samples.

    The paper plots medians with 10th/90th-percentile error bars
    throughout §6. *)

val percentile : float array -> p:float -> float
(** Linear-interpolated percentile of an unsorted sample, [p] in [0,100].
    @raise Invalid_argument on an empty sample. *)

val median : float array -> float

val mean : float array -> float

type summary = { median : float; p10 : float; p90 : float; mean : float }

val summarize : float array -> summary
