let percentile samples ~p =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median samples = percentile samples ~p:50.0

let mean samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.mean: empty sample";
  Array.fold_left ( +. ) 0.0 samples /. float_of_int n

type summary = { median : float; p10 : float; p90 : float; mean : float }

let summarize samples =
  {
    median = median samples;
    p10 = percentile samples ~p:10.0;
    p90 = percentile samples ~p:90.0;
    mean = mean samples;
  }
