(** A minimal binary min-heap keyed by time, for the discrete-event
    simulator: events must be dequeued in nondecreasing time order so
    resource lanes serve requests in arrival order. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Earliest event; ties break by insertion order. *)
