open Octf_tensor
module W = Octf_models.Workload

type coordination = Async | Sync of { backup : int }

type config = {
  workload : W.t;
  num_workers : int;
  num_ps : int;
  coordination : coordination;
  worker_flops_rate : float;
  ps_flops_rate : float;
  net : Netmodel.params;
  straggler_sigma : float;
  heavy_tail_prob : float;
  heavy_tail_scale : float;
  sync_overhead : float;
  step_overhead : float;
  seed : int;
}

let default ~workload =
  {
    workload;
    num_workers = 1;
    num_ps = 16;
    coordination = Async;
    worker_flops_rate = 5.5e11;
    ps_flops_rate = 3.0e11;
    net = Netmodel.default_params;
    straggler_sigma = 0.08;
    heavy_tail_prob = 0.035;
    heavy_tail_scale = 0.7;
    sync_overhead = 1.0e-3;
    step_overhead = 5.0e-4;
    seed = 1;
  }

type result = {
  step_times : float array;
  summary : Stats.summary;
  wall_time : float;
  throughput : float;
}

type cluster = {
  ps_in : Netmodel.lane array;
  ps_out : Netmodel.lane array;
  ps_cpu : Netmodel.lane array;
  w_in : Netmodel.lane array;
  w_out : Netmodel.lane array;
}

let make_cluster cfg =
  {
    ps_in = Array.init cfg.num_ps (fun _ -> Netmodel.lane ());
    ps_out = Array.init cfg.num_ps (fun _ -> Netmodel.lane ());
    ps_cpu = Array.init cfg.num_ps (fun _ -> Netmodel.lane ());
    w_in = Array.init cfg.num_workers (fun _ -> Netmodel.lane ());
    w_out = Array.init cfg.num_workers (fun _ -> Netmodel.lane ());
  }

let compute_noise cfg rng =
  let base = Rng.lognormal rng ~mu:0.0 ~sigma:cfg.straggler_sigma in
  if Rng.float rng 1.0 < cfg.heavy_tail_prob then
    base *. (1.0 +. Rng.float rng cfg.heavy_tail_scale)
  else base

(* Right-skewed per-phase jitter of a shared production cluster: RPC
   scheduling, interference from other jobs. *)
let phase_jitter cfg rng =
  Rng.exponential rng ~rate:(1.0 /. (0.6 *. cfg.step_overhead))

(* A training step is simulated in three events so that lane requests are
   issued in nondecreasing simulated time (the lanes serve in arrival
   order): Fetch (pull shards), Compute (PS-offloaded softmax + worker
   compute with straggler noise), Update (push shards and fold them in
   at the PS). *)
type phase = Fetch | Compute | Update

type step_state = {
  worker : int;
  mutable phase : phase;
  mutable start : float;  (* step start time *)
}

let do_fetch cfg cl ~worker ~now =
  let shard = cfg.workload.W.fetch_bytes /. float_of_int cfg.num_ps in
  let fetch_done = ref now in
  for p = 0 to cfg.num_ps - 1 do
    let t =
      Netmodel.transfer cfg.net ~src_out:cl.ps_out.(p)
        ~dst_in:cl.w_in.(worker) ~now ~bytes:shard
    in
    if t > !fetch_done then fetch_done := t
  done;
  !fetch_done

let do_compute cfg cl rng ~now =
  (* PS-colocated work (e.g. full-softmax shards, §6.4) runs first,
     parallel over the PS tasks but contended across workers. *)
  let ps_done = ref now in
  if cfg.workload.W.ps_flops > 0.0 then begin
    let per_ps =
      cfg.workload.W.ps_flops /. float_of_int cfg.num_ps /. cfg.ps_flops_rate
    in
    for p = 0 to cfg.num_ps - 1 do
      let t = Netmodel.occupy cl.ps_cpu.(p) ~now ~duration:per_ps in
      if t > !ps_done then ps_done := t
    done
  end;
  let compute =
    cfg.workload.W.worker_flops /. cfg.worker_flops_rate
    *. compute_noise cfg rng
  in
  !ps_done +. compute

let do_update cfg cl rng ~worker ~now =
  let shard = cfg.workload.W.update_bytes /. float_of_int cfg.num_ps in
  let update_done = ref now in
  for p = 0 to cfg.num_ps - 1 do
    let t =
      Netmodel.transfer cfg.net ~src_out:cl.w_out.(worker)
        ~dst_in:cl.ps_in.(p) ~now ~bytes:shard
    in
    (* The += combiner folds the update into the shard's buffer. *)
    let t =
      Netmodel.occupy cl.ps_cpu.(p) ~now:t
        ~duration:(shard /. cfg.workload.W.apply_bandwidth)
    in
    if t > !update_done then update_done := t
  done;
  !update_done +. cfg.step_overhead +. phase_jitter cfg rng

(* Drive one worker's step through the event queue; calls [finished w
   start_time end_time] when the step completes. *)
let advance cfg cl rng events (st : step_state) ~now ~finished =
  match st.phase with
  | Fetch ->
      let start = now +. phase_jitter cfg rng in
      st.start <- now;
      let fetch_done = do_fetch cfg cl ~worker:st.worker ~now:start in
      st.phase <- Compute;
      Event_queue.push events ~time:fetch_done st
  | Compute ->
      let cd = do_compute cfg cl rng ~now in
      st.phase <- Update;
      Event_queue.push events ~time:cd st
  | Update ->
      let ud = do_update cfg cl rng ~worker:st.worker ~now in
      finished st ud

let run_async cfg ~steps =
  let cl = make_cluster cfg in
  let rng = Rng.create cfg.seed in
  let events = Event_queue.create () in
  let remaining = Array.make cfg.num_workers steps in
  let samples = ref [] in
  let wall = ref 0.0 in
  let total = ref 0 in
  for w = 0 to cfg.num_workers - 1 do
    Event_queue.push events ~time:0.0
      { worker = w; phase = Fetch; start = 0.0 }
  done;
  let finished st end_time =
    samples := (end_time -. st.start) :: !samples;
    incr total;
    if end_time > !wall then wall := end_time;
    remaining.(st.worker) <- remaining.(st.worker) - 1;
    if remaining.(st.worker) > 0 then begin
      st.phase <- Fetch;
      Event_queue.push events ~time:end_time st
    end
  in
  let rec loop () =
    match Event_queue.pop events with
    | None -> ()
    | Some (now, st) ->
        advance cfg cl rng events st ~now ~finished;
        loop ()
  in
  loop ();
  let step_times = Array.of_list (List.rev !samples) in
  let items = float_of_int !total *. cfg.workload.W.items_per_step in
  {
    step_times;
    summary = Stats.summarize step_times;
    wall_time = !wall;
    throughput = (if !wall > 0.0 then items /. !wall else 0.0);
  }

let run_sync cfg ~steps ~backup =
  let cl = make_cluster cfg in
  let rng = Rng.create cfg.seed in
  let n = cfg.num_workers in
  let m = n - backup in
  if m <= 0 then invalid_arg "Replica_sim: more backup workers than workers";
  let samples = Array.make steps 0.0 in
  let t = ref 0.0 in
  let items = ref 0.0 in
  for step = 0 to steps - 1 do
    let start = !t +. cfg.sync_overhead in
    let events = Event_queue.create () in
    for w = 0 to n - 1 do
      Event_queue.push events ~time:start
        { worker = w; phase = Fetch; start }
    done;
    let finishes = ref [] in
    let finished _st end_time = finishes := end_time :: !finishes in
    let rec loop () =
      match Event_queue.pop events with
      | None -> ()
      | Some (now, st) ->
          advance cfg cl rng events st ~now ~finished;
          loop ()
    in
    loop ();
    let sorted = Array.of_list !finishes in
    Array.sort compare sorted;
    (* The round applies the first m of n gradients (Figure 4c);
       stragglers' transfers keep their lane reservations, the extra
       load the paper attributes to a non-straggler 51st worker. *)
    let round_end = sorted.(m - 1) in
    samples.(step) <- round_end -. !t;
    items := !items +. (float_of_int m *. cfg.workload.W.items_per_step);
    t := round_end
  done;
  {
    step_times = samples;
    summary = Stats.summarize samples;
    wall_time = !t;
    throughput = (if !t > 0.0 then !items /. !t else 0.0);
  }

let run cfg ~steps =
  match cfg.coordination with
  | Async -> run_async cfg ~steps
  | Sync { backup } -> run_sync cfg ~steps ~backup
