(** Writing datasets into record files (Figure 1).

    Serializes synthetic datasets into the {!Octf.Record_format}
    container so examples and tests can exercise the full I/O subgraph:
    RecordReader → ReadRecord → DecodeExample → preprocess → queue. *)

open Octf_tensor

val write_image_dataset :
  Rng.t ->
  path:string ->
  examples:int ->
  size:int ->
  channels:int ->
  classes:int ->
  unit
(** One record per example with features ["pixels"] (HWC float tensor)
    and ["label"] (int scalar). *)

val image_features : string list
(** Feature names, in the order [decode_example] should request them. *)
