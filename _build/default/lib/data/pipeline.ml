module B = Octf.Builder

type t = {
  queue : B.output;
  producers : B.output list;
  enqueue : B.output;
  close_op : B.output;
  size_op : B.output;
  num_components : int;
  b : B.t;
}

let create b ?(shuffle = false) ?(capacity = 64) ~name ~producers () =
  if producers = [] then invalid_arg "Pipeline.create: no producers";
  let num_components = List.length producers in
  let queue =
    if shuffle then
      B.random_shuffle_queue b ~name ~capacity ~num_components ()
    else B.fifo_queue b ~name ~capacity ~num_components ()
  in
  let enqueue = B.enqueue b ~name:(name ^ "/enqueue") queue producers in
  let close_op = B.queue_close b ~name:(name ^ "/close") queue in
  let size_op = B.queue_size b ~name:(name ^ "/size") queue in
  { queue; producers; enqueue; close_op; size_op; num_components; b }

let batch t =
  B.dequeue t.b t.queue ~num_components:t.num_components

let batch_many t ~n =
  B.dequeue_many t.b t.queue ~n ~num_components:t.num_components

let size t = t.size_op

let enqueue_op t = t.enqueue

let close_op t = t.close_op

let start_fillers t session ~threads ?steps ?feed () =
  let body () =
    let continue_ = ref true in
    let i = ref 0 in
    while
      !continue_ && match steps with Some s -> !i < s | None -> true
    do
      let feeds = match feed with None -> [] | Some f -> f !i in
      (try Octf.Session.run_unit ~feeds session [ t.enqueue ]
       with Octf.Session.Run_error _ -> continue_ := false);
      incr i
    done
  in
  List.init threads (fun _ -> Thread.create body ())

let close t session =
  try Octf.Session.run_unit session [ t.close_op ]
  with Octf.Session.Run_error _ -> ()
