(** Synthetic datasets (DESIGN.md, substitution 3).

    The paper's workloads use ImageNet and the One Billion Word
    Benchmark; neither is available offline, and the evaluation measures
    systems metrics rather than accuracy, so these generators produce
    data with the right shapes, sparsity and learnable structure:
    images whose class determines a visible pattern, Zipf-distributed
    token streams with the word-frequency skew of natural text, and
    simple regression/classification sets for the quickstart examples. *)

open Octf_tensor

type images = { pixels : Tensor.t; labels : Tensor.t }

val image_batch :
  Rng.t -> batch:int -> size:int -> channels:int -> classes:int -> images
(** NHWC image batch; class [k] places a bright square in region [k]
    (plus noise), so a small convnet can genuinely learn the mapping. *)

val regression_batch :
  Rng.t -> batch:int -> dim:int -> w:float array -> bias:float ->
  noise:float -> Tensor.t * Tensor.t
(** [(x, y)] with y = x·w + bias + N(0, noise). *)

val xor_batch : Rng.t -> batch:int -> Tensor.t * Tensor.t
(** The classic non-linearly-separable 2-D problem; labels one-hot [2]. *)

val token_stream : Rng.t -> vocab:int -> length:int -> zipf_s:float -> int array
(** Zipf-skewed token ids in [0, vocab). *)

val lm_batch :
  Rng.t -> stream:int array -> batch:int -> unroll:int -> position:int ->
  Tensor.t * Tensor.t
(** [(inputs, targets)] for next-word prediction: both [batch × unroll]
    int tensors, targets shifted by one; batch rows read the stream at
    strided offsets from [position]. *)
