open Octf_tensor

let image_features = [ "pixels"; "label" ]

let write_image_dataset rng ~path ~examples ~size ~channels ~classes =
  let records =
    List.init examples (fun _ ->
        let batch =
          Synthetic.image_batch rng ~batch:1 ~size ~channels ~classes
        in
        let pixels =
          Tensor.reshape batch.Synthetic.pixels [| size; size; channels |]
        in
        let label = Tensor.scalar_i (Tensor.flat_get_i batch.Synthetic.labels 0) in
        Octf.Record_format.encode_example
          [ ("pixels", pixels); ("label", label) ])
  in
  Octf.Record_format.write_records path records
