open Octf_tensor

type images = { pixels : Tensor.t; labels : Tensor.t }

let image_batch rng ~batch ~size ~channels ~classes =
  let pixels = Tensor.zeros Dtype.F32 [| batch; size; size; channels |] in
  let labels = Tensor.zeros Dtype.I32 [| batch |] in
  (* Class k lights a square in cell k of a ceil(sqrt classes)-wide grid. *)
  let grid = int_of_float (Float.ceil (Float.sqrt (float_of_int classes))) in
  let cell = max 1 (size / grid) in
  for i = 0 to batch - 1 do
    let k = Rng.int rng classes in
    Tensor.flat_set_i labels i k;
    let gy = (k / grid) * cell and gx = (k mod grid) * cell in
    for y = 0 to size - 1 do
      for x = 0 to size - 1 do
        let inside =
          y >= gy && y < gy + cell && x >= gx && x < gx + cell
        in
        let base = if inside then 1.0 else 0.0 in
        for c = 0 to channels - 1 do
          let v = base +. Rng.normal rng ~mean:0.0 ~stddev:0.1 in
          Tensor.flat_set_f pixels
            ((((i * size) + y) * size + x) * channels + c)
            v
        done
      done
    done
  done;
  { pixels; labels }

let regression_batch rng ~batch ~dim ~w ~bias ~noise =
  if Array.length w <> dim then
    invalid_arg "Synthetic.regression_batch: weight length mismatch";
  let x = Tensor.zeros Dtype.F32 [| batch; dim |] in
  let y = Tensor.zeros Dtype.F32 [| batch; 1 |] in
  for i = 0 to batch - 1 do
    let acc = ref bias in
    for j = 0 to dim - 1 do
      let v = Rng.uniform rng ~lo:(-1.0) ~hi:1.0 in
      Tensor.flat_set_f x ((i * dim) + j) v;
      acc := !acc +. (v *. w.(j))
    done;
    Tensor.flat_set_f y i (!acc +. Rng.normal rng ~mean:0.0 ~stddev:noise)
  done;
  (x, y)

let xor_batch rng ~batch =
  let x = Tensor.zeros Dtype.F32 [| batch; 2 |] in
  let y = Tensor.zeros Dtype.F32 [| batch; 2 |] in
  for i = 0 to batch - 1 do
    let a = Rng.int rng 2 and b = Rng.int rng 2 in
    let jitter () = Rng.normal rng ~mean:0.0 ~stddev:0.1 in
    Tensor.flat_set_f x (i * 2) (float_of_int a +. jitter ());
    Tensor.flat_set_f x ((i * 2) + 1) (float_of_int b +. jitter ());
    let label = a lxor b in
    Tensor.flat_set_f y ((i * 2) + label) 1.0
  done;
  (x, y)

let token_stream rng ~vocab ~length ~zipf_s =
  Array.init length (fun _ -> Rng.zipf rng ~n:vocab ~s:zipf_s)

let lm_batch rng ~stream ~batch ~unroll ~position =
  ignore rng;
  let n = Array.length stream in
  if n < unroll + 2 then invalid_arg "Synthetic.lm_batch: stream too short";
  let inputs = Tensor.zeros Dtype.I32 [| batch; unroll |] in
  let targets = Tensor.zeros Dtype.I32 [| batch; unroll |] in
  let stride = max 1 ((n - unroll - 1) / batch) in
  for i = 0 to batch - 1 do
    let base = (position + (i * stride)) mod (n - unroll - 1) in
    for t = 0 to unroll - 1 do
      Tensor.flat_set_i inputs ((i * unroll) + t) stream.(base + t);
      Tensor.flat_set_i targets ((i * unroll) + t) stream.(base + t + 1)
    done
  done;
  (inputs, targets)
