lib/data/records.ml: List Octf Octf_tensor Synthetic Tensor
