lib/data/synthetic.ml: Array Dtype Float Octf_tensor Rng Tensor
