lib/data/synthetic.mli: Octf_tensor Rng Tensor
