lib/data/records.mli: Octf_tensor Rng
