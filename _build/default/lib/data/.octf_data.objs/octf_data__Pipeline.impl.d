lib/data/pipeline.ml: List Octf Thread
