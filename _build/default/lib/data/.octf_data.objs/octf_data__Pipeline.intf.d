lib/data/pipeline.mli: Octf Octf_tensor Tensor Thread
