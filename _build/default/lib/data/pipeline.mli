(** Queue-based input pipelines (§3.2, Figure 1).

    A training application runs concurrent steps against one graph: I/O
    and preprocessing steps fill a queue while training steps drain it,
    with the queue's blocking behaviour providing backpressure. This
    module packages that pattern: build a queue fed by producer tensors
    (typically [Placeholder]s fed by a generator, or random ops), then
    start filler threads that repeatedly run the enqueue step. *)

open Octf_tensor
module B = Octf.Builder

type t

val create :
  B.t ->
  ?shuffle:bool ->
  ?capacity:int ->
  name:string ->
  producers:B.output list ->
  unit ->
  t
(** The queue holds tuples with one component per producer output. *)

val batch : t -> B.output list
(** Dequeue one element: the training subgraph's inputs. *)

val batch_many : t -> n:int -> B.output list
(** Dequeue and stack [n] elements along a new leading axis. *)

val size : t -> B.output

val enqueue_op : t -> B.output

val close_op : t -> B.output

val start_fillers :
  t ->
  Octf.Session.t ->
  threads:int ->
  ?steps:int ->
  ?feed:(int -> (B.output * Tensor.t) list) ->
  unit ->
  Thread.t list
(** Spawn [threads] filler threads, each running the enqueue step [steps]
    times (default: until the queue closes). [feed] supplies per-call
    feeds from the producer index (e.g. fresh synthetic batches). *)

val close : t -> Octf.Session.t -> unit
(** Close the queue: blocked fillers stop; trainers drain the remainder
    and then observe end-of-input. *)
