type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = int64 t }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Drop two bits so the value fits OCaml's 63-bit int non-negatively. *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let unit_float t =
  (* 53 uniform bits into [0, 1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound = unit_float t *. bound

let uniform t ~lo ~hi = lo +. (unit_float t *. (hi -. lo))

let normal t ~mean ~stddev =
  let rec nonzero () =
    let u = unit_float t in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = unit_float t in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (stddev *. r *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (normal t ~mean:mu ~stddev:sigma)

let exponential t ~rate =
  let rec nonzero () =
    let u = unit_float t in
    if u > 0.0 then u else nonzero ()
  in
  -.log (nonzero ()) /. rate

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  (* Rejection sampling against the continuous envelope (Devroye). *)
  let nf = float_of_int n in
  let h x = if s = 1.0 then log x else (x ** (1.0 -. s) -. 1.0) /. (1.0 -. s) in
  let h_inv y =
    if s = 1.0 then exp y
    else ((y *. (1.0 -. s)) +. 1.0) ** (1.0 /. (1.0 -. s))
  in
  let hmax = h (nf +. 0.5) and hmin = h 0.5 in
  let rec draw () =
    let u = uniform t ~lo:hmin ~hi:hmax in
    let x = h_inv u in
    let k = Float.round x in
    let k = Float.max 1.0 (Float.min nf k) in
    (* Accept with probability proportional to the pmf / envelope ratio. *)
    if h (k +. 0.5) -. h (k -. 0.5) >= unit_float t *. (k ** -.s) then
      int_of_float k - 1
    else draw ()
  in
  draw ()

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t ~k ~n =
  if k > n then invalid_arg "Rng.choose: k > n";
  (* Floyd's algorithm: k distinct samples in O(k) expected time. *)
  let seen = Hashtbl.create (2 * k) in
  let out = Array.make k 0 in
  for i = 0 to k - 1 do
    let j = n - k + i in
    let r = int t (j + 1) in
    let v = if Hashtbl.mem seen r then j else r in
    Hashtbl.replace seen v ();
    out.(i) <- v
  done;
  out
