(** Deterministic pseudo-random number generation.

    A splitmix64 generator with explicit state, so every experiment in the
    reproduction is seedable and repeatable. Used for parameter
    initialization, synthetic datasets, sampled softmax and the
    discrete-event simulator's noise distributions. *)

type t

val create : int -> t
(** [create seed] makes an independent generator. *)

val split : t -> t
(** Derive an independent generator (for parallel streams). *)

val copy : t -> t

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> lo:float -> hi:float -> float

val normal : t -> mean:float -> stddev:float -> float
(** Gaussian via Box–Muller. *)

val lognormal : t -> mu:float -> sigma:float -> float

val exponential : t -> rate:float -> float

val zipf : t -> n:int -> s:float -> int
(** Zipf-distributed rank in [\[0, n)] with exponent [s], via rejection
    sampling; models word-frequency skew in language-model workloads. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> k:int -> n:int -> int array
(** [choose t ~k ~n] samples [k] distinct indices from [\[0, n)].
    @raise Invalid_argument if [k > n]. *)
