type t = int array

let scalar : t = [||]

let equal (a : t) (b : t) = a = b

let rank (s : t) = Array.length s

let numel (s : t) = Array.fold_left ( * ) 1 s

let validate (s : t) =
  Array.iter
    (fun d -> if d < 0 then invalid_arg "Shape.validate: negative dimension")
    s

let to_string (s : t) =
  if rank s = 0 then "[]"
  else "[" ^ String.concat "x" (Array.to_list (Array.map string_of_int s)) ^ "]"

let pp fmt s = Format.pp_print_string fmt (to_string s)

let strides (s : t) =
  let n = rank s in
  let st = Array.make n 1 in
  for i = n - 2 downto 0 do
    st.(i) <- st.(i + 1) * s.(i + 1)
  done;
  st

let flat_index (s : t) (idx : int array) =
  if Array.length idx <> rank s then
    invalid_arg "Shape.flat_index: rank mismatch";
  let st = strides s in
  let off = ref 0 in
  for i = 0 to rank s - 1 do
    if idx.(i) < 0 || idx.(i) >= s.(i) then
      invalid_arg "Shape.flat_index: index out of bounds";
    off := !off + (idx.(i) * st.(i))
  done;
  !off

let multi_index (s : t) (flat : int) =
  let n = rank s in
  let idx = Array.make n 0 in
  let rem = ref flat in
  let st = strides s in
  for i = 0 to n - 1 do
    idx.(i) <- !rem / st.(i);
    rem := !rem mod st.(i)
  done;
  idx

let broadcast (a : t) (b : t) =
  let ra = rank a and rb = rank b in
  let r = max ra rb in
  let out = Array.make r 0 in
  for i = 0 to r - 1 do
    let da = if i < r - ra then 1 else a.(i - (r - ra)) in
    let db = if i < r - rb then 1 else b.(i - (r - rb)) in
    if da = db then out.(i) <- da
    else if da = 1 then out.(i) <- db
    else if db = 1 then out.(i) <- da
    else
      invalid_arg
        (Printf.sprintf "Shape.broadcast: incompatible %s vs %s" (to_string a)
           (to_string b))
  done;
  out

let broadcastable a b =
  match broadcast a b with _ -> true | exception Invalid_argument _ -> false

let normalize_axis (s : t) axis =
  let r = rank s in
  let a = if axis < 0 then axis + r else axis in
  if a < 0 || a >= r then
    invalid_arg
      (Printf.sprintf "Shape.normalize_axis: axis %d out of range for %s" axis
         (to_string s));
  a

let reduce ?(keep_dims = false) (s : t) axes =
  let r = rank s in
  let axes =
    if axes = [] then List.init r (fun i -> i)
    else List.map (normalize_axis s) axes
  in
  let reduced = Array.make r false in
  List.iter (fun a -> reduced.(a) <- true) axes;
  if keep_dims then
    Array.mapi (fun i d -> if reduced.(i) then 1 else d) s
  else
    Array.of_list
      (List.filteri (fun i _ -> not reduced.(i)) (Array.to_list s))

let concat (shapes : t list) ~axis =
  match shapes with
  | [] -> invalid_arg "Shape.concat: empty list"
  | first :: rest ->
      let axis = normalize_axis first axis in
      let out = Array.copy first in
      List.iter
        (fun s ->
          if rank s <> rank first then
            invalid_arg "Shape.concat: rank mismatch";
          Array.iteri
            (fun i d ->
              if i = axis then out.(i) <- out.(i) + d
              else if d <> first.(i) then
                invalid_arg "Shape.concat: dimension mismatch")
            s)
        rest;
      out

let squeeze (s : t) =
  Array.of_list (List.filter (fun d -> d <> 1) (Array.to_list s))
