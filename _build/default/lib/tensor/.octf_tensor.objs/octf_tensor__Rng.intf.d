lib/tensor/rng.mli:
