lib/tensor/tensor_ops.mli: Shape Tensor
