lib/tensor/tensor_ops.ml: Array Dtype Float List Printf Shape Stdlib Tensor
