lib/tensor/rng.ml: Array Float Hashtbl Int64
