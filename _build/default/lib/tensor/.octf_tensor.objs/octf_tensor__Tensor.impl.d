lib/tensor/tensor.ml: Array Dtype Float Format List Printf Rng Shape String
