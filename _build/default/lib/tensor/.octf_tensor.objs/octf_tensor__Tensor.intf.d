lib/tensor/tensor.mli: Dtype Format Rng Shape
