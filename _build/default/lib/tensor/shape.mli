(** Tensor shapes and the index algebra used throughout the runtime.

    A shape is an array of non-negative dimension sizes in row-major
    order; [[||]] is the shape of a scalar. *)

type t = int array

val scalar : t

val equal : t -> t -> bool

val rank : t -> int

val numel : t -> int
(** Number of elements: the product of all dimensions (1 for a scalar). *)

val validate : t -> unit
(** @raise Invalid_argument if any dimension is negative. *)

val to_string : t -> string
(** E.g. ["[2x3x4]"], ["[]"] for a scalar. *)

val pp : Format.formatter -> t -> unit

val strides : t -> int array
(** Row-major strides: the flat-index step for each dimension. *)

val flat_index : t -> int array -> int
(** [flat_index shape idx] converts a multi-index to a flat offset.
    @raise Invalid_argument if [idx] is out of bounds or has wrong rank. *)

val multi_index : t -> int -> int array
(** Inverse of {!flat_index}. *)

val broadcast : t -> t -> t
(** Numpy-style broadcast of two shapes.
    @raise Invalid_argument if the shapes are incompatible. *)

val broadcastable : t -> t -> bool

val reduce : ?keep_dims:bool -> t -> int list -> t
(** [reduce shape axes] is the shape after reducing over [axes]
    (all axes when [axes = []]). Negative axes count from the end. *)

val normalize_axis : t -> int -> int
(** Resolve a possibly-negative axis against a shape's rank.
    @raise Invalid_argument when out of range. *)

val concat : t list -> axis:int -> t
(** Shape of the concatenation of tensors with the given shapes.
    @raise Invalid_argument on mismatched non-concat dimensions. *)

val squeeze : t -> t
(** Drop all dimensions equal to 1. *)
