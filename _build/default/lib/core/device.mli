(** Devices and device specifications (§3.3).

    Each operation resides on a particular device, such as a CPU or GPU in
    a particular task. Devices are named by specs like
    ["/job:worker/task:3/device:GPU:1"]; users may give {e partial} specs
    ("any device in task 2", "a GPU in any task") and the placement
    algorithm ({!Placement}) picks a concrete device satisfying them.

    There is no real accelerator in this reproduction: a [GPU] or [TPU]
    device executes the same kernels on the host CPU but carries a
    {!perf_model} used by the benchmark harness to estimate step times
    (see DESIGN.md, substitution 1). *)

type device_type = CPU | GPU | TPU

(** A fully concrete device. *)
type t = {
  job : string;  (** e.g. "worker", "ps", "localhost" *)
  task : int;
  dev_type : device_type;
  dev_index : int;
}

(** A partial constraint: any [None] field is unconstrained. *)
type spec = {
  job_s : string option;
  task_s : int option;
  dev_type_s : device_type option;
  dev_index_s : int option;
}

(** Analytic performance model for simulated accelerators. *)
type perf_model = {
  flops_per_sec : float;  (** sustained FLOP/s for dense math *)
  mem_bandwidth : float;  (** bytes/s for memory-bound kernels *)
  launch_overhead : float;  (** seconds of fixed per-kernel overhead *)
}

val device_type_to_string : device_type -> string

val device_type_of_string : string -> device_type

val make : ?job:string -> ?task:int -> ?index:int -> device_type -> t

val to_string : t -> string
(** Canonical full name, e.g. ["/job:worker/task:0/device:GPU:1"]. *)

val of_string : string -> t
(** Parse a full device name. @raise Invalid_argument on partial specs. *)

val equal : t -> t -> bool

val unconstrained : spec

val spec_of_string : string -> spec
(** Parse a possibly partial spec; [""] means unconstrained. Accepts any
    subset of ["/job:j/task:n/device:TYPE:i"] components ("cpu:0" and
    "device:CPU:0" are both accepted). *)

val spec_to_string : spec -> string

val matches : spec -> t -> bool

val merge_specs : spec -> spec -> spec
(** Combine two partial constraints.
    @raise Invalid_argument if they conflict. *)

val default_perf : device_type -> perf_model
(** Calibrated throughput models: CPU ≈ 50 GFLOP/s (6-core Core
    i7-5930K-class), GPU ≈ 3.5 TFLOP/s sustained (K40/Titan-X-class; §2.1
    quotes 6 TFLOP/s peak), TPU an order of magnitude beyond GPU
    performance-per-watt (§2.1). *)
