lib/core/record_format.ml: Array Buffer Bytes Char Dtype Fun Int32 Int64 List Octf_tensor Shape String Sys Tensor
