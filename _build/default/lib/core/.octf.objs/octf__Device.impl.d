lib/core/device.ml: Buffer List Option Printf String
