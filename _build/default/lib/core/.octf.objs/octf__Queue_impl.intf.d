lib/core/queue_impl.mli: Octf_tensor Rng Tensor
