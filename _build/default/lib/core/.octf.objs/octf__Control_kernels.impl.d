lib/core/control_kernels.ml: Array Kernel List Node Octf_tensor Printf Rendezvous Tensor Value
