lib/core/array_kernels.ml: Array Attr Kernel List Node Octf_tensor Option Rng Shape Tensor Tensor_ops Value
