lib/core/io_kernels.ml: Array Attr Checkpoint_format Device Kernel List Node Octf_tensor Printf Record_format Resource Resource_manager Tensor Value
