lib/core/rendezvous.mli: Value
