lib/core/value.mli: Format Octf_tensor Queue_impl Resource Tensor
