lib/core/math_kernels.ml: Array Attr Dtype Kernel List Node Octf_tensor Option Printf Shape Tensor Tensor_ops Value
