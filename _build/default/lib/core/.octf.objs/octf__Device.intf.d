lib/core/device.mli:
