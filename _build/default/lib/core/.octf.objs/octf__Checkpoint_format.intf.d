lib/core/checkpoint_format.mli: Octf_tensor Tensor
