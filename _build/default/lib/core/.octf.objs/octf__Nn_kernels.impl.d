lib/core/nn_kernels.ml: Kernel Node Octf_tensor Tensor Tensor_ops Value
