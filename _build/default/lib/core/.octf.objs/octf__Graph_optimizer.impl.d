lib/core/graph_optimizer.ml: Array Attr Device Graph Hashtbl Kernel List Node Octf_tensor Printf Resource_manager Rng String Tensor Value
