lib/core/cluster.mli: Device Graph Resource_manager Session
