lib/core/resource.ml: Array Dtype Format Fun List Mutex Octf_tensor Printf Queue_impl Shape Tensor
