lib/core/rendezvous.ml: Condition Fun Hashtbl Mutex Value
