lib/core/cluster.ml: Device List Printf Resource_manager Session
