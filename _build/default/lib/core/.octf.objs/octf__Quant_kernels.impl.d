lib/core/quant_kernels.ml: Array Dtype Float Kernel Octf_tensor Tensor Value
