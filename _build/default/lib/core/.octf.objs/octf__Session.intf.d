lib/core/session.mli: Builder Device Graph Octf_tensor Resource_manager Tensor Tracer
