lib/core/builder.mli: Attr Dtype Graph Node Octf_tensor Shape Tensor
