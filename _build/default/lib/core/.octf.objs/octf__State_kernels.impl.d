lib/core/state_kernels.ml: Array Kernel List Node Octf_tensor Resource Resource_manager Tensor Tensor_ops Value
