lib/core/queue_impl.ml: Array Condition Fun List Mutex Octf_tensor Printf Rng Shape Tensor
