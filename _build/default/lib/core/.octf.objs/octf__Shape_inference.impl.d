lib/core/shape_inference.ml: Array Attr Builder Graph Hashtbl List Node Octf_tensor Option Printf Shape Tensor
