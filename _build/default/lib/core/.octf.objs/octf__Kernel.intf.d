lib/core/kernel.mli: Device Node Octf_tensor Queue_impl Rendezvous Resource Resource_manager Value
