lib/core/kernel.ml: Array Device Hashtbl List Node Octf_tensor Rendezvous Resource_manager Value
