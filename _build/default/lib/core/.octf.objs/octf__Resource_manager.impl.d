lib/core/resource_manager.ml: Fun Hashtbl List Mutex Resource
