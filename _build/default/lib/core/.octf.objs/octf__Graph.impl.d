lib/core/graph.ml: Array Device Format Hashtbl List Node Printf Queue
