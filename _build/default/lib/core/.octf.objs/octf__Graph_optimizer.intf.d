lib/core/graph_optimizer.mli: Graph Node
