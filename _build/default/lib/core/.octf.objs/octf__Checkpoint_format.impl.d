lib/core/checkpoint_format.ml: Array Bytes Dtype Fun Int32 Int64 List Octf_tensor Shape String Sys Tensor
