lib/core/shape_inference.mli: Builder Graph Node
