lib/core/node.mli: Attr Device Format Octf_tensor
