lib/core/pruner.mli: Graph Node
