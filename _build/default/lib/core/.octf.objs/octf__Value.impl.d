lib/core/value.ml: Format Octf_tensor Resource Tensor
