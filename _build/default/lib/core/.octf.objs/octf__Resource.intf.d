lib/core/resource.mli: Dtype Format Mutex Octf_tensor Queue_impl Shape Tensor
