lib/core/executor.mli: Graph Node Rendezvous Resource_manager Tracer Value
