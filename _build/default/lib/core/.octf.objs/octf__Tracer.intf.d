lib/core/tracer.mli: Format
