lib/core/tracer.ml: Buffer Format Hashtbl List Mutex Option Printf String
