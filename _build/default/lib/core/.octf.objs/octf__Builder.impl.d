lib/core/builder.ml: Array Attr Device Fun Graph List Node Octf_tensor Option Printf Shape String Tensor
