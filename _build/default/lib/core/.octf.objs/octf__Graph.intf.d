lib/core/graph.mli: Attr Device Format Node
