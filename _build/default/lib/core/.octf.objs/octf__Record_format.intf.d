lib/core/record_format.mli: Octf_tensor Tensor
