lib/core/gradients.mli: Builder Node
