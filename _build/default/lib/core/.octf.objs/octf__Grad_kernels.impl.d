lib/core/grad_kernels.ml: Array Attr Dtype Kernel List Node Octf_tensor Option Shape Tensor Tensor_ops Value
