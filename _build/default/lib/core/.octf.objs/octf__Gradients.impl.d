lib/core/gradients.ml: Array Attr Builder Dtype Fun Graph Hashtbl Lazy List Node Octf_tensor Option Printf Queue
