lib/core/node.ml: Array Attr Device Format List Printf String
