lib/core/queue_kernels.ml: Array Attr Device Kernel Node Octf_tensor Option Queue_impl Resource Resource_manager Rng Shape Tensor Tensor_ops Value
