lib/core/pruner.ml: Array Graph Hashtbl List Node Queue
