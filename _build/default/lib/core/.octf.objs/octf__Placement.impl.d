lib/core/placement.ml: Array Builtin_kernels Device Graph Hashtbl Kernel List Node Option Printf String
