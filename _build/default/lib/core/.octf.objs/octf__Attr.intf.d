lib/core/attr.mli: Dtype Format Octf_tensor Shape Tensor
