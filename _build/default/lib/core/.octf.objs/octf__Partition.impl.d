lib/core/partition.ml: Array Attr Device Graph Hashtbl List Node Octf_tensor Printf
