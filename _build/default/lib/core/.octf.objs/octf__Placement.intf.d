lib/core/placement.mli: Device Graph
