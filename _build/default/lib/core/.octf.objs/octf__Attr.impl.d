lib/core/attr.ml: Dtype Format List Octf_tensor Printf Shape String Tensor
