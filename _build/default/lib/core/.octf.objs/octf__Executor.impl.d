lib/core/executor.ml: Array Attr Builtin_kernels Device Graph Hashtbl Kernel List Node Obj Octf_tensor Option Printexc Printf Queue Rendezvous Resource_manager Rng Tensor Tracer Unix Value
