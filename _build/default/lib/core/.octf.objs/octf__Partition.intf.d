lib/core/partition.mli: Device Graph Node
