lib/core/resource_manager.mli: Resource
