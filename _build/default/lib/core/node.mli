(** Dataflow graph vertices (§3.1).

    Each vertex is an atomic operation: a named type, data inputs
    (endpoints of producer nodes), control inputs (pure ordering edges
    carrying no value), attributes, and a (possibly partial) device
    constraint assigned at construction and refined by placement. *)

(** A producer endpoint: output slot [index] of node [node_id]. *)
type endpoint = { node_id : int; index : int }

type t = {
  id : int;
  name : string;  (** unique within the graph *)
  op_type : string;
  inputs : endpoint array;
  control_inputs : int list;
  attrs : (string * Attr.t) list;
  device_spec : Device.spec;  (** user-requested constraint *)
  mutable assigned_device : Device.t option;  (** filled by placement *)
}

val endpoint : int -> int -> endpoint

val attr_bool : t -> string -> bool

val attr_int : t -> string -> int

val attr_float : t -> string -> float

val attr_string : t -> string -> string

val attr_dtype : t -> string -> Octf_tensor.Dtype.t

val attr_shape : t -> string -> Octf_tensor.Shape.t

val attr_tensor : t -> string -> Octf_tensor.Tensor.t

val attr_ints : t -> string -> int list

val is_stateful : t -> bool
(** Operations owning or mutating state (variables, queues, I/O); these
    are never pruned when listed as step targets, anchor colocation
    groups, and must stay on the device that owns their state. *)

val num_outputs : t -> int
(** Statically known output arity, derived from op type and attributes. *)

val pp : Format.formatter -> t -> unit
