(* Kernels that exist to serve the gradient graphs built by
   Octf.Gradients (§4.1): shape-restoring counterparts of reductions and
   array ops whose inverse needs the forward operand's runtime shape. *)

open Octf_tensor
module K = Kernel

let t v = Value.Tensor v

(* Map each input flat index to its reduction-output slot. *)
let reduce_slots in_shape axes =
  let r = Shape.rank in_shape in
  let axes =
    if axes = [] then List.init r (fun i -> i)
    else List.map (Shape.normalize_axis in_shape) axes
  in
  let reduced = Array.make r false in
  List.iter (fun a -> reduced.(a) <- true) axes;
  let kept_shape =
    Array.of_list
      (List.filteri (fun i _ -> not reduced.(i)) (Array.to_list in_shape))
  in
  let kept_strides = Shape.strides kept_shape in
  let slot i =
    let idx = Shape.multi_index in_shape i in
    let o = ref 0 and ki = ref 0 in
    for d = 0 to r - 1 do
      if not reduced.(d) then begin
        o := !o + (idx.(d) * kept_strides.(!ki));
        incr ki
      end
    done;
    !o
  in
  let group_size =
    Array.to_list in_shape
    |> List.filteri (fun i _ -> reduced.(i))
    |> List.fold_left ( * ) 1
  in
  (slot, group_size)

let reduce_grad ~mean ctx =
  let x = K.input_tensor ctx 0 and dy = K.input_tensor ctx 1 in
  let axes =
    Option.value ~default:[] (Attr.find_ints ctx.K.node.Node.attrs "axes")
  in
  let slot, group = reduce_slots (Tensor.shape x) axes in
  let scale = if mean then 1.0 /. float_of_int group else 1.0 in
  let out = Tensor.zeros (Tensor.dtype x) (Tensor.shape x) in
  for i = 0 to Tensor.numel x - 1 do
    Tensor.flat_set_f out i (Tensor.flat_get_f dy (slot i) *. scale)
  done;
  K.one (t out)

let register () =
  K.register ~op_type:"ReshapeLike" (fun ctx ->
      let x = K.input_tensor ctx 0 and like = K.input_tensor ctx 1 in
      K.one (t (Tensor.reshape x (Tensor.shape like))));
  K.register ~op_type:"ReduceSumGrad" (reduce_grad ~mean:false);
  K.register ~op_type:"ReduceMeanGrad" (reduce_grad ~mean:true);
  K.register ~op_type:"ConcatGrad" (fun ctx ->
      (* Inputs: dy, x_0 .. x_{n-1}; outputs: one slice of dy per x_i. *)
      let axis = Node.attr_int ctx.K.node "axis" in
      let n = Node.attr_int ctx.K.node "n" in
      let dy = K.input_tensor ctx 0 in
      let axis = Shape.normalize_axis (Tensor.shape dy) axis in
      let offset = ref 0 in
      Array.init n (fun i ->
          let xi = K.input_tensor ctx (i + 1) in
          let s = Tensor.shape xi in
          let begin_ = Array.make (Shape.rank s) 0 in
          begin_.(axis) <- !offset;
          offset := !offset + s.(axis);
          t (Tensor_ops.slice dy ~begin_ ~size:s)));
  K.register ~op_type:"SliceGrad" (fun ctx ->
      (* Gradient of Slice: dy padded back into x's shape. *)
      let x = K.input_tensor ctx 0 and dy = K.input_tensor ctx 1 in
      let begin_ = Array.of_list (Node.attr_ints ctx.K.node "begin") in
      let xs = Tensor.shape x and ds = Tensor.shape dy in
      let paddings =
        Array.init (Shape.rank xs) (fun i ->
            (begin_.(i), xs.(i) - begin_.(i) - ds.(i)))
      in
      K.one (t (Tensor_ops.pad dy ~paddings)));
  K.register ~op_type:"PadGrad" (fun ctx ->
      (* Gradient of Pad: the un-padded window of dy. *)
      let x = K.input_tensor ctx 0 and dy = K.input_tensor ctx 1 in
      let flat = Node.attr_ints ctx.K.node "paddings" in
      let rec firsts = function
        | [] -> []
        | a :: _ :: rest -> a :: firsts rest
        | [ _ ] -> invalid_arg "PadGrad: odd paddings"
      in
      let begin_ = Array.of_list (firsts flat) in
      K.one (t (Tensor_ops.slice dy ~begin_ ~size:(Tensor.shape x))));
  K.register ~op_type:"TileGrad" (fun ctx ->
      (* Gradient of Tile: sum the replicas back onto x's shape. *)
      let x = K.input_tensor ctx 0 and dy = K.input_tensor ctx 1 in
      let xs = Tensor.shape x in
      let out = Tensor.zeros (Tensor.dtype x) xs in
      let ds = Tensor.shape dy in
      for i = 0 to Tensor.numel dy - 1 do
        let idx = Shape.multi_index ds i in
        let xidx = Array.mapi (fun d v -> v mod xs.(d)) idx in
        let o = Shape.flat_index xs xidx in
        Tensor.flat_set_f out o (Tensor.flat_get_f out o +. Tensor.flat_get_f dy i)
      done;
      K.one (t out));
  K.register ~op_type:"AvgPoolGrad" (fun ctx ->
      (* Distribute each output gradient equally over its window. *)
      let input = K.input_tensor ctx 0 and dy = K.input_tensor ctx 1 in
      let kh, kw =
        match Node.attr_ints ctx.K.node "ksize" with
        | [ a; b ] -> (a, b)
        | _ -> invalid_arg "AvgPoolGrad: ksize"
      in
      let sh, sw =
        match Node.attr_ints ctx.K.node "strides" with
        | [ a; b ] -> (a, b)
        | _ -> invalid_arg "AvgPoolGrad: strides"
      in
      let same = Node.attr_string ctx.K.node "padding" = "SAME" in
      let is = Tensor.shape input and os = Tensor.shape dy in
      let batch = is.(0) and ih = is.(1) and iw = is.(2) and c = is.(3) in
      let oh = os.(1) and ow = os.(2) in
      let pad total in_size filter stride =
        if same then max 0 (((total - 1) * stride) + filter - in_size) / 2
        else 0
      in
      let ph = pad oh ih kh sh and pw = pad ow iw kw sw in
      let out = Tensor.zeros (Tensor.dtype input) is in
      for b = 0 to batch - 1 do
        for y = 0 to oh - 1 do
          for x = 0 to ow - 1 do
            (* Count live window cells once per (y, x). *)
            let count = ref 0 in
            for ky = 0 to kh - 1 do
              let sy = (y * sh) + ky - ph in
              if sy >= 0 && sy < ih then
                for kx = 0 to kw - 1 do
                  let sx = (x * sw) + kx - pw in
                  if sx >= 0 && sx < iw then incr count
                done
            done;
            if !count > 0 then
              for ch = 0 to c - 1 do
                let g =
                  Tensor.flat_get_f dy ((((b * oh) + y) * ow + x) * c + ch)
                  /. float_of_int !count
                in
                for ky = 0 to kh - 1 do
                  let sy = (y * sh) + ky - ph in
                  if sy >= 0 && sy < ih then
                    for kx = 0 to kw - 1 do
                      let sx = (x * sw) + kx - pw in
                      if sx >= 0 && sx < iw then begin
                        let o = (((b * ih) + sy) * iw + sx) * c + ch in
                        Tensor.flat_set_f out o (Tensor.flat_get_f out o +. g)
                      end
                    done
                done
              done
          done
        done
      done;
      K.one (t out));
  K.register ~op_type:"DynamicPartitionGrad" (fun ctx ->
      (* Inputs: partitions, dy_0 .. dy_{num-1}; rebuilds the gradient of
         the original data by replaying the partition order. *)
      let num = Node.attr_int ctx.K.node "num_partitions" in
      let partitions = K.input_tensor ctx 0 in
      let dys = Array.init num (fun i -> K.input_tensor ctx (i + 1)) in
      let nrows = Tensor.numel partitions in
      let rs =
        let nonempty = Array.to_list dys |> List.find_opt (fun d -> Tensor.numel d > 0) in
        match nonempty with
        | Some d -> Tensor.numel d / (Tensor.shape d).(0)
        | None -> 1
      in
      let tail =
        match Array.to_list dys |> List.find_opt (fun d -> Tensor.numel d > 0) with
        | Some d ->
            let s = Tensor.shape d in
            Array.sub s 1 (Shape.rank s - 1)
        | None -> [||]
      in
      let out_shape = Array.append [| nrows |] tail in
      let dtype =
        if Array.length dys > 0 then Tensor.dtype dys.(0) else Dtype.F32
      in
      let out = Tensor.zeros dtype out_shape in
      let cursors = Array.make num 0 in
      for row = 0 to nrows - 1 do
        let p = Tensor.flat_get_i partitions row in
        let src = dys.(p) and c = cursors.(p) in
        for j = 0 to rs - 1 do
          Tensor.flat_set_f out ((row * rs) + j)
            (Tensor.flat_get_f src ((c * rs) + j))
        done;
        cursors.(p) <- c + 1
      done;
      K.one (t out))
