(* One-shot registration of every built-in kernel group. The executor and
   placement call [ensure] before touching the registry, so callers never
   observe a partially-populated kernel table. *)

let registered = ref false

let mutex = Mutex.create ()

let ensure () =
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () ->
      if not !registered then begin
        Math_kernels.register ();
        Array_kernels.register ();
        Nn_kernels.register ();
        State_kernels.register ();
        Queue_kernels.register ();
        Control_kernels.register ();
        Io_kernels.register ();
        Grad_kernels.register ();
        Quant_kernels.register ();
        registered := true
      end)
