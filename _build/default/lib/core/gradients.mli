(** Automatic differentiation as a user-level library (§4.1).

    Given target outputs [ys] (e.g. a loss) and parameters [xs], this
    module performs the paper's breadth-first search to identify all
    backward paths from [ys] to [xs], building a gradient subgraph with
    ordinary {!Builder} operations and summing the partial gradients each
    path contributes. Nothing here is privileged: every gradient function
    emits standard graph nodes, and users can register gradients for
    their own operations exactly as the paper's users specialize
    gradients for batch normalization or gradient clipping.

    Sparse gradients: the gradient of [Gather] is represented as
    index/value pairs (the analogue of TensorFlow's IndexedSlices), so an
    optimizer can apply a sparse update ([ScatterSub]) touching only the
    embedding rows a step actually read (§4.2). A sparse gradient is
    densified automatically whenever it meets a dense consumer. *)

type grad =
  | Dense of Builder.output
  | Sparse of {
      indices : Builder.output;
      values : Builder.output;
      dense_shape : Builder.output;  (** 1-D int tensor, runtime shape *)
    }

val densify : Builder.t -> grad -> Builder.output
(** Convert a sparse gradient into the equivalent dense tensor via
    scatter-accumulation. Identity on dense gradients. *)

val gradients :
  Builder.t ->
  ys:Builder.output list ->
  xs:Builder.output list ->
  ?grad_ys:Builder.output list ->
  unit ->
  grad option list
(** One gradient per [x], [None] when no backward path reaches it.
    [grad_ys] seeds the backprop (default: ones like each [y]).

    Control-flow limitation: gradients do not flow through
    [Switch]/[Merge]/loop operations in this implementation; wrap
    conditional losses with [select] instead, or register custom
    gradients. *)

type grad_fn =
  Builder.t -> Node.t -> Builder.output option array -> grad option list
(** [fn b node dys] receives the (dense) gradient flowing into each
    output of [node] ([None] if an output is unused) and returns one
    gradient per {e input}. *)

val register_gradient : op_type:string -> grad_fn -> unit
(** Override or extend the gradient registry (user-level, as in the
    paper). *)

val has_gradient : op_type:string -> bool
