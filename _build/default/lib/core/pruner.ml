let prune graph ~feeds ~fetches ~targets =
  let fed = Hashtbl.create 8 in
  List.iter
    (fun (e : Node.endpoint) -> Hashtbl.replace fed e.node_id ())
    feeds;
  let needed = Hashtbl.create 64 in
  let work = Queue.create () in
  let want id =
    if not (Hashtbl.mem needed id) then begin
      Hashtbl.replace needed id ();
      Queue.add id work
    end
  in
  List.iter (fun (e : Node.endpoint) -> want e.node_id) fetches;
  List.iter want targets;
  while not (Queue.is_empty work) do
    let id = Queue.pop work in
    if not (Hashtbl.mem fed id) then begin
      let n = Graph.get graph id in
      Array.iter (fun (e : Node.endpoint) -> want e.node_id) n.Node.inputs;
      List.iter want n.Node.control_inputs
    end
  done;
  Hashtbl.fold (fun id () acc -> id :: acc) needed []
  |> List.sort compare
