(* Checkpointing kernels (§4.3): Save writes named tensors to a
   checkpoint file, Restore reads them back. The checkpoint path arrives
   as a string tensor (input 0) so clients can feed per-step filenames;
   the names are attributes. User-level policy (periodic saving,
   retention, fine-tuning) lives in Octf_train.Saver. *)

open Octf_tensor
module K = Kernel

let cpu = [ Device.CPU ]

let tensor_names node =
  match List.assoc_opt "tensor_names" node.Node.attrs with
  | Some (Attr.Strings l) -> l
  | _ -> invalid_arg (node.Node.name ^ ": missing tensor_names attribute")

let filename ctx =
  let t = K.input_tensor ctx 0 in
  Tensor.get_s t [||]

exception End_of_input of string
(* Raised by ReadRecord on an exhausted reader; input pipelines treat the
   resulting step error as end-of-stream (Figure 1's I/O subgraph). *)

let register () =
  K.register ~op_type:"RecordReader" ~devices:cpu (fun ctx ->
      (* Attrs: files (Strings). Loads every record up front — datasets
         here are synthetic and local; a streaming loader would slot in
         behind the same iterator resource. *)
      let node = ctx.K.node in
      let r =
        Resource_manager.find_or_create ctx.K.resources node.Node.name
          (fun () ->
            let files =
              match List.assoc_opt "files" node.Node.attrs with
              | Some (Attr.Strings fs) -> fs
              | _ -> invalid_arg (node.Node.name ^ ": missing files attr")
            in
            let records = List.concat_map Record_format.read_records files in
            Resource.Iterator
              (Resource.make_iterator ~name:node.Node.name ~records))
      in
      K.one (Value.Resource r));
  K.register ~op_type:"ReadRecord" ~devices:cpu (fun ctx ->
      let it = Value.iterator ctx.K.inputs.(0) in
      match Resource.iterator_next it with
      | Some record -> K.one (Value.Tensor (Tensor.scalar_s record))
      | None -> raise (End_of_input (Resource.name (Resource.Iterator it))));
  K.register ~op_type:"DecodeExample" ~devices:cpu (fun ctx ->
      let record = Tensor.get_s (K.input_tensor ctx 0) [||] in
      let names = tensor_names ctx.K.node in
      let entries = Record_format.decode_example record in
      Array.of_list
        (List.map
           (fun name ->
             match List.assoc_opt name entries with
             | Some t -> Value.Tensor t
             | None ->
                 failwith
                   (Printf.sprintf "DecodeExample: feature %S not in record"
                      name))
           names));
  K.register ~op_type:"Save" ~devices:cpu (fun ctx ->
      let names = tensor_names ctx.K.node in
      let data =
        List.mapi (fun i name -> (name, K.input_tensor ctx (i + 1))) names
      in
      Checkpoint_format.write (filename ctx) data;
      [||]);
  K.register ~op_type:"Restore" ~devices:cpu (fun ctx ->
      let names = tensor_names ctx.K.node in
      let entries = Checkpoint_format.read_all (filename ctx) in
      Array.of_list
        (List.map
           (fun name ->
             match List.assoc_opt name entries with
             | Some t -> Value.Tensor t
             | None ->
                 failwith
                   (Printf.sprintf "Restore: tensor %S not in checkpoint" name))
           names))
