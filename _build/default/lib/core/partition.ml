type partition = {
  device : Device.t;
  subgraph : Graph.t;
  node_ids : int list;
  endpoint_map : (Node.endpoint * Node.endpoint) list;
}

exception Partition_error of string

let control_flow_op = function
  | "Enter" | "Exit" | "NextIteration" | "Merge" | "Switch" | "LoopCond" ->
      true
  | _ -> false

type builder_state = {
  device : Device.t;
  graph : Graph.t;
  (* original endpoint -> local endpoint (for producers owned here, and
     for Recv nodes standing in for remote producers) *)
  mapping : (int * int, Node.endpoint) Hashtbl.t;
  (* original node id -> local node id (for control deps) *)
  node_map : (int, int) Hashtbl.t;
  (* rendezvous keys already received here *)
  recvs : (string, Node.endpoint) Hashtbl.t;
  mutable emap : (Node.endpoint * Node.endpoint) list;
}

let key ~src_dev ~dst_dev ~name =
  Printf.sprintf "%s;%s;%s" (Device.to_string src_dev)
    (Device.to_string dst_dev) name

let send_recv_attrs ~src_dev ~dst_dev ~name =
  [
    ("tensor_name", Attr.String name);
    ("send_device", Attr.String (Device.to_string src_dev));
    ("recv_device", Attr.String (Device.to_string dst_dev));
  ]

let partition graph ~nodes =
  try
    let device_of id =
      match (Graph.get graph id).Node.assigned_device with
      | Some d -> d
      | None ->
          raise
            (Partition_error
               ("unplaced node " ^ (Graph.get graph id).Node.name))
    in
    let states : (string, builder_state) Hashtbl.t = Hashtbl.create 8 in
    let state_for dev =
      let k = Device.to_string dev in
      match Hashtbl.find_opt states k with
      | Some s -> s
      | None ->
          let s =
            {
              device = dev;
              graph = Graph.create ();
              mapping = Hashtbl.create 32;
              node_map = Hashtbl.create 32;
              recvs = Hashtbl.create 8;
              emap = [];
            }
          in
          Hashtbl.replace states k s;
          s
    in
    (* Process in topological order so producers exist before consumers.
       Loop back edges (NextIteration -> Merge) are same-device (checked)
       and patched afterwards. *)
    let order =
      List.filter
        (fun (n : Node.t) -> List.mem n.Node.id nodes)
        (Graph.topological_order graph)
    in
    let in_set = Hashtbl.create 64 in
    List.iter (fun id -> Hashtbl.replace in_set id ()) nodes;
    let backpatches = ref [] in
    List.iter
      (fun (n : Node.t) ->
        let dev = device_of n.Node.id in
        let st = state_for dev in
        (* Resolve each data input to a local endpoint, inserting
           Send/Recv when the producer lives elsewhere. *)
        let resolve_input (e : Node.endpoint) =
          let src_dev = device_of e.node_id in
          if Device.equal src_dev dev then begin
            match Hashtbl.find_opt st.mapping (e.node_id, e.index) with
            | Some local -> local
            | None ->
                (* Loop back edge: producer not yet copied. Use a
                   placeholder endpoint and patch later. *)
                raise Exit
          end
          else begin
            let src_n = Graph.get graph e.node_id in
            if control_flow_op src_n.Node.op_type || control_flow_op n.Node.op_type
            then
              raise
                (Partition_error
                   (Printf.sprintf
                      "control-flow edge %s -> %s crosses devices %s -> %s; \
                       place each loop on a single device"
                      src_n.Node.name n.Node.name (Device.to_string src_dev)
                      (Device.to_string dev)));
            let name = Printf.sprintf "%s:%d" src_n.Node.name e.index in
            let k = key ~src_dev ~dst_dev:dev ~name in
            match Hashtbl.find_opt st.recvs k with
            | Some local -> local
            | None ->
                (* Send on the producer side. *)
                let src_st = state_for src_dev in
                let src_local =
                  match Hashtbl.find_opt src_st.mapping (e.node_id, e.index) with
                  | Some l -> l
                  | None ->
                      raise
                        (Partition_error
                           ("producer not yet partitioned: " ^ src_n.Node.name))
                in
                let _send =
                  Graph.add_node src_st.graph
                    ~name:(src_n.Node.name ^ "/_send")
                    ~inputs:[ src_local ]
                    ~attrs:(send_recv_attrs ~src_dev ~dst_dev:dev ~name)
                    ~op_type:"Send" ()
                in
                _send.Node.assigned_device <- Some src_dev;
                let recv =
                  Graph.add_node st.graph
                    ~name:(src_n.Node.name ^ "/_recv")
                    ~attrs:(send_recv_attrs ~src_dev ~dst_dev:dev ~name)
                    ~op_type:"Recv" ()
                in
                recv.Node.assigned_device <- Some dev;
                let local = Node.endpoint recv.Node.id 0 in
                Hashtbl.replace st.recvs k local;
                local
          end
        in
        let inputs = ref [] and patches = ref [] in
        Array.iteri
          (fun slot e ->
            match resolve_input e with
            | local -> inputs := local :: !inputs
            | exception Exit -> (
                (* Loop back edge (NextIteration -> Merge): reuse an
                   already-resolved sibling input as a placeholder and
                   patch once the producer has been copied. *)
                match !inputs with
                | placeholder :: _ ->
                    patches := (slot, e) :: !patches;
                    inputs := placeholder :: !inputs
                | [] ->
                    raise
                      (Partition_error
                         ("back edge into slot 0 of " ^ n.Node.name))))
          n.Node.inputs;
        let inputs = List.rev !inputs in
        (* Control inputs: local -> direct; remote -> dummy send/recv. *)
        let control_inputs =
          List.filter_map
            (fun c ->
              if not (Hashtbl.mem in_set c) then None
              else
                let src_dev = device_of c in
                if Device.equal src_dev dev then
                  Hashtbl.find_opt st.node_map c
                else begin
                  let src_n = Graph.get graph c in
                  if control_flow_op src_n.Node.op_type
                     || control_flow_op n.Node.op_type
                  then
                    raise
                      (Partition_error
                         (Printf.sprintf
                            "control edge %s -> %s crosses devices in a loop"
                            src_n.Node.name n.Node.name));
                  let name = Printf.sprintf "%s:control" src_n.Node.name in
                  let k = key ~src_dev ~dst_dev:dev ~name in
                  match Hashtbl.find_opt st.recvs k with
                  | Some local -> Some local.Node.node_id
                  | None ->
                      let src_st = state_for src_dev in
                      let src_local_id =
                        match Hashtbl.find_opt src_st.node_map c with
                        | Some l -> l
                        | None ->
                            raise
                              (Partition_error
                                 ("producer not yet partitioned: "
                                 ^ src_n.Node.name))
                      in
                      let dummy =
                        Graph.add_node src_st.graph
                          ~name:(src_n.Node.name ^ "/_ctl")
                          ~attrs:
                            [
                              ( "value",
                                Attr.Tensor (Octf_tensor.Tensor.scalar_i 0) );
                            ]
                          ~control_inputs:[ src_local_id ] ~op_type:"Const" ()
                      in
                      dummy.Node.assigned_device <- Some src_dev;
                      let _send =
                        Graph.add_node src_st.graph
                          ~name:(src_n.Node.name ^ "/_ctl_send")
                          ~inputs:[ Node.endpoint dummy.Node.id 0 ]
                          ~attrs:(send_recv_attrs ~src_dev ~dst_dev:dev ~name)
                          ~op_type:"Send" ()
                      in
                      _send.Node.assigned_device <- Some src_dev;
                      let recv =
                        Graph.add_node st.graph
                          ~name:(src_n.Node.name ^ "/_ctl_recv")
                          ~attrs:(send_recv_attrs ~src_dev ~dst_dev:dev ~name)
                          ~op_type:"Recv" ()
                      in
                      recv.Node.assigned_device <- Some dev;
                      let local = Node.endpoint recv.Node.id 0 in
                      Hashtbl.replace st.recvs k local;
                      Some recv.Node.id
                end)
            n.Node.control_inputs
        in
        let copy =
          Graph.add_node st.graph ~name:n.Node.name ~inputs ~control_inputs
            ~attrs:n.Node.attrs ~device:n.Node.device_spec
            ~op_type:n.Node.op_type ()
        in
        copy.Node.assigned_device <- Some dev;
        Hashtbl.replace st.node_map n.Node.id copy.Node.id;
        for out = 0 to max 0 (Node.num_outputs n) - 1 do
          let local = Node.endpoint copy.Node.id out in
          Hashtbl.replace st.mapping (n.Node.id, out) local;
          st.emap <- (Node.endpoint n.Node.id out, local) :: st.emap
        done;
        List.iter
          (fun (slot, e) -> backpatches := (st, copy.Node.id, slot, e) :: !backpatches)
          !patches)
      order;
    (* Patch loop back edges now that every producer exists. *)
    List.iter
      (fun (st, local_id, slot, (e : Node.endpoint)) ->
        match Hashtbl.find_opt st.mapping (e.node_id, e.index) with
        | Some local -> Graph.set_input st.graph ~node_id:local_id ~slot local
        | None ->
            raise
              (Partition_error
                 ("unresolved loop back edge into "
                 ^ (Graph.get st.graph local_id).Node.name)))
      !backpatches;
    let parts =
      Hashtbl.fold
        (fun _ st acc ->
          {
            device = st.device;
            subgraph = st.graph;
            node_ids = List.init (Graph.node_count st.graph) (fun i -> i);
            endpoint_map = st.emap;
          }
          :: acc)
        states []
    in
    Ok parts
  with Partition_error msg -> Error msg

let find_endpoint p (e : Node.endpoint) = List.assoc_opt e p.endpoint_map
