open Octf_tensor

let magic = "OCTFREC1"

(* Cheap checksum: sums of bytes with position mixing; catches the
   truncation and bit-rot cases a reader cares about. *)
let checksum s =
  let acc = ref 0 in
  String.iteri
    (fun i c -> acc := (!acc + ((i + 1) * Char.code c)) land 0x3FFFFFFF)
    s;
  !acc

let add_u32 buf v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  Buffer.add_bytes buf b

let add_u64 buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Buffer.add_bytes buf b

let write_body buf records =
  List.iter
    (fun r ->
      add_u64 buf (String.length r);
      Buffer.add_string buf r;
      add_u32 buf (checksum r))
    records

let write_records path records =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  write_body buf records;
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Sys.rename tmp path

let append_records path records =
  if not (Sys.file_exists path) then write_records path records
  else begin
    let buf = Buffer.create 4096 in
    write_body buf records;
    let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
    output_string oc (Buffer.contents buf);
    close_out oc
  end

let read_records path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let m = really_input_string ic (String.length magic) in
      if m <> magic then failwith ("Record_format: bad magic in " ^ path);
      let records = ref [] in
      (try
         while true do
           let len_b = really_input_string ic 8 in
           let len =
             Int64.to_int (Bytes.get_int64_le (Bytes.of_string len_b) 0)
           in
           let body = really_input_string ic len in
           let ck_b = really_input_string ic 4 in
           let ck = Int32.to_int (Bytes.get_int32_le (Bytes.of_string ck_b) 0) in
           if ck <> checksum body then
             failwith ("Record_format: checksum mismatch in " ^ path);
           records := body :: !records
         done
       with End_of_file -> ());
      List.rev !records)

(* Example codec: count, then per tensor name / dtype / shape / data,
   reusing the layout of Checkpoint_format but into a string. *)
let encode_example entries =
  let buf = Buffer.create 256 in
  add_u32 buf (List.length entries);
  List.iter
    (fun (name, tensor) ->
      add_u32 buf (String.length name);
      Buffer.add_string buf name;
      let d = Dtype.to_string (Tensor.dtype tensor) in
      add_u32 buf (String.length d);
      Buffer.add_string buf d;
      let shape = Tensor.shape tensor in
      add_u32 buf (Shape.rank shape);
      Array.iter (fun dim -> add_u64 buf dim) shape;
      let n = Tensor.numel tensor in
      match Tensor.dtype tensor with
      | Dtype.F32 | Dtype.F64 ->
          let b = Bytes.create (n * 8) in
          for i = 0 to n - 1 do
            Bytes.set_int64_le b (i * 8)
              (Int64.bits_of_float (Tensor.flat_get_f tensor i))
          done;
          Buffer.add_bytes buf b
      | Dtype.I32 | Dtype.I64 | Dtype.Bool ->
          let b = Bytes.create (n * 8) in
          for i = 0 to n - 1 do
            Bytes.set_int64_le b (i * 8)
              (Int64.of_int (Tensor.flat_get_i tensor i))
          done;
          Buffer.add_bytes buf b
      | Dtype.String ->
          Array.iter
            (fun s ->
              add_u32 buf (String.length s);
              Buffer.add_string buf s)
            (Tensor.string_buffer tensor))
    entries;
  Buffer.contents buf

let decode_example s =
  let pos = ref 0 in
  let fail () = failwith "Record_format: malformed example" in
  let take n =
    if !pos + n > String.length s then fail ();
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  let u32 () = Int32.to_int (Bytes.get_int32_le (Bytes.of_string (take 4)) 0) in
  let u64 () = Int64.to_int (Bytes.get_int64_le (Bytes.of_string (take 8)) 0) in
  let count = u32 () in
  List.init count (fun _ ->
      let name = take (u32 ()) in
      let dtype = Dtype.of_string (take (u32 ())) in
      let rank = u32 () in
      let shape = Array.init rank (fun _ -> u64 ()) in
      let n = Shape.numel shape in
      let tensor =
        match dtype with
        | Dtype.F32 | Dtype.F64 ->
            let b = Bytes.of_string (take (n * 8)) in
            Tensor.of_float_array ~dtype shape
              (Array.init n (fun i ->
                   Int64.float_of_bits (Bytes.get_int64_le b (i * 8))))
        | Dtype.I32 | Dtype.I64 ->
            let b = Bytes.of_string (take (n * 8)) in
            Tensor.of_int_array ~dtype shape
              (Array.init n (fun i ->
                   Int64.to_int (Bytes.get_int64_le b (i * 8))))
        | Dtype.Bool ->
            let b = Bytes.of_string (take (n * 8)) in
            Tensor.of_bool_array shape
              (Array.init n (fun i -> Bytes.get_int64_le b (i * 8) <> 0L))
        | Dtype.String ->
            Tensor.of_string_array shape
              (Array.init n (fun _ -> take (u32 ())))
      in
      (name, tensor))
