(* Quantization kernels (§5): "we have also implemented support for
   quantization, which enables faster inference in environments such as
   mobile devices ... and use the gemmlowp low-precision matrix
   multiplication library".

   8-bit affine quantization in the TF/gemmlowp style: a float tensor is
   mapped onto [0, 255] with a (min, max) range carried alongside as two
   scalar tensors; QuantizedMatMul accumulates the 8-bit codes in integer
   arithmetic (exactly what gemmlowp does) and produces the rescaled
   float result. Quantized values travel in int32 tensors holding
   0..255 codes. *)

open Octf_tensor
module K = Kernel

let t v = Value.Tensor v

let levels = 255.0

let range_of tensor =
  let lo = ref Float.infinity and hi = ref Float.neg_infinity in
  for i = 0 to Tensor.numel tensor - 1 do
    let v = Tensor.flat_get_f tensor i in
    if v < !lo then lo := v;
    if v > !hi then hi := v
  done;
  let lo = Float.min 0.0 !lo in
  let hi = Float.max 0.0 !hi in
  if hi -. lo < 1e-12 then (lo, lo +. 1.0) else (lo, hi)

let quantize tensor =
  let lo, hi = range_of tensor in
  let scale = levels /. (hi -. lo) in
  let q = Tensor.zeros Dtype.I32 (Tensor.shape tensor) in
  for i = 0 to Tensor.numel tensor - 1 do
    let code =
      Float.round ((Tensor.flat_get_f tensor i -. lo) *. scale)
    in
    Tensor.flat_set_i q i (int_of_float (Float.max 0.0 (Float.min levels code)))
  done;
  (q, lo, hi)

let dequantize q lo hi =
  let scale = (hi -. lo) /. levels in
  let out = Tensor.zeros Dtype.F32 (Tensor.shape q) in
  for i = 0 to Tensor.numel q - 1 do
    Tensor.flat_set_f out i (lo +. (float_of_int (Tensor.flat_get_i q i) *. scale))
  done;
  out

(* Integer-accumulated product of two quantized matrices, rescaled to
   float: with a = a_lo + sa*qa and b = b_lo + sb*qb,
   sum_k a_ik b_kj expands into four integer sums (the gemmlowp
   decomposition). *)
let quantized_matmul qa a_lo a_hi qb b_lo b_hi =
  let sa = (a_hi -. a_lo) /. levels and sb = (b_hi -. b_lo) /. levels in
  let shape_a = Tensor.shape qa and shape_b = Tensor.shape qb in
  if Array.length shape_a <> 2 || Array.length shape_b <> 2 then
    invalid_arg "QuantizedMatMul: 2-D operands required";
  let m = shape_a.(0) and k = shape_a.(1) and n = shape_b.(1) in
  if shape_b.(0) <> k then invalid_arg "QuantizedMatMul: inner dim mismatch";
  let a = Tensor.int_buffer qa and b = Tensor.int_buffer qb in
  (* Row sums of qa and column sums of qb for the cross terms. *)
  let row_sum = Array.make m 0 in
  for i = 0 to m - 1 do
    for p = 0 to k - 1 do
      row_sum.(i) <- row_sum.(i) + a.((i * k) + p)
    done
  done;
  let col_sum = Array.make n 0 in
  for p = 0 to k - 1 do
    for j = 0 to n - 1 do
      col_sum.(j) <- col_sum.(j) + b.((p * n) + j)
    done
  done;
  let out = Tensor.zeros Dtype.F32 [| m; n |] in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0 in
      for p = 0 to k - 1 do
        acc := !acc + (a.((i * k) + p) * b.((p * n) + j))
      done;
      let kf = float_of_int k in
      let value =
        (sa *. sb *. float_of_int !acc)
        +. (a_lo *. sb *. float_of_int col_sum.(j))
        +. (b_lo *. sa *. float_of_int row_sum.(i))
        +. (a_lo *. b_lo *. kf)
      in
      Tensor.flat_set_f out ((i * n) + j) value
    done
  done;
  out

let register () =
  K.register ~op_type:"Quantize" (fun ctx ->
      let q, lo, hi = quantize (K.input_tensor ctx 0) in
      [| t q; t (Tensor.scalar_f lo); t (Tensor.scalar_f hi) |]);
  K.register ~op_type:"Dequantize" (fun ctx ->
      let q = K.input_tensor ctx 0 in
      let lo = Tensor.flat_get_f (K.input_tensor ctx 1) 0 in
      let hi = Tensor.flat_get_f (K.input_tensor ctx 2) 0 in
      K.one (t (dequantize q lo hi)));
  K.register ~op_type:"QuantizedMatMul" (fun ctx ->
      let qa = K.input_tensor ctx 0 in
      let a_lo = Tensor.flat_get_f (K.input_tensor ctx 1) 0 in
      let a_hi = Tensor.flat_get_f (K.input_tensor ctx 2) 0 in
      let qb = K.input_tensor ctx 3 in
      let b_lo = Tensor.flat_get_f (K.input_tensor ctx 4) 0 in
      let b_hi = Tensor.flat_get_f (K.input_tensor ctx 5) 0 in
      K.one (t (quantized_matmul qa a_lo a_hi qb b_lo b_hi)))
