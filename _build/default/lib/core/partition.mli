(** Graph partitioning with Send/Recv insertion (§3.3).

    After placement, the step's operations are split into per-device
    subgraphs. A per-device subgraph for device [d] contains all of the
    operations assigned to [d], with additional [Send] and [Recv]
    operations replacing every edge that crosses a device boundary. The
    pair agrees on a rendezvous key naming the value; a tensor consumed
    several times on one remote device is sent once. Cross-device
    {e control} edges are carried by sending a dummy scalar whose [Recv]
    becomes a control input of the consumer. *)

type partition = {
  device : Device.t;
  subgraph : Graph.t;
  node_ids : int list;  (** all node ids of [subgraph] (it is dense) *)
  (* Mapping from original endpoints to endpoints in [subgraph]: *)
  endpoint_map : (Node.endpoint * Node.endpoint) list;
}

exception Partition_error of string

val partition :
  Graph.t -> nodes:int list -> (partition list, string) result
(** Split the (placed) subgraph induced by [nodes] by assigned device.
    Returns one partition per device that owns at least one node.

    @raise Partition_error if a node is unplaced, or a control-flow
    operation's edge crosses devices (loops must be placed on a single
    device in this implementation). *)

val find_endpoint :
  partition -> Node.endpoint -> Node.endpoint option
(** Map an original-graph endpoint into this partition, if owned here. *)
