(** Step pruning (§3.2): dead-code elimination for partial execution.

    A step declares feeds (edges whose values the client injects) and
    fetches/targets (outputs and side-effecting operations the client
    wants). The runtime prunes the graph to the necessary set of
    operations: everything backward-reachable from the fetches and
    targets over data and control edges, not expanding past fed nodes. *)

val prune :
  Graph.t ->
  feeds:Node.endpoint list ->
  fetches:Node.endpoint list ->
  targets:int list ->
  int list
(** Node ids of the subgraph to execute, in ascending order. Fed nodes
    are included (the executor seeds them with the fed values) but their
    inputs are not. *)
