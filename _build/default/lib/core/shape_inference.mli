(** Static shape inference over the dataflow graph.

    Where shapes are derivable at construction time this pass computes
    them, so clients can catch dimension mismatches (a transposed MatMul,
    a bad Concat) when the graph is {e built} rather than when a step
    runs. Shapes that depend on runtime values — dynamic partitions,
    queue contents, [-1] batch dimensions — stay {!Unknown}; inference is
    deliberately partial (§3.1 notes that variable-size dimensions cost
    "more sophisticated shape inference", and this is that trade
    implemented conservatively). *)

type shape = Known of int array | Unknown

exception Shape_error of string
(** Raised when the known input shapes of a node are inconsistent, e.g.
    mismatched MatMul inner dimensions; the message names the node. *)

val infer_node : Graph.t -> Node.t -> shape list
(** One shape per output of the node (memoless; see {!engine} for
    amortized use). *)

type engine

val engine : Graph.t -> engine
(** Memoizing inference over one graph; results are cached per node.
    Create a fresh engine after mutating the graph. *)

val endpoint_shape : engine -> Node.endpoint -> shape

val output_shape : engine -> Builder.output -> shape

val validate : Graph.t -> unit
(** Run inference over every node, surfacing the first
    {!Shape_error}. *)

val to_string : shape -> string
