(** The placement algorithm (§3.3).

    Placement computes a feasible set of devices for each operation
    (devices matching the user's partial constraint whose type has a
    registered kernel), computes the sets of operations that must be
    colocated (an operation consuming a reference handle must live with
    the stateful operation that owns the state), and selects a satisfying
    device for each colocation group, balancing load across equally
    feasible devices. *)

exception Placement_error of string

val place : Graph.t -> nodes:int list -> devices:Device.t list -> unit
(** Assign [Node.assigned_device] for every listed node that does not
    already have one. Existing assignments are respected and constrain
    their colocation group.

    @raise Placement_error when a group's constraints are unsatisfiable
    (no device matches, or two members demand different devices). *)

val colocation_groups : Graph.t -> nodes:int list -> int list list
(** The computed colocation groups (each a list of node ids); exposed for
    tests and debugging. *)
