(** Per-task registry of named stateful resources.

    Stateful operations look their resource up by node name, creating it
    on first use; state therefore persists across steps of the same
    session/task, which is what lets concurrent training, input and
    checkpointing subgraphs share variables and queues (§3.2). *)

type t

val create : unit -> t

val find_or_create : t -> string -> (unit -> Resource.t) -> Resource.t
(** Thread-safe lookup-or-insert keyed by resource name. *)

val find : t -> string -> Resource.t option

val names : t -> string list

val variables : t -> Resource.variable list
(** All variable resources, in creation order (for checkpointing). *)

val clear : t -> unit
