open Octf_tensor

let magic = "OCTFCKPT1"

let write_string oc s =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int (String.length s));
  output_bytes oc b;
  output_string oc s

let read_string ic =
  let b = Bytes.create 4 in
  really_input ic b 0 4;
  let len = Int32.to_int (Bytes.get_int32_le b 0) in
  let s = Bytes.create len in
  really_input ic s 0 len;
  Bytes.to_string s

let write_int64 oc i =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int i);
  output_bytes oc b

let read_int64 ic =
  let b = Bytes.create 8 in
  really_input ic b 0 8;
  Int64.to_int (Bytes.get_int64_le b 0)

let write_tensor oc name t =
  write_string oc name;
  write_string oc (Dtype.to_string (Tensor.dtype t));
  let shape = Tensor.shape t in
  write_int64 oc (Shape.rank shape);
  Array.iter (fun d -> write_int64 oc d) shape;
  let n = Tensor.numel t in
  write_int64 oc n;
  match Tensor.dtype t with
  | Dtype.F32 | Dtype.F64 ->
      let b = Bytes.create (n * 8) in
      for i = 0 to n - 1 do
        Bytes.set_int64_le b (i * 8)
          (Int64.bits_of_float (Tensor.flat_get_f t i))
      done;
      output_bytes oc b
  | Dtype.I32 | Dtype.I64 | Dtype.Bool ->
      let b = Bytes.create (n * 8) in
      for i = 0 to n - 1 do
        Bytes.set_int64_le b (i * 8) (Int64.of_int (Tensor.flat_get_i t i))
      done;
      output_bytes oc b
  | Dtype.String ->
      Array.iter (fun s -> write_string oc s) (Tensor.string_buffer t)

let read_tensor ic =
  let name = read_string ic in
  let dtype = Dtype.of_string (read_string ic) in
  let rank = read_int64 ic in
  let shape = Array.init rank (fun _ -> read_int64 ic) in
  let n = read_int64 ic in
  let t =
    match dtype with
    | Dtype.F32 | Dtype.F64 ->
        let b = Bytes.create (n * 8) in
        really_input ic b 0 (n * 8);
        Tensor.of_float_array ~dtype shape
          (Array.init n (fun i ->
               Int64.float_of_bits (Bytes.get_int64_le b (i * 8))))
    | Dtype.I32 | Dtype.I64 ->
        let b = Bytes.create (n * 8) in
        really_input ic b 0 (n * 8);
        Tensor.of_int_array ~dtype shape
          (Array.init n (fun i -> Int64.to_int (Bytes.get_int64_le b (i * 8))))
    | Dtype.Bool ->
        let b = Bytes.create (n * 8) in
        really_input ic b 0 (n * 8);
        Tensor.of_bool_array shape
          (Array.init n (fun i -> Bytes.get_int64_le b (i * 8) <> 0L))
    | Dtype.String ->
        Tensor.of_string_array shape
          (Array.init n (fun _ -> read_string ic))
  in
  (name, t)

let write path entries =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc magic;
     write_int64 oc (List.length entries);
     List.iter (fun (name, t) -> write_tensor oc name t) entries;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let m = Bytes.create (String.length magic) in
      (try really_input ic m 0 (String.length magic)
       with End_of_file -> failwith "Checkpoint_format: truncated file");
      if Bytes.to_string m <> magic then
        failwith ("Checkpoint_format: bad magic in " ^ path);
      let count = read_int64 ic in
      List.init count (fun _ -> read_tensor ic))

let read path name =
  match List.assoc_opt name (read_all path) with
  | Some t -> t
  | None -> raise Not_found

let names path = List.map fst (read_all path)
