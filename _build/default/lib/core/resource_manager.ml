type t = {
  table : (string, Resource.t) Hashtbl.t;
  mutable order : string list;  (* reverse creation order *)
  mutex : Mutex.t;
}

let create () =
  { table = Hashtbl.create 64; order = []; mutex = Mutex.create () }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find_or_create t name make =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some r -> r
      | None ->
          let r = make () in
          Hashtbl.replace t.table name r;
          t.order <- name :: t.order;
          r)

let find t name = with_lock t (fun () -> Hashtbl.find_opt t.table name)

let names t = with_lock t (fun () -> List.rev t.order)

let variables t =
  with_lock t (fun () ->
      List.filter_map
        (fun name ->
          match Hashtbl.find_opt t.table name with
          | Some (Resource.Variable v) -> Some v
          | Some (Resource.Queue _ | Resource.Iterator _ | Resource.Tensor_array _)
          | None ->
              None)
        (List.rev t.order))

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.order <- [])
