(** Record files — the "distributed file system" input format of
    Figure 1.

    The paper's training pipelines start with an I/O subgraph whose
    Reader operations pull records from files; this module provides the
    on-disk container (length-prefixed records with a checksum, in the
    spirit of TFRecord) and an Example codec serializing a set of named
    tensors into one record. Reader kernels ({!Io_kernels}) iterate the
    container; {!Octf_data} writes datasets into it. *)

open Octf_tensor

(** {1 Container} *)

val write_records : string -> string list -> unit
(** Write a record file atomically (temp-file rename). *)

val read_records : string -> string list
(** @raise Failure on bad magic or a checksum mismatch. *)

val append_records : string -> string list -> unit
(** Append to an existing record file (or create it). *)

(** {1 Examples: named-tensor records} *)

val encode_example : (string * Tensor.t) list -> string

val decode_example : string -> (string * Tensor.t) list
(** @raise Failure on malformed input. *)
