(** On-disk checkpoint format used by the [Save] and [Restore] operations
    (§4.3).

    A checkpoint is a single binary file: a magic header followed by a
    count and one record per tensor (name, dtype, shape, raw data). The
    format is deliberately simple — the paper's point is that save and
    restore are ordinary dataflow operations composed in user-level code,
    not that the file format is clever. *)

open Octf_tensor

val write : string -> (string * Tensor.t) list -> unit
(** [write path entries] atomically writes all named tensors (via a
    temp-file rename). *)

val read_all : string -> (string * Tensor.t) list
(** @raise Failure on a malformed file. *)

val read : string -> string -> Tensor.t
(** [read path name] extracts a single named tensor.
    @raise Not_found if the name is absent. *)

val names : string -> string list
