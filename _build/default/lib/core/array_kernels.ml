(* Array-manipulation kernels, including the sparse-access primitives the
   paper composes sharded embedding layers from (§4.2): Gather,
   DynamicPartition and DynamicStitch, each with a registered gradient. *)

open Octf_tensor
module K = Kernel

let t v = Value.Tensor v

let register () =
  K.register ~op_type:"Identity" (fun ctx -> K.one ctx.K.inputs.(0));
  K.register ~op_type:"StopGradient" (fun ctx -> K.one ctx.K.inputs.(0));
  K.register ~op_type:"Reshape" (fun ctx ->
      let shape = Node.attr_shape ctx.K.node "shape" in
      K.one (t (Tensor.reshape (K.input_tensor ctx 0) shape)));
  K.register ~op_type:"RangeLike" (fun ctx ->
      (* 1-D int tensor [0 .. numel x), e.g. original row positions fed to
         DynamicStitch in a sharded embedding lookup (§4.2). *)
      let n = Tensor.numel (K.input_tensor ctx 0) in
      K.one (t (Tensor.iota n)));
  K.register ~op_type:"RandomIndices" (fun ctx ->
      (* n uniform ints in [0, range): the candidate sampler behind
         sampled softmax (§4.2, §6.4). *)
      let n = Node.attr_int ctx.K.node "n" in
      let range = Node.attr_int ctx.K.node "range" in
      let out = Array.init n (fun _ -> Rng.int ctx.K.rng range) in
      K.one (t (Tensor.of_int_array [| n |] out)));
  K.register ~op_type:"ExpandDims" (fun ctx ->
      let x = K.input_tensor ctx 0 in
      let axis = Node.attr_int ctx.K.node "axis" in
      let s = Tensor.shape x in
      let r = Shape.rank s in
      let axis = if axis < 0 then axis + r + 1 else axis in
      if axis < 0 || axis > r then invalid_arg "ExpandDims: axis out of range";
      let out_shape =
        Array.concat
          [ Array.sub s 0 axis; [| 1 |]; Array.sub s axis (r - axis) ]
      in
      K.one (t (Tensor.reshape x out_shape)));
  K.register ~op_type:"Transpose" (fun ctx ->
      let perm =
        Option.map Array.of_list
          (Attr.find_ints ctx.K.node.Node.attrs "perm")
      in
      K.one (t (Tensor_ops.transpose ?perm (K.input_tensor ctx 0))));
  K.register ~op_type:"Concat" (fun ctx ->
      let axis = Node.attr_int ctx.K.node "axis" in
      K.one (t (Tensor_ops.concat (K.all_input_tensors ctx) ~axis)));
  K.register ~op_type:"Slice" (fun ctx ->
      let begin_ = Array.of_list (Node.attr_ints ctx.K.node "begin") in
      let size = Array.of_list (Node.attr_ints ctx.K.node "size") in
      K.one (t (Tensor_ops.slice (K.input_tensor ctx 0) ~begin_ ~size)));
  K.register ~op_type:"Pad" (fun ctx ->
      (* Flattened [before0; after0; before1; after1; ...]. *)
      let flat = Node.attr_ints ctx.K.node "paddings" in
      let rec pairs = function
        | [] -> []
        | a :: b :: rest -> (a, b) :: pairs rest
        | [ _ ] -> invalid_arg "Pad: odd paddings list"
      in
      let paddings = Array.of_list (pairs flat) in
      K.one (t (Tensor_ops.pad (K.input_tensor ctx 0) ~paddings)));
  K.register ~op_type:"Tile" (fun ctx ->
      let multiples = Array.of_list (Node.attr_ints ctx.K.node "multiples") in
      K.one (t (Tensor_ops.tile (K.input_tensor ctx 0) ~multiples)));
  K.register ~op_type:"OneHot" (fun ctx ->
      let depth = Node.attr_int ctx.K.node "depth" in
      K.one (t (Tensor_ops.one_hot (K.input_tensor ctx 0) ~depth)));
  K.register ~op_type:"Gather" (fun ctx ->
      K.one
        (t (Tensor_ops.gather (K.input_tensor ctx 0) (K.input_tensor ctx 1))));
  K.register ~op_type:"DynamicPartition" (fun ctx ->
      let num = Node.attr_int ctx.K.node "num_partitions" in
      let parts =
        Tensor_ops.dynamic_partition (K.input_tensor ctx 0)
          (K.input_tensor ctx 1) ~num
      in
      Array.of_list (List.map t parts));
  K.register ~op_type:"DynamicStitch" (fun ctx ->
      (* Inputs: n index tensors followed by n data tensors. *)
      let n = Node.attr_int ctx.K.node "n" in
      let all = K.all_input_tensors ctx in
      let rec take k l =
        if k = 0 then ([], l)
        else
          match l with
          | x :: rest ->
              let a, b = take (k - 1) rest in
              (x :: a, b)
          | [] -> invalid_arg "DynamicStitch: missing inputs"
      in
      let indices, data = take n all in
      K.one (t (Tensor_ops.dynamic_stitch indices data)));
  K.register ~op_type:"Pack" (fun ctx ->
      (* Stack n same-shape tensors along a new leading axis. *)
      let inputs = K.all_input_tensors ctx in
      let first = List.hd inputs in
      let shape = Tensor.shape first in
      let reshaped =
        List.map
          (fun x -> Tensor.reshape x (Array.append [| 1 |] shape))
          inputs
      in
      K.one (t (Tensor_ops.concat reshaped ~axis:0)));
  K.register ~op_type:"Unpack" (fun ctx ->
      (* Inverse of Pack: split the leading axis into single rows and
         drop it. *)
      let x = K.input_tensor ctx 0 in
      let num = Node.attr_int ctx.K.node "num" in
      let s = Tensor.shape x in
      if Shape.rank s = 0 || s.(0) <> num then
        invalid_arg "Unpack: leading dimension does not match num";
      let tail = Array.sub s 1 (Shape.rank s - 1) in
      Tensor_ops.split x ~axis:0 ~num
      |> List.map (fun piece -> t (Tensor.reshape piece tail))
      |> Array.of_list);
  K.register ~op_type:"Split" (fun ctx ->
      let x = K.input_tensor ctx 0 in
      let axis = Node.attr_int ctx.K.node "axis" in
      let num = Node.attr_int ctx.K.node "num" in
      Array.of_list (List.map t (Tensor_ops.split x ~axis ~num)));
  K.register ~op_type:"ScatterIntoShape" (fun ctx ->
      (* Dense accumulation of a sparse gradient: zeros of the given
         shape with update rows added at the given indices. *)
      let shape = Tensor.to_int_array (K.input_tensor ctx 0) in
      let indices = K.input_tensor ctx 1 in
      let updates = K.input_tensor ctx 2 in
      let zeros = Tensor.zeros (Tensor.dtype updates) shape in
      K.one (t (Tensor_ops.scatter_add zeros indices updates)))
