type device_type = CPU | GPU | TPU

type t = { job : string; task : int; dev_type : device_type; dev_index : int }

type spec = {
  job_s : string option;
  task_s : int option;
  dev_type_s : device_type option;
  dev_index_s : int option;
}

type perf_model = {
  flops_per_sec : float;
  mem_bandwidth : float;
  launch_overhead : float;
}

let device_type_to_string = function CPU -> "CPU" | GPU -> "GPU" | TPU -> "TPU"

let device_type_of_string s =
  match String.uppercase_ascii s with
  | "CPU" -> CPU
  | "GPU" -> GPU
  | "TPU" -> TPU
  | _ -> invalid_arg ("Device.device_type_of_string: " ^ s)

let make ?(job = "localhost") ?(task = 0) ?(index = 0) dev_type =
  { job; task; dev_type; dev_index = index }

let to_string d =
  Printf.sprintf "/job:%s/task:%d/device:%s:%d" d.job d.task
    (device_type_to_string d.dev_type)
    d.dev_index

let equal (a : t) (b : t) = a = b

let unconstrained =
  { job_s = None; task_s = None; dev_type_s = None; dev_index_s = None }

let is_device_type ty =
  match device_type_of_string ty with
  | _ -> true
  | exception Invalid_argument _ -> false

(* Specs are '/'-separated "key:value" (or "device:TYPE:i") components. *)
let spec_of_string s =
  let parts = String.split_on_char '/' s |> List.filter (fun p -> p <> "") in
  let with_type acc ty idx =
    {
      acc with
      dev_type_s = Some (device_type_of_string ty);
      dev_index_s = (match idx with None -> acc.dev_index_s
                     | Some i -> Some (int_of_string i));
    }
  in
  List.fold_left
    (fun acc part ->
      match String.split_on_char ':' part with
      | [ "job"; j ] -> { acc with job_s = Some j }
      | [ "task"; n ] | [ "replica"; n ] ->
          { acc with task_s = Some (int_of_string n) }
      | [ "device"; ty ] when is_device_type ty -> with_type acc ty None
      | [ "device"; ty; idx ] when is_device_type ty ->
          with_type acc ty (Some idx)
      | [ ty ] when is_device_type ty -> with_type acc ty None
      | [ ty; idx ] when is_device_type ty -> with_type acc ty (Some idx)
      | _ -> invalid_arg ("Device.spec_of_string: bad component " ^ part))
    unconstrained parts

let of_string s =
  let spec = spec_of_string s in
  match spec with
  | { job_s = Some job; task_s = Some task; dev_type_s = Some dev_type;
      dev_index_s = Some dev_index } ->
      { job; task; dev_type; dev_index }
  | _ -> invalid_arg ("Device.of_string: partial spec " ^ s)

let spec_to_string sp =
  let buf = Buffer.create 32 in
  Option.iter (fun j -> Buffer.add_string buf ("/job:" ^ j)) sp.job_s;
  Option.iter (fun t -> Buffer.add_string buf ("/task:" ^ string_of_int t))
    sp.task_s;
  (match (sp.dev_type_s, sp.dev_index_s) with
  | Some ty, Some i ->
      Buffer.add_string buf
        (Printf.sprintf "/device:%s:%d" (device_type_to_string ty) i)
  | Some ty, None ->
      Buffer.add_string buf ("/device:" ^ device_type_to_string ty)
  | None, Some i -> Buffer.add_string buf (Printf.sprintf "/device:*:%d" i)
  | None, None -> ());
  Buffer.contents buf

let matches sp d =
  (match sp.job_s with None -> true | Some j -> j = d.job)
  && (match sp.task_s with None -> true | Some t -> t = d.task)
  && (match sp.dev_type_s with None -> true | Some ty -> ty = d.dev_type)
  && match sp.dev_index_s with None -> true | Some i -> i = d.dev_index

let merge_field name a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y ->
      if x = y then Some x
      else invalid_arg ("Device.merge_specs: conflicting " ^ name)

let merge_specs a b =
  {
    job_s = merge_field "job" a.job_s b.job_s;
    task_s = merge_field "task" a.task_s b.task_s;
    dev_type_s = merge_field "device type" a.dev_type_s b.dev_type_s;
    dev_index_s = merge_field "device index" a.dev_index_s b.dev_index_s;
  }

let default_perf = function
  | CPU ->
      { flops_per_sec = 5.0e10; mem_bandwidth = 3.0e10;
        launch_overhead = 5.0e-7 }
  | GPU ->
      { flops_per_sec = 3.5e12; mem_bandwidth = 2.4e11;
        launch_overhead = 5.0e-6 }
  | TPU ->
      { flops_per_sec = 2.0e13; mem_bandwidth = 6.0e11;
        launch_overhead = 2.0e-6 }
