(** Master-side graph optimizations (§5).

    "Since the master sees the overall computation for a step, it applies
    standard optimizations such as common subexpression elimination and
    constant folding; pruning is a form of dead code elimination."

    Both passes rewrite the graph in place by repointing consumer edges:
    constant folding evaluates pure operations whose inputs are all
    constants and replaces them with [Const] nodes; CSE merges pure
    operations with identical type, attributes, inputs and constraints.
    Rewrites never mutate an existing node's input array in place (a new
    node record replaces it), so executors holding references to old
    records are unaffected; callers should re-prune afterwards to drop
    the disconnected nodes. *)

val optimize : Graph.t -> nodes:int list -> feeds:Node.endpoint list -> unit
(** Run constant folding then CSE over the given (pruned) node set.
    Fed nodes are never folded or merged. *)

val is_pure : Node.t -> bool
(** Operations eligible for folding/merging: stateless, side-effect free,
    not control flow, not communication, not fed at runtime. *)
