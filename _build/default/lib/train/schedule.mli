(** Learning-rate schedules as graph subcomputations.

    Exactly the pattern of §4.1: because parameters, counters and
    arithmetic are all ordinary graph elements, schedules are user code —
    a read of the global-step variable followed by a few math ops — not
    runtime features. Feed the resulting output into
    {!Optimizer.minimize_with_rate}. *)

module B = Octf.Builder
module Vs = Octf_nn.Var_store

val global_step : Vs.t -> Vs.variable
(** The (non-trainable, zero-initialized) scalar step counter; call
    {!increment} once per training step. Idempotent per store. *)

val increment : Vs.t -> B.output
(** A target that bumps the counter by one. *)

val constant : Vs.t -> float -> B.output

val exponential_decay :
  Vs.t -> base:float -> decay:float -> decay_steps:int -> B.output
(** [base * decay^(step / decay_steps)] (continuous exponent). *)

val inverse_time_decay :
  Vs.t -> base:float -> decay:float -> decay_steps:int -> B.output
(** [base / (1 + decay * step / decay_steps)]. *)

val piecewise :
  Vs.t -> boundaries:(int * float) list -> default:float -> B.output
(** [boundaries] are (step, rate) pairs in increasing step order: the
    rate of the last boundary whose step is ≤ the current step, else
    [default]. *)
