(** Optimization algorithms as user-level graph code (§4.1).

    The paper's parameter-server predecessor hard-coded the update rule
    (-=) in privileged C++; advanced schemes like Momentum required
    modifying the server. Here, exactly as in TensorFlow, every
    optimizer is a composition of [Variable], [Read], [Assign*] and
    arithmetic operations: accumulator "slots" are ordinary variables
    colocated with the parameter, and adding a new algorithm means
    writing a few lines against {!Octf.Builder}, not touching the
    runtime.

    Sparse gradients (from embedding lookups, §4.2) are applied with
    [ScatterSub] for plain SGD, touching only the rows a step actually
    read; slot-based algorithms densify them first. *)

module B = Octf.Builder
module Vs = Octf_nn.Var_store

type algorithm =
  | Sgd
  | Momentum of { momentum : float }
  | Adagrad of { epsilon : float }
  | Rmsprop of { decay : float; epsilon : float }
  | Adadelta of { rho : float; epsilon : float }
  | Adam of { beta1 : float; beta2 : float; epsilon : float }

val momentum_default : algorithm

val adagrad_default : algorithm

val rmsprop_default : algorithm

val adadelta_default : algorithm

val adam_default : algorithm

val minimize :
  Vs.t ->
  ?algorithm:algorithm ->
  ?var_list:Vs.variable list ->
  ?clip_norm:float ->
  lr:float ->
  loss:B.output ->
  unit ->
  B.output
(** Build the gradient subgraph for [loss] w.r.t. the trainable variables
    (or [var_list]) and one update subgraph per variable; returns a
    single target executing every update. [clip_norm] rescales each
    gradient to at most the given L2 norm before applying (the §4.1
    gradient-clipping example). *)

val minimize_with_rate :
  Vs.t ->
  ?algorithm:algorithm ->
  ?var_list:Vs.variable list ->
  ?clip_norm:float ->
  lr_t:B.output ->
  loss:B.output ->
  unit ->
  B.output
(** Like {!minimize} with the learning rate as a scalar graph output, so
    {!Schedule}s (decay driven by the global-step variable) plug in. *)

val apply_gradients :
  Vs.t ->
  ?algorithm:algorithm ->
  lr:float ->
  (Vs.variable * Octf.Gradients.grad) list ->
  B.output
(** Lower-level entry point: apply precomputed gradients — used by the
    synchronous-replica coordinator, which averages gradients from many
    workers before applying them (§4.4). *)

val apply_gradients_with_rate :
  Vs.t ->
  ?algorithm:algorithm ->
  lr_t:B.output ->
  (Vs.variable * Octf.Gradients.grad) list ->
  B.output

val clip_by_global_norm :
  B.t -> clip_norm:float -> B.output list -> B.output list
(** Rescale a gradient set so its joint L2 norm is at most [clip_norm]
    (Pascanu-style clipping, the §4.1 user-implemented example). *)
