(** User-level checkpointing (§4.3).

    Save and Restore are ordinary operations in the graph (Figure 1): the
    saver connects every variable to one [Save] node (one per task in the
    paper, to maximize I/O parallelism), and builds [Restore] → [Assign]
    chains for recovery. Policy — when to save, how many checkpoints to
    retain, which variables participate — is client code here, so users
    can implement best-checkpoint retention, fine-tuning and transfer
    learning without runtime support. *)

module B = Octf.Builder
module Vs = Octf_nn.Var_store

type t

val create : ?vars:Vs.variable list -> ?keep:int -> Vs.t -> t
(** Build the save/restore subgraphs for [vars] (default: every variable
    in the store). [keep] (default 5) limits how many checkpoints
    {!save} retains per directory prefix. *)

val save : t -> Octf.Session.t -> path:string -> unit
(** Write all covered variables to [path] (the filename is fed into the
    graph as a string tensor, so one compiled step serves every path).
    Old checkpoints written through this saver beyond [keep] are
    deleted. *)

val restore : t -> Octf.Session.t -> path:string -> unit

val save_numbered : t -> Octf.Session.t -> prefix:string -> step:int -> string
(** [save_numbered t s ~prefix ~step] writes [prefix ^ "-" ^ step ^
    ".ckpt"] and returns the path. *)

val latest_checkpoint : prefix:string -> string option
(** Highest-numbered checkpoint previously written by
    {!save_numbered}. *)
