lib/train/sync_replicas.mli: Octf Octf_nn Octf_tensor Optimizer
