lib/train/saver.mli: Octf Octf_nn
