lib/train/schedule.ml: List Octf Octf_nn
