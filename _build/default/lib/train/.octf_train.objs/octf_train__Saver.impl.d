lib/train/saver.ml: Array Dtype Filename List Octf Octf_nn Octf_tensor Option Printf Scanf Sys Tensor
