lib/train/schedule.mli: Octf Octf_nn
