lib/train/optimizer.ml: List Octf Octf_nn
