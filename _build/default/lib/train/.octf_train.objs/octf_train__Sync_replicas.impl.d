lib/train/sync_replicas.ml: Dtype List Octf Octf_nn Octf_tensor Optimizer Option Printf Tensor Tensor_ops
