lib/train/optimizer.mli: Octf Octf_nn
