module B = Octf.Builder
module Vs = Octf_nn.Var_store

let global_step store =
  Vs.get store ~trainable:false ~init:Octf_nn.Init.zeros ~name:"global_step"
    [||]

let increment store =
  let b = Vs.builder store in
  let gs = global_step store in
  B.group b [ B.assign_add b gs.Vs.handle (B.const_f b 1.0) ]

let step_read store = (global_step store).Vs.read

let constant store v = B.const_f (Vs.builder store) v

let exponential_decay store ~base ~decay ~decay_steps =
  let b = Vs.builder store in
  let step = step_read store in
  let exponent = B.div b step (B.const_f b (float_of_int decay_steps)) in
  B.mul b (B.const_f b base) (B.pow b (B.const_f b decay) exponent)

let inverse_time_decay store ~base ~decay ~decay_steps =
  let b = Vs.builder store in
  let step = step_read store in
  let denom =
    B.add b (B.const_f b 1.0)
      (B.mul b (B.const_f b decay)
         (B.div b step (B.const_f b (float_of_int decay_steps))))
  in
  B.div b (B.const_f b base) denom

let piecewise store ~boundaries ~default =
  let b = Vs.builder store in
  let step = step_read store in
  (* Fold from the first boundary: select(step >= bound, rate, acc). *)
  List.fold_left
    (fun acc (bound, rate) ->
      let hit = B.greater_equal b step (B.const_f b (float_of_int bound)) in
      B.select b hit (B.const_f b rate) acc)
    (B.const_f b default) boundaries
