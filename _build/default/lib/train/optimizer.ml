module B = Octf.Builder
module Vs = Octf_nn.Var_store
module G = Octf.Gradients
module Init = Octf_nn.Init

type algorithm =
  | Sgd
  | Momentum of { momentum : float }
  | Adagrad of { epsilon : float }
  | Rmsprop of { decay : float; epsilon : float }
  | Adadelta of { rho : float; epsilon : float }
  | Adam of { beta1 : float; beta2 : float; epsilon : float }

let momentum_default = Momentum { momentum = 0.9 }

let adagrad_default = Adagrad { epsilon = 1e-8 }

let rmsprop_default = Rmsprop { decay = 0.9; epsilon = 1e-8 }

let adadelta_default = Adadelta { rho = 0.95; epsilon = 1e-6 }

let adam_default = Adam { beta1 = 0.9; beta2 = 0.999; epsilon = 1e-8 }

let slot store (var : Vs.variable) suffix =
  let v =
    Vs.get store ~trainable:false ~init:Init.zeros
      ~name:(var.Vs.name ^ "/" ^ suffix)
      var.Vs.shape
  in
  v

let scalar_slot store (var : Vs.variable) suffix =
  Vs.get store ~trainable:false ~init:Init.zeros
    ~name:(var.Vs.name ^ "/" ^ suffix)
    [||]

(* One dense update subgraph per (algorithm, variable). Returns the op to
   execute. [lr_t] is a scalar graph output, so schedules (Schedule) plug
   in directly. *)
let apply_dense store algorithm ~lr_t (var : Vs.variable) g =
  let b = Vs.builder store in
  match algorithm with
  | Sgd -> B.assign_sub b var.Vs.handle (B.mul b lr_t g)
  | Momentum { momentum } ->
      let v = slot store var "momentum" in
      let v' =
        B.assign b v.Vs.handle
          (B.add b (B.mul b (B.const_f b momentum) v.Vs.read) g)
      in
      B.assign_sub b var.Vs.handle (B.mul b lr_t v')
  | Adagrad { epsilon } ->
      let acc = slot store var "adagrad" in
      let acc' = B.assign_add b acc.Vs.handle (B.square b g) in
      B.assign_sub b var.Vs.handle
        (B.div b (B.mul b lr_t g)
           (B.add b (B.sqrt b acc') (B.const_f b epsilon)))
  | Rmsprop { decay; epsilon } ->
      let ms = slot store var "rms" in
      let ms' =
        B.assign b ms.Vs.handle
          (B.add b
             (B.mul b (B.const_f b decay) ms.Vs.read)
             (B.mul b (B.const_f b (1.0 -. decay)) (B.square b g)))
      in
      B.assign_sub b var.Vs.handle
        (B.div b (B.mul b lr_t g)
           (B.add b (B.sqrt b ms') (B.const_f b epsilon)))
  | Adadelta { rho; epsilon } ->
      let acc_g = slot store var "adadelta_g" in
      let acc_x = slot store var "adadelta_x" in
      let rho_t = B.const_f b rho and eps = B.const_f b epsilon in
      let one_minus_rho = B.const_f b (1.0 -. rho) in
      let acc_g' =
        B.assign b acc_g.Vs.handle
          (B.add b (B.mul b rho_t acc_g.Vs.read)
             (B.mul b one_minus_rho (B.square b g)))
      in
      let update =
        B.mul b g
          (B.div b
             (B.sqrt b (B.add b acc_x.Vs.read eps))
             (B.sqrt b (B.add b acc_g' eps)))
      in
      let acc_x' =
        B.assign b acc_x.Vs.handle
          (B.add b (B.mul b rho_t acc_x.Vs.read)
             (B.mul b one_minus_rho (B.square b update)))
      in
      (* Order the statistics update before the parameter write. *)
      B.with_control_dependencies b [ acc_x' ] (fun () ->
          B.assign_sub b var.Vs.handle (B.mul b lr_t update))
  | Adam { beta1; beta2; epsilon } ->
      let m = slot store var "adam_m" in
      let v = slot store var "adam_v" in
      let t = scalar_slot store var "adam_t" in
      let t' = B.assign_add b t.Vs.handle (B.const_f b 1.0) in
      let b1 = B.const_f b beta1 and b2 = B.const_f b beta2 in
      let m' =
        B.assign b m.Vs.handle
          (B.add b (B.mul b b1 m.Vs.read)
             (B.mul b (B.const_f b (1.0 -. beta1)) g))
      in
      let v' =
        B.assign b v.Vs.handle
          (B.add b (B.mul b b2 v.Vs.read)
             (B.mul b (B.const_f b (1.0 -. beta2)) (B.square b g)))
      in
      let one = B.const_f b 1.0 in
      let m_hat = B.div b m' (B.sub b one (B.pow b b1 t')) in
      let v_hat = B.div b v' (B.sub b one (B.pow b b2 t')) in
      B.assign_sub b var.Vs.handle
        (B.div b (B.mul b lr_t m_hat)
           (B.add b (B.sqrt b v_hat) (B.const_f b epsilon)))

let apply_sparse store algorithm ~lr_t (var : Vs.variable) ~indices ~values
    ~dense_shape =
  let b = Vs.builder store in
  match algorithm with
  | Sgd ->
      (* The §4.2 payoff: update only the rows this step gathered. *)
      B.scatter_sub b var.Vs.handle indices (B.mul b lr_t values)
  | Momentum _ | Adagrad _ | Rmsprop _ | Adadelta _ | Adam _ ->
      (* Slot-based algorithms densify (as TF does for several of its
         sparse paths). *)
      let dense =
        G.densify b (G.Sparse { indices; values; dense_shape })
      in
      apply_dense store algorithm ~lr_t var dense

let apply_grad store algorithm ~lr_t (var : Vs.variable) = function
  | G.Dense g -> apply_dense store algorithm ~lr_t var g
  | G.Sparse { indices; values; dense_shape } ->
      apply_sparse store algorithm ~lr_t var ~indices ~values ~dense_shape

let apply_gradients_with_rate store ?(algorithm = Sgd) ~lr_t pairs =
  let b = Vs.builder store in
  let ops =
    List.map (fun (var, g) -> apply_grad store algorithm ~lr_t var g) pairs
  in
  B.group b ~name:"apply_gradients" ops

let apply_gradients store ?algorithm ~lr pairs =
  let b = Vs.builder store in
  apply_gradients_with_rate store ?algorithm ~lr_t:(B.const_f b lr) pairs

let clip b ~clip_norm g =
  let norm = B.sqrt b (B.reduce_sum b (B.square b g)) in
  let scale =
    B.minimum b (B.const_f b 1.0) (B.div b (B.const_f b clip_norm) norm)
  in
  B.mul b g scale

let minimize_with_rate store ?(algorithm = Sgd) ?var_list ?clip_norm ~lr_t
    ~loss () =
  let b = Vs.builder store in
  let vars =
    match var_list with Some vs -> vs | None -> Vs.trainable store
  in
  if vars = [] then invalid_arg "Optimizer.minimize: no trainable variables";
  let xs = List.map (fun (v : Vs.variable) -> v.Vs.read) vars in
  let grads = G.gradients b ~ys:[ loss ] ~xs () in
  let pairs =
    List.concat
      (List.map2
         (fun var g ->
           match g with
           | None -> []
           | Some (G.Dense d) ->
               let d =
                 match clip_norm with
                 | None -> d
                 | Some c -> clip b ~clip_norm:c d
               in
               [ (var, G.Dense d) ]
           | Some (G.Sparse { indices; values; dense_shape }) -> (
               let sparse = G.Sparse { indices; values; dense_shape } in
               match clip_norm with
               | None -> [ (var, sparse) ]
               | Some c ->
                   [ (var, G.Dense (clip b ~clip_norm:c (G.densify b sparse))) ]))
         vars grads)
  in
  if pairs = [] then
    invalid_arg "Optimizer.minimize: loss does not depend on any variable";
  apply_gradients_with_rate store ~algorithm ~lr_t pairs

let minimize store ?algorithm ?var_list ?clip_norm ~lr ~loss () =
  let b = Vs.builder store in
  minimize_with_rate store ?algorithm ?var_list ?clip_norm
    ~lr_t:(B.const_f b lr) ~loss ()

let clip_by_global_norm b ~clip_norm grads =
  match grads with
  | [] -> []
  | _ ->
      let sq = List.map (fun g -> B.reduce_sum b (B.square b g)) grads in
      let norm = B.sqrt b (B.add_n b sq) in
      let scale =
        B.minimum b (B.const_f b 1.0) (B.div b (B.const_f b clip_norm) norm)
      in
      List.map (fun g -> B.mul b g scale) grads
