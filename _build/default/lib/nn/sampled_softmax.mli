(** Sampled softmax for very large output vocabularies (§4.2, §6.4).

    A full softmax over vocabulary [V] multiplies each output state by a
    [d × V] weight matrix — for a language model, gigabytes of parameters
    and the dominant training cost. Sampled softmax instead multiplies by
    a sparse random matrix containing weights for each example's true
    class plus a shared random sample of [s] false classes, cutting
    softmax data transfer and compute by a factor of about [V / s] (the
    paper reports 78× for V = 40,000, s = 512). *)

module B = Octf.Builder

val full_softmax_loss :
  B.t ->
  weights:B.output ->
  hidden:B.output ->
  labels:B.output ->
  num_classes:int ->
  B.output
(** Baseline: mean cross entropy of [hidden · weightsᵀ] over all classes.
    [weights] is [V × d], [hidden] is [b × d], [labels] are int ids. *)

val sampled_softmax_loss :
  B.t ->
  weights:B.output ->
  hidden:B.output ->
  labels:B.output ->
  num_sampled:int ->
  num_classes:int ->
  B.output
(** Mean cross entropy over each example's true class and [num_sampled]
    shared random negatives. Gradients reach [weights] through [Gather],
    i.e. sparsely. *)
