(** Loss functions and evaluation metrics. *)

module B = Octf.Builder

val mse : B.t -> predictions:B.output -> targets:B.output -> B.output
(** Mean squared error (scalar). *)

val softmax_cross_entropy_mean :
  B.t -> logits:B.output -> labels:B.output -> B.output
(** Mean per-example softmax cross entropy; [labels] is a distribution
    (e.g. one-hot) per row. Uses the fused kernel so the backward pass
    reuses the cached softmax (§5). *)

val sparse_softmax_cross_entropy_mean :
  B.t -> num_classes:int -> logits:B.output -> labels:B.output -> B.output
(** As above with integer class-id labels. *)

val accuracy : B.t -> logits:B.output -> labels:B.output -> B.output
(** Fraction of rows whose argmax matches the integer label. *)
