(** Model parameter bookkeeping.

    A var store creates [Variable] nodes with deterministic initial
    values, records the (variable handle, read output, initializer) for
    each, and produces a single initialization target — the moral
    equivalent of [tf.global_variables_initializer]. Optimizers
    ({!Octf_train.Optimizer}) and the checkpoint helper
    ({!Octf_train.Saver}) consume its listing. *)

open Octf_tensor
module B = Octf.Builder

type variable = {
  name : string;
  handle : B.output;  (** the Variable node's reference handle *)
  read : B.output;  (** a Read of the variable *)
  shape : Shape.t;
  trainable : bool;
}

type t

val create : ?seed:int -> B.t -> t

val builder : t -> B.t

val get :
  t ->
  ?device:string ->
  ?trainable:bool ->
  ?init:Init.t ->
  name:string ->
  Shape.t ->
  variable
(** Create (or return the previously created) variable. The initializer
    runs when the {!init_op} target is executed. *)

val init_op : t -> B.output
(** A target that assigns every variable its initial value. *)

val all : t -> variable list
(** Creation order. *)

val trainable : t -> variable list
