(** LSTM cells and statically unrolled recurrent networks (§6.4).

    The language-modeling experiment trains an LSTM-512-512; as in the
    TensorFlow models of the time, the recurrence is unrolled statically
    into the dataflow graph (one cell instantiation per time step,
    sharing the same weight variables). *)

module B = Octf.Builder

type cell

val cell :
  Var_store.t -> name:string -> input_dim:int -> units:int -> cell
(** A standard LSTM cell: one [in+u × 4u] kernel and a [4u] bias, with
    forget-gate bias initialized to 1. *)

val step :
  cell -> B.t -> x:B.output -> h:B.output -> c:B.output ->
  B.output * B.output
(** One timestep: returns [(h', c')]. [x] is [batch × input_dim], [h]/[c]
    are [batch × units]. *)

val zero_state : cell -> B.t -> batch:int -> B.output * B.output

val unroll :
  cell -> B.t -> xs:B.output list -> batch:int -> B.output list
(** Run the cell over a sequence from the zero state; returns the hidden
    state after each step. *)

val units : cell -> int
