open Octf_tensor
module B = Octf.Builder

type variable = {
  name : string;
  handle : B.output;
  read : B.output;
  shape : Shape.t;
  trainable : bool;
}

type t = {
  b : B.t;
  rng : Rng.t;
  mutable vars : variable list;  (* reverse creation order *)
  mutable inits : B.output list;
  table : (string, variable) Hashtbl.t;
}

let create ?(seed = 7) b =
  { b; rng = Rng.create seed; vars = []; inits = []; table = Hashtbl.create 16 }

let builder t = t.b

let get t ?device ?(trainable = true) ?(init = Init.glorot_uniform) ~name
    shape =
  match Hashtbl.find_opt t.table name with
  | Some v -> v
  | None ->
      let handle =
        B.variable t.b ~name ?device ~dtype:Dtype.F32 ~shape ()
      in
      let initial = init t.rng shape in
      let init_assign =
        B.assign t.b ~name:(name ^ "/init") handle (B.const t.b initial)
      in
      let read = B.read t.b ~name:(name ^ "/read") handle in
      let v = { name; handle; read; shape; trainable } in
      Hashtbl.replace t.table name v;
      t.vars <- v :: t.vars;
      t.inits <- init_assign :: t.inits;
      v

let init_op t = B.group t.b ~name:"init_all_variables" t.inits

let all t = List.rev t.vars

let trainable t = List.filter (fun v -> v.trainable) (all t)
