(** Neural-network layers as unprivileged graph compositions (§4, §5).

    Each layer is a few primitive operations plus variables from a
    {!Var_store}; nothing here touches the runtime. *)

module B = Octf.Builder

type activation = [ `Relu | `Sigmoid | `Tanh | `None ]

val apply_activation : B.t -> activation -> B.output -> B.output

val dense :
  Var_store.t ->
  ?activation:activation ->
  ?init:Init.t ->
  name:string ->
  in_dim:int ->
  out_dim:int ->
  B.output ->
  B.output
(** Fully connected layer: activation(x·W + b). *)

val conv2d :
  Var_store.t ->
  ?activation:activation ->
  ?strides:int * int ->
  ?padding:[ `Same | `Valid ] ->
  name:string ->
  in_channels:int ->
  out_channels:int ->
  ksize:int * int ->
  B.output ->
  B.output
(** NHWC convolution with bias and optional activation. *)

val max_pool2d :
  B.t -> ?strides:int * int -> ksize:int * int -> B.output -> B.output

val avg_pool2d :
  B.t -> ?strides:int * int -> ksize:int * int -> B.output -> B.output

val flatten : B.t -> features:int -> B.output -> B.output
(** Collapse all non-batch axes to a known feature count:
    [batch; ...] -> [batch; features]. *)

val dropout :
  Var_store.t -> rate:float -> shape:Octf_tensor.Shape.t -> B.output -> B.output
(** Inverted dropout with a fresh random mask per step. The mask shape is
    static ([shape] = the activations' shape). *)

val batch_norm :
  Var_store.t -> name:string -> dim:int -> B.output -> B.output
(** Per-feature batch normalization over axis 0 with learned scale and
    shift — the §4.1 example of a user-implemented optimization. *)
