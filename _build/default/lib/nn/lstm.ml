open Octf_tensor
module B = Octf.Builder

type cell = {
  kernel : Var_store.variable;
  bias : Var_store.variable;
  input_dim : int;
  cell_units : int;
  store : Var_store.t;
}

let forget_bias_init units rng shape =
  (* Gates order: i, f, g, o. Forget gate biased to 1 keeps early
     gradients alive. *)
  ignore rng;
  let t = Tensor.zeros Dtype.F32 shape in
  for j = units to (2 * units) - 1 do
    Tensor.flat_set_f t j 1.0
  done;
  t

let cell store ~name ~input_dim ~units =
  let kernel =
    Var_store.get store ~init:Init.glorot_uniform ~name:(name ^ "/kernel")
      [| input_dim + units; 4 * units |]
  in
  let bias =
    Var_store.get store
      ~init:(forget_bias_init units)
      ~name:(name ^ "/bias")
      [| 4 * units |]
  in
  { kernel; bias; input_dim; cell_units = units; store }

let units c = c.cell_units

let gate b z ~units ~index =
  B.slice b z ~begin_:[| 0; index * units |] ~size:[| -1; units |]

let step cell b ~x ~h ~c =
  let u = cell.cell_units in
  let zx = B.concat b ~axis:1 [ x; h ] in
  let z =
    B.add b (B.matmul b zx cell.kernel.Var_store.read)
      cell.bias.Var_store.read
  in
  let i = B.sigmoid b (gate b z ~units:u ~index:0) in
  let f = B.sigmoid b (gate b z ~units:u ~index:1) in
  let g = B.tanh b (gate b z ~units:u ~index:2) in
  let o = B.sigmoid b (gate b z ~units:u ~index:3) in
  let c' = B.add b (B.mul b f c) (B.mul b i g) in
  let h' = B.mul b o (B.tanh b c') in
  (h', c')

let zero_state cell b ~batch =
  let zeros = B.const b (Tensor.zeros Dtype.F32 [| batch; cell.cell_units |]) in
  (zeros, B.identity b zeros)

let unroll cell b ~xs ~batch =
  let h0, c0 = zero_state cell b ~batch in
  let _, _, hs =
    List.fold_left
      (fun (h, c, acc) x ->
        let h', c' = step cell b ~x ~h ~c in
        (h', c', h' :: acc))
      (h0, c0, []) xs
  in
  List.rev hs
