(** Gated recurrent units — a second recurrent cell built purely from
    graph primitives, demonstrating that new architectures need no
    runtime changes (§2.1's extensibility requirement). *)

module B = Octf.Builder

type cell

val cell : Var_store.t -> name:string -> input_dim:int -> units:int -> cell

val step : cell -> B.t -> x:B.output -> h:B.output -> B.output
(** One timestep: returns the next hidden state
    ([batch × units]). *)

val zero_state : cell -> B.t -> batch:int -> B.output

val unroll : cell -> B.t -> xs:B.output list -> batch:int -> B.output list

val units : cell -> int
