open Octf_tensor

type t = Rng.t -> Shape.t -> Tensor.t

let zeros _ shape = Tensor.zeros Dtype.F32 shape

let ones _ shape = Tensor.ones Dtype.F32 shape

let constant v _ shape = Tensor.full Dtype.F32 shape v

let uniform ?(lo = -0.05) ?(hi = 0.05) () rng shape =
  Tensor.uniform rng shape ~lo ~hi

let normal ?(mean = 0.0) ?(stddev = 0.05) () rng shape =
  Tensor.normal rng shape ~mean ~stddev

let fans shape =
  match Array.length shape with
  | 0 -> (1.0, 1.0)
  | 1 -> (float_of_int shape.(0), float_of_int shape.(0))
  | 2 -> (float_of_int shape.(0), float_of_int shape.(1))
  | _ ->
      (* Conv HWIO: receptive field size times in/out channels. *)
      let r = Array.length shape in
      let receptive =
        Array.fold_left ( * ) 1 (Array.sub shape 0 (r - 2))
      in
      ( float_of_int (receptive * shape.(r - 2)),
        float_of_int (receptive * shape.(r - 1)) )

let glorot_uniform rng shape =
  let fan_in, fan_out = fans shape in
  let limit = sqrt (6.0 /. (fan_in +. fan_out)) in
  Tensor.uniform rng shape ~lo:(-.limit) ~hi:limit

let he_normal rng shape =
  let fan_in, _ = fans shape in
  Tensor.normal rng shape ~mean:0.0 ~stddev:(sqrt (2.0 /. fan_in))
