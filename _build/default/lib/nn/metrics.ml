open Octf_tensor

let top_k_accuracy ~logits ~labels ~k =
  let s = Tensor.shape logits in
  if Shape.rank s <> 2 then invalid_arg "Metrics.top_k_accuracy: 2-D logits";
  let n = s.(0) and d = s.(1) in
  if Tensor.numel labels <> n then
    invalid_arg "Metrics.top_k_accuracy: label count mismatch";
  let hits = ref 0 in
  for i = 0 to n - 1 do
    let label = Tensor.flat_get_i labels i in
    let target = Tensor.get_f logits [| i; label |] in
    (* Rank of the true class = number of strictly larger logits. *)
    let above = ref 0 in
    for j = 0 to d - 1 do
      if Tensor.get_f logits [| i; j |] > target then incr above
    done;
    if !above < k then incr hits
  done;
  float_of_int !hits /. float_of_int n

let confusion_matrix ~predictions ~labels ~classes =
  let n = Tensor.numel labels in
  if Tensor.numel predictions <> n then
    invalid_arg "Metrics.confusion_matrix: length mismatch";
  let m = Array.make_matrix classes classes 0 in
  for i = 0 to n - 1 do
    let truth = Tensor.flat_get_i labels i in
    let pred = Tensor.flat_get_i predictions i in
    if truth < 0 || truth >= classes || pred < 0 || pred >= classes then
      invalid_arg "Metrics.confusion_matrix: class id out of range";
    m.(truth).(pred) <- m.(truth).(pred) + 1
  done;
  m

let perplexity ~mean_cross_entropy = Stdlib.exp mean_cross_entropy
