(** Parameter initializers.

    An initializer produces the initial tensor for a variable of a given
    shape, drawing from an explicit PRNG stream so model setup is
    reproducible. *)

open Octf_tensor

type t = Rng.t -> Shape.t -> Tensor.t

val zeros : t

val ones : t

val constant : float -> t

val uniform : ?lo:float -> ?hi:float -> unit -> t

val normal : ?mean:float -> ?stddev:float -> unit -> t

val glorot_uniform : t
(** Uniform in ±sqrt(6 / (fan_in + fan_out)); fans derived from the
    shape (dense: [in; out]; conv HWIO: receptive field × channels). *)

val he_normal : t
(** Normal with stddev sqrt(2 / fan_in), the standard pairing for ReLU
    stacks. *)
