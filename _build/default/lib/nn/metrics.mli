(** Host-side evaluation metrics over fetched tensors.

    These operate on the tensors a session returns (not graph outputs),
    matching how evaluation loops consume fetches. *)

open Octf_tensor

val top_k_accuracy : logits:Tensor.t -> labels:Tensor.t -> k:int -> float
(** Fraction of rows whose true label is among the [k] largest logits. *)

val confusion_matrix :
  predictions:Tensor.t -> labels:Tensor.t -> classes:int -> int array array
(** [m.(truth).(predicted)] counts. *)

val perplexity : mean_cross_entropy:float -> float
(** [exp loss] — the language-modeling metric of §6.4. *)
