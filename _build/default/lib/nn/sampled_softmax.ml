module B = Octf.Builder

let full_softmax_loss b ~weights ~hidden ~labels ~num_classes =
  let logits = B.matmul b hidden weights ~transpose_b:true in
  Losses.sparse_softmax_cross_entropy_mean b ~num_classes ~logits ~labels

let sampled_softmax_loss b ~weights ~hidden ~labels ~num_sampled ~num_classes =
  (* True-class logits: rows of W for each label, dotted with the
     example's hidden state. *)
  let true_w = B.gather b weights labels in
  let true_logits =
    B.reduce_sum b ~axes:[ 1 ] ~keep_dims:true (B.mul b hidden true_w)
  in
  (* Shared negative sample for the whole batch. *)
  let sampled = B.random_indices b ~n:num_sampled ~range:num_classes () in
  let sampled_w = B.gather b weights sampled in
  let sampled_logits = B.matmul b hidden sampled_w ~transpose_b:true in
  let logits = B.concat b ~axis:1 [ true_logits; sampled_logits ] in
  (* The true class is column 0 of the reduced problem. Collisions
     between the sample and a true label slightly perturb the loss, as
     in the practical implementations the paper cites. *)
  let zeros = B.mul b labels (B.const_i b 0) in
  let labels01 = zeros in
  let one_hot = B.one_hot b labels01 ~depth:(1 + num_sampled) in
  let loss, _ = B.softmax_cross_entropy b ~logits ~labels:one_hot () in
  B.reduce_mean b loss
