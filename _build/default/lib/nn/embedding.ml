module B = Octf.Builder

type t = {
  shards : Var_store.variable list;
  vocab : int;
  dim : int;
}

let create store ?devices ?(init = Init.uniform ~lo:(-0.05) ~hi:0.05 ())
    ~name ~vocab ~dim ~num_shards () =
  if num_shards <= 0 then invalid_arg "Embedding.create: num_shards";
  let shard_device s =
    match devices with
    | None | Some [] -> None
    | Some ds -> Some (List.nth ds (s mod List.length ds))
  in
  let shards =
    List.init num_shards (fun s ->
        (* Mod sharding: shard s stores ceil((vocab - s) / num_shards)
           rows. *)
        let rows = ((vocab - s) + (num_shards - 1)) / num_shards in
        Var_store.get store
          ?device:(shard_device s)
          ~init
          ~name:(Printf.sprintf "%s/shard_%d" name s)
          [| rows; dim |])
  in
  { shards; vocab; dim }

let num_shards t = List.length t.shards

let lookup_single t b ids =
  match t.shards with
  | [ shard ] -> B.gather b shard.Var_store.read ids
  | _ -> invalid_arg "Embedding.lookup_single: more than one shard"

let lookup t b ids =
  match t.shards with
  | [ _ ] -> lookup_single t b ids
  | shards ->
      let n = num_shards t in
      let num_t = B.const b (Octf_tensor.Tensor.scalar_i n) in
      (* Which shard each id lives on, and its offset within the shard. *)
      let shard_ids = B.modulo b ids num_t in
      let local_ids = B.div b ids num_t in
      let per_shard_ids =
        B.dynamic_partition b local_ids shard_ids ~num:n
      in
      (* Original positions of each id, partitioned the same way, to
         stitch results back into input order. *)
      let positions = B.range_like b ids in
      let per_shard_pos = B.dynamic_partition b positions shard_ids ~num:n in
      let gathered =
        List.map2
          (fun (shard : Var_store.variable) local ->
            (* Colocate the Gather with its shard variable: placement
               groups it with the Variable via the reference edge. *)
            B.gather b shard.Var_store.read local)
          shards per_shard_ids
      in
      B.dynamic_stitch b per_shard_pos gathered
