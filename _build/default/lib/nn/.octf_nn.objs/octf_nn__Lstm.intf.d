lib/nn/lstm.mli: Octf Var_store
