lib/nn/metrics.mli: Octf_tensor Tensor
