lib/nn/embedding.ml: Init List Octf Octf_tensor Printf Var_store
