lib/nn/var_store.mli: Init Octf Octf_tensor Shape
