lib/nn/gru.mli: Octf Var_store
