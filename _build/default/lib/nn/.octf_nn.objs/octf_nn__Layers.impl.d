lib/nn/layers.ml: Dtype Init Octf Octf_tensor Option Var_store
