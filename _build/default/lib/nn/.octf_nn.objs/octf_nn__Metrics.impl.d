lib/nn/metrics.ml: Array Octf_tensor Shape Stdlib Tensor
