lib/nn/embedding.mli: Init Octf Var_store
