lib/nn/losses.mli: Octf
