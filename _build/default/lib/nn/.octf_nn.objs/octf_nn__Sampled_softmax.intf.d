lib/nn/sampled_softmax.mli: Octf
