lib/nn/layers.mli: Init Octf Octf_tensor Var_store
