lib/nn/var_store.ml: Dtype Hashtbl Init List Octf Octf_tensor Rng Shape
