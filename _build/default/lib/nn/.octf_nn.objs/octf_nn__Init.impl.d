lib/nn/init.ml: Array Dtype Octf_tensor Rng Shape Tensor
