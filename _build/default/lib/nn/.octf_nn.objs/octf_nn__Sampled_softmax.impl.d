lib/nn/sampled_softmax.ml: Losses Octf
