lib/nn/lstm.ml: Dtype Init List Octf Octf_tensor Tensor Var_store
