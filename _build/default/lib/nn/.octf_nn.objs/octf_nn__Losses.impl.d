lib/nn/losses.ml: Dtype Octf Octf_tensor
