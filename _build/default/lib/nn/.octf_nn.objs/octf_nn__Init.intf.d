lib/nn/init.mli: Octf_tensor Rng Shape Tensor
