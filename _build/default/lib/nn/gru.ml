open Octf_tensor
module B = Octf.Builder

type cell = {
  gates : Var_store.variable;  (* [in+u, 2u]: update and reset gates *)
  gates_bias : Var_store.variable;
  candidate : Var_store.variable;  (* [in+u, u] *)
  candidate_bias : Var_store.variable;
  input_dim : int;
  cell_units : int;
}

let cell store ~name ~input_dim ~units =
  let gates =
    Var_store.get store ~init:Init.glorot_uniform ~name:(name ^ "/gates")
      [| input_dim + units; 2 * units |]
  in
  let gates_bias =
    Var_store.get store
      ~init:(Init.constant 1.0) (* bias updates toward remembering *)
      ~name:(name ^ "/gates_bias")
      [| 2 * units |]
  in
  let candidate =
    Var_store.get store ~init:Init.glorot_uniform ~name:(name ^ "/candidate")
      [| input_dim + units; units |]
  in
  let candidate_bias =
    Var_store.get store ~init:Init.zeros
      ~name:(name ^ "/candidate_bias")
      [| units |]
  in
  { gates; gates_bias; candidate; candidate_bias; input_dim; cell_units = units }

let units c = c.cell_units

let step c b ~x ~h =
  let u = c.cell_units in
  let zx = B.concat b ~axis:1 [ x; h ] in
  let gates =
    B.sigmoid b
      (B.add b (B.matmul b zx c.gates.Var_store.read)
         c.gates_bias.Var_store.read)
  in
  let update = B.slice b gates ~begin_:[| 0; 0 |] ~size:[| -1; u |] in
  let reset = B.slice b gates ~begin_:[| 0; u |] ~size:[| -1; u |] in
  let candidate_in = B.concat b ~axis:1 [ x; B.mul b reset h ] in
  let candidate =
    B.tanh b
      (B.add b
         (B.matmul b candidate_in c.candidate.Var_store.read)
         c.candidate_bias.Var_store.read)
  in
  (* h' = z*h + (1-z)*candidate *)
  B.add b (B.mul b update h)
    (B.mul b (B.sub b (B.const_f b 1.0) update) candidate)

let zero_state c b ~batch =
  B.const b (Tensor.zeros Dtype.F32 [| batch; c.cell_units |])

let unroll c b ~xs ~batch =
  let h0 = zero_state c b ~batch in
  let _, hs =
    List.fold_left
      (fun (h, acc) x ->
        let h' = step c b ~x ~h in
        (h', h' :: acc))
      (h0, []) xs
  in
  List.rev hs
