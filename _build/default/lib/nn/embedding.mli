(** Sharded embedding layers (§4.2, Figure 3).

    Very large models embed sparse inputs through an [n × d] matrix that
    is too large for one task; the matrix is split row-wise over several
    parameter-server tasks. A lookup is the composition the paper
    draws in Figure 3: a dynamic {e Part}ition routes each incoming index
    to its shard, a [Gather] colocated with each shard variable extracts
    the rows on the task holding them, and a dynamic {e Stitch}
    reassembles the partial results in the original order. Every piece
    has a registered gradient, so backpropagation produces {e sparse}
    updates that touch only the gathered rows. *)

module B = Octf.Builder

type t = {
  shards : Var_store.variable list;  (** row-sharded pieces, mod layout *)
  vocab : int;
  dim : int;
}

val create :
  Var_store.t ->
  ?devices:string list ->
  ?init:Init.t ->
  name:string ->
  vocab:int ->
  dim:int ->
  num_shards:int ->
  unit ->
  t
(** Shard [s] holds rows [{i | i mod num_shards = s}] (row [i] is stored
    at local offset [i / num_shards]). [devices] (default: none) pins
    shard [s] to [devices.(s mod length)] — typically a list of
    ["/job:ps/task:k"] specs. *)

val lookup : t -> B.t -> B.output -> B.output
(** [lookup emb b ids]: embed a 1-D int tensor of ids into a
    [length ids × dim] dense matrix via Part → Gather → Stitch. *)

val lookup_single : t -> B.t -> B.output -> B.output
(** Degenerate single-shard fast path (plain Gather); requires
    [num_shards = 1]. *)
