open Octf_tensor
module B = Octf.Builder

let mse b ~predictions ~targets =
  B.reduce_mean b (B.square b (B.sub b predictions targets))

let softmax_cross_entropy_mean b ~logits ~labels =
  let loss, _backprop = B.softmax_cross_entropy b ~logits ~labels () in
  B.reduce_mean b loss

let sparse_softmax_cross_entropy_mean b ~num_classes ~logits ~labels =
  let one_hot = B.one_hot b labels ~depth:num_classes in
  softmax_cross_entropy_mean b ~logits ~labels:one_hot

let accuracy b ~logits ~labels =
  let predicted = B.argmax b logits ~axis:1 in
  let correct =
    B.cast b (B.equal b (B.cast b predicted Dtype.F32) (B.cast b labels Dtype.F32))
      Dtype.F32
  in
  B.reduce_mean b correct
