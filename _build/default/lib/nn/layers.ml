open Octf_tensor
module B = Octf.Builder

type activation = [ `Relu | `Sigmoid | `Tanh | `None ]

let apply_activation b act x =
  match act with
  | `Relu -> B.relu b x
  | `Sigmoid -> B.sigmoid b x
  | `Tanh -> B.tanh b x
  | `None -> x

let dense store ?(activation = `None) ?(init = Init.glorot_uniform) ~name
    ~in_dim ~out_dim x =
  let b = Var_store.builder store in
  let w = Var_store.get store ~init ~name:(name ^ "/w") [| in_dim; out_dim |] in
  let bias =
    Var_store.get store ~init:Init.zeros ~name:(name ^ "/b") [| out_dim |]
  in
  let z = B.add b (B.matmul b x w.Var_store.read) bias.Var_store.read in
  apply_activation b activation z

let conv2d store ?(activation = `None) ?(strides = (1, 1)) ?(padding = `Same)
    ~name ~in_channels ~out_channels ~ksize x =
  let b = Var_store.builder store in
  let kh, kw = ksize in
  let filter =
    Var_store.get store ~init:Init.he_normal ~name:(name ^ "/filter")
      [| kh; kw; in_channels; out_channels |]
  in
  let bias =
    Var_store.get store ~init:Init.zeros ~name:(name ^ "/b")
      [| out_channels |]
  in
  let z =
    B.add b
      (B.conv2d b ~strides ~padding x filter.Var_store.read)
      bias.Var_store.read
  in
  apply_activation b activation z

let max_pool2d b ?strides ~ksize x =
  let strides = Option.value ~default:ksize strides in
  B.max_pool b ~ksize ~strides ~padding:`Valid x

let avg_pool2d b ?strides ~ksize x =
  let strides = Option.value ~default:ksize strides in
  B.avg_pool b ~ksize ~strides ~padding:`Valid x

let flatten b ~features x = B.reshape b x [| -1; features |]

let dropout store ~rate ~shape x =
  let b = Var_store.builder store in
  if rate <= 0.0 then x
  else begin
    let keep = 1.0 -. rate in
    let mask =
      B.cast b
        (B.less b (B.random_uniform b ~lo:0.0 ~hi:1.0 shape)
           (B.const_f b keep))
        Dtype.F32
    in
    (* Inverted dropout keeps activations' expected scale. *)
    B.div b (B.mul b x mask) (B.const_f b keep)
  end

let batch_norm store ~name ~dim x =
  let b = Var_store.builder store in
  let gamma =
    Var_store.get store ~init:Init.ones ~name:(name ^ "/gamma") [| dim |]
  in
  let beta =
    Var_store.get store ~init:Init.zeros ~name:(name ^ "/beta") [| dim |]
  in
  let mean = B.reduce_mean b ~axes:[ 0 ] ~keep_dims:true x in
  let centered = B.sub b x mean in
  let variance =
    B.reduce_mean b ~axes:[ 0 ] ~keep_dims:true (B.square b centered)
  in
  let normalized =
    B.div b centered (B.sqrt b (B.add b variance (B.const_f b 1e-5)))
  in
  B.add b (B.mul b normalized gamma.Var_store.read) beta.Var_store.read
