(** Workload descriptors consumed by the cluster simulator ({!Octf_sim}).

    A workload summarizes, per training step and per worker: the bytes
    pulled from and pushed to the parameter servers, the floating-point
    work done on the worker, the work offloaded to the PS tasks
    (softmax colocations, §4.2/§6.4), and how many items (images, words)
    the step processes. These are exactly the quantities that determine
    the shapes of Figures 6–9. *)

type t = {
  name : string;
  param_bytes : float;  (** total model size resident on the PS tasks *)
  worker_flops : float;  (** FLOPs per worker step *)
  ps_flops : float;  (** FLOPs per worker step executed on PS tasks *)
  fetch_bytes : float;  (** bytes PS → worker per step *)
  update_bytes : float;  (** bytes worker → PS per step *)
  items_per_step : float;  (** images / words per worker step *)
  apply_bandwidth : float;
      (** bytes/s at which a PS task folds this workload's updates into
          the parameters: memcpy-fast for a null step's bare +=, several
          times slower for real optimizers that read and write slot
          variables (momentum, RMSProp) per parameter *)
}

val null_scalar : t
(** Figure 6 "Scalar": one 4-byte value per PS task (16 PS). *)

val null_dense : mb:float -> t
(** Figure 6 "Dense": fetch and update the whole model of [mb]
    megabytes. *)

val null_sparse : gb:float -> entries:int -> dim:int -> t
(** Figure 6 "Sparse": read [entries] random rows of a [gb]-gigabyte
    embedding; step cost is independent of the total size. *)

val inception_v3 : batch:int -> t
(** §6.3: Inception-v3 training, one K40 worker per step of [batch]
    images. *)

val pp : Format.formatter -> t -> unit
