type t = {
  name : string;
  param_bytes : float;
  worker_flops : float;
  ps_flops : float;
  fetch_bytes : float;
  update_bytes : float;
  items_per_step : float;
  apply_bandwidth : float;
}

let null_scalar =
  {
    name = "null/scalar";
    param_bytes = 4.0 *. 16.0;
    worker_flops = 0.0;
    ps_flops = 0.0;
    fetch_bytes = 4.0 *. 16.0;
    update_bytes = 4.0 *. 16.0;
    items_per_step = 1.0;
    apply_bandwidth = 4.0e9;
  }

let null_dense ~mb =
  let bytes = mb *. 1048576.0 in
  {
    name = Printf.sprintf "null/dense-%gMB" mb;
    param_bytes = bytes;
    worker_flops = 0.0;
    ps_flops = 0.0;
    fetch_bytes = bytes;
    update_bytes = bytes;
    items_per_step = 1.0;
    apply_bandwidth = 4.0e9;
  }

let null_sparse ~gb ~entries ~dim =
  let bytes = float_of_int (entries * dim * 4) in
  {
    name = Printf.sprintf "null/sparse-%gGB" gb;
    param_bytes = gb *. 1073741824.0;
    worker_flops = 0.0;
    ps_flops = 0.0;
    fetch_bytes = bytes;
    update_bytes = bytes;
    items_per_step = 1.0;
    apply_bandwidth = 4.0e9;
  }

let inception_v3 ~batch =
  let m = Convnet_zoo.inception_v3 in
  let bytes = Convnet_zoo.param_bytes m in
  {
    name = "inception-v3";
    param_bytes = bytes;
    worker_flops =
      Convnet_zoo.training_flops_per_image m *. float_of_int batch;
    ps_flops = 0.0;
    fetch_bytes = bytes;
    update_bytes = bytes;
    items_per_step = float_of_int batch;
    apply_bandwidth = 4.0e8;
  }

let pp fmt t =
  Format.fprintf fmt
    "%s: params %.1f MB, worker %.2f GFLOP, ps %.2f GFLOP, fetch %.2f MB, \
     update %.2f MB"
    t.name
    (t.param_bytes /. 1048576.0)
    (t.worker_flops /. 1e9)
    (t.ps_flops /. 1e9)
    (t.fetch_bytes /. 1048576.0)
    (t.update_bytes /. 1048576.0)
