(** Analytic layer specifications of the paper's convolutional models.

    Table 1 and §6.3 benchmark AlexNet, Overfeat, OxfordNet (VGG-A),
    GoogleNet and Inception-v3. The real architectures are encoded layer
    by layer so the harness can count multiply-accumulates and
    parameters analytically; the step-time models in
    {!Framework_model} and the cluster simulator consume these counts
    (DESIGN.md, substitution 1: FLOP counts and parameter bytes determine
    the published shapes, not the silicon). *)

type layer =
  | Conv of {
      kh : int;
      kw : int;
      in_c : int;
      out_c : int;
      out_h : int;
      out_w : int;
    }
  | Fc of { n_in : int; n_out : int }
  | Pool of { out_h : int; out_w : int; channels : int }

type t = {
  name : string;
  layers : layer list;
  aggregate_macs : float option;
      (** override for models encoded in aggregate (Inception-v3) *)
  aggregate_params : float option;
}

val alexnet : t

val overfeat : t

val oxfordnet : t
(** VGG model A, the "OxfordNet" of Chintala's benchmark. *)

val googlenet : t

val inception_v3 : t
(** Aggregate spec: ≈5.7e9 multiply-adds and 23.8M parameters per image
    (§6.3 cites ≈5 billion FLOPS per inference). *)

val layer_macs : layer -> float
(** Multiply-accumulates per image (forward). *)

val macs_per_image : t -> float

val params : t -> float
(** Parameter count. *)

val param_bytes : t -> float
(** 4 bytes per parameter (fp32). *)

val num_ops : t -> int
(** Rough operation count for per-kernel overhead modelling. *)

val training_flops_per_image : t -> float
(** FLOPs for one forward+backward pass: 2 FLOPs per MAC, and backward
    ≈ 2× forward. *)
