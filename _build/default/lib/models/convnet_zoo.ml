type layer =
  | Conv of {
      kh : int;
      kw : int;
      in_c : int;
      out_c : int;
      out_h : int;
      out_w : int;
    }
  | Fc of { n_in : int; n_out : int }
  | Pool of { out_h : int; out_w : int; channels : int }

type t = {
  name : string;
  layers : layer list;
  aggregate_macs : float option;
  aggregate_params : float option;
}

let conv kh kw in_c out_c out_h out_w =
  Conv { kh; kw; in_c; out_c; out_h; out_w }

let fc n_in n_out = Fc { n_in; n_out }

let pool out_h out_w channels = Pool { out_h; out_w; channels }

let alexnet =
  {
    name = "AlexNet";
    layers =
      [
        conv 11 11 3 64 55 55;
        pool 27 27 64;
        conv 5 5 64 192 27 27;
        pool 13 13 192;
        conv 3 3 192 384 13 13;
        conv 3 3 384 256 13 13;
        conv 3 3 256 256 13 13;
        pool 6 6 256;
        fc 9216 4096;
        fc 4096 4096;
        fc 4096 1000;
      ];
    aggregate_macs = None;
    aggregate_params = None;
  }

let overfeat =
  {
    name = "Overfeat";
    layers =
      [
        conv 11 11 3 96 56 56;
        pool 28 28 96;
        conv 5 5 96 256 24 24;
        pool 12 12 256;
        conv 3 3 256 512 12 12;
        conv 3 3 512 1024 12 12;
        conv 3 3 1024 1024 12 12;
        pool 6 6 1024;
        fc 36864 3072;
        fc 3072 4096;
        fc 4096 1000;
      ];
    aggregate_macs = None;
    aggregate_params = None;
  }

let oxfordnet =
  {
    name = "OxfordNet";
    layers =
      [
        conv 3 3 3 64 224 224;
        pool 112 112 64;
        conv 3 3 64 128 112 112;
        pool 56 56 128;
        conv 3 3 128 256 56 56;
        conv 3 3 256 256 56 56;
        pool 28 28 256;
        conv 3 3 256 512 28 28;
        conv 3 3 512 512 28 28;
        pool 14 14 512;
        conv 3 3 512 512 14 14;
        conv 3 3 512 512 14 14;
        pool 7 7 512;
        fc 25088 4096;
        fc 4096 4096;
        fc 4096 1000;
      ];
    aggregate_macs = None;
    aggregate_params = None;
  }

(* One GoogLeNet inception module: 1x1, 3x3 (reduced), 5x5 (reduced) and
   pool-projection branches at spatial size s. *)
let inception ~s ~in_c ~n1 ~r3 ~n3 ~r5 ~n5 ~pp =
  [
    conv 1 1 in_c n1 s s;
    conv 1 1 in_c r3 s s;
    conv 3 3 r3 n3 s s;
    conv 1 1 in_c r5 s s;
    conv 5 5 r5 n5 s s;
    pool s s in_c;
    conv 1 1 in_c pp s s;
  ]

let googlenet =
  {
    name = "GoogleNet";
    layers =
      [
        conv 7 7 3 64 112 112;
        pool 56 56 64;
        conv 1 1 64 64 56 56;
        conv 3 3 64 192 56 56;
        pool 28 28 192;
      ]
      @ inception ~s:28 ~in_c:192 ~n1:64 ~r3:96 ~n3:128 ~r5:16 ~n5:32 ~pp:32
      @ inception ~s:28 ~in_c:256 ~n1:128 ~r3:128 ~n3:192 ~r5:32 ~n5:96
          ~pp:64
      @ [ pool 14 14 480 ]
      @ inception ~s:14 ~in_c:480 ~n1:192 ~r3:96 ~n3:208 ~r5:16 ~n5:48 ~pp:64
      @ inception ~s:14 ~in_c:512 ~n1:160 ~r3:112 ~n3:224 ~r5:24 ~n5:64
          ~pp:64
      @ inception ~s:14 ~in_c:512 ~n1:128 ~r3:128 ~n3:256 ~r5:24 ~n5:64
          ~pp:64
      @ inception ~s:14 ~in_c:512 ~n1:112 ~r3:144 ~n3:288 ~r5:32 ~n5:64
          ~pp:64
      @ inception ~s:14 ~in_c:528 ~n1:256 ~r3:160 ~n3:320 ~r5:32 ~n5:128
          ~pp:128
      @ [ pool 7 7 832 ]
      @ inception ~s:7 ~in_c:832 ~n1:256 ~r3:160 ~n3:320 ~r5:32 ~n5:128
          ~pp:128
      @ inception ~s:7 ~in_c:832 ~n1:384 ~r3:192 ~n3:384 ~r5:48 ~n5:128
          ~pp:128
      @ [ pool 1 1 1024; fc 1024 1000 ];
    aggregate_macs = None;
    aggregate_params = None;
  }

let inception_v3 =
  {
    name = "Inception-v3";
    layers = [];
    aggregate_macs = Some 5.7e9;
    aggregate_params = Some 23.8e6;
  }

let layer_macs = function
  | Conv { kh; kw; in_c; out_c; out_h; out_w } ->
      float_of_int (kh * kw * in_c * out_c * out_h * out_w)
  | Fc { n_in; n_out } -> float_of_int (n_in * n_out)
  | Pool _ -> 0.0

let layer_params = function
  | Conv { kh; kw; in_c; out_c; _ } -> float_of_int (kh * kw * in_c * out_c)
  | Fc { n_in; n_out } -> float_of_int (n_in * n_out + n_out)
  | Pool _ -> 0.0

let macs_per_image t =
  match t.aggregate_macs with
  | Some m -> m
  | None -> List.fold_left (fun acc l -> acc +. layer_macs l) 0.0 t.layers

let params t =
  match t.aggregate_params with
  | Some p -> p
  | None -> List.fold_left (fun acc l -> acc +. layer_params l) 0.0 t.layers

let param_bytes t = 4.0 *. params t

let num_ops t =
  match t.layers with
  | [] -> 120  (* aggregate models: Inception-v3 depth *)
  | layers -> List.length layers

let training_flops_per_image t = macs_per_image t *. 2.0 *. 3.0
