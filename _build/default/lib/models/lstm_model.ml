type softmax = Full | Sampled of int

let vocab = 40_000

let dim = 512

let bytes_per_float = 4.0

(* Per-word multiply-accumulates of the two LSTM layers: each layer is a
   (in + units) x 4*units product. *)
let lstm_macs_per_word =
  let layer in_dim units = float_of_int ((in_dim + units) * 4 * units) in
  layer dim dim +. layer dim dim

let softmax_macs_per_word = function
  | Full -> float_of_int (dim * vocab)
  | Sampled s -> float_of_int (dim * (s + 1))

let training_factor = 6.0  (* 2 FLOPs per MAC, backward ~2x forward *)

let lstm_params = 2.0 *. float_of_int ((dim + dim) * 4 * dim)

let embedding_params = float_of_int (vocab * dim)

let softmax_params = float_of_int (vocab * dim)

let workload ~softmax ~batch ~unroll =
  let words = float_of_int (batch * unroll) in
  let lstm_flops = lstm_macs_per_word *. training_factor *. words in
  let softmax_flops =
    softmax_macs_per_word softmax *. training_factor *. words
  in
  let activation_bytes = words *. float_of_int dim *. bytes_per_float in
  let lstm_param_bytes = lstm_params *. bytes_per_float in
  let embedding_fetch = activation_bytes (* one d-vector per word *) in
  match softmax with
  | Full ->
      (* Softmax multiplication and gradient run on the PS shards; the
         wire carries output activations down and their gradients back,
         plus the dense LSTM parameters and the gathered embeddings. *)
      {
        Workload.name = "lstm-512-512/full";
        param_bytes =
          (lstm_params +. embedding_params +. softmax_params)
          *. bytes_per_float;
        worker_flops = lstm_flops;
        ps_flops = softmax_flops;
        fetch_bytes = lstm_param_bytes +. embedding_fetch +. activation_bytes;
        update_bytes = lstm_param_bytes +. embedding_fetch +. activation_bytes;
        items_per_step = words;
        apply_bandwidth = 1.0e9;
      }
  | Sampled s ->
      (* Workers gather s+1 weight rows per step and compute the reduced
         softmax locally. *)
      let sampled_rows_bytes =
        float_of_int ((s + 1) * dim) *. bytes_per_float
      in
      {
        Workload.name = Printf.sprintf "lstm-512-512/sampled-%d" s;
        param_bytes =
          (lstm_params +. embedding_params +. softmax_params)
          *. bytes_per_float;
        worker_flops = lstm_flops +. softmax_flops;
        ps_flops = 0.0;
        fetch_bytes = lstm_param_bytes +. embedding_fetch +. sampled_rows_bytes;
        update_bytes =
          lstm_param_bytes +. embedding_fetch +. sampled_rows_bytes;
        items_per_step = words;
        apply_bandwidth = 1.0e9;
      }

let softmax_reduction = function
  | Full -> 1.0
  | Sampled s ->
      softmax_macs_per_word Full /. softmax_macs_per_word (Sampled s)
