(* Per-framework GPU kernel models calibrated against Table 1 (batch 32).

   cuDNN-class libraries (Torch, TensorFlow) and Neon's assembly kernels
   are modelled by a base efficiency scaled by arithmetic intensity
   (bigger layers run closer to peak). Caffe's im2col+GEMM convolutions
   get an empirical efficiency table instead: respectable on large-map
   3x3 convolutions (hence only ~2x slower than cuDNN on OxfordNet),
   poor on large kernels (AlexNet/Overfeat stems) and on the many tiny
   layers of GoogleNet, where its per-layer overhead also dominates —
   which is exactly the attribution the paper gives for Table 1. *)

type framework = {
  fw_name : string;
  conv_eff : float;
  gemm_eff : float;
  op_overhead : float;
  intensity_slope : float;
}

let caffe =
  {
    fw_name = "Caffe";
    conv_eff = 0.0 (* unused: empirical table below *);
    gemm_eff = 0.25;
    op_overhead = 2.0e-2;
    intensity_slope = 0.0;
  }

let neon =
  {
    fw_name = "Neon";
    conv_eff = 0.38;
    gemm_eff = 0.30;
    op_overhead = 3.0e-3;
    intensity_slope = 0.45;
  }

let torch =
  {
    fw_name = "Torch";
    conv_eff = 0.30;
    gemm_eff = 0.30;
    op_overhead = 3.3e-3;
    intensity_slope = 0.32;
  }

let tensorflow =
  {
    fw_name = "TensorFlow";
    conv_eff = 0.30;
    gemm_eff = 0.30;
    op_overhead = 3.5e-3;
    intensity_slope = 0.32;
  }

let all = [ caffe; neon; torch; tensorflow ]

let titan_x_peak = 6.1e12

let table1_batch (_ : Convnet_zoo.t) = 32

let intensity fw macs =
  let l = Float.max 0.0 (log10 (Float.max 1.0 (macs /. 1e6))) in
  Float.min 2.2 (Float.max 0.35 (0.45 +. (fw.intensity_slope *. l)))

let conv_efficiency fw (l : Convnet_zoo.layer) macs =
  if fw.fw_name = "Caffe" then
    match l with
    | Convnet_zoo.Conv { kh; out_h; _ } ->
        if kh >= 5 then 0.055
        else if kh = 1 then 0.10
        else if out_h >= 28 then 0.26
        else 0.15
    | Convnet_zoo.Fc _ | Convnet_zoo.Pool _ -> fw.gemm_eff
  else fw.conv_eff *. intensity fw macs

let step_time_ms ?batch (m : Convnet_zoo.t) fw =
  let batch = match batch with Some b -> b | None -> table1_batch m in
  let bf = float_of_int batch in
  let layer_time l =
    let macs = Convnet_zoo.layer_macs l in
    if macs = 0.0 then fw.op_overhead /. 4.0 (* pooling: dispatch only *)
    else
      let eff =
        match l with
        | Convnet_zoo.Conv _ -> conv_efficiency fw l macs
        | Convnet_zoo.Fc _ -> fw.gemm_eff
        | Convnet_zoo.Pool _ -> fw.gemm_eff
      in
      (* forward + backward = 3x forward; 2 FLOPs per MAC *)
      (macs *. 2.0 *. 3.0 *. bf /. (titan_x_peak *. eff)) +. fw.op_overhead
  in
  let layers =
    match m.Convnet_zoo.layers with
    | [] ->
        [
          Convnet_zoo.Conv
            {
              kh = 1;
              kw = 1;
              in_c = 1;
              out_c = int_of_float (Convnet_zoo.macs_per_image m);
              out_h = 1;
              out_w = 1;
            };
        ]
    | ls -> ls
  in
  1000.0 *. List.fold_left (fun acc l -> acc +. layer_time l) 0.0 layers
