(** Per-framework step-time models for Table 1 (DESIGN.md, substitution
    4).

    The paper attributes the Table 1 ordering to kernel provenance: Caffe
    uses open-source convolution kernels that are "simpler but less
    efficient than cuDNN"; Torch and TensorFlow share the same cuDNN
    version and land within 6% of each other; Neon's hand-written
    assembly kernels win on three of the four models. We encode exactly
    that attribution as per-framework efficiency factors over the
    analytic MAC counts of {!Convnet_zoo}, on a Titan-X-class device:

      step_time = Σ_layer (layer training FLOPs × batch)
                    / (peak × efficiency(framework, layer kind))
                  + per-op dispatch overhead.

    Absolute milliseconds depend on the calibration constants; the
    who-beats-whom structure follows from the efficiency ordering, which
    is the claim Table 1 makes. *)

type framework = {
  fw_name : string;
  conv_eff : float;  (** base fraction of peak on convolution layers *)
  gemm_eff : float;  (** fraction of peak on fully connected layers *)
  op_overhead : float;  (** seconds of per-operation dispatch cost *)
  intensity_slope : float;
      (** how quickly this framework's kernels approach peak as layer
          size (arithmetic intensity) grows *)
}

val caffe : framework

val neon : framework

val torch : framework

val tensorflow : framework

val all : framework list

val titan_x_peak : float
(** Peak single-precision FLOP/s of the benchmark GPU. *)

val step_time_ms :
  ?batch:int -> Convnet_zoo.t -> framework -> float
(** Training step time (forward + backward) in milliseconds for one
    batch (default {!table1_batch}). *)

val table1_batch : Convnet_zoo.t -> int
(** Batch size assumed for Table 1 (32: the value at which the published
    step times are consistent with Titan X peak throughput). *)
