lib/models/convnet_zoo.ml: List
