lib/models/lstm_model.ml: Printf Workload
