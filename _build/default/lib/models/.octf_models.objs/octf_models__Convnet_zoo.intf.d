lib/models/convnet_zoo.mli:
