lib/models/workload.ml: Convnet_zoo Format Printf
