lib/models/workload.mli: Format
