lib/models/framework_model.mli: Convnet_zoo
