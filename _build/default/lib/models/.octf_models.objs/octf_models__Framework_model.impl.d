lib/models/framework_model.ml: Convnet_zoo Float List
