lib/models/lstm_model.mli: Workload
