(** Analytic spec of the LSTM-512-512 language model (§6.4).

    Two 512-unit LSTM layers with a 512-d embedding over a 40,000-word
    vocabulary (the paper's restricted One-Billion-Word setting). The
    output layer dominates: a full softmax multiplies every output state
    by a 512 × 40,000 matrix {e sharded across the PS tasks} and computes
    its gradient there (Project-Adam-style colocation), so adding PS
    tasks parallelizes the softmax; a sampled softmax multiplies by 512
    sampled columns instead, reducing softmax transfer and compute ≈78×
    and moving the work back to the worker. *)

type softmax = Full | Sampled of int

val vocab : int

val dim : int

val workload :
  softmax:softmax -> batch:int -> unroll:int -> Workload.t
(** Per-worker-step costs for the simulator; [items_per_step] counts
    words (batch × unroll). *)

val softmax_reduction : softmax -> float
(** Compute/transfer reduction factor vs the full softmax (≈78 for 512
    samples over a 40k vocabulary). *)
