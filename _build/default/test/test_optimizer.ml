(* Optimizers as user-level graph code (§4.1): one-step closed-form
   checks and convergence checks for every algorithm, plus the sparse
   (ScatterSub) path of §4.2. *)

open Octf_tensor
open Octf
module B = Builder
module Vs = Octf_nn.Var_store
module Opt = Octf_train.Optimizer

let scalar t = Tensor.flat_get_f t 0

(* A one-variable quadratic: loss = (w - 5)^2, dloss/dw = 2(w - 5). *)
let quadratic () =
  let b = B.create () in
  let store = Vs.create b in
  let w = Vs.get store ~init:(Octf_nn.Init.constant 1.0) ~name:"w" [||] in
  let loss = B.square b (B.sub b w.Vs.read (B.const_f b 5.0)) in
  (b, store, w, loss)

let run_steps ?(algorithm = Opt.Sgd) ~lr ~steps () =
  let b, store, w, loss = quadratic () in
  let train = Opt.minimize store ~algorithm ~lr ~loss () in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ Vs.init_op store ];
  for _ = 1 to steps do
    Session.run_unit s [ train ]
  done;
  scalar (List.hd (Session.run s [ w.Vs.read ]))

let test_sgd_one_step () =
  (* w1 = w0 - lr * 2(w0 - 5) = 1 - 0.1 * (-8) = 1.8 *)
  Alcotest.(check (float 1e-6)) "closed form" 1.8
    (run_steps ~lr:0.1 ~steps:1 ())

let test_momentum_two_steps () =
  (* v1 = g1 = -8; w1 = 1 + 0.8 = 1.8
     g2 = 2(1.8 - 5) = -6.4; v2 = 0.9*(-8) + (-6.4) = -13.6
     w2 = 1.8 + 1.36 = 3.16 *)
  Alcotest.(check (float 1e-5)) "momentum closed form" 3.16
    (run_steps ~algorithm:(Opt.Momentum { momentum = 0.9 }) ~lr:0.1 ~steps:2 ())

let test_adagrad_one_step () =
  (* acc = g^2 = 64; w1 = 1 - lr * g / (sqrt 64 + eps) ~ 1 + 0.1 = 1.1 *)
  Alcotest.(check (float 1e-4)) "adagrad closed form" 1.1
    (run_steps ~algorithm:(Opt.Adagrad { epsilon = 1e-8 }) ~lr:0.1 ~steps:1 ())

let test_adam_one_step () =
  (* With bias correction, the first Adam step is ~ lr * sign(g). *)
  Alcotest.(check (float 1e-3)) "adam first step" 1.1
    (run_steps ~algorithm:Opt.adam_default ~lr:0.1 ~steps:1 ())

let convergence name algorithm lr =
  Alcotest.test_case (name ^ " converges") `Quick (fun () ->
      let w = run_steps ~algorithm ~lr ~steps:300 () in
      Alcotest.(check bool)
        (Printf.sprintf "%s: w=%f near 5" name w)
        true
        (Float.abs (w -. 5.0) < 0.2))

let test_clip_norm () =
  (* With clip 1.0 the first step moves by exactly lr. *)
  let b, store, w, loss = quadratic () in
  let train = Opt.minimize store ~clip_norm:1.0 ~lr:0.5 ~loss () in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ Vs.init_op store ];
  Session.run_unit s [ train ];
  Alcotest.(check (float 1e-5)) "clipped step" 1.5
    (scalar (List.hd (Session.run s [ w.Vs.read ])))

let test_var_list_restricts () =
  let b = B.create () in
  let store = Vs.create b in
  let w1 = Vs.get store ~init:(Octf_nn.Init.constant 1.0) ~name:"w1" [||] in
  let w2 = Vs.get store ~init:(Octf_nn.Init.constant 1.0) ~name:"w2" [||] in
  let loss =
    B.add b (B.square b w1.Vs.read) (B.square b w2.Vs.read)
  in
  let train = Opt.minimize store ~var_list:[ w1 ] ~lr:0.1 ~loss () in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ Vs.init_op store ];
  Session.run_unit s [ train ];
  let vs = Session.run s [ w1.Vs.read; w2.Vs.read ] in
  Alcotest.(check bool) "w1 moved" true (scalar (List.hd vs) <> 1.0);
  Alcotest.(check (float 0.)) "w2 frozen" 1.0 (scalar (List.nth vs 1))

let test_sparse_sgd_scatter () =
  (* Embedding row updates touch only gathered rows (§4.2). *)
  let b = B.create () in
  let store = Vs.create b in
  let table =
    Vs.get store ~init:(Octf_nn.Init.constant 1.0) ~name:"emb" [| 5; 2 |]
  in
  let ids = B.const b (Tensor.of_int_array [| 2 |] [| 1; 3 |]) in
  let rows = B.gather b table.Vs.read ids in
  let loss = B.reduce_sum b rows in
  let train = Opt.minimize store ~lr:0.5 ~loss () in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ Vs.init_op store ];
  Session.run_unit s [ train ];
  let t = List.hd (Session.run s [ table.Vs.read ]) in
  Alcotest.(check (float 1e-6)) "row 1 updated" 0.5 (Tensor.get_f t [| 1; 0 |]);
  Alcotest.(check (float 1e-6)) "row 3 updated" 0.5 (Tensor.get_f t [| 3; 0 |]);
  Alcotest.(check (float 1e-6)) "row 0 untouched" 1.0
    (Tensor.get_f t [| 0; 0 |]);
  (* And the update subgraph really is a ScatterSub, not a dense write. *)
  let has_scatter = ref false in
  Graph.iter (B.graph b) (fun n ->
      if n.Node.op_type = "ScatterSub" then has_scatter := true);
  Alcotest.(check bool) "uses ScatterSub" true !has_scatter

let test_no_trainables_rejected () =
  let b = B.create () in
  let store = Vs.create b in
  let loss = B.const_f b 1.0 in
  match Opt.minimize store ~lr:0.1 ~loss () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "sgd one step" `Quick test_sgd_one_step;
    Alcotest.test_case "momentum two steps" `Quick test_momentum_two_steps;
    Alcotest.test_case "adagrad one step" `Quick test_adagrad_one_step;
    Alcotest.test_case "adam first step" `Quick test_adam_one_step;
    convergence "sgd" Opt.Sgd 0.1;
    convergence "momentum" Opt.momentum_default 0.02;
    convergence "adagrad" Opt.adagrad_default 2.0;
    convergence "rmsprop" Opt.rmsprop_default 0.1;
    convergence "adadelta" Opt.adadelta_default 100.0;
    convergence "adam" Opt.adam_default 0.3;
    Alcotest.test_case "clip norm" `Quick test_clip_norm;
    Alcotest.test_case "var_list restricts" `Quick test_var_list_restricts;
    Alcotest.test_case "sparse sgd scatter" `Quick test_sparse_sgd_scatter;
    Alcotest.test_case "no trainables" `Quick test_no_trainables_rejected;
  ]
