module Zoo = Octf_models.Convnet_zoo
module Fw = Octf_models.Framework_model
module Lm = Octf_models.Lstm_model
module W = Octf_models.Workload

(* Published multiply-add counts per image (forward): AlexNet ~0.7G,
   Overfeat ~2.8G, VGG-A ~7.6G, GoogleNet ~1.5G. The analytic specs must
   land near them. *)
let check_macs name model expected_g tolerance =
  Alcotest.test_case (name ^ " MACs") `Quick (fun () ->
      let g = Zoo.macs_per_image model /. 1e9 in
      if Float.abs (g -. expected_g) > tolerance then
        Alcotest.failf "%s: %.2f GMACs, expected %.2f ± %.2f" name g
          expected_g tolerance)

let check_params name model expected_m tolerance =
  Alcotest.test_case (name ^ " params") `Quick (fun () ->
      let m = Zoo.params model /. 1e6 in
      if Float.abs (m -. expected_m) > tolerance then
        Alcotest.failf "%s: %.1fM params, expected %.1fM ± %.1fM" name m
          expected_m tolerance)

let test_table1_orderings () =
  (* The qualitative Table 1 claims. *)
  let models = [ Zoo.alexnet; Zoo.overfeat; Zoo.oxfordnet; Zoo.googlenet ] in
  List.iter
    (fun m ->
      let t fw = Fw.step_time_ms m fw in
      Alcotest.(check bool)
        (m.Zoo.name ^ ": caffe slowest")
        true
        (t Fw.caffe > t Fw.tensorflow && t Fw.caffe > t Fw.torch
        && t Fw.caffe > t Fw.neon);
      Alcotest.(check bool)
        (m.Zoo.name ^ ": torch and tf within 10%")
        true
        (Float.abs (t Fw.torch -. t Fw.tensorflow)
        < 0.1 *. t Fw.tensorflow))
    models;
  (* Neon's hand-tuned kernels win on the conv-heavy models. *)
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (m.Zoo.name ^ ": neon beats tf")
        true
        (Fw.step_time_ms m Fw.neon < Fw.step_time_ms m Fw.tensorflow))
    [ Zoo.overfeat; Zoo.oxfordnet; Zoo.googlenet ]

let test_step_time_scales_with_batch () =
  (* Compute scales linearly; the fixed per-op dispatch overhead does
     not, so the ratio sits between 1.5x and 2x and approaches 2x as the
     batch grows. *)
  let t b = Fw.step_time_ms ~batch:b Zoo.alexnet Fw.tensorflow in
  Alcotest.(check bool) "sublinear but close" true
    (t 64 > 1.5 *. t 32 && t 64 < 2.05 *. t 32);
  Alcotest.(check bool) "overhead amortizes" true
    (t 256 /. t 128 > t 64 /. t 32)

let test_lstm_model () =
  Alcotest.(check (float 1.0)) "sampled-512 reduction ~78x" 78.0
    (Lm.softmax_reduction (Lm.Sampled 512));
  let full = Lm.workload ~softmax:Lm.Full ~batch:64 ~unroll:20 in
  let sampled = Lm.workload ~softmax:(Lm.Sampled 512) ~batch:64 ~unroll:20 in
  Alcotest.(check bool) "full offloads to PS" true
    (full.W.ps_flops > 0.0 && sampled.W.ps_flops = 0.0);
  Alcotest.(check bool) "sampled moves less data" true
    (sampled.W.fetch_bytes < full.W.fetch_bytes);
  Alcotest.(check (float 0.)) "words per step" 1280.0 full.W.items_per_step

let test_workloads () =
  let inception = W.inception_v3 ~batch:32 in
  (* ~23.8M params = ~95 MB; fetch = update = model size. *)
  Alcotest.(check bool) "inception param bytes" true
    (Float.abs ((inception.W.param_bytes /. 1048576.0) -. 90.8) < 1.0);
  Alcotest.(check bool) "null scalar tiny" true
    (W.null_scalar.W.fetch_bytes < 100.0);
  let sparse = W.null_sparse ~gb:16.0 ~entries:32 ~dim:8192 in
  let sparse_small = W.null_sparse ~gb:1.0 ~entries:32 ~dim:8192 in
  Alcotest.(check (float 0.)) "sparse fetch independent of size"
    sparse.W.fetch_bytes sparse_small.W.fetch_bytes

let suite =
  [
    check_macs "alexnet" Zoo.alexnet 0.71 0.15;
    check_macs "overfeat" Zoo.overfeat 2.8 0.5;
    check_macs "oxfordnet" Zoo.oxfordnet 7.6 0.8;
    check_macs "googlenet" Zoo.googlenet 1.5 0.4;
    check_params "alexnet" Zoo.alexnet 61.0 6.0;
    check_params "oxfordnet" Zoo.oxfordnet 133.0 10.0;
    check_params "googlenet" Zoo.googlenet 7.0 1.5;
    Alcotest.test_case "table1 orderings" `Quick test_table1_orderings;
    Alcotest.test_case "batch scaling" `Quick test_step_time_scales_with_batch;
    Alcotest.test_case "lstm model" `Quick test_lstm_model;
    Alcotest.test_case "workloads" `Quick test_workloads;
  ]
