(* End-to-end smoke tests: graph construction, session execution,
   variables, control flow, and autodiff on a tiny regression. *)

open Octf_tensor
module B = Octf.Builder

let check_f = Alcotest.(check (float 1e-6))

let scalar t = Tensor.flat_get_f t 0

let test_const_add () =
  let b = B.create () in
  let x = B.const_f b 2.0 and y = B.const_f b 3.0 in
  let z = B.add b x y in
  let s = Octf.Session.create (B.graph b) in
  match Octf.Session.run s [ z ] with
  | [ v ] -> check_f "2+3" 5.0 (scalar v)
  | _ -> Alcotest.fail "wrong arity"

let test_feed_fetch () =
  let b = B.create () in
  let x = B.placeholder b Dtype.F32 in
  let y = B.mul b x (B.const_f b 10.0) in
  let s = Octf.Session.create (B.graph b) in
  match Octf.Session.run ~feeds:[ (x, Tensor.scalar_f 4.0) ] s [ y ] with
  | [ v ] -> check_f "4*10" 40.0 (scalar v)
  | _ -> Alcotest.fail "wrong arity"

let test_variable_assign () =
  let b = B.create () in
  let v = B.variable b ~name:"w" ~dtype:Dtype.F32 ~shape:[||] () in
  let init = B.assign b v (B.const_f b 1.5) in
  let incr = B.assign_add b v (B.const_f b 1.0) in
  let r = B.read b v in
  let s = Octf.Session.create (B.graph b) in
  Octf.Session.run_unit s [ init ];
  Octf.Session.run_unit s [ incr ];
  Octf.Session.run_unit s [ incr ];
  match Octf.Session.run s [ r ] with
  | [ value ] -> check_f "1.5+2" 3.5 (scalar value)
  | _ -> Alcotest.fail "wrong arity"

let test_matmul () =
  let b = B.create () in
  let a = B.const b (Tensor.of_float_array [| 2; 2 |] [| 1.; 2.; 3.; 4. |]) in
  let i = B.const b (Tensor.of_float_array [| 2; 2 |] [| 0.; 1.; 1.; 0. |]) in
  let m = B.matmul b a i in
  let s = Octf.Session.create (B.graph b) in
  match Octf.Session.run s [ m ] with
  | [ v ] ->
      Alcotest.(check bool)
        "swap columns" true
        (Tensor.approx_equal v
           (Tensor.of_float_array [| 2; 2 |] [| 2.; 1.; 4.; 3. |]))
  | _ -> Alcotest.fail "wrong arity"

let test_cond () =
  let b = B.create () in
  let pred = B.placeholder b Dtype.Bool in
  let x = B.const_f b 7.0 in
  let results =
    B.cond b pred ~inputs:[ x ]
      ~then_:(fun b ins -> [ B.mul b (List.hd ins) (B.const_f b 2.0) ])
      ~else_:(fun b ins -> [ B.neg b (List.hd ins) ])
  in
  let out = List.hd results in
  let s = Octf.Session.create (B.graph b) in
  (match Octf.Session.run ~feeds:[ (pred, Tensor.scalar_b true) ] s [ out ] with
  | [ v ] -> check_f "then branch" 14.0 (scalar v)
  | _ -> Alcotest.fail "arity");
  match Octf.Session.run ~feeds:[ (pred, Tensor.scalar_b false) ] s [ out ] with
  | [ v ] -> check_f "else branch" (-7.0) (scalar v)
  | _ -> Alcotest.fail "arity"

let test_while_loop () =
  (* Sum 1..10 with a dataflow loop; the limit enters as an invariant. *)
  let b = B.create () in
  let i0 = B.const_f b 1.0 and acc0 = B.const_f b 0.0 in
  let limit = B.const_f b 10.5 in
  let results =
    B.while_loop b ~invariants:[ limit ]
      ~cond:(fun b vars ->
        match vars with
        | [ i; _acc; lim ] -> B.less b i lim
        | _ -> assert false)
      ~body:(fun b vars ->
        match vars with
        | [ i; acc; _lim ] ->
            [ B.add b i (B.ones_like b i); B.add b acc i ]
        | _ -> assert false)
      [ i0; acc0 ]
  in
  let final_acc = List.nth results 1 in
  let s = Octf.Session.create (B.graph b) in
  match Octf.Session.run s [ final_acc ] with
  | [ v ] -> check_f "sum 1..10" 55.0 (scalar v)
  | _ -> Alcotest.fail "arity"

let test_gradients_linear () =
  (* d/dw (w*x + c)^2 at w=3, x=2, c=1 -> 2*(w*x+c)*x = 2*7*2 = 28 *)
  let b = B.create () in
  let w = B.const_f b 3.0 and x = B.const_f b 2.0 and c = B.const_f b 1.0 in
  let y = B.square b (B.add b (B.mul b w x) c) in
  let grads = Octf.Gradients.gradients b ~ys:[ y ] ~xs:[ w ] () in
  match grads with
  | [ Some (Octf.Gradients.Dense g) ] -> (
      let s = Octf.Session.create (B.graph b) in
      match Octf.Session.run s [ g ] with
      | [ v ] -> check_f "dy/dw" 28.0 (scalar v)
      | _ -> Alcotest.fail "arity")
  | _ -> Alcotest.fail "no gradient"

let test_sgd_convergence () =
  (* Minimize (w - 5)^2 by explicit gradient-descent update ops. *)
  let b = B.create () in
  let w = B.variable b ~name:"w" ~dtype:Dtype.F32 ~shape:[||] () in
  let init = B.assign b w (B.const_f b 0.0) in
  let r = B.read b w in
  let loss = B.square b (B.sub b r (B.const_f b 5.0)) in
  let grads = Octf.Gradients.gradients b ~ys:[ loss ] ~xs:[ r ] () in
  let g =
    match grads with
    | [ Some (Octf.Gradients.Dense g) ] -> g
    | _ -> Alcotest.fail "no grad"
  in
  let update = B.assign_sub b w (B.mul b g (B.const_f b 0.1)) in
  let s = Octf.Session.create (B.graph b) in
  Octf.Session.run_unit s [ init ];
  for _ = 1 to 100 do
    Octf.Session.run_unit s [ update ]
  done;
  match Octf.Session.run s [ r ] with
  | [ v ] -> Alcotest.(check (float 1e-3)) "w -> 5" 5.0 (scalar v)
  | _ -> Alcotest.fail "arity"

let test_distributed_two_devices () =
  (* Variable pinned on ps, computation on worker: exercises placement,
     partitioning and Send/Recv. *)
  let cluster =
    Octf.Cluster.create
      ~jobs:[ ("ps", 1, [ Octf.Device.CPU ]); ("worker", 1, [ Octf.Device.CPU ]) ]
  in
  let b = B.create () in
  let w =
    B.variable b ~name:"w" ~device:"/job:ps/task:0" ~dtype:Dtype.F32
      ~shape:[||] ()
  in
  let init = B.assign b w (B.const_f b 2.0) in
  let r = B.read b w in
  let y =
    B.with_device b "/job:worker/task:0" (fun () ->
        B.mul b r (B.const_f b 21.0))
  in
  let s = Octf.Cluster.session cluster (B.graph b) in
  Octf.Session.run_unit s [ init ];
  match Octf.Session.run s [ y ] with
  | [ v ] -> check_f "2*21" 42.0 (scalar v)
  | _ -> Alcotest.fail "arity"

let suite =
  [
    Alcotest.test_case "const add" `Quick test_const_add;
    Alcotest.test_case "feed/fetch" `Quick test_feed_fetch;
    Alcotest.test_case "variable assign" `Quick test_variable_assign;
    Alcotest.test_case "matmul" `Quick test_matmul;
    Alcotest.test_case "cond" `Quick test_cond;
    Alcotest.test_case "while loop" `Quick test_while_loop;
    Alcotest.test_case "gradients" `Quick test_gradients_linear;
    Alcotest.test_case "sgd convergence" `Quick test_sgd_convergence;
    Alcotest.test_case "distributed send/recv" `Quick test_distributed_two_devices;
  ]
