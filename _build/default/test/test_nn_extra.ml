(* GRU, metrics, and end-to-end convergence integration tests. *)

open Octf_tensor
open Octf
module B = Builder
module Vs = Octf_nn.Var_store

let scalar t = Tensor.flat_get_f t 0

let test_gru_shapes () =
  let b = B.create () in
  let store = Vs.create b in
  let cell = Octf_nn.Gru.cell store ~name:"gru" ~input_dim:3 ~units:4 in
  let xs = List.init 3 (fun _ -> B.const b (Tensor.ones Dtype.F32 [| 2; 3 |])) in
  let hs = Octf_nn.Gru.unroll cell b ~xs ~batch:2 in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ Vs.init_op store ];
  let last = List.hd (Session.run s [ List.nth hs 2 ]) in
  Alcotest.(check (array int)) "state shape" [| 2; 4 |] (Tensor.shape last);
  Alcotest.(check bool) "bounded" true
    (Tensor.fold_f (fun acc v -> acc && Float.abs v <= 1.0) true last);
  Alcotest.(check int) "four weight tensors" 4 (List.length (Vs.all store))

let test_gru_trains () =
  (* Learn to output the first input of a 3-step sequence (memory task). *)
  let b = B.create () in
  let store = Vs.create ~seed:2 b in
  let cell = Octf_nn.Gru.cell store ~name:"gru" ~input_dim:1 ~units:6 in
  let x0 = B.placeholder b ~shape:[| 8; 1 |] Dtype.F32 in
  let zeros = B.const b (Tensor.zeros Dtype.F32 [| 8; 1 |]) in
  let hs = Octf_nn.Gru.unroll cell b ~xs:[ x0; zeros; zeros ] ~batch:8 in
  let out =
    Octf_nn.Layers.dense store ~name:"head" ~in_dim:6 ~out_dim:1
      (List.nth hs 2)
  in
  let loss = Octf_nn.Losses.mse b ~predictions:out ~targets:x0 in
  let train =
    Octf_train.Optimizer.minimize store
      ~algorithm:Octf_train.Optimizer.adam_default ~lr:0.02 ~loss ()
  in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ Vs.init_op store ];
  let rng = Rng.create 5 in
  let batch () =
    Tensor.uniform rng [| 8; 1 |] ~lo:(-1.0) ~hi:1.0
  in
  let loss_at () =
    scalar (List.hd (Session.run ~feeds:[ (x0, batch ()) ] s [ loss ]))
  in
  let initial = loss_at () in
  for _ = 1 to 150 do
    Session.run_unit ~feeds:[ (x0, batch ()) ] s [ train ]
  done;
  let final = loss_at () in
  Alcotest.(check bool)
    (Printf.sprintf "loss fell (%.4f -> %.4f)" initial final)
    true
    (final < 0.3 *. initial)

let test_xor_mlp_converges () =
  let b = B.create () in
  let store = Vs.create ~seed:3 b in
  let x = B.placeholder b ~shape:[| 32; 2 |] Dtype.F32 in
  let y = B.placeholder b ~shape:[| 32; 2 |] Dtype.F32 in
  let hidden =
    Octf_nn.Layers.dense store ~activation:`Tanh ~name:"h" ~in_dim:2
      ~out_dim:8 x
  in
  let logits =
    Octf_nn.Layers.dense store ~name:"out" ~in_dim:8 ~out_dim:2 hidden
  in
  let loss = Octf_nn.Losses.softmax_cross_entropy_mean b ~logits ~labels:y in
  let train =
    Octf_train.Optimizer.minimize store
      ~algorithm:Octf_train.Optimizer.adam_default ~lr:0.05 ~loss ()
  in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ Vs.init_op store ];
  let rng = Rng.create 6 in
  for _ = 1 to 250 do
    let xs, ys = Octf_data.Synthetic.xor_batch rng ~batch:32 in
    Session.run_unit ~feeds:[ (x, xs); (y, ys) ] s [ train ]
  done;
  let xs, ys = Octf_data.Synthetic.xor_batch rng ~batch:32 in
  let final =
    scalar (List.hd (Session.run ~feeds:[ (x, xs); (y, ys) ] s [ loss ]))
  in
  Alcotest.(check bool)
    (Printf.sprintf "xor learned (loss %.4f)" final)
    true (final < 0.2)

let test_top_k_accuracy () =
  let logits =
    Tensor.of_float_array [| 2; 3 |] [| 0.1; 0.9; 0.5; 0.8; 0.1; 0.3 |]
  in
  let labels = Tensor.of_int_array [| 2 |] [| 2; 0 |] in
  Alcotest.(check (float 1e-9)) "top-1" 0.5
    (Octf_nn.Metrics.top_k_accuracy ~logits ~labels ~k:1);
  Alcotest.(check (float 1e-9)) "top-2" 1.0
    (Octf_nn.Metrics.top_k_accuracy ~logits ~labels ~k:2)

let test_confusion_matrix () =
  let predictions = Tensor.of_int_array [| 4 |] [| 0; 1; 1; 0 |] in
  let labels = Tensor.of_int_array [| 4 |] [| 0; 1; 0; 0 |] in
  let m = Octf_nn.Metrics.confusion_matrix ~predictions ~labels ~classes:2 in
  Alcotest.(check int) "true 0 pred 0" 2 m.(0).(0);
  Alcotest.(check int) "true 0 pred 1" 1 m.(0).(1);
  Alcotest.(check int) "true 1 pred 1" 1 m.(1).(1)

let test_perplexity () =
  Alcotest.(check (float 1e-6)) "uniform over 8"
    8.0
    (Octf_nn.Metrics.perplexity ~mean_cross_entropy:(log 8.0))

let suite =
  [
    Alcotest.test_case "gru shapes" `Quick test_gru_shapes;
    Alcotest.test_case "gru trains" `Quick test_gru_trains;
    Alcotest.test_case "xor mlp converges" `Quick test_xor_mlp_converges;
    Alcotest.test_case "top-k accuracy" `Quick test_top_k_accuracy;
    Alcotest.test_case "confusion matrix" `Quick test_confusion_matrix;
    Alcotest.test_case "perplexity" `Quick test_perplexity;
  ]
