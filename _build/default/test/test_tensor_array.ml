(* Tensor arrays (§3.4): accumulate per-iteration values in a loop, then
   stack after exit — the mechanism behind dynamic RNN outputs. *)

open Octf_tensor
open Octf
module B = Builder

let test_write_read_stack () =
  let b = B.create () in
  let ta = B.tensor_array b () in
  let w0 = B.tensor_array_write b ta (B.const_i b 0) (B.const_f b 10.0) in
  let w1 = B.tensor_array_write b ta (B.const_i b 1) (B.const_f b 20.0) in
  let stacked =
    B.with_control_dependencies b [ w0; w1 ] (fun () ->
        B.tensor_array_stack b ta)
  in
  let size =
    B.with_control_dependencies b [ w0; w1 ] (fun () ->
        B.tensor_array_size b ta)
  in
  let s = Session.create ~optimize:false (B.graph b) in
  match Session.run s [ stacked; size ] with
  | [ st; sz ] ->
      Alcotest.(check (array int)) "stacked shape" [| 2 |] (Tensor.shape st);
      Alcotest.(check (float 0.)) "element" 20.0 (Tensor.get_f st [| 1 |]);
      Alcotest.(check int) "size" 2 (Tensor.flat_get_i sz 0)
  | _ -> Alcotest.fail "arity"

let test_loop_accumulation () =
  (* Write i^2 at index i for i in 0..4 inside a while loop, stack after
     exit: [0; 1; 4; 9; 16]. *)
  let b = B.create () in
  let ta = B.tensor_array b () in
  let i0 = B.const_f b 0.0 in
  let limit = B.const_f b 4.5 in
  let results =
    B.while_loop b ~invariants:[ limit; ta ]
      ~cond:(fun b vars ->
        match vars with
        | [ i; lim; _ta ] -> B.less b i lim
        | _ -> assert false)
      ~body:(fun b vars ->
        match vars with
        | [ i; _lim; ta ] ->
            let write =
              B.tensor_array_write b ta (B.cast b i Dtype.I32) (B.square b i)
            in
            (* Order the loop-carried increment after the write. *)
            [ B.with_control_dependencies b [ write ] (fun () ->
                  B.add b i (B.ones_like b i)) ]
        | _ -> assert false)
      [ i0 ]
  in
  let final_i = List.hd results in
  let stacked =
    B.with_control_dependencies b [ final_i ] (fun () ->
        B.tensor_array_stack b ta)
  in
  let s = Session.create ~optimize:false (B.graph b) in
  match Session.run s [ stacked ] with
  | [ st ] ->
      Alcotest.(check bool) "squares" true
        (Tensor.approx_equal st
           (Tensor.of_float_array [| 5 |] [| 0.; 1.; 4.; 9.; 16. |]))
  | _ -> Alcotest.fail "arity"

let test_double_write_rejected () =
  let b = B.create () in
  let ta = B.tensor_array b () in
  let w0 = B.tensor_array_write b ta (B.const_i b 0) (B.const_f b 1.0) in
  let w1 =
    B.with_control_dependencies b [ w0 ] (fun () ->
        B.tensor_array_write b ta (B.const_i b 0) (B.const_f b 2.0))
  in
  let s = Session.create ~optimize:false (B.graph b) in
  match Session.run s [ w1 ] with
  | _ -> Alcotest.fail "expected double-write error"
  | exception Session.Run_error _ -> ()

let test_read_unwritten_rejected () =
  let b = B.create () in
  let ta = B.tensor_array b () in
  let r = B.tensor_array_read b ta (B.const_i b 3) in
  let s = Session.create ~optimize:false (B.graph b) in
  match Session.run s [ r ] with
  | _ -> Alcotest.fail "expected unwritten-read error"
  | exception Session.Run_error _ -> ()

let suite =
  [
    Alcotest.test_case "write/read/stack" `Quick test_write_read_stack;
    Alcotest.test_case "loop accumulation" `Quick test_loop_accumulation;
    Alcotest.test_case "double write" `Quick test_double_write_rejected;
    Alcotest.test_case "read unwritten" `Quick test_read_unwritten_rejected;
  ]
