open Octf_tensor
open Octf

let element v = [| Tensor.scalar_f v |]

let test_fifo_order () =
  let q = Queue_impl.create ~name:"q" ~capacity:4 ~num_components:1 () in
  Queue_impl.enqueue q (element 1.0);
  Queue_impl.enqueue q (element 2.0);
  Queue_impl.enqueue q (element 3.0);
  Alcotest.(check int) "size" 3 (Queue_impl.size q);
  let pop () = Tensor.flat_get_f (Queue_impl.dequeue q).(0) 0 in
  Alcotest.(check (float 0.)) "first" 1.0 (pop ());
  Alcotest.(check (float 0.)) "second" 2.0 (pop ());
  Alcotest.(check (float 0.)) "third" 3.0 (pop ())

let test_component_check () =
  let q = Queue_impl.create ~name:"q" ~capacity:2 ~num_components:2 () in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Queue q: enqueue of 1 components, expected 2")
    (fun () -> Queue_impl.enqueue q (element 1.0))

let test_blocking_backpressure () =
  (* Enqueue into a full queue blocks until a consumer drains it. *)
  let q = Queue_impl.create ~name:"q" ~capacity:1 ~num_components:1 () in
  Queue_impl.enqueue q (element 1.0);
  let second_done = ref false in
  let producer =
    Thread.create
      (fun () ->
        Queue_impl.enqueue q (element 2.0);
        second_done := true)
      ()
  in
  Thread.delay 0.05;
  Alcotest.(check bool) "producer blocked" false !second_done;
  ignore (Queue_impl.dequeue q);
  Thread.join producer;
  Alcotest.(check bool) "producer resumed" true !second_done;
  Alcotest.(check (float 0.)) "drained in order" 2.0
    (Tensor.flat_get_f (Queue_impl.dequeue q).(0) 0)

let test_blocking_dequeue () =
  let q = Queue_impl.create ~name:"q" ~capacity:1 ~num_components:1 () in
  let result = ref 0.0 in
  let consumer =
    Thread.create
      (fun () -> result := Tensor.flat_get_f (Queue_impl.dequeue q).(0) 0)
      ()
  in
  Thread.delay 0.05;
  Queue_impl.enqueue q (element 7.5);
  Thread.join consumer;
  Alcotest.(check (float 0.)) "received" 7.5 !result

let test_close_semantics () =
  let q = Queue_impl.create ~name:"q" ~capacity:4 ~num_components:1 () in
  Queue_impl.enqueue q (element 1.0);
  Queue_impl.close q;
  (* Drains remaining elements... *)
  Alcotest.(check (float 0.)) "drain" 1.0
    (Tensor.flat_get_f (Queue_impl.dequeue q).(0) 0);
  (* ...then raises. *)
  Alcotest.check_raises "dequeue after drain" (Queue_impl.Closed "q")
    (fun () -> ignore (Queue_impl.dequeue q));
  Alcotest.check_raises "enqueue after close" (Queue_impl.Closed "q")
    (fun () -> Queue_impl.enqueue q (element 2.0))

let test_close_wakes_blocked () =
  let q = Queue_impl.create ~name:"q" ~capacity:1 ~num_components:1 () in
  let got_closed = ref false in
  let consumer =
    Thread.create
      (fun () ->
        try ignore (Queue_impl.dequeue q)
        with Queue_impl.Closed _ -> got_closed := true)
      ()
  in
  Thread.delay 0.05;
  Queue_impl.close q;
  Thread.join consumer;
  Alcotest.(check bool) "woken with Closed" true !got_closed

let test_dequeue_many_stacks () =
  let q = Queue_impl.create ~name:"q" ~capacity:8 ~num_components:2 () in
  for i = 1 to 3 do
    Queue_impl.enqueue q
      [| Tensor.scalar_f (float_of_int i);
         Tensor.of_float_array [| 2 |] [| float_of_int i; 0.0 |] |]
  done;
  let batched = Queue_impl.dequeue_many q 3 in
  Alcotest.(check (array int)) "component 0 shape" [| 3 |]
    (Tensor.shape batched.(0));
  Alcotest.(check (array int)) "component 1 shape" [| 3; 2 |]
    (Tensor.shape batched.(1));
  Alcotest.(check (float 0.)) "stacked order" 2.0
    (Tensor.get_f batched.(0) [| 1 |])

let test_try_dequeue () =
  let q = Queue_impl.create ~name:"q" ~capacity:2 ~num_components:1 () in
  Alcotest.(check bool) "empty" true (Queue_impl.try_dequeue q = None);
  Queue_impl.enqueue q (element 1.0);
  Alcotest.(check bool) "nonempty" true (Queue_impl.try_dequeue q <> None)

let test_shuffle_queue_is_permutation () =
  let q =
    Queue_impl.create
      ~kind:(Queue_impl.Shuffle (Rng.create 3))
      ~name:"sq" ~capacity:16 ~num_components:1 ()
  in
  for i = 0 to 9 do
    Queue_impl.enqueue q (element (float_of_int i))
  done;
  let out =
    List.init 10 (fun _ -> Tensor.flat_get_f (Queue_impl.dequeue q).(0) 0)
  in
  Alcotest.(check (list (float 0.)))
    "permutation of inputs"
    (List.init 10 float_of_int)
    (List.sort compare out)

let test_concurrent_producers_consumers () =
  let q = Queue_impl.create ~name:"q" ~capacity:4 ~num_components:1 () in
  let total = 200 in
  let sum = ref 0.0 in
  let sum_mutex = Mutex.create () in
  let producers =
    List.init 4 (fun p ->
        Thread.create
          (fun () ->
            for i = 0 to (total / 4) - 1 do
              Queue_impl.enqueue q (element (float_of_int ((p * 1000) + i)))
            done)
          ())
  in
  let consumers =
    List.init 2 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 0 to (total / 2) - 1 do
              let v = Tensor.flat_get_f (Queue_impl.dequeue q).(0) 0 in
              Mutex.lock sum_mutex;
              sum := !sum +. v;
              Mutex.unlock sum_mutex
            done)
          ())
  in
  List.iter Thread.join producers;
  List.iter Thread.join consumers;
  let expected =
    List.fold_left ( +. ) 0.0
      (List.concat_map
         (fun p -> List.init (total / 4) (fun i -> float_of_int ((p * 1000) + i)))
         [ 0; 1; 2; 3 ])
  in
  Alcotest.(check (float 0.)) "all elements transferred once" expected !sum

let suite =
  [
    Alcotest.test_case "fifo order" `Quick test_fifo_order;
    Alcotest.test_case "component check" `Quick test_component_check;
    Alcotest.test_case "backpressure" `Quick test_blocking_backpressure;
    Alcotest.test_case "blocking dequeue" `Quick test_blocking_dequeue;
    Alcotest.test_case "close semantics" `Quick test_close_semantics;
    Alcotest.test_case "close wakes blocked" `Quick test_close_wakes_blocked;
    Alcotest.test_case "dequeue_many stacks" `Quick test_dequeue_many_stacks;
    Alcotest.test_case "try_dequeue" `Quick test_try_dequeue;
    Alcotest.test_case "shuffle queue" `Quick test_shuffle_queue_is_permutation;
    Alcotest.test_case "concurrent access" `Quick
      test_concurrent_producers_consumers;
  ]
