(* Automatic differentiation (§4.1) checked against central finite
   differences on randomized inputs, for every differentiable op family. *)

open Octf_tensor
open Octf
module B = Builder
module G = Gradients

let scalar t = Tensor.flat_get_f t 0

(* Build a graph [f] of one placeholder, take d(sum f)/dx symbolically,
   and compare with finite differences at a random point. *)
let grad_check ?(tol = 1e-3) ~shape ~f () =
  let b = B.create () in
  let x = B.placeholder b ~shape Dtype.F32 in
  let y = B.reduce_sum b (f b x) in
  let grads = G.gradients b ~ys:[ y ] ~xs:[ x ] () in
  let gx =
    match grads with
    | [ Some g ] -> G.densify b g
    | _ -> Alcotest.fail "no gradient"
  in
  let session = Session.create ~optimize:false (B.graph b) in
  let rng = Rng.create 77 in
  let point = Tensor.uniform rng shape ~lo:0.2 ~hi:1.5 in
  let eval t =
    scalar (List.hd (Session.run ~feeds:[ (x, t) ] session [ y ]))
  in
  let sym =
    List.hd (Session.run ~feeds:[ (x, point) ] session [ gx ])
  in
  let eps = 1e-4 in
  for i = 0 to Tensor.numel point - 1 do
    let bump delta =
      let p = Tensor.copy point in
      Tensor.flat_set_f p i (Tensor.flat_get_f p i +. delta);
      p
    in
    let numeric = (eval (bump eps) -. eval (bump (-.eps))) /. (2.0 *. eps) in
    let symbolic = Tensor.flat_get_f sym i in
    if Float.abs (numeric -. symbolic) > tol *. (1.0 +. Float.abs numeric)
    then
      Alcotest.failf "element %d: numeric %.6f vs symbolic %.6f" i numeric
        symbolic
  done

let case name ?tol ~shape f =
  Alcotest.test_case name `Quick (fun () -> grad_check ?tol ~shape ~f ())

let unary_cases =
  [
    case "neg" ~shape:[| 3 |] (fun b x -> B.neg b x);
    case "exp" ~shape:[| 3 |] (fun b x -> B.exp b x);
    case "log" ~shape:[| 3 |] (fun b x -> B.log b x);
    case "sqrt" ~shape:[| 3 |] (fun b x -> B.sqrt b x);
    case "square" ~shape:[| 3 |] (fun b x -> B.square b x);
    case "reciprocal" ~shape:[| 3 |] (fun b x -> B.reciprocal b x);
    case "abs" ~shape:[| 3 |] (fun b x -> B.abs b x);
    case "relu" ~shape:[| 4 |] (fun b x -> B.relu b x);
    case "sigmoid" ~shape:[| 3 |] (fun b x -> B.sigmoid b x);
    case "tanh" ~shape:[| 3 |] (fun b x -> B.tanh b x);
    case "identity" ~shape:[| 3 |] (fun b x -> B.identity b x);
  ]

let binary_cases =
  [
    case "add broadcast" ~shape:[| 2; 3 |] (fun b x ->
        B.add b x (B.const b (Tensor.of_float_array [| 3 |] [| 1.; 2.; 3. |])));
    case "sub" ~shape:[| 3 |] (fun b x -> B.sub b (B.const_f b 2.0) x);
    case "mul self" ~shape:[| 3 |] (fun b x -> B.mul b x x);
    case "div" ~shape:[| 3 |] (fun b x -> B.div b (B.const_f b 1.0) x);
    case "pow" ~tol:5e-3 ~shape:[| 3 |] (fun b x ->
        B.pow b x (B.const_f b 3.0));
    case "maximum vs const" ~shape:[| 4 |] (fun b x ->
        B.maximum b x (B.const_f b 0.7));
    case "minimum vs const" ~shape:[| 4 |] (fun b x ->
        B.minimum b x (B.const_f b 0.7));
    case "select" ~shape:[| 4 |] (fun b x ->
        let cond =
          B.const b (Tensor.of_bool_array [| 4 |] [| true; false; true; false |])
        in
        B.select b cond (B.mul b x (B.const_f b 2.0)) (B.neg b x));
  ]

let matmul_cases =
  [
    case "matmul left" ~shape:[| 2; 3 |] (fun b x ->
        let w =
          B.const b
            (Tensor.of_float_array [| 3; 2 |] [| 1.; -1.; 0.5; 2.; -0.3; 1.5 |])
        in
        B.matmul b x w);
    case "matmul transpose_b" ~shape:[| 2; 3 |] (fun b x ->
        let w =
          B.const b
            (Tensor.of_float_array [| 4; 3 |]
               (Array.init 12 (fun i -> 0.1 *. float_of_int i)))
        in
        B.matmul b x w ~transpose_b:true);
    case "matmul right transpose_a" ~shape:[| 3; 2 |] (fun b x ->
        let w =
          B.const b
            (Tensor.of_float_array [| 3; 4 |]
               (Array.init 12 (fun i -> 0.1 *. float_of_int i)))
        in
        B.matmul b x w ~transpose_a:true);
  ]

let array_cases =
  [
    case "reshape" ~shape:[| 2; 3 |] (fun b x ->
        B.square b (B.reshape b x [| 6 |]));
    case "expand_dims" ~shape:[| 3 |] (fun b x ->
        B.square b (B.expand_dims b x ~axis:1));
    case "transpose" ~shape:[| 2; 3 |] (fun b x ->
        B.square b (B.transpose b x));
    case "concat" ~shape:[| 2; 2 |] (fun b x ->
        B.square b (B.concat b ~axis:1 [ x; B.mul b x (B.const_f b 2.0) ]));
    case "slice" ~shape:[| 3; 3 |] (fun b x ->
        B.square b (B.slice b x ~begin_:[| 1; 0 |] ~size:[| 2; 2 |]));
    case "pad" ~shape:[| 2; 2 |] (fun b x ->
        B.square b (B.pad b x ~paddings:[| (1, 0); (0, 1) |]));
    case "tile" ~shape:[| 2; 2 |] (fun b x ->
        B.square b (B.tile b x ~multiples:[| 2; 1 |]));
    case "reduce_sum axis" ~shape:[| 2; 3 |] (fun b x ->
        B.square b (B.reduce_sum b ~axes:[ 1 ] x));
    case "reduce_mean" ~shape:[| 2; 3 |] (fun b x ->
        B.square b (B.reduce_mean b ~axes:[ 0 ] ~keep_dims:true x));
  ]

let nn_cases =
  [
    case "softmax" ~shape:[| 2; 4 |] (fun b x -> B.softmax b x);
    case "log_softmax" ~shape:[| 2; 4 |] (fun b x -> B.log_softmax b x);
    case "softmax cross entropy" ~shape:[| 2; 3 |] (fun b x ->
        let labels =
          B.const b
            (Tensor.of_float_array [| 2; 3 |] [| 1.; 0.; 0.; 0.; 0.5; 0.5 |])
        in
        let loss, _ = B.softmax_cross_entropy b ~logits:x ~labels () in
        loss);
    case "conv2d" ~tol:5e-3 ~shape:[| 1; 3; 3; 1 |] (fun b x ->
        let filter =
          B.const b
            (Tensor.of_float_array [| 2; 2; 1; 1 |] [| 1.; -0.5; 0.25; 2.0 |])
        in
        B.conv2d b ~strides:(1, 1) ~padding:`Same x filter);
    case "conv2d filter grad" ~tol:5e-3 ~shape:[| 2; 2; 1; 1 |] (fun b x ->
        let input =
          B.const b
            (Tensor.of_float_array [| 1; 3; 3; 1 |]
               (Array.init 9 (fun i -> 0.3 *. float_of_int i)))
        in
        B.conv2d b ~strides:(1, 1) ~padding:`Valid input x);
    case "avg_pool" ~shape:[| 1; 4; 4; 1 |] (fun b x ->
        B.avg_pool b ~ksize:(2, 2) ~strides:(2, 2) ~padding:`Valid x);
    case "max_pool" ~shape:[| 1; 4; 4; 1 |] (fun b x ->
        B.max_pool b ~ksize:(2, 2) ~strides:(2, 2) ~padding:`Valid x);
  ]

let test_gather_sparse_gradient () =
  let b = B.create () in
  let x = B.placeholder b ~shape:[| 4; 2 |] Dtype.F32 in
  let idx = B.const b (Tensor.of_int_array [| 3 |] [| 1; 3; 1 |]) in
  let y = B.reduce_sum b (B.gather b x idx) in
  let grads = G.gradients b ~ys:[ y ] ~xs:[ x ] () in
  match grads with
  | [ Some (G.Sparse { indices; values; dense_shape }) ] ->
      let session = Session.create ~optimize:false (B.graph b) in
      let point = Tensor.ones Dtype.F32 [| 4; 2 |] in
      let vs =
        Session.run ~feeds:[ (x, point) ] session [ indices; values ]
      in
      (match vs with
      | [ i; v ] ->
          Alcotest.(check (array int)) "indices pass through" [| 1; 3; 1 |]
            (Tensor.to_int_array i);
          Alcotest.(check bool) "values are ones" true
            (Tensor.approx_equal v (Tensor.ones Dtype.F32 [| 3; 2 |]))
      | _ -> Alcotest.fail "arity");
      (* Densified: row 1 hit twice. *)
      let dense = G.densify b (G.Sparse { indices; values; dense_shape }) in
      let d = List.hd (Session.run ~feeds:[ (x, point) ] session [ dense ]) in
      Alcotest.(check (float 0.)) "row 1 accumulated" 2.0
        (Tensor.get_f d [| 1; 0 |]);
      Alcotest.(check (float 0.)) "row 0 untouched" 0.0
        (Tensor.get_f d [| 0; 0 |])
  | _ -> Alcotest.fail "expected sparse gradient"

let test_stop_gradient () =
  let b = B.create () in
  let x = B.placeholder b Dtype.F32 in
  let y = B.mul b x (B.stop_gradient b x) in
  let grads = G.gradients b ~ys:[ y ] ~xs:[ x ] () in
  match grads with
  | [ Some (G.Dense g) ] ->
      let session = Session.create ~optimize:false (B.graph b) in
      let v =
        List.hd
          (Session.run ~feeds:[ (x, Tensor.scalar_f 3.0) ] session [ g ])
      in
      (* d/dx (x * sg(x)) = sg(x) = 3, not 2x = 6. *)
      Alcotest.(check (float 1e-6)) "one path only" 3.0 (scalar v)
  | _ -> Alcotest.fail "no gradient"

let test_no_path_returns_none () =
  let b = B.create () in
  let x = B.placeholder b Dtype.F32 in
  let y = B.const_f b 5.0 in
  match G.gradients b ~ys:[ y ] ~xs:[ x ] () with
  | [ None ] -> ()
  | _ -> Alcotest.fail "expected None"

let test_multi_path_sums () =
  (* y = x*x + 3x: dy/dx = 2x + 3. *)
  let b = B.create () in
  let x = B.placeholder b Dtype.F32 in
  let y = B.add b (B.mul b x x) (B.mul b x (B.const_f b 3.0)) in
  match G.gradients b ~ys:[ y ] ~xs:[ x ] () with
  | [ Some (G.Dense g) ] ->
      let session = Session.create ~optimize:false (B.graph b) in
      let v =
        List.hd
          (Session.run ~feeds:[ (x, Tensor.scalar_f 4.0) ] session [ g ])
      in
      Alcotest.(check (float 1e-6)) "2x+3" 11.0 (scalar v)
  | _ -> Alcotest.fail "no gradient"

let test_grad_ys_seed () =
  let b = B.create () in
  let x = B.placeholder b Dtype.F32 in
  let y = B.mul b x (B.const_f b 2.0) in
  let seed = B.const_f b 10.0 in
  match G.gradients b ~ys:[ y ] ~xs:[ x ] ~grad_ys:[ seed ] () with
  | [ Some (G.Dense g) ] ->
      let session = Session.create ~optimize:false (B.graph b) in
      let v =
        List.hd
          (Session.run ~feeds:[ (x, Tensor.scalar_f 0.0) ] session [ g ])
      in
      Alcotest.(check (float 1e-6)) "seeded" 20.0 (scalar v)
  | _ -> Alcotest.fail "no gradient"

let test_custom_gradient_registration () =
  (* Users can override gradients (the §4.1 extensibility story). *)
  G.register_gradient ~op_type:"Sign" (fun b n _dys ->
      ignore n;
      [ Some (G.Dense (B.const_f b 42.0)) ]);
  let b = B.create () in
  let x = B.placeholder b Dtype.F32 in
  let y = B.sign b x in
  match G.gradients b ~ys:[ y ] ~xs:[ x ] () with
  | [ Some (G.Dense g) ] ->
      let session = Session.create ~optimize:false (B.graph b) in
      let v =
        List.hd
          (Session.run ~feeds:[ (x, Tensor.scalar_f 1.0) ] session [ g ])
      in
      Alcotest.(check (float 0.)) "custom grad" 42.0 (scalar v)
  | _ -> Alcotest.fail "no gradient"

let test_dynamic_partition_stitch_grad () =
  grad_check ~shape:[| 4 |]
    ~f:(fun b x ->
      let parts = B.const b (Tensor.of_int_array [| 4 |] [| 0; 1; 0; 1 |]) in
      let pieces = B.dynamic_partition b x parts ~num:2 in
      let doubled =
        List.map (fun p -> B.mul b p (B.const_f b 2.0)) pieces
      in
      let positions = B.range_like b x in
      let pos = B.dynamic_partition b positions parts ~num:2 in
      B.square b (B.dynamic_stitch b pos doubled))
    ()

let suite =
  unary_cases @ binary_cases @ matmul_cases @ array_cases @ nn_cases
  @ [
      Alcotest.test_case "gather sparse gradient" `Quick
        test_gather_sparse_gradient;
      Alcotest.test_case "stop_gradient" `Quick test_stop_gradient;
      Alcotest.test_case "no path -> None" `Quick test_no_path_returns_none;
      Alcotest.test_case "multi path sums" `Quick test_multi_path_sums;
      Alcotest.test_case "grad_ys seed" `Quick test_grad_ys_seed;
      Alcotest.test_case "custom gradient" `Quick
        test_custom_gradient_registration;
      Alcotest.test_case "partition/stitch grad" `Quick
        test_dynamic_partition_stitch_grad;
    ]

let test_cond_gradient () =
  (* y = if p then x^2 else -x; dy/dx = 2x or -1 (§4.1 conditional
     differentiation). *)
  let b = B.create () in
  let x = B.placeholder b Dtype.F32 in
  let p = B.placeholder b Dtype.Bool in
  let outs =
    B.cond b p ~inputs:[ x ]
      ~then_:(fun b ins -> [ B.square b (List.hd ins) ])
      ~else_:(fun b ins -> [ B.neg b (List.hd ins) ])
  in
  let y = List.hd outs in
  match G.gradients b ~ys:[ y ] ~xs:[ x ] () with
  | [ Some (G.Dense g) ] ->
      let s = Session.create ~optimize:false (B.graph b) in
      let dydx xv pv =
        scalar
          (List.hd
             (Session.run
                ~feeds:[ (x, Tensor.scalar_f xv); (p, Tensor.scalar_b pv) ]
                s [ g ]))
      in
      Alcotest.(check (float 1e-6)) "then branch: 2x" 6.0 (dydx 3.0 true);
      Alcotest.(check (float 1e-6)) "else branch: -1" (-1.0) (dydx 3.0 false)
  | _ -> Alcotest.fail "no cond gradient"

let test_cond_gradient_both_branches_use_x () =
  let b = B.create () in
  let x = B.placeholder b Dtype.F32 in
  let p = B.placeholder b Dtype.Bool in
  let outs =
    B.cond b p ~inputs:[ x ]
      ~then_:(fun b ins -> [ B.exp b (List.hd ins) ])
      ~else_:(fun b ins -> [ B.mul b (List.hd ins) (List.hd ins) ])
  in
  let loss = B.mul b (List.hd outs) (B.const_f b 2.0) in
  match G.gradients b ~ys:[ loss ] ~xs:[ x ] () with
  | [ Some (G.Dense g) ] ->
      let s = Session.create ~optimize:false (B.graph b) in
      let dydx xv pv =
        scalar
          (List.hd
             (Session.run
                ~feeds:[ (x, Tensor.scalar_f xv); (p, Tensor.scalar_b pv) ]
                s [ g ]))
      in
      Alcotest.(check (float 1e-5)) "then: 2e^x" (2.0 *. Stdlib.exp 1.0)
        (dydx 1.0 true);
      Alcotest.(check (float 1e-5)) "else: 4x" 4.0 (dydx 1.0 false)
  | _ -> Alcotest.fail "no cond gradient"

let suite =
  suite
  @ [
      Alcotest.test_case "cond gradient" `Quick test_cond_gradient;
      Alcotest.test_case "cond gradient both branches" `Quick
        test_cond_gradient_both_branches_use_x;
    ]

let pack_split_cases =
  [
    case "pack" ~shape:[| 3 |] (fun b x ->
        B.square b (B.pack b [ x; B.mul b x (B.const_f b 2.0) ]));
    case "unpack" ~shape:[| 2; 3 |] (fun b x ->
        match B.unpack b x ~num:2 with
        | [ a; c ] -> B.add b (B.square b a) c
        | _ -> assert false);
    case "split" ~shape:[| 2; 4 |] (fun b x ->
        match B.split b x ~axis:1 ~num:2 with
        | [ a; c ] -> B.add b (B.square b a) (B.exp b c)
        | _ -> assert false);
  ]

let test_pack_unpack_roundtrip () =
  let b = B.create () in
  let x = B.const b (Tensor.of_float_array [| 2; 2 |] [| 1.; 2.; 3.; 4. |]) in
  let rows = B.unpack b x ~num:2 in
  let repacked = B.pack b rows in
  let s = Session.create ~optimize:false (B.graph b) in
  match Session.run s [ repacked ] with
  | [ v ] ->
      Alcotest.(check bool) "roundtrip" true
        (Tensor.approx_equal v
           (Tensor.of_float_array [| 2; 2 |] [| 1.; 2.; 3.; 4. |]))
  | _ -> Alcotest.fail "arity"

let suite =
  suite @ pack_split_cases
  @ [ Alcotest.test_case "pack/unpack roundtrip" `Quick
        test_pack_unpack_roundtrip ]
