open Octf_tensor
open Octf
module B = Builder
module Vs = Octf_nn.Var_store
module Saver = Octf_train.Saver

let scalar t = Tensor.flat_get_f t 0

let simple_model () =
  let b = B.create () in
  let store = Vs.create b in
  let w = Vs.get store ~init:(Octf_nn.Init.constant 3.0) ~name:"w" [| 2 |] in
  let v = Vs.get store ~init:(Octf_nn.Init.constant 4.0) ~name:"v" [||] in
  (b, store, w, v)

let test_roundtrip () =
  let b, store, w, v = simple_model () in
  let saver = Saver.create store in
  let assign_w =
    B.assign b w.Vs.handle
      (B.const b (Tensor.of_float_array [| 2 |] [| 9.; 9. |]))
  in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ Vs.init_op store ];
  let path = Filename.temp_file "saver" ".ckpt" in
  Saver.save saver s ~path;
  Session.run_unit s [ assign_w ];
  Saver.restore saver s ~path;
  let vs = Session.run s [ w.Vs.read; v.Vs.read ] in
  Alcotest.(check (float 0.)) "w restored" 3.0 (scalar (List.hd vs));
  Alcotest.(check (float 0.)) "v restored" 4.0 (scalar (List.nth vs 1));
  Sys.remove path

let test_restore_into_fresh_session () =
  let b, store, w, _v = simple_model () in
  let saver = Saver.create store in
  let s1 = Session.create (B.graph b) in
  Session.run_unit s1 [ Vs.init_op store ];
  let path = Filename.temp_file "saver" ".ckpt" in
  Saver.save saver s1 ~path;
  (* A new session has fresh (uninitialized) resources. *)
  let s2 = Session.create (B.graph b) in
  Saver.restore saver s2 ~path;
  Alcotest.(check (float 0.)) "fresh session restored" 3.0
    (scalar (List.hd (Session.run s2 [ w.Vs.read ])));
  Sys.remove path

let test_numbered_and_latest () =
  let b, store, _w, _v = simple_model () in
  let saver = Saver.create store in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ Vs.init_op store ];
  let dir = Filename.temp_file "saver_dir" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let prefix = Filename.concat dir "model" in
  ignore (Saver.save_numbered saver s ~prefix ~step:10);
  ignore (Saver.save_numbered saver s ~prefix ~step:30);
  ignore (Saver.save_numbered saver s ~prefix ~step:20);
  (match Saver.latest_checkpoint ~prefix with
  | Some p ->
      Alcotest.(check string) "latest is 30" (prefix ^ "-30.ckpt") p
  | None -> Alcotest.fail "no checkpoint found");
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

let test_retention () =
  let b, store, _w, _v = simple_model () in
  let saver = Saver.create ~keep:2 store in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ Vs.init_op store ];
  let dir = Filename.temp_file "saver_keep" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let prefix = Filename.concat dir "model" in
  for step = 1 to 5 do
    ignore (Saver.save_numbered saver s ~prefix ~step)
  done;
  let remaining = Sys.readdir dir in
  Alcotest.(check int) "keeps two" 2 (Array.length remaining);
  Alcotest.(check bool) "newest kept" true
    (Array.exists (fun f -> f = "model-5.ckpt") remaining);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

let test_subset_of_variables () =
  let b, store, w, v = simple_model () in
  let saver = Saver.create ~vars:[ w ] store in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ Vs.init_op store ];
  let path = Filename.temp_file "saver" ".ckpt" in
  Saver.save saver s ~path;
  Alcotest.(check (list string)) "only w in file" [ "w" ]
    (Checkpoint_format.names path);
  ignore v;
  Sys.remove path

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "fresh session restore" `Quick
      test_restore_into_fresh_session;
    Alcotest.test_case "numbered/latest" `Quick test_numbered_and_latest;
    Alcotest.test_case "retention" `Quick test_retention;
    Alcotest.test_case "variable subset" `Quick test_subset_of_variables;
  ]
