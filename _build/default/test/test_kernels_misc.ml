(* Coverage for kernels not exercised elsewhere: EnqueueMany/DequeueMany
   through the builder, ScatterUpdate, CountUp, Fill, comparison
   broadcasting, RangeLike/RandomIndices, Identity on resources. *)

open Octf_tensor
open Octf
module B = Builder

let scalar t = Tensor.flat_get_f t 0

let test_enqueue_many_slices_rows () =
  let b = B.create () in
  let q = B.fifo_queue b ~capacity:8 ~num_components:1 () in
  let batch =
    B.const b (Tensor.of_float_array [| 3; 2 |] [| 1.; 2.; 3.; 4.; 5.; 6. |])
  in
  let enq = B.enqueue_many b q [ batch ] in
  let deq = List.hd (B.dequeue b q ~num_components:1) in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ enq ];
  let first = List.hd (Session.run s [ deq ]) in
  Alcotest.(check (array int)) "row shape" [| 2 |] (Tensor.shape first);
  Alcotest.(check (float 0.)) "first row" 2.0 (Tensor.get_f first [| 1 |]);
  let second = List.hd (Session.run s [ deq ]) in
  Alcotest.(check (float 0.)) "second row" 3.0 (Tensor.get_f second [| 0 |])

let test_dequeue_many_batches () =
  let b = B.create () in
  let q = B.fifo_queue b ~capacity:8 ~num_components:1 () in
  let x = B.placeholder b Dtype.F32 in
  let enq = B.enqueue b q [ x ] in
  let batched = List.hd (B.dequeue_many b q ~n:2 ~num_components:1) in
  let s = Session.create (B.graph b) in
  Session.run_unit ~feeds:[ (x, Tensor.scalar_f 1.0) ] s [ enq ];
  Session.run_unit ~feeds:[ (x, Tensor.scalar_f 2.0) ] s [ enq ];
  let v = List.hd (Session.run s [ batched ]) in
  Alcotest.(check (array int)) "batched" [| 2 |] (Tensor.shape v)

let test_scatter_update_replaces () =
  let b = B.create () in
  let v = B.variable b ~name:"v" ~dtype:Dtype.F32 ~shape:[| 3; 2 |] () in
  let init = B.assign b v (B.const b (Tensor.ones Dtype.F32 [| 3; 2 |])) in
  let upd =
    B.scatter_update b v
      (B.const b (Tensor.of_int_array [| 1 |] [| 1 |]))
      (B.const b (Tensor.of_float_array [| 1; 2 |] [| 7.; 8. |]))
  in
  let r = B.read b v in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ init ];
  Session.run_unit s [ upd ];
  let value = List.hd (Session.run s [ r ]) in
  Alcotest.(check (float 0.)) "replaced" 8.0 (Tensor.get_f value [| 1; 1 |]);
  Alcotest.(check (float 0.)) "others kept" 1.0 (Tensor.get_f value [| 0; 0 |])

let test_count_up_is_atomic_fetch_add () =
  let b = B.create () in
  let v = B.variable b ~name:"c" ~dtype:Dtype.F32 ~shape:[||] () in
  let init = B.assign b v (B.const_f b 0.0) in
  let tick = B.count_up b v in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ init ];
  let old1 = scalar (List.hd (Session.run s [ tick ])) in
  let old2 = scalar (List.hd (Session.run s [ tick ])) in
  Alcotest.(check (float 0.)) "first returns pre-increment" 0.0 old1;
  Alcotest.(check (float 0.)) "second sees bump" 1.0 old2

let test_fill_and_likes () =
  let b = B.create () in
  let f = B.fill b [| 2; 2 |] 0.5 in
  let z = B.zeros_like b f in
  let o = B.ones_like b f in
  let s = Session.create ~optimize:false (B.graph b) in
  match Session.run s [ f; z; o ] with
  | [ fv; zv; ov ] ->
      Alcotest.(check (float 0.)) "fill" 0.5 (Tensor.get_f fv [| 1; 1 |]);
      Alcotest.(check (float 0.)) "zeros_like" 0.0 (Tensor.get_f zv [| 0; 1 |]);
      Alcotest.(check (float 0.)) "ones_like" 1.0 (Tensor.get_f ov [| 1; 0 |])
  | _ -> Alcotest.fail "arity"

let test_range_like_and_random_indices () =
  let b = B.create () in
  let x = B.const b (Tensor.zeros Dtype.F32 [| 5 |]) in
  let r = B.range_like b x in
  let sampled = B.random_indices b ~n:20 ~range:7 () in
  let s = Session.create (B.graph b) in
  (match Session.run s [ r ] with
  | [ v ] ->
      Alcotest.(check (array int)) "iota" [| 0; 1; 2; 3; 4 |]
        (Tensor.to_int_array v)
  | _ -> Alcotest.fail "arity");
  match Session.run s [ sampled ] with
  | [ v ] ->
      Array.iter
        (fun i -> if i < 0 || i >= 7 then Alcotest.fail "sample out of range")
        (Tensor.to_int_array v)
  | _ -> Alcotest.fail "arity"

let test_comparison_broadcast () =
  let b = B.create () in
  let m =
    B.const b (Tensor.of_float_array [| 2; 2 |] [| 1.; 5.; 3.; 2. |])
  in
  let thresh = B.const_f b 2.5 in
  let mask = B.cast b (B.greater b m thresh) Dtype.F32 in
  let count = B.reduce_sum b mask in
  let s = Session.create ~optimize:false (B.graph b) in
  Alcotest.(check (float 0.)) "two above threshold" 2.0
    (scalar (List.hd (Session.run s [ count ])))

let test_identity_forwards_resource () =
  let b = B.create () in
  let v = B.variable b ~name:"v" ~dtype:Dtype.F32 ~shape:[||] () in
  let alias = B.identity b v in
  let init = B.assign b alias (B.const_f b 3.0) in
  let r = B.read b alias in
  let s = Session.create ~optimize:false (B.graph b) in
  Session.run_unit s [ init ];
  Alcotest.(check (float 0.)) "assigned through alias" 3.0
    (scalar (List.hd (Session.run s [ r ])))

let test_addn_variadic () =
  let b = B.create () in
  let xs = List.init 7 (fun i -> B.const_f b (float_of_int i)) in
  let sum = B.add_n b xs in
  let s = Session.create ~optimize:false (B.graph b) in
  Alcotest.(check (float 0.)) "0+..+6" 21.0
    (scalar (List.hd (Session.run s [ sum ])))

let test_queue_size_op () =
  let b = B.create () in
  let q = B.fifo_queue b ~capacity:4 ~num_components:1 () in
  let x = B.placeholder b Dtype.F32 in
  let enq = B.enqueue b q [ x ] in
  let size = B.queue_size b q in
  let s = Session.create (B.graph b) in
  Alcotest.(check int) "empty" 0
    (Tensor.flat_get_i (List.hd (Session.run s [ size ])) 0);
  Session.run_unit ~feeds:[ (x, Tensor.scalar_f 1.0) ] s [ enq ];
  Session.run_unit ~feeds:[ (x, Tensor.scalar_f 2.0) ] s [ enq ];
  Alcotest.(check int) "two" 2
    (Tensor.flat_get_i (List.hd (Session.run s [ size ])) 0)

let suite =
  [
    Alcotest.test_case "enqueue_many" `Quick test_enqueue_many_slices_rows;
    Alcotest.test_case "dequeue_many" `Quick test_dequeue_many_batches;
    Alcotest.test_case "scatter_update" `Quick test_scatter_update_replaces;
    Alcotest.test_case "count_up" `Quick test_count_up_is_atomic_fetch_add;
    Alcotest.test_case "fill/likes" `Quick test_fill_and_likes;
    Alcotest.test_case "range_like/random_indices" `Quick
      test_range_like_and_random_indices;
    Alcotest.test_case "comparison broadcast" `Quick test_comparison_broadcast;
    Alcotest.test_case "identity forwards resource" `Quick
      test_identity_forwards_resource;
    Alcotest.test_case "add_n variadic" `Quick test_addn_variadic;
    Alcotest.test_case "queue_size" `Quick test_queue_size_op;
  ]
