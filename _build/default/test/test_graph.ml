open Octf
module B = Builder

let test_add_and_get () =
  let g = Graph.create () in
  let a = Graph.add_node g ~name:"a" ~op_type:"Const" () in
  let b =
    Graph.add_node g ~name:"b" ~op_type:"Identity"
      ~inputs:[ Node.endpoint a.Node.id 0 ]
      ()
  in
  Alcotest.(check int) "ids sequential" 1 b.Node.id;
  Alcotest.(check string) "lookup" "a" (Graph.get g 0).Node.name;
  Alcotest.(check bool) "find by name" true
    (Graph.find_by_name g "b" <> None);
  Alcotest.(check int) "count" 2 (Graph.node_count g)

let test_unique_names () =
  let g = Graph.create () in
  let a = Graph.add_node g ~name:"x" ~op_type:"Const" () in
  let b = Graph.add_node g ~name:"x" ~op_type:"Const" () in
  Alcotest.(check string) "first" "x" a.Node.name;
  Alcotest.(check string) "second uniquified" "x_1" b.Node.name

let test_bad_input_rejected () =
  let g = Graph.create () in
  Alcotest.check_raises "unknown producer"
    (Invalid_argument "Graph.get: unknown node id 5") (fun () ->
      ignore
        (Graph.add_node g ~op_type:"Identity"
           ~inputs:[ Node.endpoint 5 0 ]
           ()));
  let a = Graph.add_node g ~op_type:"Const" () in
  Alcotest.check_raises "bad output slot"
    (Invalid_argument "Graph.add_node: Const has no output 3 (arity 1)")
    (fun () ->
      ignore
        (Graph.add_node g ~op_type:"Identity"
           ~inputs:[ Node.endpoint a.Node.id 3 ]
           ()))

let test_topological_order () =
  let b = B.create () in
  let x = B.const_f b 1.0 in
  let y = B.neg b x in
  let z = B.add b y x in
  ignore z;
  let order = Graph.topological_order (B.graph b) in
  let pos name =
    let rec go i = function
      | [] -> -1
      | (n : Node.t) :: rest -> if n.Node.name = name then i else go (i + 1) rest
    in
    go 0 order
  in
  Alcotest.(check bool) "const before neg" true (pos "Const" < pos "Neg");
  Alcotest.(check bool) "neg before add" true (pos "Neg" < pos "Add")

let test_loop_back_edge_tolerated () =
  (* NextIteration -> Merge back edges must not count as cycles. *)
  let b = B.create () in
  let x = B.const_f b 0.0 in
  let results =
    B.while_loop b
      ~cond:(fun b vars -> B.less b (List.hd vars) (List.hd vars))
      ~body:(fun _ vars -> [ List.hd vars ])
      [ x ]
  in
  ignore results;
  (* Should not raise. *)
  ignore (Graph.topological_order (B.graph b))

let test_set_input () =
  let g = Graph.create () in
  let a = Graph.add_node g ~op_type:"Const" () in
  let b = Graph.add_node g ~op_type:"Const" () in
  let c =
    Graph.add_node g ~op_type:"Identity" ~inputs:[ Node.endpoint a.Node.id 0 ] ()
  in
  Graph.set_input g ~node_id:c.Node.id ~slot:0 (Node.endpoint b.Node.id 0);
  let c' = Graph.get g c.Node.id in
  Alcotest.(check int) "repointed" b.Node.id c'.Node.inputs.(0).Node.node_id

let test_consumers () =
  let b = B.create () in
  let x = B.const_f b 1.0 in
  let _y = B.neg b x in
  let _z = B.neg b x in
  let consumers = Graph.consumers_of (B.graph b) in
  Alcotest.(check int) "two consumers" 2
    (List.length consumers.(x.B.node.Node.id))

let test_control_inputs () =
  let b = B.create () in
  let x = B.const_f b 1.0 in
  let gate = B.no_op b ~control_inputs:[ x ] () in
  Alcotest.(check (list int)) "control edge" [ x.B.node.Node.id ]
    gate.B.node.Node.control_inputs

let test_with_control_dependencies () =
  let b = B.create () in
  let x = B.const_f b 1.0 in
  let y =
    B.with_control_dependencies b [ x ] (fun () -> B.const_f b 2.0)
  in
  Alcotest.(check (list int)) "scoped dep" [ x.B.node.Node.id ]
    y.B.node.Node.control_inputs

let test_name_scopes () =
  let b = B.create () in
  let y = B.with_name_scope b "outer" (fun () ->
      B.with_name_scope b "inner" (fun () -> B.const_f b 1.0))
  in
  Alcotest.(check string) "scoped name" "outer/inner/Const" y.B.node.Node.name

let suite =
  [
    Alcotest.test_case "add and get" `Quick test_add_and_get;
    Alcotest.test_case "unique names" `Quick test_unique_names;
    Alcotest.test_case "bad input rejected" `Quick test_bad_input_rejected;
    Alcotest.test_case "topological order" `Quick test_topological_order;
    Alcotest.test_case "loop back edges" `Quick test_loop_back_edge_tolerated;
    Alcotest.test_case "set_input" `Quick test_set_input;
    Alcotest.test_case "consumers" `Quick test_consumers;
    Alcotest.test_case "control inputs" `Quick test_control_inputs;
    Alcotest.test_case "control dependency scope" `Quick
      test_with_control_dependencies;
    Alcotest.test_case "name scopes" `Quick test_name_scopes;
  ]
