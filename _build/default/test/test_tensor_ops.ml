open Octf_tensor
module O = Tensor_ops

let t2 rows cols data = Tensor.of_float_array [| rows; cols |] data

let check_t msg expected actual =
  if not (Tensor.approx_equal ~tol:1e-6 expected actual) then
    Alcotest.failf "%s: expected %s, got %s" msg (Tensor.to_string expected)
      (Tensor.to_string actual)

let test_elementwise () =
  let a = Tensor.of_float_array [| 3 |] [| 1.; 2.; 3. |] in
  let b = Tensor.of_float_array [| 3 |] [| 4.; 5.; 6. |] in
  check_t "add" (Tensor.of_float_array [| 3 |] [| 5.; 7.; 9. |]) (O.add a b);
  check_t "sub" (Tensor.of_float_array [| 3 |] [| -3.; -3.; -3. |]) (O.sub a b);
  check_t "mul" (Tensor.of_float_array [| 3 |] [| 4.; 10.; 18. |]) (O.mul a b);
  check_t "div" (Tensor.of_float_array [| 3 |] [| 0.25; 0.4; 0.5 |]) (O.div a b);
  check_t "neg" (Tensor.of_float_array [| 3 |] [| -1.; -2.; -3. |]) (O.neg a);
  check_t "maximum" b (O.maximum a b);
  check_t "minimum" a (O.minimum a b)

let test_unary_math () =
  let x = Tensor.of_float_array [| 2 |] [| 4.0; 9.0 |] in
  check_t "sqrt" (Tensor.of_float_array [| 2 |] [| 2.; 3. |]) (O.sqrt x);
  check_t "square" (Tensor.of_float_array [| 2 |] [| 16.; 81. |]) (O.square x);
  check_t "reciprocal"
    (Tensor.of_float_array [| 2 |] [| 0.25; 1.0 /. 9.0 |])
    (O.reciprocal x);
  let s = Tensor.of_float_array [| 3 |] [| -2.0; 0.0; 5.0 |] in
  check_t "sign" (Tensor.of_float_array [| 3 |] [| -1.; 0.; 1. |]) (O.sign s);
  check_t "abs" (Tensor.of_float_array [| 3 |] [| 2.; 0.; 5. |]) (O.abs s);
  check_t "relu" (Tensor.of_float_array [| 3 |] [| 0.; 0.; 5. |]) (O.relu s)

let test_modulo () =
  let a = Tensor.of_int_array [| 4 |] [| 0; 5; 10; 13 |] in
  let m = O.modulo (Tensor.cast a Dtype.I32) (Tensor.scalar_i 4) in
  Alcotest.(check (array int)) "mod" [| 0; 1; 2; 1 |] (Tensor.to_int_array m)

let test_comparisons_and_select () =
  let a = Tensor.of_float_array [| 3 |] [| 1.; 5.; 3. |] in
  let b = Tensor.of_float_array [| 3 |] [| 2.; 5.; 1. |] in
  let less = O.less a b in
  Alcotest.(check (array int)) "less" [| 1; 0; 0 |] (Tensor.to_int_array less);
  let sel = O.select (O.greater a b) a b in
  check_t "select" (Tensor.of_float_array [| 3 |] [| 2.; 5.; 3. |]) sel

let test_matmul_known () =
  let a = t2 2 3 [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let b = t2 3 2 [| 7.; 8.; 9.; 10.; 11.; 12. |] in
  check_t "matmul" (t2 2 2 [| 58.; 64.; 139.; 154. |]) (O.matmul a b)

let naive_matmul ~ta ~tb a b =
  let sa = Tensor.shape a and sb = Tensor.shape b in
  let m, k = if ta then (sa.(1), sa.(0)) else (sa.(0), sa.(1)) in
  let n = if tb then sb.(0) else sb.(1) in
  let get t trans i j =
    if trans then Tensor.get_f t [| j; i |] else Tensor.get_f t [| i; j |]
  in
  Tensor.init_f [| m; n |] (fun idx ->
      let acc = ref 0.0 in
      for p = 0 to k - 1 do
        acc := !acc +. (get a ta idx.(0) p *. get b tb p idx.(1))
      done;
      !acc)

let prop_matmul_matches_naive =
  QCheck.Test.make ~name:"matmul matches naive reference (all transposes)"
    ~count:60
    QCheck.(quad (int_range 1 5) (int_range 1 5) (int_range 1 5) (pair bool bool))
    (fun (m, k, n, (ta, tb)) ->
      let rng = Rng.create ((m * 100) + (k * 10) + n) in
      let a_shape = if ta then [| k; m |] else [| m; k |] in
      let b_shape = if tb then [| n; k |] else [| k; n |] in
      let a = Tensor.uniform rng a_shape ~lo:(-1.0) ~hi:1.0 in
      let b = Tensor.uniform rng b_shape ~lo:(-1.0) ~hi:1.0 in
      Tensor.approx_equal ~tol:1e-6
        (O.matmul ~transpose_a:ta ~transpose_b:tb a b)
        (naive_matmul ~ta ~tb a b))

let test_transpose () =
  let a = t2 2 3 [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  check_t "2d transpose" (t2 3 2 [| 1.; 4.; 2.; 5.; 3.; 6. |]) (O.transpose a);
  let cube = Tensor.reshape (Tensor.cast (Tensor.iota 8) Dtype.F32) [| 2; 2; 2 |] in
  let p = O.transpose ~perm:[| 1; 0; 2 |] cube in
  Alcotest.(check (float 0.)) "permuted element" 2.0 (Tensor.get_f p [| 1; 0; 0 |])

let test_reductions () =
  let a = t2 2 3 [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  check_t "sum all" (Tensor.scalar_f 21.0) (O.reduce_sum a);
  check_t "sum axis0" (Tensor.of_float_array [| 3 |] [| 5.; 7.; 9. |])
    (O.reduce_sum ~axes:[ 0 ] a);
  check_t "sum axis1 keep" (t2 2 1 [| 6.; 15. |])
    (O.reduce_sum ~axes:[ 1 ] ~keep_dims:true a);
  check_t "mean" (Tensor.scalar_f 3.5) (O.reduce_mean a);
  check_t "max axis1" (Tensor.of_float_array [| 2 |] [| 3.; 6. |])
    (O.reduce_max ~axes:[ 1 ] a)

let test_argmax () =
  let a = t2 2 3 [| 1.; 9.; 3.; 8.; 5.; 6. |] in
  Alcotest.(check (array int)) "axis1" [| 1; 0 |]
    (Tensor.to_int_array (O.argmax a ~axis:1));
  Alcotest.(check (array int)) "axis0" [| 1; 0; 1 |]
    (Tensor.to_int_array (O.argmax a ~axis:0))

let test_concat_slice_split () =
  let a = t2 2 2 [| 1.; 2.; 3.; 4. |] in
  let b = t2 2 2 [| 5.; 6.; 7.; 8. |] in
  let c = O.concat [ a; b ] ~axis:0 in
  Alcotest.(check (array int)) "concat shape" [| 4; 2 |] (Tensor.shape c);
  check_t "slice back" b (O.slice c ~begin_:[| 2; 0 |] ~size:[| 2; 2 |]);
  (match O.split c ~axis:0 ~num:2 with
  | [ x; y ] ->
      check_t "split0" a x;
      check_t "split1" b y
  | _ -> Alcotest.fail "split arity");
  let c1 = O.concat [ a; b ] ~axis:1 in
  check_t "concat axis1 slice"
    (t2 2 2 [| 5.; 6.; 7.; 8. |])
    (O.slice c1 ~begin_:[| 0; 2 |] ~size:[| 2; 2 |])

let test_pad_tile () =
  let a = t2 1 2 [| 1.; 2. |] in
  let p = O.pad a ~paddings:[| (1, 0); (0, 1) |] in
  check_t "pad" (t2 2 3 [| 0.; 0.; 0.; 1.; 2.; 0. |]) p;
  let t = O.tile a ~multiples:[| 2; 2 |] in
  check_t "tile" (t2 2 4 [| 1.; 2.; 1.; 2.; 1.; 2.; 1.; 2. |]) t

let test_one_hot () =
  let idx = Tensor.of_int_array [| 3 |] [| 0; 2; 1 |] in
  let oh = O.one_hot idx ~depth:3 in
  check_t "one hot"
    (t2 3 3 [| 1.; 0.; 0.; 0.; 0.; 1.; 0.; 1.; 0. |])
    oh

let test_gather_scatter () =
  let params = t2 4 2 [| 0.; 1.; 10.; 11.; 20.; 21.; 30.; 31. |] in
  let idx = Tensor.of_int_array [| 3 |] [| 2; 0; 2 |] in
  let g = O.gather params idx in
  check_t "gather"
    (Tensor.of_float_array [| 3; 2 |] [| 20.; 21.; 0.; 1.; 20.; 21. |])
    g;
  Alcotest.check_raises "oob"
    (Invalid_argument "Tensor_ops.gather: index 9 out of range [0,4)")
    (fun () -> ignore (O.gather params (Tensor.of_int_array [| 1 |] [| 9 |])));
  let acc = Tensor.zeros Dtype.F32 [| 4; 2 |] in
  let updates = t2 3 2 [| 1.; 1.; 2.; 2.; 3.; 3. |] in
  let s = O.scatter_add acc idx updates in
  (* duplicate index 2 accumulates *)
  check_t "scatter add"
    (t2 4 2 [| 2.; 2.; 0.; 0.; 4.; 4.; 0.; 0. |])
    s

let prop_gather_scatter_adjoint =
  (* <gather(P, i), U> = <P, scatter(0, i, U)> — the adjoint identity
     underlying sparse gradients. *)
  QCheck.Test.make ~name:"gather/scatter adjoint identity" ~count:60
    QCheck.(pair (int_range 1 6) (small_list (int_range 0 5)))
    (fun (rows, idx_list) ->
      let idx_list = List.filter (fun i -> i < rows) idx_list in
      idx_list = []
      ||
      let rng = Rng.create (rows + List.length idx_list) in
      let params = Tensor.uniform rng [| rows; 3 |] ~lo:(-1.) ~hi:1. in
      let n = List.length idx_list in
      let idx = Tensor.of_int_array [| n |] (Array.of_list idx_list) in
      let updates = Tensor.uniform rng [| n; 3 |] ~lo:(-1.) ~hi:1. in
      let lhs =
        Tensor.fold_f ( +. ) 0.0 (O.mul (O.gather params idx) updates)
      in
      let scattered =
        O.scatter_add (Tensor.zeros Dtype.F32 [| rows; 3 |]) idx updates
      in
      let rhs = Tensor.fold_f ( +. ) 0.0 (O.mul params scattered) in
      Float.abs (lhs -. rhs) < 1e-6)

let prop_partition_stitch_roundtrip =
  QCheck.Test.make ~name:"dynamic partition/stitch roundtrip" ~count:80
    QCheck.(pair (int_range 1 4) (small_list (int_range 0 3)))
    (fun (num, parts) ->
      let parts = List.map (fun p -> p mod num) parts in
      parts = []
      ||
      let n = List.length parts in
      let rng = Rng.create (n + num) in
      let data = Tensor.uniform rng [| n; 2 |] ~lo:0. ~hi:1. in
      let pt = Tensor.of_int_array [| n |] (Array.of_list parts) in
      let pieces = O.dynamic_partition data pt ~num in
      let positions = Tensor.iota n in
      let pos_pieces = O.dynamic_partition positions pt ~num in
      let rebuilt = O.dynamic_stitch pos_pieces pieces in
      Tensor.approx_equal rebuilt data)

let test_conv2d_known () =
  (* 1x3x3x1 input, 2x2 sum filter, VALID: sliding-window sums. *)
  let input =
    Tensor.of_float_array [| 1; 3; 3; 1 |]
      [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9. |]
  in
  let filter = Tensor.ones Dtype.F32 [| 2; 2; 1; 1 |] in
  let out = O.conv2d input filter ~strides:(1, 1) ~padding:O.Valid in
  check_t "valid conv"
    (Tensor.of_float_array [| 1; 2; 2; 1 |] [| 12.; 16.; 24.; 28. |])
    out;
  let same = O.conv2d input filter ~strides:(1, 1) ~padding:O.Same in
  Alcotest.(check (array int)) "same shape" [| 1; 3; 3; 1 |]
    (Tensor.shape same)

let test_conv2d_channels () =
  (* Two input channels summed into one output via a 1x1 filter. *)
  let input =
    Tensor.of_float_array [| 1; 1; 2; 2 |] [| 1.; 10.; 2.; 20. |]
  in
  let filter = Tensor.of_float_array [| 1; 1; 2; 1 |] [| 1.; 0.5 |] in
  let out = O.conv2d input filter ~strides:(1, 1) ~padding:O.Valid in
  check_t "channel mix"
    (Tensor.of_float_array [| 1; 1; 2; 1 |] [| 6.; 12. |])
    out

let test_pooling () =
  let input =
    Tensor.of_float_array [| 1; 2; 4; 1 |]
      [| 1.; 3.; 2.; 9.; 4.; 6.; 5.; 0. |]
  in
  let mp = O.max_pool input ~ksize:(2, 2) ~strides:(2, 2) ~padding:O.Valid in
  check_t "max pool" (Tensor.of_float_array [| 1; 1; 2; 1 |] [| 6.; 9. |]) mp;
  let ap = O.avg_pool input ~ksize:(2, 2) ~strides:(2, 2) ~padding:O.Valid in
  check_t "avg pool" (Tensor.of_float_array [| 1; 1; 2; 1 |] [| 3.5; 4.0 |]) ap

let test_max_pool_grad_routing () =
  let input =
    Tensor.of_float_array [| 1; 2; 2; 1 |] [| 1.; 4.; 3.; 2. |]
  in
  let dy = Tensor.of_float_array [| 1; 1; 1; 1 |] [| 7.0 |] in
  let g = O.max_pool_grad input dy ~ksize:(2, 2) ~strides:(2, 2) ~padding:O.Valid in
  check_t "routes to argmax"
    (Tensor.of_float_array [| 1; 2; 2; 1 |] [| 0.; 7.; 0.; 0. |])
    g

let test_softmax_rows () =
  let logits = t2 2 3 [| 1.; 1.; 1.; 0.; 100.; 0. |] in
  let sm = O.softmax logits in
  Alcotest.(check (float 1e-6)) "uniform row" (1.0 /. 3.0)
    (Tensor.get_f sm [| 0; 0 |]);
  Alcotest.(check (float 1e-6)) "peaked row" 1.0 (Tensor.get_f sm [| 1; 1 |]);
  (* rows sum to 1 *)
  let sums = O.reduce_sum ~axes:[ 1 ] sm in
  check_t "rows sum to one" (Tensor.ones Dtype.F32 [| 2 |]) sums

let test_cross_entropy () =
  let logits = t2 1 3 [| 0.; 0.; 0. |] in
  let labels = t2 1 3 [| 1.; 0.; 0. |] in
  let ce = O.softmax_cross_entropy ~logits ~labels in
  Alcotest.(check (float 1e-6)) "uniform ce" (log 3.0) (Tensor.flat_get_f ce 0);
  let g = O.softmax_cross_entropy_grad ~logits ~labels in
  check_t "grad = softmax - labels"
    (t2 1 3 [| (1. /. 3.) -. 1.; 1. /. 3.; 1. /. 3. |])
    g

let prop_softmax_invariant_to_shift =
  QCheck.Test.make ~name:"softmax shift invariance" ~count:50
    QCheck.(pair (int_range 1 4) (float_range (-10.) 10.))
    (fun (cols, shift) ->
      let rng = Rng.create cols in
      let x = Tensor.uniform rng [| 2; cols |] ~lo:(-3.) ~hi:3. in
      let shifted = O.add x (Tensor.scalar_f shift) in
      Tensor.approx_equal ~tol:1e-6 (O.softmax x) (O.softmax shifted))

let test_broadcast_to () =
  let row = Tensor.of_float_array [| 2 |] [| 1.; 2. |] in
  let b = O.broadcast_to row [| 3; 2 |] in
  check_t "broadcast_to" (t2 3 2 [| 1.; 2.; 1.; 2.; 1.; 2. |]) b

let suite =
  [
    Alcotest.test_case "elementwise" `Quick test_elementwise;
    Alcotest.test_case "unary math" `Quick test_unary_math;
    Alcotest.test_case "modulo" `Quick test_modulo;
    Alcotest.test_case "comparisons/select" `Quick test_comparisons_and_select;
    Alcotest.test_case "matmul known" `Quick test_matmul_known;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "reductions" `Quick test_reductions;
    Alcotest.test_case "argmax" `Quick test_argmax;
    Alcotest.test_case "concat/slice/split" `Quick test_concat_slice_split;
    Alcotest.test_case "pad/tile" `Quick test_pad_tile;
    Alcotest.test_case "one hot" `Quick test_one_hot;
    Alcotest.test_case "gather/scatter" `Quick test_gather_scatter;
    Alcotest.test_case "conv2d known" `Quick test_conv2d_known;
    Alcotest.test_case "conv2d channels" `Quick test_conv2d_channels;
    Alcotest.test_case "pooling" `Quick test_pooling;
    Alcotest.test_case "max pool grad" `Quick test_max_pool_grad_routing;
    Alcotest.test_case "softmax rows" `Quick test_softmax_rows;
    Alcotest.test_case "cross entropy" `Quick test_cross_entropy;
    Alcotest.test_case "broadcast_to" `Quick test_broadcast_to;
    QCheck_alcotest.to_alcotest prop_matmul_matches_naive;
    QCheck_alcotest.to_alcotest prop_gather_scatter_adjoint;
    QCheck_alcotest.to_alcotest prop_partition_stitch_roundtrip;
    QCheck_alcotest.to_alcotest prop_softmax_invariant_to_shift;
  ]
