test/test_optimizer.ml: Alcotest Builder Float Graph List Node Octf Octf_nn Octf_tensor Octf_train Printf Session Tensor
