test/test_partition.ml: Alcotest Builder Device Graph List Node Octf Partition
