test/test_queue.ml: Alcotest Array List Mutex Octf Octf_tensor Queue_impl Rng Tensor Thread
