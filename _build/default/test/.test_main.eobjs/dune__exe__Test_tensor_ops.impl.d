test/test_tensor_ops.ml: Alcotest Array Dtype Float List Octf_tensor QCheck QCheck_alcotest Rng Tensor Tensor_ops
