test/test_resource.ml: Alcotest Dtype List Octf Octf_tensor Queue_impl Resource Resource_manager Tensor Tensor_ops Thread
