test/test_gradients.ml: Alcotest Array Builder Dtype Float Gradients List Octf Octf_tensor Rng Session Stdlib Tensor
