test/test_quant.ml: Alcotest Array Builder Dtype Float List Octf Octf_tensor Rng Session Tensor
