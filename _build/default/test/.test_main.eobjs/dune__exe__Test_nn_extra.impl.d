test/test_nn_extra.ml: Alcotest Array Builder Dtype Float List Octf Octf_data Octf_nn Octf_tensor Octf_train Printf Rng Session Tensor
