test/test_tensor.ml: Alcotest Array Dtype Float Octf_tensor QCheck QCheck_alcotest Rng Tensor
