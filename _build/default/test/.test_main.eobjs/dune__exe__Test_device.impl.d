test/test_device.ml: Alcotest Device Octf
