test/test_rng.ml: Alcotest Array List Octf_tensor QCheck QCheck_alcotest Rng
