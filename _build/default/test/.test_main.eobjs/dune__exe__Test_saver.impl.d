test/test_saver.ml: Alcotest Array Builder Checkpoint_format Filename List Octf Octf_nn Octf_tensor Octf_train Session Sys Tensor Unix
