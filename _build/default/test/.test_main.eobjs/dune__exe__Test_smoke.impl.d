test/test_smoke.ml: Alcotest Dtype List Octf Octf_tensor Tensor
