test/test_checkpoint.ml: Alcotest Array Checkpoint_format Dtype Filename List Octf Octf_tensor QCheck QCheck_alcotest Sys Tensor
