test/test_cluster.ml: Alcotest Builder Cluster Device Dtype List Octf Octf_tensor Resource_manager Session Tensor
