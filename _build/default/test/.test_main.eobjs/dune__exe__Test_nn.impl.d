test/test_nn.ml: Alcotest Array Builder Dtype Float List Octf Octf_nn Octf_tensor Rng Session Stdlib Tensor
