test/test_records.ml: Alcotest Array Builder Bytes Filename List Octf Octf_data Octf_tensor QCheck QCheck_alcotest Record_format Rng Session String Sys Tensor
