test/test_optimizer_passes.ml: Alcotest Array Builder Dtype Graph Graph_optimizer List Node Octf Octf_tensor Session Tensor
