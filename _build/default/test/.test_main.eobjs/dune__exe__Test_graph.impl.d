test/test_graph.ml: Alcotest Array Builder Graph List Node Octf
