test/test_kernels_misc.ml: Alcotest Array Builder Dtype List Octf Octf_tensor Session Tensor
