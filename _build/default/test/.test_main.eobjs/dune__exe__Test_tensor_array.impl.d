test/test_tensor_array.ml: Alcotest Builder Dtype List Octf Octf_tensor Session Tensor
