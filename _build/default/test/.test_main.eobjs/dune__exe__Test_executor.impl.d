test/test_executor.ml: Alcotest Attr Builder Dtype List Octf Octf_tensor Session String Tensor
