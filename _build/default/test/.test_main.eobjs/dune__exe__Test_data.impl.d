test/test_data.ml: Alcotest Array Builder Dtype List Mutex Octf Octf_data Octf_tensor Rng Session Tensor Thread
