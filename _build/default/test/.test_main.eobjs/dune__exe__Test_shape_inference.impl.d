test/test_shape_inference.ml: Alcotest Builder Dtype List Octf Octf_tensor Shape_inference String Tensor
