test/test_sim.ml: Alcotest List Octf_models Octf_sim Option QCheck QCheck_alcotest
