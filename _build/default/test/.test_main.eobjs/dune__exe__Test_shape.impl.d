test/test_shape.ml: Alcotest Array Octf_tensor QCheck QCheck_alcotest Shape
