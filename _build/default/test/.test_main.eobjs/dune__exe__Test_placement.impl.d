test/test_placement.ml: Alcotest Builder Device Dtype Graph Hashtbl List Node Octf Octf_tensor Option Placement Printf
