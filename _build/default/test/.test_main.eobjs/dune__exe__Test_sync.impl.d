test/test_sync.ml: Alcotest Builder List Octf Octf_nn Octf_tensor Octf_train Session Tensor Thread
