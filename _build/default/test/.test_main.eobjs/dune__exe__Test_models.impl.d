test/test_models.ml: Alcotest Float List Octf_models
