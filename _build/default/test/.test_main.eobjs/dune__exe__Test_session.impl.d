test/test_session.ml: Alcotest Builder Dtype Filename List Octf Octf_tensor Session Sys Tensor Thread
