test/test_tracer.ml: Alcotest Builder Cluster Device Dtype Float List Octf Octf_tensor Session String Tensor Tracer
