open Octf_tensor
open Octf
module B = Builder
module Vs = Octf_nn.Var_store
module L = Octf_nn.Layers

let scalar t = Tensor.flat_get_f t 0

let test_var_store_dedup () =
  let b = B.create () in
  let store = Vs.create b in
  let v1 = Vs.get store ~name:"w" [| 2 |] in
  let v2 = Vs.get store ~name:"w" [| 2 |] in
  Alcotest.(check bool) "same variable" true (v1 == v2);
  Alcotest.(check int) "one trainable" 1 (List.length (Vs.trainable store))

let test_var_store_trainable_flag () =
  let b = B.create () in
  let store = Vs.create b in
  let _v = Vs.get store ~name:"w" [| 2 |] in
  let _s = Vs.get store ~trainable:false ~name:"slot" [| 2 |] in
  Alcotest.(check int) "all" 2 (List.length (Vs.all store));
  Alcotest.(check int) "trainable" 1 (List.length (Vs.trainable store))

let test_init_determinism () =
  let mk () =
    let b = B.create () in
    let store = Vs.create ~seed:3 b in
    let v = Vs.get store ~name:"w" [| 4 |] in
    let s = Session.create (B.graph b) in
    Session.run_unit s [ Vs.init_op store ];
    List.hd (Session.run s [ v.Vs.read ])
  in
  Alcotest.(check bool) "same seed, same init" true
    (Tensor.approx_equal (mk ()) (mk ()))

let test_glorot_bounds () =
  let rng = Rng.create 1 in
  let t = Octf_nn.Init.glorot_uniform rng [| 100; 50 |] in
  let limit = Stdlib.sqrt (6.0 /. 150.0) in
  Alcotest.(check bool) "within bounds" true
    (Tensor.fold_f
       (fun acc v -> acc && Float.abs v <= limit +. 1e-9)
       true t)

let test_dense_shapes_and_math () =
  let b = B.create () in
  let store = Vs.create b in
  let x = B.const b (Tensor.ones Dtype.F32 [| 2; 3 |]) in
  let y =
    L.dense store ~init:(Octf_nn.Init.constant 0.5) ~name:"fc" ~in_dim:3
      ~out_dim:4 x
  in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ Vs.init_op store ];
  let v = List.hd (Session.run s [ y ]) in
  Alcotest.(check (array int)) "shape" [| 2; 4 |] (Tensor.shape v);
  (* 3 inputs * 0.5 weights + 0 bias = 1.5 *)
  Alcotest.(check (float 1e-6)) "value" 1.5 (Tensor.get_f v [| 0; 0 |])

let test_conv_layer_shapes () =
  let b = B.create () in
  let store = Vs.create b in
  let x = B.const b (Tensor.ones Dtype.F32 [| 1; 8; 8; 3 |]) in
  let y =
    L.conv2d store ~activation:`Relu ~name:"c" ~in_channels:3 ~out_channels:5
      ~ksize:(3, 3) x
  in
  let pooled = L.max_pool2d b ~ksize:(2, 2) y in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ Vs.init_op store ];
  let v = List.hd (Session.run s [ pooled ]) in
  Alcotest.(check (array int)) "shape" [| 1; 4; 4; 5 |] (Tensor.shape v)

let test_batch_norm_normalizes () =
  let b = B.create () in
  let store = Vs.create b in
  let x =
    B.const b (Tensor.of_float_array [| 4; 1 |] [| 2.; 4.; 6.; 8. |])
  in
  let y = L.batch_norm store ~name:"bn" ~dim:1 x in
  let mean = B.reduce_mean b ~axes:[ 0 ] y in
  let var = B.reduce_mean b ~axes:[ 0 ] (B.square b y) in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ Vs.init_op store ];
  let vs = Session.run s [ mean; var ] in
  Alcotest.(check (float 1e-4)) "zero mean" 0.0 (scalar (List.hd vs));
  Alcotest.(check (float 1e-2)) "unit variance" 1.0 (scalar (List.nth vs 1))

let test_dropout_scaling () =
  let b = B.create () in
  let store = Vs.create b in
  let x = B.const b (Tensor.ones Dtype.F32 [| 1000 |]) in
  let y = L.dropout store ~rate:0.5 ~shape:[| 1000 |] x in
  let mean = B.reduce_mean b y in
  let s = Session.create (B.graph b) in
  let v = scalar (List.hd (Session.run s [ mean ])) in
  (* Inverted dropout keeps the expectation ~1. *)
  Alcotest.(check bool) "expectation preserved" true (Float.abs (v -. 1.0) < 0.15)

let test_embedding_matches_single_gather () =
  (* Sharded Part->Gather->Stitch must equal a plain gather on the
     concatenated table. *)
  let vocab = 20 and dim = 3 in
  let run_with num_shards =
    let b = B.create () in
    let store = Vs.create ~seed:9 b in
    let emb =
      Octf_nn.Embedding.create store
        ~init:(fun rng shape -> Tensor.uniform rng shape ~lo:0.0 ~hi:1.0)
        ~name:"e" ~vocab ~dim ~num_shards ()
    in
    let ids = B.const b (Tensor.of_int_array [| 6 |] [| 0; 19; 7; 7; 3; 12 |]) in
    let looked = Octf_nn.Embedding.lookup emb b ids in
    let s = Session.create (B.graph b) in
    Session.run_unit s [ Vs.init_op store ];
    List.hd (Session.run s [ looked ])
  in
  let single = run_with 1 in
  Alcotest.(check (array int)) "shape" [| 6; 3 |] (Tensor.shape single);
  (* Rows with the same id must agree regardless of sharding. *)
  let sharded = run_with 4 in
  Alcotest.(check bool) "duplicate ids equal (single)" true
    (Tensor.get_f single [| 2; 0 |] = Tensor.get_f single [| 3; 0 |]);
  Alcotest.(check bool) "duplicate ids equal (sharded)" true
    (Tensor.get_f sharded [| 2; 0 |] = Tensor.get_f sharded [| 3; 0 |])

let test_embedding_shard_sizes () =
  let b = B.create () in
  let store = Vs.create b in
  let emb =
    Octf_nn.Embedding.create store ~name:"e" ~vocab:10 ~dim:2 ~num_shards:3 ()
  in
  let sizes =
    List.map
      (fun (v : Vs.variable) -> (Vs.(v.shape)).(0))
      emb.Octf_nn.Embedding.shards
  in
  (* Mod sharding of 10 over 3: rows {0,3,6,9}, {1,4,7}, {2,5,8}. *)
  Alcotest.(check (list int)) "shard row counts" [ 4; 3; 3 ] sizes;
  Alcotest.(check int) "total" 10 (List.fold_left ( + ) 0 sizes)

let test_lstm_step_math () =
  (* With zero kernel, bias [i f g o] = [0 1 0 0]: c' = sigmoid(0)*tanh(0)
     + ... all zero; everything stays 0 except via forget bias. *)
  let b = B.create () in
  let store = Vs.create b in
  let cell =
    Octf_nn.Lstm.cell store ~name:"lstm" ~input_dim:2 ~units:3
  in
  let x = B.const b (Tensor.ones Dtype.F32 [| 1; 2 |]) in
  let h0, c0 = Octf_nn.Lstm.zero_state cell b ~batch:1 in
  let h1, c1 = Octf_nn.Lstm.step cell b ~x ~h:h0 ~c:c0 in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ Vs.init_op store ];
  let vs = Session.run s [ h1; c1 ] in
  Alcotest.(check (array int)) "h shape" [| 1; 3 |]
    (Tensor.shape (List.hd vs));
  Alcotest.(check (array int)) "c shape" [| 1; 3 |]
    (Tensor.shape (List.nth vs 1));
  (* States are bounded by the tanh/sigmoid envelope. *)
  Alcotest.(check bool) "h bounded" true
    (Tensor.fold_f (fun acc v -> acc && Float.abs v < 1.0) true (List.hd vs))

let test_lstm_unroll_length () =
  let b = B.create () in
  let store = Vs.create b in
  let cell = Octf_nn.Lstm.cell store ~name:"lstm" ~input_dim:2 ~units:2 in
  let xs =
    List.init 5 (fun _ -> B.const b (Tensor.ones Dtype.F32 [| 1; 2 |]))
  in
  let hs = Octf_nn.Lstm.unroll cell b ~xs ~batch:1 in
  Alcotest.(check int) "one state per step" 5 (List.length hs);
  (* Weights are shared: exactly one kernel + one bias variable. *)
  Alcotest.(check int) "two variables" 2 (List.length (Vs.all store))

let test_sampled_softmax_loss_reasonable () =
  let b = B.create () in
  let store = Vs.create ~seed:4 b in
  let w =
    Vs.get store ~init:(Octf_nn.Init.normal ~stddev:0.1 ()) ~name:"w"
      [| 50; 8 |]
  in
  let hidden = B.const b (Tensor.ones Dtype.F32 [| 4; 8 |]) in
  let labels = B.const b (Tensor.of_int_array [| 4 |] [| 1; 2; 3; 4 |]) in
  let full =
    Octf_nn.Sampled_softmax.full_softmax_loss b ~weights:w.Vs.read ~hidden
      ~labels ~num_classes:50
  in
  let sampled =
    Octf_nn.Sampled_softmax.sampled_softmax_loss b ~weights:w.Vs.read ~hidden
      ~labels ~num_sampled:10 ~num_classes:50
  in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ Vs.init_op store ];
  let vs = Session.run s [ full; sampled ] in
  let fl = scalar (List.hd vs) and sl = scalar (List.nth vs 1) in
  (* Near-uniform weights: full ~ log 50, sampled ~ log 11. *)
  Alcotest.(check bool) "full near log V" true (Float.abs (fl -. log 50.) < 1.0);
  Alcotest.(check bool) "sampled near log (s+1)" true
    (Float.abs (sl -. log 11.) < 1.0)

let test_losses_accuracy () =
  let b = B.create () in
  let logits =
    B.const b
      (Tensor.of_float_array [| 3; 2 |] [| 5.; 0.; 0.; 5.; 5.; 0. |])
  in
  let labels = B.const b (Tensor.of_int_array [| 3 |] [| 0; 1; 1 |]) in
  let acc = Octf_nn.Losses.accuracy b ~logits ~labels in
  let s = Session.create (B.graph b) in
  Alcotest.(check (float 1e-6)) "2 of 3" (2.0 /. 3.0)
    (scalar (List.hd (Session.run s [ acc ])))

let suite =
  [
    Alcotest.test_case "var store dedup" `Quick test_var_store_dedup;
    Alcotest.test_case "trainable flag" `Quick test_var_store_trainable_flag;
    Alcotest.test_case "init determinism" `Quick test_init_determinism;
    Alcotest.test_case "glorot bounds" `Quick test_glorot_bounds;
    Alcotest.test_case "dense layer" `Quick test_dense_shapes_and_math;
    Alcotest.test_case "conv layer" `Quick test_conv_layer_shapes;
    Alcotest.test_case "batch norm" `Quick test_batch_norm_normalizes;
    Alcotest.test_case "dropout scaling" `Quick test_dropout_scaling;
    Alcotest.test_case "embedding lookup" `Quick
      test_embedding_matches_single_gather;
    Alcotest.test_case "embedding shard sizes" `Quick
      test_embedding_shard_sizes;
    Alcotest.test_case "lstm step" `Quick test_lstm_step_math;
    Alcotest.test_case "lstm unroll" `Quick test_lstm_unroll_length;
    Alcotest.test_case "sampled softmax" `Quick
      test_sampled_softmax_loss_reasonable;
    Alcotest.test_case "accuracy metric" `Quick test_losses_accuracy;
  ]
