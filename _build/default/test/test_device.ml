open Octf

let test_roundtrip () =
  let d = Device.make ~job:"worker" ~task:3 ~index:1 Device.GPU in
  Alcotest.(check string) "to_string" "/job:worker/task:3/device:GPU:1"
    (Device.to_string d);
  Alcotest.(check bool) "of_string roundtrip" true
    (Device.equal d (Device.of_string (Device.to_string d)))

let test_partial_specs () =
  let spec = Device.spec_of_string "/job:ps/task:2" in
  let on_ps = Device.make ~job:"ps" ~task:2 Device.CPU in
  let elsewhere = Device.make ~job:"ps" ~task:1 Device.CPU in
  Alcotest.(check bool) "matches" true (Device.matches spec on_ps);
  Alcotest.(check bool) "no match" false (Device.matches spec elsewhere);
  let gpu_any = Device.spec_of_string "GPU" in
  Alcotest.(check bool) "type-only spec" true
    (Device.matches gpu_any (Device.make ~job:"w" Device.GPU));
  Alcotest.(check bool) "empty spec matches all" true
    (Device.matches Device.unconstrained on_ps)

let test_of_string_partial_rejected () =
  Alcotest.check_raises "partial"
    (Invalid_argument "Device.of_string: partial spec /job:w") (fun () ->
      ignore (Device.of_string "/job:w"))

let test_merge () =
  let a = Device.spec_of_string "/job:ps" in
  let b = Device.spec_of_string "/task:1" in
  let m = Device.merge_specs a b in
  Alcotest.(check string) "merged" "/job:ps/task:1" (Device.spec_to_string m);
  Alcotest.check_raises "conflict"
    (Invalid_argument "Device.merge_specs: conflicting job") (fun () ->
      ignore (Device.merge_specs a (Device.spec_of_string "/job:worker")))

let test_bad_component () =
  Alcotest.check_raises "garbage"
    (Invalid_argument "Device.spec_of_string: bad component nonsense")
    (fun () -> ignore (Device.spec_of_string "/nonsense"))

let test_perf_models () =
  let cpu = Device.default_perf Device.CPU in
  let gpu = Device.default_perf Device.GPU in
  let tpu = Device.default_perf Device.TPU in
  Alcotest.(check bool) "gpu faster than cpu" true
    (gpu.Device.flops_per_sec > cpu.Device.flops_per_sec);
  Alcotest.(check bool) "tpu faster than gpu" true
    (tpu.Device.flops_per_sec > gpu.Device.flops_per_sec)

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "partial specs" `Quick test_partial_specs;
    Alcotest.test_case "of_string partial" `Quick test_of_string_partial_rejected;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "bad component" `Quick test_bad_component;
    Alcotest.test_case "perf models" `Quick test_perf_models;
  ]
