open Octf_tensor

let check_ints = Alcotest.(check (array int))

let test_numel () =
  Alcotest.(check int) "scalar" 1 (Shape.numel [||]);
  Alcotest.(check int) "vector" 5 (Shape.numel [| 5 |]);
  Alcotest.(check int) "matrix" 12 (Shape.numel [| 3; 4 |]);
  Alcotest.(check int) "zero dim" 0 (Shape.numel [| 3; 0; 4 |])

let test_strides () =
  check_ints "3d" [| 12; 4; 1 |] (Shape.strides [| 2; 3; 4 |]);
  check_ints "scalar" [||] (Shape.strides [||])

let test_indexing_roundtrip () =
  let shape = [| 2; 3; 4 |] in
  for flat = 0 to Shape.numel shape - 1 do
    let idx = Shape.multi_index shape flat in
    Alcotest.(check int) "roundtrip" flat (Shape.flat_index shape idx)
  done

let test_index_bounds () =
  Alcotest.check_raises "oob"
    (Invalid_argument "Shape.flat_index: index out of bounds") (fun () ->
      ignore (Shape.flat_index [| 2; 2 |] [| 0; 2 |]))

let test_broadcast () =
  check_ints "same" [| 2; 3 |] (Shape.broadcast [| 2; 3 |] [| 2; 3 |]);
  check_ints "scalar" [| 2; 3 |] (Shape.broadcast [||] [| 2; 3 |]);
  check_ints "row" [| 4; 3 |] (Shape.broadcast [| 4; 3 |] [| 3 |]);
  check_ints "col" [| 4; 3 |] (Shape.broadcast [| 4; 1 |] [| 1; 3 |]);
  Alcotest.(check bool) "incompatible" false
    (Shape.broadcastable [| 2; 3 |] [| 2; 4 |])

let test_reduce () =
  check_ints "all" [||] (Shape.reduce [| 2; 3 |] []);
  check_ints "axis0" [| 3 |] (Shape.reduce [| 2; 3 |] [ 0 ]);
  check_ints "keep" [| 2; 1 |] (Shape.reduce ~keep_dims:true [| 2; 3 |] [ 1 ]);
  check_ints "negative axis" [| 2 |] (Shape.reduce [| 2; 3 |] [ -1 ])

let test_concat () =
  check_ints "axis0" [| 5; 3 |] (Shape.concat [ [| 2; 3 |]; [| 3; 3 |] ] ~axis:0);
  check_ints "axis1" [| 2; 7 |] (Shape.concat [ [| 2; 3 |]; [| 2; 4 |] ] ~axis:1);
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Shape.concat: dimension mismatch") (fun () ->
      ignore (Shape.concat [ [| 2; 3 |]; [| 3; 4 |] ] ~axis:1))

let test_squeeze () =
  check_ints "squeeze" [| 2; 3 |] (Shape.squeeze [| 1; 2; 1; 3; 1 |])

(* qcheck properties *)

let small_shape =
  QCheck.Gen.(list_size (int_range 0 4) (int_range 1 5) >|= Array.of_list)

let shape_arb = QCheck.make ~print:Shape.to_string small_shape

let prop_broadcast_commutes =
  QCheck.Test.make ~name:"broadcast commutes" ~count:200
    (QCheck.pair shape_arb shape_arb) (fun (a, b) ->
      match Shape.broadcast a b with
      | ab -> Shape.equal ab (Shape.broadcast b a)
      | exception Invalid_argument _ -> (
          match Shape.broadcast b a with
          | _ -> false
          | exception Invalid_argument _ -> true))

let prop_broadcast_idempotent =
  QCheck.Test.make ~name:"broadcast with self is identity" ~count:100
    shape_arb (fun s -> Shape.equal s (Shape.broadcast s s))

let prop_broadcast_result_dominates =
  QCheck.Test.make ~name:"broadcast result broadcastable with operands"
    ~count:200 (QCheck.pair shape_arb shape_arb) (fun (a, b) ->
      match Shape.broadcast a b with
      | ab -> Shape.equal ab (Shape.broadcast ab a) && Shape.equal ab (Shape.broadcast ab b)
      | exception Invalid_argument _ -> QCheck.assume_fail ())

let prop_roundtrip =
  QCheck.Test.make ~name:"flat/multi index roundtrip" ~count:200 shape_arb
    (fun s ->
      let n = Shape.numel s in
      n = 0
      || (let ok = ref true in
          for i = 0 to n - 1 do
            if Shape.flat_index s (Shape.multi_index s i) <> i then ok := false
          done;
          !ok))

let suite =
  [
    Alcotest.test_case "numel" `Quick test_numel;
    Alcotest.test_case "strides" `Quick test_strides;
    Alcotest.test_case "index roundtrip" `Quick test_indexing_roundtrip;
    Alcotest.test_case "index bounds" `Quick test_index_bounds;
    Alcotest.test_case "broadcast" `Quick test_broadcast;
    Alcotest.test_case "reduce" `Quick test_reduce;
    Alcotest.test_case "concat" `Quick test_concat;
    Alcotest.test_case "squeeze" `Quick test_squeeze;
    QCheck_alcotest.to_alcotest prop_broadcast_commutes;
    QCheck_alcotest.to_alcotest prop_broadcast_idempotent;
    QCheck_alcotest.to_alcotest prop_broadcast_result_dominates;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
