open Octf_tensor

let approx = Alcotest.(check (float 1e-9))

let test_create_mismatch () =
  Alcotest.check_raises "length"
    (Invalid_argument "Tensor.create: buffer length 3 does not match [2x2]")
    (fun () ->
      ignore (Tensor.of_float_array [| 2; 2 |] [| 1.; 2.; 3. |]));
  Alcotest.check_raises "kind"
    (Invalid_argument "Tensor.create: buffer kind does not match dtype")
    (fun () ->
      ignore (Tensor.create Dtype.I32 [| 1 |] (Tensor.Float_buf [| 1.0 |])))

let test_zeros_ones_full () =
  let z = Tensor.zeros Dtype.F32 [| 2; 2 |] in
  approx "zeros" 0.0 (Tensor.get_f z [| 1; 1 |]);
  let o = Tensor.ones Dtype.I32 [| 3 |] in
  Alcotest.(check int) "ones" 1 (Tensor.get_i o [| 2 |]);
  let f = Tensor.full Dtype.F32 [| 2 |] 3.5 in
  approx "full" 3.5 (Tensor.flat_get_f f 1)

let test_scalars () =
  approx "scalar_f" 2.5 (Tensor.flat_get_f (Tensor.scalar_f 2.5) 0);
  Alcotest.(check int) "scalar_i" 7 (Tensor.flat_get_i (Tensor.scalar_i 7) 0);
  Alcotest.(check string) "scalar_s" "hi"
    (Tensor.get_s (Tensor.scalar_s "hi") [||]);
  Alcotest.(check bool) "scalar_b rank" true
    (Tensor.rank (Tensor.scalar_b true) = 0)

let test_reshape () =
  let t = Tensor.iota 12 in
  let r = Tensor.reshape t [| 3; 4 |] in
  Alcotest.(check int) "element" 7 (Tensor.get_i r [| 1; 3 |]);
  let inferred = Tensor.reshape t [| 2; -1 |] in
  Alcotest.(check (array int)) "inferred" [| 2; 6 |] (Tensor.shape inferred);
  Alcotest.check_raises "bad infer"
    (Invalid_argument "Tensor.reshape: cannot infer dimension") (fun () ->
      ignore (Tensor.reshape t [| 5; -1 |]))

let test_cast () =
  let f = Tensor.of_float_array [| 3 |] [| 1.7; -2.3; 0.0 |] in
  let i = Tensor.cast f Dtype.I32 in
  Alcotest.(check int) "truncate" 1 (Tensor.flat_get_i i 0);
  let b = Tensor.cast f Dtype.Bool in
  Alcotest.(check bool) "to bool" false (Tensor.bool_buffer b).(2);
  let back = Tensor.cast i Dtype.F32 in
  approx "back" 1.0 (Tensor.flat_get_f back 0)

let test_map2_broadcast () =
  let a = Tensor.of_float_array [| 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  let row = Tensor.of_float_array [| 2 |] [| 10.; 20. |] in
  let sum = Tensor.map2_f ( +. ) a row in
  Alcotest.(check bool) "broadcast add" true
    (Tensor.approx_equal sum
       (Tensor.of_float_array [| 2; 2 |] [| 11.; 22.; 13.; 24. |]))

let test_map2_dtype_mismatch () =
  let f = Tensor.scalar_f 1.0 and i = Tensor.scalar_i 1 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Tensor.map2_f: dtype mismatch float32 vs int32")
    (fun () -> ignore (Tensor.map2_f ( +. ) f i))

let test_copy_isolation () =
  let t = Tensor.of_float_array [| 2 |] [| 1.; 2. |] in
  let c = Tensor.copy t in
  Tensor.flat_set_f c 0 99.0;
  approx "original untouched" 1.0 (Tensor.flat_get_f t 0)

let test_init_f () =
  let t =
    Tensor.init_f [| 2; 3 |] (fun idx -> float_of_int ((idx.(0) * 10) + idx.(1)))
  in
  approx "init value" 12.0 (Tensor.get_f t [| 1; 2 |])

let test_byte_size () =
  Alcotest.(check int) "f32" 24 (Tensor.byte_size (Tensor.zeros Dtype.F32 [| 6 |]));
  Alcotest.(check int) "i64" 48 (Tensor.byte_size (Tensor.zeros Dtype.I64 [| 6 |]))

let test_random_tensors () =
  let rng = Rng.create 3 in
  let u = Tensor.uniform rng [| 100 |] ~lo:(-1.0) ~hi:1.0 in
  Alcotest.(check bool) "in range" true
    (Tensor.fold_f (fun acc v -> acc && v >= -1.0 && v < 1.0) true u);
  let n = Tensor.normal rng [| 1000 |] ~mean:5.0 ~stddev:0.1 in
  let mean = Tensor.fold_f ( +. ) 0.0 n /. 1000.0 in
  Alcotest.(check bool) "mean near 5" true (Float.abs (mean -. 5.0) < 0.05)

let prop_reshape_preserves =
  QCheck.Test.make ~name:"reshape preserves elements" ~count:100
    QCheck.(int_range 1 24)
    (fun n ->
      let t = Tensor.iota n in
      let r = Tensor.reshape (Tensor.reshape t [| n; 1 |]) [| n |] in
      Tensor.to_int_array r = Tensor.to_int_array t)

let prop_cast_roundtrip_int =
  QCheck.Test.make ~name:"int -> float -> int roundtrip" ~count:100
    QCheck.(small_list (int_range (-1000) 1000))
    (fun l ->
      l = []
      ||
      let a = Array.of_list l in
      let t = Tensor.of_int_array [| Array.length a |] a in
      Tensor.to_int_array (Tensor.cast (Tensor.cast t Dtype.F32) Dtype.I32) = a)

let suite =
  [
    Alcotest.test_case "create mismatch" `Quick test_create_mismatch;
    Alcotest.test_case "zeros/ones/full" `Quick test_zeros_ones_full;
    Alcotest.test_case "scalars" `Quick test_scalars;
    Alcotest.test_case "reshape" `Quick test_reshape;
    Alcotest.test_case "cast" `Quick test_cast;
    Alcotest.test_case "map2 broadcast" `Quick test_map2_broadcast;
    Alcotest.test_case "map2 dtype mismatch" `Quick test_map2_dtype_mismatch;
    Alcotest.test_case "copy isolation" `Quick test_copy_isolation;
    Alcotest.test_case "init_f" `Quick test_init_f;
    Alcotest.test_case "byte size" `Quick test_byte_size;
    Alcotest.test_case "random tensors" `Quick test_random_tensors;
    QCheck_alcotest.to_alcotest prop_reshape_preserves;
    QCheck_alcotest.to_alcotest prop_cast_roundtrip_int;
  ]
