open Octf_tensor
open Octf
module B = Builder

let devices =
  [
    Device.make ~job:"ps" ~task:0 Device.CPU;
    Device.make ~job:"ps" ~task:1 Device.CPU;
    Device.make ~job:"worker" ~task:0 Device.CPU;
    Device.make ~job:"worker" ~task:0 Device.GPU;
  ]

let all_ids b = List.init (Graph.node_count (B.graph b)) (fun i -> i)

let assigned b (o : B.output) =
  match (Graph.get (B.graph b) o.B.node.Node.id).Node.assigned_device with
  | Some d -> Device.to_string d
  | None -> Alcotest.fail ("unplaced: " ^ o.B.node.Node.name)

let test_explicit_constraint () =
  let b = B.create () in
  let v =
    B.variable b ~name:"v" ~device:"/job:ps/task:1" ~dtype:Dtype.F32
      ~shape:[||] ()
  in
  Placement.place (B.graph b) ~nodes:(all_ids b) ~devices;
  Alcotest.(check string) "pinned" "/job:ps/task:1/device:CPU:0" (assigned b v)

let test_colocation_with_variable () =
  (* Read/Assign must land with the variable that owns the state. *)
  let b = B.create () in
  let v =
    B.variable b ~name:"v" ~device:"/job:ps/task:0" ~dtype:Dtype.F32
      ~shape:[||] ()
  in
  let r = B.read b v in
  let a = B.assign_add b v (B.const_f b 1.0) in
  Placement.place (B.graph b) ~nodes:(all_ids b) ~devices;
  Alcotest.(check string) "read colocated" (assigned b v) (assigned b r);
  Alcotest.(check string) "assign colocated" (assigned b v) (assigned b a)

let test_colocation_groups () =
  let b = B.create () in
  let v = B.variable b ~name:"v" ~dtype:Dtype.F32 ~shape:[||] () in
  let r = B.read b v in
  let _lone = B.const_f b 1.0 in
  let groups = Placement.colocation_groups (B.graph b) ~nodes:(all_ids b) in
  let group_of id = List.find (List.mem id) groups in
  Alcotest.(check bool) "v and read together" true
    (group_of v.B.node.Node.id == group_of r.B.node.Node.id)

let test_queue_stays_on_cpu () =
  (* Queue kernels are CPU-only; the feasible set must exclude GPU. *)
  let b = B.create () in
  let q = B.fifo_queue b ~capacity:2 ~num_components:1 () in
  Placement.place (B.graph b) ~nodes:(all_ids b) ~devices;
  let d =
    Option.get (Graph.get (B.graph b) q.B.node.Node.id).Node.assigned_device
  in
  Alcotest.(check bool) "cpu" true (d.Device.dev_type = Device.CPU)

let test_unsatisfiable () =
  let b = B.create () in
  let _v =
    B.variable b ~name:"v" ~device:"/job:nowhere" ~dtype:Dtype.F32 ~shape:[||]
      ()
  in
  match Placement.place (B.graph b) ~nodes:(all_ids b) ~devices with
  | () -> Alcotest.fail "expected Placement_error"
  | exception Placement.Placement_error _ -> ()

let test_load_balance () =
  (* Many unconstrained variables should spread over the CPUs. *)
  let b = B.create () in
  for i = 0 to 9 do
    ignore
      (B.variable b
         ~name:(Printf.sprintf "v%d" i)
         ~device:"/device:CPU" ~dtype:Dtype.F32 ~shape:[||] ())
  done;
  Placement.place (B.graph b) ~nodes:(all_ids b) ~devices;
  let counts = Hashtbl.create 4 in
  Graph.iter (B.graph b) (fun n ->
      match n.Node.assigned_device with
      | Some d ->
          let k = Device.to_string d in
          Hashtbl.replace counts k
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
      | None -> ());
  Alcotest.(check bool) "spread over >1 device" true (Hashtbl.length counts > 1)

let test_respects_existing_assignment () =
  let b = B.create () in
  let v = B.variable b ~name:"v" ~dtype:Dtype.F32 ~shape:[||] () in
  let pinned = Device.make ~job:"worker" ~task:0 Device.CPU in
  v.B.node.Node.assigned_device <- Some pinned;
  let r = B.read b v in
  Placement.place (B.graph b) ~nodes:(all_ids b) ~devices;
  Alcotest.(check string) "group follows pin" (Device.to_string pinned)
    (assigned b r)

let suite =
  [
    Alcotest.test_case "explicit constraint" `Quick test_explicit_constraint;
    Alcotest.test_case "colocation with variable" `Quick
      test_colocation_with_variable;
    Alcotest.test_case "colocation groups" `Quick test_colocation_groups;
    Alcotest.test_case "queue on cpu" `Quick test_queue_stays_on_cpu;
    Alcotest.test_case "unsatisfiable" `Quick test_unsatisfiable;
    Alcotest.test_case "load balance" `Quick test_load_balance;
    Alcotest.test_case "respects existing assignment" `Quick
      test_respects_existing_assignment;
  ]
