open Octf_tensor
open Octf
module B = Builder
module Si = Shape_inference

let known eng o =
  match Si.output_shape eng o with
  | Si.Known s -> s
  | Si.Unknown -> Alcotest.fail "expected a known shape"

let test_basic_propagation () =
  let b = B.create () in
  let x = B.placeholder b ~shape:[| 4; 3 |] Dtype.F32 in
  let w = B.const b (Tensor.zeros Dtype.F32 [| 3; 5 |]) in
  let y = B.relu b (B.matmul b x w) in
  let eng = Si.engine (B.graph b) in
  Alcotest.(check (array int)) "matmul+relu" [| 4; 5 |] (known eng y)

let test_broadcast_shapes () =
  let b = B.create () in
  let x = B.placeholder b ~shape:[| 4; 3 |] Dtype.F32 in
  let row = B.const b (Tensor.zeros Dtype.F32 [| 3 |]) in
  let y = B.add b x row in
  let eng = Si.engine (B.graph b) in
  Alcotest.(check (array int)) "broadcast" [| 4; 3 |] (known eng y)

let test_matmul_mismatch_detected () =
  let b = B.create () in
  let x = B.placeholder b ~shape:[| 4; 3 |] Dtype.F32 in
  let w = B.const b (Tensor.zeros Dtype.F32 [| 4; 5 |]) in
  let _y = B.matmul b x w in
  match Si.validate (B.graph b) with
  | () -> Alcotest.fail "expected Shape_error"
  | exception Si.Shape_error msg ->
      Alcotest.(check bool) "names dims" true
        (String.length msg > 0)

let test_reshape_inference () =
  let b = B.create () in
  let x = B.placeholder b ~shape:[| 4; 6 |] Dtype.F32 in
  let y = B.reshape b x [| -1; 8 |] in
  let eng = Si.engine (B.graph b) in
  Alcotest.(check (array int)) "wildcard resolved" [| 3; 8 |] (known eng y)

let test_conv_pool_shapes () =
  let b = B.create () in
  let x = B.placeholder b ~shape:[| 2; 8; 8; 3 |] Dtype.F32 in
  let f = B.const b (Tensor.zeros Dtype.F32 [| 3; 3; 3; 16 |]) in
  let conv = B.conv2d b ~strides:(1, 1) ~padding:`Same x f in
  let pool = B.max_pool b ~ksize:(2, 2) ~strides:(2, 2) ~padding:`Valid conv in
  let eng = Si.engine (B.graph b) in
  Alcotest.(check (array int)) "conv same" [| 2; 8; 8; 16 |] (known eng conv);
  Alcotest.(check (array int)) "pool" [| 2; 4; 4; 16 |] (known eng pool)

let test_variable_read_shape () =
  let b = B.create () in
  let v = B.variable b ~name:"w" ~dtype:Dtype.F32 ~shape:[| 7; 2 |] () in
  let r = B.read b v in
  let eng = Si.engine (B.graph b) in
  Alcotest.(check (array int)) "read" [| 7; 2 |] (known eng r)

let test_unknown_propagates () =
  let b = B.create () in
  (* A queue dequeue has runtime-dependent shape. *)
  let q = B.fifo_queue b ~capacity:2 ~num_components:1 () in
  let deq = List.hd (B.dequeue b q ~num_components:1) in
  let y = B.relu b deq in
  let eng = Si.engine (B.graph b) in
  Alcotest.(check bool) "unknown" true (Si.output_shape eng y = Si.Unknown)

let test_reduction_and_gather () =
  let b = B.create () in
  let x = B.placeholder b ~shape:[| 4; 6 |] Dtype.F32 in
  let sum = B.reduce_sum b ~axes:[ 1 ] ~keep_dims:true x in
  let ids = B.const b (Tensor.of_int_array [| 3 |] [| 0; 1; 2 |]) in
  let g = B.gather b x ids in
  let eng = Si.engine (B.graph b) in
  Alcotest.(check (array int)) "reduce keep" [| 4; 1 |] (known eng sum);
  Alcotest.(check (array int)) "gather" [| 3; 6 |] (known eng g)

let test_pack_split_shapes () =
  let b = B.create () in
  let x = B.placeholder b ~shape:[| 2; 3 |] Dtype.F32 in
  let packed = B.pack b [ x; x ] in
  let halves = B.split b x ~axis:0 ~num:2 in
  let eng = Si.engine (B.graph b) in
  Alcotest.(check (array int)) "pack" [| 2; 2; 3 |] (known eng packed);
  Alcotest.(check (array int)) "split" [| 1; 3 |] (known eng (List.hd halves))

let test_concat_mismatch_detected () =
  let b = B.create () in
  let x = B.placeholder b ~shape:[| 2; 3 |] Dtype.F32 in
  let y = B.placeholder b ~shape:[| 2; 4 |] Dtype.F32 in
  let _c = B.concat b ~axis:0 [ x; y ] in
  match Si.validate (B.graph b) with
  | () -> Alcotest.fail "expected Shape_error"
  | exception Si.Shape_error _ -> ()

let test_loop_shapes_terminate () =
  (* Inference must terminate on loop back edges. *)
  let b = B.create () in
  let x = B.const_f b 0.0 in
  let lim = B.const_f b 3.0 in
  let results =
    B.while_loop b ~invariants:[ lim ]
      ~cond:(fun b vars ->
        match vars with
        | [ i; l ] -> B.less b i l
        | _ -> assert false)
      ~body:(fun b vars ->
        match vars with
        | [ i; _ ] -> [ B.add b i (B.ones_like b i) ]
        | _ -> assert false)
      [ x ]
  in
  ignore results;
  Si.validate (B.graph b)

let suite =
  [
    Alcotest.test_case "basic propagation" `Quick test_basic_propagation;
    Alcotest.test_case "broadcast" `Quick test_broadcast_shapes;
    Alcotest.test_case "matmul mismatch" `Quick test_matmul_mismatch_detected;
    Alcotest.test_case "reshape wildcard" `Quick test_reshape_inference;
    Alcotest.test_case "conv/pool" `Quick test_conv_pool_shapes;
    Alcotest.test_case "variable read" `Quick test_variable_read_shape;
    Alcotest.test_case "unknown propagates" `Quick test_unknown_propagates;
    Alcotest.test_case "reduction/gather" `Quick test_reduction_and_gather;
    Alcotest.test_case "pack/split" `Quick test_pack_split_shapes;
    Alcotest.test_case "concat mismatch" `Quick test_concat_mismatch_detected;
    Alcotest.test_case "loop termination" `Quick test_loop_shapes_terminate;
  ]
