module Sim = Octf_sim.Replica_sim
module Stats = Octf_sim.Stats
module Eq = Octf_sim.Event_queue
module Net = Octf_sim.Netmodel
module W = Octf_models.Workload

let test_percentiles () =
  let s = [| 5.; 1.; 3.; 2.; 4. |] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median s);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile s ~p:0.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile s ~p:100.0);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean s);
  Alcotest.check_raises "empty"
    (Invalid_argument "Stats.percentile: empty sample") (fun () ->
      ignore (Stats.percentile [||] ~p:50.0))

let prop_event_queue_ordered =
  QCheck.Test.make ~name:"event queue pops in time order" ~count:100
    QCheck.(small_list (float_range 0.0 100.0))
    (fun times ->
      let q = Eq.create () in
      List.iter (fun t -> Eq.push q ~time:t t) times;
      let rec drain acc =
        match Eq.pop q with
        | None -> List.rev acc
        | Some (t, _) -> drain (t :: acc)
      in
      drain [] = List.stable_sort compare times)

let test_event_queue_fifo_ties () =
  let q = Eq.create () in
  Eq.push q ~time:1.0 "a";
  Eq.push q ~time:1.0 "b";
  Eq.push q ~time:1.0 "c";
  let pop () = snd (Option.get (Eq.pop q)) in
  Alcotest.(check string) "fifo on ties" "a" (pop ());
  Alcotest.(check string) "fifo on ties 2" "b" (pop ());
  Alcotest.(check string) "fifo on ties 3" "c" (pop ())

let test_lane_serialization () =
  let l = Net.lane () in
  let t1 = Net.occupy l ~now:0.0 ~duration:1.0 in
  let t2 = Net.occupy l ~now:0.5 ~duration:1.0 in
  let t3 = Net.occupy l ~now:5.0 ~duration:1.0 in
  Alcotest.(check (float 1e-9)) "first" 1.0 t1;
  Alcotest.(check (float 1e-9)) "queued" 2.0 t2;
  Alcotest.(check (float 1e-9)) "idle gap" 6.0 t3

let test_transfer_pipelined () =
  let p = Net.default_params in
  let src = Net.lane () and dst = Net.lane () in
  let t = Net.transfer p ~src_out:src ~dst_in:dst ~now:0.0 ~bytes:1.6e9 in
  (* One second of wire time (cut-through), plus latency. *)
  Alcotest.(check bool) "about 1s" true (t > 0.9 && t < 1.2)

let base workload =
  { (Sim.default ~workload) with Sim.straggler_sigma = 0.02;
    heavy_tail_prob = 0.0; seed = 7 }

let test_dense_scales_with_size () =
  let small = Sim.run (base (W.null_dense ~mb:10.0)) ~steps:10 in
  let big = Sim.run (base (W.null_dense ~mb:1000.0)) ~steps:10 in
  Alcotest.(check bool) "100x data, much slower steps" true
    (big.Sim.summary.Stats.median > 20.0 *. small.Sim.summary.Stats.median)

let test_sparse_independent_of_model_size () =
  let a = Sim.run (base (W.null_sparse ~gb:1.0 ~entries:32 ~dim:1024)) ~steps:10 in
  let b = Sim.run (base (W.null_sparse ~gb:16.0 ~entries:32 ~dim:1024)) ~steps:10 in
  Alcotest.(check (float 1e-6)) "same step time"
    a.Sim.summary.Stats.median b.Sim.summary.Stats.median

let test_sync_step_grows_with_workers () =
  let run n =
    (Sim.run
       { (base (W.null_dense ~mb:100.0)) with
         Sim.num_workers = n;
         coordination = Sim.Sync { backup = 0 } }
       ~steps:10)
      .Sim.summary.Stats.median
  in
  Alcotest.(check bool) "PS contention" true (run 50 > 1.5 *. run 1)

let test_backup_workers_cut_stragglers () =
  let run backup =
    (Sim.run
       { (Sim.default ~workload:(W.inception_v3 ~batch:32)) with
         Sim.num_workers = 50 + backup;
         num_ps = 17;
         heavy_tail_prob = 0.05;
         coordination = Sim.Sync { backup };
         seed = 11 }
       ~steps:120)
      .Sim.summary.Stats.median
  in
  Alcotest.(check bool) "backup reduces median step" true
    (run 4 < 0.95 *. run 0)

let test_async_throughput_grows () =
  let run n =
    (Sim.run
       { (base (W.inception_v3 ~batch:32)) with
         Sim.num_workers = n;
         num_ps = 17 }
       ~steps:10)
      .Sim.throughput
  in
  let t1 = run 1 and t25 = run 25 in
  Alcotest.(check bool) "scales up" true (t25 > 15.0 *. t1)

let test_async_saturates () =
  (* Aggregation bandwidth bounds throughput at high worker counts. *)
  let run n =
    (Sim.run
       { (base (W.inception_v3 ~batch:32)) with
         Sim.num_workers = n;
         num_ps = 17 }
       ~steps:15)
      .Sim.throughput
  in
  let t100 = run 100 and t200 = run 200 in
  Alcotest.(check bool) "diminishing returns" true (t200 < 1.7 *. t100)

let test_full_softmax_scales_with_ps () =
  let run ps =
    let workload = Octf_models.Lstm_model.(workload ~softmax:Full ~batch:64 ~unroll:20) in
    (Sim.run { (base workload) with Sim.num_workers = 32; num_ps = ps } ~steps:10)
      .Sim.throughput
  in
  Alcotest.(check bool) "2 PS nearly doubles words/sec" true
    (run 2 > 1.6 *. run 1)

let test_deterministic_given_seed () =
  let cfg = base (W.inception_v3 ~batch:32) in
  let a = Sim.run cfg ~steps:5 and b = Sim.run cfg ~steps:5 in
  Alcotest.(check (float 0.)) "reproducible" a.Sim.summary.Stats.median
    b.Sim.summary.Stats.median

let suite =
  [
    Alcotest.test_case "percentiles" `Quick test_percentiles;
    QCheck_alcotest.to_alcotest prop_event_queue_ordered;
    Alcotest.test_case "event queue fifo ties" `Quick test_event_queue_fifo_ties;
    Alcotest.test_case "lane serialization" `Quick test_lane_serialization;
    Alcotest.test_case "transfer pipelined" `Quick test_transfer_pipelined;
    Alcotest.test_case "dense scales with size" `Quick
      test_dense_scales_with_size;
    Alcotest.test_case "sparse size-independent" `Quick
      test_sparse_independent_of_model_size;
    Alcotest.test_case "sync grows with workers" `Quick
      test_sync_step_grows_with_workers;
    Alcotest.test_case "backup cuts stragglers" `Quick
      test_backup_workers_cut_stragglers;
    Alcotest.test_case "async throughput grows" `Quick
      test_async_throughput_grows;
    Alcotest.test_case "async saturates" `Quick test_async_saturates;
    Alcotest.test_case "full softmax scales with PS" `Quick
      test_full_softmax_scales_with_ps;
    Alcotest.test_case "deterministic" `Quick test_deterministic_given_seed;
  ]
