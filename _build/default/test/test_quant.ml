(* Quantization (§5): 8-bit affine codes with gemmlowp-style integer
   matmul accumulation. *)

open Octf_tensor
open Octf
module B = Builder

let test_roundtrip_error_bound () =
  let b = B.create () in
  let x = B.placeholder b ~shape:[| 16 |] Dtype.F32 in
  let q, lo, hi = B.quantize b x in
  let back = B.dequantize b q lo hi in
  let s = Session.create ~optimize:false (B.graph b) in
  let rng = Rng.create 21 in
  let point = Tensor.uniform rng [| 16 |] ~lo:(-4.0) ~hi:4.0 in
  let v = List.hd (Session.run ~feeds:[ (x, point) ] s [ back ]) in
  (* Max quantization error is half a step: (hi - lo) / 255 / 2 ~ 0.016. *)
  for i = 0 to 15 do
    let err = Float.abs (Tensor.flat_get_f v i -. Tensor.flat_get_f point i) in
    if err > 8.0 /. 255.0 then Alcotest.failf "error %f too large" err
  done

let test_codes_in_range () =
  let b = B.create () in
  let x = B.const b (Tensor.of_float_array [| 3 |] [| -1.0; 0.0; 3.0 |]) in
  let q, _, _ = B.quantize b x in
  let s = Session.create ~optimize:false (B.graph b) in
  let codes = Tensor.to_int_array (List.hd (Session.run s [ q ])) in
  Array.iter
    (fun c -> if c < 0 || c > 255 then Alcotest.fail "code out of range")
    codes;
  (* min maps to 0 and max to 255 *)
  Alcotest.(check int) "min code" 0 codes.(0);
  Alcotest.(check int) "max code" 255 codes.(2)

let test_quantized_matmul_close () =
  let b = B.create () in
  let xa = B.placeholder b ~shape:[| 4; 6 |] Dtype.F32 in
  let xb = B.placeholder b ~shape:[| 6; 3 |] Dtype.F32 in
  let exact = B.matmul b xa xb in
  let approx = B.quantized_matmul b (B.quantize b xa) (B.quantize b xb) in
  let s = Session.create ~optimize:false (B.graph b) in
  let rng = Rng.create 31 in
  let a = Tensor.uniform rng [| 4; 6 |] ~lo:(-1.0) ~hi:1.0 in
  let c = Tensor.uniform rng [| 6; 3 |] ~lo:(-1.0) ~hi:1.0 in
  let feeds = [ (xa, a); (xb, c) ] in
  match Session.run ~feeds s [ exact; approx ] with
  | [ e; ap ] ->
      Alcotest.(check bool) "within 8-bit tolerance" true
        (Tensor.approx_equal ~tol:0.05 e ap)
  | _ -> Alcotest.fail "arity"

let test_quantize_constant_tensor () =
  (* A constant tensor still gets a non-degenerate range. *)
  let b = B.create () in
  let x = B.const b (Tensor.full Dtype.F32 [| 4 |] 2.0) in
  let q, lo, hi = B.quantize b x in
  let back = B.dequantize b q lo hi in
  let s = Session.create ~optimize:false (B.graph b) in
  let v = List.hd (Session.run s [ back ]) in
  Alcotest.(check bool) "close to 2" true
    (Float.abs (Tensor.flat_get_f v 0 -. 2.0) < 0.02)

let suite =
  [
    Alcotest.test_case "roundtrip error bound" `Quick test_roundtrip_error_bound;
    Alcotest.test_case "codes in range" `Quick test_codes_in_range;
    Alcotest.test_case "quantized matmul" `Quick test_quantized_matmul_close;
    Alcotest.test_case "constant tensor" `Quick test_quantize_constant_tensor;
  ]
