open Octf_tensor
open Octf

let test_variable_lifecycle () =
  let v = Resource.make_variable ~name:"w" ~dtype:Dtype.F32 ~shape:[| 2 |] in
  Alcotest.check_raises "read before init"
    (Failure "variable \"w\" read before initialization") (fun () ->
      ignore (Resource.variable_read v));
  Resource.variable_assign v (Tensor.of_float_array [| 2 |] [| 1.; 2. |]);
  Alcotest.(check (float 0.)) "read" 2.0
    (Tensor.flat_get_f (Resource.variable_read v) 1)

let test_variable_type_checks () =
  let v = Resource.make_variable ~name:"w" ~dtype:Dtype.F32 ~shape:[| 2 |] in
  Alcotest.check_raises "dtype"
    (Invalid_argument "variable \"w\": assigning int32 to float32") (fun () ->
      Resource.variable_assign v (Tensor.of_int_array [| 2 |] [| 1; 2 |]));
  Alcotest.check_raises "shape"
    (Invalid_argument "variable \"w\": assigning shape [3] to [2]") (fun () ->
      Resource.variable_assign v (Tensor.zeros Dtype.F32 [| 3 |]))

let test_update_snapshot_isolation () =
  (* Updates replace the buffer: a previously read tensor is a stable
     snapshot, the in-place-update-with-copy semantics kernels rely on. *)
  let v = Resource.make_variable ~name:"w" ~dtype:Dtype.F32 ~shape:[| 1 |] in
  Resource.variable_assign v (Tensor.of_float_array [| 1 |] [| 1.0 |]);
  let snapshot = Resource.variable_read v in
  ignore
    (Resource.variable_update v (fun old ->
         Tensor_ops.add old (Tensor.scalar_f 1.0)));
  Alcotest.(check (float 0.)) "snapshot stable" 1.0
    (Tensor.flat_get_f snapshot 0);
  Alcotest.(check (float 0.)) "updated" 2.0
    (Tensor.flat_get_f (Resource.variable_read v) 0)

let test_concurrent_updates_atomic () =
  (* The += combiner from many threads must lose no updates (the PS
     write-combiner guarantee, §2.2). *)
  let v = Resource.make_variable ~name:"c" ~dtype:Dtype.F32 ~shape:[||] in
  Resource.variable_assign v (Tensor.scalar_f 0.0);
  let threads =
    List.init 8 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to 500 do
              ignore
                (Resource.variable_update v (fun old ->
                     Tensor_ops.add old (Tensor.scalar_f 1.0)))
            done)
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check (float 0.)) "no lost updates" 4000.0
    (Tensor.flat_get_f (Resource.variable_read v) 0)

let test_manager_find_or_create () =
  let m = Resource_manager.create () in
  let mk () =
    Resource.Variable
      (Resource.make_variable ~name:"v" ~dtype:Dtype.F32 ~shape:[||])
  in
  let a = Resource_manager.find_or_create m "v" mk in
  let b = Resource_manager.find_or_create m "v" mk in
  Alcotest.(check bool) "same resource" true (a == b);
  Alcotest.(check bool) "find" true (Resource_manager.find m "v" <> None);
  Alcotest.(check bool) "missing" true (Resource_manager.find m "w" = None)

let test_manager_listing () =
  let m = Resource_manager.create () in
  let mkv name =
    ignore
      (Resource_manager.find_or_create m name (fun () ->
           Resource.Variable
             (Resource.make_variable ~name ~dtype:Dtype.F32 ~shape:[||])))
  in
  mkv "a";
  ignore
    (Resource_manager.find_or_create m "q" (fun () ->
         Resource.Queue
           (Queue_impl.create ~name:"q" ~capacity:1 ~num_components:1 ())));
  mkv "b";
  Alcotest.(check (list string)) "creation order" [ "a"; "q"; "b" ]
    (Resource_manager.names m);
  Alcotest.(check int) "variables only" 2
    (List.length (Resource_manager.variables m));
  Resource_manager.clear m;
  Alcotest.(check (list string)) "cleared" [] (Resource_manager.names m)

let suite =
  [
    Alcotest.test_case "variable lifecycle" `Quick test_variable_lifecycle;
    Alcotest.test_case "variable type checks" `Quick test_variable_type_checks;
    Alcotest.test_case "snapshot isolation" `Quick test_update_snapshot_isolation;
    Alcotest.test_case "concurrent updates" `Quick test_concurrent_updates_atomic;
    Alcotest.test_case "manager find_or_create" `Quick test_manager_find_or_create;
    Alcotest.test_case "manager listing" `Quick test_manager_listing;
  ]
