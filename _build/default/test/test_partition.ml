open Octf
module B = Builder

let two_devices =
  ( Device.make ~job:"a" ~task:0 Device.CPU,
    Device.make ~job:"b" ~task:0 Device.CPU )

let place_alternating () outputs =
  let da, db = two_devices in
  List.iteri
    (fun i (o : B.output) ->
      o.B.node.Node.assigned_device <- Some (if i mod 2 = 0 then da else db))
    outputs

let count_ops part op =
  let n = ref 0 in
  Graph.iter part.Partition.subgraph (fun node ->
      if node.Node.op_type = op then incr n);
  !n

let test_send_recv_insertion () =
  let b = B.create () in
  let x = B.const_f b 1.0 in
  let y = B.neg b x in
  place_alternating () [ x; y ];
  match Partition.partition (B.graph b) ~nodes:[ 0; 1 ] with
  | Error e -> Alcotest.fail e
  | Ok parts ->
      Alcotest.(check int) "two partitions" 2 (List.length parts);
      let sends = List.fold_left (fun acc p -> acc + count_ops p "Send") 0 parts in
      let recvs = List.fold_left (fun acc p -> acc + count_ops p "Recv") 0 parts in
      Alcotest.(check int) "one send" 1 sends;
      Alcotest.(check int) "one recv" 1 recvs

let test_send_deduplication () =
  (* Two consumers of one tensor on the same remote device share one
     Send/Recv pair. *)
  let b = B.create () in
  let x = B.const_f b 1.0 in
  let y1 = B.neg b x in
  let y2 = B.abs b x in
  let da, db = two_devices in
  x.B.node.Node.assigned_device <- Some da;
  y1.B.node.Node.assigned_device <- Some db;
  y2.B.node.Node.assigned_device <- Some db;
  match Partition.partition (B.graph b) ~nodes:[ 0; 1; 2 ] with
  | Error e -> Alcotest.fail e
  | Ok parts ->
      let sends = List.fold_left (fun acc p -> acc + count_ops p "Send") 0 parts in
      Alcotest.(check int) "deduped" 1 sends

let test_control_edge_cross_device () =
  let b = B.create () in
  let x = B.const_f b 1.0 in
  let gate = B.no_op b ~control_inputs:[ x ] () in
  let da, db = two_devices in
  x.B.node.Node.assigned_device <- Some da;
  gate.B.node.Node.assigned_device <- Some db;
  match Partition.partition (B.graph b) ~nodes:[ 0; 1 ] with
  | Error e -> Alcotest.fail e
  | Ok parts ->
      (* Control transfer = dummy const + send on src, recv on dst. *)
      let sends = List.fold_left (fun acc p -> acc + count_ops p "Send") 0 parts in
      let recvs = List.fold_left (fun acc p -> acc + count_ops p "Recv") 0 parts in
      Alcotest.(check int) "ctl send" 1 sends;
      Alcotest.(check int) "ctl recv" 1 recvs

let test_loop_cross_device_rejected () =
  let b = B.create () in
  let x = B.const_f b 0.0 in
  let results =
    B.while_loop b
      ~cond:(fun b vars -> B.less b (List.hd vars) (List.hd vars))
      ~body:(fun _ vars -> [ List.hd vars ])
      [ x ]
  in
  ignore results;
  let da, db = two_devices in
  Graph.iter (B.graph b) (fun n ->
      n.Node.assigned_device <-
        Some (if n.Node.op_type = "Merge" then db else da));
  let nodes = List.init (Graph.node_count (B.graph b)) (fun i -> i) in
  match Partition.partition (B.graph b) ~nodes with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected cross-device loop rejection"

let test_endpoint_map () =
  let b = B.create () in
  let x = B.const_f b 1.0 in
  let y = B.neg b x in
  place_alternating () [ x; y ];
  match Partition.partition (B.graph b) ~nodes:[ 0; 1 ] with
  | Error e -> Alcotest.fail e
  | Ok parts ->
      let found =
        List.filter_map
          (fun p ->
            Partition.find_endpoint p (B.endpoint_of_output y))
          parts
      in
      Alcotest.(check int) "y mapped exactly once" 1 (List.length found)

let test_matching_rendezvous_attrs () =
  let b = B.create () in
  let x = B.const_f b 1.0 in
  let y = B.neg b x in
  place_alternating () [ x; y ];
  match Partition.partition (B.graph b) ~nodes:[ 0; 1 ] with
  | Error e -> Alcotest.fail e
  | Ok parts ->
      let collect op =
        List.concat_map
          (fun p ->
            let acc = ref [] in
            Graph.iter p.Partition.subgraph (fun n ->
                if n.Node.op_type = op then
                  acc :=
                    ( Node.attr_string n "tensor_name",
                      Node.attr_string n "send_device",
                      Node.attr_string n "recv_device" )
                    :: !acc);
            !acc)
          parts
      in
      Alcotest.(check bool) "send and recv agree on the key" true
        (collect "Send" = collect "Recv")

let suite =
  [
    Alcotest.test_case "send/recv insertion" `Quick test_send_recv_insertion;
    Alcotest.test_case "send deduplication" `Quick test_send_deduplication;
    Alcotest.test_case "control edge" `Quick test_control_edge_cross_device;
    Alcotest.test_case "loop cross-device rejected" `Quick
      test_loop_cross_device_rejected;
    Alcotest.test_case "endpoint map" `Quick test_endpoint_map;
    Alcotest.test_case "rendezvous attrs match" `Quick
      test_matching_rendezvous_attrs;
  ]
