open Octf_tensor
open Octf
module B = Builder
module Vs = Octf_nn.Var_store
module Sch = Octf_train.Schedule
module Opt = Octf_train.Optimizer

let scalar t = Tensor.flat_get_f t 0

let with_schedule f =
  let b = B.create () in
  let store = Vs.create b in
  let rate = f store in
  let bump = Sch.increment store in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ Vs.init_op store ];
  let rate_at step =
    let current =
      int_of_float
        (scalar (List.hd (Session.run s [ (Sch.global_step store).Vs.read ])))
    in
    for _ = current + 1 to step do
      Session.run_unit s [ bump ]
    done;
    scalar (List.hd (Session.run s [ rate ]))
  in
  rate_at

let test_exponential_decay () =
  let rate_at =
    with_schedule (fun store ->
        Sch.exponential_decay store ~base:0.1 ~decay:0.5 ~decay_steps:10)
  in
  Alcotest.(check (float 1e-9)) "step 0" 0.1 (rate_at 0);
  Alcotest.(check (float 1e-9)) "step 10" 0.05 (rate_at 10);
  Alcotest.(check (float 1e-9)) "step 20" 0.025 (rate_at 20)

let test_inverse_time_decay () =
  let rate_at =
    with_schedule (fun store ->
        Sch.inverse_time_decay store ~base:1.0 ~decay:1.0 ~decay_steps:1)
  in
  Alcotest.(check (float 1e-9)) "step 0" 1.0 (rate_at 0);
  Alcotest.(check (float 1e-9)) "step 1" 0.5 (rate_at 1);
  Alcotest.(check (float 1e-9)) "step 3" 0.25 (rate_at 3)

let test_piecewise () =
  let rate_at =
    with_schedule (fun store ->
        Sch.piecewise store ~boundaries:[ (5, 0.01); (10, 0.001) ] ~default:0.1)
  in
  Alcotest.(check (float 1e-9)) "before first" 0.1 (rate_at 0);
  Alcotest.(check (float 1e-9)) "after first" 0.01 (rate_at 5);
  Alcotest.(check (float 1e-9)) "after second" 0.001 (rate_at 12)

let test_scheduled_minimize () =
  (* Training with a decayed rate: early steps move w more than late
     steps. *)
  let b = B.create () in
  let store = Vs.create b in
  let w = Vs.get store ~init:Octf_nn.Init.zeros ~name:"w" [||] in
  let loss = B.square b (B.sub b w.Vs.read (B.const_f b 100.0)) in
  let rate =
    Sch.exponential_decay store ~base:0.1 ~decay:0.1 ~decay_steps:1
  in
  let train = Opt.minimize_with_rate store ~lr_t:rate ~loss () in
  let step_ops = B.group b [ train; Sch.increment store ] in
  let s = Session.create (B.graph b) in
  Session.run_unit s [ Vs.init_op store ];
  let w_at () = scalar (List.hd (Session.run s [ w.Vs.read ])) in
  Session.run_unit s [ step_ops ];
  let move1 = w_at () in
  Session.run_unit s [ step_ops ];
  let move2 = w_at () -. move1 in
  Alcotest.(check bool) "later step smaller" true (move2 < 0.2 *. move1)

let test_clip_by_global_norm () =
  let b = B.create () in
  let g1 = B.const b (Tensor.of_float_array [| 2 |] [| 3.0; 0.0 |]) in
  let g2 = B.const b (Tensor.of_float_array [| 1 |] [| 4.0 |]) in
  (* Joint norm 5; clip to 1 scales both by 1/5. *)
  let clipped = Opt.clip_by_global_norm b ~clip_norm:1.0 [ g1; g2 ] in
  let s = Session.create ~optimize:false (B.graph b) in
  (match Session.run s clipped with
  | [ c1; c2 ] ->
      Alcotest.(check (float 1e-6)) "g1 scaled" 0.6 (Tensor.flat_get_f c1 0);
      Alcotest.(check (float 1e-6)) "g2 scaled" 0.8 (Tensor.flat_get_f c2 0)
  | _ -> Alcotest.fail "arity");
  (* Under the bound: untouched. *)
  let untouched = Opt.clip_by_global_norm b ~clip_norm:100.0 [ g1 ] in
  match Session.run s untouched with
  | [ c ] -> Alcotest.(check (float 1e-6)) "unclipped" 3.0 (Tensor.flat_get_f c 0)
  | _ -> Alcotest.fail "arity"

let suite =
  [
    Alcotest.test_case "exponential decay" `Quick test_exponential_decay;
    Alcotest.test_case "inverse time decay" `Quick test_inverse_time_decay;
    Alcotest.test_case "piecewise" `Quick test_piecewise;
    Alcotest.test_case "scheduled minimize" `Quick test_scheduled_minimize;
    Alcotest.test_case "clip by global norm" `Quick test_clip_by_global_norm;
  ]
