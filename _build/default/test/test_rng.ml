open Octf_tensor

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 0 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_split_independent () =
  let a = Rng.create 42 in
  let c = Rng.split a in
  Alcotest.(check bool) "diverges" true
    (List.init 20 (fun _ -> Rng.int a 1_000_000)
    <> List.init 20 (fun _ -> Rng.int c 1_000_000))

let test_int_range () =
  let rng = Rng.create 7 in
  for _ = 0 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of range"
  done

let test_int_invalid () =
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int (Rng.create 1) 0))

let test_float_range () =
  let rng = Rng.create 9 in
  for _ = 0 to 1000 do
    let v = Rng.uniform rng ~lo:2.0 ~hi:3.0 in
    if v < 2.0 || v >= 3.0 then Alcotest.fail "uniform out of range"
  done

let test_normal_moments () =
  let rng = Rng.create 11 in
  let n = 20_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.normal rng ~mean:1.0 ~stddev:2.0 in
    sum := !sum +. v;
    sq := !sq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check (float 0.1)) "mean" 1.0 mean;
  Alcotest.(check (float 0.2)) "variance" 4.0 var

let test_zipf_skew () =
  let rng = Rng.create 13 in
  let n = 1000 in
  let counts = Array.make n 0 in
  for _ = 1 to 20_000 do
    let v = Rng.zipf rng ~n ~s:1.2 in
    if v < 0 || v >= n then Alcotest.fail "zipf out of range";
    counts.(v) <- counts.(v) + 1
  done;
  (* Rank 0 must dominate the mid ranks heavily. *)
  Alcotest.(check bool) "skewed" true (counts.(0) > 10 * max 1 counts.(100))

let test_exponential_positive () =
  let rng = Rng.create 15 in
  for _ = 1 to 1000 do
    if Rng.exponential rng ~rate:2.0 < 0.0 then Alcotest.fail "negative"
  done

let test_choose_distinct () =
  let rng = Rng.create 17 in
  for _ = 1 to 100 do
    let picks = Rng.choose rng ~k:10 ~n:20 in
    let sorted = Array.copy picks in
    Array.sort compare sorted;
    for i = 1 to 9 do
      if sorted.(i) = sorted.(i - 1) then Alcotest.fail "duplicate pick"
    done;
    Array.iter (fun v -> if v < 0 || v >= 20 then Alcotest.fail "oob") picks
  done

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:100
    QCheck.(pair small_int (small_list int))
    (fun (seed, l) ->
      let arr = Array.of_list l in
      let rng = Rng.create seed in
      let shuffled = Array.copy arr in
      Rng.shuffle rng shuffled;
      List.sort compare (Array.to_list shuffled)
      = List.sort compare (Array.to_list arr))

let prop_lognormal_positive =
  QCheck.Test.make ~name:"lognormal positive" ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      Rng.lognormal rng ~mu:0.0 ~sigma:1.0 > 0.0)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
    Alcotest.test_case "uniform range" `Quick test_float_range;
    Alcotest.test_case "normal moments" `Quick test_normal_moments;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
    Alcotest.test_case "choose distinct" `Quick test_choose_distinct;
    QCheck_alcotest.to_alcotest prop_shuffle_permutation;
    QCheck_alcotest.to_alcotest prop_lognormal_positive;
  ]
