(* The per-process network runtime: peers, heartbeats, reconnect
   backoff, RPC dispatch, and the serve loop.

   One [t] lives in each worker process. It owns

   - a listener accepting connections from peers (every task listens on
     its cluster address);
   - a peers table mapping (job, task) to at most one live connection,
     dialed on demand with jittered exponential backoff between
     attempts — while a peer is down, sends fail {e fast} with a
     structured [Network_error] rather than blocking on connect;
   - a heartbeat thread pinging dialed connections; after
     [heartbeat_misses] unanswered pings the connection is declared
     dead and closed, which fails every RPC and rendezvous route
     through it;
   - the process-global routed rendezvous: [Rendezvous.send] on it
     forwards a tensor to the task owning the key's recv device;
   - the Run_step serve path: incoming steps execute against the
     session registered with {!serve} on their own threads, under a
     cancel token honouring the chief's deadline and Cancel_step
     frames.

   Locking: [t.mutex] guards the tables; it is a leaf with respect to
   network I/O (never held across connect/read/write) and
   [Cancel.cancel] is only ever called after releasing it (cancel
   wakers may re-lock it). *)

module Backoff = Octf.Backoff
module Cancel = Octf.Cancel
module Device = Octf.Device
module Metrics = Octf.Metrics
module Rendezvous = Octf.Rendezvous
module Step_failure = Octf.Step_failure

let m_connections =
  Metrics.Gauge.v ~help:"Live peer connections" "octf_net_connections"

let m_reconnects =
  Metrics.Counter.v ~help:"Successful re-dials after a connection loss"
    "octf_net_reconnects_total"

let m_dial_failures =
  Metrics.Counter.v ~help:"Failed dial attempts" "octf_net_dial_failures_total"

let m_heartbeat_misses =
  Metrics.Counter.v ~help:"Heartbeat intervals with no pong"
    "octf_net_heartbeat_misses_total"

let m_peer_deaths =
  Metrics.Counter.v ~help:"Peers declared dead by heartbeat miss threshold"
    "octf_net_peer_deaths_total"

let m_rpcs =
  Metrics.Counter.v ~help:"Run_step RPCs issued" "octf_net_rpcs_total"

let m_rpc_failures =
  Metrics.Counter.v ~help:"Run_step RPCs failed (transport or remote)"
    "octf_net_rpc_failures_total"

let m_steps_served =
  Metrics.Counter.v ~help:"Run_step RPCs served for remote chiefs"
    "octf_net_steps_served_total"

let m_late_tensors =
  Metrics.Counter.v ~help:"Tensor frames dropped for retired steps"
    "octf_net_late_tensors_total"

(* OCTF_NET_TRACE=1 prints per-frame runtime decisions to stderr —
   the first thing to reach for when a distributed run misbehaves. *)
let trace_enabled =
  match Sys.getenv_opt "OCTF_NET_TRACE" with
  | Some ("1" | "true" | "on") -> true
  | _ -> false

let tracef fmt =
  Printf.ksprintf
    (fun s ->
      if trace_enabled then
        Printf.eprintf "octf-net[%d]: %s\n%!" (Unix.getpid ()) s)
    fmt

type addr = { host : string; port : int }

type config = {
  job : string;
  task : int;
  cluster : ((string * int) * addr) list;
  heartbeat_interval : float;
  heartbeat_misses : int;
  connect_timeout : float;
  rpc_timeout : float;
  backoff : Backoff.policy;
}

let env_ms name default =
  match Option.bind (Sys.getenv_opt name) float_of_string_opt with
  | Some ms when ms > 0.0 -> ms /. 1000.0
  | _ -> default

let config ?heartbeat_interval ?heartbeat_misses ?connect_timeout ?rpc_timeout
    ?backoff ~job ~task ~cluster () =
  {
    job;
    task;
    cluster;
    heartbeat_interval =
      (match heartbeat_interval with
      | Some s -> s
      | None -> env_ms "OCTF_NET_HEARTBEAT_MS" 0.2);
    heartbeat_misses =
      (match heartbeat_misses with
      | Some n -> n
      | None -> (
          match
            Option.bind
              (Sys.getenv_opt "OCTF_NET_HEARTBEAT_MISSES")
              int_of_string_opt
          with
          | Some n when n > 0 -> n
          | _ -> 3));
    connect_timeout =
      (match connect_timeout with
      | Some s -> s
      | None -> env_ms "OCTF_NET_CONNECT_TIMEOUT_MS" 0.5);
    rpc_timeout =
      (match rpc_timeout with
      | Some s -> s
      | None -> env_ms "OCTF_NET_RPC_TIMEOUT_MS" 30.0);
    backoff =
      (match backoff with
      | Some p -> p
      | None ->
          Backoff.policy ~base:0.05 ~multiplier:2.0 ~cap:2.0 ~jitter:0.25 ());
  }

(* "job[:task]=host:port,..." — task defaults to 0, so the common
   two-process case reads "--cluster ps=127.0.0.1:7000,worker=..." *)
let parse_cluster s =
  let parse_entry e =
    match String.index_opt e '=' with
    | None -> Error (Printf.sprintf "bad cluster entry %S (want job=host:port)" e)
    | Some i -> (
        let name = String.sub e 0 i in
        let hp = String.sub e (i + 1) (String.length e - i - 1) in
        let job, task =
          match String.index_opt name ':' with
          | None -> (name, Some 0)
          | Some j ->
              ( String.sub name 0 j,
                int_of_string_opt
                  (String.sub name (j + 1) (String.length name - j - 1)) )
        in
        match (task, String.rindex_opt hp ':') with
        | Some task, Some j when job <> "" -> (
            let host = String.sub hp 0 j in
            match
              int_of_string_opt
                (String.sub hp (j + 1) (String.length hp - j - 1))
            with
            | Some port when host <> "" -> Ok ((job, task), { host; port })
            | _ -> Error (Printf.sprintf "bad cluster entry %S" e))
        | _ -> Error (Printf.sprintf "bad cluster entry %S" e))
  in
  let parts =
    List.filter (fun p -> p <> "") (String.split_on_char ',' (String.trim s))
  in
  if parts = [] then Error "empty cluster spec"
  else
    List.fold_left
      (fun acc p ->
        match (acc, parse_entry (String.trim p)) with
        | Error _, _ -> acc
        | Ok es, Ok e -> Ok (es @ [ e ])
        | Ok _, Error m -> Error m)
      (Ok []) parts

type rpc_key = string * int * int (* peer job, peer task, step id *)

type rpc_slot = {
  rconn : Transport.conn;  (* the connection the RPC was issued on *)
  mutable reply :
    ((Octf.Node.endpoint * Octf.Value.t) list, Step_failure.t) result option;
}

type peer = {
  pkey : string * int;
  mutable conn : Transport.conn option;
  mutable dialing : bool;
  backoff : Backoff.t;
  mutable next_dial : float;  (* fail dials fast before this instant *)
  mutable ever_connected : bool;
  mutable outstanding_pings : int;
}

type t = {
  cfg : config;
  mutex : Mutex.t;
  cond : Condition.t;  (* broadcast on RPC replies and conn events *)
  peers : (string * int, peer) Hashtbl.t;
  rpcs : (rpc_key, rpc_slot) Hashtbl.t;
  serving : (rpc_key, Cancel.t * Transport.conn) Hashtbl.t;
      (* steps in flight, keyed by the dispatching chief's identity so
         two chiefs (or a restarted one) never collide on bare step ids *)
  retired : (int, string * int) Hashtbl.t;
      (* step id → identity of the chief whose step it was; a new
         connection from that chief purges its entries, so a restarted
         chief's session counter can reuse low step ids *)
  retired_order : int Queue.t;
  rendezvous : Rendezvous.t;
  mutable session : Octf.Session.t option;
  mutable listen_fd : Unix.file_descr option;
  mutable running : bool;
  mutable ping_seq : int;
}

let retired_cap = 512

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let net_error fmt =
  Printf.ksprintf
    (fun s -> Step_failure.error (Step_failure.Network_error s))
    fmt

let peer_of t key =
  match Hashtbl.find_opt t.peers key with
  | Some p -> p
  | None ->
      let p =
        {
          pkey = key;
          conn = None;
          dialing = false;
          backoff = Backoff.create t.cfg.backoff;
          next_dial = 0.0;
          ever_connected = false;
          outstanding_pings = 0;
        }
      in
      Hashtbl.replace t.peers key p;
      p

(* Parse the recv-device job/task out of a rendezvous key
   "step:<id>;<send_device>;<recv_device>;<name>". *)
let key_route key =
  match String.split_on_char ';' key with
  | _step :: _send :: recv :: _ :: _ -> (
      match Device.of_string recv with
      | d -> Some (d.Device.job, d.Device.task)
      | exception Invalid_argument _ -> None)
  | _ -> None

let key_step_id key =
  match String.index_opt key ':' with
  | None -> None
  | Some i -> (
      let rest = String.sub key (i + 1) (String.length key - i - 1) in
      match String.index_opt rest ';' with
      | None -> None
      | Some j -> int_of_string_opt (String.sub rest 0 j))

(* Connection management ---------------------------------------------- *)

(* A new connection incarnation to/from [key] invalidates the step ids
   we retired on that peer's behalf: a restarted chief's session
   counter starts over, and a chief re-dispatching a step whose reply
   it never saw must not find its tensors dropped as late. Called with
   [t.mutex] held. *)
let purge_retired_for t key =
  let stale =
    Hashtbl.fold
      (fun id owner acc -> if owner = key then id :: acc else acc)
      t.retired []
  in
  if stale <> [] then begin
    List.iter (Hashtbl.remove t.retired) stale;
    let keep = Queue.create () in
    Queue.iter
      (fun id -> if Hashtbl.mem t.retired id then Queue.push id keep)
      t.retired_order;
    Queue.clear t.retired_order;
    Queue.transfer keep t.retired_order
  end

let register_conn t key conn ~count_reconnect =
  with_lock t (fun () ->
      let p = peer_of t key in
      let old = p.conn in
      purge_retired_for t key;
      p.conn <- Some conn;
      p.next_dial <- 0.0;
      p.outstanding_pings <- 0;
      Backoff.reset p.backoff;
      if count_reconnect && p.ever_connected then
        Metrics.Counter.incr m_reconnects;
      p.ever_connected <- true;
      Condition.broadcast t.cond;
      old)

(* A connection died: detach it from its peer, fail every RPC pending
   on that peer, and collect the cancel tokens of steps it asked us to
   serve. Tokens are fired only after the mutex is released — their
   wakers re-enter this mutex. *)
let on_close t conn reason =
  let detail = Transport.close_reason_to_string reason in
  let to_cancel =
    with_lock t (fun () ->
        (match
           Hashtbl.find_opt t.peers
             (conn.Transport.peer_job, conn.Transport.peer_task)
         with
        | Some p -> (
            match p.conn with
            | Some c when c == conn -> p.conn <- None
            | Some _ | None -> ())
        | None -> ());
        let pj = conn.Transport.peer_job and pt = conn.Transport.peer_task in
        (* fail only RPCs issued on this physical connection: a stale
           conn being replaced must not kill RPCs already riding the
           healthy replacement to the same peer *)
        Hashtbl.iter
          (fun _ slot ->
            if slot.rconn == conn && slot.reply = None then
              slot.reply <-
                Some
                  (Error
                     (Step_failure.v
                        (Step_failure.Network_error
                           (Printf.sprintf "connection to %s/%d lost: %s" pj
                              pt detail)))))
          t.rpcs;
        let cancels =
          Hashtbl.fold
            (fun _ (c, sconn) acc -> if sconn == conn then c :: acc else acc)
            t.serving []
        in
        Condition.broadcast t.cond;
        cancels)
  in
  Metrics.Gauge.decr m_connections;
  List.iter
    (fun c ->
      Cancel.cancel c
        ~reason:(Printf.sprintf "chief connection lost: %s" detail))
    to_cancel

let connect_with_timeout fd sa timeout =
  Unix.set_nonblock fd;
  (try Unix.connect fd sa with
  | Unix.Unix_error (Unix.EINPROGRESS, _, _)
  | Unix.Unix_error (Unix.EWOULDBLOCK, _, _)
  ->
    let _, w, _ = Unix.select [] [ fd ] [] timeout in
    if w = [] then raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""));
    match Unix.getsockopt_error fd with
    | None -> ()
    | Some e -> raise (Unix.Unix_error (e, "connect", "")));
  Unix.clear_nonblock fd

let rec on_message t conn msg =
  tracef "recv %s from %s (stream %d)" (Message.kind msg)
    (Transport.peer_name conn) (Message.stream_id msg);
  (* any frame is proof of life, not just Pong: a peer busy writing a
     large tensor frame cannot interleave pongs (its write mutex is
     held), yet is plainly alive *)
  with_lock t (fun () ->
      match
        Hashtbl.find_opt t.peers
          (conn.Transport.peer_job, conn.Transport.peer_task)
      with
      | Some p -> p.outstanding_pings <- 0
      | None -> ());
  match msg with
  | Message.Ping { seq } ->
      Transport.send_best_effort conn (Message.Pong { seq })
  | Message.Pong _ -> ()
  | Message.Tensor { key; value } -> (
      let retired =
        match key_step_id key with
        | None -> false
        | Some id -> with_lock t (fun () -> Hashtbl.mem t.retired id)
      in
      if retired then Metrics.Counter.incr m_late_tensors
      else
        try Rendezvous.send t.rendezvous ~key value
        with Step_failure.Error _ ->
          (* duplicate send of a retried key: drop, the step owning the
             first copy is the live one *)
          Metrics.Counter.incr m_late_tensors)
  | Message.Run_step { step_id; timeout; feeds; fetches; targets } ->
      ignore
        (Thread.create
           (fun () -> serve_step t conn ~step_id ~timeout ~feeds ~fetches ~targets)
           ())
  | Message.Cancel_step { step_id; reason } -> (
      let slot =
        with_lock t (fun () ->
            Hashtbl.find_opt t.serving
              (conn.Transport.peer_job, conn.Transport.peer_task, step_id))
      in
      match slot with
      | Some (cancel, _) -> Cancel.cancel cancel ~reason
      | None -> ())
  | Message.Step_done { step_id; result } ->
      with_lock t (fun () ->
          match
            Hashtbl.find_opt t.rpcs
              (conn.Transport.peer_job, conn.Transport.peer_task, step_id)
          with
          | Some slot when slot.reply = None ->
              slot.reply <-
                Some
                  (match result with
                  | Message.Fetched pairs -> Ok pairs
                  | Message.Failed e ->
                      Error
                        {
                          Step_failure.node = e.Message.node;
                          device = e.Message.device;
                          cause =
                            Step_failure.cause_of_wire ~kind:e.Message.kind
                              ~message:e.Message.message;
                        });
              Condition.broadcast t.cond
          | Some _ | None -> ())
  | Message.Error_msg { kind; detail } ->
      Printf.eprintf "octf-net: peer %s reported %s: %s\n%!"
        (Transport.peer_name conn) kind detail
  | Message.Hello _ | Message.Goodbye -> ()

and retire_step t ~owner ~step_id =
  with_lock t (fun () ->
      if not (Hashtbl.mem t.retired step_id) then begin
        Queue.push step_id t.retired_order;
        while Queue.length t.retired_order > retired_cap do
          Hashtbl.remove t.retired (Queue.pop t.retired_order)
        done
      end;
      Hashtbl.replace t.retired step_id owner);
  ignore (Rendezvous.drop_step t.rendezvous ~step_id)

(* Serve one Run_step from a remote chief: execute our partitions of
   the step and answer Step_done — with fetched values, or with the
   structured failure, never silence. *)
and serve_step t conn ~step_id ~timeout ~feeds ~fetches ~targets =
  Metrics.Counter.incr m_steps_served;
  tracef "serve_step %d: %d feeds, %d fetches, %d targets" step_id
    (List.length feeds) (List.length fetches) (List.length targets);
  let reply result =
    Transport.send_best_effort conn (Message.Step_done { step_id; result })
  in
  match t.session with
  | None ->
      reply
        (Message.Failed
           {
             Message.node = None;
             device = None;
             kind = "network_error";
             message = "task is not serving a session";
           })
  | Some session ->
      let chief = (conn.Transport.peer_job, conn.Transport.peer_task) in
      let skey = (fst chief, snd chief, step_id) in
      let cancel = Cancel.create ?deadline:timeout () in
      let fresh =
        with_lock t (fun () ->
            if Hashtbl.mem t.serving skey then false
            else begin
              Hashtbl.replace t.serving skey (cancel, conn);
              true
            end)
      in
      if not fresh then
        reply
          (Message.Failed
             {
               Message.node = None;
               device = None;
               kind = "network_error";
               message = Printf.sprintf "step %d already running" step_id;
             })
      else begin
        let result =
          match
            Octf.Session.run_serve session ~step_id ~feeds ~fetches ~targets
              ~cancel ()
          with
          | Ok pairs -> Message.Fetched pairs
          | Error (f : Step_failure.t) ->
              Message.Failed
                {
                  Message.node = f.Step_failure.node;
                  device = f.Step_failure.device;
                  kind = Step_failure.cause_kind f.Step_failure.cause;
                  message = Step_failure.cause_message f.Step_failure.cause;
                }
          | exception e ->
              Message.Failed
                {
                  Message.node = None;
                  device = None;
                  kind = "kernel_failed";
                  message = Printexc.to_string e;
                }
        in
        Cancel.complete cancel;
        with_lock t (fun () -> Hashtbl.remove t.serving skey);
        retire_step t ~owner:chief ~step_id;
        tracef "serve_step %d done: %s" step_id
          (match result with
          | Message.Fetched l -> Printf.sprintf "%d fetches" (List.length l)
          | Message.Failed e -> e.Message.kind);
        reply result
      end

(* Dial (job, task): resolve its cluster address, connect with a
   timeout, handshake, start the reader. Called without [t.mutex]
   held. *)
and dial t key =
  let job, task = key in
  match List.assoc_opt key t.cfg.cluster with
  | None -> raise (net_error "no cluster address for /job:%s/task:%d" job task)
  | Some { host; port } -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.setsockopt fd Unix.TCP_NODELAY true;
        let ip =
          try Unix.inet_addr_of_string host
          with Failure _ ->
            (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        connect_with_timeout fd (Unix.ADDR_INET (ip, port)) t.cfg.connect_timeout;
        (* bound the handshake read so a wedged peer cannot hang us *)
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.connect_timeout;
        let conn = Transport.create fd ~peer_job:job ~peer_task:task in
        let pj, pt = Transport.handshake conn ~job:t.cfg.job ~task:t.cfg.task in
        if (pj, pt) <> key then
          raise
            (Frame.Frame_error
               (Frame.Protocol_error
                  (Printf.sprintf "dialed /job:%s/task:%d but peer is %s/%d"
                     job task pj pt)));
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.0;
        Metrics.Gauge.incr m_connections;
        ignore
          (Transport.spawn_reader conn ~on_message:(on_message t)
             ~on_close:(on_close t));
        conn
      with e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        let detail =
          match e with
          | Unix.Unix_error (ue, _, _) -> Unix.error_message ue
          | Frame.Frame_error fe -> Frame.error_to_string fe
          | Frame.Closed -> "peer closed during handshake"
          | e -> Printexc.to_string e
        in
        Metrics.Counter.incr m_dial_failures;
        raise (net_error "dial /job:%s/task:%d (%s:%d): %s" job task host port
                 detail))

(* The single entry point for "a live connection to this peer, or a
   fast structured failure". Reconnect pacing lives here: after a
   failed dial the peer's next_dial moves into the future along the
   backoff schedule, and callers before that instant fail without
   touching the network. *)
and get_conn t key =
  Mutex.lock t.mutex;
  let rec loop () =
    let p = peer_of t key in
    match p.conn with
    | Some c when c.Transport.alive ->
        Mutex.unlock t.mutex;
        c
    | _ ->
        if p.dialing then begin
          Condition.wait t.cond t.mutex;
          loop ()
        end
        else begin
          let now = Unix.gettimeofday () in
          if now < p.next_dial then begin
            let wait = p.next_dial -. now in
            Mutex.unlock t.mutex;
            raise
              (net_error
                 "/job:%s/task:%d unreachable (next dial in %.0f ms)"
                 (fst key) (snd key) (1000.0 *. wait))
          end;
          p.dialing <- true;
          Mutex.unlock t.mutex;
          let outcome = try Ok (dial t key) with e -> Error e in
          match outcome with
          | Ok conn ->
              ignore (register_conn t key conn ~count_reconnect:true);
              with_lock t (fun () ->
                  p.dialing <- false;
                  Condition.broadcast t.cond);
              conn
          | Error e ->
              with_lock t (fun () ->
                  p.dialing <- false;
                  (match Backoff.next p.backoff with
                  | Some d -> p.next_dial <- Unix.gettimeofday () +. d
                  | None -> p.next_dial <- Unix.gettimeofday () +. t.cfg.backoff.Backoff.cap);
                  Condition.broadcast t.cond);
              raise e
        end
  in
  loop ()

(* Rendezvous route hook: true = the key's receiver is another
   process and the value went (or structurally failed to go) over the
   wire. *)
let route t ~key value =
  match key_route key with
  | None ->
      tracef "route %s: unparsable recv device, keeping local" key;
      false
  | Some (job, task) ->
      if job = t.cfg.job && task = t.cfg.task then false
      else begin
        tracef "route %s -> %s/%d" key job task;
        let conn = get_conn t (job, task) in
        Transport.send conn (Message.Tensor { key; value });
        true
      end

(* Heartbeats: one thread pings every live connection each interval;
   [heartbeat_misses] intervals without a pong close the connection,
   which fails pending RPCs and routes through the normal close path.
   Both dialed and accepted connections are monitored — either end of
   a wedged link should notice. *)
let heartbeat_loop t =
  while t.running do
    Thread.delay t.cfg.heartbeat_interval;
    if t.running then begin
      let now = Unix.gettimeofday () in
      let rx_budget =
        t.cfg.heartbeat_interval *. float_of_int t.cfg.heartbeat_misses
      in
      let to_ping, to_kill =
        with_lock t (fun () ->
            Hashtbl.fold
              (fun _ p (ping, kill) ->
                match p.conn with
                | Some c when c.Transport.alive ->
                    (* missed pongs alone do not condemn a peer: bytes
                       still arriving (a large frame mid-transfer) are
                       liveness even though no complete message lands *)
                    if
                      p.outstanding_pings >= t.cfg.heartbeat_misses
                      && now -. c.Transport.last_rx >= rx_budget
                    then (ping, c :: kill)
                    else begin
                      p.outstanding_pings <- p.outstanding_pings + 1;
                      if p.outstanding_pings > 1 then
                        Metrics.Counter.incr m_heartbeat_misses;
                      (c :: ping, kill)
                    end
                | _ -> (ping, kill))
              t.peers ([], []))
      in
      List.iter
        (fun c ->
          Metrics.Counter.incr m_peer_deaths;
          Printf.eprintf
            "octf-net: peer %s missed %d heartbeats, closing connection\n%!"
            (Transport.peer_name c) t.cfg.heartbeat_misses;
          (* close triggers the reader's EOF path, which runs on_close *)
          Transport.close c)
        to_kill;
      let seq = with_lock t (fun () -> t.ping_seq <- t.ping_seq + 1; t.ping_seq) in
      List.iter
        (fun c -> Transport.send_best_effort c (Message.Ping { seq }))
        to_ping
    end
  done

(* Accept loop: handshake synchronously (bounded by SO_RCVTIMEO), then
   register the connection under the identity the peer declared so
   reverse traffic — tensors flowing back to a chief that dialed us —
   reuses this socket instead of dialing one of its own. *)
let accept_loop t fd =
  while t.running do
    match Unix.accept fd with
    | exception Unix.Unix_error _ -> if t.running then Thread.delay 0.01
    | client, _ -> (
        try
          Unix.setsockopt client Unix.TCP_NODELAY true;
          Unix.setsockopt_float client Unix.SO_RCVTIMEO t.cfg.connect_timeout;
          let conn = Transport.create client ~peer_job:"?" ~peer_task:(-1) in
          let pj, pt = Transport.handshake conn ~job:t.cfg.job ~task:t.cfg.task in
          Unix.setsockopt_float client Unix.SO_RCVTIMEO 0.0;
          Metrics.Gauge.incr m_connections;
          let old = register_conn t (pj, pt) conn ~count_reconnect:false in
          (* a stale previous connection to the same peer is dead to us:
             drop it so its reader thread cleans up *)
          (match old with
          | Some o when o != conn && o.Transport.alive -> Transport.close o
          | _ -> ());
          ignore
            (Transport.spawn_reader conn ~on_message:(on_message t)
               ~on_close:(on_close t))
        with e ->
          Printf.eprintf "octf-net: rejected connection: %s\n%!"
            (Printexc.to_string e);
          (try Unix.close client with Unix.Unix_error _ -> ()))
  done

(* Writes racing a peer's death deliver SIGPIPE, whose default
   disposition kills the whole process; with it ignored they raise
   [Unix_error EPIPE] and flow through the structured write-failure
   path instead. Installed once, by the first runtime in the process. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

let create cfg =
  Lazy.force ignore_sigpipe;
  (* the route hook needs [t], which holds the rendezvous the hook is
     installed on; tie the knot through a cell *)
  let cell = ref None in
  let rendezvous =
    Rendezvous.create
      ~route:(fun ~key v ->
        match !cell with None -> false | Some t -> route t ~key v)
      ()
  in
  let t =
    {
      cfg;
      mutex = Mutex.create ();
      cond = Condition.create ();
      peers = Hashtbl.create 8;
      rpcs = Hashtbl.create 16;
      serving = Hashtbl.create 16;
      retired = Hashtbl.create 64;
      retired_order = Queue.create ();
      rendezvous;
      session = None;
      listen_fd = None;
      running = true;
      ping_seq = 0;
    }
  in
  cell := Some t;
  (match List.assoc_opt (cfg.job, cfg.task) cfg.cluster with
  | None -> ()
  | Some { port; _ } ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_any, port));
      Unix.listen fd 16;
      t.listen_fd <- Some fd;
      ignore (Thread.create (fun () -> accept_loop t fd) ()));
  ignore (Thread.create (fun () -> heartbeat_loop t) ());
  t

let rendezvous t = t.rendezvous

let serve t ~session = t.session <- Some session

(* Run one step's partitions on a remote task and wait for Step_done.
   An RPC-local cancel token parented under the step's token gives the
   wait a hard bound ([rpc_timeout]) even when the step has no
   deadline; the parent link propagates step-level cancellation. *)
let run_partitions t ~job ~task ~step_id ~feeds ~fetches ~targets ~deadline
    ~cancel =
  Metrics.Counter.incr m_rpcs;
  let fail f =
    Metrics.Counter.incr m_rpc_failures;
    Error f
  in
  match get_conn t (job, task) with
  | exception Step_failure.Error f -> fail f
  | conn -> (
      let key = (job, task, step_id) in
      let slot = { rconn = conn; reply = None } in
      with_lock t (fun () -> Hashtbl.replace t.rpcs key slot);
      let finish r =
        with_lock t (fun () -> Hashtbl.remove t.rpcs key);
        match r with Ok v -> Ok v | Error f -> fail f
      in
      let timeout =
        match deadline with
        | Some d -> Some (min d t.cfg.rpc_timeout)
        | None -> Some t.cfg.rpc_timeout
      in
      match
        Transport.send conn
          (Message.Run_step { step_id; timeout; feeds; fetches; targets })
      with
      | exception Step_failure.Error f -> finish (Error f)
      | () ->
          let rpc_cancel =
            Cancel.create ?parent:cancel ~deadline:t.cfg.rpc_timeout ()
          in
          let wake () =
            Mutex.lock t.mutex;
            Condition.broadcast t.cond;
            Mutex.unlock t.mutex
          in
          let result =
            Cancel.with_waker (Some rpc_cancel) wake (fun () ->
                with_lock t (fun () ->
                    let rec wait () =
                      match slot.reply with
                      | Some r -> r
                      | None -> (
                          match Cancel.cancelled rpc_cancel with
                          | Some cause ->
                              Error
                                (Step_failure.v
                                   (match (cancel, cause) with
                                   | Some c, _
                                     when Cancel.cancelled c <> None ->
                                       (* the step itself was cancelled
                                          or timed out *)
                                       Option.get (Cancel.cancelled c)
                                   | _, Step_failure.Deadline_exceeded _ ->
                                       Step_failure.Network_error
                                         (Printf.sprintf
                                            "run_step rpc to %s/%d timed \
                                             out after %g s"
                                            job task t.cfg.rpc_timeout)
                                   | _, cause -> cause))
                          | None ->
                              Condition.wait t.cond t.mutex;
                              wait ())
                    in
                    wait ()))
          in
          Cancel.complete rpc_cancel;
          (match result with
          | Error _ ->
              (* tell the peer to stop burning cycles on this step *)
              Transport.send_best_effort conn
                (Message.Cancel_step
                   { step_id; reason = "chief abandoned step" })
          | Ok _ -> ());
          finish result)

let runner t : Octf.Remote.runner =
  {
    Octf.Remote.is_local =
      (fun d -> d.Device.job = t.cfg.job && d.Device.task = t.cfg.task);
    rendezvous = t.rendezvous;
    run_partitions =
      (fun ~job ~task ~step_id ~feeds ~fetches ~targets ~deadline ~cancel ->
        run_partitions t ~job ~task ~step_id ~feeds ~fetches ~targets
          ~deadline ~cancel);
    retire_step =
      (* locally-issued steps are owned by this process itself; a fresh
         process has a fresh table, so self-owned ids never collide *)
      (fun ~step_id -> retire_step t ~owner:(t.cfg.job, t.cfg.task) ~step_id);
  }

let shutdown t =
  t.running <- false;
  (match t.listen_fd with
  | Some fd ->
      t.listen_fd <- None;
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  let conns =
    with_lock t (fun () ->
        Hashtbl.fold
          (fun _ p acc ->
            match p.conn with
            | Some c ->
                p.conn <- None;
                c :: acc
            | None -> acc)
          t.peers [])
  in
  List.iter
    (fun c ->
      Transport.send_best_effort c Message.Goodbye;
      Transport.close c)
    conns
