(* Binary payload codec for the frame layer.

   The encoder appends to a [Buffer]; the decoder walks a cursor over
   the payload string with bounds checks on every read, so malformed
   input surfaces as [Decode_error] — never [Invalid_argument] or a
   wild allocation. Numeric layout matches the checkpoint format:
   little-endian, 8 bytes per tensor element, u32-length-prefixed
   strings. *)

open Octf_tensor

exception Decode_error of string

exception Encode_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

(* Writers ------------------------------------------------------------ *)

let put_u8 b i = Buffer.add_char b (Char.chr (i land 0xFF))

let put_u32 b i =
  let s = Bytes.create 4 in
  Bytes.set_int32_le s 0 (Int32.of_int i);
  Buffer.add_bytes b s

let put_i64 b i =
  let s = Bytes.create 8 in
  Bytes.set_int64_le s 0 (Int64.of_int i);
  Buffer.add_bytes b s

let put_f64 b f =
  let s = Bytes.create 8 in
  Bytes.set_int64_le s 0 (Int64.bits_of_float f);
  Buffer.add_bytes b s

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_list b put xs =
  put_u32 b (List.length xs);
  List.iter (put b) xs

let put_option b put = function
  | None -> put_u8 b 0
  | Some x ->
      put_u8 b 1;
      put b x

(* Readers ------------------------------------------------------------ *)

type reader = { buf : string; mutable pos : int }

let reader s = { buf = s; pos = 0 }

let remaining r = String.length r.buf - r.pos

let need r n what = if remaining r < n then fail "truncated %s" what

let get_u8 r =
  need r 1 "byte";
  let c = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_u32 r =
  need r 4 "u32";
  let v =
    Int32.to_int (Bytes.get_int32_le (Bytes.unsafe_of_string r.buf) r.pos)
  in
  r.pos <- r.pos + 4;
  v

let get_i64 r =
  need r 8 "i64";
  let v =
    Int64.to_int (Bytes.get_int64_le (Bytes.unsafe_of_string r.buf) r.pos)
  in
  r.pos <- r.pos + 8;
  v

let get_f64 r =
  need r 8 "f64";
  let v =
    Int64.float_of_bits
      (Bytes.get_int64_le (Bytes.unsafe_of_string r.buf) r.pos)
  in
  r.pos <- r.pos + 8;
  v

let get_string r =
  let len = get_u32 r in
  if len < 0 then fail "negative string length %d" len;
  need r len "string body";
  let s = String.sub r.buf r.pos len in
  r.pos <- r.pos + len;
  s

let get_list r get =
  let n = get_u32 r in
  if n < 0 then fail "negative list length %d" n;
  (* Every element consumes at least one byte; a count beyond the
     remaining payload is corrupt, not a huge allocation request. *)
  if n > remaining r then fail "list length %d exceeds payload" n;
  List.init n (fun _ -> get r)

let get_option r get =
  match get_u8 r with
  | 0 -> None
  | 1 -> Some (get r)
  | t -> fail "bad option tag %d" t

let expect_end r =
  if remaining r <> 0 then fail "%d trailing bytes in payload" (remaining r)

(* Tensors ------------------------------------------------------------ *)

let max_rank = 64

let put_tensor b t =
  put_string b (Dtype.to_string (Tensor.dtype t));
  let shape = Tensor.shape t in
  put_u32 b (Shape.rank shape);
  Array.iter (fun d -> put_i64 b d) shape;
  let n = Tensor.numel t in
  put_u32 b n;
  match Tensor.dtype t with
  | Dtype.F32 | Dtype.F64 ->
      for i = 0 to n - 1 do
        put_f64 b (Tensor.flat_get_f t i)
      done
  | Dtype.I32 | Dtype.I64 | Dtype.Bool ->
      for i = 0 to n - 1 do
        put_i64 b (Tensor.flat_get_i t i)
      done
  | Dtype.U8 -> Buffer.add_bytes b (Tensor.byte_buffer t)
  | Dtype.String -> Array.iter (fun s -> put_string b s) (Tensor.string_buffer t)

let get_tensor r =
  let dname = get_string r in
  let dtype =
    try Dtype.of_string dname
    with Invalid_argument _ -> fail "unknown dtype %S" dname
  in
  let rank = get_u32 r in
  if rank < 0 || rank > max_rank then fail "bad tensor rank %d" rank;
  let shape =
    Array.init rank (fun _ ->
        let d = get_i64 r in
        if d < 0 then fail "negative dimension %d" d;
        d)
  in
  let n = get_u32 r in
  if n < 0 then fail "negative element count %d" n;
  if n <> Shape.numel shape then
    fail "element count %d does not match shape" n;
  match dtype with
  | Dtype.F32 | Dtype.F64 ->
      need r (n * 8) "tensor data";
      Tensor.of_float_array ~dtype shape (Array.init n (fun _ -> get_f64 r))
  | Dtype.I32 | Dtype.I64 ->
      need r (n * 8) "tensor data";
      Tensor.of_int_array ~dtype shape (Array.init n (fun _ -> get_i64 r))
  | Dtype.U8 ->
      need r n "tensor data";
      let b = Bytes.of_string (String.sub r.buf r.pos n) in
      r.pos <- r.pos + n;
      Tensor.of_bytes shape b
  | Dtype.Bool ->
      need r (n * 8) "tensor data";
      Tensor.of_bool_array shape (Array.init n (fun _ -> get_i64 r <> 0))
  | Dtype.String ->
      Tensor.of_string_array shape (Array.init n (fun _ -> get_string r))

(* Values: only tensors and dead values cross processes. Resource
   handles are addresses into one process's heap; placement keeps
   resource edges device-local, so shipping one is a bug. *)

let put_value b = function
  | Octf.Value.Tensor t ->
      put_u8 b 0;
      put_tensor b t
  | Octf.Value.Dead -> put_u8 b 1
  | Octf.Value.Resource _ ->
      raise (Encode_error "resource values cannot cross process boundaries")

let get_value r =
  match get_u8 r with
  | 0 -> Octf.Value.Tensor (get_tensor r)
  | 1 -> Octf.Value.Dead
  | t -> fail "bad value tag %d" t

(* Graph endpoints ---------------------------------------------------- *)

let put_endpoint b (e : Octf.Node.endpoint) =
  put_u32 b e.Octf.Node.node_id;
  put_u32 b e.Octf.Node.index

let get_endpoint r =
  let node_id = get_u32 r in
  let index = get_u32 r in
  if node_id < 0 || index < 0 then
    fail "bad endpoint %d:%d" node_id index;
  { Octf.Node.node_id; index }
