(* Typed messages carried by frames.

   One message variant per frame type; [to_frame] / [of_frame] are the
   codec. Payload decoding errors surface as [Frame.Protocol_error]
   (via [Wire.Decode_error]) so the transport's single error path
   handles both framing and payload corruption. *)

open Octf_tensor

type remote_error = {
  node : string option;
  device : string option;
  kind : string;  (* Step_failure.cause_kind of the remote cause *)
  message : string;
}

type step_result =
  | Fetched of (Octf.Node.endpoint * Octf.Value.t) list
  | Failed of remote_error

type t =
  | Hello of { version : int; job : string; task : int }
  | Ping of { seq : int }
  | Pong of { seq : int }
  | Tensor of { key : string; value : Octf.Value.t }
  | Run_step of {
      step_id : int;
      timeout : float option;  (* seconds of budget left, not absolute:
                                  peers do not share a clock *)
      feeds : (Octf.Node.endpoint * Tensor.t) list;
      fetches : Octf.Node.endpoint list;
      targets : int list;
    }
  | Step_done of { step_id : int; result : step_result }
  | Cancel_step of { step_id : int; reason : string }
  | Error_msg of { kind : string; detail : string }
  | Goodbye

let version = 1

let frame_type = function
  | Hello _ -> Frame.Hello
  | Ping _ -> Frame.Ping
  | Pong _ -> Frame.Pong
  | Tensor _ -> Frame.Tensor
  | Run_step _ -> Frame.Run_step
  | Step_done _ -> Frame.Step_done
  | Cancel_step _ -> Frame.Cancel_step
  | Error_msg _ -> Frame.Error_frame
  | Goodbye -> Frame.Goodbye

let kind m = Frame.type_name (frame_type m)

(* For fault-injection matching: the payload's identifying string. *)
let key = function
  | Tensor { key; _ } -> key
  | m -> kind m

let stream_id = function
  | Ping { seq } | Pong { seq } -> seq
  | Tensor { key; _ } -> (
      (* stream id mirrors the step for step-scoped frames so socket
         level fault specs can trigger "at step N" *)
      match String.index_opt key ':' with
      | Some i -> (
          let rest = String.sub key (i + 1) (String.length key - i - 1) in
          match String.index_opt rest ';' with
          | Some j -> (
              match int_of_string_opt (String.sub rest 0 j) with
              | Some id -> id
              | None -> 0)
          | None -> 0)
      | None -> 0)
  | Run_step { step_id; _ } | Step_done { step_id; _ }
  | Cancel_step { step_id; _ } ->
      step_id
  | Hello _ | Error_msg _ | Goodbye -> 0

let put_remote_error b (e : remote_error) =
  Wire.put_option b Wire.put_string e.node;
  Wire.put_option b Wire.put_string e.device;
  Wire.put_string b e.kind;
  Wire.put_string b e.message

let get_remote_error r =
  let node = Wire.get_option r Wire.get_string in
  let device = Wire.get_option r Wire.get_string in
  let kind = Wire.get_string r in
  let message = Wire.get_string r in
  { node; device; kind; message }

let to_frame m =
  let b = Buffer.create 64 in
  (match m with
  | Hello { version; job; task } ->
      Wire.put_u32 b version;
      Wire.put_string b job;
      Wire.put_u32 b task
  | Ping _ | Pong _ | Goodbye -> ()
  | Tensor { key; value } ->
      Wire.put_string b key;
      Wire.put_value b value
  | Run_step { timeout; feeds; fetches; targets; _ } ->
      Wire.put_option b Wire.put_f64 timeout;
      Wire.put_list b
        (fun b (ep, t) ->
          Wire.put_endpoint b ep;
          Wire.put_tensor b t)
        feeds;
      Wire.put_list b Wire.put_endpoint fetches;
      Wire.put_list b Wire.put_u32 targets
  | Step_done { result; _ } -> (
      match result with
      | Fetched pairs ->
          Wire.put_u8 b 0;
          Wire.put_list b
            (fun b (ep, v) ->
              Wire.put_endpoint b ep;
              Wire.put_value b v)
            pairs
      | Failed e ->
          Wire.put_u8 b 1;
          put_remote_error b e)
  | Cancel_step { reason; _ } -> Wire.put_string b reason
  | Error_msg { kind; detail } ->
      Wire.put_string b kind;
      Wire.put_string b detail);
  Frame.v ~stream_id:(stream_id m) (frame_type m) (Buffer.contents b)

let of_frame (f : Frame.t) =
  let r = Wire.reader f.Frame.payload in
  try
    let m =
      match f.Frame.ftype with
      | Frame.Hello ->
          let version = Wire.get_u32 r in
          let job = Wire.get_string r in
          let task = Wire.get_u32 r in
          Hello { version; job; task }
      | Frame.Ping -> Ping { seq = f.Frame.stream_id }
      | Frame.Pong -> Pong { seq = f.Frame.stream_id }
      | Frame.Tensor ->
          let key = Wire.get_string r in
          let value = Wire.get_value r in
          Tensor { key; value }
      | Frame.Run_step ->
          let timeout = Wire.get_option r Wire.get_f64 in
          let feeds =
            Wire.get_list r (fun r ->
                let ep = Wire.get_endpoint r in
                let t = Wire.get_tensor r in
                (ep, t))
          in
          let fetches = Wire.get_list r Wire.get_endpoint in
          let targets = Wire.get_list r Wire.get_u32 in
          Run_step { step_id = f.Frame.stream_id; timeout; feeds; fetches; targets }
      | Frame.Step_done ->
          let result =
            match Wire.get_u8 r with
            | 0 ->
                Fetched
                  (Wire.get_list r (fun r ->
                       let ep = Wire.get_endpoint r in
                       let v = Wire.get_value r in
                       (ep, v)))
            | 1 -> Failed (get_remote_error r)
            | t -> Wire.fail "bad step result tag %d" t
          in
          Step_done { step_id = f.Frame.stream_id; result }
      | Frame.Cancel_step ->
          Cancel_step
            { step_id = f.Frame.stream_id; reason = Wire.get_string r }
      | Frame.Error_frame ->
          let kind = Wire.get_string r in
          let detail = Wire.get_string r in
          Error_msg { kind; detail }
      | Frame.Goodbye -> Goodbye
    in
    Wire.expect_end r;
    m
  with Wire.Decode_error d ->
    raise
      (Frame.Frame_error
         (Frame.Protocol_error
            (Printf.sprintf "bad %s payload: %s"
               (Frame.type_name f.Frame.ftype)
               d)))
