(* Length-prefixed binary framing over a stream socket.

   Every frame is a 14-byte header followed by the payload:

     offset  size  field
     0       4     payload length, u32 LE
     4       1     frame type
     5       1     flags (reserved, must be 0)
     6       4     stream id, u32 LE (the step id for step-scoped frames)
     10      4     payload checksum, u32 LE (positional byte sum, as in
                   Record_format)

   Malformed input maps onto the typed {!error} taxonomy and is raised
   as [Frame_error]; a clean EOF at a frame boundary raises [Closed].
   The reader never hangs on garbage: the length field is validated
   before any allocation, and EOF mid-frame is a [Protocol_error]. *)

type frame_type =
  | Hello
  | Ping
  | Pong
  | Tensor
  | Run_step
  | Step_done
  | Cancel_step
  | Error_frame
  | Goodbye

let type_code = function
  | Hello -> 1
  | Ping -> 2
  | Pong -> 3
  | Tensor -> 4
  | Run_step -> 5
  | Step_done -> 6
  | Cancel_step -> 7
  | Error_frame -> 8
  | Goodbye -> 9

let type_of_code = function
  | 1 -> Some Hello
  | 2 -> Some Ping
  | 3 -> Some Pong
  | 4 -> Some Tensor
  | 5 -> Some Run_step
  | 6 -> Some Step_done
  | 7 -> Some Cancel_step
  | 8 -> Some Error_frame
  | 9 -> Some Goodbye
  | _ -> None

let type_name = function
  | Hello -> "hello"
  | Ping -> "ping"
  | Pong -> "pong"
  | Tensor -> "tensor"
  | Run_step -> "run_step"
  | Step_done -> "step_done"
  | Cancel_step -> "cancel_step"
  | Error_frame -> "error"
  | Goodbye -> "goodbye"

type t = { ftype : frame_type; flags : int; stream_id : int; payload : string }

type error =
  | Unknown_frame of { frame_type : int; length : int }
  | Invalid_length of { frame_type : int; length : int; max : int }
  | Checksum_mismatch of { expected : int; actual : int }
  | Protocol_error of string

exception Frame_error of error

exception Closed
(* clean EOF at a frame boundary: the peer closed the socket *)

let error_kind = function
  | Unknown_frame _ -> "unknown_frame"
  | Invalid_length _ -> "invalid_length"
  | Checksum_mismatch _ -> "checksum_mismatch"
  | Protocol_error _ -> "protocol_error"

let error_to_string = function
  | Unknown_frame { frame_type; length } ->
      Printf.sprintf "unknown frame type %d (length %d)" frame_type length
  | Invalid_length { frame_type; length; max } ->
      Printf.sprintf "invalid length %d for frame type %d (max %d)" length
        frame_type max
  | Checksum_mismatch { expected; actual } ->
      Printf.sprintf "payload checksum mismatch (expected %08x, got %08x)"
        expected actual
  | Protocol_error detail -> "protocol error: " ^ detail

let () =
  Printexc.register_printer (function
    | Frame_error e -> Some ("Frame_error: " ^ error_to_string e)
    | Closed -> Some "Frame.Closed"
    | _ -> None)

let header_size = 14

let max_payload = 1 lsl 28 (* 256 MiB *)

(* Positional byte sum, same shape as Record_format's: sensitive to
   transpositions, cheap, and masked into 30 bits so it fits a u32 and
   OCaml's int everywhere. *)
let checksum s =
  let acc = ref 0 in
  String.iteri
    (fun i c -> acc := (!acc + ((i + 1) * Char.code c)) land 0x3FFFFFFF)
    s;
  !acc

let v ?(flags = 0) ?(stream_id = 0) ftype payload =
  { ftype; flags; stream_id; payload }

(* Oversized payloads are rejected here, on the send side: past
   [max_payload] the receiver would tear the connection down with an
   unhelpful generic failure, and past 4 GiB the u32 length field would
   silently wrap and desynchronize the stream. *)
let encode f =
  if String.length f.payload > max_payload then
    raise
      (Frame_error
         (Invalid_length
            {
              frame_type = type_code f.ftype;
              length = String.length f.payload;
              max = max_payload;
            }));
  let b = Bytes.create (header_size + String.length f.payload) in
  Bytes.set_int32_le b 0 (Int32.of_int (String.length f.payload));
  Bytes.set_uint8 b 4 (type_code f.ftype);
  Bytes.set_uint8 b 5 (f.flags land 0xFF);
  Bytes.set_int32_le b 6 (Int32.of_int f.stream_id);
  Bytes.set_int32_le b 10 (Int32.of_int (checksum f.payload));
  Bytes.blit_string f.payload 0 b header_size (String.length f.payload);
  Bytes.unsafe_to_string b

(* Parse a header; returns (payload_length, frame_type, flags,
   stream_id, expected_checksum) or a typed error. Length and type are
   validated here, before any payload allocation. *)
let decode_header h =
  if String.length h < header_size then
    Error (Protocol_error "truncated header")
  else
    let b = Bytes.unsafe_of_string h in
    let length = Int32.to_int (Bytes.get_int32_le b 0) in
    let tcode = Bytes.get_uint8 b 4 in
    let flags = Bytes.get_uint8 b 5 in
    let stream_id = Int32.to_int (Bytes.get_int32_le b 6) land 0xFFFFFFFF in
    let expected = Int32.to_int (Bytes.get_int32_le b 10) in
    (* the length is unsigned on the wire; a "negative" value here is a
       4-byte pattern above 2^31 — far beyond max_payload either way *)
    match type_of_code tcode with
    | None -> Error (Unknown_frame { frame_type = tcode; length })
    | Some ftype ->
        if length < 0 || length > max_payload then
          Error (Invalid_length { frame_type = tcode; length; max = max_payload })
        else Ok (ftype, flags, stream_id, length, expected)

(* Decode one complete frame from a string (for tests and golden
   vectors); the buffer must contain the whole frame. *)
let decode s =
  match decode_header s with
  | Error e -> Error e
  | Ok (ftype, flags, stream_id, length, expected) ->
      if String.length s < header_size + length then
        Error (Protocol_error "truncated frame")
      else
        let payload = String.sub s header_size length in
        let actual = checksum payload in
        if actual <> expected then
          Error (Checksum_mismatch { expected; actual })
        else Ok { ftype; flags; stream_id; payload }

(* Blocking socket I/O ------------------------------------------------ *)

let rec write_all fd b off len =
  if len > 0 then begin
    let n = Unix.write fd b off len in
    write_all fd b (off + n) (len - n)
  end

let write_fd fd f =
  let s = encode f in
  write_all fd (Bytes.unsafe_of_string s) 0 (String.length s)

(* Read exactly [len] bytes. [at_boundary] distinguishes a clean close
   (EOF before the first header byte → [Closed]) from a truncated
   frame (EOF anywhere else → [Protocol_error]). [on_chunk] fires on
   every partial read — byte-granular liveness for heartbeat monitors,
   which would otherwise see nothing while a large frame trickles in. *)
let read_exact ?(on_chunk = fun _ -> ()) fd len ~at_boundary =
  let b = Bytes.create len in
  let rec go off =
    if off < len then begin
      let n = Unix.read fd b off (len - off) in
      if n = 0 then
        if at_boundary && off = 0 then raise Closed
        else raise (Frame_error (Protocol_error "truncated frame"))
      else begin
        on_chunk n;
        go (off + n)
      end
    end
  in
  go 0;
  b

let read_fd ?on_chunk fd =
  let header =
    Bytes.unsafe_to_string (read_exact ?on_chunk fd header_size ~at_boundary:true)
  in
  match decode_header header with
  | Error e -> raise (Frame_error e)
  | Ok (ftype, flags, stream_id, length, expected) ->
      let payload =
        Bytes.unsafe_to_string (read_exact ?on_chunk fd length ~at_boundary:false)
      in
      let actual = checksum payload in
      if actual <> expected then
        raise (Frame_error (Checksum_mismatch { expected; actual }));
      { ftype; flags; stream_id; payload }
