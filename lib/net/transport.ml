(* One TCP connection between two runtime processes.

   Connections are symmetric after the Hello handshake: frames flow in
   both directions regardless of which side dialed. Writes are
   serialized by a per-connection mutex; reads happen on one dedicated
   reader thread per connection which dispatches decoded messages to
   the runtime. Socket-level fault injection (drop-connection,
   delay-frame, corrupt-frame) lives in the send path so injected
   faults travel the exact byte path real faults would. *)

module FI = Octf.Fault_injector
module Metrics = Octf.Metrics

let m_frames_sent =
  Metrics.Counter.v ~help:"Frames written to peers" "octf_net_frames_sent_total"

let m_frames_received =
  Metrics.Counter.v ~help:"Frames read from peers"
    "octf_net_frames_received_total"

let m_bytes_sent =
  Metrics.Counter.v ~help:"Frame bytes written to peers"
    "octf_net_bytes_sent_total"

let m_bytes_received =
  Metrics.Counter.v ~help:"Frame bytes read from peers"
    "octf_net_bytes_received_total"

let m_frame_errors kind =
  Metrics.Counter.v ~help:"Malformed frames, by error kind"
    ~labels:[ ("kind", kind) ]
    "octf_net_frame_errors_total"

type conn = {
  fd : Unix.file_descr;
  mutable peer_job : string;  (* accepted conns learn these from Hello *)
  mutable peer_task : int;
  wmutex : Mutex.t;
  mutable alive : bool;  (* guarded by wmutex *)
  mutable last_rx : float;
      (* instant of the last bytes read from the peer — updated on every
         partial read, so a large frame trickling in still counts as
         liveness even though no complete message arrives for a while *)
}

let peer_name c = Printf.sprintf "%s/%d" c.peer_job c.peer_task

let create fd ~peer_job ~peer_task =
  {
    fd;
    peer_job;
    peer_task;
    wmutex = Mutex.create ();
    alive = true;
    last_rx = Unix.gettimeofday ();
  }

(* Idempotent teardown: shutdown wakes the reader thread blocked in
   [Unix.read] (it sees EOF), close releases the descriptor. *)
let close c =
  Mutex.lock c.wmutex;
  let was_alive = c.alive in
  c.alive <- false;
  Mutex.unlock c.wmutex;
  if was_alive then begin
    (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let net_failure c detail =
  Octf.Step_failure.error
    (Octf.Step_failure.Network_error
       (Printf.sprintf "peer %s: %s" (peer_name c) detail))

(* Flip one payload bit after the checksum was computed, so the
   receiving side reports a Checksum_mismatch. Frames with an empty
   payload get a checksum-field bit flipped instead — same effect. *)
let corrupt_bytes s =
  let b = Bytes.of_string s in
  let i = if Bytes.length b > Frame.header_size then Frame.header_size else 10 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
  Bytes.unsafe_to_string b

let write_raw c s =
  Mutex.lock c.wmutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.wmutex)
    (fun () ->
      if not c.alive then raise (net_failure c "connection closed");
      try
        Frame.write_all c.fd
          (Bytes.unsafe_of_string s)
          0 (String.length s);
        Metrics.Counter.incr m_frames_sent;
        Metrics.Counter.add m_bytes_sent (String.length s)
      with Unix.Unix_error (e, _, _) ->
        c.alive <- false;
        raise (net_failure c ("write failed: " ^ Unix.error_message e)))

(* Send a message, consulting the fault injector first. Raises a
   structured [Step_failure.Network_error] on a dead connection, a
   write error, or an injected connection drop. *)
let send c msg =
  let frame = Message.to_frame msg in
  let bytes =
    try Frame.encode frame
    with Frame.Frame_error e ->
      (* oversized payload: fail this send with a structured error
         instead of tearing the connection down at the receiver *)
      raise (net_failure c (Frame.error_to_string e))
  in
  match
    FI.net_hook ~peer:(peer_name c) ~kind:(Message.kind msg)
      ~key:(Message.key msg) ~step_id:frame.Frame.stream_id
  with
  | `Send -> write_raw c bytes
  | `Delay d ->
      Thread.delay d;
      write_raw c bytes
  | `Corrupt -> write_raw c (corrupt_bytes bytes)
  | `Drop_conn ->
      close c;
      raise (net_failure c "connection dropped (fault injected)")

let send_best_effort c msg =
  try send c msg with Octf.Step_failure.Error _ -> ()

type close_reason =
  | Remote_closed  (* clean EOF or Goodbye *)
  | Frame_failed of Frame.error
  | Io_failed of string

let close_reason_to_string = function
  | Remote_closed -> "peer closed connection"
  | Frame_failed e -> Frame.error_to_string e
  | Io_failed d -> "read failed: " ^ d

(* The reader loop: decode frames into messages and hand them to
   [on_message] until the connection dies, then report why via
   [on_close] (called exactly once). A malformed frame is answered
   with a best-effort Error frame before closing — the peer learns why
   its connection dropped — and counted by error kind. *)
let reader_loop c ~on_message ~on_close =
  let reason = ref Remote_closed in
  (try
     let continue = ref true in
     let on_chunk _ = c.last_rx <- Unix.gettimeofday () in
     while !continue do
       let frame = Frame.read_fd ~on_chunk c.fd in
       Metrics.Counter.incr m_frames_received;
       Metrics.Counter.add m_bytes_received
         (Frame.header_size + String.length frame.Frame.payload);
       match Message.of_frame frame with
       | Message.Goodbye -> continue := false
       | msg -> on_message c msg
     done
   with
  | Frame.Closed -> ()
  | Frame.Frame_error e ->
      Metrics.Counter.incr (m_frame_errors (Frame.error_kind e));
      send_best_effort c
        (Message.Error_msg
           { kind = Frame.error_kind e; detail = Frame.error_to_string e });
      reason := Frame_failed e
  | Unix.Unix_error (e, _, _) ->
      if c.alive then reason := Io_failed (Unix.error_message e)
  | Octf.Step_failure.Error _ -> reason := Io_failed "send failed");
  close c;
  on_close c !reason

let spawn_reader c ~on_message ~on_close =
  Thread.create (fun () -> reader_loop c ~on_message ~on_close) ()

(* Synchronous Hello exchange, run before the reader thread starts so
   handshake frames never race application frames. Each side sends its
   identity and reads the peer's; version skew is a protocol error. *)
let handshake c ~job ~task =
  send c (Message.Hello { version = Message.version; job; task });
  match Message.of_frame (Frame.read_fd c.fd) with
  | Message.Hello { version; job = pj; task = pt } ->
      if version <> Message.version then
        raise
          (Frame.Frame_error
             (Frame.Protocol_error
                (Printf.sprintf "protocol version mismatch: ours %d, peer %d"
                   Message.version version)));
      c.peer_job <- pj;
      c.peer_task <- pt;
      (pj, pt)
  | m ->
      raise
        (Frame.Frame_error
           (Frame.Protocol_error ("expected hello, got " ^ Message.kind m)))
