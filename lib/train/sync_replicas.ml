open Octf_tensor
module B = Octf.Builder
module Vs = Octf_nn.Var_store
module G = Octf.Gradients

type mode = Async | Sync | Sync_backup of { aggregate : int }

module Metrics = Octf.Metrics

let m_rounds =
  Metrics.Counter.v ~help:"Synchronous update rounds completed by the chief"
    "octf_sync_rounds_total"

let m_abandoned =
  Metrics.Counter.v
    ~help:"Rounds closed with fewer than m gradients (deadline hit)"
    "octf_sync_rounds_abandoned_total"

let m_applied =
  Metrics.Counter.v ~help:"Gradient tuples averaged into applied updates"
    "octf_sync_gradients_applied_total"

let m_stale =
  Metrics.Counter.v ~help:"Stale-tagged gradient tuples dropped by the chief"
    "octf_sync_stale_dropped_total"

(* Synchronous-mode coordination pieces. *)
type coord = {
  aggregate : int;  (* m: gradients averaged per round *)
  (* Worker side *)
  token_dequeue : B.output list;  (* 1 component *)
  enqueue_grads : B.output;  (* tagged gradient tuple *)
  (* Chief side *)
  sync_apply : B.output option;  (* fully in-graph m = n round *)
  dequeue_one : B.output list;  (* tag :: gradient components *)
  grad_phs : B.output list;  (* placeholders for averaged gradients *)
  apply_from_phs : B.output;
  release_tokens : B.output;  (* EnqueueMany of n tokens *)
  close_ops : B.output list;
}

type t = {
  mode : mode;
  num_workers : int;
  nvars : int;
  step_read : B.output;
  async_train : B.output option;
  coord : coord option;
}

let scalar t = Tensor.flat_get_f t 0

let densified_grads store ~loss =
  let b = Vs.builder store in
  let vars = Vs.trainable store in
  let xs = List.map (fun (v : Vs.variable) -> v.Vs.read) vars in
  let grads = G.gradients b ~ys:[ loss ] ~xs () in
  List.filter_map
    (fun (var, g) ->
      match g with None -> None | Some g -> Some (var, G.densify b g))
    (List.combine vars grads)

let build store ?(algorithm = Optimizer.Sgd) ~mode ~num_workers ~lr ~loss () =
  let b = Vs.builder store in
  let gs =
    Vs.get store ~trainable:false ~init:Octf_nn.Init.zeros ~name:"global_step"
      [||]
  in
  let bump = B.assign_add b gs.Vs.handle (B.const_f b 1.0) in
  let pairs = densified_grads store ~loss in
  if pairs = [] then invalid_arg "Sync_replicas.build: no gradients";
  let nvars = List.length pairs in
  match mode with
  | Async ->
      (* Figure 4(a): read-compute-apply with no coordination. *)
      let apply =
        Optimizer.apply_gradients store ~algorithm ~lr
          (List.map (fun (v, g) -> (v, G.Dense g)) pairs)
      in
      let train =
        B.group b ~name:"async_train" [ apply; B.group b [ bump ] ]
      in
      {
        mode;
        num_workers;
        nvars;
        step_read = gs.Vs.read;
        async_train = Some train;
        coord = None;
      }
  | Sync | Sync_backup _ ->
      let aggregate =
        match mode with
        | Sync -> num_workers
        | Sync_backup { aggregate } -> aggregate
        | Async -> assert false
      in
      if aggregate <= 0 || aggregate > num_workers then
        invalid_arg "Sync_replicas.build: aggregate out of range";
      let cap = 4 * num_workers in
      let grad_q =
        B.fifo_queue b ~name:"grad_queue" ~capacity:cap
          ~num_components:(nvars + 1) ()
      in
      let token_q =
        B.fifo_queue b ~name:"token_queue" ~capacity:cap ~num_components:1 ()
      in
      (* Worker: tag the gradient tuple with the step it was computed
         against, so the chief can drop stale straggler updates. *)
      let tag = gs.Vs.read in
      let enqueue_grads =
        B.enqueue b ~name:"enqueue_grads" grad_q
          (tag :: List.map snd pairs)
      in
      let token_dequeue =
        B.dequeue b ~name:"take_token" token_q ~num_components:1
      in
      (* Chief, fully in-graph barrier for m = n (Figure 4(b)):
         DequeueMany stacks each component; averaging over axis 0 gives
         the aggregate update, applied atomically. *)
      let sync_apply =
        if aggregate = num_workers then begin
          let outs =
            B.dequeue_many b ~name:"collect_grads" grad_q ~n:num_workers
              ~num_components:(nvars + 1)
          in
          let grad_batches = List.tl outs in
          let averaged =
            List.map (fun g -> B.reduce_mean b ~axes:[ 0 ] g) grad_batches
          in
          let apply =
            Optimizer.apply_gradients store ~algorithm ~lr
              (List.map2
                 (fun (v, _) g -> (v, G.Dense g))
                 pairs averaged)
          in
          Some
            (B.with_control_dependencies b [ apply ] (fun () ->
                 B.group b ~name:"sync_round" [ B.group b [ bump ] ]))
        end
        else None
      in
      (* Chief, m-of-n round (Figure 4(c)): gradients are dequeued one
         tuple at a time client-side so stale tags can be dropped. *)
      let dequeue_one =
        B.dequeue b ~name:"dequeue_one" grad_q ~num_components:(nvars + 1)
      in
      let grad_phs =
        List.mapi
          (fun i _ ->
            B.placeholder b
              ~name:(Printf.sprintf "avg_grad_%d" i)
              Dtype.F32)
          pairs
      in
      let apply_phs =
        Optimizer.apply_gradients store ~algorithm ~lr
          (List.map2 (fun (v, _) ph -> (v, G.Dense ph)) pairs grad_phs)
      in
      let apply_from_phs =
        B.with_control_dependencies b [ apply_phs ] (fun () ->
            B.group b ~name:"backup_round" [ B.group b [ bump ] ])
      in
      (* Token release: one batched EnqueueMany of n dummy tokens. *)
      let tokens =
        B.const b (Tensor.zeros Dtype.F32 [| num_workers |])
      in
      let release_tokens =
        B.enqueue_many b ~name:"release_tokens" token_q [ tokens ]
      in
      let close_ops = [ B.queue_close b grad_q; B.queue_close b token_q ] in
      {
        mode;
        num_workers;
        nvars;
        step_read = gs.Vs.read;
        async_train = None;
        coord =
          Some
            {
              aggregate;
              token_dequeue;
              enqueue_grads;
              sync_apply;
              dequeue_one;
              grad_phs;
              apply_from_phs;
              release_tokens;
              close_ops;
            };
      }

let start t session =
  match t.coord with
  | None -> ()
  | Some c -> Octf.Session.run_unit session [ c.release_tokens ]

let worker_step ?(feeds = []) ?deadline t session =
  match (t.async_train, t.coord) with
  | Some train, _ -> Octf.Session.run_unit ~feeds ?deadline session [ train ]
  | None, Some c ->
      (* Take a token (blocks until the chief releases the round), then
         compute and enqueue the tagged gradients. *)
      ignore (Octf.Session.run ?deadline session c.token_dequeue);
      Octf.Session.run_unit ~feeds ?deadline session [ c.enqueue_grads ]
  | None, None -> assert false

let chief_step ?deadline t session =
  match t.coord with
  | None -> ()
  | Some c -> (
      match c.sync_apply with
      | Some op ->
          Octf.Session.run_unit ?deadline session [ op ];
          Metrics.Counter.incr m_rounds;
          Metrics.Counter.add m_applied t.num_workers;
          Octf.Session.run_unit session [ c.release_tokens ]
      | None ->
          (* m-of-n with staleness dropping (Figure 4(c)). The deadline
             is the backup-worker mechanism of §4.4 turned around: when
             a straggler (or a dead worker) keeps the round from filling,
             the chief stops waiting and closes the round with the m' < m
             gradients it has, rather than stalling the whole cluster.
             The budget bounds the whole round: each dequeue gets only
             the time remaining, so neither repeated dequeues nor a
             stream of stale-tag gradients (dropped without counting)
             can reset the clock. *)
          let round_deadline =
            Option.map (fun d -> Unix.gettimeofday () +. d) deadline
          in
          let remaining () =
            Option.map
              (fun d -> Float.max 0.0 (d -. Unix.gettimeofday ()))
              round_deadline
          in
          let current =
            int_of_float (scalar (List.hd (Octf.Session.run session [ t.step_read ])))
          in
          let fresh = ref [] in
          let abandoned = ref false in
          while (not !abandoned) && List.length !fresh < c.aggregate do
            match Octf.Session.run ?deadline:(remaining ()) session c.dequeue_one with
            | tag :: grads ->
                if int_of_float (scalar tag) = current then
                  fresh := grads :: !fresh
                else Metrics.Counter.incr m_stale
            | [] -> assert false
            | exception Octf.Session.Run_error f
              when Octf.Step_failure.is_cancellation f.Octf.Step_failure.cause
                   && !fresh <> [] ->
                abandoned := true
          done;
          Metrics.Counter.incr m_rounds;
          if !abandoned then Metrics.Counter.incr m_abandoned;
          Metrics.Counter.add m_applied (List.length !fresh);
          let m = float_of_int (List.length !fresh) in
          let averaged =
            List.mapi
              (fun i _ ->
                let sum =
                  List.fold_left
                    (fun acc grads ->
                      match acc with
                      | None -> Some (List.nth grads i)
                      | Some a -> Some (Tensor_ops.add a (List.nth grads i)))
                    None !fresh
                in
                Tensor_ops.mul (Option.get sum)
                  (Tensor.scalar_f (1.0 /. m)))
              c.grad_phs
          in
          Octf.Session.run_unit
            ~feeds:(List.combine c.grad_phs averaged)
            session
            [ c.apply_from_phs ];
          Octf.Session.run_unit session [ c.release_tokens ])

let shutdown t session =
  match t.coord with
  | None -> ()
  | Some c ->
      List.iter
        (fun op ->
          try Octf.Session.run_unit session [ op ]
          with Octf.Session.Run_error _ -> ())
        c.close_ops

let global_step t session =
  int_of_float (scalar (List.hd (Octf.Session.run session [ t.step_read ])))
