(* Checkpoint-based recovery for training loops (§4.3). *)

module Step_failure = Octf.Step_failure
module Session = Octf.Session
module Metrics = Octf.Metrics

let m_checkpoint_seconds =
  Metrics.Histogram.v ~help:"Checkpoint save duration in seconds"
    "octf_supervisor_checkpoint_seconds"

let m_checkpoints =
  Metrics.Counter.v ~help:"Checkpoints written by the supervisor"
    "octf_supervisor_checkpoints_total"

let m_restores =
  Metrics.Counter.v ~help:"Checkpoint restores performed by the supervisor"
    "octf_supervisor_restores_total"

let m_step_failures =
  Metrics.Counter.v ~help:"Supervised steps that raised Run_error"
    "octf_supervisor_step_failures_total"

let m_gave_up =
  Metrics.Counter.v ~help:"Supervised runs abandoned after max failures"
    "octf_supervisor_gave_up_total"

type event =
  | Started of int
  | Checkpointed of int * string
  | Step_failed of int * Step_failure.t
  | Restored of int * string
  | Gave_up of int * Step_failure.t

type stats = {
  steps_completed : int;
  failures : int;
  restores : int;
  checkpoints : int;
}

type t = {
  session : Session.t;
  saver : Saver.t;
  prefix : string;
  save_every : int;
  max_failures : int;
  retry : Octf.Backoff.policy;
  deadline : float option;
  on_event : event -> unit;
  on_recover : Step_failure.t -> unit;
}

let create ?(save_every = 10) ?(max_failures = 5) ?(backoff = 0.01)
    ?(backoff_multiplier = 2.0) ?(max_backoff = 1.0) ?deadline
    ?(on_event = fun _ -> ()) ?(on_recover = fun _ -> ()) ~saver ~prefix
    session =
  {
    session;
    saver;
    prefix;
    save_every = max 1 save_every;
    max_failures;
    retry =
      Octf.Backoff.policy ~base:backoff ~multiplier:backoff_multiplier
        ~cap:max_backoff ();
    deadline;
    on_event;
    on_recover;
  }

let deadline t = t.deadline

(* The step a [prefix ^ "-" ^ step ^ ".ckpt"] path was written at. *)
let step_of_path t path =
  let base = Filename.basename t.prefix ^ "-" in
  let name = Filename.basename path in
  let bl = String.length base in
  if
    String.length name > bl
    && String.sub name 0 bl = base
    && Filename.check_suffix name ".ckpt"
  then int_of_string_opt (Filename.chop_suffix (String.sub name bl (String.length name - bl)) ".ckpt")
  else None

let checkpoint t ~step stats =
  (* Quiesce the pipeline first: a snapshot taken while K steps are in
     flight would mix variable versions from different steps. *)
  Session.drain t.session;
  let path =
    Metrics.Histogram.time m_checkpoint_seconds (fun () ->
        Saver.save_numbered t.saver t.session ~prefix:t.prefix ~step)
  in
  Metrics.Counter.incr m_checkpoints;
  t.on_event (Checkpointed (step, path));
  stats := { !stats with checkpoints = !stats.checkpoints + 1 }

(* Restore the newest checkpoint; return the step to resume from. *)
let restore_latest t ~fallback stats =
  (* In-flight steps must not race a restore's variable assignments. *)
  Session.drain t.session;
  match Saver.latest_checkpoint ~prefix:t.prefix with
  | None -> fallback
  | Some path ->
      Saver.restore t.saver t.session ~path;
      Metrics.Counter.incr m_restores;
      let step = Option.value (step_of_path t path) ~default:fallback in
      t.on_event (Restored (step, path));
      stats := { !stats with restores = !stats.restores + 1 };
      step

let run t ~steps ?(init = fun () -> ()) body =
  let stats = ref { steps_completed = 0; failures = 0; restores = 0; checkpoints = 0 } in
  init ();
  let start = restore_latest t ~fallback:0 stats in
  t.on_event (Started start);
  let step = ref start in
  let consecutive = ref 0 in
  let retry = Octf.Backoff.create t.retry in
  while !step < steps do
    match body ~step:!step ~deadline:t.deadline with
    | () ->
        stats := { !stats with steps_completed = !stats.steps_completed + 1 };
        consecutive := 0;
        Octf.Backoff.reset retry;
        if (!step + 1) mod t.save_every = 0 then
          checkpoint t ~step:(!step + 1) stats;
        incr step
    | exception Session.Run_error f ->
        stats := { !stats with failures = !stats.failures + 1 };
        Metrics.Counter.incr m_step_failures;
        incr consecutive;
        t.on_event (Step_failed (!step, f));
        if !consecutive > t.max_failures then begin
          Metrics.Counter.incr m_gave_up;
          t.on_event (Gave_up (!step, f));
          raise (Session.Run_error f)
        end;
        ignore (Octf.Backoff.wait retry : bool);
        (* Repair, rebuild, then roll back to the last checkpoint: the
           order a restarted task follows in §4.3. *)
        t.on_recover f;
        init ();
        step := restore_latest t ~fallback:0 stats
  done;
  if !step > start && !step mod t.save_every <> 0 then
    checkpoint t ~step:!step stats;
  !stats
