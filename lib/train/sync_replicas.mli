(** Synchronous replica coordination (§4.4, Figure 4).

    Data-parallel training with [n] workers can read and write model
    parameters under three schemes, all expressed with unprivileged queue
    and variable operations:

    - {b Asynchronous} (Figure 4a): each worker applies its gradient to
      the current parameter values as soon as it is computed. High
      utilization, stale reads.
    - {b Synchronous} (Figure 4b): a gradient queue acts as a barrier; a
      chief dequeues all [n] gradient tuples, averages them, applies the
      aggregate atomically, then writes [n] tokens to a token queue that
      workers must take before their next step.
    - {b Synchronous with backup workers} (Figure 4c): [n] workers run
      proactively but the chief aggregates only the first [m < n]
      gradients of each round; stragglers' late gradients are detected by
      their step tag and dropped, exactly the m-of-n scheme the paper
      uses to cut the straggler tail (§6.3).

    The coordinator's queues, tags and update rules are all ordinary
    graph operations; only the chief's dequeue-m-then-release loop is
    client code (as it is in TensorFlow's SyncReplicasOptimizer). *)

module B = Octf.Builder
module Vs = Octf_nn.Var_store

type mode =
  | Async
  | Sync
  | Sync_backup of { aggregate : int }
      (** take the first [aggregate] of the [num_workers] gradients *)

type t

val build :
  Vs.t ->
  ?algorithm:Optimizer.algorithm ->
  mode:mode ->
  num_workers:int ->
  lr:float ->
  loss:B.output ->
  unit ->
  t
(** Build the coordination graph for [num_workers] replicas of a model
    whose per-replica loss is [loss]. (In this in-process reproduction
    the replicas share one graph and are driven by [num_workers]
    threads.) *)

val worker_step :
  ?feeds:(B.output * Octf_tensor.Tensor.t) list ->
  ?deadline:float ->
  t ->
  Octf.Session.t ->
  unit
(** One training step of a worker replica: under [Async], compute and
    apply; under the synchronous modes, take a token, compute, and
    enqueue the tagged gradient tuple. [feeds] supply the replica's
    input placeholders (the loss subgraph runs inside this step).
    [deadline] bounds each blocking sub-step (see {!Octf.Session.run}). *)

val chief_step : ?deadline:float -> t -> Octf.Session.t -> unit
(** One aggregation round of the chief (synchronous modes only): collect
    the round's gradients — dropping stale tags — average, apply, bump
    the step tag, release tokens. No-op under [Async].

    [deadline] bounds the whole round (one budget shared by every
    dequeue in it): if it expires with at least one fresh gradient in
    hand, the chief {e abandons} the rest of the round and applies the
    average of what arrived — the backup-worker idea of §4.4, where the
    first m of n updates win and stragglers' work is discarded. With no
    fresh gradients the deadline error propagates. *)

val start : t -> Octf.Session.t -> unit
(** Prime the token queue so workers can take their first step. *)

val shutdown : t -> Octf.Session.t -> unit
(** Close the queues, releasing blocked workers (they observe queue
    closure as the end of training). *)

val global_step : t -> Octf.Session.t -> int
(** Number of applied (aggregate) updates so far. *)
