open Octf_tensor
module B = Octf.Builder
module Vs = Octf_nn.Var_store

type t = {
  filename : B.output;  (* string placeholder *)
  save_op : B.output;
  restore_op : B.output;
  keep : int;
  mutable written : string list;  (* newest first *)
}

let create ?vars ?(keep = 5) store =
  let b = Vs.builder store in
  let vars = match vars with Some vs -> vs | None -> Vs.all store in
  if vars = [] then invalid_arg "Saver.create: no variables";
  let filename = B.placeholder b ~name:"saver/filename" Dtype.String in
  let entries =
    List.map (fun (v : Vs.variable) -> (v.Vs.name, v.Vs.read)) vars
  in
  let save_op = B.save b ~name:"saver/save" ~filename entries in
  let names = List.map (fun (v : Vs.variable) -> v.Vs.name) vars in
  let restored = B.restore b ~name:"saver/restore" ~filename names in
  let assigns =
    List.map2
      (fun (v : Vs.variable) value -> B.assign b v.Vs.handle value)
      vars restored
  in
  let restore_op = B.group b ~name:"saver/restore_all" assigns in
  { filename; save_op; restore_op; keep; written = [] }

let save t session ~path =
  Octf.Session.run_unit
    ~feeds:[ (t.filename, Tensor.scalar_s path) ]
    session [ t.save_op ];
  if not (List.mem path t.written) then begin
    t.written <- path :: t.written;
    let rec drop i = function
      | [] -> []
      | p :: rest ->
          if i >= t.keep then begin
            (try Sys.remove p with Sys_error _ -> ());
            drop (i + 1) rest
          end
          else p :: drop (i + 1) rest
    in
    t.written <- drop 0 t.written
  end

let restore t session ~path =
  Octf.Session.run_unit
    ~feeds:[ (t.filename, Tensor.scalar_s path) ]
    session [ t.restore_op ]

let numbered_path ~prefix ~step = Printf.sprintf "%s-%d.ckpt" prefix step

let save_numbered t session ~prefix ~step =
  let path = numbered_path ~prefix ~step in
  save t session ~path;
  path

let latest_checkpoint ~prefix =
  let dir = Filename.dirname prefix in
  (* Match "<base>-<step>.ckpt" by stripping the literal base first: a
     scanf-style "%s@-%d" split breaks on any base that itself contains
     a dash ("octf-train"), silently finding no checkpoints at all. *)
  let base = Filename.basename prefix ^ "-" in
  let bl = String.length base in
  match Sys.readdir dir with
  | exception Sys_error _ -> None
  | entries ->
      let best = ref None in
      Array.iter
        (fun f ->
          if
            String.length f > bl
            && String.sub f 0 bl = base
            && Filename.check_suffix f ".ckpt"
          then
            match
              int_of_string_opt
                (Filename.chop_suffix
                   (String.sub f bl (String.length f - bl))
                   ".ckpt")
            with
            | Some step ->
                let better =
                  match !best with None -> true | Some (s, _) -> step > s
                in
                if better then best := Some (step, Filename.concat dir f)
            | None -> ())
        entries;
      Option.map snd !best
