(** Periodic training-loop observability.

    A monitor samples the metrics registry every N steps, logs a
    one-line summary (and, when the caller passes the step's
    {!Octf.Session.Run_metadata.t}, the per-node step-stats summary),
    and can dump a full registry snapshot to a file in Prometheus text
    or JSON format — the programmatic face of the CLI's [--metrics] and
    [--stats-every] flags. *)

type t

val create :
  ?registry:Octf.Metrics.t ->
  ?every:int ->
  ?log:(string -> unit) ->
  unit ->
  t
(** [every] (default 10, clamped to >= 1) is the sampling period in
    steps; [log] (default: stderr) receives the summary lines. *)

val every : t -> int

val should_sample : t -> step:int -> bool
(** True on the last step of each period ([(step + 1) mod every = 0],
    with 0-based steps). *)

val on_step :
  t -> step:int -> ?metadata:Octf.Session.Run_metadata.t -> unit -> unit
(** Call after each training step. On sampling steps, logs the metrics
    summary, plus the {!Octf.Step_stats} summary when [metadata]
    carries one. *)

val write_snapshot : ?format:[ `Prometheus | `Json ] -> t -> path:string -> unit
(** Dump the registry (default: Prometheus text format) to [path]. *)
