module Metrics = Octf.Metrics
module Session = Octf.Session

type t = {
  registry : Metrics.t;
  every : int;
  log : string -> unit;
}

let create ?(registry = Metrics.default) ?(every = 10)
    ?(log = fun line -> Format.eprintf "%s@." line) () =
  { registry; every = max 1 every; log }

let every t = t.every

let should_sample t ~step = (step + 1) mod t.every = 0

let find t name = Metrics.find_value t.registry name

let summary_line t ~step =
  let v name = Option.value ~default:0.0 (find t name) in
  Printf.sprintf
    "monitor step %d: steps=%.0f cache_hits=%.0f kernels=%.0f \
     queue_depth=%.0f rendezvous_pending=%.0f errors=%.0f"
    step
    (v "octf_session_steps_total")
    (v "octf_session_cache_hits_total")
    (v "octf_executor_kernels_total")
    (* Unlabeled lookups miss labeled families; sum them instead. *)
    (List.fold_left
       (fun acc (s : Metrics.snapshot_sample) ->
         if s.Metrics.name = "octf_queue_depth" then acc +. s.Metrics.value
         else acc)
       0.0
       (Metrics.snapshot t.registry))
    (v "octf_rendezvous_pending")
    (List.fold_left
       (fun acc (s : Metrics.snapshot_sample) ->
         if s.Metrics.name = "octf_session_errors_total" then
           acc +. s.Metrics.value
         else acc)
       0.0
       (Metrics.snapshot t.registry))

let on_step t ~step ?metadata () =
  if should_sample t ~step then begin
    t.log (summary_line t ~step);
    match metadata with
    | Some md -> (
        match md.Session.Run_metadata.step_stats with
        | Some stats ->
            t.log (Format.asprintf "%a" Octf.Step_stats.pp_summary stats)
        | None -> ())
    | None -> ()
  end

let write_snapshot ?(format = `Prometheus) t ~path =
  let body =
    match format with
    | `Prometheus -> Metrics.to_prometheus t.registry
    | `Json -> Metrics.to_json t.registry
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc body)
