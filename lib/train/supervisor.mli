(** Fault-tolerant training loops (§4.3).

    The paper makes fault tolerance a user-level protocol: training
    survives task failures not by replicating state but by periodically
    writing checkpoints with the {!Saver} and, when a step fails,
    restoring from the latest one and continuing. The supervisor
    packages that protocol: it drives a step function, saves every
    [save_every] steps, and on a {!Octf.Session.Run_error} — an injected
    fault, a killed task, a deadline expiry — backs off exponentially,
    runs the caller's recovery hook (e.g. {!Octf.Cluster.restart_task}
    for the dead task), re-runs the init ops, restores the newest
    checkpoint, and resumes the loop. Consistency needs nothing stronger
    than this because, as the paper argues, the strong-consistency cost
    is not worth paying for SGD's tolerance of slightly stale state. *)

type event =
  | Started of int  (** loop entered at this step index *)
  | Checkpointed of int * string  (** step, path written *)
  | Step_failed of int * Octf.Step_failure.t
  | Restored of int * string
      (** resumed at step (the checkpoint's step), from path *)
  | Gave_up of int * Octf.Step_failure.t
      (** failure budget exhausted at this step *)

type stats = {
  steps_completed : int;
  failures : int;
  restores : int;
  checkpoints : int;
}

type t

val create :
  ?save_every:int ->
  ?max_failures:int ->
  ?backoff:float ->
  ?backoff_multiplier:float ->
  ?max_backoff:float ->
  ?deadline:float ->
  ?on_event:(event -> unit) ->
  ?on_recover:(Octf.Step_failure.t -> unit) ->
  saver:Saver.t ->
  prefix:string ->
  Octf.Session.t ->
  t
(** [save_every] (default 10) steps between checkpoints; [max_failures]
    (default 5) consecutive failures tolerated before giving up;
    [backoff] (default 0.01 s) initial retry delay, multiplied by
    [backoff_multiplier] (default 2.0) per consecutive failure and
    capped at [max_backoff] (default 1.0 s); [deadline] (seconds) is
    handed to the step body on every call — thread it into
    {!Octf.Session.run} so a wedged step fails instead of hanging.
    [on_recover] runs after a failure before restoring — repair the
    world here (revive/restart the dead task). A successful step resets
    the consecutive-failure counter and the backoff. *)

val deadline : t -> float option

val run :
  t ->
  steps:int ->
  ?init:(unit -> unit) ->
  (step:int -> deadline:float option -> unit) ->
  stats
(** [run t ~steps ?init body] calls [body ~step ~deadline] for [step] =
    0 to [steps - 1], checkpointing as configured (and once more at the
    end). [deadline] is the supervisor's per-step budget (the [?deadline]
    given to {!create}) — pass it to {!Octf.Session.run} inside the body.
    If a previous checkpoint exists under the prefix, training resumes
    from its step. [init] re-initializes non-checkpointed state
    (variable init ops) and runs once at start and once after each
    restore, {e before} the checkpoint is applied — mirroring a restarted
    task that first builds its graph, then restores (§4.3).

    @raise Octf.Session.Run_error (re-raised last failure) once
    [max_failures] consecutive failures are exhausted. *)
