module B = Octf.Builder
module Cancel = Octf.Cancel
module Session = Octf.Session

(* The optional prefetch stage: producers enqueue into [stage] (a small
   FIFO), and a pump step moves tuples stage -> main queue. Decoupling
   the two queues double-buffers the input pipeline — slow producers
   fill the stage while trainers drain already-pumped batches. *)
type stage = {
  stage_enqueue : B.output;
  stage_close : B.output;
  pump : B.output;  (* dequeue stage, enqueue main — one tuple per run *)
}

type t = {
  queue : B.output;
  producers : B.output list;
  enqueue : B.output;
  close_op : B.output;
  size_op : B.output;
  num_components : int;
  stage : stage option;
  b : B.t;
}

let create b ?(shuffle = false) ?(capacity = 64) ?prefetch ~name ~producers
    () =
  if producers = [] then invalid_arg "Pipeline.create: no producers";
  let num_components = List.length producers in
  (* The main queue keeps [name]: its metrics series
     (octf_queue_depth_max{queue=name}, ...) are what dashboards and
     smoke tests grep for, with or without a prefetch stage. *)
  let queue =
    if shuffle then
      B.random_shuffle_queue b ~name ~capacity ~num_components ()
    else B.fifo_queue b ~name ~capacity ~num_components ()
  in
  let enqueue = B.enqueue b ~name:(name ^ "/enqueue") queue producers in
  let close_op = B.queue_close b ~name:(name ^ "/close") queue in
  let size_op = B.queue_size b ~name:(name ^ "/size") queue in
  let stage =
    match prefetch with
    | None -> None
    | Some depth ->
        if depth < 1 then invalid_arg "Pipeline.create: prefetch < 1";
        let sq =
          B.fifo_queue b ~name:(name ^ "/stage") ~capacity:depth
            ~num_components ()
        in
        let stage_enqueue =
          B.enqueue b ~name:(name ^ "/stage/enqueue") sq producers
        in
        let stage_close =
          B.queue_close b ~name:(name ^ "/stage/close") sq
        in
        let staged =
          B.dequeue b ~name:(name ^ "/stage/dequeue") sq ~num_components
        in
        let pump = B.enqueue b ~name:(name ^ "/pump") queue staged in
        Some { stage_enqueue; stage_close; pump }
  in
  { queue; producers; enqueue; close_op; size_op; num_components; stage; b }

let batch t =
  B.dequeue t.b t.queue ~num_components:t.num_components

let batch_many t ~n =
  B.dequeue_many t.b t.queue ~n ~num_components:t.num_components

let size t = t.size_op

let enqueue_op t = t.enqueue

let close_op t = t.close_op

type fillers = { threads : Thread.t list; group : Cancel.t }

let start_fillers t session ~threads ?steps ?deadline ?feed () =
  let group = Cancel.create () in
  (* Each enqueue step runs under a child of [group] (created inside
     the session from Run_options.cancel), so stop_fillers wakes
     threads parked in a full queue's enqueue wait instead of leaking
     them. [deadline] additionally bounds each individual step. *)
  let run_step ~feeds target =
    ignore
      (Session.run_with_metadata
         ~options:
           (Session.Run_options.v ~feeds ~targets:[ target ] ?deadline
              ~cancel:group ())
         session [])
  in
  let fill_target =
    match t.stage with Some s -> s.stage_enqueue | None -> t.enqueue
  in
  let body () =
    let continue_ = ref true in
    let i = ref 0 in
    while
      !continue_
      && Option.is_none (Cancel.cancelled group)
      && match steps with Some s -> !i < s | None -> true
    do
      let feeds = match feed with None -> [] | Some f -> f !i in
      (try run_step ~feeds fill_target
       with Session.Run_error _ -> continue_ := false);
      incr i
    done
  in
  let filler_threads = List.init threads (fun _ -> Thread.create body ()) in
  (* Bounded-steps fillers close the stage once they all finish, so the
     pump can drain it and propagate end-of-input to the main queue. *)
  let closer_thread =
    match (t.stage, steps) with
    | Some s, Some _ ->
        [
          Thread.create
            (fun () ->
              List.iter Thread.join filler_threads;
              try Session.run_unit session [ s.stage_close ]
              with Session.Run_error _ -> ())
            ();
        ]
    | _ -> []
  in
  let pump_threads =
    match t.stage with
    | None -> []
    | Some s ->
        [
          Thread.create
            (fun () ->
              let continue_ = ref true in
              while !continue_ && Option.is_none (Cancel.cancelled group) do
                try run_step ~feeds:[] s.pump
                with Session.Run_error _ -> continue_ := false
              done;
              (* Stage closed-and-drained (or the group was stopped):
                 close the main queue so trainers drain what was pumped
                 and then observe end-of-input instead of hanging. *)
              try Session.run_unit session [ t.close_op ]
              with Session.Run_error _ -> ())
            ();
        ]
  in
  { threads = filler_threads @ closer_thread @ pump_threads; group }

let join_fillers f = List.iter Thread.join f.threads

let stop_fillers f =
  Cancel.cancel f.group ~reason:"input pipeline stopped";
  join_fillers f

let close t session =
  (* Close the upstream-most queue: with a prefetch stage the pump
     drains the remainder and then closes the main queue itself. *)
  let op =
    match t.stage with Some s -> s.stage_close | None -> t.close_op
  in
  try Session.run_unit session [ op ] with Session.Run_error _ -> ()
