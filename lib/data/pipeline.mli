(** Queue-based input pipelines (§3.2, Figure 1).

    A training application runs concurrent steps against one graph: I/O
    and preprocessing steps fill a queue while training steps drain it,
    with the queue's blocking behaviour providing backpressure. This
    module packages that pattern: build a queue fed by producer tensors
    (typically [Placeholder]s fed by a generator, or random ops), then
    start filler threads that repeatedly run the enqueue step.

    With [prefetch] the pipeline is double-buffered: producers enqueue
    into a small staging queue ([name ^ "/stage"]) and a pump step moves
    tuples into the main queue, so slow producers overlap with training
    steps draining already-staged batches. Both queues are bounded, so
    backpressure still propagates from trainer to producer.

    Fillers run under a group {!Octf.Cancel} token: {!stop_fillers}
    cancels the group, which wakes threads parked in enqueue waits (via
    each step's child token) instead of leaking them; an optional
    [deadline] bounds each filler step individually. *)

open Octf_tensor
module B = Octf.Builder

type t

val create :
  B.t ->
  ?shuffle:bool ->
  ?capacity:int ->
  ?prefetch:int ->
  name:string ->
  producers:B.output list ->
  unit ->
  t
(** The queue holds tuples with one component per producer output.
    [prefetch] adds the staging queue with that capacity; the main
    queue keeps [name] (and its metrics series) either way.
    @raise Invalid_argument on empty [producers] or [prefetch < 1]. *)

val batch : t -> B.output list
(** Dequeue one element: the training subgraph's inputs. *)

val batch_many : t -> n:int -> B.output list
(** Dequeue and stack [n] elements along a new leading axis. *)

val size : t -> B.output

val enqueue_op : t -> B.output

val close_op : t -> B.output

type fillers
(** Running filler (and, with [prefetch], pump) threads plus their
    group cancellation token. *)

val start_fillers :
  t ->
  Octf.Session.t ->
  threads:int ->
  ?steps:int ->
  ?deadline:float ->
  ?feed:(int -> (B.output * Tensor.t) list) ->
  unit ->
  fillers
(** Spawn [threads] filler threads, each running the enqueue step
    [steps] times (default: until the queue closes). [feed] supplies
    per-call feeds from the producer index (e.g. fresh synthetic
    batches). [deadline] (seconds) bounds each filler step. With a
    prefetch stage, a pump thread is started too, and when [steps] is
    bounded the stage is closed automatically after the fillers finish
    so end-of-input propagates to the main queue. *)

val join_fillers : fillers -> unit
(** Wait for the fillers (and pump) to finish on their own — bounded
    [steps] exhausted or queue closed. *)

val stop_fillers : fillers -> unit
(** Cancel the filler group and join: parked enqueue waits wake with a
    cancellation, in-flight steps stop, threads are reclaimed. *)

val close : t -> Octf.Session.t -> unit
(** Close the pipeline's upstream-most queue: blocked fillers stop;
    with a prefetch stage the pump drains it, then closes the main
    queue; trainers drain the remainder and observe end-of-input. *)
