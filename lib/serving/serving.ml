open Octf_tensor
module Session = Octf.Session
module B = Octf.Builder
module GO = Octf.Graph_optimizer
module SF = Octf.Step_failure
module Metrics = Octf.Metrics
module Cancel = Octf.Cancel

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let label name = [ ("server", name) ]

let m_requests name =
  Metrics.Counter.v ~help:"Requests submitted" ~labels:(label name)
    "octf_serving_requests_total"

let m_served name =
  Metrics.Counter.v ~help:"Requests answered successfully"
    ~labels:(label name) "octf_serving_served_total"

let m_rejected name reason =
  Metrics.Counter.v ~help:"Requests rejected at admission"
    ~labels:(("reason", reason) :: label name)
    "octf_serving_rejected_total"

let m_failed name cause =
  Metrics.Counter.v ~help:"Admitted requests that failed, by cause kind"
    ~labels:(("cause", cause) :: label name)
    "octf_serving_failed_total"

let m_queue_depth name =
  Metrics.Gauge.v ~help:"Requests waiting in the admission queue"
    ~labels:(label name) "octf_serving_queue_depth"

let m_batches name =
  Metrics.Counter.v ~help:"Batched steps dispatched" ~labels:(label name)
    "octf_serving_batches_total"

let m_batch_size name =
  Metrics.Histogram.v ~help:"Live requests coalesced per batched step"
    ~labels:(label name) "octf_serving_batch_size"

let m_request_seconds name =
  Metrics.Histogram.v ~help:"Submit-to-answer latency in seconds"
    ~labels:(label name) "octf_serving_request_seconds"

(* Registry lookups build a canonical label key per call; the per-request
   and per-batch series are resolved once at [create] and the handles
   kept on the server. Rejection/failure series keep the lookup — their
   label sets are dynamic (reason/cause) and those paths are cold. *)
type hot_metrics = {
  hm_requests : Metrics.Counter.m;
  hm_served : Metrics.Counter.m;
  hm_queue_depth : Metrics.Gauge.m;
  hm_batches : Metrics.Counter.m;
  hm_batch_size : Metrics.Histogram.m;
  hm_request_seconds : Metrics.Histogram.m;
}

let hot_metrics name =
  {
    hm_requests = m_requests name;
    hm_served = m_served name;
    hm_queue_depth = m_queue_depth name;
    hm_batches = m_batches name;
    hm_batch_size = m_batch_size name;
    hm_request_seconds = m_request_seconds name;
  }

(* ------------------------------------------------------------------ *)
(* Freeze                                                              *)

let freeze_pipeline ?(quantize = false) ?ranges values =
  (* Freeze first, re-prune so the frozen Consts (and the now-dead
     Variables) are in/out of the working set, then the standard
     pipeline over the inference subgraph. With [quantize], the int8
     pass runs last — after freezing, so weights are F32 Consts (its
     eligibility condition) — against the calibrated [ranges] lookup
     (default: none, i.e. dynamic activation quantization). *)
  let base = GO.Freeze values :: GO.Prune :: GO.default_pipeline in
  if quantize then
    base
    @ [
        GO.Quantize (Option.value ~default:(fun _ -> None) ranges); GO.Prune;
      ]
  else base

let endpoint_list outputs = List.map B.endpoint_of_output outputs

(* After the freeze pipeline ran, the inference subgraph must be a pure
   function of its placeholders: any surviving stateful operation means
   a variable the lookup could not resolve (or state the model really
   depends on), and a "frozen" server would silently read live state. *)
let verify_stateless graph ~inputs ~outputs =
  let nodes =
    Octf.Pruner.prune graph ~feeds:(endpoint_list inputs)
      ~fetches:(endpoint_list outputs) ~targets:[]
  in
  let offenders =
    List.filter_map
      (fun id ->
        let n = Octf.Graph.get graph id in
        if Octf.Node.is_stateful n then
          Some (n.Octf.Node.name ^ " (" ^ n.Octf.Node.op_type ^ ")")
        else None)
      nodes
  in
  if offenders <> [] then
    raise
      (SF.error
         (SF.Invalid_graph
            ("freeze left stateful operations in the inference subgraph \
              (uninitialized or unresolvable variables?): "
            ^ String.concat ", " offenders)))

let inference_node_count session ~inputs ~outputs =
  List.length
    (Octf.Pruner.prune (Session.graph session) ~feeds:(endpoint_list inputs)
       ~fetches:(endpoint_list outputs) ~targets:[])

let freeze ?(config = Session.Config.default) ?quantize ?ranges ~values
    ~inputs ~outputs graph =
  (* Work on a copy: the freeze pass rewrites edges in place, and the
     training graph must keep reading its live variables. *)
  let graph = Octf.Graph.copy graph in
  (* The quantize knob resolves like Session.create's: explicit arg >
     config field > OCTF_QUANTIZE > off. *)
  let quantize =
    match quantize with
    | Some b -> b
    | None -> (
        match config.Session.Config.quantize with
        | Some b -> b
        | None -> (
            match Sys.getenv_opt "OCTF_QUANTIZE" with
            | Some ("1" | "on" | "true" | "yes") -> true
            | _ -> false))
  in
  let config =
    {
      config with
      Session.Config.passes = Some (freeze_pipeline ~quantize ?ranges values);
    }
  in
  let session = Session.create ~config graph in
  (* Compile (and thereby freeze) the inference step now: every request
     then reuses the cached plan — the signature ignores shapes, so one
     plan serves every batch size. *)
  Session.precompile ~feeds:inputs session outputs;
  verify_stateless graph ~inputs ~outputs;
  session

let freeze_session ?config ?quantize ?ranges ~inputs ~outputs session =
  freeze ?config ?quantize ?ranges
    ~values:(Session.variable_values session)
    ~inputs ~outputs (Session.graph session)

let freeze_checkpoint ?config ?quantize ?ranges ~path ~inputs ~outputs graph =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (name, tensor) -> Hashtbl.replace tbl name tensor)
    (Octf.Checkpoint_format.read_all path);
  freeze ?config ?quantize ?ranges ~values:(Hashtbl.find_opt tbl) ~inputs
    ~outputs graph

(* ------------------------------------------------------------------ *)
(* Batching tensor plumbing                                            *)

let row_size shape = Array.fold_left ( * ) 1 shape

(* Stack [parts] (each of one shape) along a new leading batch axis. *)
let stack parts =
  let first = List.hd parts in
  let dt = Tensor.dtype first and shape = Tensor.shape first in
  let n = List.length parts in
  let rs = row_size shape in
  let out = Tensor.zeros dt (Array.append [| n |] shape) in
  let blit src dst_off =
    match dt with
    | Dtype.F32 | Dtype.F64 ->
        Array.blit (Tensor.float_buffer src) 0 (Tensor.float_buffer out)
          dst_off rs
    | Dtype.I32 | Dtype.I64 ->
        Array.blit (Tensor.int_buffer src) 0 (Tensor.int_buffer out) dst_off
          rs
    | Dtype.U8 ->
        Bytes.blit (Tensor.byte_buffer src) 0 (Tensor.byte_buffer out)
          dst_off rs
    | Dtype.Bool ->
        Array.blit (Tensor.bool_buffer src) 0 (Tensor.bool_buffer out)
          dst_off rs
    | Dtype.String ->
        Array.blit (Tensor.string_buffer src) 0 (Tensor.string_buffer out)
          dst_off rs
  in
  List.iteri (fun i p -> blit p (i * rs)) parts;
  out

(* Row [i] of a batched tensor, with the leading axis dropped. *)
let unstack_row batched i =
  let shape = Tensor.shape batched in
  let row_shape = Array.sub shape 1 (Array.length shape - 1) in
  let rs = row_size row_shape in
  let dt = Tensor.dtype batched in
  let out = Tensor.zeros dt row_shape in
  (match dt with
  | Dtype.F32 | Dtype.F64 ->
      Array.blit (Tensor.float_buffer batched) (i * rs)
        (Tensor.float_buffer out) 0 rs
  | Dtype.I32 | Dtype.I64 ->
      Array.blit (Tensor.int_buffer batched) (i * rs) (Tensor.int_buffer out)
        0 rs
  | Dtype.U8 ->
      Bytes.blit (Tensor.byte_buffer batched) (i * rs)
        (Tensor.byte_buffer out) 0 rs
  | Dtype.Bool ->
      Array.blit (Tensor.bool_buffer batched) (i * rs)
        (Tensor.bool_buffer out) 0 rs
  | Dtype.String ->
      Array.blit (Tensor.string_buffer batched) (i * rs)
        (Tensor.string_buffer out) 0 rs);
  out

(* ------------------------------------------------------------------ *)
(* The server                                                          *)

type request = {
  r_inputs : Tensor.t list;
  r_deadline : float option;  (* absolute, Unix.gettimeofday clock *)
  r_enqueued : float;
  r_mutex : Mutex.t;
  r_cond : Condition.t;
  mutable r_result : (Tensor.t list, SF.t) result option;
}

type stats = {
  submitted : int;
  served : int;
  rejected : int;
  failed : int;
  batches : int;
  max_batch : int;
  queue_depth : int;
}

type t = {
  name : string;
  metrics : hot_metrics;
  session : Session.t;
  inputs : B.output list;
  outputs : B.output list;
  max_batch_size : int;
  max_queue_delay : float;
  queue_capacity : int;
  default_deadline : float option;
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : request Queue.t;
  cancel : Cancel.t;  (* group token: parent of every batched step's *)
  mutable expected : (Dtype.t * int array) list option;
      (* per-example input signature, fixed by the first admitted
         request so shape rejections don't depend on batch grouping *)
  mutable running : bool;
  mutable batcher : Thread.t option;
  mutable n_submitted : int;
  mutable n_served : int;
  mutable n_rejected : int;
  mutable n_failed : int;
  mutable n_batches : int;
  mutable n_max_batch : int;
}

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let budget_of r =
  match r.r_deadline with Some d -> d -. r.r_enqueued | None -> 0.0

(* Publish one request's outcome and account for it. Never called with
   [t.mutex] held (finish takes it for the counters). *)
let finish t r result =
  Mutex.lock r.r_mutex;
  if r.r_result = None then r.r_result <- Some result;
  Condition.broadcast r.r_cond;
  Mutex.unlock r.r_mutex;
  let latency = Unix.gettimeofday () -. r.r_enqueued in
  Metrics.Histogram.observe t.metrics.hm_request_seconds latency;
  (match result with
  | Ok _ -> Metrics.Counter.incr t.metrics.hm_served
  | Error f ->
      Metrics.Counter.incr
        (m_failed t.name (SF.cause_kind f.SF.cause)));
  with_lock t (fun () ->
      match result with
      | Ok _ -> t.n_served <- t.n_served + 1
      | Error _ -> t.n_failed <- t.n_failed + 1)

let expired r ~now =
  match r.r_deadline with Some d -> d <= now | None -> false

(* Execute one coalesced batch. Requests that expired in the queue are
   rejected without running; the step itself runs under the
   longest-remaining member budget (through the session's own Cancel
   token, child of the server's group token), and members whose own
   deadline passed mid-batch are expired even though their rows were
   computed. *)
let dispatch t batch =
  let now = Unix.gettimeofday () in
  let dead, live = List.partition (fun r -> expired r ~now) batch in
  List.iter
    (fun r -> finish t r (Error (SF.v (SF.Deadline_exceeded (budget_of r)))))
    dead;
  if live <> [] then begin
    let n = List.length live in
    Metrics.Counter.incr t.metrics.hm_batches;
    Metrics.Histogram.observe t.metrics.hm_batch_size (float_of_int n);
    with_lock t (fun () ->
        t.n_batches <- t.n_batches + 1;
        if n > t.n_max_batch then t.n_max_batch <- n);
    let feeds =
      List.mapi
        (fun j input ->
          (input, stack (List.map (fun r -> List.nth r.r_inputs j) live)))
        t.inputs
    in
    let deadline =
      (* the most patient live member bounds the step; members with no
         deadline make the step unbounded *)
      List.fold_left
        (fun acc r ->
          match (acc, r.r_deadline) with
          | Some a, Some d -> Some (Float.max a (d -. now))
          | _ -> None)
        (Some 0.0) live
    in
    let deadline =
      Option.map (fun d -> Float.max d 1e-3) deadline
    in
    match
      Session.run_with_metadata
        ~options:
          (Session.Run_options.v ~feeds ?deadline ~cancel:t.cancel ())
        t.session t.outputs
    with
    | tensors, _md ->
        let now = Unix.gettimeofday () in
        let bad_shape =
          List.exists
            (fun out ->
              let s = Tensor.shape out in
              Array.length s = 0 || s.(0) <> n)
            tensors
        in
        if bad_shape then
          let f =
            SF.v
              (SF.Invalid_graph
                 "serving outputs are not batched along axis 0")
          in
          List.iter (fun r -> finish t r (Error f)) live
        else
          List.iteri
            (fun i r ->
              if expired r ~now then
                finish t r
                  (Error (SF.v (SF.Deadline_exceeded (budget_of r))))
              else
                finish t r
                  (Ok (List.map (fun out -> unstack_row out i) tensors)))
            live
    | exception Session.Run_error f ->
        List.iter (fun r -> finish t r (Error f)) live
    | exception e ->
        let f = SF.v (SF.Kernel_failed (Printexc.to_string e)) in
        List.iter (fun r -> finish t r (Error f)) live
  end

(* The batching state machine: wait for a first request, hold the batch
   open until it is full or the first member has waited
   [max_queue_delay] (polled — stdlib Condition has no timed wait),
   dispatch, repeat. On shutdown the queue backlog is failed, not
   served. *)
let rec batcher_loop t =
  Mutex.lock t.mutex;
  while t.running && Queue.is_empty t.queue do
    Condition.wait t.nonempty t.mutex
  done;
  if not t.running then begin
    let leftovers = ref [] in
    Queue.iter (fun r -> leftovers := r :: !leftovers) t.queue;
    Queue.clear t.queue;
    Metrics.Gauge.set t.metrics.hm_queue_depth 0.0;
    Mutex.unlock t.mutex;
    List.iter
      (fun r ->
        finish t r (Error (SF.v (SF.Cancelled "serving: shut down"))))
      (List.rev !leftovers)
  end
  else begin
    let window_end = (Queue.peek t.queue).r_enqueued +. t.max_queue_delay in
    (* Hold the batch open until it is full or the window closes,
       sleeping in short slices capped by the remaining window (stdlib
       [Condition] has no timed wait). *)
    let rec fill () =
      if
        t.running
        && Queue.length t.queue < t.max_batch_size
        && Unix.gettimeofday () < window_end
      then begin
        let remaining = window_end -. Unix.gettimeofday () in
        Mutex.unlock t.mutex;
        Thread.delay (Float.min 2e-4 (Float.max 1e-5 remaining));
        Mutex.lock t.mutex;
        fill ()
      end
    in
    fill ();
    let batch = ref [] in
    while List.length !batch < t.max_batch_size && not (Queue.is_empty t.queue)
    do
      batch := Queue.pop t.queue :: !batch
    done;
    Metrics.Gauge.set t.metrics.hm_queue_depth
      (float_of_int (Queue.length t.queue));
    Mutex.unlock t.mutex;
    dispatch t (List.rev !batch);
    batcher_loop t
  end

let create ?(name = "default") ?(max_batch_size = 8)
    ?(max_queue_delay = 0.002) ?(queue_capacity = 64) ?default_deadline
    ~session ~inputs ~outputs () =
  if max_batch_size < 1 then
    invalid_arg "Serving.create: max_batch_size < 1";
  if max_queue_delay < 0.0 then
    invalid_arg "Serving.create: max_queue_delay < 0";
  if queue_capacity < 1 then invalid_arg "Serving.create: queue_capacity < 1";
  if inputs = [] then invalid_arg "Serving.create: no inputs";
  if outputs = [] then invalid_arg "Serving.create: no outputs";
  (* Compile the one step every batch reuses before admitting traffic. *)
  Session.precompile ~feeds:inputs session outputs;
  let t =
    {
      name;
      metrics = hot_metrics name;
      session;
      inputs;
      outputs;
      max_batch_size;
      max_queue_delay;
      queue_capacity;
      default_deadline;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      cancel = Cancel.create ();
      expected = None;
      running = true;
      batcher = None;
      n_submitted = 0;
      n_served = 0;
      n_rejected = 0;
      n_failed = 0;
      n_batches = 0;
      n_max_batch = 0;
    }
  in
  t.batcher <- Some (Thread.create batcher_loop t);
  t

let signature_of examples =
  List.map (fun x -> (Tensor.dtype x, Tensor.shape x)) examples

let signature_mismatch expected got =
  List.length expected <> List.length got
  || List.exists2
       (fun (dt, sh) (dt', sh') -> dt <> dt' || sh <> sh')
       expected got

let submit ?deadline t examples =
  Metrics.Counter.incr t.metrics.hm_requests;
  let now = Unix.gettimeofday () in
  let r =
    {
      r_inputs = examples;
      r_deadline =
        (match (deadline, t.default_deadline) with
        | Some d, _ | None, Some d -> Some (now +. d)
        | None, None -> None);
      r_enqueued = now;
      r_mutex = Mutex.create ();
      r_cond = Condition.create ();
      r_result = None;
    }
  in
  let reject reason cause =
    with_lock t (fun () -> t.n_rejected <- t.n_rejected + 1);
    Metrics.Counter.incr (m_rejected t.name reason);
    Error (SF.v cause)
  in
  if List.length examples <> List.length t.inputs then
    reject "arity"
      (SF.Invalid_graph
         (Printf.sprintf "request has %d inputs, the model takes %d"
            (List.length examples) (List.length t.inputs)))
  else
    let admitted =
      with_lock t (fun () ->
          t.n_submitted <- t.n_submitted + 1;
          if not t.running then `Shut_down
          else
            let sg = signature_of examples in
            match t.expected with
            | Some expected when signature_mismatch expected sg ->
                `Bad_signature
            | _ ->
                if Queue.length t.queue >= t.queue_capacity then
                  `Overloaded (Queue.length t.queue)
                else begin
                  if t.expected = None then t.expected <- Some sg;
                  Queue.add r t.queue;
                  let depth = Queue.length t.queue in
                  Metrics.Gauge.set t.metrics.hm_queue_depth
                    (float_of_int depth);
                  (* The batcher only blocks on [nonempty] when the
                     queue is empty — later submits need no wakeup. *)
                  if depth = 1 then Condition.signal t.nonempty;
                  `Admitted
                end)
    in
    match admitted with
    | `Admitted -> Ok r
    | `Shut_down ->
        reject "shutdown" (SF.Cancelled "serving: shut down")
    | `Bad_signature ->
        reject "signature"
          (SF.Invalid_graph
             "request tensor dtypes/shapes do not match the served \
              signature")
    | `Overloaded depth ->
        reject "overloaded"
          (SF.Overloaded
             (Printf.sprintf
                "admission queue at high-watermark (%d waiting, capacity \
                 %d)"
                depth t.queue_capacity))

let await r =
  Mutex.lock r.r_mutex;
  while r.r_result = None do
    Condition.wait r.r_cond r.r_mutex
  done;
  let result = Option.get r.r_result in
  Mutex.unlock r.r_mutex;
  result

let infer ?deadline t examples =
  match submit ?deadline t examples with
  | Error f -> Error f
  | Ok r -> await r

let shutdown t =
  let was_running =
    with_lock t (fun () ->
        let w = t.running in
        t.running <- false;
        Condition.broadcast t.nonempty;
        w)
  in
  if was_running then begin
    (* Wake any step blocked mid-batch; queued requests are failed by
       the batcher's shutdown sweep. *)
    Cancel.cancel t.cancel ~reason:"serving: shut down";
    match t.batcher with Some th -> Thread.join th | None -> ()
  end

let stats t =
  with_lock t (fun () ->
      {
        submitted = t.n_submitted;
        served = t.n_served;
        rejected = t.n_rejected;
        failed = t.n_failed;
        batches = t.n_batches;
        max_batch = t.n_max_batch;
        queue_depth = Queue.length t.queue;
      })

let session t = t.session
