(** Inference serving: graph freeze + dynamic request micro-batching.

    The north-star deployment (ROADMAP item 2, and TensorFlow Serving
    in the 2015 whitepaper): a trained model is {e frozen} — variables
    folded into constants, the graph pruned to the inference subgraph,
    the step pre-compiled — and a server multiplexes many concurrent
    single-example requests onto it by coalescing them into batched
    steps along a leading batch axis.

    {2 Freeze}

    {!freeze} copies the graph ({!Octf.Graph.copy}, so the training
    graph is untouched), runs the
    {!Octf.Graph_optimizer.Freeze} pass with a variable-name -> tensor
    lookup (a live session's {!Octf.Session.variable_values} or a
    {!Octf.Checkpoint_format} file), then constant-folds, merges and
    prunes. The resulting session's step cache holds one pre-compiled
    read-only plan — the cache signature ignores tensor shapes, so the
    same plan serves every batch size. Freezing fails loudly if any
    stateful operation survives in the inference subgraph.

    {2 Batching}

    {!submit} admits one single-example request (one tensor per model
    input, {e without} the batch dimension). A background batcher
    coalesces admitted requests: a batch is dispatched as one
    [Session.run] the moment it reaches [max_batch_size], or when its
    oldest member has waited [max_queue_delay]. Each batched step runs
    under the longest remaining per-request budget via the session's
    {!Octf.Cancel} token (a child of the server's group token, so
    {!shutdown} cancels mid-flight steps); members whose own deadline
    passed are answered [Deadline_exceeded] — before dispatch if they
    expired in the queue, after it if they expired mid-batch.

    {2 Overload}

    When the admission queue holds [queue_capacity] requests, further
    {!submit}s are shed with a structured {!Octf.Step_failure.Overloaded}
    rejection — clients back off instead of growing an unbounded queue.

    Every server exports [octf_serving_*] metrics labeled with its
    [name]: requests/served/rejected/failed counters, queue-depth
    gauge, batch-size and latency histograms, batches counter. *)

open Octf_tensor

(** {1 Freezing} *)

val freeze :
  ?config:Octf.Session.Config.t ->
  ?quantize:bool ->
  ?ranges:(string -> (float * float) option) ->
  values:(string -> Tensor.t option) ->
  inputs:Octf.Builder.output list ->
  outputs:Octf.Builder.output list ->
  Octf.Graph.t ->
  Octf.Session.t
(** [freeze ~values ~inputs ~outputs graph] builds a read-only
    inference session over a frozen copy of [graph]. [values] resolves
    a variable name to its trained tensor; [inputs] are the request
    placeholders, [outputs] the served fetches. [config]'s [passes]
    field is overridden by the freeze pipeline.

    With [~quantize:true] (resolution: explicit argument, then
    [config]'s [quantize] field, then [OCTF_QUANTIZE], default off)
    the pipeline ends with the {!Octf.Graph_optimizer.Quantize} pass:
    eligible MatMul/Conv2D islands run on int8 codes with 4x-smaller
    weight constants. [ranges] is the calibrated activation-range
    lookup (see {!Octf.Quant_calibration.ranges}); omitted, islands
    quantize their inputs dynamically per batch.
    @raise Octf.Step_failure.Error ([Invalid_graph]) if stateful
    operations survive in the pruned inference subgraph (an
    unresolvable variable, or state the model really depends on). *)

val freeze_session :
  ?config:Octf.Session.Config.t ->
  ?quantize:bool ->
  ?ranges:(string -> (float * float) option) ->
  inputs:Octf.Builder.output list ->
  outputs:Octf.Builder.output list ->
  Octf.Session.t ->
  Octf.Session.t
(** Freeze from a live session's current variable values
    ({!Octf.Session.variable_values}). *)

val freeze_checkpoint :
  ?config:Octf.Session.Config.t ->
  ?quantize:bool ->
  ?ranges:(string -> (float * float) option) ->
  path:string ->
  inputs:Octf.Builder.output list ->
  outputs:Octf.Builder.output list ->
  Octf.Graph.t ->
  Octf.Session.t
(** Freeze from a checkpoint file written by [Octf_train.Saver].
    @raise Octf.Checkpoint_format.Corrupt on unreadable files. *)

val inference_node_count :
  Octf.Session.t ->
  inputs:Octf.Builder.output list ->
  outputs:Octf.Builder.output list ->
  int
(** Size of the pruned inference subgraph in [session]'s graph —
    reporting hook for the [serve] CLI ("frozen 42 of 180 nodes"). *)

(** {1 Serving} *)

type t
(** A server: one frozen (or plain) session plus the admission queue
    and its batcher thread. *)

type request
(** An admitted in-flight request; redeem with {!await}. *)

type stats = {
  submitted : int;  (** admission attempts, including rejected *)
  served : int;  (** answered with tensors *)
  rejected : int;  (** shed at admission (overload, shutdown, shape) *)
  failed : int;  (** admitted but failed (deadline, step failure) *)
  batches : int;  (** batched steps dispatched *)
  max_batch : int;  (** largest batch dispatched *)
  queue_depth : int;  (** requests waiting right now *)
}

val create :
  ?name:string ->
  ?max_batch_size:int ->
  ?max_queue_delay:float ->
  ?queue_capacity:int ->
  ?default_deadline:float ->
  session:Octf.Session.t ->
  inputs:Octf.Builder.output list ->
  outputs:Octf.Builder.output list ->
  unit ->
  t
(** Start a server over [session] (typically from {!freeze}) serving
    [outputs] from per-example [inputs]. [name] labels the
    [octf_serving_*] metrics (default ["default"]). [max_batch_size]
    (default 8) and [max_queue_delay] (seconds, default 2ms) bound the
    coalescing window; [max_batch_size:1] disables batching.
    [queue_capacity] (default 64) is the admission high-watermark.
    [default_deadline] (seconds, relative) applies to requests that
    pass none. The serving step is pre-compiled here, before any
    traffic.
    @raise Invalid_argument on non-positive sizes or empty
    input/output lists. *)

val submit :
  ?deadline:float -> t -> Tensor.t list -> (request, Octf.Step_failure.t) result
(** Admit one request: one tensor per model input, each {e without}
    the batch dimension (a [12x12x1] image for a [Nx12x12x1]
    placeholder). [deadline] is relative seconds from now. Returns
    [Error] without executing anything when the request is shed:
    [Overloaded] at the queue high-watermark, [Invalid_graph] for an
    arity/dtype/shape mismatch with the served signature (fixed by the
    first admitted request), [Cancelled] after {!shutdown}. *)

val await : request -> (Tensor.t list, Octf.Step_failure.t) result
(** Block until the request's batch ran (or it was shed). [Error]
    causes: [Deadline_exceeded] (in queue or mid-batch), [Cancelled]
    (shutdown), or whatever the batched step failed with. Never
    raises; may be called from any thread, repeatedly. *)

val infer :
  ?deadline:float ->
  t ->
  Tensor.t list ->
  (Tensor.t list, Octf.Step_failure.t) result
(** [submit] + [await]. *)

val shutdown : t -> unit
(** Stop admitting, cancel the in-flight batched step through the
    group token, fail every queued request with [Cancelled], and join
    the batcher. Idempotent. *)

val stats : t -> stats

val session : t -> Octf.Session.t
