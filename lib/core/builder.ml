open Octf_tensor

type t = {
  g : Graph.t;
  mutable device_stack : Device.spec list;
  mutable scope_stack : string list;  (* innermost first *)
  mutable control_stack : Node.endpoint list;
  mutable loop_counter : int;
}

type output = { node : Node.t; out : int }

let create () =
  {
    g = Graph.create ();
    device_stack = [];
    scope_stack = [];
    control_stack = [];
    loop_counter = 0;
  }

let graph b = b.g

let output ?(index = 0) node = { node; out = index }

let endpoint_of_output o = Node.endpoint o.node.Node.id o.out

let current_device b =
  List.fold_left
    (fun acc sp -> Device.merge_specs acc sp)
    Device.unconstrained b.device_stack

let scoped_name b base =
  match b.scope_stack with
  | [] -> base
  | scopes -> String.concat "/" (List.rev scopes) ^ "/" ^ base

let with_device b spec f =
  let parsed = Device.spec_of_string spec in
  b.device_stack <- parsed :: b.device_stack;
  Fun.protect
    ~finally:(fun () -> b.device_stack <- List.tl b.device_stack)
    f

let with_name_scope b scope f =
  b.scope_stack <- scope :: b.scope_stack;
  Fun.protect
    ~finally:(fun () -> b.scope_stack <- List.tl b.scope_stack)
    f

let with_control_dependencies b outputs f =
  let eps = List.map endpoint_of_output outputs in
  let saved = b.control_stack in
  b.control_stack <- eps @ saved;
  Fun.protect ~finally:(fun () -> b.control_stack <- saved) f

let op b ?name ?(attrs = []) ?device ?(control_inputs = []) ~op_type inputs =
  let device_spec =
    match device with
    | None -> current_device b
    | Some d -> Device.merge_specs (current_device b) (Device.spec_of_string d)
  in
  let name = Option.map (scoped_name b) name in
  let name =
    match name with Some n -> Some n | None -> Some (scoped_name b op_type)
  in
  let controls =
    List.map (fun o -> o.node.Node.id) control_inputs
    @ List.map (fun (e : Node.endpoint) -> e.node_id) b.control_stack
  in
  Graph.add_node b.g ?name
    ~inputs:(List.map endpoint_of_output inputs)
    ~control_inputs:(List.sort_uniq compare controls)
    ~attrs ~device:device_spec ~op_type ()

let op1 b ?name ?attrs ?device ?control_inputs ~op_type inputs =
  output (op b ?name ?attrs ?device ?control_inputs ~op_type inputs)

let const b ?name tensor =
  op1 b ?name ~attrs:[ ("value", Attr.Tensor tensor) ] ~op_type:"Const" []

let const_f b ?name v = const b ?name (Tensor.scalar_f v)

let const_i b ?name v = const b ?name (Tensor.scalar_i v)

let const_s b ?name v = const b ?name (Tensor.scalar_s v)

let placeholder b ?name ?(shape = Shape.scalar) dtype =
  op1 b ?name
    ~attrs:[ ("dtype", Attr.Dtype dtype); ("shape", Attr.Shape shape) ]
    ~op_type:"Placeholder" []

let variable b ?name ?device ~dtype ~shape () =
  op1 b ?name ?device
    ~attrs:[ ("dtype", Attr.Dtype dtype); ("shape", Attr.Shape shape) ]
    ~op_type:"Variable" []

let fill b ?name shape v =
  op1 b ?name
    ~attrs:[ ("shape", Attr.Shape shape); ("value", Attr.Float v) ]
    ~op_type:"Fill" []

let random_uniform b ?name ?(lo = 0.0) ?(hi = 1.0) shape =
  op1 b ?name
    ~attrs:
      [ ("shape", Attr.Shape shape); ("lo", Attr.Float lo);
        ("hi", Attr.Float hi) ]
    ~op_type:"RandomUniform" []

let random_normal b ?name ?(mean = 0.0) ?(stddev = 1.0) shape =
  op1 b ?name
    ~attrs:
      [ ("shape", Attr.Shape shape); ("mean", Attr.Float mean);
        ("stddev", Attr.Float stddev) ]
    ~op_type:"RandomNormal" []

let read b ?name var = op1 b ?name ~op_type:"Read" [ var ]

let assign b ?name var v = op1 b ?name ~op_type:"Assign" [ var; v ]

let assign_add b ?name var v = op1 b ?name ~op_type:"AssignAdd" [ var; v ]

let assign_sub b ?name var v = op1 b ?name ~op_type:"AssignSub" [ var; v ]

let scatter_add b ?name var indices updates =
  op1 b ?name ~op_type:"ScatterAdd" [ var; indices; updates ]

let scatter_sub b ?name var indices updates =
  op1 b ?name ~op_type:"ScatterSub" [ var; indices; updates ]

let scatter_update b ?name var indices updates =
  op1 b ?name ~op_type:"ScatterUpdate" [ var; indices; updates ]

let count_up b ?name var = op1 b ?name ~op_type:"CountUp" [ var ]

let binop op_type b ?name x y = op1 b ?name ~op_type [ x; y ]

let unop op_type b ?name x = op1 b ?name ~op_type [ x ]

let add b = binop "Add" b

let sub b = binop "Sub" b

let mul b = binop "Mul" b

let div b = binop "Div" b

let pow b = binop "Pow" b

let modulo b = binop "Mod" b

let maximum b = binop "Maximum" b

let minimum b = binop "Minimum" b

let neg b = unop "Neg" b

let abs b = unop "Abs" b

let sign b = unop "Sign" b

let exp b = unop "Exp" b

let log b = unop "Log" b

let sqrt b = unop "Sqrt" b

let square b = unop "Square" b

let reciprocal b = unop "Reciprocal" b

let add_n b ?name inputs = op1 b ?name ~op_type:"AddN" inputs

let matmul b ?name ?(transpose_a = false) ?(transpose_b = false) x y =
  op1 b ?name
    ~attrs:
      [ ("transpose_a", Attr.Bool transpose_a);
        ("transpose_b", Attr.Bool transpose_b) ]
    ~op_type:"MatMul" [ x; y ]

let equal b = binop "Equal" b

let less b = binop "Less" b

let greater b = binop "Greater" b

let greater_equal b = binop "GreaterEqual" b

let select b ?name cond x y = op1 b ?name ~op_type:"Select" [ cond; x; y ]

let cast b ?name x dtype =
  op1 b ?name ~attrs:[ ("dtype", Attr.Dtype dtype) ] ~op_type:"Cast" [ x ]

let argmax b ?name x ~axis =
  op1 b ?name ~attrs:[ ("axis", Attr.Int axis) ] ~op_type:"ArgMax" [ x ]

let reduction op_type b ?name ?(axes = []) ?(keep_dims = false) x =
  op1 b ?name
    ~attrs:[ ("axes", Attr.Ints axes); ("keep_dims", Attr.Bool keep_dims) ]
    ~op_type [ x ]

let reduce_sum b = reduction "ReduceSum" b

let reduce_mean b = reduction "ReduceMean" b

let reduce_max b = reduction "ReduceMax" b

let shape_of b ?name x = op1 b ?name ~op_type:"ShapeOf" [ x ]

let sum_to_shape b ?name x target =
  op1 b ?name ~op_type:"SumToShape" [ x; target ]

let zeros_like b ?name x = op1 b ?name ~op_type:"ZerosLike" [ x ]

let ones_like b ?name x = op1 b ?name ~op_type:"OnesLike" [ x ]

let identity b ?name x = op1 b ?name ~op_type:"Identity" [ x ]

let stop_gradient b ?name x = op1 b ?name ~op_type:"StopGradient" [ x ]

let reshape b ?name x shape =
  op1 b ?name ~attrs:[ ("shape", Attr.Shape shape) ] ~op_type:"Reshape" [ x ]

let expand_dims b ?name x ~axis =
  op1 b ?name ~attrs:[ ("axis", Attr.Int axis) ] ~op_type:"ExpandDims" [ x ]

let reshape_like b ?name x like =
  op1 b ?name ~op_type:"ReshapeLike" [ x; like ]

let transpose b ?name ?perm x =
  let attrs =
    match perm with
    | None -> []
    | Some p -> [ ("perm", Attr.Ints (Array.to_list p)) ]
  in
  op1 b ?name ~attrs ~op_type:"Transpose" [ x ]

let concat b ?name ~axis inputs =
  op1 b ?name ~attrs:[ ("axis", Attr.Int axis) ] ~op_type:"Concat" inputs

let slice b ?name x ~begin_ ~size =
  op1 b ?name
    ~attrs:
      [ ("begin", Attr.Ints (Array.to_list begin_));
        ("size", Attr.Ints (Array.to_list size)) ]
    ~op_type:"Slice" [ x ]

let pad b ?name x ~paddings =
  let flat =
    Array.to_list paddings |> List.concat_map (fun (a, c) -> [ a; c ])
  in
  op1 b ?name ~attrs:[ ("paddings", Attr.Ints flat) ] ~op_type:"Pad" [ x ]

let tile b ?name x ~multiples =
  op1 b ?name
    ~attrs:[ ("multiples", Attr.Ints (Array.to_list multiples)) ]
    ~op_type:"Tile" [ x ]

let pack b ?name inputs = op1 b ?name ~op_type:"Pack" inputs

let unpack b ?name x ~num =
  let node = op b ?name ~attrs:[ ("num", Attr.Int num) ] ~op_type:"Unpack" [ x ] in
  List.init num (fun i -> output ~index:i node)

let split b ?name x ~axis ~num =
  let node =
    op b ?name
      ~attrs:[ ("axis", Attr.Int axis); ("num", Attr.Int num) ]
      ~op_type:"Split" [ x ]
  in
  List.init num (fun i -> output ~index:i node)

let one_hot b ?name x ~depth =
  op1 b ?name ~attrs:[ ("depth", Attr.Int depth) ] ~op_type:"OneHot" [ x ]

let gather b ?name params indices =
  op1 b ?name ~op_type:"Gather" [ params; indices ]

let range_like b ?name x = op1 b ?name ~op_type:"RangeLike" [ x ]

let random_indices b ?name ~n ~range () =
  op1 b ?name
    ~attrs:[ ("n", Attr.Int n); ("range", Attr.Int range) ]
    ~op_type:"RandomIndices" []

let dynamic_partition b ?name data partitions ~num =
  let node =
    op b ?name
      ~attrs:[ ("num_partitions", Attr.Int num) ]
      ~op_type:"DynamicPartition" [ data; partitions ]
  in
  List.init num (fun i -> output ~index:i node)

let dynamic_stitch b ?name indices data =
  op1 b ?name
    ~attrs:[ ("n", Attr.Int (List.length indices)) ]
    ~op_type:"DynamicStitch" (indices @ data)

let scatter_into_shape b ?name shape indices updates =
  op1 b ?name ~op_type:"ScatterIntoShape" [ shape; indices; updates ]

let relu b = unop "Relu" b

let relu_grad b ?name dy x = op1 b ?name ~op_type:"ReluGrad" [ dy; x ]

let sigmoid b = unop "Sigmoid" b

let tanh b = unop "Tanh" b

let softmax b = unop "Softmax" b

let log_softmax b = unop "LogSoftmax" b

let softmax_cross_entropy b ?name ~logits ~labels () =
  let node = op b ?name ~op_type:"SoftmaxCrossEntropy" [ logits; labels ] in
  (output ~index:0 node, output ~index:1 node)

let padding_attr = function
  | `Same -> ("padding", Attr.String "SAME")
  | `Valid -> ("padding", Attr.String "VALID")

let conv2d b ?name ~strides ~padding input filter =
  let sh, sw = strides in
  op1 b ?name
    ~attrs:[ ("strides", Attr.Ints [ sh; sw ]); padding_attr padding ]
    ~op_type:"Conv2D" [ input; filter ]

let pool op_type b ?name ~ksize ~strides ~padding input =
  let kh, kw = ksize and sh, sw = strides in
  op1 b ?name
    ~attrs:
      [ ("ksize", Attr.Ints [ kh; kw ]); ("strides", Attr.Ints [ sh; sw ]);
        padding_attr padding ]
    ~op_type [ input ]

let max_pool b = pool "MaxPool" b

let avg_pool b = pool "AvgPool" b

let quantize b ?name x =
  let node = op b ?name ~op_type:"Quantize" [ x ] in
  (output ~index:0 node, output ~index:1 node, output ~index:2 node)

let dequantize b ?name q lo hi =
  op1 b ?name ~op_type:"Dequantize" [ q; lo; hi ]

let quantized_matmul b ?name (qa, a_lo, a_hi) (qb, b_lo, b_hi) =
  op1 b ?name ~op_type:"QuantizedMatMul" [ qa; a_lo; a_hi; qb; b_lo; b_hi ]

let quantize_range b ?name ~lo ~hi x =
  let node =
    op b ?name
      ~attrs:[ ("lo", Attr.Float lo); ("hi", Attr.Float hi) ]
      ~op_type:"QuantizeRange" [ x ]
  in
  (output ~index:0 node, output ~index:1 node, output ~index:2 node)

let quantized_conv2d b ?name ~strides ~padding (qi, i_lo, i_hi)
    (qf, f_lo, f_hi) =
  let sh, sw = strides in
  op1 b ?name
    ~attrs:[ ("strides", Attr.Ints [ sh; sw ]); padding_attr padding ]
    ~op_type:"QuantizedConv2D" [ qi; i_lo; i_hi; qf; f_lo; f_hi ]

(* Codes-out contractions: epilogue and calibrated output range ride as
   attrs (see Quant_kernels); a bias epilogue appends the float bias
   vector as input 6. *)
let q_attrs ~epilogue ~out_range =
  let ep =
    match epilogue with
    | `None -> "none"
    | `Bias -> "bias"
    | `Relu -> "relu"
    | `Bias_relu -> "bias_relu"
  in
  ("epilogue", Attr.String ep)
  ::
  (match out_range with
  | None -> []
  | Some (lo, hi) -> [ ("out_lo", Attr.Float lo); ("out_hi", Attr.Float hi) ])

let q_outputs node =
  (output ~index:0 node, output ~index:1 node, output ~index:2 node)

let quantized_matmul_q b ?name ?(epilogue = `None) ?out_range ?bias
    (qa, a_lo, a_hi) (qb, b_lo, b_hi) =
  let inputs =
    [ qa; a_lo; a_hi; qb; b_lo; b_hi ]
    @ match bias with None -> [] | Some bv -> [ bv ]
  in
  q_outputs
    (op b ?name ~attrs:(q_attrs ~epilogue ~out_range)
       ~op_type:"QuantizedMatMulQ" inputs)

let quantized_conv2d_q b ?name ?(epilogue = `None) ?out_range ?bias ~strides
    ~padding (qi, i_lo, i_hi) (qf, f_lo, f_hi) =
  let sh, sw = strides in
  let inputs =
    [ qi; i_lo; i_hi; qf; f_lo; f_hi ]
    @ match bias with None -> [] | Some bv -> [ bv ]
  in
  q_outputs
    (op b ?name
       ~attrs:
         (("strides", Attr.Ints [ sh; sw ])
         :: padding_attr padding
         :: q_attrs ~epilogue ~out_range)
       ~op_type:"QuantizedConv2DQ" inputs)

let fifo_queue b ?name ~capacity ~num_components () =
  op1 b ?name
    ~attrs:
      [ ("capacity", Attr.Int capacity);
        ("num_components", Attr.Int num_components) ]
    ~op_type:"FIFOQueue" []

let random_shuffle_queue b ?name ?(seed = 0) ~capacity ~num_components () =
  op1 b ?name
    ~attrs:
      [ ("capacity", Attr.Int capacity);
        ("num_components", Attr.Int num_components); ("seed", Attr.Int seed) ]
    ~op_type:"RandomShuffleQueue" []

let enqueue b ?name queue components =
  output (op b ?name ~op_type:"Enqueue" (queue :: components))

let enqueue_many b ?name queue components =
  output (op b ?name ~op_type:"EnqueueMany" (queue :: components))

let dequeue b ?name queue ~num_components =
  let node =
    op b ?name
      ~attrs:[ ("num_components", Attr.Int num_components) ]
      ~op_type:"Dequeue" [ queue ]
  in
  List.init num_components (fun i -> output ~index:i node)

let dequeue_many b ?name queue ~n ~num_components =
  let node =
    op b ?name
      ~attrs:
        [ ("n", Attr.Int n); ("num_components", Attr.Int num_components) ]
      ~op_type:"DequeueMany" [ queue ]
  in
  List.init num_components (fun i -> output ~index:i node)

let queue_close b ?name queue = output (op b ?name ~op_type:"QueueClose" [ queue ])

let queue_size b ?name queue = op1 b ?name ~op_type:"QueueSize" [ queue ]

let save b ?name ~filename entries =
  let names = List.map fst entries in
  let tensors = List.map snd entries in
  output
    (op b ?name
       ~attrs:[ ("tensor_names", Attr.Strings names) ]
       ~op_type:"Save" (filename :: tensors))

let tensor_array b ?name () = op1 b ?name ~op_type:"TensorArray" []

let tensor_array_write b ?name handle index v =
  op1 b ?name ~op_type:"TensorArrayWrite" [ handle; index; v ]

let tensor_array_read b ?name handle index =
  op1 b ?name ~op_type:"TensorArrayRead" [ handle; index ]

let tensor_array_size b ?name handle =
  op1 b ?name ~op_type:"TensorArraySize" [ handle ]

let tensor_array_stack b ?name handle =
  op1 b ?name ~op_type:"TensorArrayStack" [ handle ]

let record_reader b ?name ~files () =
  op1 b ?name ~attrs:[ ("files", Attr.Strings files) ] ~op_type:"RecordReader"
    []

let read_record b ?name reader = op1 b ?name ~op_type:"ReadRecord" [ reader ]

let decode_example b ?name record ~features =
  let node =
    op b ?name
      ~attrs:[ ("tensor_names", Attr.Strings features) ]
      ~op_type:"DecodeExample" [ record ]
  in
  List.mapi (fun i _ -> output ~index:i node) features

let restore b ?name ~filename names =
  let node =
    op b ?name
      ~attrs:[ ("tensor_names", Attr.Strings names) ]
      ~op_type:"Restore" [ filename ]
  in
  List.mapi (fun i _ -> output ~index:i node) names

let no_op b ?name ?(control_inputs = []) () =
  output (op b ?name ~control_inputs ~op_type:"NoOp" [])

let group b ?name deps = no_op b ?name ~control_inputs:deps ()

let switch b ?name data pred =
  let node = op b ?name ~op_type:"Switch" [ data; pred ] in
  (output ~index:0 node, output ~index:1 node)

let merge b ?name inputs = op1 b ?name ~op_type:"Merge" inputs

let cond b ?name pred ~inputs ~then_ ~else_ =
  if inputs = [] then invalid_arg "Builder.cond: needs at least one input";
  let base = Option.value ~default:"cond" name in
  with_name_scope b base (fun () ->
      let switched = List.map (fun x -> switch b x pred) inputs in
      let false_side = List.map fst switched in
      let true_side = List.map snd switched in
      let then_outs = with_name_scope b "then" (fun () -> then_ b true_side) in
      let else_outs = with_name_scope b "else" (fun () -> else_ b false_side) in
      if List.length then_outs <> List.length else_outs then
        invalid_arg "Builder.cond: branches return different arities";
      (* Gate each branch result on that branch's pivot so results that do
         not data-depend on a switched input still die with the branch.
         Control deadness is node-level, and a Switch node always has one
         live output, so the pivot is an Identity of the branch side —
         that node is dead exactly when the branch is untaken. *)
      let gate pivot outs =
        let pivot_id = op1 b ~op_type:"Identity" [ pivot ] in
        List.map
          (fun o ->
            op1 b ~control_inputs:[ pivot_id ] ~op_type:"Identity" [ o ])
          outs
      in
      let then_outs = gate (List.hd true_side) then_outs in
      let else_outs = gate (List.hd false_side) else_outs in
      (* Annotate each Merge with its predicate so Gradients can build
         the backward conditional (grad of Merge = Switch of the
         incoming gradient on the same predicate, §4.1). *)
      let pred_attrs =
        [
          ("pred_node", Attr.Int pred.node.Node.id);
          ("pred_index", Attr.Int pred.out);
        ]
      in
      List.map2
        (fun t e -> op1 b ~attrs:pred_attrs ~op_type:"Merge" [ t; e ])
        then_outs else_outs)

let enter b ?name ~frame ?(is_constant = false) x =
  op1 b ?name
    ~attrs:
      [ ("frame_name", Attr.String frame);
        ("is_constant", Attr.Bool is_constant) ]
    ~op_type:"Enter" [ x ]

let exit_ b ?name x = op1 b ?name ~op_type:"Exit" [ x ]

let next_iteration b ?name x = op1 b ?name ~op_type:"NextIteration" [ x ]

let loop_cond b ?name x = op1 b ?name ~op_type:"LoopCond" [ x ]

let while_loop b ?name ?(invariants = []) ~cond:cond_fn ~body init =
  let frame =
    match name with
    | Some n -> n
    | None ->
        b.loop_counter <- b.loop_counter + 1;
        Printf.sprintf "while_%d" b.loop_counter
  in
  with_name_scope b frame (fun () ->
      let enters = List.map (fun x -> enter b ~frame x) init in
      let const_enters =
        List.map (fun x -> enter b ~frame ~is_constant:true x) invariants
      in
      (* Merge each loop variable with its (future) NextIteration value;
         slot 1 is a self-placeholder patched below. *)
      let merges = List.map (fun e -> merge b [ e; e ]) enters in
      let pred = cond_fn b (merges @ const_enters) in
      let lc = loop_cond b pred in
      let switched = List.map (fun m -> switch b m lc) merges in
      let exits = List.map (fun (f, _) -> exit_ b f) switched in
      (* The body sees the live loop variables followed by the
         constant-entered invariants. *)
      let body_inputs = List.map snd switched @ const_enters in
      let next = body b body_inputs in
      if List.length next <> List.length init then
        invalid_arg "Builder.while_loop: body arity mismatch";
      let nis = List.map (fun x -> next_iteration b x) next in
      List.iter2
        (fun m ni ->
          Graph.set_input b.g ~node_id:m.node.Node.id ~slot:1
            (endpoint_of_output ni))
        merges nis;
      exits)
