open Octf_tensor

type variable = {
  var_name : string;
  var_dtype : Dtype.t;
  var_shape : Shape.t;
  mutable value : Tensor.t option;
  mutable version : int;
  var_mutex : Mutex.t;
}

type iterator = {
  it_name : string;
  mutable it_records : string list;
  it_mutex : Mutex.t;
}

type tensor_array = {
  ta_name : string;
  mutable ta_items : Tensor.t option array;
  ta_mutex : Mutex.t;
}

type t =
  | Variable of variable
  | Queue of Queue_impl.t
  | Iterator of iterator
  | Tensor_array of tensor_array

let make_variable ~name ~dtype ~shape =
  { var_name = name; var_dtype = dtype; var_shape = shape; value = None;
    version = 0; var_mutex = Mutex.create () }

let with_lock v f =
  Mutex.lock v.var_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock v.var_mutex) f

let variable_read v =
  with_lock v (fun () ->
      match v.value with
      | Some t -> t
      | None ->
          failwith
            (Printf.sprintf "variable %S read before initialization" v.var_name))

let check_compatible v t =
  if not (Dtype.equal (Tensor.dtype t) v.var_dtype) then
    invalid_arg
      (Printf.sprintf "variable %S: assigning %s to %s" v.var_name
         (Dtype.to_string (Tensor.dtype t))
         (Dtype.to_string v.var_dtype));
  if Shape.rank v.var_shape > 0 && not (Shape.equal (Tensor.shape t) v.var_shape)
  then
    invalid_arg
      (Printf.sprintf "variable %S: assigning shape %s to %s" v.var_name
         (Shape.to_string (Tensor.shape t))
         (Shape.to_string v.var_shape))

let variable_assign v t =
  check_compatible v t;
  with_lock v (fun () ->
      v.value <- Some (Tensor.copy t);
      v.version <- v.version + 1)

let variable_update v f =
  with_lock v (fun () ->
      match v.value with
      | None ->
          failwith
            (Printf.sprintf "variable %S updated before initialization"
               v.var_name)
      | Some old ->
          let fresh = f old in
          v.value <- Some fresh;
          v.version <- v.version + 1;
          fresh)

let variable_version v = with_lock v (fun () -> v.version)

let variable_peek v =
  with_lock v (fun () ->
      match v.value with
      | None -> None
      | Some t -> Some (t, v.version))

let make_iterator ~name ~records =
  { it_name = name; it_records = records; it_mutex = Mutex.create () }

let iterator_next it =
  Mutex.lock it.it_mutex;
  let r =
    match it.it_records with
    | [] -> None
    | x :: rest ->
        it.it_records <- rest;
        Some x
  in
  Mutex.unlock it.it_mutex;
  r

let make_tensor_array ~name =
  { ta_name = name; ta_items = [||]; ta_mutex = Mutex.create () }

let ta_lock ta f =
  Mutex.lock ta.ta_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock ta.ta_mutex) f

let tensor_array_write ta index v =
  if index < 0 then invalid_arg "tensor_array_write: negative index";
  ta_lock ta (fun () ->
      let cap = Array.length ta.ta_items in
      if index >= cap then begin
        let fresh = Array.make (max 8 (2 * (index + 1))) None in
        Array.blit ta.ta_items 0 fresh 0 cap;
        ta.ta_items <- fresh
      end;
      match ta.ta_items.(index) with
      | Some _ ->
          invalid_arg
            (Printf.sprintf "tensor array %S: double write at %d" ta.ta_name
               index)
      | None -> ta.ta_items.(index) <- Some v)

let tensor_array_read ta index =
  ta_lock ta (fun () ->
      match
        if index >= 0 && index < Array.length ta.ta_items then
          ta.ta_items.(index)
        else None
      with
      | Some v -> v
      | None ->
          failwith
            (Printf.sprintf "tensor array %S: read of unwritten index %d"
               ta.ta_name index))

let tensor_array_size ta =
  ta_lock ta (fun () ->
      let hi = ref 0 in
      Array.iteri
        (fun i v -> if v <> None then hi := max !hi (i + 1))
        ta.ta_items;
      !hi)

let tensor_array_stack ta =
  let size = tensor_array_size ta in
  ta_lock ta (fun () ->
      List.init size (fun i ->
          match ta.ta_items.(i) with
          | Some v -> v
          | None ->
              failwith
                (Printf.sprintf "tensor array %S: hole at index %d" ta.ta_name
                   i)))

let name = function
  | Variable v -> v.var_name
  | Queue q -> Queue_impl.name q
  | Iterator it -> it.it_name
  | Tensor_array ta -> ta.ta_name

let pp fmt = function
  | Variable v ->
      Format.fprintf fmt "variable:%s(%s %s)" v.var_name
        (Dtype.to_string v.var_dtype)
        (Shape.to_string v.var_shape)
  | Queue q -> Format.fprintf fmt "queue:%s" (Queue_impl.name q)
  | Iterator it ->
      Format.fprintf fmt "iterator:%s(%d records left)" it.it_name
        (List.length it.it_records)
  | Tensor_array ta ->
      Format.fprintf fmt "tensor_array:%s(%d)" ta.ta_name
        (tensor_array_size ta)
