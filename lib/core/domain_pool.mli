(** A process-wide pool of OCaml 5 domains for kernel execution.

    The parallel scheduler (see {!Scheduler}) dispatches ready,
    non-blocking kernels onto this pool so independent branches of a
    dataflow graph run on distinct cores — the inter-op parallelism the
    paper's executor gets from each device's threadpool (§3.3, §5).

    One pool is shared by every session, partition and concurrent step in
    the process: worker domains are a hardware resource, not a per-step
    one, and OCaml 5 performs best with at most one domain per core. The
    pool is created lazily on first {!submit}, sized from
    [Domain.recommended_domain_count () - 1] (the coordinating thread
    keeps one core busy), clamped to at least one worker, and shut down
    via [at_exit].

    Tasks must not block indefinitely: a worker that parks on a queue or
    rendezvous would steal a core from every other step in the process
    (blocking kernels stay on the coordinating thread — see the
    scheduling notes in {!Scheduler}). Tasks must also not raise;
    submitters are expected to capture failures and deliver them through
    their own completion channel.

    Loading this module also installs {!submit} as the execution backend
    of {!Octf_tensor.Parallel}, so intra-op kernel shards run on the same
    pool as inter-op node dispatch (one process-wide set of worker
    domains, as with TensorFlow's shared Eigen threadpool). Intra-op
    helper shards never block — the sharder is caller-runs — so they are
    safe to interleave with node tasks. *)

val size : unit -> int
(** Number of worker domains the pool runs (without forcing creation).
    Override with the [OCTF_POOL_SIZE] environment variable. *)

val submit : (unit -> unit) -> unit
(** Enqueue a task; some worker domain runs it exactly once, FIFO.
    Creates the pool on first use. Exceptions escaping the task are
    swallowed (a warning is printed on stderr) — deliver errors through
    the task's own completion channel instead. *)
