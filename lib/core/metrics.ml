(* Process-wide metrics registry. See metrics.mli for the design notes.

   Locking: the registry mutex guards family creation, a family mutex
   guards child creation, and each child (sample) has its own mutex
   guarding its value. All three are leaves — no metrics code takes any
   other lock — so instrumented modules may update metrics from inside
   their own critical sections (a queue's mutex, the rendezvous mutex,
   the executor's worker domains) without lock-order concerns. *)

type kind = Counter_kind | Gauge_kind | Histogram_kind

type sample = {
  s_labels : (string * string) list;  (* sorted by label name *)
  s_mutex : Mutex.t;
  mutable s_value : float;  (* counter/gauge value; histogram sum *)
  mutable s_count : int;  (* histogram observation count *)
  s_bucket_counts : int array;  (* per-bucket (non-cumulative) counts *)
}

type family = {
  f_name : string;
  f_help : string;
  f_kind : kind;
  f_buckets : float array;  (* upper bounds, strictly increasing *)
  f_mutex : Mutex.t;
  f_children : (string, sample) Hashtbl.t;  (* key = canonical labels *)
}

type t = { r_mutex : Mutex.t; families : (string, family) Hashtbl.t }

let create () = { r_mutex = Mutex.create (); families = Hashtbl.create 64 }

let default = create ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let kind_to_string = function
  | Counter_kind -> "counter"
  | Gauge_kind -> "gauge"
  | Histogram_kind -> "histogram"

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. *)
let sanitize_name name =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    name

let canonical_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let label_key labels =
  String.concat "\x00"
    (List.concat_map (fun (k, v) -> [ k; v ]) labels)

let default_buckets =
  [| 1e-5; 1e-4; 5e-4; 1e-3; 5e-3; 0.01; 0.05; 0.1; 0.5; 1.0; 5.0 |]

let family registry ~name ~help ~kind ~buckets =
  let name = sanitize_name name in
  with_lock registry.r_mutex (fun () ->
      match Hashtbl.find_opt registry.families name with
      | Some f ->
          if f.f_kind <> kind then
            invalid_arg
              (Printf.sprintf
                 "Metrics: %s already registered as a %s (requested %s)"
                 name (kind_to_string f.f_kind) (kind_to_string kind));
          f
      | None ->
          let f =
            {
              f_name = name;
              f_help = help;
              f_kind = kind;
              f_buckets = buckets;
              f_mutex = Mutex.create ();
              f_children = Hashtbl.create 4;
            }
          in
          Hashtbl.replace registry.families name f;
          f)

let child f labels =
  let labels = canonical_labels labels in
  let key = label_key labels in
  with_lock f.f_mutex (fun () ->
      match Hashtbl.find_opt f.f_children key with
      | Some s -> s
      | None ->
          let s =
            {
              s_labels = labels;
              s_mutex = Mutex.create ();
              s_value = 0.0;
              s_count = 0;
              s_bucket_counts =
                (match f.f_kind with
                | Histogram_kind -> Array.make (Array.length f.f_buckets) 0
                | Counter_kind | Gauge_kind -> [||]);
            }
          in
          Hashtbl.replace f.f_children key s;
          s)

let update s f =
  Mutex.lock s.s_mutex;
  f s;
  Mutex.unlock s.s_mutex

let read s f =
  Mutex.lock s.s_mutex;
  let v = f s in
  Mutex.unlock s.s_mutex;
  v

module Counter = struct
  type m = sample

  let v ?(registry = default) ?(help = "") ?(labels = []) name =
    child (family registry ~name ~help ~kind:Counter_kind ~buckets:[||]) labels

  let add_f m x = if x > 0.0 then update m (fun s -> s.s_value <- s.s_value +. x)

  let add m n = add_f m (float_of_int n)

  let incr m = add_f m 1.0

  let value m = read m (fun s -> s.s_value)
end

module Gauge = struct
  type m = sample

  let v ?(registry = default) ?(help = "") ?(labels = []) name =
    child (family registry ~name ~help ~kind:Gauge_kind ~buckets:[||]) labels

  let set m x = update m (fun s -> s.s_value <- x)

  let add m x = update m (fun s -> s.s_value <- s.s_value +. x)

  let incr m = add m 1.0

  let decr m = add m (-1.0)

  let max_to m x =
    update m (fun s -> if x > s.s_value then s.s_value <- x)

  let value m = read m (fun s -> s.s_value)
end

module Histogram = struct
  type m = { h_sample : sample; h_buckets : float array }

  let v ?(registry = default) ?(help = "") ?(labels = [])
      ?(buckets = default_buckets) name =
    let f = family registry ~name ~help ~kind:Histogram_kind ~buckets in
    { h_sample = child f labels; h_buckets = f.f_buckets }

  let observe m x =
    update m.h_sample (fun s ->
        s.s_value <- s.s_value +. x;
        s.s_count <- s.s_count + 1;
        let n = Array.length m.h_buckets in
        let rec place i =
          if i < n then
            if x <= m.h_buckets.(i) then
              s.s_bucket_counts.(i) <- s.s_bucket_counts.(i) + 1
            else place (i + 1)
        in
        place 0)

  let time m f =
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> observe m (Unix.gettimeofday () -. t0)) f

  let sum m = read m.h_sample (fun s -> s.s_value)

  let count m = read m.h_sample (fun s -> s.s_count)
end

(* ------------------------------------------------------------------ *)
(* Kernel-timing gate                                                  *)
(* ------------------------------------------------------------------ *)

let timing = Atomic.make false

let set_kernel_timing on = Atomic.set timing on

let kernel_timing () = Atomic.get timing

(* ------------------------------------------------------------------ *)
(* Snapshots and exporters                                             *)
(* ------------------------------------------------------------------ *)

type snapshot_sample = {
  name : string;
  kind : [ `Counter | `Gauge | `Histogram ];
  help : string;
  labels : (string * string) list;
  value : float;
  count : int;
  buckets : (float * int) list;  (* (le, cumulative count) *)
}

let snapshot registry =
  let families =
    with_lock registry.r_mutex (fun () ->
        Hashtbl.fold (fun _ f acc -> f :: acc) registry.families [])
    |> List.sort (fun a b -> compare a.f_name b.f_name)
  in
  List.concat_map
    (fun f ->
      let children =
        with_lock f.f_mutex (fun () ->
            Hashtbl.fold (fun k s acc -> (k, s) :: acc) f.f_children [])
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      List.map
        (fun (_, s) ->
          read s (fun s ->
              let buckets =
                match f.f_kind with
                | Histogram_kind ->
                    let cum = ref 0 in
                    Array.to_list
                      (Array.mapi
                         (fun i le ->
                           cum := !cum + s.s_bucket_counts.(i);
                           (le, !cum))
                         f.f_buckets)
                | Counter_kind | Gauge_kind -> []
              in
              {
                name = f.f_name;
                kind =
                  (match f.f_kind with
                  | Counter_kind -> `Counter
                  | Gauge_kind -> `Gauge
                  | Histogram_kind -> `Histogram);
                help = f.f_help;
                labels = s.s_labels;
                value = s.s_value;
                count = s.s_count;
                buckets;
              }))
        children)
    families

let reset registry =
  let families =
    with_lock registry.r_mutex (fun () ->
        Hashtbl.fold (fun _ f acc -> f :: acc) registry.families [])
  in
  List.iter
    (fun f ->
      let children =
        with_lock f.f_mutex (fun () ->
            Hashtbl.fold (fun _ s acc -> s :: acc) f.f_children [])
      in
      List.iter
        (fun s ->
          update s (fun s ->
              s.s_value <- 0.0;
              s.s_count <- 0;
              Array.fill s.s_bucket_counts 0
                (Array.length s.s_bucket_counts)
                0))
        children)
    families

(* Prometheus label values: escape backslash, double-quote, newline. *)
let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize_name k)
                 (escape_label_value v))
             labels)
      ^ "}"

(* %.17g would be exact but noisy; %g loses precision past ~6 digits.
   Use a short representation that round-trips typical counters. *)
let render_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let to_prometheus registry =
  let buf = Buffer.create 4096 in
  let seen_header = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem seen_header s.name) then begin
        Hashtbl.replace seen_header s.name ();
        if s.help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" s.name
               (String.map (fun c -> if c = '\n' then ' ' else c) s.help));
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" s.name
             (match s.kind with
             | `Counter -> "counter"
             | `Gauge -> "gauge"
             | `Histogram -> "histogram"))
      end;
      match s.kind with
      | `Counter | `Gauge ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" s.name (render_labels s.labels)
               (render_float s.value))
      | `Histogram ->
          List.iter
            (fun (le, cum) ->
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" s.name
                   (render_labels (s.labels @ [ ("le", render_float le) ]))
                   cum))
            s.buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" s.name
               (render_labels (s.labels @ [ ("le", "+Inf") ]))
               s.count);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" s.name (render_labels s.labels)
               (render_float s.value));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" s.name (render_labels s.labels)
               s.count))
    (snapshot registry);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x =
  if Float.is_nan x then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let to_json registry =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"metrics\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"type\":\"%s\",\"labels\":{"
           (json_escape s.name)
           (match s.kind with
           | `Counter -> "counter"
           | `Gauge -> "gauge"
           | `Histogram -> "histogram"));
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        s.labels;
      Buffer.add_string buf "}";
      (match s.kind with
      | `Counter | `Gauge ->
          Buffer.add_string buf
            (Printf.sprintf ",\"value\":%s" (json_float s.value))
      | `Histogram ->
          Buffer.add_string buf
            (Printf.sprintf ",\"sum\":%s,\"count\":%d,\"buckets\":["
               (json_float s.value) s.count);
          List.iteri
            (fun j (le, cum) ->
              if j > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf
                (Printf.sprintf "{\"le\":%s,\"count\":%d}" (json_float le)
                   cum))
            s.buckets;
          Buffer.add_string buf "]");
      Buffer.add_string buf "}")
    (snapshot registry);
  Buffer.add_string buf "]}";
  Buffer.contents buf

let find_value ?(labels = []) registry name =
  let labels = canonical_labels labels in
  let name = sanitize_name name in
  List.find_map
    (fun s ->
      if s.name = name && s.labels = labels then Some s.value else None)
    (snapshot registry)
