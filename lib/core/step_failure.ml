type cause =
  | Deadline_exceeded of float
  | Cancelled of string
  | Kernel_failed of string
  | Fault_injected of string
  | Rendezvous_aborted of string
  | Duplicate_send of string
  | Missing_task of string
  | Invalid_graph of string
  | Fetch_failed of string
  | Network_error of string
  | Overloaded of string

type t = { node : string option; device : string option; cause : cause }

exception Error of t

let v ?node ?device cause = { node; device; cause }

let error ?node ?device cause = Error (v ?node ?device cause)

let cause_message = function
  | Deadline_exceeded budget ->
      Printf.sprintf "deadline of %.0f ms exceeded" (1000.0 *. budget)
  | Cancelled reason -> "step cancelled: " ^ reason
  | Kernel_failed detail -> "kernel failed: " ^ detail
  | Fault_injected detail -> "fault injected: " ^ detail
  | Rendezvous_aborted reason -> "rendezvous aborted: " ^ reason
  | Duplicate_send key -> "duplicate rendezvous send for key " ^ key
  | Missing_task detail -> "missing cluster task: " ^ detail
  | Invalid_graph detail -> detail
  | Fetch_failed detail -> detail
  | Network_error detail -> "network error: " ^ detail
  | Overloaded detail -> "overloaded: " ^ detail

let cause_kind = function
  | Deadline_exceeded _ -> "deadline_exceeded"
  | Cancelled _ -> "cancelled"
  | Kernel_failed _ -> "kernel_failed"
  | Fault_injected _ -> "fault_injected"
  | Rendezvous_aborted _ -> "rendezvous_aborted"
  | Duplicate_send _ -> "duplicate_send"
  | Missing_task _ -> "missing_task"
  | Invalid_graph _ -> "invalid_graph"
  | Fetch_failed _ -> "fetch_failed"
  | Network_error _ -> "network_error"
  | Overloaded _ -> "overloaded"

let is_cancellation = function
  | Deadline_exceeded _ | Cancelled _ -> true
  | Kernel_failed _ | Fault_injected _ | Rendezvous_aborted _
  | Duplicate_send _ | Missing_task _ | Invalid_graph _ | Fetch_failed _
  | Network_error _ | Overloaded _ ->
      false

(* Rebuild a cause from its wire form (kind string + message), for
   failures reported by a remote process. Unknown kinds degrade to
   [Kernel_failed] so a newer peer never crashes an older one. *)
let cause_of_wire ~kind ~message =
  match kind with
  | "deadline_exceeded" -> Deadline_exceeded 0.0
  | "cancelled" -> Cancelled message
  | "kernel_failed" -> Kernel_failed message
  | "fault_injected" -> Fault_injected message
  | "rendezvous_aborted" -> Rendezvous_aborted message
  | "duplicate_send" -> Duplicate_send message
  | "missing_task" -> Missing_task message
  | "invalid_graph" -> Invalid_graph message
  | "fetch_failed" -> Fetch_failed message
  | "network_error" -> Network_error message
  | "overloaded" -> Overloaded message
  | other -> Kernel_failed (Printf.sprintf "remote %s: %s" other message)

(* Failures that only describe another partition's (or the whole step's)
   demise, not its origin. Used to pick the root cause among the errors
   collected from the partitions of one step. *)
let is_secondary = function
  | Rendezvous_aborted _ | Cancelled _ -> true
  | _ -> false

let to_string f =
  let where =
    match (f.node, f.device) with
    | Some n, Some d -> Printf.sprintf " at node %s on %s" n d
    | Some n, None -> Printf.sprintf " at node %s" n
    | None, Some d -> Printf.sprintf " on %s" d
    | None, None -> ""
  in
  Printf.sprintf "step failed%s: %s" where (cause_message f.cause)

let () =
  Printexc.register_printer (function
    | Error f -> Some (to_string f)
    | _ -> None)
