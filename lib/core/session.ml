
exception Run_error of Step_failure.t

let m_steps =
  Metrics.Counter.v ~help:"Session steps started" "octf_session_steps_total"

let m_cache_hits =
  Metrics.Counter.v ~help:"Step-cache hits" "octf_session_cache_hits_total"

let m_cache_misses =
  Metrics.Counter.v ~help:"Step-cache misses (step compilations)"
    "octf_session_cache_misses_total"

let m_deadline_expiries =
  Metrics.Counter.v ~help:"Steps failed by deadline expiry"
    "octf_session_deadline_expiries_total"

let m_errors cause =
  Metrics.Counter.v ~help:"Step failures by cause kind"
    ~labels:[ ("cause", cause) ]
    "octf_session_errors_total"

let m_step_seconds =
  Metrics.Histogram.v ~help:"Step wall-clock seconds"
    "octf_session_step_seconds"

let m_in_flight =
  Metrics.Gauge.v ~help:"Pipelined steps currently admitted"
    "octf_steps_in_flight"

let m_stall =
  Metrics.Counter.v
    ~help:"Seconds run_async callers spent blocked on admission"
    "octf_pipeline_stall_seconds"

let run_error ?node ?device cause = Run_error (Step_failure.v ?node ?device cause)

let invalid msg = run_error (Step_failure.Invalid_graph msg)

module Run_options = struct
  type t = {
    feeds : (Builder.output * Octf_tensor.Tensor.t) list;
    targets : Builder.output list;
    deadline : float option;
    trace : bool;
    collect_stats : bool;
    cancel : Cancel.t option;
    tracer : Tracer.t option;
  }

  let default =
    {
      feeds = [];
      targets = [];
      deadline = None;
      trace = false;
      collect_stats = false;
      cancel = None;
      tracer = None;
    }

  let v ?(feeds = []) ?(targets = []) ?deadline ?(trace = false)
      ?(collect_stats = false) ?cancel ?tracer () =
    { feeds; targets; deadline; trace; collect_stats; cancel; tracer }
end

module Run_metadata = struct
  type t = {
    step_id : int;
    wall_time : float;
    step_stats : Step_stats.t option;
    tracer : Tracer.t option;
  }
end

(* Consolidated construction-time configuration — TensorFlow's
   ConfigProto. [None] fields fall through to the one resolution point
   in [create]: programmatic value > OCTF_* environment variable >
   built-in default. *)
module Config = struct
  type t = {
    devices : Device.t list option;
    resource_router : (Device.t -> Resource_manager.t) option;
    seed : int option;
    passes : Graph_optimizer.pass list option;
    scheduler : Scheduler.policy option;
    intra_op_threads : int option;
    memory_planning : bool option;
    fusion : bool option;
    quantize : bool option;
    max_in_flight : int option;
    barrier : bool;
    remote : Remote.runner option;
  }

  let default =
    {
      devices = None;
      resource_router = None;
      seed = None;
      passes = None;
      scheduler = None;
      intra_op_threads = None;
      memory_planning = None;
      fusion = None;
      quantize = None;
      max_in_flight = None;
      barrier = false;
      remote = None;
    }

  let v ?devices ?resource_router ?seed ?passes ?scheduler ?intra_op_threads
      ?memory_planning ?fusion ?quantize ?max_in_flight ?(barrier = false)
      ?remote () =
    {
      devices;
      resource_router;
      seed;
      passes;
      scheduler;
      intra_op_threads;
      memory_planning;
      fusion;
      quantize;
      max_in_flight;
      barrier;
      remote;
    }
end

(* A step in flight. The spawning thread publishes exactly one result
   (or failure) under [h_mutex]; [wait] blocks on [h_cond]. *)
type handle = {
  h_id : int;
  h_mutex : Mutex.t;
  h_cond : Condition.t;
  mutable h_result :
    (Octf_tensor.Tensor.t list * Run_metadata.t, Step_failure.t) result
    option;
}

type compiled_step =
  | Local of { plan : Executor.plan; device : Device.t option }
  | Distributed of (Partition.partition * Executor.plan) list

type t = {
  graph : Graph.t;
  devices : Device.t list;
  resource_router : Device.t -> Resource_manager.t;
  default_resources : Resource_manager.t;
  cache : (string, compiled_step) Hashtbl.t;
  mutable step_counter : int;
  seed : int;
  passes : Graph_optimizer.pass list;
  scheduler : Scheduler.policy;
  memory_planning : bool option;  (* None: follow Mem_plan.enabled () *)
  remote : Remote.runner option;
      (* out-of-process runtime: partitions on non-[is_local] devices
         are dispatched as Run_step RPCs instead of executor threads,
         and all tensor traffic uses the runner's shared routed
         rendezvous *)
  mutable drained_to : int;  (* steps retired by the last [drain] sweep *)
  mutex : Mutex.t;
  (* Pipeline controller: at most [max_in_flight] async steps admitted
     at once. [admit] waits on [mutex]; [pending] tracks live handles
     for [drain]. *)
  max_in_flight : int;
  mutable in_flight : int;
  admit : Condition.t;
  pending : (int, handle) Hashtbl.t;
  mutable async_seq : int;
}

let default_max_in_flight () =
  match
    Option.bind (Sys.getenv_opt "OCTF_MAX_IN_FLIGHT") int_of_string_opt
  with
  | Some k when k >= 1 -> k
  | _ -> 1

(* OCTF_FUSION gates the elementwise fuse pass when the caller does not
   pass an explicit pipeline; same spelling as OCTF_MEMORY_PLANNING. *)
let default_fusion () =
  match Sys.getenv_opt "OCTF_FUSION" with
  | Some ("0" | "off" | "false" | "no") -> false
  | _ -> true

(* OCTF_QUANTIZE gates the int8 quantize pass when the caller does not
   pass an explicit pipeline. Unlike fusion it defaults OFF: quantized
   kernels change numerics, so the user must opt in. (The pass is also
   inert on training graphs — it only rewrites contractions whose
   weights are F32 Consts, which freezing produces.) *)
let default_quantize () =
  match Sys.getenv_opt "OCTF_QUANTIZE" with
  | Some ("1" | "on" | "true" | "yes") -> true
  | _ -> false

let create ?(config = Config.default) ?devices ?resource_router ?seed
    ?optimize ?passes ?scheduler ?intra_op_threads ?memory_planning ?fusion
    ?quantize ?max_in_flight ?barrier ?remote graph =
  (* The one resolution point for every construction knob. Precedence:
     legacy label (deprecated wrappers) > [config] field > OCTF_* env >
     built-in default. The env lookups live in the per-field defaulting
     helpers ([Scheduler.default_policy], [Mem_plan.enabled],
     [default_max_in_flight]). *)
  let pick legacy field =
    match legacy with Some _ -> legacy | None -> field
  in
  let devices = pick devices config.Config.devices in
  let resource_router = pick resource_router config.Config.resource_router in
  let seed =
    match pick seed config.Config.seed with Some s -> s | None -> 42
  in
  let fusion =
    match pick fusion config.Config.fusion with
    | Some b -> b
    | None -> default_fusion ()
  in
  let quantize =
    match pick quantize config.Config.quantize with
    | Some b -> b
    | None -> default_quantize ()
  in
  let passes =
    match pick passes config.Config.passes with
    | Some ps -> ps
    | None -> (
        match optimize with
        | Some false -> [] (* legacy ~optimize:false: prune only *)
        | _ ->
            let base =
              if fusion then Graph_optimizer.fused_pipeline
              else Graph_optimizer.default_pipeline
            in
            if quantize then
              base
              @ [ Graph_optimizer.Quantize (fun _ -> None);
                  Graph_optimizer.Prune ]
            else base)
  in
  let scheduler = pick scheduler config.Config.scheduler in
  let intra_op_threads = pick intra_op_threads config.Config.intra_op_threads in
  let memory_planning = pick memory_planning config.Config.memory_planning in
  let max_in_flight = pick max_in_flight config.Config.max_in_flight in
  let barrier =
    match barrier with Some b -> b | None -> config.Config.barrier
  in
  let remote = pick remote config.Config.remote in
  (* Process-wide hardware knob, mirroring TF's
     intra_op_parallelism_threads in ConfigProto. *)
  (match intra_op_threads with
  | Some n -> Octf_tensor.Parallel.set_threads n
  | None -> ());
  let scheduler =
    match scheduler with Some p -> p | None -> Scheduler.default_policy ()
  in
  let default_resources = Resource_manager.create () in
  let devices =
    match devices with
    | Some ds when ds <> [] -> ds
    | _ -> [ Device.make ~job:"localhost" ~task:0 ~index:0 Device.CPU ]
  in
  let resource_router =
    match resource_router with
    | Some f -> f
    | None -> fun _ -> default_resources
  in
  (* Barrier mode pins the pipeline to one step in flight: async steps
     serialize and read live variables, so results are bit-identical to
     the pre-pipelining session whatever [max_in_flight] asked for. *)
  let max_in_flight =
    if barrier then 1
    else
      match max_in_flight with
      | Some k when k >= 1 -> k
      | Some k ->
          invalid_arg
            (Printf.sprintf "Session.create: max_in_flight %d < 1" k)
      | None -> default_max_in_flight ()
  in
  {
    graph;
    devices;
    resource_router;
    default_resources;
    cache = Hashtbl.create 8;
    step_counter = 0;
    seed;
    passes;
    scheduler;
    memory_planning;
    remote;
    drained_to = 0;
    mutex = Mutex.create ();
    max_in_flight;
    in_flight = 0;
    admit = Condition.create ();
    pending = Hashtbl.create 8;
    async_seq = 0;
  }

let graph t = t.graph

let scheduler t = t.scheduler

let max_in_flight t = t.max_in_flight

let resources t = t.default_resources

let resources_for t d = t.resource_router d

let cached_steps t = Hashtbl.length t.cache

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let signature ~feed_eps ~fetch_eps ~target_ids =
  let ep (e : Node.endpoint) = Printf.sprintf "%d:%d" e.node_id e.index in
  String.concat ","
    (List.sort compare (List.map ep feed_eps))
  ^ "|"
  ^ String.concat "," (List.map ep fetch_eps)
  ^ "|"
  ^ String.concat "," (List.map string_of_int (List.sort compare target_ids))

let compile t ~feed_eps ~fetch_eps ~target_ids =
  let nodes =
    Graph_optimizer.run t.graph ~passes:t.passes ~feeds:feed_eps
      ~fetches:fetch_eps ~targets:target_ids
  in
  (* Place the whole graph, not just this step's pruned subset. In a
     multi-process (SPMD) cluster each process compiles only the steps
     it runs or serves, so per-subset placement would let the
     least-loaded tiebreak see different load histories in different
     processes and diverge — mismatched partitions deadlock the step's
     Send/Recv pairs. Placing every node on first contact keeps the
     assignment a deterministic function of the shared graph alone. *)
  Placement.place t.graph
    ~nodes:(List.init (Graph.node_count t.graph) Fun.id)
    ~devices:t.devices;
  let devs =
    List.sort_uniq compare
      (List.filter_map
         (fun id -> (Graph.get t.graph id).Node.assigned_device)
         nodes)
  in
  let fed_ids = List.map (fun (e : Node.endpoint) -> e.node_id) feed_eps in
  let prepare ~graph ~nodes ~fed_ids =
    try
      Executor.prepare ~scheduler:t.scheduler
        ?memory_planning:t.memory_planning ~graph ~nodes ~fed_ids ()
    with Step_failure.Error f -> raise (Run_error f)
  in
  match devs with
  | [] | [ _ ] ->
      let plan = prepare ~graph:t.graph ~nodes ~fed_ids in
      Local { plan; device = (match devs with [ d ] -> Some d | _ -> None) }
  | _ -> (
      match Partition.partition t.graph ~nodes with
      | Ok parts ->
          Distributed
            (List.map
               (fun (p : Partition.partition) ->
                 let local_fed =
                   List.filter_map
                     (fun e ->
                       Option.map
                         (fun (l : Node.endpoint) -> l.Node.node_id)
                         (Partition.find_endpoint p e))
                     feed_eps
                 in
                 ( p,
                   prepare ~graph:p.Partition.subgraph
                     ~nodes:p.Partition.node_ids ~fed_ids:local_fed ))
               parts)
      | Error msg -> raise (invalid ("partitioning failed: " ^ msg)))

let find_or_compile t ~feed_eps ~fetch_eps ~target_ids =
  with_lock t (fun () ->
      let sg = signature ~feed_eps ~fetch_eps ~target_ids in
      match Hashtbl.find_opt t.cache sg with
      | Some s ->
          Metrics.Counter.incr m_cache_hits;
          s
      | None ->
          Metrics.Counter.incr m_cache_misses;
          let s = compile t ~feed_eps ~fetch_eps ~target_ids in
          Hashtbl.replace t.cache sg s;
          s)

(* Normalize a step definition to the endpoint lists forming its cache
   signature. Fetching an output-less operation (a NoOp group such as a
   train op) means "run it": such fetches are rerouted to the target
   list, and [run_with] returns a scalar 0 in their position. *)
let normalize_step ~feed_outputs ~targets fetches =
  let fetches_tagged =
    List.map
      (fun (o : Builder.output) ->
        if Node.num_outputs o.Builder.node = 0 then `Target o else `Fetch o)
      fetches
  in
  let targets =
    targets
    @ List.filter_map
        (function `Target o -> Some o | `Fetch _ -> None)
        fetches_tagged
  in
  let fetches =
    List.filter_map
      (function `Fetch o -> Some o | `Target _ -> None)
      fetches_tagged
  in
  let feed_eps = List.map Builder.endpoint_of_output feed_outputs in
  let fetch_eps = List.map Builder.endpoint_of_output fetches in
  let target_ids =
    List.map (fun (o : Builder.output) -> o.Builder.node.Node.id) targets
  in
  (fetches_tagged, fetches, feed_eps, fetch_eps, target_ids)

let precompile ?(feeds = []) ?(targets = []) t fetches =
  let _, _, feed_eps, fetch_eps, target_ids =
    normalize_step ~feed_outputs:feeds ~targets fetches
  in
  ignore (find_or_compile t ~feed_eps ~fetch_eps ~target_ids)

let value_to_tensor ~what v =
  match v with
  | Value.Tensor tensor -> tensor
  | Value.Resource r ->
      raise
        (run_error ~node:what
           (Step_failure.Fetch_failed
              (Printf.sprintf "fetch %s produced a reference handle (%s)"
                 what (Resource.name r))))
  | Value.Dead ->
      raise
        (run_error ~node:what
           (Step_failure.Fetch_failed
              (Printf.sprintf "fetch %s produced a dead value" what)))

let run_with ?tracer ?deadline ?cancel:parent ?var_snapshot ?(feeds = [])
    ?(targets = []) t fetches =
  let fetches_tagged, fetches, feed_eps, fetch_eps, target_ids =
    normalize_step ~feed_outputs:(List.map fst feeds) ~targets fetches
  in
  let feed_vals =
    List.map
      (fun (o, tensor) ->
        (Builder.endpoint_of_output o, Value.Tensor tensor))
      feeds
  in
  let step = find_or_compile t ~feed_eps ~fetch_eps ~target_ids in
  let step_id =
    with_lock t (fun () ->
        t.step_counter <- t.step_counter + 1;
        t.step_counter)
  in
  (* One cancellation token per step: a deadline arms its watchdog,
     distributed steps always carry a token so one partition's failure
     wakes peers parked in queue or rendezvous waits, and a [parent]
     token (a pipeline's filler group) cancels this step when the whole
     group is stopped. *)
  let device_is_remote d =
    match t.remote with
    | Some r -> not (r.Remote.is_local d)
    | None -> false
  in
  let needs_token =
    match step with
    | Distributed _ -> true
    | Local { device = Some d; _ } -> device_is_remote d
    | Local { device = None; _ } -> false
  in
  let cancel =
    match (deadline, parent) with
    | Some d, _ -> Some (Cancel.create ?parent ~deadline:d ())
    | None, Some _ -> Some (Cancel.create ?parent ())
    | None, None -> if needs_token then Some (Cancel.create ()) else None
  in
  (* One Run_step RPC executing [job]/[task]'s partitions of this step
     in its own process. The full feed/fetch/target endpoint lists go
     on the wire: the peer compiled the same graph, so the lists both
     reproduce the step signature (hitting its step cache) and let it
     select the subsets its partitions own. *)
  let feed_tensors =
    lazy
      (List.map
         (fun (o, tensor) -> (Builder.endpoint_of_output o, tensor))
         feeds)
  in
  let call_remote r ~job ~task =
    r.Remote.run_partitions ~job ~task ~step_id
      ~feeds:(Lazy.force feed_tensors) ~fetches:fetch_eps
      ~targets:target_ids ~deadline ~cancel
  in
  let execute_step () =
    match step with
    | Local { plan = _; device = Some d } when device_is_remote d -> (
        (* the whole pruned step lives on a remote task *)
        let r = Option.get t.remote in
        match call_remote r ~job:d.Device.job ~task:d.Device.task with
        | Error f -> raise (Run_error f)
        | Ok pairs ->
            List.map2
              (fun (o : Builder.output) e ->
                match List.assoc_opt e pairs with
                | Some v ->
                    value_to_tensor ~what:o.Builder.node.Node.name v
                | None ->
                    raise
                      (run_error ~node:o.Builder.node.Node.name
                         (Step_failure.Fetch_failed
                            ("fetch not returned by remote task: "
                           ^ o.Builder.node.Node.name))))
              fetches fetch_eps)
    | Local { plan; device } ->
      let resources =
        match device with
        | Some d -> t.resource_router d
        | None -> t.default_resources
      in
      let values =
        try
          Executor.execute plan ~feeds:feed_vals ~fetches:fetch_eps
            ~resources ?tracer ?cancel ~seed:t.seed ~step_id ?var_snapshot
            ()
        with Step_failure.Error f -> raise (Run_error f)
      in
      List.map2
        (fun (o : Builder.output) v ->
          value_to_tensor ~what:o.Builder.node.Node.name v)
        fetches values
  | Distributed parts ->
      (* With an out-of-process runtime the step uses the shared routed
         rendezvous (never aborted — teardown is per step, via the
         cancel token); otherwise a private per-step one. *)
      let rendezvous =
        match t.remote with
        | Some r -> r.Remote.rendezvous
        | None -> Rendezvous.create ()
      in
      let results : (string, (Node.endpoint * Value.t) list) Hashtbl.t =
        Hashtbl.create 8
      in
      let errors = ref [] in
      let results_mutex = Mutex.create () in
      let record_failure (f : Step_failure.t) =
        let msg = Step_failure.to_string f in
        (* A shared rendezvous must never be aborted — the abort is
           sticky and would poison every later step. The cancel token
           wakes this step's parked receivers instead. *)
        if Option.is_none t.remote then
          Rendezvous.abort rendezvous ~reason:msg;
        Option.iter (fun c -> Cancel.cancel c ~reason:msg) cancel;
        Mutex.lock results_mutex;
        errors := f :: !errors;
        Mutex.unlock results_mutex
      in
      let run_part ((p : Partition.partition), plan) =
        let local_feeds =
          List.filter_map
            (fun ((e : Node.endpoint), v) ->
              match Partition.find_endpoint p e with
              | Some local -> Some (local, v)
              | None -> None)
            feed_vals
        in
        let local_fetches =
          List.filter_map
            (fun e ->
              match Partition.find_endpoint p e with
              | Some local -> Some (e, local)
              | None -> None)
            fetch_eps
        in
        let device = Device.to_string p.Partition.device in
        try
          let vs =
            Executor.execute plan ~feeds:local_feeds
              ~fetches:(List.map snd local_fetches)
              ~resources:(t.resource_router p.Partition.device)
              ~rendezvous ?tracer ?cancel ~seed:t.seed ~step_id
              ?var_snapshot ()
          in
          Mutex.lock results_mutex;
          Hashtbl.replace results device
            (List.map2 (fun (orig, _) v -> (orig, v)) local_fetches vs);
          Mutex.unlock results_mutex
        with
        | Step_failure.Error f ->
            record_failure
              (if f.Step_failure.device = None then
                 { f with Step_failure.device = Some device }
               else f)
        | Rendezvous.Aborted reason ->
            record_failure
              (Step_failure.v ~device (Step_failure.Rendezvous_aborted reason))
        | e ->
            record_failure
              (Step_failure.v ~device
                 (Step_failure.Kernel_failed (Printexc.to_string e)))
      in
      (* Partitions on devices owned by other processes collapse into
         one Run_step RPC per remote task; the rest run on executor
         threads here as before. *)
      let local_parts, remote_tasks =
        match t.remote with
        | None -> (parts, [])
        | Some r ->
            ( List.filter
                (fun ((p : Partition.partition), _) ->
                  r.Remote.is_local p.Partition.device)
                parts,
              List.sort_uniq compare
                (List.filter_map
                   (fun ((p : Partition.partition), _) ->
                     if r.Remote.is_local p.Partition.device then None
                     else
                       Some
                         ( p.Partition.device.Device.job,
                           p.Partition.device.Device.task ))
                   parts) )
      in
      let run_remote (job, task) =
        let r = Option.get t.remote in
        match call_remote r ~job ~task with
        | Ok pairs ->
            Mutex.lock results_mutex;
            Hashtbl.replace results (Printf.sprintf "rpc:%s/%d" job task)
              pairs;
            Mutex.unlock results_mutex
        | Error f -> record_failure f
      in
      let threads =
        List.map (fun p -> Thread.create run_part p) local_parts
        @ List.map (fun rt -> Thread.create run_remote rt) remote_tasks
      in
      List.iter Thread.join threads;
      (* Scrub entries this step leaked (sends whose Recv died with the
         step); essential on the long-lived shared rendezvous, keeps
         the pending gauge honest on private ones. *)
      (match t.remote with
      | Some r -> r.Remote.retire_step ~step_id
      | None -> ignore (Rendezvous.drop_step rendezvous ~step_id));
      (* Prefer the root cause: a partition's own failure over the
         "peer aborted me" / "step was cancelled" collateral. *)
      (match
         List.stable_sort
           (fun (a : Step_failure.t) b ->
             compare
               (Step_failure.is_secondary a.Step_failure.cause)
               (Step_failure.is_secondary b.Step_failure.cause))
           (List.rev !errors)
       with
      | f :: _ -> raise (Run_error f)
      | [] -> ());
      let all_results =
        Hashtbl.fold (fun _ l acc -> l @ acc) results []
      in
      List.map2
        (fun (o : Builder.output) e ->
          match List.assoc_opt e all_results with
          | Some v -> value_to_tensor ~what:o.Builder.node.Node.name v
          | None ->
              raise
                (run_error ~node:o.Builder.node.Node.name
                   (Step_failure.Fetch_failed
                      ("fetch not produced by any partition: "
                      ^ o.Builder.node.Node.name))))
        fetches fetch_eps
  in
  let results =
    match cancel with
    | None -> execute_step ()
    | Some c -> Fun.protect ~finally:(fun () -> Cancel.complete c) execute_step
  in
  (* Re-interleave dummy results for target-style fetches. *)
  let remaining = ref results in
  let tensors =
    List.map
      (function
        | `Target _ -> Octf_tensor.Tensor.scalar_i 0
        | `Fetch _ -> (
            match !remaining with
            | v :: tl ->
                remaining := tl;
                v
            | [] -> assert false))
      fetches_tagged
  in
  (tensors, step_id)

let run_md ?var_snapshot ~options t fetches =
  let {
    Run_options.feeds;
    targets;
    deadline;
    trace;
    collect_stats;
    cancel;
    tracer = shared_tracer;
  } =
    options
  in
  (* One tracer observes the step when either consumer wants it; the
     executor's kernel timing keys off its presence. A caller-supplied
     tracer (pipelined runs visualizing step overlap) wins. *)
  let tracer =
    match shared_tracer with
    | Some _ -> shared_tracer
    | None -> if trace || collect_stats then Some (Tracer.create ()) else None
  in
  Metrics.Counter.incr m_steps;
  let t0 = Unix.gettimeofday () in
  match
    run_with ?tracer ?deadline ?cancel ?var_snapshot ~feeds ~targets t
      fetches
  with
  | tensors, step_id ->
      let wall_time = Unix.gettimeofday () -. t0 in
      Metrics.Histogram.observe m_step_seconds wall_time;
      let step_stats =
        if collect_stats then
          (* [of_tracer] filters by step id, so a tracer shared across
             in-flight steps still yields per-step stats. *)
          Option.map (Step_stats.of_tracer ~step_id) tracer
        else None
      in
      (tensors, { Run_metadata.step_id; wall_time; step_stats; tracer })
  | exception Run_error f ->
      Metrics.Counter.incr
        (m_errors (Step_failure.cause_kind f.Step_failure.cause));
      (match f.Step_failure.cause with
      | Step_failure.Deadline_exceeded _ ->
          Metrics.Counter.incr m_deadline_expiries
      | _ -> ());
      raise (Run_error f)

let run_with_metadata ?(options = Run_options.default) t fetches =
  run_md ~options t fetches

(* Admission-time snapshot of every variable reachable from this
   session's resource managers. [Read] kernels of a pipelined step see
   these values — the version a variable had when the step was admitted
   — while updates (Assign*, scatter, counters) keep landing on the
   live variables in completion order: the paper's asynchronous SGD
   consistency model. *)
let snapshot_variables t =
  let managers =
    List.fold_left
      (fun acc m -> if List.memq m acc then acc else m :: acc)
      [ t.default_resources ]
      (List.map t.resource_router t.devices)
  in
  let tbl : (string, Octf_tensor.Tensor.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun m ->
      List.iter
        (fun (v : Resource.variable) ->
          match Resource.variable_peek v with
          | Some (tensor, _version) ->
              Hashtbl.replace tbl v.Resource.var_name tensor
          | None -> ())
        (Resource_manager.variables m))
    managers;
  fun name -> Hashtbl.find_opt tbl name

(* Same lookup, as the public face: the name -> tensor function a
   freeze pass ({!Graph_optimizer.Freeze}, {!Octf_serving}) consumes
   to fold this session's trained variables into constants. *)
let variable_values t = snapshot_variables t

let run_async ?(options = Run_options.default) t fetches =
  let wait_start = Unix.gettimeofday () in
  let h =
    with_lock t (fun () ->
        while t.in_flight >= t.max_in_flight do
          Condition.wait t.admit t.mutex
        done;
        let stalled = Unix.gettimeofday () -. wait_start in
        if stalled > 0.0 then Metrics.Counter.add_f m_stall stalled;
        t.in_flight <- t.in_flight + 1;
        Metrics.Gauge.set m_in_flight (float_of_int t.in_flight);
        t.async_seq <- t.async_seq + 1;
        let h =
          {
            h_id = t.async_seq;
            h_mutex = Mutex.create ();
            h_cond = Condition.create ();
            h_result = None;
          }
        in
        Hashtbl.replace t.pending h.h_id h;
        h)
  in
  (* Snapshot only when steps can actually overlap: at K = 1 (including
     barrier mode) reads stay live and behavior is bit-identical to the
     synchronous session. *)
  let var_snapshot =
    if t.max_in_flight > 1 then Some (snapshot_variables t) else None
  in
  let finish result =
    Mutex.lock h.h_mutex;
    h.h_result <- Some result;
    Condition.broadcast h.h_cond;
    Mutex.unlock h.h_mutex;
    with_lock t (fun () ->
        t.in_flight <- t.in_flight - 1;
        Metrics.Gauge.set m_in_flight (float_of_int t.in_flight);
        Hashtbl.remove t.pending h.h_id;
        Condition.broadcast t.admit)
  in
  let (_ : Thread.t) =
    Thread.create
      (fun () ->
        match run_md ?var_snapshot ~options t fetches with
        | result -> finish (Ok result)
        | exception Run_error f -> finish (Error f)
        | exception e ->
            finish
              (Error
                 (Step_failure.v
                    (Step_failure.Kernel_failed (Printexc.to_string e)))))
      ()
  in
  h

let wait h =
  Mutex.lock h.h_mutex;
  while h.h_result = None do
    Condition.wait h.h_cond h.h_mutex
  done;
  let r = Option.get h.h_result in
  Mutex.unlock h.h_mutex;
  match r with Ok v -> v | Error f -> raise (Run_error f)

let drain t =
  (* Quiesce: block until nothing is in flight. Step failures are the
     issuer's to observe via [wait]; drain only waits. *)
  let rec loop () =
    let live =
      with_lock t (fun () ->
          Hashtbl.fold (fun _ h acc -> h :: acc) t.pending [])
    in
    match live with
    | [] -> ()
    | hs ->
        List.iter
          (fun h ->
            Mutex.lock h.h_mutex;
            while h.h_result = None do
              Condition.wait h.h_cond h.h_mutex
            done;
            Mutex.unlock h.h_mutex)
          hs;
        loop ()
  in
  loop ();
  (* Rendezvous hygiene: retire every step issued since the last drain,
     dropping entries leaked on the shared rendezvous by failed or
     abandoned steps (steps also retire themselves; this sweep catches
     tensors that arrived after their step's own cleanup ran). *)
  match t.remote with
  | None -> ()
  | Some r ->
      let lo, hi =
        with_lock t (fun () ->
            let range = (t.drained_to + 1, t.step_counter) in
            t.drained_to <- t.step_counter;
            range)
      in
      for step_id = lo to hi do
        r.Remote.retire_step ~step_id
      done

(* Serve one step dispatched by a remote chief: compile the identical
   step (the endpoint lists reproduce its cache signature against our
   copy of the graph), execute only the partitions placed on this
   process's devices under the chief's [step_id], and return the fetch
   endpoints our partitions produced. All failure modes come back as
   structured [Error] values — this function never raises. *)
let run_serve t ~step_id ~feeds ~fetches ~targets ~cancel () =
  try
    let feed_eps = List.map fst feeds in
    let fetch_eps = fetches in
    let target_ids = targets in
    let r =
      match t.remote with
      | Some r -> r
      | None ->
          raise
            (run_error
               (Step_failure.Invalid_graph
                  "run_serve on a session without a remote runner"))
    in
    let step = find_or_compile t ~feed_eps ~fetch_eps ~target_ids in
    let feed_vals =
      List.map (fun (e, tensor) -> (e, Value.Tensor tensor)) feeds
    in
    match step with
    | Local { plan; device } ->
        (* the chief decided the whole step lives here *)
        let ours =
          match device with None -> true | Some d -> r.Remote.is_local d
        in
        if not ours then
          Error
            (Step_failure.v
               (Step_failure.Invalid_graph
                  "served step is placed on a device of another task"))
        else
          let resources =
            match device with
            | Some d -> t.resource_router d
            | None -> t.default_resources
          in
          let values =
            Executor.execute plan ~feeds:feed_vals ~fetches:fetch_eps
              ~resources ~rendezvous:r.Remote.rendezvous ~cancel ~seed:t.seed
              ~step_id ()
          in
          Ok (List.combine fetch_eps values)
    | Distributed parts ->
        let my_parts =
          List.filter
            (fun ((p : Partition.partition), _) ->
              r.Remote.is_local p.Partition.device)
            parts
        in
        if my_parts = [] then
          Error
            (Step_failure.v
               (Step_failure.Invalid_graph
                  "no partition of the served step is placed on this task"))
        else begin
          let results = ref [] in
          let errors = ref [] in
          let results_mutex = Mutex.create () in
          let record_failure (f : Step_failure.t) =
            (* shared rendezvous: never aborted — wake our parked
               receivers through the serve token instead *)
            Cancel.cancel cancel ~reason:(Step_failure.to_string f);
            Mutex.lock results_mutex;
            errors := f :: !errors;
            Mutex.unlock results_mutex
          in
          let run_part ((p : Partition.partition), plan) =
            let local_feeds =
              List.filter_map
                (fun ((e : Node.endpoint), v) ->
                  match Partition.find_endpoint p e with
                  | Some local -> Some (local, v)
                  | None -> None)
                feed_vals
            in
            let local_fetches =
              List.filter_map
                (fun e ->
                  match Partition.find_endpoint p e with
                  | Some local -> Some (e, local)
                  | None -> None)
                fetch_eps
            in
            let device = Device.to_string p.Partition.device in
            try
              let vs =
                Executor.execute plan ~feeds:local_feeds
                  ~fetches:(List.map snd local_fetches)
                  ~resources:(t.resource_router p.Partition.device)
                  ~rendezvous:r.Remote.rendezvous ~cancel ~seed:t.seed
                  ~step_id ()
              in
              Mutex.lock results_mutex;
              results :=
                List.map2 (fun (orig, _) v -> (orig, v)) local_fetches vs
                @ !results;
              Mutex.unlock results_mutex
            with
            | Step_failure.Error f ->
                record_failure
                  (if f.Step_failure.device = None then
                     { f with Step_failure.device = Some device }
                   else f)
            | Rendezvous.Aborted reason ->
                record_failure
                  (Step_failure.v ~device
                     (Step_failure.Rendezvous_aborted reason))
            | e ->
                record_failure
                  (Step_failure.v ~device
                     (Step_failure.Kernel_failed (Printexc.to_string e)))
          in
          let threads = List.map (fun p -> Thread.create run_part p) my_parts in
          List.iter Thread.join threads;
          match
            List.stable_sort
              (fun (a : Step_failure.t) b ->
                compare
                  (Step_failure.is_secondary a.Step_failure.cause)
                  (Step_failure.is_secondary b.Step_failure.cause))
              (List.rev !errors)
          with
          | f :: _ -> Error f
          | [] -> Ok !results
        end
  with
  | Run_error f | Step_failure.Error f -> Error f
  | e -> Error (Step_failure.v (Step_failure.Kernel_failed (Printexc.to_string e)))

(* The legacy entry points are thin wrappers over {!run_with_metadata}. *)

let run ?feeds ?targets ?deadline t fetches =
  fst
    (run_with_metadata
       ~options:(Run_options.v ?feeds ?targets ?deadline ())
       t fetches)

let run_traced ?feeds ?targets ?deadline t fetches =
  let tensors, md =
    run_with_metadata
      ~options:(Run_options.v ?feeds ?targets ?deadline ~trace:true ())
      t fetches
  in
  (tensors, Option.get md.Run_metadata.tracer)

let run_unit ?feeds ?deadline t targets =
  ignore (run ?feeds ?deadline ~targets t [])
