(* Jittered exponential backoff, shared by checkpoint-restore retries
   (Supervisor) and socket reconnects (Octf_net). Delays are
   deterministic for a given (policy seed, attempt) pair so tests and CI
   reproduce the same retry timeline run after run. *)

type policy = {
  base : float;
  multiplier : float;
  cap : float;
  jitter : float;  (* fraction of the delay randomized, in [0, 1] *)
  max_attempts : int option;
  seed : int;
}

type t = { policy : policy; mutable attempt : int }

let policy ?(base = 0.01) ?(multiplier = 2.0) ?(cap = 1.0) ?(jitter = 0.0)
    ?max_attempts ?(seed = 0) () =
  if base < 0.0 then invalid_arg "Backoff.policy: negative base";
  if multiplier < 1.0 then invalid_arg "Backoff.policy: multiplier < 1";
  if jitter < 0.0 || jitter > 1.0 then
    invalid_arg "Backoff.policy: jitter outside [0, 1]";
  { base; multiplier; cap; jitter; max_attempts; seed }

let create policy = { policy; attempt = 0 }

let reset t = t.attempt <- 0

let attempts t = t.attempt

(* splitmix64-style finalizer on (seed, attempt): the same deterministic
   coin the fault injector uses, so a seeded run replays exactly. *)
let coin ~seed ~attempt =
  let z =
    Int64.add
      (Int64.mul (Int64.of_int (seed + 1)) 0x9E3779B97F4A7C15L)
      (Int64.mul (Int64.of_int (attempt + 1)) 0xBF58476D1CE4E5B9L)
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 30) in
  let z = Int64.mul z 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) in
  let z = Int64.mul z 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0

let delay_for policy ~attempt =
  let raw = policy.base *. (policy.multiplier ** float_of_int attempt) in
  let capped = Float.min policy.cap raw in
  if policy.jitter = 0.0 then capped
  else
    (* Spread the delay over [(1 - jitter) .. 1] * capped: jitter only
       shortens, so the cap stays an upper bound. *)
    let u = coin ~seed:policy.seed ~attempt in
    capped *. (1.0 -. (policy.jitter *. u))

let next t =
  match t.policy.max_attempts with
  | Some m when t.attempt >= m -> None
  | _ ->
      let d = delay_for t.policy ~attempt:t.attempt in
      t.attempt <- t.attempt + 1;
      Some d

let wait t =
  match next t with
  | None -> false
  | Some d ->
      if d > 0.0 then Thread.delay d;
      true
