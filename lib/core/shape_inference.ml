open Octf_tensor

type shape = Known of int array | Unknown

exception Shape_error of string

let to_string = function
  | Unknown -> "?"
  | Known s -> Shape.to_string s

let fail n fmt =
  Printf.ksprintf
    (fun msg -> raise (Shape_error (Printf.sprintf "%s: %s" n.Node.name msg)))
    fmt

type engine = {
  graph : Graph.t;
  memo : (int, shape list) Hashtbl.t;
}

let engine graph = { graph; memo = Hashtbl.create 64 }

let conv_out ~same ~in_size ~filter ~stride =
  if same then (in_size + stride - 1) / stride
  else ((in_size - filter) / stride) + 1

let rec node_shapes eng (n : Node.t) =
  match Hashtbl.find_opt eng.memo n.Node.id with
  | Some s -> s
  | None ->
      (* Seed to terminate loop back edges (Merge <- NextIteration). *)
      Hashtbl.replace eng.memo n.Node.id
        (List.init (max 1 (Node.num_outputs n)) (fun _ -> Unknown));
      let result = compute eng n in
      Hashtbl.replace eng.memo n.Node.id result;
      result

and input_shape eng (n : Node.t) i =
  let (e : Node.endpoint) = n.Node.inputs.(i) in
  let producer = Graph.get eng.graph e.node_id in
  match List.nth_opt (node_shapes eng producer) e.index with
  | Some s -> s
  | None -> Unknown

and compute eng (n : Node.t) =
  let one s = [ s ] in
  let in_n i = input_shape eng n i in
  let all_inputs () =
    List.init (Array.length n.Node.inputs) (fun i -> in_n i)
  in
  let same_as_first () = one (in_n 0) in
  let broadcast_all () =
    let shapes = all_inputs () in
    let combined =
      List.fold_left
        (fun acc s ->
          match (acc, s) with
          | Unknown, _ | _, Unknown -> Unknown
          | Known a, Known b -> (
              match Shape.broadcast a b with
              | s -> Known s
              | exception Invalid_argument _ ->
                  fail n "cannot broadcast %s with %s" (Shape.to_string a)
                    (Shape.to_string b)))
        (Known [||]) shapes
    in
    one combined
  in
  match n.Node.op_type with
  | "Const" -> one (Known (Tensor.shape (Node.attr_tensor n "value")))
  | "Placeholder" | "Fill" | "RandomUniform" | "RandomNormal" ->
      one (Known (Node.attr_shape n "shape"))
  | "Variable" ->
      (* The handle itself has no tensor shape. *)
      one Unknown
  | "Read" | "Assign" | "AssignAdd" | "AssignSub" | "ScatterAdd"
  | "ScatterSub" | "ScatterUpdate" -> (
      (* All yield the variable's value; pull the shape from the
         producing Variable node's attribute. *)
      let (e : Node.endpoint) = n.Node.inputs.(0) in
      let producer = Graph.get eng.graph e.node_id in
      match
        (producer.Node.op_type, Attr.find_shape producer.Node.attrs "shape")
      with
      | "Variable", Some s when Shape.rank s > 0 || Shape.numel s = 1 ->
          one (Known s)
      | _ -> one Unknown)
  | "Add" | "Sub" | "Mul" | "Div" | "Pow" | "Mod" | "Maximum" | "Minimum" ->
      broadcast_all ()
  | "Equal" | "Less" | "Greater" | "GreaterEqual" -> broadcast_all ()
  | "Select" -> broadcast_all ()
  | "Neg" | "Abs" | "Sign" | "Exp" | "Log" | "Sqrt" | "Square"
  | "Reciprocal" | "Relu" | "Sigmoid" | "Tanh" | "Softmax" | "LogSoftmax"
  | "Identity" | "StopGradient" | "Cast" | "ZerosLike" | "OnesLike"
  | "Enter" | "Exit" | "NextIteration" | "LoopCond" | "Dequantize" ->
      same_as_first ()
  | "AddN" | "FusedElementwise" -> broadcast_all ()
  | "MatMul" -> (
      let ta = Node.attr_bool n "transpose_a"
      and tb = Node.attr_bool n "transpose_b" in
      match (in_n 0, in_n 1) with
      | Known a, Known b when Shape.rank a = 2 && Shape.rank b = 2 ->
          let m, k = if ta then (a.(1), a.(0)) else (a.(0), a.(1)) in
          let k2, p = if tb then (b.(1), b.(0)) else (b.(0), b.(1)) in
          if k <> k2 then
            fail n "MatMul inner dimensions %d vs %d (shapes %s x %s)" k k2
              (Shape.to_string a) (Shape.to_string b);
          one (Known [| m; p |])
      | Known a, _ when Shape.rank a <> 2 ->
          fail n "MatMul operand is not 2-D: %s" (Shape.to_string a)
      | _, Known b when Shape.rank b <> 2 ->
          fail n "MatMul operand is not 2-D: %s" (Shape.to_string b)
      | _ -> one Unknown)
  | "Reshape" -> (
      let target = Node.attr_shape n "shape" in
      let has_wildcard = Array.exists (fun d -> d = -1) target in
      match in_n 0 with
      | Known s when has_wildcard ->
          let known =
            Array.fold_left
              (fun acc d -> if d = -1 then acc else acc * d)
              1 target
          in
          if known = 0 || Shape.numel s mod known <> 0 then
            fail n "cannot reshape %s to %s" (Shape.to_string s)
              (Shape.to_string target);
          one
            (Known
               (Array.map
                  (fun d -> if d = -1 then Shape.numel s / known else d)
                  target))
      | Known s when Shape.numel s <> Shape.numel target ->
          fail n "cannot reshape %s to %s" (Shape.to_string s)
            (Shape.to_string target)
      | _ -> if has_wildcard then one Unknown else one (Known target))
  | "ExpandDims" -> (
      match in_n 0 with
      | Known s ->
          let axis = Node.attr_int n "axis" in
          let r = Shape.rank s in
          let axis = if axis < 0 then axis + r + 1 else axis in
          if axis < 0 || axis > r then fail n "ExpandDims axis out of range";
          one
            (Known
               (Array.concat
                  [ Array.sub s 0 axis; [| 1 |]; Array.sub s axis (r - axis) ]))
      | Unknown -> one Unknown)
  | "Transpose" -> (
      match in_n 0 with
      | Known s ->
          let perm =
            match Attr.find_ints n.Node.attrs "perm" with
            | Some p -> Array.of_list p
            | None -> Array.init (Shape.rank s) (fun i -> Shape.rank s - 1 - i)
          in
          one (Known (Array.map (fun i -> s.(i)) perm))
      | Unknown -> one Unknown)
  | "Concat" -> (
      let shapes = all_inputs () in
      if List.exists (fun s -> s = Unknown) shapes then one Unknown
      else
        let known =
          List.map (function Known s -> s | Unknown -> assert false) shapes
        in
        match Shape.concat known ~axis:(Node.attr_int n "axis") with
        | s -> one (Known s)
        | exception Invalid_argument msg -> fail n "%s" msg)
  | "Slice" -> (
      let size = Array.of_list (Node.attr_ints n "size") in
      match in_n 0 with
      | Known s ->
          let begin_ = Array.of_list (Node.attr_ints n "begin") in
          let out =
            Array.mapi
              (fun i d -> if d = -1 then s.(i) - begin_.(i) else d)
              size
          in
          Array.iteri
            (fun i d ->
              if begin_.(i) < 0 || begin_.(i) + d > s.(i) then
                fail n "slice out of bounds on axis %d" i)
            out;
          one (Known out)
      | Unknown ->
          if Array.exists (fun d -> d = -1) size then one Unknown
          else one (Known size))
  | "Pad" -> (
      match in_n 0 with
      | Known s ->
          let flat = Node.attr_ints n "paddings" in
          let rec pairs = function
            | [] -> []
            | a :: b :: rest -> (a, b) :: pairs rest
            | [ _ ] -> fail n "odd paddings"
          in
          let p = Array.of_list (pairs flat) in
          one
            (Known
               (Array.mapi (fun i d -> d + fst p.(i) + snd p.(i)) s))
      | Unknown -> one Unknown)
  | "Tile" -> (
      match in_n 0 with
      | Known s ->
          let m = Array.of_list (Node.attr_ints n "multiples") in
          one (Known (Array.mapi (fun i d -> d * m.(i)) s))
      | Unknown -> one Unknown)
  | "OneHot" -> (
      match in_n 0 with
      | Known s ->
          one (Known (Array.append s [| Node.attr_int n "depth" |]))
      | Unknown -> one Unknown)
  | "Gather" -> (
      match (in_n 0, in_n 1) with
      | Known params, Known idx when Shape.rank params >= 1 ->
          one
            (Known
               (Array.append idx (Array.sub params 1 (Shape.rank params - 1))))
      | _ -> one Unknown)
  | "Pack" -> (
      let shapes = all_inputs () in
      match shapes with
      | Known first :: rest ->
          List.iter
            (function
              | Known s when s <> first ->
                  fail n "Pack of mismatched shapes %s vs %s"
                    (Shape.to_string first) (Shape.to_string s)
              | _ -> ())
            rest;
          if List.for_all (fun s -> s <> Unknown) rest then
            one (Known (Array.append [| List.length shapes |] first))
          else one Unknown
      | _ -> one Unknown)
  | "Unpack" -> (
      let num = Node.attr_int n "num" in
      match in_n 0 with
      | Known s when Shape.rank s >= 1 ->
          if s.(0) <> num then
            fail n "Unpack num %d does not match leading dimension %d" num
              s.(0);
          List.init num (fun _ ->
              Known (Array.sub s 1 (Shape.rank s - 1)))
      | _ -> List.init num (fun _ -> Unknown))
  | "Split" -> (
      let num = Node.attr_int n "num" in
      match in_n 0 with
      | Known s ->
          let axis = Shape.normalize_axis s (Node.attr_int n "axis") in
          if s.(axis) mod num <> 0 then
            fail n "Split axis %d (size %d) not divisible by %d" axis s.(axis)
              num;
          let piece = Array.copy s in
          piece.(axis) <- s.(axis) / num;
          List.init num (fun _ -> Known piece)
      | Unknown -> List.init num (fun _ -> Unknown))
  | "ReduceSum" | "ReduceMean" | "ReduceMax" -> (
      match in_n 0 with
      | Known s ->
          let axes =
            Option.value ~default:[] (Attr.find_ints n.Node.attrs "axes")
          in
          let keep =
            Option.value ~default:false
              (Attr.find_bool n.Node.attrs "keep_dims")
          in
          one (Known (Shape.reduce ~keep_dims:keep s axes))
      | Unknown -> one Unknown)
  | "ArgMax" -> (
      match in_n 0 with
      | Known s ->
          one (Known (Shape.reduce s [ Node.attr_int n "axis" ]))
      | Unknown -> one Unknown)
  | "ShapeOf" -> (
      match in_n 0 with
      | Known s -> one (Known [| Shape.rank s |])
      | Unknown -> one Unknown)
  | "Conv2D" -> (
      match (in_n 0, in_n 1) with
      | Known i, Known f when Shape.rank i = 4 && Shape.rank f = 4 ->
          if i.(3) <> f.(2) then
            fail n "Conv2D channels %d vs filter in-channels %d" i.(3) f.(2);
          let same = Node.attr_string n "padding" = "SAME" in
          let sh, sw =
            match Node.attr_ints n "strides" with
            | [ a; b ] -> (a, b)
            | _ -> fail n "bad strides"
          in
          one
            (Known
               [|
                 i.(0);
                 conv_out ~same ~in_size:i.(1) ~filter:f.(0) ~stride:sh;
                 conv_out ~same ~in_size:i.(2) ~filter:f.(1) ~stride:sw;
                 f.(3);
               |])
      | _ -> one Unknown)
  | "MaxPool" | "AvgPool" -> (
      match in_n 0 with
      | Known i when Shape.rank i = 4 ->
          let same = Node.attr_string n "padding" = "SAME" in
          let kh, kw =
            match Node.attr_ints n "ksize" with
            | [ a; b ] -> (a, b)
            | _ -> fail n "bad ksize"
          in
          let sh, sw =
            match Node.attr_ints n "strides" with
            | [ a; b ] -> (a, b)
            | _ -> fail n "bad strides"
          in
          one
            (Known
               [|
                 i.(0);
                 conv_out ~same ~in_size:i.(1) ~filter:kh ~stride:sh;
                 conv_out ~same ~in_size:i.(2) ~filter:kw ~stride:sw;
                 i.(3);
               |])
      | _ -> one Unknown)
  | "SoftmaxCrossEntropy" -> (
      match in_n 0 with
      | Known s when Shape.rank s = 2 -> [ Known [| s.(0) |]; Known s ]
      | _ -> [ Unknown; Unknown ])
  | "Switch" ->
      let s = in_n 0 in
      [ s; s ]
  | "Merge" -> (
      match List.find_opt (fun s -> s <> Unknown) (all_inputs ()) with
      | Some s -> one s
      | None -> one Unknown)
  | "Quantize" | "QuantizeRange" -> [ in_n 0; Known [||]; Known [||] ]
  | "QuantizedMatMul" | "QuantizedMatMulQ" ->
      (* codes at inputs 0 and 3, range scalars between; lhs may be
         batched ([...; m; k]), rhs 2-D or batched alongside. *)
      let out =
        match (in_n 0, in_n 3) with
        | Known a, Known b when Shape.rank a >= 2 && Shape.rank b >= 2 ->
            let ra = Shape.rank a and rb = Shape.rank b in
            let k = a.(ra - 1) and kb = b.(rb - 2) in
            if k <> kb then
              fail n "QuantizedMatMul inner dimensions %d vs %d" k kb;
            let s = Array.copy a in
            s.(ra - 1) <- b.(rb - 1);
            Known s
        | _ -> Unknown
      in
      if n.Node.op_type = "QuantizedMatMul" then one out
      else [ out; Known [||]; Known [||] ]
  | "QuantizedConv2D" | "QuantizedConv2DQ" ->
      let out =
        match (in_n 0, in_n 3) with
        | Known i, Known f when Shape.rank i = 4 && Shape.rank f = 4 ->
            if i.(3) <> f.(2) then
              fail n "QuantizedConv2D channels %d vs filter in-channels %d"
                i.(3) f.(2);
            let same = Node.attr_string n "padding" = "SAME" in
            let sh, sw =
              match Node.attr_ints n "strides" with
              | [ a; b ] -> (a, b)
              | _ -> fail n "bad strides"
            in
            Known
              [|
                i.(0);
                conv_out ~same ~in_size:i.(1) ~filter:f.(0) ~stride:sh;
                conv_out ~same ~in_size:i.(2) ~filter:f.(1) ~stride:sw;
                f.(3);
              |]
        | _ -> Unknown
      in
      if n.Node.op_type = "QuantizedConv2D" then one out
      else [ out; Known [||]; Known [||] ]
  | "RangeLike" -> one Unknown
  | "RandomIndices" -> one (Known [| Node.attr_int n "n" |])
  | _ ->
      (* Unmodelled op: every output unknown. *)
      List.init (max 1 (Node.num_outputs n)) (fun _ -> Unknown)

let infer_node graph n = node_shapes (engine graph) n

let endpoint_shape eng (e : Node.endpoint) =
  let n = Graph.get eng.graph e.node_id in
  match List.nth_opt (node_shapes eng n) e.index with
  | Some s -> s
  | None -> Unknown

let output_shape eng (o : Builder.output) =
  endpoint_shape eng (Builder.endpoint_of_output o)

let validate graph =
  let eng = engine graph in
  Graph.iter graph (fun n -> ignore (node_shapes eng n))
