open Octf_tensor

(* All failures surface as {!Step_failure.Error}; [invalid] marks
   graph-structure problems found at compile or delivery time. *)
let invalid msg = Step_failure.error (Step_failure.Invalid_graph msg)

(* ------------------------------------------------------------------ *)
(* Static structure: frames                                            *)
(* ------------------------------------------------------------------ *)

type static_frame = {
  sf_name : string;  (* "" for the root frame *)
  sf_parent : static_frame option;
  sf_depth : int;
}

let root_frame = { sf_name = ""; sf_parent = None; sf_depth = 0 }

let rec frame_is_ancestor ~anc f =
  anc == f
  || match f.sf_parent with None -> false | Some p -> frame_is_ancestor ~anc p

(* ------------------------------------------------------------------ *)
(* Compiled subgraph                                                    *)
(* ------------------------------------------------------------------ *)

type cnode = {
  node : Node.t;
  mutable out_data : (int * int * int) list;  (* (out_index, dst, slot) *)
  mutable out_control : int list;
  mutable in_count : int;  (* arrivals needed (invariant edges excluded) *)
  mutable invariant_slots : int list;  (* input slots fed by invariant nodes *)
  mutable invariant_controls : int;  (* control inputs from invariant nodes *)
  mutable frame : static_frame;
  is_merge : bool;
  (* An invariant node executes once per frame instance and its outputs
     are visible in every iteration: constant Enters, and any stateless
     in-frame node all of whose inputs are invariant. *)
  mutable is_invariant : bool;
  mutable kernel : Kernel.t option;  (* resolved at compile time *)
}

type compiled = {
  graph : Graph.t;
  cnodes : (int, cnode) Hashtbl.t;
}

let is_const_enter_node (n : Node.t) =
  n.Node.op_type = "Enter"
  && Option.value ~default:false (Attr.find_bool n.Node.attrs "is_constant")

let never_invariant op =
  match op with
  | "Merge" | "Switch" | "Exit" | "NextIteration" | "Enter" | "LoopCond" ->
      true
  | _ -> false

let compile graph nodes fed =
  Builtin_kernels.ensure ();
  let in_set = Hashtbl.create (List.length nodes * 2) in
  List.iter (fun id -> Hashtbl.replace in_set id ()) nodes;
  let frames = Hashtbl.create 8 in
  Hashtbl.replace frames "" root_frame;
  let cnodes = Hashtbl.create (List.length nodes * 2) in
  List.iter
    (fun id ->
      let n = Graph.get graph id in
      Hashtbl.replace cnodes id
        {
          node = n;
          out_data = [];
          out_control = [];
          in_count = 0;
          invariant_slots = [];
          invariant_controls = 0;
          frame = root_frame;
          is_merge = n.Node.op_type = "Merge";
          is_invariant = is_const_enter_node n;
          kernel = None;
        })
    nodes;
  let cnode id = Hashtbl.find cnodes id in
  let executed id = Hashtbl.mem in_set id in
  let out_frame cn =
    match cn.node.Node.op_type with
    | "Exit" -> (
        match cn.frame.sf_parent with
        | Some p -> p
        | None ->
            raise (invalid ("Exit outside a frame: " ^ cn.node.Node.name)))
    | _ -> cn.frame
  in
  (* One topological pass (loop back edges ignored) assigns frames and
     invariant-ness. *)
  let order = Graph.topological_order graph in
  List.iter
    (fun (n : Node.t) ->
      if executed n.Node.id then begin
        let cn = cnode n.Node.id in
        let input_ids =
          Array.to_list
            (Array.map (fun (e : Node.endpoint) -> e.node_id) n.Node.inputs)
          @ n.Node.control_inputs
        in
        let input_frames =
          List.filter_map
            (fun src ->
              if executed src then Some (out_frame (cnode src)) else None)
            input_ids
        in
        let deepest =
          List.fold_left
            (fun acc f -> if f.sf_depth > acc.sf_depth then f else acc)
            root_frame input_frames
        in
        List.iter
          (fun f ->
            if not (frame_is_ancestor ~anc:f deepest) then
              raise
                (invalid
                   (Printf.sprintf
                      "node %s mixes values from unrelated frames %S and %S \
                       (pass loop-external values via ~invariants)"
                      n.Node.name f.sf_name deepest.sf_name)))
          input_frames;
        (match n.Node.op_type with
        | "Enter" ->
            let name = Node.attr_string n "frame_name" in
            let frame =
              match Hashtbl.find_opt frames name with
              | Some f -> f
              | None ->
                  let f =
                    {
                      sf_name = name;
                      sf_parent = Some deepest;
                      sf_depth = deepest.sf_depth + 1;
                    }
                  in
                  Hashtbl.replace frames name f;
                  f
            in
            cn.frame <- frame
        | _ -> cn.frame <- deepest);
        (* Invariant propagation: inside a frame, a stateless node whose
           inputs are all invariant is itself invariant. *)
        if
          (not cn.is_invariant)
          && cn.frame != root_frame
          && (not (never_invariant n.Node.op_type))
          && (not (Node.is_stateful n))
          && input_ids <> []
          && List.for_all
               (fun src -> executed src && (cnode src).is_invariant)
               input_ids
        then cn.is_invariant <- true
      end)
    order;
  (* An edge must stay within one frame unless it feeds an Enter or
     comes from an invariant node (which lives in the consumer's frame).
     Producer-side Exit/NextIteration adjustments keep those edges
     same-frame from the value's point of view. *)
  let check_edge_frames src cn =
    let sf =
      match src.node.Node.op_type with
      | "Exit" -> (
          match src.frame.sf_parent with Some p -> p | None -> src.frame)
      | _ -> src.frame
    in
    let df = cn.frame in
    if sf != df && cn.node.Node.op_type <> "Enter" && not src.is_invariant
    then
      raise
        (invalid
           (Printf.sprintf
              "edge %s -> %s crosses loop frames (%S -> %S); pass \
               loop-external values through ~invariants (constants created \
               inside a loop body must enter its frame)"
              src.node.Node.name cn.node.Node.name sf.sf_name df.sf_name))
  in
  (* Wire edges and arrival counts, restricted to the executed set. *)
  Hashtbl.iter
    (fun id cn ->
      let n = cn.node in
      if not (Hashtbl.mem fed id) then begin
        Array.iteri
          (fun slot (e : Node.endpoint) ->
            if not (executed e.node_id) then
              invalid_arg
                (Printf.sprintf
                   "Executor: input %s of %s is outside the executed subgraph"
                   (Graph.get graph e.node_id).Node.name n.Node.name);
            let src = cnode e.node_id in
            check_edge_frames src cn;
            src.out_data <- (e.index, id, slot) :: src.out_data;
            if src.is_invariant then
              cn.invariant_slots <- slot :: cn.invariant_slots
            else cn.in_count <- cn.in_count + 1)
          n.Node.inputs;
        List.iter
          (fun c ->
            if executed c then begin
              let src = cnode c in
              check_edge_frames src cn;
              src.out_control <- id :: src.out_control;
              if src.is_invariant then
                cn.invariant_controls <- cn.invariant_controls + 1
              else cn.in_count <- cn.in_count + 1
            end)
          n.Node.control_inputs
      end)
    cnodes;
  { graph; cnodes }

(* ------------------------------------------------------------------ *)
(* Dynamic state                                                        *)
(* ------------------------------------------------------------------ *)

type iter_state = {
  it_index : int;
  values : (int, Value.t) Hashtbl.t;  (* key = node_id lsl 20 lor out *)
  arrived : (int, int) Hashtbl.t;
  dead_control : (int, unit) Hashtbl.t;  (* nodes with a dead control token *)
  non_dead_seen : (int, unit) Hashtbl.t;  (* merges with a live data input *)
  done_nodes : (int, unit) Hashtbl.t;
  (* Memory planning: remaining unfinished data consumers per produced
     endpoint (key = value_key), for planner-owned (fresh) endpoints
     only. An endpoint whose count reaches zero is dropped from
     [values]. Missing entries mean "not tracked" — early-firing merges
     and cross-frame edges decrement nothing, which leaks (until step
     end) but never frees a value that is still needed. *)
  rc : (int, int) Hashtbl.t;
  (* Endpoints whose buffer was granted in-place to a consumer: the
     consumer's output (or a variable) now owns it, so a later drop must
     neither un-count its bytes nor recycle the buffer. *)
  transferred : (int, unit) Hashtbl.t;
}

type instance = {
  inst_frame : static_frame;
  inst_parent : (instance * int) option;
  iterations : (int, iter_state) Hashtbl.t;
  invariants : (int, Value.t) Hashtbl.t;  (* key = value_key *)
  invariant_done : (int, unit) Hashtbl.t;  (* invariant node ids executed *)
  inst_key : string;
}

let value_key node_id out = (node_id lsl 20) lor out

let new_iter index =
  {
    it_index = index;
    values = Hashtbl.create 16;
    arrived = Hashtbl.create 16;
    dead_control = Hashtbl.create 4;
    non_dead_seen = Hashtbl.create 4;
    done_nodes = Hashtbl.create 16;
    rc = Hashtbl.create 16;
    transferred = Hashtbl.create 4;
  }

(* Static lifetime facts for the general path, computed once per plan:
   how many executed data consumers each planner-owned endpoint has,
   which of those endpoints may hand their buffer to the pool when
   dropped, and which node ids own their outputs at all. *)
type mem_info = {
  mi_counts : (int, int) Hashtbl.t;  (* value_key -> static consumer count *)
  mi_poolable : (int, unit) Hashtbl.t;  (* value_key set *)
  mi_fresh : (int, unit) Hashtbl.t;  (* node ids with planner-owned outputs *)
}

type state = {
  compiled : compiled;
  resources : Resource_manager.t;
  rendezvous : Rendezvous.t option;
  tracer : Tracer.t option;
  cancel : Cancel.t option;
  seed : int;
  step_id : int;
  var_snapshot : (string -> Octf_tensor.Tensor.t option) option;
  instances : (string, instance) Hashtbl.t;
  planning : bool;  (* lifetime-driven drops / grants enabled this step *)
  mem : mem_info;
  pinned : (int, unit) Hashtbl.t;  (* fetched value_keys: never drop/grant *)
  fed : (int, unit) Hashtbl.t;  (* fed node ids: inputs unwired, no counts *)
  live : int ref;  (* planner-tracked live bytes, this step *)
  (* Set right after creation (the scheduler's callbacks close over the
     state, so the two are built in sequence). *)
  mutable sched : (cnode * instance * iter_state) Scheduler.t option;
}

let get_iter inst index =
  match Hashtbl.find_opt inst.iterations index with
  | Some it -> it
  | None ->
      let it = new_iter index in
      Hashtbl.replace inst.iterations index it;
      it

let child_instance st frame (parent : instance) parent_iter =
  let key =
    Printf.sprintf "%s|%s.%d" frame.sf_name parent.inst_key parent_iter
  in
  match Hashtbl.find_opt st.instances key with
  | Some i -> i
  | None ->
      let i =
        {
          inst_frame = frame;
          inst_parent = Some (parent, parent_iter);
          iterations = Hashtbl.create 4;
          invariants = Hashtbl.create 4;
          invariant_done = Hashtbl.create 4;
          inst_key = key;
        }
      in
      ignore (get_iter i 0);
      Hashtbl.replace st.instances key i;
      i

let m_kernels =
  Metrics.Counter.v ~help:"Kernels dispatched by the executor"
    "octf_executor_kernels_total"

let m_op_seconds op =
  Metrics.Counter.v ~help:"Kernel wall-clock seconds by op type"
    ~labels:[ ("op_type", op) ]
    "octf_executor_op_seconds_total"

let m_lane_busy lane =
  Metrics.Counter.v ~help:"Kernel wall-clock seconds by execution lane"
    ~labels:[ ("lane", string_of_int lane) ]
    "octf_executor_lane_busy_seconds_total"

let m_intra_op_parallel =
  Metrics.Counter.v ~help:"Kernel loops that sharded across the domain pool"
    "octf_intra_op_parallel_total"

let m_intra_op_shards =
  Metrics.Counter.v ~help:"Intra-op shards dispatched to the domain pool"
    "octf_intra_op_shards_total"

(* Every sharded parallel_for in the process feeds the intra-op counters,
   whichever kernel (or library caller) ran it. *)
let () =
  Octf_tensor.Parallel.set_shard_hook (fun shards ->
      Metrics.Counter.incr m_intra_op_parallel;
      Metrics.Counter.add m_intra_op_shards shards)

(* Wrap one kernel invocation. The dispatch counter is always bumped;
   the gettimeofday pair (and the derived per-op-type / per-lane series
   and tracer event) is gated on an active tracer or the process-wide
   [Metrics.kernel_timing] flag, so the null-op dispatch benchmark pays
   one counter increment and nothing else. [bytes_of] extracts the
   payload size from the kernel's result (Recv'd tensor bytes). *)
let trace tracer (n : Node.t) ~step_id ?(bytes_of = fun _ -> 0)
    ?(peak_of = fun _ -> 0) f =
  Metrics.Counter.incr m_kernels;
  if Option.is_none tracer && not (Metrics.kernel_timing ()) then f ()
  else begin
    (* The sharder's per-domain dispatch counter, sampled around the
       kernel, attributes intra-op shard counts to this node: sharding is
       always initiated on the domain the kernel runs on. *)
    let shards_before = Octf_tensor.Parallel.domain_shards () in
    let start = Unix.gettimeofday () in
    let result = f () in
    let stop = Unix.gettimeofday () in
    let duration = stop -. start in
    let shards = Octf_tensor.Parallel.domain_shards () - shards_before in
    let lane = (Domain.self () :> int) in
    Metrics.Counter.add_f (m_op_seconds n.Node.op_type) duration;
    Metrics.Counter.add_f (m_lane_busy lane) duration;
    (match tracer with
    | None -> ()
    | Some t ->
        Tracer.record t
          {
            Tracer.name = n.Node.name;
            op_type = n.Node.op_type;
            device =
              (match n.Node.assigned_device with
              | Some d -> Device.to_string d
              | None -> "/device:CPU:0");
            lane;
            start;
            duration;
            step_id;
            bytes = bytes_of result;
            shards;
            peak_bytes = peak_of result;
            fused =
              Option.value ~default:0
                (Attr.find_int n.Node.attrs "fused_nodes");
          });
    result
  end

let blocking_op = function
  | "Recv" | "Dequeue" | "DequeueMany" | "Enqueue" | "EnqueueMany" -> true
  | _ -> false

let recv_rendezvous_key ~step_id (n : Node.t) =
  Rendezvous.step_key ~step_id
    ~send_device:(Node.attr_string n "send_device")
    ~recv_device:(Node.attr_string n "recv_device")
    ~tensor_name:(Node.attr_string n "tensor_name")

let invariants_available inst (cn : cnode) =
  (cn.invariant_slots == [] && cn.invariant_controls = 0)
  || List.for_all
    (fun slot ->
      let (e : Node.endpoint) = cn.node.Node.inputs.(slot) in
      Hashtbl.mem inst.invariants (value_key e.node_id e.index))
    cn.invariant_slots
  && List.length
       (List.filter
          (fun c -> Hashtbl.mem inst.invariant_done c)
          cn.node.Node.control_inputs)
     >= cn.invariant_controls

let schedule st cn inst it =
  match st.sched with
  | Some sched -> Scheduler.add sched (cn, inst, it)
  | None -> assert false

(* Readiness. Per-iteration nodes fire once per (instance, iteration);
   invariant nodes fire once per instance, executing in iteration 0's
   context (their per-iteration arrivals — e.g. a constant Enter's input
   — are always delivered at iteration 0). *)
let check_ready st cn inst (it : iter_state) =
  let id = cn.node.Node.id in
  if cn.is_invariant then begin
    if not (Hashtbl.mem inst.invariant_done id) then begin
      let it0 = get_iter inst 0 in
      let count = Option.value ~default:0 (Hashtbl.find_opt it0.arrived id) in
      if count >= cn.in_count && invariants_available inst cn then begin
        Hashtbl.replace inst.invariant_done id ();
        schedule st cn inst it0
      end
    end
  end
  else if not (Hashtbl.mem it.done_nodes id) then begin
    let count = Option.value ~default:0 (Hashtbl.find_opt it.arrived id) in
    let ready =
      if cn.is_merge then
        Hashtbl.mem it.non_dead_seen id || count >= cn.in_count
      else count >= cn.in_count && invariants_available inst cn
    in
    if ready then begin
      Hashtbl.replace it.done_nodes id ();
      schedule st cn inst it
    end
  end

(* Deliver a value along one edge. [slot] = -1 encodes a control token. *)
let deliver st ~(src : cnode) ~(v : Value.t) ~inst ~(it : iter_state)
    ~(dst_id : int) ~(slot : int) ~(out : int) =
  match Hashtbl.find_opt st.compiled.cnodes dst_id with
  | None -> ()  (* consumer pruned away *)
  | Some dst ->
      (* Producer-side context adjustment. *)
      let inst, iter_idx =
        match src.node.Node.op_type with
        | "Exit" -> (
            match inst.inst_parent with
            | Some (p, pi) -> (p, pi)
            | None ->
                raise (invalid ("Exit in root frame: " ^ src.node.Node.name)))
        | "NextIteration" -> (inst, it.it_index + 1)
        | _ -> (inst, it.it_index)
      in
      (* Consumer-side adjustment: Enter executes in the child frame. *)
      let inst, iter_idx =
        if dst.node.Node.op_type = "Enter" then
          (child_instance st dst.frame inst iter_idx, 0)
        else (inst, iter_idx)
      in
      let target_it = get_iter inst iter_idx in
      let id = dst.node.Node.id in
      if slot >= 0 then
        Hashtbl.replace target_it.values (value_key src.node.Node.id out) v
      else if Value.is_dead v then Hashtbl.replace target_it.dead_control id ();
      Hashtbl.replace target_it.arrived id
        (1 + Option.value ~default:0 (Hashtbl.find_opt target_it.arrived id));
      if dst.is_merge && slot >= 0 && not (Value.is_dead v) then
        Hashtbl.replace target_it.non_dead_seen id ();
      check_ready st dst inst target_it

let store_invariants st (cn : cnode) inst (outputs : Value.t array) =
  Array.iteri
    (fun out v ->
      Hashtbl.replace inst.invariants (value_key cn.node.Node.id out) v)
    outputs;
  Hashtbl.replace inst.invariant_done cn.node.Node.id ();
  (* Wake consumers: invariant consumers cascade; per-iteration consumers
     are re-checked in every existing iteration. *)
  let wake dst_id =
    match Hashtbl.find_opt st.compiled.cnodes dst_id with
    | None -> ()
    | Some dst ->
        if dst.is_invariant then check_ready st dst inst (get_iter inst 0)
        else
          Hashtbl.iter (fun _ it -> check_ready st dst inst it) inst.iterations
  in
  List.iter (fun (_, dst_id, _) -> wake dst_id) cn.out_data;
  List.iter wake cn.out_control

(* Drop one tracked endpoint: forget the stored value so the GC can
   reclaim it, un-count its bytes and offer the backing buffer to the
   pool — unless an in-place grant already transferred ownership to a
   consumer's output. Only called when every remaining reader has
   finished (refcount zero) and the endpoint is not fetched. *)
let drop_value st (it : iter_state) key =
  match Hashtbl.find_opt it.values key with
  | None -> ()
  | Some v -> (
      Hashtbl.remove it.values key;
      if not (Hashtbl.mem it.transferred key) then
        match v with
        | Value.Tensor t ->
            let bytes = Value.byte_size v in
            st.live := !(st.live) - bytes;
            Mem_plan.live_sub bytes;
            if
              Hashtbl.mem st.mem.mi_poolable key
              && Dtype.is_floating (Tensor.dtype t)
            then Buffer_pool.release_float (Tensor.float_buffer t)
        | _ -> ())

let finish_node st (cn : cnode) inst it (outputs : Value.t array) =
  if cn.is_invariant then store_invariants st cn inst outputs
  else begin
    let id = cn.node.Node.id in
    Array.iteri
      (fun out v -> Hashtbl.replace it.values (value_key id out) v)
      outputs;
    (* Lifetime bookkeeping for planner-owned outputs: count the bytes
       (always, so traces and the peak gauge are comparable with
       planning off), arm the consumer refcount, and immediately drop
       endpoints nobody reads. *)
    if Hashtbl.mem st.mem.mi_fresh id then
      Array.iteri
        (fun out v ->
          match v with
          | Value.Tensor _ ->
              let bytes = Value.byte_size v in
              st.live := !(st.live) + bytes;
              Mem_plan.live_add bytes;
              let key = value_key id out in
              let count =
                Option.value ~default:0
                  (Hashtbl.find_opt st.mem.mi_counts key)
              in
              if count > 0 then Hashtbl.replace it.rc key count
              else if st.planning && not (Hashtbl.mem st.pinned key) then
                drop_value st it key
          | _ -> ())
        outputs;
    (* A live Exit value belongs to the parent context too, so that
       fetches (which read the root iteration) can observe loop results
       even when the Exit has no consumer edge. *)
    (match (cn.node.Node.op_type, inst.inst_parent) with
    | "Exit", Some (parent, parent_iter) ->
        let parent_it = get_iter parent parent_iter in
        Array.iteri
          (fun out v ->
            if not (Value.is_dead v) then
              Hashtbl.replace parent_it.values
                (value_key cn.node.Node.id out)
                v)
          outputs
    | _ -> ());
    let drops_dead =
      match cn.node.Node.op_type with
      | "NextIteration" | "Exit" -> true
      | _ -> false
    in
    List.iter
      (fun (out, dst_id, slot) ->
        let v =
          if out < Array.length outputs then outputs.(out) else Value.Dead
        in
        if drops_dead && Value.is_dead v then ()
        else deliver st ~src:cn ~v ~inst ~it ~dst_id ~slot ~out)
      cn.out_data;
    let control_dead =
      Array.length outputs > 0 && Array.for_all Value.is_dead outputs
    in
    if not (drops_dead && control_dead) then
      List.iter
        (fun dst_id ->
          let v = if control_dead then Value.Dead else Value.Tensor (Tensor.scalar_i 0) in
          deliver st ~src:cn ~v ~inst ~it ~dst_id ~slot:(-1) ~out:0)
        cn.out_control;
    (* This node has finished reading its inputs: release its claim on
       each tracked input endpoint. Untracked keys (cross-frame edges,
       inputs a merge fired without) decrement nothing — leak-safe. Fed
       nodes have no wired inputs, so their counts must not move. *)
    if st.planning && not (Hashtbl.mem st.fed id) then
      Array.iteri
        (fun slot (e : Node.endpoint) ->
          if not (List.mem slot cn.invariant_slots) then
            let key = value_key e.node_id e.index in
            match Hashtbl.find_opt it.rc key with
            | None -> ()
            | Some c when c <= 1 ->
                Hashtbl.remove it.rc key;
                if not (Hashtbl.mem st.pinned key) then drop_value st it key
            | Some c -> Hashtbl.replace it.rc key (c - 1))
        cn.node.Node.inputs
  end

let gather_inputs (cn : cnode) inst (it : iter_state) =
  if cn.invariant_slots == [] then
    Array.map
      (fun (e : Node.endpoint) ->
        match Hashtbl.find_opt it.values (value_key e.node_id e.index) with
        | Some v -> v
        | None -> Value.Dead)
      cn.node.Node.inputs
  else
    Array.mapi
      (fun slot (e : Node.endpoint) ->
        let table =
          if List.mem slot cn.invariant_slots then inst.invariants
          else it.values
        in
        match Hashtbl.find_opt table (value_key e.node_id e.index) with
        | Some v -> v
        | None -> Value.Dead)
      cn.node.Node.inputs

let resolve_kernel cn =
  match cn.kernel with
  | Some k -> k
  | None ->
      let n = cn.node in
      let device_type =
        match n.Node.assigned_device with
        | Some d -> d.Device.dev_type
        | None -> Device.CPU
      in
      let k =
        match Kernel.lookup ~op_type:n.Node.op_type ~device:device_type with
        | Some k -> k
        | None -> (
            match Kernel.lookup ~op_type:n.Node.op_type ~device:Device.CPU with
            | Some k -> k
            | None ->
                raise
                  (Step_failure.error ~node:n.Node.name
                     (Step_failure.Invalid_graph
                        (Printf.sprintf "no kernel for op %s (node %s)"
                           n.Node.op_type n.Node.name))))
      in
      cn.kernel <- Some k;
      k

(* Classify an arbitrary kernel exception into a structured failure,
   filling in node/device context when the original carries none. *)
let failure_of_exn ~node ~device e =
  match e with
  | Step_failure.Error f ->
      {
        f with
        Step_failure.node =
          (if f.Step_failure.node = None then Some node
           else f.Step_failure.node);
        device =
          (if f.Step_failure.device = None then device
           else f.Step_failure.device);
      }
  | Fault_injector.Injected msg ->
      Step_failure.v ~node ?device (Step_failure.Fault_injected msg)
  | Rendezvous.Aborted reason ->
      Step_failure.v ~node ?device (Step_failure.Rendezvous_aborted reason)
  | e ->
      Step_failure.v ~node ?device
        (Step_failure.Kernel_failed (Printexc.to_string e))

(* Run [kernel ctx], worker-domain-safe: failures are captured and
   re-raised by the returned continuation on the coordinating thread
   (aborting the rendezvous and cancelling the step token first, so
   peer partitions — including threads parked in queue waits — unblock
   even while the coordinator is busy elsewhere). Wrap in a thunk when
   building a [Scheduler.Offload] — applying it runs the kernel. *)
let offload_kernel ~tracer ~rendezvous ~cancel ~step_id
    ?(live_of = fun () -> 0) (n : Node.t) kernel ctx ~finish =
  let bytes_of outputs =
    match n.Node.op_type with
    | "Recv" ->
        Array.fold_left (fun acc v -> acc + Value.byte_size v) 0 outputs
    | _ -> 0
  in
  (* Per-node memory watermark: live planner-tracked bytes sampled when
     the kernel finishes, plus this node's own (not-yet-counted)
     outputs. The racy read of the live counter is fine — this feeds
     traces, not the planner. *)
  let peak_of outputs =
    live_of ()
    + Array.fold_left (fun acc v -> acc + Value.byte_size v) 0 outputs
  in
  match
    trace tracer n ~step_id ~bytes_of ~peak_of (fun () ->
        Cancel.check_opt cancel;
        Fault_injector.kernel_hook n ~step_id;
        kernel ctx)
  with
  | outputs -> fun () -> finish outputs
  | exception e ->
      let device = Option.map Device.to_string n.Node.assigned_device in
      let f = failure_of_exn ~node:n.Node.name ~device e in
      let msg = Step_failure.to_string f in
      (* A secondary failure (the peer already aborted us, or the step
         token already fired) needs no further propagation. *)
      if not (Step_failure.is_secondary f.Step_failure.cause) then begin
        Option.iter (fun r -> Rendezvous.abort r ~reason:msg) rendezvous;
        Option.iter (fun c -> Cancel.cancel c ~reason:msg) cancel
      end;
      fun () -> raise (Step_failure.Error f)

(* Stage one node on the coordinating thread: gather inputs, decide dead
   propagation, build the kernel context. Everything the returned
   [Offload] thunk touches is either private to it or mutex-protected
   (resources, queues, rendezvous, tracer), so it may run on a worker
   domain. *)
let stage_node st ((cn : cnode), inst, it) =
  let n = cn.node in
  let inputs = gather_inputs cn inst it in
  let any_dead =
    Array.exists Value.is_dead inputs
    || Hashtbl.mem it.dead_control n.Node.id
  in
  let runs_on_dead = n.Node.op_type = "Send" in
  if any_dead && (not cn.is_merge) && not runs_on_dead then
    Scheduler.Finish
      (fun () ->
        finish_node st cn inst it
          (Array.make (max 1 (Node.num_outputs n)) Value.Dead))
  else begin
    let rng =
      Rng.create
        (st.seed
        + (st.step_id * 1_000_003)
        + (n.Node.id * 7_919)
        + (it.it_index * 104_729))
    in
    (* In-place grants: a declared May_alias pair is granted when the
       input endpoint is planner-owned, poolable (no retaining
       consumer), this node is its sole remaining reader, and it is
       neither fetched nor already handed away. Staging and completion
       both run on the coordinating thread, so refcount 1 here means
       every other consumer's kernel has fully finished reading. *)
    let grants =
      if not st.planning then []
      else
        match Kernel.aliases ~op_type:n.Node.op_type with
        | [] -> []
        | decls ->
            let used_in = ref [] and used_out = ref [] in
            List.filter
              (fun (i, o) ->
                (not (List.mem i !used_in))
                && (not (List.mem o !used_out))
                && i < Array.length n.Node.inputs
                && (not (List.mem i cn.invariant_slots))
                &&
                let e = n.Node.inputs.(i) in
                let key = value_key e.node_id e.index in
                let ok =
                  Hashtbl.mem st.mem.mi_fresh e.node_id
                  && Hashtbl.mem st.mem.mi_poolable key
                  && Hashtbl.find_opt it.rc key = Some 1
                  && (not (Hashtbl.mem st.pinned key))
                  && (not (Hashtbl.mem it.transferred key))
                  &&
                  match inputs.(i) with
                  | Value.Tensor t -> Dtype.is_floating (Tensor.dtype t)
                  | _ -> false
                in
                if ok then begin
                  Hashtbl.replace it.transferred key ();
                  let bytes = Value.byte_size inputs.(i) in
                  st.live := !(st.live) - bytes;
                  Mem_plan.live_sub bytes;
                  Mem_plan.count_grant ();
                  used_in := i :: !used_in;
                  used_out := o :: !used_out
                end;
                ok)
              decls
    in
    let ctx =
      {
        Kernel.node = n;
        inputs;
        resources = st.resources;
        rendezvous = st.rendezvous;
        rng;
        step_id = st.step_id;
        cancel = st.cancel;
        grants;
        var_snapshot = st.var_snapshot;
      }
    in
    let kernel = resolve_kernel cn in
    Scheduler.Offload
      (fun () ->
        offload_kernel ~tracer:st.tracer ~rendezvous:st.rendezvous
          ~cancel:st.cancel ~step_id:st.step_id
          ~live_of:(fun () -> !(st.live))
          n kernel ctx
          ~finish:(fun outputs -> finish_node st cn inst it outputs))
  end

(* ------------------------------------------------------------------ *)
(* Plans: compile once, execute per step                               *)
(* ------------------------------------------------------------------ *)

(* Array-indexed fast path for subgraphs with no control flow: no
   frames, no merges, no invariants — the common training step. Only
   dead values arriving through Recv need handling. *)
type splan = {
  s_nodes : cnode array;
  s_index : (int, int) Hashtbl.t;  (* node id -> dense index *)
  s_inputs : (int * int) array array;  (* (src dense index, out slot) *)
  s_control_in : int array array;
  s_consumers : int array array;  (* data + control, one entry per edge *)
  s_in_counts : int array;
  s_blocking : bool array;
  s_fed : bool array;
  s_num_outputs : int array;
  (* Memory planning statics, indexed like [s_nodes]: *)
  s_refcounts : int array array;  (* data consumers per (idx, out) *)
  s_fresh : bool array;  (* outputs are planner-owned fresh buffers *)
  s_poolable : bool array array;  (* no consumer retains the endpoint *)
  s_aliases : (int * int) list array;  (* declared May_alias pairs *)
}

type plan = {
  p_graph : Graph.t;
  p_compiled : compiled;
  p_fed : (int, unit) Hashtbl.t;
  p_simple : splan option;
  p_scheduler : Scheduler.policy;
  p_planning : bool;  (* memory planning default for this plan's steps *)
  p_mem : mem_info;  (* general-path lifetime statics *)
}

let control_flow_free compiled =
  let ok = ref true in
  Hashtbl.iter
    (fun _ cn ->
      (match cn.node.Node.op_type with
      | "Enter" | "Exit" | "NextIteration" | "Merge" | "Switch" | "LoopCond"
        ->
          ok := false
      | _ -> ());
      if cn.is_invariant then ok := false)
    compiled.cnodes;
  !ok

let build_splan compiled fed =
  let count = Hashtbl.length compiled.cnodes in
  let s_nodes = Array.make count (Obj.magic 0 : cnode) in
  let s_index = Hashtbl.create (2 * count) in
  let i = ref 0 in
  Hashtbl.iter
    (fun id cn ->
      s_nodes.(!i) <- cn;
      Hashtbl.replace s_index id !i;
      incr i)
    compiled.cnodes;
  let dense id = Hashtbl.find s_index id in
  let s_inputs =
    Array.map
      (fun cn ->
        if Hashtbl.mem fed cn.node.Node.id then [||]
        else
          Array.map
            (fun (e : Node.endpoint) -> (dense e.node_id, e.index))
            cn.node.Node.inputs)
      s_nodes
  in
  let s_control_in =
    Array.map
      (fun cn ->
        if Hashtbl.mem fed cn.node.Node.id then [||]
        else
          Array.of_list
            (List.filter_map
               (fun c ->
                 if Hashtbl.mem compiled.cnodes c then Some (dense c)
                 else None)
               cn.node.Node.control_inputs))
      s_nodes
  in
  let s_consumers =
    Array.map
      (fun cn ->
        Array.of_list
          (List.map (fun (_, dst, _) -> dense dst) cn.out_data
          @ List.map dense cn.out_control))
      s_nodes
  in
  let s_num_outputs =
    Array.map (fun cn -> max 1 (Node.num_outputs cn.node)) s_nodes
  in
  let s_fed = Array.map (fun cn -> Hashtbl.mem fed cn.node.Node.id) s_nodes in
  let s_refcounts =
    Array.mapi
      (fun i cn ->
        let rc = Array.make s_num_outputs.(i) 0 in
        List.iter
          (fun (out, _, _) ->
            if out < Array.length rc then rc.(out) <- rc.(out) + 1)
          cn.out_data;
        rc)
      s_nodes
  in
  let s_fresh =
    Array.mapi
      (fun i cn ->
        (not s_fed.(i)) && Mem_plan.fresh_output_op cn.node.Node.op_type)
      s_nodes
  in
  let s_poolable =
    Array.mapi
      (fun i cn ->
        let p = Array.make s_num_outputs.(i) s_fresh.(i) in
        if s_fresh.(i) then
          List.iter
            (fun (out, dst, _) ->
              if out < Array.length p then
                let dcn = Hashtbl.find compiled.cnodes dst in
                if Mem_plan.retains_input dcn.node.Node.op_type then
                  p.(out) <- false)
            cn.out_data;
        p)
      s_nodes
  in
  {
    s_nodes;
    s_index;
    s_inputs;
    s_control_in;
    s_consumers;
    s_in_counts = Array.map (fun cn -> cn.in_count) s_nodes;
    s_blocking = Array.map (fun cn -> blocking_op cn.node.Node.op_type) s_nodes;
    s_fed;
    s_num_outputs;
    s_refcounts;
    s_fresh;
    s_poolable;
    s_aliases =
      Array.map (fun cn -> Kernel.aliases ~op_type:cn.node.Node.op_type) s_nodes;
  }

(* General-path analogue of the splan lifetime statics. Invariant nodes
   are excluded: their outputs live in the frame instance for all
   iterations and must never be dropped per-iteration. *)
let build_mem_info compiled fed =
  let mi_counts = Hashtbl.create 64 in
  let mi_poolable = Hashtbl.create 64 in
  let mi_fresh = Hashtbl.create 64 in
  Hashtbl.iter
    (fun id cn ->
      if
        Mem_plan.fresh_output_op cn.node.Node.op_type
        && (not (Hashtbl.mem fed id))
        && not cn.is_invariant
      then begin
        Hashtbl.replace mi_fresh id ();
        let nouts = max 1 (Node.num_outputs cn.node) in
        let counts = Array.make nouts 0 in
        let pool = Array.make nouts true in
        List.iter
          (fun (out, dst, _) ->
            if out < nouts then begin
              counts.(out) <- counts.(out) + 1;
              let dcn = Hashtbl.find compiled.cnodes dst in
              if Mem_plan.retains_input dcn.node.Node.op_type then
                pool.(out) <- false
            end)
          cn.out_data;
        for out = 0 to nouts - 1 do
          if counts.(out) > 0 then
            Hashtbl.replace mi_counts (value_key id out) counts.(out);
          if pool.(out) then Hashtbl.replace mi_poolable (value_key id out) ()
        done
      end)
    compiled.cnodes;
  { mi_counts; mi_poolable; mi_fresh }

let prepare ?scheduler ?memory_planning ~graph ~nodes ~fed_ids () =
  let fed = Hashtbl.create 8 in
  List.iter (fun id -> Hashtbl.replace fed id ()) fed_ids;
  let compiled = compile graph nodes fed in
  let p_simple =
    if control_flow_free compiled then Some (build_splan compiled fed)
    else None
  in
  let p_scheduler =
    match scheduler with Some p -> p | None -> Scheduler.default_policy ()
  in
  let p_planning =
    match memory_planning with Some b -> b | None -> Mem_plan.enabled ()
  in
  {
    p_graph = graph;
    p_compiled = compiled;
    p_fed = fed;
    p_simple;
    p_scheduler;
    p_planning;
    p_mem = build_mem_info compiled fed;
  }

let execute_simple plan sp ~planning ~scheduler ~feeds ~fetches ~resources
    ~rendezvous ~tracer ~cancel ~seed ~step_id ~var_snapshot =
  let count = Array.length sp.s_nodes in
  let values = Array.make count [||] in
  let dead = Array.make count false in
  let pending = Array.copy sp.s_in_counts in
  let scheduled = Array.make count false in
  (* Per-step lifetime state. [rc] counts unfinished data consumers per
     endpoint; byte accounting runs regardless of [planning] so peak
     figures stay comparable, but drops, pool returns and in-place
     grants fire only when planning is on. *)
  let rc = Array.map Array.copy sp.s_refcounts in
  let pinned =
    Array.map (fun rcs -> Array.make (Array.length rcs) false) sp.s_refcounts
  in
  let transferred =
    Array.map (fun rcs -> Array.make (Array.length rcs) false) sp.s_refcounts
  in
  List.iter
    (fun (e : Node.endpoint) ->
      match Hashtbl.find_opt sp.s_index e.node_id with
      | Some idx when e.index < Array.length pinned.(idx) ->
          pinned.(idx).(e.index) <- true
      | _ -> ())
    fetches;
  let live = ref 0 in
  let live_add b =
    live := !live + b;
    Mem_plan.live_add b
  in
  let live_sub b =
    live := !live - b;
    Mem_plan.live_sub b
  in
  (* Drop a planner-owned endpoint all of whose consumers have finished:
     tombstone the slot (consumers still staged hold their own gathered
     references; control consumers read the [dead] flags, fetches are
     pinned) and recycle the float buffer unless some consumer retains
     it or an in-place grant moved ownership. *)
  let drop src out =
    if sp.s_fresh.(src) && not pinned.(src).(out) then begin
      (match values.(src).(out) with
      | Value.Tensor t ->
          if not transferred.(src).(out) then begin
            live_sub (Tensor.byte_size t);
            if
              sp.s_poolable.(src).(out)
              && Dtype.is_floating (Tensor.dtype t)
            then Buffer_pool.release_float (Tensor.float_buffer t)
          end
      | _ -> ());
      values.(src).(out) <- Value.Dead
    end
  in
  (* The scheduler's callbacks and the node bookkeeping close over each
     other; tie the knot through a cell filled right after creation. *)
  let sched_cell = ref None in
  let push idx =
    if not scheduled.(idx) then begin
      scheduled.(idx) <- true;
      match !sched_cell with
      | Some sched -> Scheduler.add sched idx
      | None -> assert false
    end
  in
  let arrive idx =
    pending.(idx) <- pending.(idx) - 1;
    if pending.(idx) <= 0 then push idx
  in
  let complete idx outputs =
    if Array.length outputs > 0 && Array.for_all Value.is_dead outputs then
      dead.(idx) <- true;
    values.(idx) <- outputs;
    (* Count fresh outputs and drop the ones nobody consumes. *)
    if sp.s_fresh.(idx) then begin
      let nouts = min (Array.length outputs) (Array.length rc.(idx)) in
      for out = 0 to nouts - 1 do
        (match outputs.(out) with
        | Value.Tensor t -> live_add (Tensor.byte_size t)
        | _ -> ());
        if planning && rc.(idx).(out) = 0 then drop idx out
      done
    end;
    (* This node finished reading: release its claim on each input
       endpoint; the last reader out frees the value. *)
    if planning then
      Array.iter
        (fun (src, out) ->
          if sp.s_fresh.(src) && out < Array.length rc.(src) then begin
            rc.(src).(out) <- rc.(src).(out) - 1;
            if rc.(src).(out) = 0 then drop src out
          end)
        sp.s_inputs.(idx);
    Array.iter arrive sp.s_consumers.(idx)
  in
  let stage idx =
    let cn = sp.s_nodes.(idx) in
    let n = cn.node in
    let inputs =
      Array.map (fun (src, out) -> values.(src).(out)) sp.s_inputs.(idx)
    in
    let any_dead =
      Array.exists Value.is_dead inputs
      || Array.exists (fun c -> dead.(c)) sp.s_control_in.(idx)
    in
    if any_dead && n.Node.op_type <> "Send" then
      Scheduler.Finish
        (fun () ->
          dead.(idx) <- true;
          complete idx (Array.make sp.s_num_outputs.(idx) Value.Dead))
    else begin
      let rng =
        Rng.create (seed + (step_id * 1_000_003) + (n.Node.id * 7_919))
      in
      (* In-place grants — see the general path for the safety argument:
         staging and completion both run on the coordinating thread, so
         refcount 1 here means this node is the endpoint's only
         unfinished reader. *)
      let grants =
        if not planning then []
        else
          match sp.s_aliases.(idx) with
          | [] -> []
          | decls ->
              let used_in = ref [] and used_out = ref [] in
              List.filter
                (fun (i, o) ->
                  (not (List.mem i !used_in))
                  && (not (List.mem o !used_out))
                  && i < Array.length sp.s_inputs.(idx)
                  &&
                  let src, out = sp.s_inputs.(idx).(i) in
                  let ok =
                    sp.s_fresh.(src)
                    && out < Array.length rc.(src)
                    && sp.s_poolable.(src).(out)
                    && rc.(src).(out) = 1
                    && (not pinned.(src).(out))
                    && (not transferred.(src).(out))
                    &&
                    match inputs.(i) with
                    | Value.Tensor t -> Dtype.is_floating (Tensor.dtype t)
                    | _ -> false
                  in
                  if ok then begin
                    transferred.(src).(out) <- true;
                    live_sub (Value.byte_size inputs.(i));
                    Mem_plan.count_grant ();
                    used_in := i :: !used_in;
                    used_out := o :: !used_out
                  end;
                  ok)
                decls
      in
      let ctx =
        { Kernel.node = n; inputs; resources; rendezvous; rng; step_id;
          cancel; grants; var_snapshot }
      in
      let kernel = resolve_kernel cn in
      Scheduler.Offload
        (fun () ->
          offload_kernel ~tracer ~rendezvous ~cancel ~step_id
            ~live_of:(fun () -> !live)
            n kernel ctx
            ~finish:(fun outputs -> complete idx outputs))
    end
  in
  let ops =
    {
      Scheduler.classify =
        (fun idx ->
          if sp.s_nodes.(idx).node.Node.op_type = "Recv" then Scheduler.Recv
          else if sp.s_blocking.(idx) then Scheduler.Blocking
          else Scheduler.Normal);
      stage;
      run_blocking =
        (fun idx ->
          match stage idx with
          | Scheduler.Finish k -> k ()
          | Scheduler.Offload run -> (run ()) ());
      poll_recv =
        (fun idx ->
          match rendezvous with
          | None -> None
          | Some r -> (
              match
                Rendezvous.try_recv r
                  ~key:(recv_rendezvous_key ~step_id sp.s_nodes.(idx).node)
              with
              | Some v ->
                  Some
                    (fun () ->
                      trace tracer sp.s_nodes.(idx).node ~step_id
                        ~bytes_of:(fun () -> Value.byte_size v)
                        (fun () -> ());
                      complete idx [| v |])
              | None -> None));
      rendezvous;
      cancel;
    }
  in
  let sched = Scheduler.create scheduler ops in
  sched_cell := Some sched;
  (* Seed feeds, then sources. *)
  List.iter
    (fun ((e : Node.endpoint), v) ->
      match Hashtbl.find_opt sp.s_index e.node_id with
      | None -> ()
      | Some idx ->
          let outs = Array.make sp.s_num_outputs.(idx) v in
          values.(idx) <- outs)
    feeds;
  Array.iteri
    (fun idx fedp ->
      if fedp then scheduled.(idx) <- true)
    sp.s_fed;
  Array.iteri
    (fun idx fedp -> if (not fedp) && pending.(idx) = 0 then push idx)
    sp.s_fed;
  Array.iteri
    (fun idx fedp ->
      if fedp then Array.iter arrive sp.s_consumers.(idx))
    sp.s_fed;
  (* Whatever the step's fate, the process-wide gauges must not keep
     counting this step's bytes, and the pool counters get synced. *)
  Fun.protect
    ~finally:(fun () ->
      Mem_plan.live_sub !live;
      live := 0;
      Mem_plan.sync_pool_metrics ())
    (fun () ->
      Scheduler.drive sched;
      List.map
        (fun (e : Node.endpoint) ->
          match Hashtbl.find_opt sp.s_index e.node_id with
          | Some idx
            when Array.length values.(idx) > e.index
                 && not (Value.is_dead values.(idx).(e.index)) ->
              values.(idx).(e.index)
          | _ ->
              raise
                (Step_failure.error
                   (Step_failure.Fetch_failed
                      (Printf.sprintf
                         "fetch %s:%d was not produced (dead value or \
                          incomplete subgraph?)"
                         (Graph.get plan.p_graph e.node_id).Node.name e.index))))
        fetches)

let execute_general plan ~planning ~scheduler ~feeds ~fetches ~resources
    ~rendezvous ~tracer ~cancel ~seed ~step_id ~var_snapshot =
  let compiled = plan.p_compiled in
  let fed_vals = Hashtbl.create 8 in
  List.iter
    (fun ((e : Node.endpoint), v) -> Hashtbl.replace fed_vals e.node_id v)
    feeds;
  let pinned = Hashtbl.create 8 in
  List.iter
    (fun (e : Node.endpoint) ->
      Hashtbl.replace pinned (value_key e.node_id e.index) ())
    fetches;
  let root =
    {
      inst_frame = root_frame;
      inst_parent = None;
      iterations = Hashtbl.create 4;
      invariants = Hashtbl.create 4;
      invariant_done = Hashtbl.create 4;
      inst_key = "";
    }
  in
  let st =
    {
      compiled;
      resources;
      rendezvous;
      tracer;
      cancel;
      seed;
      step_id;
      var_snapshot;
      instances = Hashtbl.create 8;
      planning;
      mem = plan.p_mem;
      pinned;
      fed = plan.p_fed;
      live = ref 0;
      sched = None;
    }
  in
  let ops =
    {
      Scheduler.classify =
        (fun ((cn : cnode), _, _) ->
          if cn.node.Node.op_type = "Recv" then Scheduler.Recv
          else if blocking_op cn.node.Node.op_type then Scheduler.Blocking
          else Scheduler.Normal);
      stage = (fun task -> stage_node st task);
      run_blocking =
        (fun task ->
          match stage_node st task with
          | Scheduler.Finish k -> k ()
          | Scheduler.Offload run -> (run ()) ());
      poll_recv =
        (fun ((cn : cnode), inst, it) ->
          match st.rendezvous with
          | None -> None
          | Some r -> (
              match
                Rendezvous.try_recv r
                  ~key:(recv_rendezvous_key ~step_id:st.step_id cn.node)
              with
              | Some v ->
                  Some
                    (fun () ->
                      trace st.tracer cn.node ~step_id:st.step_id
                        ~bytes_of:(fun () -> Value.byte_size v)
                        (fun () -> ());
                      finish_node st cn inst it [| v |])
              | None -> None));
      rendezvous;
      cancel;
    }
  in
  let sched = Scheduler.create scheduler ops in
  st.sched <- Some sched;
  let root_it = get_iter root 0 in
  Hashtbl.iter
    (fun id cn ->
      match Hashtbl.find_opt fed_vals id with
      | Some v ->
          Hashtbl.replace root_it.done_nodes id ();
          let outputs = Array.make (max 1 (Node.num_outputs cn.node)) v in
          finish_node st cn root root_it outputs
      | None ->
          if Hashtbl.mem plan.p_fed id then
            (* Fed in the plan but no value given this run. *)
            raise
              (invalid
                 (Printf.sprintf "missing feed for node %s" cn.node.Node.name))
          else if cn.in_count = 0 && cn.invariant_slots = []
                  && cn.invariant_controls = 0 && not cn.is_invariant
          then begin
            Hashtbl.replace root_it.done_nodes id ();
            schedule st cn root root_it
          end)
    compiled.cnodes;
  (* Recvs are retried non-blockingly so one pending value never wedges
     the partition while other cross-device values are already here (the
     polling lives in {!Scheduler.drive}). *)
  Fun.protect
    ~finally:(fun () ->
      Mem_plan.live_sub !(st.live);
      st.live := 0;
      Mem_plan.sync_pool_metrics ())
    (fun () ->
      Scheduler.drive sched;
      List.map
        (fun (e : Node.endpoint) ->
          match
            Hashtbl.find_opt root_it.values (value_key e.node_id e.index)
          with
          | Some v -> v
          | None ->
              raise
                (Step_failure.error
                   (Step_failure.Fetch_failed
                      (Printf.sprintf
                         "fetch %s:%d was not produced (dead value or \
                          incomplete subgraph?)"
                         (Graph.get plan.p_graph e.node_id).Node.name e.index))))
        fetches)

let execute plan ?scheduler ?intra_op_threads ?memory_planning ~feeds ~fetches
    ~resources ?rendezvous ?tracer ?cancel ?(seed = 0) ?(step_id = 0)
    ?var_snapshot () =
  (* Like TF's intra_op_parallelism_threads this is a process-wide
     hardware knob, not per-step state: setting it here adjusts the
     budget for this and subsequent steps. *)
  (match intra_op_threads with
  | Some n -> Octf_tensor.Parallel.set_threads n
  | None -> ());
  let scheduler =
    match scheduler with Some p -> p | None -> plan.p_scheduler
  in
  let planning =
    match memory_planning with Some b -> b | None -> plan.p_planning
  in
  match plan.p_simple with
  | Some sp ->
      execute_simple plan sp ~planning ~scheduler ~feeds ~fetches ~resources
        ~rendezvous ~tracer ~cancel ~seed ~step_id ~var_snapshot
  | None ->
      execute_general plan ~planning ~scheduler ~feeds ~fetches ~resources
        ~rendezvous ~tracer ~cancel ~seed ~step_id ~var_snapshot

let run ?scheduler ?intra_op_threads ?memory_planning ~graph ~nodes ~feeds
    ~fetches ~resources ?rendezvous ?cancel ?seed ?step_id () =
  let fed_ids = List.map (fun ((e : Node.endpoint), _) -> e.node_id) feeds in
  let plan = prepare ?scheduler ?memory_planning ~graph ~nodes ~fed_ids () in
  execute plan ?intra_op_threads ~feeds ~fetches ~resources ?rendezvous
    ?cancel ?seed ?step_id ()
