(** Structured step errors (§4.2–4.3 of the preliminary white paper).

    Every way a step can die — kernel failure, injected fault, deadline
    expiry, cooperative cancellation, a peer partition aborting the
    shared rendezvous — is reported as one {!t}: the failing node and
    device (when known) plus a typed {!cause}. Policy layers (the
    {!Session} retry surface, the training supervisor) dispatch on the
    cause instead of parsing message strings; humans get
    {!to_string}. *)

type cause =
  | Deadline_exceeded of float  (** step budget, in seconds *)
  | Cancelled of string  (** cooperative cancellation, with reason *)
  | Kernel_failed of string
  | Fault_injected of string  (** a {!Fault_injector} fired *)
  | Rendezvous_aborted of string  (** a peer partition failed first *)
  | Duplicate_send of string  (** two sends of one rendezvous key *)
  | Missing_task of string  (** cluster lookup of an unknown task *)
  | Invalid_graph of string  (** malformed control flow, bad feeds *)
  | Fetch_failed of string  (** fetch dead / not produced *)
  | Network_error of string
      (** wire-protocol failure: connection lost or refused, heartbeat
          timeout, malformed frame, RPC timeout ({!Octf_net}) *)
  | Overloaded of string
      (** admission control shed the request: a serving queue passed its
          high-watermark ({!Octf_serving.Serving}). Clients should back
          off and retry; the request was never executed. *)

type t = { node : string option; device : string option; cause : cause }

exception Error of t

val v : ?node:string -> ?device:string -> cause -> t

val error : ?node:string -> ?device:string -> cause -> exn
(** [error cause] = [Error (v cause)], ready to raise. *)

val cause_message : cause -> string

val cause_kind : cause -> string
(** Stable snake_case discriminator of the cause constructor (e.g.
    ["deadline_exceeded"]), suitable as a metric label value. *)

val to_string : t -> string

val is_cancellation : cause -> bool
(** True for {!Deadline_exceeded} and {!Cancelled} — the retryable
    "step was abandoned" family, as opposed to graph or kernel bugs. *)

val is_secondary : cause -> bool
(** True for causes that describe the collateral of another failure
    ({!Rendezvous_aborted}, {!Cancelled}); when one step yields several
    errors the primary (non-secondary) one names the root cause. *)

val cause_of_wire : kind:string -> message:string -> cause
(** Rebuild a cause from its wire form — a {!cause_kind} string plus
    the message — for failures reported by a remote process. Unknown
    kinds degrade to {!Kernel_failed}. *)
