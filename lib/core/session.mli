(** Client sessions and the distributed master (§3.2–3.3, §5).

    A session owns the mapping from step definitions to compiled
    subgraphs: given feeds, fetches and targets, it prunes the graph,
    applies master-side optimizations, places operations on devices,
    partitions the result into per-device subgraphs with [Send]/[Recv]
    pairs, and {e caches} the compiled step so a large graph can be
    re-executed with one cheap call per step (§3.3's low-latency repeated
    execution). Multi-device steps run one executor thread per partition,
    synchronized through a per-step {!Rendezvous}.

    Sessions are safe to call from several threads at once; concurrent
    steps coordinate through the shared stateful operations exactly as in
    the paper (Figure 1's concurrent training / input / checkpoint
    loops). *)

open Octf_tensor

type t

exception Run_error of Step_failure.t
(** Every step failure — kernel error, deadline expiry, cancellation,
    injected fault, invalid graph, bad fetch — surfaces as this one
    exception carrying the failing node, its device, and a structured
    cause. Render with {!Step_failure.to_string}. *)

val create :
  ?devices:Device.t list ->
  ?resource_router:(Device.t -> Resource_manager.t) ->
  ?seed:int ->
  ?optimize:bool ->
  ?scheduler:Scheduler.policy ->
  ?intra_op_threads:int ->
  ?memory_planning:bool ->
  Graph.t ->
  t
(** Default devices: a single local CPU. [resource_router] maps a device
    to the resource manager of the task owning it (see {!Cluster});
    by default all devices share one manager. [optimize] (default true)
    enables master-side common-subexpression elimination and constant
    folding on each step's pruned subgraph. [scheduler] picks the
    execution policy for every step of this session (default
    {!Scheduler.default_policy}, i.e. inline unless [OCTF_SCHEDULER]
    says otherwise); [Scheduler.Pool] runs independent kernels of one
    step in parallel on the shared domain pool with bit-identical
    results. [intra_op_threads] sets the {e process-wide} intra-op
    thread budget for kernel loops
    ({!Octf_tensor.Parallel.set_threads}; default from
    [OCTF_INTRA_OP_THREADS] or the core count) — results are
    bit-identical for every value. [memory_planning] fixes whether this
    session's steps run the executor's lifetime analysis (eager drops,
    buffer-pool reuse, in-place kernel grants); default follows
    {!Mem_plan.enabled}, i.e. on unless [OCTF_MEMORY_PLANNING=off].
    Fetches are bit-identical with planning on or off. *)

val graph : t -> Graph.t

val scheduler : t -> Scheduler.policy
(** The execution policy this session's steps run under. *)

val resources : t -> Resource_manager.t
(** The default resource manager (variables, queues). *)

val resources_for : t -> Device.t -> Resource_manager.t

(** Per-step execution options — TensorFlow's [RunOptions]. One value
    gathers what used to be a growing tail of optional arguments:
    feeds, targets, a step deadline, and the observability switches. *)
module Run_options : sig
  type t = {
    feeds : (Builder.output * Tensor.t) list;
    targets : Builder.output list;  (** run for effect only *)
    deadline : float option;  (** step budget in seconds *)
    trace : bool;  (** collect {!Tracer} events *)
    collect_stats : bool;  (** build {!Step_stats} for the step *)
  }

  val default : t
  (** No feeds, no targets, no deadline, no tracing, no stats. *)

  val v :
    ?feeds:(Builder.output * Tensor.t) list ->
    ?targets:Builder.output list ->
    ?deadline:float ->
    ?trace:bool ->
    ?collect_stats:bool ->
    unit ->
    t
end

(** What one step reports back — TensorFlow's [RunMetadata]. *)
module Run_metadata : sig
  type t = {
    step_id : int;  (** the session-wide id of this step *)
    wall_time : float;  (** whole-step wall-clock seconds *)
    step_stats : Step_stats.t option;
        (** present iff [collect_stats] was set *)
    tracer : Tracer.t option;
        (** present iff [trace] or [collect_stats] was set *)
  }
end

val run_with_metadata :
  ?options:Run_options.t ->
  t ->
  Builder.output list ->
  Tensor.t list * Run_metadata.t
(** The primary entry point: execute one step under [options] (default
    {!Run_options.default}) and return the fetched tensors plus the
    step's metadata. When [options.collect_stats] is set, the metadata
    carries a {!Step_stats.t} whose {!Step_stats.total_time} equals
    [Tracer.total_time] of the same step's tracer — both sum the same
    per-kernel durations.

    {!run}, {!run_traced} and {!run_unit} are thin wrappers over this
    function.

    @raise Run_error as {!run} does. *)

val run :
  ?feeds:(Builder.output * Tensor.t) list ->
  ?targets:Builder.output list ->
  ?deadline:float ->
  t ->
  Builder.output list ->
  Tensor.t list
(** [run session fetches] executes one step and returns the fetched
    tensors in order. [targets] are executed for their effects only.

    [deadline] (seconds) bounds the whole step: when it expires the
    step's cancellation token fires, parked [Recv]/queue waiters wake,
    and the step raises [Run_error] with a [Deadline_exceeded] cause
    instead of hanging — even on cyclic (while-loop) graphs and even
    when a peer partition's [Send] was lost.

    @raise Run_error if a kernel fails, the deadline expires, a fetch is
    dead, or a fetch yields a reference handle rather than a tensor. *)

val run_traced :
  ?feeds:(Builder.output * Tensor.t) list ->
  ?targets:Builder.output list ->
  ?deadline:float ->
  t ->
  Builder.output list ->
  Tensor.t list * Tracer.t
(** Like {!run}, collecting one {!Tracer.event} per kernel invocation
    across every partition of the step — the §5 distributed profiler.
    Render with {!Tracer.pp_summary} or {!Tracer.to_chrome_trace}. *)

val run_unit :
  ?feeds:(Builder.output * Tensor.t) list ->
  ?deadline:float ->
  t ->
  Builder.output list ->
  unit
(** Run for effect: [run_unit s targets] = ignore a fetch-less step. *)

val cached_steps : t -> int
(** Number of distinct compiled steps in the session cache (tests). *)
