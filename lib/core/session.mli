(** Client sessions and the distributed master (§3.2–3.3, §5).

    A session owns the mapping from step definitions to compiled
    subgraphs: given feeds, fetches and targets, it prunes the graph,
    applies master-side optimizations, places operations on devices,
    partitions the result into per-device subgraphs with [Send]/[Recv]
    pairs, and {e caches} the compiled step so a large graph can be
    re-executed with one cheap call per step (§3.3's low-latency repeated
    execution). Multi-device steps run one executor thread per partition,
    synchronized through a per-step {!Rendezvous}.

    Sessions are safe to call from several threads at once; concurrent
    steps coordinate through the shared stateful operations exactly as in
    the paper (Figure 1's concurrent training / input / checkpoint
    loops).

    {2 Pipelined execution}

    {!run_async} admits up to [max_in_flight] (K) steps concurrently —
    the paper's asynchronous training, where step N+1 starts before
    step N's updates land. Each admitted step snapshots every variable
    (a copy-on-write [(value, version)] pair, so snapshots are O(1)):
    its [Read] kernels see the admission-time versions while its
    updates apply to the live variables in completion order. At K = 1
    — the default, and forced by [barrier:true] — async steps
    serialize and read live state, bit-identical to the synchronous
    session. {!drain} quiesces the pipeline (checkpointing, shutdown). *)

open Octf_tensor

type t

exception Run_error of Step_failure.t
(** Every step failure — kernel error, deadline expiry, cancellation,
    injected fault, invalid graph, bad fetch — surfaces as this one
    exception carrying the failing node, its device, and a structured
    cause. Render with {!Step_failure.to_string}. *)

(** Consolidated construction-time configuration — TensorFlow's
    [ConfigProto]. One record replaces the sprawl of optional arguments
    on {!create}; [None] fields fall through to {!create}'s single
    resolution point, whose precedence is: legacy {!create} label
    (deprecated wrappers) > [Config] field > [OCTF_*] environment
    variable > built-in default. CLI front-ends should build a [Config]
    with [Some] only for flags the user actually passed, so unset flags
    keep honoring the environment. *)
module Config : sig
  type t = {
    devices : Device.t list option;
        (** default: a single local CPU *)
    resource_router : (Device.t -> Resource_manager.t) option;
        (** maps a device to the resource manager of the task owning it
            (see {!Cluster}); default: all devices share one manager *)
    seed : int option;  (** graph-level RNG seed; default 42 *)
    passes : Graph_optimizer.pass list option;
        (** master-side optimization pipeline run per step compilation
            (after the implicit initial prune); default
            {!Graph_optimizer.default_pipeline}. [[]] disables
            everything but pruning. *)
    scheduler : Scheduler.policy option;
        (** execution policy for every step; default
            {!Scheduler.default_policy}, i.e. inline unless
            [OCTF_SCHEDULER] says otherwise. [Scheduler.Pool] runs
            independent kernels of one step in parallel with
            bit-identical results. *)
    intra_op_threads : int option;
        (** {e process-wide} intra-op thread budget for kernel loops
            ({!Octf_tensor.Parallel.set_threads}); default from
            [OCTF_INTRA_OP_THREADS] or the core count. Bit-identical
            for every value. *)
    memory_planning : bool option;
        (** whether steps run the executor's lifetime analysis (eager
            drops, buffer-pool reuse, in-place grants); default follows
            {!Mem_plan.enabled}, i.e. on unless
            [OCTF_MEMORY_PLANNING=off]. Fetches are bit-identical
            either way. *)
    fusion : bool option;
        (** whether the default pipeline includes the elementwise fuse
            pass ({!Graph_optimizer.fused_pipeline} vs
            {!Graph_optimizer.default_pipeline}); default on unless
            [OCTF_FUSION=off]. Ignored when [passes] is set explicitly.
            Fetches are bit-identical either way. *)
    quantize : bool option;
        (** whether the default pipeline appends the int8
            {!Graph_optimizer.Quantize} pass (uncalibrated — dynamic
            activation ranges) plus a prune; default {e off} unless
            [OCTF_QUANTIZE=on] — quantized kernels change numerics, so
            this is opt-in, unlike [fusion]. Ignored when [passes] is
            set explicitly. The pass only rewrites contractions whose
            weights are F32 [Const]s, so it is inert on training
            graphs; for calibrated serving use {!Octf_serving.Serving}'s
            freeze with ranges. *)
    max_in_flight : int option;
        (** K ≥ 1 bound on concurrent {!run_async} steps; default from
            [OCTF_MAX_IN_FLIGHT], else 1 *)
    barrier : bool;
        (** force K = 1 regardless of [max_in_flight] — the
            fully-synchronous legacy pipeline (default false) *)
    remote : Remote.runner option;
        (** out-of-process runtime ([Octf_net]): partitions placed on
            devices the runner does not report
            {!Remote.runner.is_local} are dispatched to their owning
            task as Run_step RPCs *)
  }

  val default : t
  (** Every field unset: resolve from the environment / built-ins. *)

  val v :
    ?devices:Device.t list ->
    ?resource_router:(Device.t -> Resource_manager.t) ->
    ?seed:int ->
    ?passes:Graph_optimizer.pass list ->
    ?scheduler:Scheduler.policy ->
    ?intra_op_threads:int ->
    ?memory_planning:bool ->
    ?fusion:bool ->
    ?quantize:bool ->
    ?max_in_flight:int ->
    ?barrier:bool ->
    ?remote:Remote.runner ->
    unit ->
    t
end

val create :
  ?config:Config.t ->
  ?devices:Device.t list ->
  ?resource_router:(Device.t -> Resource_manager.t) ->
  ?seed:int ->
  ?optimize:bool ->
  ?passes:Graph_optimizer.pass list ->
  ?scheduler:Scheduler.policy ->
  ?intra_op_threads:int ->
  ?memory_planning:bool ->
  ?fusion:bool ->
  ?quantize:bool ->
  ?max_in_flight:int ->
  ?barrier:bool ->
  ?remote:Remote.runner ->
  Graph.t ->
  t
(** [create ~config graph] builds a session over [graph]; see
    {!Config} for every knob and its default. The bare optional labels
    are {e deprecated} thin wrappers kept for source compatibility —
    each one, when passed, overrides the corresponding [config] field
    ([optimize:false] is shorthand for [passes:[]], prune-only).
    New code should pass a [Config].
    @raise Invalid_argument if the resolved [max_in_flight < 1]. *)

val graph : t -> Graph.t

val scheduler : t -> Scheduler.policy
(** The execution policy this session's steps run under. *)

val resources : t -> Resource_manager.t
(** The default resource manager (variables, queues). *)

val resources_for : t -> Device.t -> Resource_manager.t

(** Per-step execution options — TensorFlow's [RunOptions]. One value
    gathers what used to be a growing tail of optional arguments:
    feeds, targets, a step deadline, and the observability switches. *)
module Run_options : sig
  type t = {
    feeds : (Builder.output * Tensor.t) list;
    targets : Builder.output list;  (** run for effect only *)
    deadline : float option;  (** step budget in seconds *)
    trace : bool;  (** collect {!Tracer} events *)
    collect_stats : bool;  (** build {!Step_stats} for the step *)
    cancel : Cancel.t option;
        (** parent token: cancelling it cancels this step (pipeline
            filler groups) *)
    tracer : Tracer.t option;
        (** record into this shared tracer instead of a fresh one —
            lets overlapping pipelined steps land in one timeline *)
  }

  val default : t
  (** No feeds, no targets, no deadline, no tracing, no stats, no
      parent token, no shared tracer. *)

  val v :
    ?feeds:(Builder.output * Tensor.t) list ->
    ?targets:Builder.output list ->
    ?deadline:float ->
    ?trace:bool ->
    ?collect_stats:bool ->
    ?cancel:Cancel.t ->
    ?tracer:Tracer.t ->
    unit ->
    t
end

(** What one step reports back — TensorFlow's [RunMetadata]. *)
module Run_metadata : sig
  type t = {
    step_id : int;  (** the session-wide id of this step *)
    wall_time : float;  (** whole-step wall-clock seconds *)
    step_stats : Step_stats.t option;
        (** present iff [collect_stats] was set *)
    tracer : Tracer.t option;
        (** present iff [trace] or [collect_stats] was set *)
  }
end

val run_with_metadata :
  ?options:Run_options.t ->
  t ->
  Builder.output list ->
  Tensor.t list * Run_metadata.t
(** The primary entry point: execute one step under [options] (default
    {!Run_options.default}) and return the fetched tensors plus the
    step's metadata. When [options.collect_stats] is set, the metadata
    carries a {!Step_stats.t} whose {!Step_stats.total_time} equals
    [Tracer.total_time] of the same step's tracer — both sum the same
    per-kernel durations.

    {!run}, {!run_traced} and {!run_unit} are thin wrappers over this
    function.

    @raise Run_error as {!run} does. *)

val run :
  ?feeds:(Builder.output * Tensor.t) list ->
  ?targets:Builder.output list ->
  ?deadline:float ->
  t ->
  Builder.output list ->
  Tensor.t list
(** [run session fetches] executes one step and returns the fetched
    tensors in order. [targets] are executed for their effects only.

    [deadline] (seconds) bounds the whole step: when it expires the
    step's cancellation token fires, parked [Recv]/queue waiters wake,
    and the step raises [Run_error] with a [Deadline_exceeded] cause
    instead of hanging — even on cyclic (while-loop) graphs and even
    when a peer partition's [Send] was lost.

    @raise Run_error if a kernel fails, the deadline expires, a fetch is
    dead, or a fetch yields a reference handle rather than a tensor. *)

val run_traced :
  ?feeds:(Builder.output * Tensor.t) list ->
  ?targets:Builder.output list ->
  ?deadline:float ->
  t ->
  Builder.output list ->
  Tensor.t list * Tracer.t
(** Like {!run}, collecting one {!Tracer.event} per kernel invocation
    across every partition of the step — the §5 distributed profiler.
    Render with {!Tracer.pp_summary} or {!Tracer.to_chrome_trace}. *)

val run_unit :
  ?feeds:(Builder.output * Tensor.t) list ->
  ?deadline:float ->
  t ->
  Builder.output list ->
  unit
(** Run for effect: [run_unit s targets] = ignore a fetch-less step. *)

type handle
(** An in-flight pipelined step issued by {!run_async}. *)

val run_async : ?options:Run_options.t -> t -> Builder.output list -> handle
(** Admit one step into the pipeline and return immediately. Blocks
    only while [max_in_flight] steps are already executing (admission
    backpressure; the blocked time feeds the
    [octf_pipeline_stall_seconds] counter, and the
    [octf_steps_in_flight] gauge tracks admissions). When K > 1 the
    step's [Read] kernels see a snapshot of every variable taken at
    admission; its updates land on live variables when its kernels run
    — completion-order (async-SGD) consistency. The step's failure, if
    any, is delivered by {!wait}, never raised here. *)

val wait : handle -> Tensor.t list * Run_metadata.t
(** Block until the step finishes and return its fetches and metadata.
    May be called from any thread, any number of times.
    @raise Run_error if the step failed. *)

val drain : t -> unit
(** Block until no async step is in flight — the quiesce point before
    checkpoints and shutdown. Never raises: a drained step's failure
    stays stored in its handle for {!wait} to report. Steps admitted
    concurrently with the drain extend it. *)

val max_in_flight : t -> int
(** The session's pipeline depth K. *)

val cached_steps : t -> int
(** Number of distinct compiled steps in the session cache (tests). *)

val precompile :
  ?feeds:Builder.output list ->
  ?targets:Builder.output list ->
  t ->
  Builder.output list ->
  unit
(** Compile the step defined by [feeds]/[fetches]/[targets] into the
    step cache without executing it: the optimizer pipeline, placement,
    partitioning and the executor's memory plan all run now, so the
    first real request pays none of it. [feeds] names only the fed
    {e endpoints} (no values — none are needed to compile). The cache
    signature ignores tensor shapes, so one precompiled plan serves
    every batch size of the same endpoints. Idempotent.
    @raise Run_error as {!run} does, for compile-time failures. *)

val variable_values : t -> string -> Tensor.t option
(** [variable_values t] snapshots every variable reachable from this
    session's resource managers (copy-on-write, so O(1) per variable)
    and returns a name -> value lookup over the snapshot — the function
    a {!Graph_optimizer.Freeze} pass consumes to fold trained variables
    into constants. Uninitialized variables are absent. *)

val run_serve :
  t ->
  step_id:int ->
  feeds:(Node.endpoint * Tensor.t) list ->
  fetches:Node.endpoint list ->
  targets:int list ->
  cancel:Cancel.t ->
  unit ->
  ((Node.endpoint * Value.t) list, Step_failure.t) result
(** Execute one step on behalf of a remote chief ([Octf_net]'s
    Run_step handler): compile the step named by the endpoint lists
    (identical to the chief's — both processes built the same graph,
    so it hits the same step-cache entry), run {e only} the partitions
    placed on this process's devices under the chief's [step_id], and
    return the fetch endpoints they produced. Requires the session to
    have been created with [?remote]. Never raises: every failure —
    kernel error, cancellation via [cancel] (deadline or a Cancel_step
    frame), missing partition — returns as a structured [Error]. *)
