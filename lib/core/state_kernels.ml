(* Stateful kernels for variables (§3.1): a Variable owns a mutable
   buffer and emits a reference handle; Read/Assign*/Scatter* consume the
   handle. Updates replace the stored tensor (copy-on-write), so tensors
   previously returned by Read remain valid snapshots, while AssignAdd on
   a parameter-server task gives the associative += write the
   parameter-server architecture is built around (§2.2, §4.1). *)

open Octf_tensor
module K = Kernel

let t v = Value.Tensor v

let register () =
  K.register ~op_type:"Variable" (fun ctx ->
      let node = ctx.K.node in
      let r =
        Resource_manager.find_or_create ctx.K.resources node.Node.name
          (fun () ->
            Resource.Variable
              (Resource.make_variable ~name:node.Node.name
                 ~dtype:(Node.attr_dtype node "dtype")
                 ~shape:(Node.attr_shape node "shape")))
      in
      K.one (Value.Resource r));
  (* Reads go through the step's admission snapshot when the pipelined
     engine installed one, so every Read in one in-flight step observes
     the same variable versions; updates below always hit the live
     variable, landing in completion order (§4.4 async consistency). *)
  K.register ~op_type:"Read" (fun ctx ->
      K.one (t (K.snapshot_read ctx (K.input_var ctx 0))));
  K.register ~op_type:"Assign" (fun ctx ->
      let var = K.input_var ctx 0 and v = K.input_tensor ctx 1 in
      Resource.variable_assign var v;
      K.one (t v));
  (* A granted update buffer lets the += write land in the incoming
     delta's storage (e.g. the scaled gradient), which then becomes the
     variable's new backing — the old backing stays a valid snapshot for
     earlier Reads, preserving copy-on-write semantics. The variable's
     own buffer (input 0 is a resource handle) is never aliased. *)
  K.register ~op_type:"AssignAdd" ~aliases:[ (1, 0) ] (fun ctx ->
      let var = K.input_var ctx 0 and v = K.input_tensor ctx 1 in
      let out = K.granted_buffer ctx ~output:0 in
      K.one (t (Resource.variable_update var (fun old -> Tensor_ops.add ?out old v))));
  K.register ~op_type:"AssignSub" ~aliases:[ (1, 0) ] (fun ctx ->
      let var = K.input_var ctx 0 and v = K.input_tensor ctx 1 in
      let out = K.granted_buffer ctx ~output:0 in
      K.one (t (Resource.variable_update var (fun old -> Tensor_ops.sub ?out old v))));
  K.register ~op_type:"ScatterAdd" (fun ctx ->
      let var = K.input_var ctx 0 in
      let indices = K.input_tensor ctx 1 and updates = K.input_tensor ctx 2 in
      K.one
        (t
           (Resource.variable_update var (fun old ->
                Tensor_ops.scatter_add old indices updates))));
  K.register ~op_type:"ScatterSub" (fun ctx ->
      let var = K.input_var ctx 0 in
      let indices = K.input_tensor ctx 1 and updates = K.input_tensor ctx 2 in
      K.one
        (t
           (Resource.variable_update var (fun old ->
                Tensor_ops.scatter_add old indices (Tensor_ops.neg updates)))));
  K.register ~op_type:"ScatterUpdate" (fun ctx ->
      let var = K.input_var ctx 0 in
      let indices = K.input_tensor ctx 1 and updates = K.input_tensor ctx 2 in
      K.one
        (t
           (Resource.variable_update var (fun old ->
                let fresh = Tensor.copy old in
                let rs = Tensor.numel fresh / (Tensor.shape fresh).(0) in
                for i = 0 to Tensor.numel indices - 1 do
                  let row = Tensor.flat_get_i indices i in
                  for j = 0 to rs - 1 do
                    Tensor.flat_set_f fresh ((row * rs) + j)
                      (Tensor.flat_get_f updates ((i * rs) + j))
                  done
                done;
                fresh))));
  K.register ~op_type:"TensorArray" (fun ctx ->
      let node = ctx.K.node in
      let r =
        Resource_manager.find_or_create ctx.K.resources node.Node.name
          (fun () ->
            Resource.Tensor_array
              (Resource.make_tensor_array ~name:node.Node.name))
      in
      K.one (Value.Resource r));
  K.register ~op_type:"TensorArrayWrite" (fun ctx ->
      (* Inputs: handle, index, value. Returns the value as a flow token
         so downstream reads can order after the write. *)
      let ta = Value.tensor_array ctx.K.inputs.(0) in
      let index = Tensor.flat_get_i (K.input_tensor ctx 1) 0 in
      let v = K.input_tensor ctx 2 in
      Resource.tensor_array_write ta index v;
      K.one (t v));
  K.register ~op_type:"TensorArrayRead" (fun ctx ->
      let ta = Value.tensor_array ctx.K.inputs.(0) in
      let index = Tensor.flat_get_i (K.input_tensor ctx 1) 0 in
      K.one (t (Resource.tensor_array_read ta index)));
  K.register ~op_type:"TensorArraySize" (fun ctx ->
      let ta = Value.tensor_array ctx.K.inputs.(0) in
      K.one (t (Tensor.scalar_i (Resource.tensor_array_size ta))));
  K.register ~op_type:"TensorArrayStack" (fun ctx ->
      (* Pack all written elements along a new leading axis. *)
      let ta = Value.tensor_array ctx.K.inputs.(0) in
      let items = Resource.tensor_array_stack ta in
      match items with
      | [] -> invalid_arg "TensorArrayStack: empty tensor array"
      | first :: _ ->
          let shape = Tensor.shape first in
          let rows =
            List.map
              (fun x -> Tensor.reshape x (Array.append [| 1 |] shape))
              items
          in
          K.one (t (Tensor_ops.concat rows ~axis:0)));
  K.register ~op_type:"CountUp" (fun ctx ->
      (* Atomic fetch-and-increment of a scalar variable; returns the
         pre-increment value. Used for global steps and sync barriers. *)
      let var = K.input_var ctx 0 in
      let old = ref (Tensor.scalar_f 0.0) in
      let _ =
        Resource.variable_update var (fun v ->
            old := v;
            Tensor_ops.add v (Tensor.ones (Tensor.dtype v) (Tensor.shape v)))
      in
      K.one (t !old))
