(** The dataflow graph (§3).

    A single graph represents all computation and state in an
    application: mathematical operations, parameters and their update
    rules, input preprocessing, checkpointing. Nodes are appended during
    construction (via {!Builder}); steps then execute pruned subgraphs
    ({!Pruner}, {!Session}). *)

type t

val create : unit -> t

val add_node :
  t ->
  ?name:string ->
  ?inputs:Node.endpoint list ->
  ?control_inputs:int list ->
  ?attrs:(string * Attr.t) list ->
  ?device:Device.spec ->
  op_type:string ->
  unit ->
  Node.t
(** Append a node. If [name] is omitted (or already taken) a unique name
    is derived from the op type. *)

val copy : t -> t
(** A structurally independent copy: same node ids, names and edges, so
    {!Builder.output}s built against the original address the copy too.
    Device assignments are cleared (the copy is placed from scratch by
    whatever session compiles it). In-place rewrites ({!Graph_optimizer})
    on the copy leave the original untouched — how a frozen inference
    graph is derived without corrupting the training graph
    ([Octf_serving]). *)

val node_count : t -> int

val get : t -> int -> Node.t
(** @raise Invalid_argument on unknown id. *)

val find_by_name : t -> string -> Node.t option

val get_by_name : t -> string -> Node.t
(** @raise Not_found if absent. *)

val unique_name : t -> string -> string

val set_input : t -> node_id:int -> slot:int -> Node.endpoint -> unit
(** Backpatch one data input; needed to close loop-carried edges
    ([Merge] ← [NextIteration]) when building while loops (§3.4). The
    node's record is replaced rather than mutated, so compiled steps
    holding the old record are unaffected. *)

val replace_control_inputs : t -> node_id:int -> int list -> unit
(** Replace a node's control-input list (used by {!Graph_optimizer}). *)

val nodes : t -> Node.t list
(** All nodes in insertion order. *)

val iter : t -> (Node.t -> unit) -> unit

val consumers_of : t -> int list array
(** Indexed by node id: ids of nodes consuming any data output or control
    signal of that node (data and control edges combined). *)

val out_edges : t -> (int * int * int * int) list
(** All data edges as [(src, src_slot, dst, dst_slot)]. *)

val topological_order : t -> Node.t list
(** Nodes in a topological order of data+control edges, treating
    loop-carried [NextIteration → Merge] back edges as absent (they are
    the only intentional cycles, §3.4).
    @raise Failure on any other cycle. *)

val pp : Format.formatter -> t -> unit
