(* Dependency-inversion seam between the session and the network layer.

   [Octf.Session] must not depend on [Octf_net] (which depends on Octf
   for graphs, values and failures), so the network runtime hands the
   session this record of capabilities instead. The session uses it to
   (a) decide which partitions run in-process, (b) share the
   process-global routed rendezvous, and (c) dispatch the remote
   partitions of a step as Run_step RPCs. *)

type runner = {
  is_local : Device.t -> bool;
      (* does this device's (job, task) live in the current process? *)
  rendezvous : Rendezvous.t;
      (* the process-global, route-enabled rendezvous every step of
         every cross-process session shares; step-scoped keys keep
         concurrent steps apart. Never aborted — step teardown is per
         step via Cancel tokens and [Rendezvous.drop_step]. *)
  run_partitions :
    job:string ->
    task:int ->
    step_id:int ->
    feeds:(Node.endpoint * Octf_tensor.Tensor.t) list ->
    fetches:Node.endpoint list ->
    targets:int list ->
    deadline:float option ->
    cancel:Cancel.t option ->
    ((Node.endpoint * Value.t) list, Step_failure.t) result;
      (* execute the step's partitions owned by (job, task) in that
         task's process, blocking until its Step_done (or a transport /
         deadline failure). [feeds] / [fetches] are the subsets of the
         step's endpoints that live on the remote task; [targets] are
         graph node ids. [cancel] firing locally must propagate a
         Cancel_step to the peer and fail the call. *)
  retire_step : step_id:int -> unit;
      (* the step is over: scrub its leaked rendezvous entries and mark
         the id retired so a late tensor frame from a slow peer is
         dropped instead of parking in the shared table forever *)
}
