(** Memory-planning policy: static aliasing/freshness facts about op
    types, the process-wide enable switch, and the planner's metrics.

    The per-execution lifetime analysis (refcounting stored values,
    dropping them when the last consumer fires, granting in-place
    buffer reuse, recycling freed buffers through
    {!Octf_tensor.Buffer_pool}) lives in {!Executor}; it consults this
    module for everything that is a property of the op type rather than
    of the particular execution. *)

val enabled : unit -> bool
(** Process-wide default, from [OCTF_MEMORY_PLANNING] (on unless set to
    [0]/[off]/[false]/[no]).  [Session.create ?memory_planning] and
    [Executor.execute ?memory_planning] override per session/step. *)

val set_enabled : bool -> unit

val fresh_output_op : string -> bool
(** Every output of this op type is a freshly allocated buffer shared
    with no other value.  False for pass-through ops, buffer-sharing
    reshapes, variable/queue/rendezvous state, and anything unknown. *)

val retains_input : string -> bool
(** This op type may keep a reference to an input tensor beyond its own
    execution (variable/queue/rendezvous stores, pass-throughs,
    buffer-sharing reshapes).  Endpoints with such a consumer must not
    recycle their buffer through the pool when dropped. *)

(** {1 Metrics}

    [octf_mem_live_bytes] / [octf_mem_peak_bytes] gauges,
    [octf_mem_pool_{hits,misses,evictions}] mirrors of
    {!Octf_tensor.Buffer_pool.stats}, and
    [octf_mem_inplace_grants_total]. *)

val live_add : int -> unit
(** Add bytes to the live gauge and raise the peak watermark. *)

val live_sub : int -> unit
val live_bytes : unit -> int
val count_grant : unit -> unit

val sync_pool_metrics : unit -> unit
(** Copy {!Octf_tensor.Buffer_pool.stats} into the pool gauges; the
    executor calls this at step boundaries (lib/tensor cannot depend on
    {!Metrics} directly). *)
