type endpoint = { node_id : int; index : int }

type t = {
  id : int;
  name : string;
  op_type : string;
  inputs : endpoint array;
  control_inputs : int list;
  attrs : (string * Attr.t) list;
  device_spec : Device.spec;
  mutable assigned_device : Device.t option;
}

let endpoint node_id index = { node_id; index }

let attr_bool n = Attr.get_bool n.attrs

let attr_int n = Attr.get_int n.attrs

let attr_float n = Attr.get_float n.attrs

let attr_string n = Attr.get_string n.attrs

let attr_dtype n = Attr.get_dtype n.attrs

let attr_shape n = Attr.get_shape n.attrs

let attr_tensor n = Attr.get_tensor n.attrs

let attr_ints n = Attr.get_ints n.attrs

let stateful_ops =
  [
    "Variable"; "Assign"; "AssignAdd"; "AssignSub"; "ScatterAdd"; "ScatterSub";
    "ScatterUpdate"; "FIFOQueue"; "RandomShuffleQueue"; "Enqueue";
    "EnqueueMany"; "Dequeue"; "DequeueMany"; "QueueClose"; "QueueSize";
    "Save"; "Restore"; "RandomUniform"; "RandomNormal"; "RandomIndices";
    "RecordReader"; "ReadRecord"; "ReadFile"; "TensorArray";
    "TensorArrayWrite"; "TensorArrayRead"; "TensorArraySize";
    "TensorArrayStack";
    "WriteFile"; "CountUp";
  ]

let is_stateful n = List.mem n.op_type stateful_ops

let num_outputs n =
  match n.op_type with
  | "NoOp" | "Save" | "Enqueue" | "EnqueueMany" | "QueueClose" | "Send" -> 0
  | "Switch" -> 2
  | "Quantize" | "QuantizeRange" | "QuantizedMatMulQ" | "QuantizedConv2DQ" -> 3
  | "SoftmaxCrossEntropy" -> 2
  | "DynamicPartition" -> attr_int n "num_partitions"
  | "ConcatGrad" -> attr_int n "n"
  | "Unpack" -> attr_int n "num"
  | "Split" -> attr_int n "num"
  | "Dequeue" | "DequeueMany" -> attr_int n "num_components"
  | "DecodeExample" | "Restore" -> (
      match List.assoc_opt "tensor_names" n.attrs with
      | Some (Attr.Strings l) -> List.length l
      | _ -> 1)
  | _ -> 1

let pp fmt n =
  Format.fprintf fmt "%s = %s(%s)%s" n.name n.op_type
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun (e : endpoint) -> Printf.sprintf "%d:%d" e.node_id e.index)
             n.inputs)))
    (match n.assigned_device with
    | None -> ""
    | Some d -> " @" ^ Device.to_string d)
