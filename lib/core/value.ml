open Octf_tensor

type t = Tensor of Tensor.t | Resource of Resource.t | Dead

let is_dead = function Dead -> true | Tensor _ | Resource _ -> false

let tensor = function
  | Tensor t -> t
  | Resource r ->
      invalid_arg ("Value.tensor: got resource " ^ Resource.name r)
  | Dead -> invalid_arg "Value.tensor: got dead value"

let resource = function
  | Resource r -> r
  | Tensor _ -> invalid_arg "Value.resource: got tensor"
  | Dead -> invalid_arg "Value.resource: got dead value"

let variable v =
  match resource v with
  | Resource.Variable var -> var
  | (Resource.Queue _ | Resource.Iterator _ | Resource.Tensor_array _) as r
    ->
      invalid_arg ("Value.variable: got " ^ Resource.name r)

let queue v =
  match resource v with
  | Resource.Queue q -> q
  | (Resource.Variable _ | Resource.Iterator _ | Resource.Tensor_array _) as r
    ->
      invalid_arg ("Value.queue: got " ^ Resource.name r)

let iterator v =
  match resource v with
  | Resource.Iterator it -> it
  | (Resource.Variable _ | Resource.Queue _ | Resource.Tensor_array _) as r
    ->
      invalid_arg ("Value.iterator: got " ^ Resource.name r)

let tensor_array v =
  match resource v with
  | Resource.Tensor_array ta -> ta
  | (Resource.Variable _ | Resource.Queue _ | Resource.Iterator _) as r ->
      invalid_arg ("Value.tensor_array: got " ^ Resource.name r)

let byte_size = function
  | Tensor t -> Tensor.byte_size t
  | Resource _ | Dead -> 0

let pp fmt = function
  | Tensor t -> Tensor.pp fmt t
  | Resource r -> Resource.pp fmt r
  | Dead -> Format.pp_print_string fmt "<dead>"
