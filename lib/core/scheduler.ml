type policy = Inline | Pool

let policy_of_string s =
  match String.lowercase_ascii s with
  | "inline" | "serial" -> Ok Inline
  | "pool" | "parallel" -> Ok Pool
  | _ ->
      Error
        (Printf.sprintf
           "unknown scheduler %S (expected inline | serial | pool | parallel)"
           s)

let policy_to_string = function Inline -> "inline" | Pool -> "pool"

let default_policy () =
  match Sys.getenv_opt "OCTF_SCHEDULER" with
  | None -> Inline
  | Some s -> (
      match policy_of_string s with
      | Ok p -> p
      | Error msg ->
          Printf.eprintf "octf: OCTF_SCHEDULER: %s; using inline\n%!" msg;
          Inline)

type staged = Finish of (unit -> unit) | Offload of (unit -> unit -> unit)

type cls = Normal | Recv | Blocking

type 'task ops = {
  classify : 'task -> cls;
  stage : 'task -> staged;
  run_blocking : 'task -> unit;
  poll_recv : 'task -> (unit -> unit) option;
  rendezvous : Rendezvous.t option;
  cancel : Cancel.t option;
}

(* Completions cross from worker domains back to the coordinating
   thread through [completions]; [in_flight] is touched only by the
   coordinator. *)
type 'task t = {
  policy : policy;
  ops : 'task ops;
  ready : 'task Queue.t;
  ready_recv : 'task Queue.t;
  ready_blocking : 'task Queue.t;
  mutex : Mutex.t;
  have_completion : Condition.t;
  mutable completions : (unit -> unit) list;  (* reversed arrival order *)
  mutable in_flight : int;
}

let create policy ops =
  {
    policy;
    ops;
    ready = Queue.create ();
    ready_recv = Queue.create ();
    ready_blocking = Queue.create ();
    mutex = Mutex.create ();
    have_completion = Condition.create ();
    completions = [];
    in_flight = 0;
  }

let add t task =
  match t.ops.classify task with
  | Normal -> Queue.add task t.ready
  | Recv -> Queue.add task t.ready_recv
  | Blocking -> Queue.add task t.ready_blocking

(* ------------------------------------------------------------------ *)
(* Recv polling, shared by both policies                               *)
(* ------------------------------------------------------------------ *)

(* Poll each pending Recv once; stop at the first success so newly-ready
   downstream work gets priority again. Returns true on progress. *)
let poll_recvs t =
  let n = Queue.length t.ready_recv in
  let progressed = ref false in
  for _ = 1 to n do
    if not !progressed then begin
      let task = Queue.pop t.ready_recv in
      match t.ops.poll_recv task with
      | Some k ->
          k ();
          progressed := true
      | None -> Queue.add task t.ready_recv
    end
  done;
  !progressed

(* ------------------------------------------------------------------ *)
(* Inline policy: the original single-threaded loop                    *)
(* ------------------------------------------------------------------ *)

let run_now t task =
  match t.ops.stage task with Finish k -> k () | Offload run -> (run ()) ()

let rec drive_inline t =
  Cancel.check_opt t.ops.cancel;
  if not (Queue.is_empty t.ready) then begin
    run_now t (Queue.pop t.ready);
    drive_inline t
  end
  else if not (Queue.is_empty t.ready_recv) then begin
    (match t.ops.rendezvous with
    | None -> t.ops.run_blocking (Queue.pop t.ready_recv)
    | Some r ->
        let gen = Rendezvous.generation r in
        if not (poll_recvs t) then
          if not (Queue.is_empty t.ready_blocking) then
            t.ops.run_blocking (Queue.pop t.ready_blocking)
          else
            ignore (Rendezvous.wait_new ?cancel:t.ops.cancel r ~last:gen));
    drive_inline t
  end
  else if not (Queue.is_empty t.ready_blocking) then begin
    t.ops.run_blocking (Queue.pop t.ready_blocking);
    drive_inline t
  end

(* ------------------------------------------------------------------ *)
(* Pool policy: offload onto the shared domain pool                    *)
(* ------------------------------------------------------------------ *)

let push_completion t k =
  Mutex.lock t.mutex;
  t.completions <- k :: t.completions;
  Condition.signal t.have_completion;
  Mutex.unlock t.mutex

let take_completions ~block t =
  Mutex.lock t.mutex;
  if block then
    while t.completions = [] do
      Condition.wait t.have_completion t.mutex
    done;
  let ks = t.completions in
  t.completions <- [];
  Mutex.unlock t.mutex;
  List.rev ks

let apply_completions t ks =
  (* Count every completion as landed before applying any: a raising
     continuation must not leave [in_flight] claiming work that has in
     fact arrived. *)
  t.in_flight <- t.in_flight - List.length ks;
  List.iter (fun k -> k ()) ks

let dispatch t task =
  match t.ops.stage task with
  | Finish k -> k ()
  | Offload run ->
      t.in_flight <- t.in_flight + 1;
      Domain_pool.submit (fun () ->
          let k = try run () with e -> fun () -> raise e in
          push_completion t k)

let rec drive_pool t =
  Cancel.check_opt t.ops.cancel;
  (* Keep the pool fed: everything ready goes out before we wait. *)
  while not (Queue.is_empty t.ready) do
    dispatch t (Queue.pop t.ready)
  done;
  let ks = take_completions ~block:false t in
  if ks <> [] then begin
    apply_completions t ks;
    drive_pool t
  end
  else if
    (not (Queue.is_empty t.ready_recv)) && t.ops.rendezvous <> None
  then begin
    let r = Option.get t.ops.rendezvous in
    let gen = Rendezvous.generation r in
    if poll_recvs t then drive_pool t
    else if t.in_flight > 0 then begin
      apply_completions t (take_completions ~block:true t);
      drive_pool t
    end
    else if not (Queue.is_empty t.ready_blocking) then begin
      (* No non-blocking work remains anywhere: safe to park. *)
      t.ops.run_blocking (Queue.pop t.ready_blocking);
      drive_pool t
    end
    else begin
      ignore (Rendezvous.wait_new ?cancel:t.ops.cancel r ~last:gen);
      drive_pool t
    end
  end
  else if t.in_flight > 0 then begin
    apply_completions t (take_completions ~block:true t);
    drive_pool t
  end
  else if not (Queue.is_empty t.ready_recv) then begin
    (* No rendezvous: a Recv can only run (and fail) inline. *)
    t.ops.run_blocking (Queue.pop t.ready_recv);
    drive_pool t
  end
  else if not (Queue.is_empty t.ready_blocking) then begin
    t.ops.run_blocking (Queue.pop t.ready_blocking);
    drive_pool t
  end

let drive t =
  match t.policy with Inline -> drive_inline t | Pool -> drive_pool t
