(** The rendezvous: named channels between partitioned subgraphs (§3.3).

    When partitioning replaces a cross-device edge with a [Send]/[Recv]
    pair, the pair agrees on a {e rendezvous key} naming the value. [Send]
    publishes its input under the key as soon as the tensor is available;
    [Recv] blocks until the value for its key is available locally. One
    rendezvous instance serves one step; keys are
    ["step:<id>;src_device;dst_device;tensor_name"] (see {!step_key})
    and values are consumed once. *)

type t

exception Aborted of string
(** Raised in blocked receivers when the step is aborted. *)

val create : ?route:(key:string -> Value.t -> bool) -> unit -> t
(** [?route] is the out-of-process delivery hook (installed by
    [Octf_net] on its process-global rendezvous): {!send} consults it
    first, outside the rendezvous lock. Returning [true] means the value
    was consumed — its receiver lives in another OS process — and the
    local table is untouched. The hook may raise [Step_failure.Error]
    (e.g. {!Step_failure.Network_error}) to fail the sending kernel
    structurally when the peer is unreachable. *)

val step_key :
  step_id:int ->
  send_device:string ->
  recv_device:string ->
  tensor_name:string ->
  string
(** The canonical ["step:<id>;src;dst;name"] key a [Send]/[Recv] pair
    agrees on. The step id prefix gives per-step scoping: concurrent
    in-flight steps of a pipelined session can never cross-deliver even
    on a shared rendezvous. *)

val send : t -> key:string -> Value.t -> unit
(** @raise Step_failure.Error with {!Step_failure.Duplicate_send} on a
    duplicate key (two sends of one value). *)

val recv : ?cancel:Cancel.t -> t -> key:string -> Value.t
(** Blocks until sent. Consumes the value. @raise Aborted if
    {!abort} is called while waiting (or before).
    @raise Step_failure.Error if [cancel] fires (deadline or explicit
    cancellation wake the blocked waiter). *)

val try_recv : t -> key:string -> Value.t option
(** Non-blocking receive; [None] when nothing is available.
    @raise Aborted after {!abort}. *)

val generation : t -> int
(** Incremented on every {!send}; see {!wait_new}. *)

val wait_new : ?cancel:Cancel.t -> t -> last:int -> int
(** Block until the generation exceeds [last] (i.e. something has been
    sent since the caller sampled {!generation}), and return the current
    generation. Used by executors to sleep between [Recv] retries
    without missing wakeups. @raise Aborted after {!abort}.
    @raise Step_failure.Error if [cancel] fires while parked. *)

val abort : t -> reason:string -> unit
(** Wake every blocked and future receiver with {!Aborted}; used to
    propagate kernel failures across partition executor threads so a step
    fails as a unit rather than deadlocking.

    On a routed (process-global, shared across steps) rendezvous the
    abort is {e not} recorded — it only wakes waiters. A sticky abort
    would outlive the failing step and poison every later one; shared
    teardown is per step, via cancel tokens and {!drop_step}. *)

val pending_keys : t -> string list
(** Keys sent but not yet received (for tests and debugging). *)

val pending_count : t -> int
(** Live (sent but unreceived) entry count. *)

val drop_step : t -> step_id:int -> int
(** Remove every entry whose key carries the ["step:<id>;"] prefix —
    values leaked by a cancelled or abandoned step — and return how many
    were dropped. Invoked by [Session.drain] (and on step failure) so a
    long-lived shared rendezvous cannot accumulate dead tensors. *)
