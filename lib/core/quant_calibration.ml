(* Post-training calibration (§5): run representative batches through a
   frozen inference graph and record per-endpoint activation ranges for
   the Quantize optimizer pass. Two accumulation modes, as in TF's
   quantization tooling: running min/max over every batch, or an
   exponential moving average that forgets early outliers. *)

open Octf_tensor

type mode = Min_max | Ema of float

type stat = { mutable lo : float; mutable hi : float; mutable batches : int }

type t = { mode : mode; stats : (string, stat) Hashtbl.t }

let create ?(mode = Min_max) () =
  (match mode with
  | Ema d when not (d > 0.0 && d <= 1.0) ->
      invalid_arg "Quant_calibration.create: EMA decay must be in (0, 1]"
  | _ -> ());
  { mode; stats = Hashtbl.create 16 }

let batch_range tensor =
  let lo = ref Float.infinity and hi = ref Float.neg_infinity in
  for i = 0 to Tensor.numel tensor - 1 do
    let v = Tensor.flat_get_f tensor i in
    if v < !lo then lo := v;
    if v > !hi then hi := v
  done;
  if Tensor.numel tensor = 0 then (0.0, 0.0) else (!lo, !hi)

let observe c name tensor =
  let blo, bhi = batch_range tensor in
  match Hashtbl.find_opt c.stats name with
  | None -> Hashtbl.replace c.stats name { lo = blo; hi = bhi; batches = 1 }
  | Some s ->
      (match c.mode with
      | Min_max ->
          s.lo <- Float.min s.lo blo;
          s.hi <- Float.max s.hi bhi
      | Ema d ->
          s.lo <- ((1.0 -. d) *. s.lo) +. (d *. blo);
          s.hi <- ((1.0 -. d) *. s.hi) +. (d *. bhi));
      s.batches <- s.batches + 1

let endpoint_name (o : Builder.output) =
  if o.Builder.out = 0 then o.Builder.node.Node.name
  else Printf.sprintf "%s:%d" o.Builder.node.Node.name o.Builder.out

let observe_step c session ?(feeds = []) endpoints =
  let outs = Session.run ~feeds session endpoints in
  List.iter2 (fun ep t -> observe c (endpoint_name ep) t) endpoints outs

(* The pass quantizes against the returned range, so it must satisfy
   the code invariants here: include 0.0 (zero-point in range) and
   never be degenerate. Mirrors Quant_kernels.range_of. *)
let ranges c name =
  match Hashtbl.find_opt c.stats name with
  | None -> None
  | Some s ->
      let lo = Float.min 0.0 s.lo and hi = Float.max 0.0 s.hi in
      if hi -. lo < 1e-12 then Some (lo, lo +. 1.0) else Some (lo, hi)

let observed c = Hashtbl.fold (fun k _ acc -> k :: acc) c.stats []
