(* Queue kernels (§3.1). Like Variable, a queue op emits a reference
   handle; Enqueue/Dequeue consume it and block for backpressure and
   synchronization — the coordination primitive behind input pipelines
   (Figure 1) and synchronous replication (§4.4). Queue kernels are
   CPU-only, as in the paper. *)

open Octf_tensor
module K = Kernel

let cpu = [ Device.CPU ]

let queue_resource ctx kind =
  let node = ctx.K.node in
  Resource_manager.find_or_create ctx.K.resources node.Node.name (fun () ->
      Resource.Queue
        (Queue_impl.create ~kind ~name:node.Node.name
           ~capacity:(Node.attr_int node "capacity")
           ~num_components:(Node.attr_int node "num_components")
           ()))

let register () =
  K.register ~op_type:"FIFOQueue" ~devices:cpu (fun ctx ->
      K.one (Value.Resource (queue_resource ctx Queue_impl.Fifo)));
  K.register ~op_type:"RandomShuffleQueue" ~devices:cpu (fun ctx ->
      let seed =
        Option.value ~default:0 (Attr.find_int ctx.K.node.Node.attrs "seed")
      in
      K.one
        (Value.Resource
           (queue_resource ctx (Queue_impl.Shuffle (Rng.create seed)))));
  K.register ~op_type:"Enqueue" ~devices:cpu (fun ctx ->
      let q = K.input_queue ctx 0 in
      let components =
        Array.init
          (Array.length ctx.K.inputs - 1)
          (fun i -> K.input_tensor ctx (i + 1))
      in
      Queue_impl.enqueue ?cancel:ctx.K.cancel q components;
      [||]);
  K.register ~op_type:"EnqueueMany" ~devices:cpu (fun ctx ->
      (* Components are batched along axis 0; enqueue one element per
         row. *)
      let q = K.input_queue ctx 0 in
      let batched =
        Array.init
          (Array.length ctx.K.inputs - 1)
          (fun i -> K.input_tensor ctx (i + 1))
      in
      let n = (Tensor.shape batched.(0)).(0) in
      for row = 0 to n - 1 do
        let element =
          Array.map
            (fun t ->
              let s = Tensor.shape t in
              let begin_ = Array.make (Shape.rank s) 0 in
              begin_.(0) <- row;
              let size = Array.copy s in
              size.(0) <- 1;
              let slice = Tensor_ops.slice t ~begin_ ~size in
              Tensor.reshape slice (Array.sub s 1 (Shape.rank s - 1)))
            batched
        in
        Queue_impl.enqueue ?cancel:ctx.K.cancel q element
      done;
      [||]);
  K.register ~op_type:"Dequeue" ~devices:cpu (fun ctx ->
      let q = K.input_queue ctx 0 in
      Array.map (fun t -> Value.Tensor t) (Queue_impl.dequeue ?cancel:ctx.K.cancel q));
  K.register ~op_type:"DequeueMany" ~devices:cpu (fun ctx ->
      let q = K.input_queue ctx 0 in
      let n = Node.attr_int ctx.K.node "n" in
      Array.map
        (fun t -> Value.Tensor t)
        (Queue_impl.dequeue_many ?cancel:ctx.K.cancel q n));
  K.register ~op_type:"QueueClose" ~devices:cpu (fun ctx ->
      Queue_impl.close (K.input_queue ctx 0);
      [||]);
  K.register ~op_type:"QueueSize" ~devices:cpu (fun ctx ->
      K.one (Value.Tensor (Tensor.scalar_i (Queue_impl.size (K.input_queue ctx 0)))))
