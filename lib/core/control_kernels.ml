(* Dynamic control flow (§3.4) and cross-device communication (§3.3).

   Switch/Merge follow Arvind and Culler's dynamic dataflow: Switch
   demultiplexes its input onto one of two outputs, emitting the special
   dead value on the branch not taken; Merge forwards the first non-dead
   input (the executor invokes it as soon as one arrives, or when all
   inputs are dead). Enter/Exit/NextIteration are identities whose frame
   routing lives in the executor, following timely dataflow.

   Send publishes its input (including deadness) into the step rendezvous
   under the key agreed with its paired Recv; Recv blocks until the value
   is locally available. *)

open Octf_tensor
module K = Kernel

let identity name =
  K.register ~op_type:name (fun ctx -> K.one ctx.K.inputs.(0))

let rendezvous_key ~step_id node =
  Rendezvous.step_key ~step_id
    ~send_device:(Node.attr_string node "send_device")
    ~recv_device:(Node.attr_string node "recv_device")
    ~tensor_name:(Node.attr_string node "tensor_name")

let register () =
  K.register ~op_type:"NoOp" (fun _ -> [||]);
  K.register ~op_type:"Switch" (fun ctx ->
      let data = ctx.K.inputs.(0) in
      let pred = K.input_tensor ctx 1 in
      let taken = Tensor.flat_get_f pred 0 <> 0.0 in
      if taken then [| Value.Dead; data |] else [| data; Value.Dead |]);
  K.register ~op_type:"Merge" (fun ctx ->
      let non_dead =
        Array.to_list ctx.K.inputs
        |> List.filter (fun v -> not (Value.is_dead v))
      in
      match non_dead with
      | v :: _ -> K.one v
      | [] -> K.one Value.Dead);
  identity "Enter";
  identity "Exit";
  identity "NextIteration";
  identity "LoopCond";
  K.register ~op_type:"Send" (fun ctx ->
      match ctx.K.rendezvous with
      | None -> failwith "Send: no rendezvous in a single-partition step"
      | Some r -> (
          let key = rendezvous_key ~step_id:ctx.K.step_id ctx.K.node in
          match Fault_injector.send_hook ~key ~step_id:ctx.K.step_id with
          | `Drop ->
              (* A lost message: the paired Recv blocks until a deadline
                 or abort rescues it — exactly the failure mode §4.3's
                 checkpoint recovery is designed around. *)
              [||]
          | `Delay s ->
              Thread.delay s;
              Rendezvous.send r ~key ctx.K.inputs.(0);
              [||]
          | `Deliver ->
              Rendezvous.send r ~key ctx.K.inputs.(0);
              [||]));
  K.register ~op_type:"Recv" (fun ctx ->
      match ctx.K.rendezvous with
      | None -> failwith "Recv: no rendezvous in a single-partition step"
      | Some r ->
          K.one
            (Rendezvous.recv ?cancel:ctx.K.cancel r
               ~key:(rendezvous_key ~step_id:ctx.K.step_id ctx.K.node)))
