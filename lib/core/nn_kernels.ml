(* Neural-network kernels: activations, convolution, pooling, softmax.
   The fused SoftmaxCrossEntropy kernel mirrors the hand-implemented
   fused kernels the paper describes for performance-critical operations
   (§5): output 0 is the per-example loss, output 1 the cached backprop
   (softmax - labels) consumed by the gradient graph. *)

open Octf_tensor
module K = Kernel

let t v = Value.Tensor v

let padding_of_node node =
  match Node.attr_string node "padding" with
  | "SAME" -> Tensor_ops.Same
  | "VALID" -> Tensor_ops.Valid
  | s -> invalid_arg ("padding attribute must be SAME or VALID, got " ^ s)

let pair_of_ints name = function
  | [ a; b ] -> (a, b)
  | _ -> invalid_arg (name ^ ": expected a list of two ints")

let strides_of node = pair_of_ints "strides" (Node.attr_ints node "strides")

let ksize_of node = pair_of_ints "ksize" (Node.attr_ints node "ksize")

let unary name f =
  K.register ~op_type:name (fun ctx -> K.one (t (f (K.input_tensor ctx 0))))

(* Elementwise activations accept an in-place grant from the memory
   planner (see Math_kernels); softmax variants reduce over rows and
   keep their own buffers. *)
let unary_inplace name f =
  K.register ~op_type:name ~aliases:[ (0, 0) ] (fun ctx ->
      K.one
        (t (f ?out:(K.granted_buffer ctx ~output:0) (K.input_tensor ctx 0))))

let register () =
  unary_inplace "Relu" Tensor_ops.relu;
  unary_inplace "Sigmoid" Tensor_ops.sigmoid;
  unary_inplace "Tanh" Tensor_ops.tanh;
  unary "Softmax" Tensor_ops.softmax;
  unary "LogSoftmax" Tensor_ops.log_softmax;
  K.register ~op_type:"ReluGrad" ~aliases:[ (0, 0); (1, 0) ] (fun ctx ->
      K.one
        (t
           (Tensor_ops.relu_grad
              ?out:(K.granted_buffer ctx ~output:0)
              (K.input_tensor ctx 0) (K.input_tensor ctx 1))));
  K.register ~op_type:"SoftmaxCrossEntropy" (fun ctx ->
      let logits = K.input_tensor ctx 0 and labels = K.input_tensor ctx 1 in
      let loss = Tensor_ops.softmax_cross_entropy ~logits ~labels in
      let backprop = Tensor_ops.softmax_cross_entropy_grad ~logits ~labels in
      [| t loss; t backprop |]);
  K.register ~op_type:"Conv2D" (fun ctx ->
      let strides = strides_of ctx.K.node in
      let padding = padding_of_node ctx.K.node in
      K.one
        (t
           (Tensor_ops.conv2d (K.input_tensor ctx 0) (K.input_tensor ctx 1)
              ~strides ~padding)));
  K.register ~op_type:"Conv2DGradInput" (fun ctx ->
      (* Inputs: input (for its shape), filter, dy. *)
      let strides = strides_of ctx.K.node in
      let padding = padding_of_node ctx.K.node in
      let input_shape = Tensor.shape (K.input_tensor ctx 0) in
      K.one
        (t
           (Tensor_ops.conv2d_grad_input ~input_shape (K.input_tensor ctx 1)
              (K.input_tensor ctx 2) ~strides ~padding)));
  K.register ~op_type:"Conv2DGradFilter" (fun ctx ->
      (* Inputs: input, filter (for its shape), dy. *)
      let strides = strides_of ctx.K.node in
      let padding = padding_of_node ctx.K.node in
      let filter_shape = Tensor.shape (K.input_tensor ctx 1) in
      K.one
        (t
           (Tensor_ops.conv2d_grad_filter ~filter_shape (K.input_tensor ctx 0)
              (K.input_tensor ctx 2) ~strides ~padding)));
  K.register ~op_type:"MaxPool" (fun ctx ->
      let strides = strides_of ctx.K.node in
      let ksize = ksize_of ctx.K.node in
      let padding = padding_of_node ctx.K.node in
      K.one (t (Tensor_ops.max_pool (K.input_tensor ctx 0) ~ksize ~strides ~padding)));
  K.register ~op_type:"MaxPoolGrad" (fun ctx ->
      let strides = strides_of ctx.K.node in
      let ksize = ksize_of ctx.K.node in
      let padding = padding_of_node ctx.K.node in
      K.one
        (t
           (Tensor_ops.max_pool_grad (K.input_tensor ctx 0)
              (K.input_tensor ctx 1) ~ksize ~strides ~padding)));
  K.register ~op_type:"AvgPool" (fun ctx ->
      let strides = strides_of ctx.K.node in
      let ksize = ksize_of ctx.K.node in
      let padding = padding_of_node ctx.K.node in
      K.one (t (Tensor_ops.avg_pool (K.input_tensor ctx 0) ~ksize ~strides ~padding)))
