open Octf_tensor

type t =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Dtype of Dtype.t
  | Shape of Shape.t
  | Tensor of Tensor.t
  | Ints of int list
  | Floats of float list
  | Strings of string list

let to_string = function
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | String s -> Printf.sprintf "%S" s
  | Dtype d -> Dtype.to_string d
  | Shape s -> Shape.to_string s
  | Tensor t -> Tensor.to_string t
  | Ints l -> "[" ^ String.concat ";" (List.map string_of_int l) ^ "]"
  | Floats l ->
      "[" ^ String.concat ";" (List.map (Printf.sprintf "%g") l) ^ "]"
  | Strings l -> "[" ^ String.concat ";" (List.map (Printf.sprintf "%S") l) ^ "]"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let missing name = invalid_arg (Printf.sprintf "Attr: missing or wrong-kind attribute %S" name)

let find attrs name = List.assoc_opt name attrs

let get_bool attrs name =
  match find attrs name with Some (Bool b) -> b | _ -> missing name

let get_int attrs name =
  match find attrs name with Some (Int i) -> i | _ -> missing name

let get_float attrs name =
  match find attrs name with Some (Float f) -> f | _ -> missing name

let get_string attrs name =
  match find attrs name with Some (String s) -> s | _ -> missing name

let get_dtype attrs name =
  match find attrs name with Some (Dtype d) -> d | _ -> missing name

let get_shape attrs name =
  match find attrs name with Some (Shape s) -> s | _ -> missing name

let get_tensor attrs name =
  match find attrs name with Some (Tensor t) -> t | _ -> missing name

let get_ints attrs name =
  match find attrs name with Some (Ints l) -> l | _ -> missing name

let find_bool attrs name =
  match find attrs name with Some (Bool b) -> Some b | _ -> None

let find_int attrs name =
  match find attrs name with Some (Int i) -> Some i | _ -> None

let find_float attrs name =
  match find attrs name with Some (Float f) -> Some f | _ -> None

let find_string attrs name =
  match find attrs name with Some (String s) -> Some s | _ -> None

let find_dtype attrs name =
  match find attrs name with Some (Dtype d) -> Some d | _ -> None

let find_shape attrs name =
  match find attrs name with Some (Shape s) -> Some s | _ -> None

let find_ints attrs name =
  match find attrs name with Some (Ints l) -> Some l | _ -> None

let get_strings attrs name =
  match find attrs name with Some (Strings l) -> l | _ -> missing name

let find_strings attrs name =
  match find attrs name with Some (Strings l) -> Some l | _ -> None
