(* Mathematical operation kernels (§5). Registered for CPU and the
   simulated GPU; both run the same host implementation. *)

open Octf_tensor
module K = Kernel

let t v = Value.Tensor v

(* Elementwise kernels declare May_alias pairs: when the executor's
   memory planner proves an input buffer is exclusively owned it grants
   an in-place write, which the [?out] argument of the tensor ops
   accepts (falling back to a fresh allocation if broadcasting changed
   the element count). Comparison ops produce bool tensors and cannot
   alias their float inputs. *)
let unary name f =
  K.register ~op_type:name ~aliases:[ (0, 0) ] (fun ctx ->
      K.one
        (t (f ?out:(K.granted_buffer ctx ~output:0) (K.input_tensor ctx 0))))

let binary name f =
  K.register ~op_type:name ~aliases:[ (0, 0); (1, 0) ] (fun ctx ->
      K.one
        (t
           (f
              ?out:(K.granted_buffer ctx ~output:0)
              (K.input_tensor ctx 0) (K.input_tensor ctx 1))))

let binary_cmp name f =
  K.register ~op_type:name (fun ctx ->
      K.one (t (f (K.input_tensor ctx 0) (K.input_tensor ctx 1))))

let reduce name f =
  K.register ~op_type:name (fun ctx ->
      let axes =
        match Attr.find_ints ctx.K.node.Node.attrs "axes" with
        | Some l -> l
        | None -> []
      in
      let keep_dims =
        Option.value ~default:false
          (Attr.find_bool ctx.K.node.Node.attrs "keep_dims")
      in
      K.one (t (f ~axes ~keep_dims (K.input_tensor ctx 0))))

(* Reduce [x] to a target shape by summing the axes that broadcasting
   expanded; the runtime counterpart of gradient shape restoration. *)
let sum_to_shape x target =
  let xs = Tensor.shape x in
  if Shape.equal xs target then x
  else begin
    let extra = Shape.rank xs - Shape.rank target in
    if extra < 0 then
      invalid_arg "SumToShape: target has higher rank than input";
    let leading = List.init extra (fun i -> i) in
    let x = Tensor_ops.reduce_sum ~axes:leading x in
    let xs = Tensor.shape x in
    let ones =
      List.filteri (fun i _ -> target.(i) = 1 && xs.(i) <> 1)
        (Array.to_list (Array.mapi (fun i _ -> i) target))
    in
    let x =
      if ones = [] then x else Tensor_ops.reduce_sum ~axes:ones ~keep_dims:true x
    in
    if Shape.equal (Tensor.shape x) target then x
    else Tensor.reshape x target
  end

let register () =
  K.register ~op_type:"Const" (fun ctx ->
      K.one (t (Node.attr_tensor ctx.K.node "value")));
  K.register ~op_type:"Placeholder" (fun ctx ->
      failwith
        (Printf.sprintf "placeholder %S was not fed" ctx.K.node.Node.name));
  binary "Add" Tensor_ops.add;
  binary "Sub" Tensor_ops.sub;
  binary "Mul" Tensor_ops.mul;
  binary "Div" Tensor_ops.div;
  binary "Pow" Tensor_ops.pow;
  binary "Mod" Tensor_ops.modulo;
  binary "Maximum" Tensor_ops.maximum;
  binary "Minimum" Tensor_ops.minimum;
  unary "Neg" Tensor_ops.neg;
  unary "Abs" Tensor_ops.abs;
  unary "Sign" Tensor_ops.sign;
  unary "Exp" Tensor_ops.exp;
  unary "Log" Tensor_ops.log;
  unary "Sqrt" Tensor_ops.sqrt;
  unary "Square" Tensor_ops.square;
  unary "Reciprocal" Tensor_ops.reciprocal;
  binary_cmp "Equal" Tensor_ops.equal;
  binary_cmp "Less" Tensor_ops.less;
  binary_cmp "Greater" Tensor_ops.greater;
  binary_cmp "GreaterEqual" Tensor_ops.greater_equal;
  K.register ~op_type:"Select" (fun ctx ->
      K.one
        (t
           (Tensor_ops.select (K.input_tensor ctx 0) (K.input_tensor ctx 1)
              (K.input_tensor ctx 2))));
  K.register ~op_type:"AddN" ~aliases:[ (0, 0) ] (fun ctx ->
      match K.all_input_tensors ctx with
      | [] -> invalid_arg "AddN: no inputs"
      (* The single-input sum must still be a fresh buffer: the planner
         may recycle the input's backing store once AddN completes. *)
      | [ x ] -> K.one (t (Tensor.copy x))
      | first :: second :: rest ->
          (* First add may land in a granted input buffer; later adds
             accumulate in place into the (now private) partial sum. *)
          let acc =
            Tensor_ops.add ?out:(K.granted_buffer ctx ~output:0) first second
          in
          let add_into acc x =
            if Dtype.is_floating (Tensor.dtype acc) then
              Tensor_ops.add ~out:(Tensor.float_buffer acc) acc x
            else Tensor_ops.add acc x
          in
          K.one (t (List.fold_left add_into acc rest)));
  (* Fused elementwise expression (Graph_optimizer.Fuse): evaluate the
     postfix "expr" attribute once per output element in a single pass.
     Like the standalone elementwise kernels it may write in place into
     input 0's buffer when the planner grants it (the grant is only
     length-compatible when that input's broadcast plan is the
     identity, so read-i-before-write-i holds). *)
  K.register ~op_type:"FusedElementwise" ~aliases:[ (0, 0) ] (fun ctx ->
      let expr =
        Fused_eval.of_postfix
          (Attr.get_strings ctx.K.node.Node.attrs "expr")
      in
      let inputs = Array.of_list (K.all_input_tensors ctx) in
      K.one
        (t (Fused_eval.eval ?out:(K.granted_buffer ctx ~output:0) expr inputs)));
  K.register ~op_type:"MatMul" (fun ctx ->
      let transpose_a =
        Option.value ~default:false
          (Attr.find_bool ctx.K.node.Node.attrs "transpose_a")
      and transpose_b =
        Option.value ~default:false
          (Attr.find_bool ctx.K.node.Node.attrs "transpose_b")
      in
      K.one
        (t
           (Tensor_ops.matmul ~transpose_a ~transpose_b
              (K.input_tensor ctx 0) (K.input_tensor ctx 1))));
  K.register ~op_type:"Cast" (fun ctx ->
      let dtype = Node.attr_dtype ctx.K.node "dtype" in
      K.one (t (Tensor.cast (K.input_tensor ctx 0) dtype)));
  K.register ~op_type:"ArgMax" (fun ctx ->
      let axis = Node.attr_int ctx.K.node "axis" in
      K.one (t (Tensor_ops.argmax (K.input_tensor ctx 0) ~axis)));
  reduce "ReduceSum" (fun ~axes ~keep_dims x ->
      Tensor_ops.reduce_sum ~axes ~keep_dims x);
  reduce "ReduceMean" (fun ~axes ~keep_dims x ->
      Tensor_ops.reduce_mean ~axes ~keep_dims x);
  reduce "ReduceMax" (fun ~axes ~keep_dims x ->
      Tensor_ops.reduce_max ~axes ~keep_dims x);
  K.register ~op_type:"ShapeOf" (fun ctx ->
      let s = Tensor.shape (K.input_tensor ctx 0) in
      K.one (t (Tensor.of_int_array [| Array.length s |] (Array.copy s))));
  K.register ~op_type:"SumToShape" (fun ctx ->
      let x = K.input_tensor ctx 0 in
      let target = Tensor.to_int_array (K.input_tensor ctx 1) in
      K.one (t (sum_to_shape x target)));
  K.register ~op_type:"ZerosLike" (fun ctx ->
      let x = K.input_tensor ctx 0 in
      K.one (t (Tensor.zeros (Tensor.dtype x) (Tensor.shape x))));
  K.register ~op_type:"OnesLike" (fun ctx ->
      let x = K.input_tensor ctx 0 in
      K.one (t (Tensor.ones (Tensor.dtype x) (Tensor.shape x))));
  K.register ~op_type:"Fill" (fun ctx ->
      let shape = Node.attr_shape ctx.K.node "shape" in
      let v = Node.attr_float ctx.K.node "value" in
      K.one (t (Tensor.full Dtype.F32 shape v)));
  K.register ~op_type:"RandomUniform" (fun ctx ->
      let shape = Node.attr_shape ctx.K.node "shape" in
      let lo = Node.attr_float ctx.K.node "lo"
      and hi = Node.attr_float ctx.K.node "hi" in
      K.one (t (Tensor.uniform ctx.K.rng shape ~lo ~hi)));
  K.register ~op_type:"RandomNormal" (fun ctx ->
      let shape = Node.attr_shape ctx.K.node "shape" in
      let mean = Node.attr_float ctx.K.node "mean"
      and stddev = Node.attr_float ctx.K.node "stddev" in
      K.one (t (Tensor.normal ctx.K.rng shape ~mean ~stddev)))
