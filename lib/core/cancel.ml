type t = {
  mutable state : Step_failure.cause option;
  budget : float option;  (* seconds allotted, for the error message *)
  deadline : float option;  (* absolute, Unix.gettimeofday clock *)
  mutable wakers : (int * (unit -> unit)) list;
  mutable next_id : int;
  mutable finished : bool;
  mutable parent_link : (t * int) option;  (* parent token, our waker id *)
  mutex : Mutex.t;
}

let make ?budget ?deadline () =
  {
    state = None;
    budget;
    deadline;
    wakers = [];
    next_id = 0;
    finished = false;
    parent_link = None;
    mutex = Mutex.create ();
  }

(* Set the cause and collect the wakers under the lock; never run them
   while holding it. Wakers take other locks (a queue's or the
   rendezvous' mutex, to broadcast their condition), so running them
   under ours would invert the order against threads that call {!check}
   from inside those critical sections. *)
let m_fired kind =
  Metrics.Counter.v ~help:"Cancellation tokens fired, by cause kind"
    ~labels:[ ("kind", kind) ]
    "octf_cancel_fired_total"

let set_cause t cause =
  Mutex.lock t.mutex;
  let first = t.state = None in
  let wakers =
    if first then begin
      t.state <- Some cause;
      List.map snd t.wakers
    end
    else []
  in
  Mutex.unlock t.mutex;
  (* Count after unlocking: the metric mutex must stay a leaf, and the
     caller may already hold a queue/rendezvous mutex. *)
  if first then
    Metrics.Counter.incr (m_fired (Step_failure.cause_kind cause));
  wakers

let fire wakers = List.iter (fun f -> f ()) wakers

let cancel_with t cause = fire (set_cause t cause)

(* The watchdog wakes threads parked in condition waits (which have no
   timeout in the stdlib); polling callers observe the deadline
   synchronously through {!cancelled}. It is also the thread that fires
   the wakers when a poller detects expiry first: the poller may hold
   the very queue/rendezvous mutex its own waker relocks ({!check} runs
   inside those critical sections), so it only sets the cause and leaves
   the waking to us. Firing is an idempotent broadcast, so firing again
   after {!cancel_with} already did is harmless. Sleeping in short
   chunks keeps a completed run from pinning the thread until the full
   deadline. *)
let watchdog t deadline budget =
  ignore
    (Thread.create
       (fun () ->
         let rec loop () =
           let now = Unix.gettimeofday () in
           Mutex.lock t.mutex;
           let finished = t.finished in
           let state = t.state in
           let wakers = List.map snd t.wakers in
           Mutex.unlock t.mutex;
           if state <> None then fire wakers
           else if not finished then
             if now >= deadline then
               cancel_with t (Step_failure.Deadline_exceeded budget)
             else begin
               Thread.delay (Float.min 0.01 (deadline -. now));
               loop ()
             end
         in
         loop ())
       ())

let cancel t ~reason = cancel_with t (Step_failure.Cancelled reason)

let cancelled t =
  Mutex.lock t.mutex;
  let state = t.state in
  Mutex.unlock t.mutex;
  match state with
  | Some _ -> state
  | None -> (
      (* Synchronous deadline detection, independent of the watchdog.
         The caller may be polling from inside a queue's or the
         rendezvous' critical section, with its own waker registered —
         firing wakers here would relock the mutex this thread already
         holds. Set the cause only; the watchdog (every token with a
         deadline has one) fires the wakers from its own thread. *)
      match t.deadline with
      | Some d when Unix.gettimeofday () >= d ->
          let budget = Option.value ~default:0.0 t.budget in
          ignore (set_cause t (Step_failure.Deadline_exceeded budget));
          Mutex.lock t.mutex;
          let state = t.state in
          Mutex.unlock t.mutex;
          state
      | _ -> None)

let check t =
  match cancelled t with
  | Some cause -> raise (Step_failure.error cause)
  | None -> ()

let add_waker t f =
  Mutex.lock t.mutex;
  let id = t.next_id in
  t.next_id <- id + 1;
  t.wakers <- (id, f) :: t.wakers;
  Mutex.unlock t.mutex;
  id

let remove_waker t id =
  Mutex.lock t.mutex;
  t.wakers <- List.filter (fun (i, _) -> i <> id) t.wakers;
  Mutex.unlock t.mutex

(* Link a child token to its parent: when the parent fires, the child
   fires with the parent's cause, so a filler step cancelled by its
   group token reports the group's reason and a parent deadline
   surfaces as a deadline. The waker id is kept so {!complete} unlinks
   the child — a long-lived group token must not accumulate one dead
   waker per step it supervised. *)
let link_parent child parent =
  let propagate () =
    match
      (Mutex.lock parent.mutex;
       let s = parent.state in
       Mutex.unlock parent.mutex;
       s)
    with
    | Some cause -> cancel_with child cause
    | None -> ()
  in
  let id = add_waker parent propagate in
  child.parent_link <- Some (parent, id);
  (* The parent may have fired before our waker registered. *)
  propagate ()

let create ?parent ?deadline () =
  let t =
    match deadline with
    | None -> make ()
    | Some budget ->
        let abs = Unix.gettimeofday () +. budget in
        let t = make ~budget ~deadline:abs () in
        watchdog t abs budget;
        t
  in
  Option.iter (link_parent t) parent;
  t

let with_waker cancel wake f =
  match cancel with
  | None -> f ()
  | Some c ->
      let id = add_waker c wake in
      Fun.protect ~finally:(fun () -> remove_waker c id) f

let complete t =
  Mutex.lock t.mutex;
  t.finished <- true;
  let link = t.parent_link in
  t.parent_link <- None;
  Mutex.unlock t.mutex;
  match link with
  | Some (parent, id) -> remove_waker parent id
  | None -> ()

let check_opt = function None -> () | Some t -> check t
