type t = {
  mutable state : Step_failure.cause option;
  budget : float option;  (* seconds allotted, for the error message *)
  deadline : float option;  (* absolute, Unix.gettimeofday clock *)
  mutable wakers : (int * (unit -> unit)) list;
  mutable next_id : int;
  mutable finished : bool;
  mutex : Mutex.t;
}

let make ?budget ?deadline () =
  {
    state = None;
    budget;
    deadline;
    wakers = [];
    next_id = 0;
    finished = false;
    mutex = Mutex.create ();
  }

(* Set the cause and collect the wakers under the lock; run the wakers
   after releasing it. Wakers take other locks (a queue's or the
   rendezvous' mutex, to broadcast their condition), so running them
   while holding ours would invert the order against threads that call
   {!check} from inside those critical sections. *)
let cancel_with t cause =
  Mutex.lock t.mutex;
  let wakers =
    if t.state = None then begin
      t.state <- Some cause;
      List.map snd t.wakers
    end
    else []
  in
  Mutex.unlock t.mutex;
  List.iter (fun f -> f ()) wakers

(* The watchdog exists only to wake threads parked in condition waits
   (which have no timeout in the stdlib); polling callers observe the
   deadline synchronously through {!cancelled}. Sleeping in short
   chunks keeps a completed run from pinning the thread until the full
   deadline. *)
let watchdog t deadline budget =
  ignore
    (Thread.create
       (fun () ->
         let rec loop () =
           let now = Unix.gettimeofday () in
           let finished =
             Mutex.lock t.mutex;
             let f = t.finished || t.state <> None in
             Mutex.unlock t.mutex;
             f
           in
           if not finished then
             if now >= deadline then
               cancel_with t (Step_failure.Deadline_exceeded budget)
             else begin
               Thread.delay (Float.min 0.01 (deadline -. now));
               loop ()
             end
         in
         loop ())
       ())

let create ?deadline () =
  match deadline with
  | None -> make ()
  | Some budget ->
      let abs = Unix.gettimeofday () +. budget in
      let t = make ~budget ~deadline:abs () in
      watchdog t abs budget;
      t

let cancel t ~reason = cancel_with t (Step_failure.Cancelled reason)

let cancelled t =
  Mutex.lock t.mutex;
  let state = t.state in
  Mutex.unlock t.mutex;
  match state with
  | Some _ -> state
  | None -> (
      (* Synchronous deadline detection, independent of the watchdog. *)
      match t.deadline with
      | Some d when Unix.gettimeofday () >= d ->
          let budget = Option.value ~default:0.0 t.budget in
          cancel_with t (Step_failure.Deadline_exceeded budget);
          Mutex.lock t.mutex;
          let state = t.state in
          Mutex.unlock t.mutex;
          state
      | _ -> None)

let check t =
  match cancelled t with
  | Some cause -> raise (Step_failure.error cause)
  | None -> ()

let add_waker t f =
  Mutex.lock t.mutex;
  let id = t.next_id in
  t.next_id <- id + 1;
  t.wakers <- (id, f) :: t.wakers;
  Mutex.unlock t.mutex;
  id

let remove_waker t id =
  Mutex.lock t.mutex;
  t.wakers <- List.filter (fun (i, _) -> i <> id) t.wakers;
  Mutex.unlock t.mutex

let with_waker cancel wake f =
  match cancel with
  | None -> f ()
  | Some c ->
      let id = add_waker c wake in
      Fun.protect ~finally:(fun () -> remove_waker c id) f

let complete t =
  Mutex.lock t.mutex;
  t.finished <- true;
  Mutex.unlock t.mutex

let check_opt = function None -> () | Some t -> check t
