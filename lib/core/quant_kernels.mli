(** Quantization kernels (§5): 8-bit affine quantization in the
    TF/gemmlowp style, for fast low-precision inference.

    A float tensor is mapped onto the 0..255 code range with its
    [(min, max)] carried alongside as two scalar tensors; codes travel
    in int32 tensors. [QuantizedMatMul] accumulates the 8-bit codes in
    integer arithmetic (the gemmlowp decomposition) and produces the
    rescaled float result.

    The kernel registrations ([Quantize], [Dequantize],
    [QuantizedMatMul]) are internal — {!Builtin_kernels.ensure}
    installs them; only the arithmetic is exposed here for tests. *)

open Octf_tensor

val quantize : Tensor.t -> Tensor.t * float * float
(** [quantize t] is [(codes, lo, hi)]: int32 codes in 0..255 plus the
    float range they decode against. The range always includes 0.0 and
    is widened to a non-degenerate interval for constant tensors. *)

val dequantize : Tensor.t -> float -> float -> Tensor.t
(** [dequantize codes lo hi] reconstructs the float tensor. *)

val quantized_matmul :
  Tensor.t -> float -> float -> Tensor.t -> float -> float -> Tensor.t
(** [quantized_matmul qa a_lo a_hi qb b_lo b_hi]: integer-accumulated
    product of two quantized 2-D operands, rescaled to float.
    @raise Invalid_argument on non-2-D operands or inner-dim mismatch. *)

val register : unit -> unit
(** Install the kernels; called by {!Builtin_kernels.ensure}. *)
