(** Quantization kernels (§5): 8-bit affine quantization in the
    TF/gemmlowp style, for fast low-precision inference.

    A float tensor is mapped onto the 0..255 code range with its
    [(min, max)] carried alongside as two scalar tensors; codes travel
    in packed uint8 tensors (one byte per element — a 4x memory cut
    over float32 weights). The quantized contractions accumulate the
    8-bit codes in integer arithmetic (the gemmlowp decomposition) and
    rescale to float; the [...Q] kernel variants requantize the result
    so consecutive quantized islands exchange codes directly.

    The kernel registrations ([Quantize], [QuantizeRange],
    [Dequantize], [QuantizedMatMul], [QuantizedConv2D],
    [QuantizedMatMulQ], [QuantizedConv2DQ]) are internal —
    {!Builtin_kernels.ensure} installs them; the arithmetic is exposed
    here for tests and the calibration/benchmark tooling.

    Shape and dtype violations raise {!Step_failure.Error} with an
    [Invalid_graph] cause (never bare [Invalid_argument]), so bad
    quantized graphs surface through the session's typed error path. *)

open Octf_tensor

val levels : float
(** Number of quantization steps spanning a range: [255.0]. *)

val range_of : Tensor.t -> float * float
(** Min/max of a float tensor, widened to include [0.0] and to a
    non-degenerate interval (a constant tensor [c] yields a unit-wide
    range). *)

val zero_point : float -> float -> int
(** [zero_point lo hi]: the code decoding nearest to [0.0]; always in
    [0..255] because ranges include zero. *)

val quantize : Tensor.t -> Tensor.t * float * float
(** [quantize t] is [(codes, lo, hi)]: packed uint8 codes in 0..255
    plus the float range they decode against, with the range derived
    from the tensor via {!range_of}. *)

val quantize_with_range : Tensor.t -> float -> float -> Tensor.t
(** [quantize_with_range t lo hi]: codes against a caller-supplied
    (e.g. calibrated) range; values outside clamp to the range ends.
    @raise Step_failure.Error when [hi <= lo]. *)

val dequantize : Tensor.t -> float -> float -> Tensor.t
(** [dequantize codes lo hi] reconstructs the float tensor. *)

val quantized_matmul :
  ?bias:Tensor.t ->
  ?relu:bool ->
  Tensor.t ->
  float ->
  float ->
  Tensor.t ->
  float ->
  float ->
  Tensor.t
(** [quantized_matmul qa a_lo a_hi qb b_lo b_hi]: integer-accumulated
    product of two quantized operands, rescaled to float. [qa] may be
    batched (rank >= 2, last two dims [m,k]); [qb] is either 2-D
    (weights shared across batch slices) or batched alongside [qa].
    [?bias] (a length-n float vector) and [?relu] fuse the usual
    inference epilogue. Deterministic across thread counts.
    @raise Step_failure.Error ([Invalid_graph]) on rank/shape/dtype
    violations. *)

val quantized_conv2d :
  ?bias:Tensor.t ->
  ?relu:bool ->
  Tensor.t ->
  float ->
  float ->
  Tensor.t ->
  float ->
  float ->
  strides:int * int ->
  padding:Tensor_ops.padding ->
  Tensor.t
(** [quantized_conv2d qin in_lo in_hi qfilter f_lo f_hi]: quantized
    NHWC x HWIO convolution — im2col over the packed codes (padding
    filled with the input's {!zero_point}, which decodes to ~0.0) into
    the shared integer GEMM core. Epilogues as in {!quantized_matmul}.
    @raise Step_failure.Error ([Invalid_graph]) on rank/shape/dtype
    violations. *)

val register : unit -> unit
(** Install the kernels; called by {!Builtin_kernels.ensure}. *)
