(** Mutable runtime state owned by stateful operations (§3.1).

    A [Variable] operation owns a mutable buffer holding model
    parameters; it produces a {e reference handle} — a typed capability
    for reading and writing the buffer — which flows along graph edges to
    [Read], [Assign*] and [Scatter*] operations. Queues work the same
    way. Resources live in a per-task {!Resource_manager}, so they
    persist across steps and are shared by concurrent steps. *)

open Octf_tensor

type variable = {
  var_name : string;
  var_dtype : Dtype.t;
  var_shape : Shape.t;
  mutable value : Tensor.t option;  (** [None] until initialized *)
  mutable version : int;
      (** bumped on every assign/update; updates are copy-on-write, so
          a [(value, version)] pair observed together is an immutable
          snapshot — the unit of the pipelined engine's versioned
          variable reads (§4.4's consistency model) *)
  var_mutex : Mutex.t;
}

(** A record iterator: the state behind the Reader operations of
    Figure 1's I/O subgraph. Records are consumed once, in order. *)
type iterator = {
  it_name : string;
  mutable it_records : string list;  (** remaining records *)
  it_mutex : Mutex.t;
}

(** A growable array of tensors written at explicit indices — the
    per-iteration accumulator behind dynamic loops (§3.4's
    "accumulating intermediate values over long sequences"; §4.1's GPU
    memory management for iteration). *)
type tensor_array = {
  ta_name : string;
  mutable ta_items : Tensor.t option array;
  ta_mutex : Mutex.t;
}

type t =
  | Variable of variable
  | Queue of Queue_impl.t
  | Iterator of iterator
  | Tensor_array of tensor_array

val make_variable : name:string -> dtype:Dtype.t -> shape:Shape.t -> variable

val make_iterator : name:string -> records:string list -> iterator

val iterator_next : iterator -> string option
(** Pop the next record; [None] when exhausted. Thread-safe. *)

val make_tensor_array : name:string -> tensor_array

val tensor_array_write : tensor_array -> int -> Tensor.t -> unit
(** @raise Invalid_argument on a negative index or double write. *)

val tensor_array_read : tensor_array -> int -> Tensor.t
(** @raise Failure on an unwritten index. *)

val tensor_array_size : tensor_array -> int
(** One past the highest written index. *)

val tensor_array_stack : tensor_array -> Tensor.t list
(** All written elements in index order.
    @raise Failure if any index below the size is unwritten. *)

val variable_read : variable -> Tensor.t
(** @raise Failure if the variable has not been initialized (assigned). *)

val variable_assign : variable -> Tensor.t -> unit
(** Replace the value. @raise Invalid_argument on dtype/shape mismatch
    (shape is fixed by the first assignment when declared unknown). *)

val variable_update : variable -> (Tensor.t -> Tensor.t) -> Tensor.t
(** Atomically replace the value with [f value] and return the new value;
    this is the associative-combiner write the parameter-server
    architecture specializes (§2.2). *)

val variable_version : variable -> int
(** The number of assigns/updates applied so far (0 = uninitialized). *)

val variable_peek : variable -> (Tensor.t * int) option
(** The current [(value, version)] snapshot, atomically; [None] until
    initialized. The tensor is immutable (copy-on-write updates), so
    the pair stays a consistent snapshot after the lock is dropped. *)

val name : t -> string

val pp : Format.formatter -> t -> unit
