(** Compile-time operation attributes (§3.1).

    An operation has a named type and zero or more attributes that
    determine its behaviour — e.g. [Const] carries its value, [MatMul]
    its transposition flags, [AddN] its arity. *)

open Octf_tensor

type t =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Dtype of Dtype.t
  | Shape of Shape.t
  | Tensor of Tensor.t
  | Ints of int list
  | Floats of float list
  | Strings of string list

val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** {1 Typed lookup helpers}

    [get_* attrs name] finds an attribute by name and projects it;
    raises [Invalid_argument] when missing or of the wrong kind.
    [find_*] variants return an option. *)

val get_bool : (string * t) list -> string -> bool

val get_int : (string * t) list -> string -> int

val get_float : (string * t) list -> string -> float

val get_string : (string * t) list -> string -> string

val get_dtype : (string * t) list -> string -> Dtype.t

val get_shape : (string * t) list -> string -> Shape.t

val get_tensor : (string * t) list -> string -> Tensor.t

val get_ints : (string * t) list -> string -> int list

val find_bool : (string * t) list -> string -> bool option

val find_int : (string * t) list -> string -> int option

val find_float : (string * t) list -> string -> float option

val find_string : (string * t) list -> string -> string option

val find_dtype : (string * t) list -> string -> Dtype.t option

val find_shape : (string * t) list -> string -> Shape.t option

val find_ints : (string * t) list -> string -> int list option

val get_strings : (string * t) list -> string -> string list

val find_strings : (string * t) list -> string -> string list option
