(** In-process clusters: jobs, tasks and their devices (§3.3).

    A cluster names a set of tasks grouped into jobs (conventionally
    "ps" for parameter-server tasks and "worker" for workers). Each task
    owns its devices and its resource manager, so variables placed on
    ["/job:ps/task:0"] live in that task's state exactly as in a real
    deployment; partitioned steps run one executor thread per device,
    standing in for the per-task dataflow executors of §5, and
    communicate through the shared in-process rendezvous (DESIGN.md,
    substitution 2).

    The paper relies on Chubby/ZooKeeper only to map task ids to
    addresses; here the equivalent name service is the lookup tables in
    this module. *)

type t

val create : jobs:(string * int * Device.device_type list) list -> t
(** [create ~jobs] where each job is (name, task count, device types per
    task). E.g. [("ps", 2, [CPU]); ("worker", 3, [CPU; GPU])]. *)

val devices : t -> Device.t list

val task_names : t -> string list
(** ["/job:ps/task:0"]-style names, the name-service view. *)

val resources_of : t -> Device.t -> Resource_manager.t
(** The resource manager of the task owning the device.
    @raise Step_failure.Error with a [Missing_task] cause naming the
    requested [/job:<j>/task:<i>] and the known tasks, for devices
    outside the cluster. *)

val task_resources : t -> job:string -> task:int -> Resource_manager.t
(** @raise Step_failure.Error ([Missing_task]) for unknown tasks. *)

val restart_task : t -> job:string -> task:int -> unit
(** Simulate a task process restart: drop every variable and queue the
    task held, as a real restarted worker loses its memory. Callers
    re-create state by re-running init ops and restoring the latest
    checkpoint (§4.3) — see {!Octf_train.Supervisor}.
    @raise Step_failure.Error ([Missing_task]) for unknown tasks. *)

val session :
  ?config:Session.Config.t ->
  ?seed:int ->
  ?optimize:bool ->
  ?scheduler:Scheduler.policy ->
  ?max_in_flight:int ->
  ?barrier:bool ->
  ?remote:Remote.runner ->
  t ->
  Graph.t ->
  Session.t
(** A master session executing over every device in the cluster: a
    {!Session.create} whose [devices] and [resource_router] come from
    the cluster and whose remaining knobs come from [config] (the
    [devices]/[resource_router] fields of [config] are ignored). The
    bare labels are the same deprecated wrappers as on
    {!Session.create}. With [~scheduler:Scheduler.Pool] every
    partition dispatches its ready kernels onto the one shared domain
    pool, so a multi-task step uses all cores instead of time-slicing
    partition threads on one. *)
