(** Pluggable executor scheduling (§3.3, §5).

    The paper's executor "maps nodes onto the available compute
    resources": a node whose inputs have all arrived is dispatched onto
    the device's compute resources, and independent nodes run
    concurrently. This module owns that policy. The {!Executor} compiles
    graphs and applies node results; the scheduler decides {e where and
    in what order} ready kernels run:

    - {!Inline} — the original single-threaded loop: every kernel runs
      immediately on the coordinating thread, in FIFO readiness order.
      Zero dispatch overhead; one core per partition.
    - {!Pool} — ready non-blocking kernels are dispatched onto the
      shared {!Domain_pool}, so independent branches of one step run on
      distinct cores (true intra-step inter-op parallelism). The
      dataflow bookkeeping stays on the coordinating thread; worker
      domains only run kernels.

    Blocking-kernel rule (progress guarantee): kernels that may park the
    calling thread — [Recv], queue operations — are never offloaded.
    They run on the coordinating thread, and only when no non-blocking
    work remains, exactly as in the inline loop; [Recv] is polled
    non-blockingly so one pending value never wedges a partition whose
    other inputs have arrived. A worker domain therefore never blocks,
    and every submitted task terminates.

    Determinism: a kernel's output depends only on its input values and
    its per-node RNG stream (derived from seed, step id, node id and
    iteration), never on dispatch order, so both policies produce
    bit-identical fetches. *)

type policy = Inline | Pool

val policy_of_string : string -> (policy, string) result
(** Recognizes ["inline"]/["serial"] and ["pool"]/["parallel"]. *)

val policy_to_string : policy -> string

val default_policy : unit -> policy
(** {!Inline}, unless the [OCTF_SCHEDULER] environment variable names
    another policy. Sessions and executors fall back to this when no
    [?scheduler] is given. *)

(** {1 The dispatch engine}

    The executor describes its work items abstractly and the engine runs
    them to quiescence. A work item is staged on the coordinating
    thread; staging either completes it at once (dead-value propagation,
    fed nodes) or yields a kernel thunk that is safe to run on a worker
    domain. The thunk returns a completion continuation which the engine
    applies back on the coordinating thread — continuations mutate
    executor state and typically call {!add} with newly-ready items. *)

type staged =
  | Finish of (unit -> unit)
      (** No kernel to run; apply the continuation on the coordinator. *)
  | Offload of (unit -> unit -> unit)
      (** [run () = k] runs the kernel (worker-safe: it touches only
          immutable staged state and mutex-protected shared objects) and
          returns the continuation [k] to apply on the coordinator. It
          must not raise: capture failures and raise from [k] instead. *)

type cls = Normal | Recv | Blocking

type 'task ops = {
  classify : 'task -> cls;
  stage : 'task -> staged;
      (** Coordinator-side preparation of a {!Normal} task: gather
          inputs, resolve the kernel, build the context. *)
  run_blocking : 'task -> unit;
      (** Run a {!Blocking} (or rendezvous-less {!Recv}) task to
          completion on the coordinating thread, continuation included. *)
  poll_recv : 'task -> (unit -> unit) option;
      (** Try to complete a pending {!Recv} without blocking; [Some k]
          on success ([k] is applied immediately on the coordinator). *)
  rendezvous : Rendezvous.t option;
      (** When present, the engine parks on it (generation-watched) once
          only Recvs remain, waking when a peer partition sends. *)
  cancel : Cancel.t option;
      (** When present, both drive loops poll it between tasks — so even
          a cyclic graph that never quiesces honours its deadline — and
          pass it to rendezvous parks so cancellation wakes a parked
          coordinator. *)
}

type 'task t

val create : policy -> 'task ops -> 'task t

val add : 'task t -> 'task -> unit
(** Make a task ready. Called from the coordinating thread only — at
    seeding time and from completion continuations. *)

val drive : 'task t -> unit
(** Run until no task is ready, none is in flight, and no pending [Recv]
    can make progress. Re-raises the first continuation failure on the
    coordinating thread.

    @raise Rendezvous.Aborted if a peer partition fails while this one
    is parked on the rendezvous.
    @raise Step_failure.Error if the step's cancellation token fires
    (deadline expiry or explicit cancellation). *)
