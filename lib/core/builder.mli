(** Graph-construction API — the "client library" of §3.

    A builder wraps a {!Graph.t} with name scoping, device scoping and
    control-dependency scoping, and offers one constructor per operation.
    Constructors return {!output} endpoints that later constructors (and
    {!Session} fetches, {!Gradients}) consume.

    Everything here is unprivileged composition of primitive operations:
    the optimizers, embedding layers, checkpointing and synchronous
    coordination of §4 are all built on this API without touching the
    runtime. *)

open Octf_tensor

type t

(** One output slot of a node. *)
type output = { node : Node.t; out : int }

val create : unit -> t

val graph : t -> Graph.t

val output : ?index:int -> Node.t -> output

val endpoint_of_output : output -> Node.endpoint

(** {1 Scoping} *)

val with_device : t -> string -> (unit -> 'a) -> 'a
(** Push a (possibly partial) device spec, e.g.
    ["/job:ps/task:0"]; nested scopes merge, conflicts raise. *)

val with_name_scope : t -> string -> (unit -> 'a) -> 'a
(** Prefix default node names with ["scope/"]. *)

val with_control_dependencies : t -> output list -> (unit -> 'a) -> 'a
(** Ops created inside run after the given outputs' nodes. *)

(** {1 Generic constructor} *)

val op :
  t ->
  ?name:string ->
  ?attrs:(string * Attr.t) list ->
  ?device:string ->
  ?control_inputs:output list ->
  op_type:string ->
  output list ->
  Node.t
(** Escape hatch used by all the typed constructors below. *)

(** {1 Sources} *)

val const : t -> ?name:string -> Tensor.t -> output

val const_f : t -> ?name:string -> float -> output

val const_i : t -> ?name:string -> int -> output

val const_s : t -> ?name:string -> string -> output

val placeholder : t -> ?name:string -> ?shape:Shape.t -> Dtype.t -> output

val variable : t -> ?name:string -> ?device:string -> dtype:Dtype.t -> shape:Shape.t -> unit -> output

val fill : t -> ?name:string -> Shape.t -> float -> output

val random_uniform :
  t -> ?name:string -> ?lo:float -> ?hi:float -> Shape.t -> output

val random_normal :
  t -> ?name:string -> ?mean:float -> ?stddev:float -> Shape.t -> output

(** {1 State} *)

val read : t -> ?name:string -> output -> output

val assign : t -> ?name:string -> output -> output -> output

val assign_add : t -> ?name:string -> output -> output -> output

val assign_sub : t -> ?name:string -> output -> output -> output

val scatter_add : t -> ?name:string -> output -> output -> output -> output
(** [scatter_add b var indices updates]. *)

val scatter_sub : t -> ?name:string -> output -> output -> output -> output

val scatter_update : t -> ?name:string -> output -> output -> output -> output

val count_up : t -> ?name:string -> output -> output
(** Atomic fetch-and-add(1) on a scalar variable. *)

(** {1 Math} *)

val add : t -> ?name:string -> output -> output -> output

val sub : t -> ?name:string -> output -> output -> output

val mul : t -> ?name:string -> output -> output -> output

val div : t -> ?name:string -> output -> output -> output

val pow : t -> ?name:string -> output -> output -> output

val modulo : t -> ?name:string -> output -> output -> output
(** Integer remainder (used for mod-sharding of embedding rows, §4.2). *)

val maximum : t -> ?name:string -> output -> output -> output

val minimum : t -> ?name:string -> output -> output -> output

val neg : t -> ?name:string -> output -> output

val abs : t -> ?name:string -> output -> output

val sign : t -> ?name:string -> output -> output

val exp : t -> ?name:string -> output -> output

val log : t -> ?name:string -> output -> output

val sqrt : t -> ?name:string -> output -> output

val square : t -> ?name:string -> output -> output

val reciprocal : t -> ?name:string -> output -> output

val add_n : t -> ?name:string -> output list -> output

val matmul :
  t ->
  ?name:string ->
  ?transpose_a:bool ->
  ?transpose_b:bool ->
  output ->
  output ->
  output

val equal : t -> ?name:string -> output -> output -> output

val less : t -> ?name:string -> output -> output -> output

val greater : t -> ?name:string -> output -> output -> output

val greater_equal : t -> ?name:string -> output -> output -> output

val select : t -> ?name:string -> output -> output -> output -> output

val cast : t -> ?name:string -> output -> Dtype.t -> output

val argmax : t -> ?name:string -> output -> axis:int -> output

val reduce_sum :
  t -> ?name:string -> ?axes:int list -> ?keep_dims:bool -> output -> output

val reduce_mean :
  t -> ?name:string -> ?axes:int list -> ?keep_dims:bool -> output -> output

val reduce_max :
  t -> ?name:string -> ?axes:int list -> ?keep_dims:bool -> output -> output

val shape_of : t -> ?name:string -> output -> output

val sum_to_shape : t -> ?name:string -> output -> output -> output
(** [sum_to_shape b x target_shape]: reduce [x]'s broadcast axes so it has
    the given (runtime) shape; used by gradients of broadcasting ops. *)

val zeros_like : t -> ?name:string -> output -> output

val ones_like : t -> ?name:string -> output -> output

(** {1 Array} *)

val identity : t -> ?name:string -> output -> output

val stop_gradient : t -> ?name:string -> output -> output

val reshape : t -> ?name:string -> output -> Shape.t -> output

val expand_dims : t -> ?name:string -> output -> axis:int -> output
(** Insert a size-1 axis at [axis] (negative counts from the end). *)

val reshape_like : t -> ?name:string -> output -> output -> output
(** [reshape_like b x like]: [x] reshaped to [like]'s runtime shape. *)

val transpose : t -> ?name:string -> ?perm:int array -> output -> output

val concat : t -> ?name:string -> axis:int -> output list -> output

val slice :
  t -> ?name:string -> output -> begin_:int array -> size:int array -> output

val pad : t -> ?name:string -> output -> paddings:(int * int) array -> output

val tile : t -> ?name:string -> output -> multiples:int array -> output

val pack : t -> ?name:string -> output list -> output
(** Stack same-shape tensors along a new leading axis. *)

val unpack : t -> ?name:string -> output -> num:int -> output list
(** Inverse of {!pack}: the [num] slices of the leading axis. *)

val split : t -> ?name:string -> output -> axis:int -> num:int -> output list
(** Even split along [axis]. *)

val one_hot : t -> ?name:string -> output -> depth:int -> output

val gather : t -> ?name:string -> output -> output -> output

val range_like : t -> ?name:string -> output -> output
(** 1-D int tensor [0 .. numel x) of the input's runtime element count. *)

val random_indices : t -> ?name:string -> n:int -> range:int -> unit -> output
(** [n] uniform class ids in [0, range): the candidate sampler for
    sampled softmax (§4.2). Stateful; a fresh sample per step. *)

val dynamic_partition :
  t -> ?name:string -> output -> output -> num:int -> output list

val dynamic_stitch :
  t -> ?name:string -> output list -> output list -> output

val scatter_into_shape :
  t -> ?name:string -> output -> output -> output -> output
(** [scatter_into_shape b shape indices updates]: dense tensor of the
    given shape with update rows accumulated at [indices]. *)

(** {1 Neural nets} *)

val relu : t -> ?name:string -> output -> output

val relu_grad : t -> ?name:string -> output -> output -> output

val sigmoid : t -> ?name:string -> output -> output

val tanh : t -> ?name:string -> output -> output

val softmax : t -> ?name:string -> output -> output

val log_softmax : t -> ?name:string -> output -> output

val softmax_cross_entropy :
  t -> ?name:string -> logits:output -> labels:output -> unit -> output * output
(** Returns (per-example loss, cached backprop). *)

val conv2d :
  t ->
  ?name:string ->
  strides:int * int ->
  padding:[ `Same | `Valid ] ->
  output ->
  output ->
  output

val max_pool :
  t ->
  ?name:string ->
  ksize:int * int ->
  strides:int * int ->
  padding:[ `Same | `Valid ] ->
  output ->
  output

val avg_pool :
  t ->
  ?name:string ->
  ksize:int * int ->
  strides:int * int ->
  padding:[ `Same | `Valid ] ->
  output ->
  output

(** {1 Quantization (§5)}

    8-bit affine quantization for fast inference: a float tensor becomes
    integer codes plus a (min, max) range; [quantized_matmul] accumulates
    the codes in integer arithmetic (the gemmlowp scheme) and yields the
    rescaled float product. *)

val quantize : t -> ?name:string -> output -> output * output * output
(** (codes, min, max). *)

val dequantize : t -> ?name:string -> output -> output -> output -> output

val quantized_matmul :
  t ->
  ?name:string ->
  output * output * output ->
  output * output * output ->
  output

val quantize_range :
  t -> ?name:string -> lo:float -> hi:float -> output -> output * output * output
(** Quantize against a fixed (calibrated) range carried as attrs; the
    range scalars are echoed as outputs 1 and 2 so the codes plug into
    the same consumers as {!quantize}. *)

val quantized_conv2d :
  t ->
  ?name:string ->
  strides:int * int ->
  padding:[ `Same | `Valid ] ->
  output * output * output ->
  output * output * output ->
  output
(** Quantized NHWC x HWIO convolution producing the rescaled float
    result: [(codes, lo, hi)] triples for input and filter. *)

val quantized_matmul_q :
  t ->
  ?name:string ->
  ?epilogue:[ `None | `Bias | `Relu | `Bias_relu ] ->
  ?out_range:float * float ->
  ?bias:output ->
  output * output * output ->
  output * output * output ->
  output * output * output
(** Codes-out quantized matmul: integer product, optional fused bias /
    ReLU epilogue, requantized to [(codes, lo, hi)] — against
    [out_range] when given, else a dynamic min/max pass. *)

val quantized_conv2d_q :
  t ->
  ?name:string ->
  ?epilogue:[ `None | `Bias | `Relu | `Bias_relu ] ->
  ?out_range:float * float ->
  ?bias:output ->
  strides:int * int ->
  padding:[ `Same | `Valid ] ->
  output * output * output ->
  output * output * output ->
  output * output * output
(** Codes-out quantized convolution; see {!quantized_matmul_q}. *)

(** {1 Queues} *)

val fifo_queue :
  t -> ?name:string -> capacity:int -> num_components:int -> unit -> output

val random_shuffle_queue :
  t ->
  ?name:string ->
  ?seed:int ->
  capacity:int ->
  num_components:int ->
  unit ->
  output

val enqueue : t -> ?name:string -> output -> output list -> output
(** Returns the (output-less) op as a fetchable target handle: use the
    node as a step target. The returned output has index 0 but carries no
    value; pass its node to [Session.run ~targets]. *)

val enqueue_many : t -> ?name:string -> output -> output list -> output

val dequeue : t -> ?name:string -> output -> num_components:int -> output list

val dequeue_many :
  t -> ?name:string -> output -> n:int -> num_components:int -> output list

val queue_close : t -> ?name:string -> output -> output

val queue_size : t -> ?name:string -> output -> output

(** {1 Checkpointing} *)

val save :
  t -> ?name:string -> filename:output -> (string * output) list -> output
(** [save b ~filename entries]: write named tensors; returns the target
    handle. *)

val restore :
  t -> ?name:string -> filename:output -> string list -> output list

(** {1 Tensor arrays (§3.4)}

    Per-index accumulators for values produced across loop iterations:
    create one outside the loop, pass the handle in through
    [~invariants], write at the iteration index inside the body, and
    stack after the [Exit]. Like every resource the array persists
    across steps, so re-running the same loop step needs a fresh array
    (or session); writes to an already-written index fail loudly. *)

val tensor_array : t -> ?name:string -> unit -> output

val tensor_array_write :
  t -> ?name:string -> output -> output -> output -> output
(** [tensor_array_write b handle index value]: returns [value] as a flow
    token ordering downstream reads after the write. *)

val tensor_array_read : t -> ?name:string -> output -> output -> output

val tensor_array_size : t -> ?name:string -> output -> output

val tensor_array_stack : t -> ?name:string -> output -> output
(** All written elements packed along a new leading axis. *)

(** {1 Input records (Figure 1's I/O subgraph)} *)

val record_reader : t -> ?name:string -> files:string list -> unit -> output
(** A Reader over record files ({!Record_format}); emits a reference
    handle. State persists across steps, so concurrent preprocessing
    steps each pull distinct records. *)

val read_record : t -> ?name:string -> output -> output
(** Next record as a string scalar. When the reader is exhausted the
    step fails with an end-of-input error, which pipeline fillers treat
    as end-of-stream. *)

val decode_example :
  t -> ?name:string -> output -> features:string list -> output list
(** Parse an {!Record_format.encode_example} record into the named
    feature tensors. *)

(** {1 Control flow (§3.4)} *)

val no_op : t -> ?name:string -> ?control_inputs:output list -> unit -> output

val group : t -> ?name:string -> output list -> output
(** A NoOp with control dependencies on all arguments — the usual
    "training op" bundling several updates. *)

val switch : t -> ?name:string -> output -> output -> output * output
(** [switch b data pred] returns (false branch, true branch). *)

val merge : t -> ?name:string -> output list -> output

val cond :
  t ->
  ?name:string ->
  output ->
  inputs:output list ->
  then_:(t -> output list -> output list) ->
  else_:(t -> output list -> output list) ->
  output list
(** Non-strict conditional (Figure 2): each input is demultiplexed by a
    [Switch] on the predicate, each branch function sees only its side's
    endpoints, and results are joined by [Merge]. Only the taken branch
    executes. Branches must return lists of the same length. *)

val while_loop :
  t ->
  ?name:string ->
  ?invariants:output list ->
  cond:(t -> output list -> output) ->
  body:(t -> output list -> output list) ->
  output list ->
  output list
(** Timely-dataflow-style iteration: loop variables Enter a named frame,
    cycle through Merge → Switch → body → NextIteration, and leave
    through Exit when [cond] is false. [invariants] are loop-invariant
    external values made available in every iteration ([Enter] with
    [is_constant]); both the [cond] and [body] callbacks receive the live
    loop variables followed by the entered invariants, and [body] must
    return exactly one output per loop variable. Returns the Exit
    outputs.

    Closures must not introduce fresh source operations (e.g. constants)
    inside the loop: every external value has to arrive through the loop
    variables or [invariants], or the executor rejects the step with a
    frame-crossing error. *)
