(** The dataflow executor (§3.3–3.4, §5).

    Executes a pruned subgraph: schedules each operation's kernel once
    all of its inputs have arrived, propagates the special dead value
    from untaken [Switch] branches, and implements the timely-dataflow
    frame/iteration machinery behind [Enter]/[Exit]/[NextIteration] so
    conditionals and (nested) while loops run with one value per output
    per iteration.

    Scheduling notes:
    - where ready kernels run is delegated to {!Scheduler}: the
      [Inline] policy executes every kernel on the coordinating thread
      (single-threaded per partition, as before), while the [Pool]
      policy dispatches ready non-blocking kernels onto the shared
      {!Domain_pool} so independent branches of one step run on
      distinct cores; concurrent steps and multi-partition steps each
      run their coordinating loop in its own thread (see {!Session} and
      {!Cluster});
    - potentially blocking kernels ([Recv], queue operations) always
      stay on the coordinating thread and are scheduled only when no
      non-blocking work remains, which guarantees progress across
      partitions of an acyclic dataflow graph and keeps worker domains
      from ever parking;
    - both policies produce bit-identical fetches: kernel results depend
      only on input values and the per-node RNG stream (derived from
      seed, step id, node id and iteration), never on dispatch order;
    - dead [NextIteration] results are discarded rather than propagated,
      terminating loops exactly as in TensorFlow's executor. *)

(** Failures surface as {!Step_failure.Error}: a structured record
    naming the failing node, its device and a typed cause (kernel
    failure, injected fault, deadline expiry, cancellation, peer
    abort). On a primary failure the executor aborts the step's
    rendezvous and cancels its token so peer partitions — including
    threads parked in queue or rendezvous waits — fail as a unit
    instead of deadlocking. *)

type plan
(** A compiled subgraph: readiness counts, frame assignment, resolved
    kernels, and — when the subgraph is free of control flow — a dense
    array-indexed execution plan. Sessions cache plans so that repeated
    steps pay no compilation cost (§3.3: "its subgraphs are cached in
    their respective devices"). A plan may be executed concurrently from
    several threads; all mutable per-step state is private to
    {!execute}. *)

val prepare :
  ?scheduler:Scheduler.policy ->
  ?memory_planning:bool ->
  graph:Graph.t ->
  nodes:int list ->
  fed_ids:int list ->
  unit ->
  plan
(** Compile the subgraph induced by [nodes]. [fed_ids] are the nodes
    whose outputs the client will feed (their inputs are not wired).
    [scheduler] sets the plan's default policy (falling back to
    {!Scheduler.default_policy}); {!execute} may override per step.

    [memory_planning] sets the plan's default for the per-step lifetime
    analysis (falling back to {!Mem_plan.enabled}). When on, each step
    refcounts the consumers of every planner-owned output endpoint,
    drops stored values as their last reader finishes (recycling float
    buffers through {!Octf_tensor.Buffer_pool}), and grants declared
    May_alias kernels in-place writes into exclusively-owned input
    buffers. Fetched endpoints, fed values, variable state and values
    passing through retaining ops (Identity, reshapes, control flow,
    Assign, queues, Send) are never dropped early or aliased; fetches
    are bit-identical with planning on or off.

    @raise Step_failure.Error on malformed control flow (frame-crossing
    edges) *)

val execute :
  plan ->
  ?scheduler:Scheduler.policy ->
  ?intra_op_threads:int ->
  ?memory_planning:bool ->
  feeds:(Node.endpoint * Value.t) list ->
  fetches:Node.endpoint list ->
  resources:Resource_manager.t ->
  ?rendezvous:Rendezvous.t ->
  ?tracer:Tracer.t ->
  ?cancel:Cancel.t ->
  ?seed:int ->
  ?step_id:int ->
  ?var_snapshot:(string -> Octf_tensor.Tensor.t option) ->
  unit ->
  Value.t list
(** Execute one step of a prepared plan. The feed list must cover exactly
    the plan's [fed_ids]. [cancel] is the step's cancellation token,
    shared by every partition: deadline expiry or explicit cancellation
    makes the step raise a structured error instead of hanging.
    [intra_op_threads] sets the {e process-wide} intra-op thread budget
    ({!Octf_tensor.Parallel.set_threads}) before the step runs — a
    hardware-resource knob like TensorFlow's
    [intra_op_parallelism_threads], not per-step state.
    [memory_planning] overrides the plan's default for this step.
    [var_snapshot] (from the pipelined session's admission control)
    redirects [Read] kernels to the variable values captured when the
    step was admitted; updates still land on live variables. *)

val run :
  ?scheduler:Scheduler.policy ->
  ?intra_op_threads:int ->
  ?memory_planning:bool ->
  graph:Graph.t ->
  nodes:int list ->
  feeds:(Node.endpoint * Value.t) list ->
  fetches:Node.endpoint list ->
  resources:Resource_manager.t ->
  ?rendezvous:Rendezvous.t ->
  ?cancel:Cancel.t ->
  ?seed:int ->
  ?step_id:int ->
  unit ->
  Value.t list
(** [run ~graph ~nodes ~feeds ~fetches ~resources ()] executes the
    subgraph induced by [nodes] (from {!Pruner}) and returns the value of
    each fetch, in order. Fed nodes are not executed; their outputs are
    the fed values. Random operations draw from a stream derived from
    [seed], [step_id] and the node id, so a step is reproducible.

    @raise Step_failure.Error on kernel failure, deadline expiry or
    unproduced fetches
    @raise Invalid_argument if a fed/executed node's input lies outside
    the executed subgraph. *)
