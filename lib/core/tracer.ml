type event = {
  name : string;
  op_type : string;
  device : string;
  lane : int;
  start : float;
  duration : float;
  step_id : int;
  bytes : int;
  shards : int;
  peak_bytes : int;
  fused : int;  (* original node count collapsed into a fused kernel; 0 otherwise *)
}

type t = { mutable evs : event list; mutex : Mutex.t }

let create () = { evs = []; mutex = Mutex.create () }

let record t ev =
  Mutex.lock t.mutex;
  t.evs <- ev :: t.evs;
  Mutex.unlock t.mutex

let events t =
  Mutex.lock t.mutex;
  let evs = List.rev t.evs in
  Mutex.unlock t.mutex;
  evs

let by_op_type t =
  let table = Hashtbl.create 32 in
  List.iter
    (fun ev ->
      let count, time =
        Option.value ~default:(0, 0.0) (Hashtbl.find_opt table ev.op_type)
      in
      Hashtbl.replace table ev.op_type (count + 1, time +. ev.duration))
    (events t);
  Hashtbl.fold (fun op (c, d) acc -> (op, c, d) :: acc) table []
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)

let total_time t =
  List.fold_left (fun acc ev -> acc +. ev.duration) 0.0 (events t)

let total_bytes t =
  List.fold_left (fun acc ev -> acc + ev.bytes) 0 (events t)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let lanes t =
  List.sort_uniq compare (List.map (fun ev -> (ev.device, ev.lane)) (events t))

(* Per-(device, lane) busy time and utilization over the step's span.
   Span = last event end - first event start across the whole trace, so
   inline runs show lane 0 near 100% and pool runs show how evenly work
   spread across worker lanes. *)
let lane_utilization t =
  match events t with
  | [] -> []
  | evs ->
      let span_start =
        List.fold_left (fun acc ev -> Float.min acc ev.start) infinity evs
      in
      let span_end =
        List.fold_left
          (fun acc ev -> Float.max acc (ev.start +. ev.duration))
          neg_infinity evs
      in
      let span = Float.max (span_end -. span_start) 1e-9 in
      let table = Hashtbl.create 8 in
      List.iter
        (fun ev ->
          let key = (ev.device, ev.lane) in
          let busy =
            Option.value ~default:0.0 (Hashtbl.find_opt table key)
          in
          Hashtbl.replace table key (busy +. ev.duration))
        evs;
      Hashtbl.fold
        (fun (device, lane) busy acc ->
          (device, lane, busy, busy /. span) :: acc)
        table []
      |> List.sort (fun (d1, l1, _, _) (d2, l2, _, _) ->
             compare (d1, l1) (d2, l2))

let to_chrome_trace t =
  let evs = events t in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  (* One track per (device, execution lane): kernels offloaded to worker
     domains get their own row under the device, so the pool scheduler's
     intra-step overlap is visible in the rendered trace. When the
     trace spans several steps — a pipelined session sharing one tracer
     across in-flight steps — each step additionally gets its own lane
     group, so inter-step overlap renders as parallel rows. *)
  let multi_step =
    match evs with
    | [] -> false
    | ev :: tl -> List.exists (fun e -> e.step_id <> ev.step_id) tl
  in
  List.iter
    (fun ev ->
      if not !first then Buffer.add_char buf ',';
      first := false;
      let tid =
        if multi_step then
          Printf.sprintf "%s/step:%d/lane:%d" (json_escape ev.device)
            ev.step_id ev.lane
        else Printf.sprintf "%s/lane:%d" (json_escape ev.device) ev.lane
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.1f,\"dur\":%.1f,\"pid\":1,\"tid\":\"%s\",\"args\":{\"step\":%d,\"lane\":%d,\"bytes\":%d,\"shards\":%d,\"peak_bytes\":%d}}"
           (json_escape ev.name) (json_escape ev.op_type)
           (ev.start *. 1e6) (ev.duration *. 1e6) tid ev.step_id ev.lane
           ev.bytes ev.shards ev.peak_bytes))
    evs;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let pp_summary fmt t =
  Format.fprintf fmt "%d kernel invocations, %.3f ms total@."
    (List.length (events t))
    (1000.0 *. total_time t);
  List.iter
    (fun (op, count, time) ->
      Format.fprintf fmt "  %-24s %6d calls %10.3f ms@." op count
        (1000.0 *. time))
    (by_op_type t);
  match lane_utilization t with
  | [] -> ()
  | lanes ->
      Format.fprintf fmt "lanes:@.";
      List.iter
        (fun (device, lane, busy, util) ->
          Format.fprintf fmt "  %s/lane:%d %10.3f ms busy %5.1f%%@." device
            lane (1000.0 *. busy) (100.0 *. util))
        lanes
