type task = {
  job : string;
  index : int;
  resources : Resource_manager.t;
  task_devices : Device.t list;
}

type t = { tasks : task list }

let create ~jobs =
  let tasks =
    List.concat_map
      (fun (job, count, dev_types) ->
        List.init count (fun index ->
            let task_devices =
              List.map
                (fun ty -> Device.make ~job ~task:index ~index:0 ty)
                dev_types
            in
            { job; index; resources = Resource_manager.create (); task_devices }))
      jobs
  in
  { tasks }

let devices t = List.concat_map (fun task -> task.task_devices) t.tasks

let task_names t =
  List.map
    (fun task -> Printf.sprintf "/job:%s/task:%d" task.job task.index)
    t.tasks

let find_task t ~job ~task =
  List.find_opt (fun tk -> tk.job = job && tk.index = task) t.tasks

let missing_task t ~job ~task =
  Step_failure.error
    (Step_failure.Missing_task
       (Printf.sprintf "no task /job:%s/task:%d in cluster (known tasks: %s)"
          job task
          (String.concat ", " (task_names t))))

let resources_of t (d : Device.t) =
  match find_task t ~job:d.Device.job ~task:d.Device.task with
  | Some tk -> tk.resources
  | None -> raise (missing_task t ~job:d.Device.job ~task:d.Device.task)

let task_resources t ~job ~task =
  match find_task t ~job ~task with
  | Some tk -> tk.resources
  | None -> raise (missing_task t ~job ~task)

let restart_task t ~job ~task =
  match find_task t ~job ~task with
  | Some tk ->
      (* A restarted task comes back empty-handed: its in-memory state
         (variables, queues) is gone and must be re-created, then
         refilled from a checkpoint (§4.3). *)
      Resource_manager.clear tk.resources
  | None -> raise (missing_task t ~job ~task)

let session ?config ?seed ?optimize ?scheduler ?max_in_flight ?barrier
    ?remote t graph =
  (* The cluster owns the device list and the per-task resource
     routing; everything else comes from the caller's config. *)
  Session.create ?config ~devices:(devices t)
    ~resource_router:(resources_of t) ?seed ?optimize ?scheduler
    ?max_in_flight ?barrier ?remote graph
