(** On-disk checkpoint format used by the [Save] and [Restore] operations
    (§4.3).

    A checkpoint is a single binary file: a magic header followed by a
    count and one record per tensor (name, dtype, shape, raw data). The
    format is deliberately simple — the paper's point is that save and
    restore are ordinary dataflow operations composed in user-level code,
    not that the file format is clever. *)

open Octf_tensor

exception Corrupt of { source : string; detail : string }
(** Malformed checkpoint: bad magic, truncation anywhere (a torn write
    of the header, a tensor record or its data), a length / rank /
    dimension / element-count field out of range, or an unknown dtype.
    [source] is the file path. Every malformed-input path raises this —
    never a bare [End_of_file] or [Invalid_argument] — so the [Restore]
    kernel surfaces a half-written checkpoint as a structured step
    failure the {!Octf_train.Supervisor} can fall back from. *)

val write : string -> (string * Tensor.t) list -> unit
(** [write path entries] atomically writes all named tensors (via a
    temp-file rename). *)

val read_all : string -> (string * Tensor.t) list
(** Every length field is validated against the bytes actually left in
    the file before allocation.
    @raise Corrupt on a malformed or truncated file. *)

val read : string -> string -> Tensor.t
(** [read path name] extracts a single named tensor.
    @raise Not_found if the name is absent. *)

val names : string -> string list
