(** Blocking tensor queues (§3.1, stateful operations).

    A queue owns an internal buffer of tensor tuples ("elements", each
    with a fixed number of components) and supports concurrent access.
    [enqueue] blocks while the queue is full and [dequeue] blocks while
    it is empty — the backpressure and synchronization primitive the
    paper builds input pipelines (§3.2) and synchronous replica
    coordination (§4.4) out of.

    Closing a queue wakes all waiters: pending and future dequeues drain
    the remaining elements and then raise {!Closed}; enqueues raise
    {!Closed} immediately. Blocking operations also accept a
    {!Cancel.t}: cancellation (deadline expiry, a failed peer partition)
    wakes the waiter, which raises {!Step_failure.Error} instead of
    staying parked — no orphaned threads after a failed step. *)

open Octf_tensor

type t

exception Closed of string
(** Raised by operations on a closed (and, for dequeue, empty) queue. *)

type kind = Fifo | Shuffle of Rng.t
(** [Shuffle] dequeues a uniformly random element — the
    RandomShuffleQueue used to decorrelate training batches. *)

val create : ?kind:kind -> name:string -> capacity:int -> num_components:int -> unit -> t

val name : t -> string

val capacity : t -> int

val num_components : t -> int

val size : t -> int

val is_closed : t -> bool

val enqueue : ?cancel:Cancel.t -> t -> Tensor.t array -> unit
(** Blocks while full. @raise Closed if the queue is closed.
    @raise Step_failure.Error if [cancel] fires while blocked.
    @raise Invalid_argument on wrong component count. *)

val dequeue : ?cancel:Cancel.t -> t -> Tensor.t array
(** Blocks while empty. @raise Closed once closed and drained.
    @raise Step_failure.Error if [cancel] fires while blocked. *)

val try_dequeue : t -> Tensor.t array option
(** Non-blocking variant; [None] when empty (but not closed). *)

val dequeue_many : ?cancel:Cancel.t -> t -> int -> Tensor.t array
(** [dequeue_many q n] takes [n] elements and stacks each component along
    a new leading batch axis, as the TF op does. Blocks until [n]
    elements are available. @raise Closed if the queue closes first;
    @raise Step_failure.Error on cancellation. Elements already taken
    when the wait is interrupted are requeued at the front, so a failed
    step loses no data. *)

val close : t -> unit
