exception Injected of string

type spec =
  | Kill_task of { job : string; task : int; step : int }
  | Fail_kernel of { pattern : string; step : int }
  | Flaky_kernel of { pattern : string; prob : float }
  | Drop_send of { pattern : string; step : int }
  | Delay_send of { pattern : string; step : int; ms : float }
  | Slow_kernel of { pattern : string; step : int; ms : float }
      (* every matching kernel invocation at/after [step] sleeps [ms]
         before running — a persistent straggler (slow reader, slow
         disk), not a one-shot fault like [Delay_send] *)
  | Drop_conn of { peer : string; step : int }
      (* sever the TCP connection to the matching peer the next time a
         frame is sent to it at/after [step] (one-shot) *)
  | Delay_frame of { pattern : string; step : int; ms : float }
      (* hold the first matching outbound frame for [ms] before writing
         it (one-shot) *)
  | Corrupt_frame of { pattern : string; step : int }
      (* flip a payload bit in the first matching outbound frame after
         its checksum is computed, so the receiver sees a
         Checksum_mismatch (one-shot) *)

type send_action = [ `Deliver | `Drop | `Delay of float ]

type net_action = [ `Send | `Drop_conn | `Delay of float | `Corrupt ]

(* One process-wide injector: kernels reach it through a global rather
   than plumbing a handle through every context. [enabled] is a cheap
   unsynchronized fast-path gate; all real state is mutex-protected. *)
type state = {
  mutable specs : (spec * bool ref) list;  (* bool = consumed (one-shot) *)
  mutable seed : int;
  killed : (string * int, unit) Hashtbl.t;
  mutable injected : int;
  mutex : Mutex.t;
}

let state =
  {
    specs = [];
    seed = 0;
    killed = Hashtbl.create 4;
    injected = 0;
    mutex = Mutex.create ();
  }

let enabled = ref false

let with_lock f =
  Mutex.lock state.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock state.mutex) f

let spec_to_string = function
  | Kill_task { job; task; step } ->
      Printf.sprintf "kill:%s/%d@%d" job task step
  | Fail_kernel { pattern; step } -> Printf.sprintf "kernel:%s@%d" pattern step
  | Flaky_kernel { pattern; prob } ->
      Printf.sprintf "flaky:%s:%g" pattern prob
  | Drop_send { pattern; step } -> Printf.sprintf "drop:%s@%d" pattern step
  | Delay_send { pattern; step; ms } ->
      Printf.sprintf "delay:%s@%d:%g" pattern step ms
  | Slow_kernel { pattern; step; ms } ->
      Printf.sprintf "slow:%s@%d:%g" pattern step ms
  | Drop_conn { peer; step } -> Printf.sprintf "dropconn:%s@%d" peer step
  | Delay_frame { pattern; step; ms } ->
      Printf.sprintf "framedelay:%s@%d:%g" pattern step ms
  | Corrupt_frame { pattern; step } ->
      Printf.sprintf "corrupt:%s@%d" pattern step

let parse_spec s =
  let fail () =
    Error
      (Printf.sprintf
         "bad fault spec %S (expected kill:<job>/<task>@<step> | \
          kernel:<pattern>@<step> | flaky:<pattern>:<prob> | \
          drop:<pattern>@<step> | delay:<pattern>@<step>:<ms> | \
          slow:<pattern>@<step>:<ms> | dropconn:<peer>@<step> | \
          framedelay:<pattern>@<step>:<ms> | corrupt:<pattern>@<step>)"
         s)
  in
  let split_at_step body =
    match String.rindex_opt body '@' with
    | None -> None
    | Some i -> (
        let pat = String.sub body 0 i in
        let rest = String.sub body (i + 1) (String.length body - i - 1) in
        match int_of_string_opt rest with
        | Some step when pat <> "" -> Some (pat, step)
        | _ -> None)
  in
  match String.index_opt s ':' with
  | None -> fail ()
  | Some i -> (
      let kind = String.sub s 0 i in
      let body = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "kill" -> (
          match split_at_step body with
          | Some (jt, step) -> (
              match String.split_on_char '/' jt with
              | [ job; task ] -> (
                  match int_of_string_opt task with
                  | Some task when job <> "" ->
                      Ok (Kill_task { job; task; step })
                  | _ -> fail ())
              | _ -> fail ())
          | None -> fail ())
      | "kernel" -> (
          match split_at_step body with
          | Some (pattern, step) -> Ok (Fail_kernel { pattern; step })
          | None -> fail ())
      | "flaky" -> (
          match String.rindex_opt body ':' with
          | None -> fail ()
          | Some j -> (
              let pattern = String.sub body 0 j in
              let p = String.sub body (j + 1) (String.length body - j - 1) in
              match float_of_string_opt p with
              | Some prob when pattern <> "" && prob >= 0.0 && prob <= 1.0 ->
                  Ok (Flaky_kernel { pattern; prob })
              | _ -> fail ()))
      | "drop" -> (
          match split_at_step body with
          | Some (pattern, step) -> Ok (Drop_send { pattern; step })
          | None -> fail ())
      | "dropconn" -> (
          match split_at_step body with
          | Some (peer, step) -> Ok (Drop_conn { peer; step })
          | None -> fail ())
      | "corrupt" -> (
          match split_at_step body with
          | Some (pattern, step) -> Ok (Corrupt_frame { pattern; step })
          | None -> fail ())
      | "delay" | "slow" | "framedelay" -> (
          match String.rindex_opt body ':' with
          | None -> fail ()
          | Some j -> (
              let head = String.sub body 0 j in
              let ms = String.sub body (j + 1) (String.length body - j - 1) in
              match (split_at_step head, float_of_string_opt ms) with
              | Some (pattern, step), Some ms when ms >= 0.0 ->
                  if kind = "delay" then Ok (Delay_send { pattern; step; ms })
                  else if kind = "framedelay" then
                    Ok (Delay_frame { pattern; step; ms })
                  else Ok (Slow_kernel { pattern; step; ms })
              | _ -> fail ()))
      | _ -> fail ())

let parse s =
  let parts =
    List.filter (fun p -> p <> "") (String.split_on_char ',' (String.trim s))
  in
  if parts = [] then Error "empty fault spec"
  else
    List.fold_left
      (fun acc part ->
        match (acc, parse_spec (String.trim part)) with
        | Error _, _ -> acc
        | Ok specs, Ok spec -> Ok (specs @ [ spec ])
        | Ok _, Error e -> Error e)
      (Ok []) parts

let refresh_enabled_locked () =
  enabled := state.specs <> [] || Hashtbl.length state.killed > 0

let install ?(seed = 0) specs =
  with_lock (fun () ->
      state.specs <- List.map (fun s -> (s, ref false)) specs;
      state.seed <- seed;
      Hashtbl.reset state.killed;
      state.injected <- 0;
      refresh_enabled_locked ())

let install_from_env () =
  match Sys.getenv_opt "OCTF_FAULT" with
  | None -> ()
  | Some s -> (
      let seed =
        Option.bind (Sys.getenv_opt "OCTF_FAULT_SEED") int_of_string_opt
      in
      match parse s with
      | Ok specs -> install ?seed specs
      | Error msg -> Printf.eprintf "octf: OCTF_FAULT: %s; ignored\n%!" msg)

let reset () =
  with_lock (fun () ->
      state.specs <- [];
      Hashtbl.reset state.killed;
      state.injected <- 0;
      refresh_enabled_locked ())

let active () = !enabled

let injections () = with_lock (fun () -> state.injected)

let kill_task ~job ~task =
  with_lock (fun () ->
      Hashtbl.replace state.killed (job, task) ();
      refresh_enabled_locked ())

let revive_task ~job ~task =
  with_lock (fun () ->
      Hashtbl.remove state.killed (job, task);
      refresh_enabled_locked ())

let task_alive ~job ~task =
  with_lock (fun () -> not (Hashtbl.mem state.killed (job, task)))

let killed_tasks () =
  with_lock (fun () ->
      Hashtbl.fold (fun k () acc -> k :: acc) state.killed [])

let contains ~pattern s =
  let pl = String.length pattern and sl = String.length s in
  pl = 0
  ||
  let rec at i =
    i + pl <= sl && (String.sub s i pl = pattern || at (i + 1))
  in
  at 0

let matches_node pattern (n : Node.t) =
  contains ~pattern n.Node.name || contains ~pattern n.Node.op_type

(* Deterministic per-(seed, step, node) coin for flaky kernels: a
   splitmix64-style finalizer, so the same seed reproduces the same
   failure pattern run after run. *)
let flaky_coin ~seed ~step_id ~node_id =
  let z =
    Int64.add
      (Int64.mul (Int64.of_int (seed + 1)) 0x9E3779B97F4A7C15L)
      (Int64.add
         (Int64.mul (Int64.of_int step_id) 0xBF58476D1CE4E5B9L)
         (Int64.mul (Int64.of_int (node_id + 1)) 0x94D049BB133111EBL))
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 30) in
  let z = Int64.mul z 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) in
  let z = Int64.mul z 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0

let m_injected kind =
  Metrics.Counter.v ~help:"Faults injected, by kind"
    ~labels:[ ("kind", kind) ]
    "octf_faults_injected_total"

let inject ~kind msg =
  with_lock (fun () -> state.injected <- state.injected + 1);
  Metrics.Counter.incr (m_injected kind);
  raise (Injected msg)

let kernel_hook (n : Node.t) ~step_id =
  if !enabled then begin
    (* Arm step-triggered task kills first, so the device check below
       sees them. *)
    let newly_killed =
      with_lock (fun () ->
          List.filter_map
            (fun (spec, consumed) ->
              match spec with
              | Kill_task { job; task; step }
                when step_id >= step && not !consumed ->
                  consumed := true;
                  Hashtbl.replace state.killed (job, task) ();
                  Some (job, task)
              | _ -> None)
            state.specs)
    in
    ignore newly_killed;
    (match n.Node.assigned_device with
    | Some d ->
        if not (task_alive ~job:d.Device.job ~task:d.Device.task) then
          inject ~kind:"kill"
            (Printf.sprintf "/job:%s/task:%d is down" d.Device.job
               d.Device.task)
    | None -> ());
    (* Persistent stragglers: every matching kernel at/after the step
       sleeps before running. Summed when several specs match; the sleep
       happens outside the injector lock. *)
    let slow =
      with_lock (fun () ->
          List.fold_left
            (fun acc (spec, _) ->
              match spec with
              | Slow_kernel { pattern; step; ms }
                when step_id >= step && matches_node pattern n ->
                  acc +. ms
              | _ -> acc)
            0.0 state.specs)
    in
    if slow > 0.0 then begin
      Metrics.Counter.incr (m_injected "slow");
      with_lock (fun () -> state.injected <- state.injected + 1);
      Thread.delay (slow /. 1000.0)
    end;
    let fire =
      with_lock (fun () ->
          List.find_map
            (fun (spec, consumed) ->
              match spec with
              | Fail_kernel { pattern; step }
                when step_id >= step && (not !consumed)
                     && matches_node pattern n ->
                  consumed := true;
                  Some
                    ( "kernel",
                      Printf.sprintf "kernel fault %s on %s (step %d)"
                        pattern n.Node.name step_id )
              | Flaky_kernel { pattern; prob }
                when matches_node pattern n
                     && flaky_coin ~seed:state.seed ~step_id
                          ~node_id:n.Node.id
                        < prob ->
                  Some
                    ( "flaky",
                      Printf.sprintf "flaky kernel %s on %s (step %d)"
                        pattern n.Node.name step_id )
              | _ -> None)
            state.specs)
    in
    match fire with
    | Some (kind, msg) -> inject ~kind msg
    | None -> ()
  end

let send_hook ~key ~step_id : send_action =
  if not !enabled then `Deliver
  else
    let action =
      with_lock (fun () ->
          List.find_map
            (fun (spec, consumed) ->
              match spec with
              | Drop_send { pattern; step }
                when step_id >= step && (not !consumed)
                     && contains ~pattern key ->
                  consumed := true;
                  state.injected <- state.injected + 1;
                  Some `Drop
              | Delay_send { pattern; step; ms }
                when step_id >= step && (not !consumed)
                     && contains ~pattern key ->
                  consumed := true;
                  state.injected <- state.injected + 1;
                  Some (`Delay (ms /. 1000.0))
              | _ -> None)
            state.specs)
    in
    (match action with
    | Some `Drop -> Metrics.Counter.incr (m_injected "drop")
    | Some (`Delay _) -> Metrics.Counter.incr (m_injected "delay")
    | None -> ());
    (Option.value ~default:`Deliver action :> send_action)

(* Socket-level faults, consulted by the transport just before a frame
   is written. [peer] is "job/task" of the destination; [kind] is the
   frame-type name ("tensor", "run_step", ...); [key] is the payload's
   identifying string (the rendezvous key for tensor frames, else the
   kind); [step_id] is the frame's stream id. Drop_conn matches [peer],
   Delay_frame / Corrupt_frame match [key] or [kind]. *)
let net_hook ~peer ~kind ~key ~step_id : net_action =
  if not !enabled then `Send
  else
    let action =
      with_lock (fun () ->
          List.find_map
            (fun (spec, consumed) ->
              match spec with
              | Drop_conn { peer = pat; step }
                when step_id >= step && (not !consumed)
                     && contains ~pattern:pat peer ->
                  consumed := true;
                  state.injected <- state.injected + 1;
                  Some `Drop_conn
              | Delay_frame { pattern; step; ms }
                when step_id >= step && (not !consumed)
                     && (contains ~pattern key || contains ~pattern kind) ->
                  consumed := true;
                  state.injected <- state.injected + 1;
                  Some (`Delay (ms /. 1000.0))
              | Corrupt_frame { pattern; step }
                when step_id >= step && (not !consumed)
                     && (contains ~pattern key || contains ~pattern kind) ->
                  consumed := true;
                  state.injected <- state.injected + 1;
                  Some `Corrupt
              | _ -> None)
            state.specs)
    in
    (match action with
    | Some `Drop_conn -> Metrics.Counter.incr (m_injected "dropconn")
    | Some (`Delay _) -> Metrics.Counter.incr (m_injected "framedelay")
    | Some `Corrupt -> Metrics.Counter.incr (m_injected "corrupt")
    | None -> ());
    (Option.value ~default:`Send action :> net_action)
