type node_stats = {
  node : string;
  op_type : string;
  device : string;
  lane : int;
  start : float;
  duration : float;
  output_bytes : int;
  shards : int;
  peak_bytes : int;  (* live planner-tracked bytes when the node finished *)
  fused : int;
      (* original operation count a FusedElementwise kernel replaced;
         0 for ordinary nodes *)
}

type t = { step_id : int; nodes : node_stats list }

let of_tracer ~step_id tracer =
  let nodes =
    List.filter_map
      (fun (ev : Tracer.event) ->
        if ev.step_id <> step_id then None
        else
          Some
            {
              node = ev.name;
              op_type = ev.op_type;
              device = ev.device;
              lane = ev.lane;
              start = ev.start;
              duration = ev.duration;
              output_bytes = ev.bytes;
              shards = ev.shards;
              peak_bytes = ev.peak_bytes;
              fused = ev.fused;
            })
      (Tracer.events tracer)
  in
  { step_id; nodes }

let total_time t =
  List.fold_left (fun acc n -> acc +. n.duration) 0.0 t.nodes

let total_bytes t =
  List.fold_left (fun acc n -> acc + n.output_bytes) 0 t.nodes

(* Per-fusion-group reporting: every FusedElementwise kernel in the
   step with the number of original nodes it replaced and its runtime. *)
let fusion_groups t =
  List.filter_map
    (fun n -> if n.fused > 0 then Some (n.node, n.fused, n.duration) else None)
    t.nodes

let by_op_type t =
  let table = Hashtbl.create 32 in
  List.iter
    (fun n ->
      let count, time =
        Option.value ~default:(0, 0.0) (Hashtbl.find_opt table n.op_type)
      in
      Hashtbl.replace table n.op_type (count + 1, time +. n.duration))
    t.nodes;
  Hashtbl.fold (fun op (c, d) acc -> (op, c, d) :: acc) table []
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)

let pp_summary fmt t =
  Format.fprintf fmt "step %d: %d nodes, %.3f ms kernel time, %d bytes@."
    t.step_id (List.length t.nodes)
    (1000.0 *. total_time t)
    (total_bytes t);
  List.iter
    (fun (op, count, time) ->
      Format.fprintf fmt "  %-24s %6d calls %10.3f ms@." op count
        (1000.0 *. time))
    (by_op_type t)
