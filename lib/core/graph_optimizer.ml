open Octf_tensor

let impure_ops =
  [
    "Placeholder"; "Send"; "Recv"; "Switch"; "Merge"; "Enter"; "Exit";
    "NextIteration"; "LoopCond"; "NoOp";
  ]

let is_pure (n : Node.t) =
  (not (Node.is_stateful n)) && not (List.mem n.Node.op_type impure_ops)

(* Rewire every consumer of [old_id]'s outputs to the same-index output of
   [new_id], and every control edge to [new_id]. *)
let redirect graph ~old_id ~new_id =
  Graph.iter graph (fun n ->
      Array.iteri
        (fun slot (e : Node.endpoint) ->
          if e.node_id = old_id then
            Graph.set_input graph ~node_id:n.Node.id ~slot
              (Node.endpoint new_id e.index))
        n.Node.inputs);
  (* Control edges: rebuild via set_input is data-only; rewrite the node
     record directly. *)
  Graph.iter graph (fun n ->
      if List.mem old_id n.Node.control_inputs then begin
        let fresh =
          List.sort_uniq compare
            (List.map
               (fun c -> if c = old_id then new_id else c)
               n.Node.control_inputs)
        in
        (* Re-adding is not possible; mutate through a replacement record
           using set_input's mechanism is data-only, so we reach into the
           graph via a dedicated helper below. *)
        Graph.replace_control_inputs graph ~node_id:n.Node.id fresh
      end)

let constant_fold graph ~nodes ~fed =
  (* Folding executes kernels; without this, Kernel.lookup returns None
     for everything when the optimizer runs before the first executor
     compile of the process and folding silently does nothing. *)
  Builtin_kernels.ensure ();
  let folded = ref 0 in
  let order = Graph.topological_order graph in
  let in_set = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace in_set id ()) nodes;
  List.iter
    (fun (n : Node.t) ->
      if
        Hashtbl.mem in_set n.Node.id
        && (not (Hashtbl.mem fed n.Node.id))
        && is_pure n
        && n.Node.op_type <> "Const"
        && Node.num_outputs n = 1
        && n.Node.control_inputs = []
        && Array.length n.Node.inputs > 0
        && Array.for_all
             (fun (e : Node.endpoint) ->
               (* Re-read through the graph: earlier folds replace
                  producers with Consts. *)
               (Graph.get graph e.node_id).Node.op_type = "Const")
             n.Node.inputs
      then begin
        match Kernel.lookup ~op_type:n.Node.op_type ~device:Device.CPU with
        | None -> ()
        | Some kernel -> (
            let inputs =
              Array.map
                (fun (e : Node.endpoint) ->
                  Value.Tensor
                    (Node.attr_tensor (Graph.get graph e.node_id) "value"))
                n.Node.inputs
            in
            let ctx =
              {
                Kernel.node = n;
                inputs;
                resources = Resource_manager.create ();
                rendezvous = None;
                rng = Rng.create 0;
                step_id = 0;
                cancel = None;
                grants = [];
                var_snapshot = None;
              }
            in
            match kernel ctx with
            | [| Value.Tensor result |] ->
                let const =
                  Graph.add_node graph
                    ~name:(n.Node.name ^ "/folded")
                    ~attrs:[ ("value", Attr.Tensor result) ]
                    ~device:n.Node.device_spec ~op_type:"Const" ()
                in
                redirect graph ~old_id:n.Node.id ~new_id:const.Node.id;
                incr folded
            | _ | (exception _) -> ())
      end)
    order;
  !folded

(* Structural key for CSE. Tensor attributes hash their full contents. *)
let cse_key (n : Node.t) =
  let attr_part =
    String.concat ";"
      (List.map
         (fun (k, a) ->
           match a with
           | Attr.Tensor t ->
               Printf.sprintf "%s=#%d" k (Hashtbl.hash (Tensor.to_string t))
           | a -> k ^ "=" ^ Attr.to_string a)
         n.Node.attrs)
  in
  Printf.sprintf "%s|%s|%s|%s|%s" n.Node.op_type attr_part
    (String.concat ","
       (Array.to_list
          (Array.map
             (fun (e : Node.endpoint) ->
               Printf.sprintf "%d:%d" e.node_id e.index)
             n.Node.inputs)))
    (String.concat "," (List.map string_of_int n.Node.control_inputs))
    (Device.spec_to_string n.Node.device_spec)

let structurally_equal (a : Node.t) (b : Node.t) =
  a.Node.op_type = b.Node.op_type
  && a.Node.inputs = b.Node.inputs
  && a.Node.control_inputs = b.Node.control_inputs
  && a.Node.attrs = b.Node.attrs
  && a.Node.device_spec = b.Node.device_spec

let cse graph ~nodes ~fed =
  let merged = ref 0 in
  let canonical : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let order = Graph.topological_order graph in
  let in_set = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace in_set id ()) nodes;
  List.iter
    (fun (n : Node.t) ->
      if Hashtbl.mem in_set n.Node.id && (not (Hashtbl.mem fed n.Node.id))
         && is_pure n
      then begin
        (* Re-read the node: earlier merges may have rewired its inputs. *)
        let n = Graph.get graph n.Node.id in
        let key = cse_key n in
        match Hashtbl.find_opt canonical key with
        | None -> Hashtbl.replace canonical key n.Node.id
        | Some canon_id ->
            if
              canon_id <> n.Node.id
              && structurally_equal n (Graph.get graph canon_id)
            then begin
              redirect graph ~old_id:n.Node.id ~new_id:canon_id;
              incr merged
            end
      end)
    order;
  !merged

(* Fold trained variables into constants. Every [Read] in the step whose
   producing [Variable]'s name the lookup resolves is redirected to a
   [Const] holding the tensor; one Const is shared by all Reads of the
   same variable. The Variables themselves become dead and fall to the
   next prune. *)
let freeze graph ~nodes ~fed ~lookup =
  let frozen = ref 0 in
  let in_set = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace in_set id ()) nodes;
  let const_of : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun id ->
      let n = Graph.get graph id in
      if
        n.Node.op_type = "Read"
        && (not (Hashtbl.mem fed id))
        && Array.length n.Node.inputs > 0
      then
        let producer = Graph.get graph n.Node.inputs.(0).Node.node_id in
        if producer.Node.op_type = "Variable" then
          let var_name = producer.Node.name in
          let const_id =
            match Hashtbl.find_opt const_of var_name with
            | Some cid -> Some cid
            | None -> (
                match lookup var_name with
                | None -> None
                | Some tensor ->
                    let const =
                      Graph.add_node graph
                        ~name:(var_name ^ "/frozen")
                        ~attrs:[ ("value", Attr.Tensor tensor) ]
                        ~device:n.Node.device_spec ~op_type:"Const" ()
                    in
                    Hashtbl.replace const_of var_name const.Node.id;
                    Some const.Node.id)
          in
          match const_id with
          | None -> ()
          | Some new_id ->
              redirect graph ~old_id:id ~new_id;
              incr frozen)
    nodes;
  !frozen

type pass =
  | Prune
  | Constant_fold
  | Cse
  | Freeze of (string -> Tensor.t option)

(* The mid-pipeline Prune refreshes the node set so Consts minted by
   folding are visible to CSE (rewriting passes only see the current
   set; new nodes enter it at the next prune). *)
let default_pipeline = [ Constant_fold; Prune; Cse; Prune ]

let pass_name = function
  | Prune -> "prune"
  | Constant_fold -> "constant_fold"
  | Cse -> "cse"
  | Freeze _ -> "freeze"

let run graph ~passes ~feeds ~fetches ~targets =
  let fed = Hashtbl.create 8 in
  List.iter (fun (e : Node.endpoint) -> Hashtbl.replace fed e.node_id ()) feeds;
  let prune () = Pruner.prune graph ~feeds ~fetches ~targets in
  (* The step definition itself is the initial node set. *)
  let nodes = ref (prune ()) in
  List.iter
    (fun pass ->
      match pass with
      | Prune -> nodes := prune ()
      | Constant_fold -> ignore (constant_fold graph ~nodes:!nodes ~fed)
      | Cse -> ignore (cse graph ~nodes:!nodes ~fed)
      | Freeze lookup -> ignore (freeze graph ~nodes:!nodes ~fed ~lookup))
    passes;
  !nodes

let optimize graph ~nodes ~feeds =
  let fed = Hashtbl.create 8 in
  List.iter (fun (e : Node.endpoint) -> Hashtbl.replace fed e.node_id ()) feeds;
  let _ = constant_fold graph ~nodes ~fed in
  let _ = cse graph ~nodes ~fed in
  ()
