open Octf_tensor

let impure_ops =
  [
    "Placeholder"; "Send"; "Recv"; "Switch"; "Merge"; "Enter"; "Exit";
    "NextIteration"; "LoopCond"; "NoOp";
  ]

let is_pure (n : Node.t) =
  (not (Node.is_stateful n)) && not (List.mem n.Node.op_type impure_ops)

(* Rewire every consumer of [old_id]'s outputs to the same-index output of
   [new_id], and every control edge to [new_id]. *)
let redirect graph ~old_id ~new_id =
  Graph.iter graph (fun n ->
      Array.iteri
        (fun slot (e : Node.endpoint) ->
          if e.node_id = old_id then
            Graph.set_input graph ~node_id:n.Node.id ~slot
              (Node.endpoint new_id e.index))
        n.Node.inputs);
  (* Control edges: rebuild via set_input is data-only; rewrite the node
     record directly. *)
  Graph.iter graph (fun n ->
      if List.mem old_id n.Node.control_inputs then begin
        let fresh =
          List.sort_uniq compare
            (List.map
               (fun c -> if c = old_id then new_id else c)
               n.Node.control_inputs)
        in
        (* Re-adding is not possible; mutate through a replacement record
           using set_input's mechanism is data-only, so we reach into the
           graph via a dedicated helper below. *)
        Graph.replace_control_inputs graph ~node_id:n.Node.id fresh
      end)

(* Multi-output variant of [redirect] for constant folding: consumer
   endpoint (old_id, k) moves to output 0 of the k-th replacement node.
   Control edges (which carry no slot) all move to the first one. *)
let redirect_outputs graph ~old_id ~new_ids =
  Graph.iter graph (fun n ->
      Array.iteri
        (fun slot (e : Node.endpoint) ->
          if e.node_id = old_id then
            Graph.set_input graph ~node_id:n.Node.id ~slot
              (Node.endpoint new_ids.(e.index) 0))
        n.Node.inputs);
  Graph.iter graph (fun n ->
      if List.mem old_id n.Node.control_inputs then
        Graph.replace_control_inputs graph ~node_id:n.Node.id
          (List.sort_uniq compare
             (List.map
                (fun c -> if c = old_id then new_ids.(0) else c)
                n.Node.control_inputs)))

let constant_fold graph ~nodes ~fed =
  (* Folding executes kernels; without this, Kernel.lookup returns None
     for everything when the optimizer runs before the first executor
     compile of the process and folding silently does nothing. *)
  Builtin_kernels.ensure ();
  let folded = ref 0 in
  let order = Graph.topological_order graph in
  let in_set = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace in_set id ()) nodes;
  List.iter
    (fun (n : Node.t) ->
      (* Re-read the node: earlier folds rewired consumer endpoints to
         the minted Consts, and the topological snapshot predates that —
         without the re-read a fold never cascades downstream within
         one sweep. *)
      let n = Graph.get graph n.Node.id in
      if
        Hashtbl.mem in_set n.Node.id
        && (not (Hashtbl.mem fed n.Node.id))
        && is_pure n
        && n.Node.op_type <> "Const"
        && Node.num_outputs n >= 1
        && n.Node.control_inputs = []
        && Array.length n.Node.inputs > 0
        && Array.for_all
             (fun (e : Node.endpoint) ->
               (Graph.get graph e.node_id).Node.op_type = "Const")
             n.Node.inputs
      then begin
        match Kernel.lookup ~op_type:n.Node.op_type ~device:Device.CPU with
        | None -> ()
        | Some kernel -> (
            let inputs =
              Array.map
                (fun (e : Node.endpoint) ->
                  Value.Tensor
                    (Node.attr_tensor (Graph.get graph e.node_id) "value"))
                n.Node.inputs
            in
            let ctx =
              {
                Kernel.node = n;
                inputs;
                resources = Resource_manager.create ();
                rendezvous = None;
                rng = Rng.create 0;
                step_id = 0;
                cancel = None;
                grants = [];
                var_snapshot = None;
              }
            in
            (* Multi-output pure ops (Split, Unpack, ...) fold too: one
               Const is minted per output slot so downstream consumers
               of any slot keep folding. *)
            match kernel ctx with
            | outputs
              when Array.length outputs >= 1
                   && Array.for_all
                        (function Value.Tensor _ -> true | _ -> false)
                        outputs ->
                let new_ids =
                  Array.mapi
                    (fun k v ->
                      let result =
                        match v with Value.Tensor t -> t | _ -> assert false
                      in
                      let name =
                        if Array.length outputs = 1 then
                          n.Node.name ^ "/folded"
                        else Printf.sprintf "%s/folded:%d" n.Node.name k
                      in
                      let const =
                        Graph.add_node graph ~name
                          ~attrs:[ ("value", Attr.Tensor result) ]
                          ~device:n.Node.device_spec ~op_type:"Const" ()
                      in
                      const.Node.id)
                    outputs
                in
                redirect_outputs graph ~old_id:n.Node.id ~new_ids;
                incr folded
            | _ | (exception _) -> ())
      end)
    order;
  !folded

(* Structural key for CSE. Tensor attributes hash their full contents. *)
let cse_key (n : Node.t) =
  let attr_part =
    String.concat ";"
      (List.map
         (fun (k, a) ->
           match a with
           | Attr.Tensor t ->
               Printf.sprintf "%s=#%d" k (Hashtbl.hash (Tensor.to_string t))
           | a -> k ^ "=" ^ Attr.to_string a)
         n.Node.attrs)
  in
  Printf.sprintf "%s|%s|%s|%s|%s" n.Node.op_type attr_part
    (String.concat ","
       (Array.to_list
          (Array.map
             (fun (e : Node.endpoint) ->
               Printf.sprintf "%d:%d" e.node_id e.index)
             n.Node.inputs)))
    (* Control dependencies are a set: [redirect] rebuilds them through
       [List.sort_uniq], so the key must not distinguish [a;b] from
       [b;a] or structurally identical nodes never merge. *)
    (String.concat ","
       (List.map string_of_int (List.sort_uniq compare n.Node.control_inputs)))
    (Device.spec_to_string n.Node.device_spec)

let structurally_equal (a : Node.t) (b : Node.t) =
  a.Node.op_type = b.Node.op_type
  && a.Node.inputs = b.Node.inputs
  && List.sort_uniq compare a.Node.control_inputs
     = List.sort_uniq compare b.Node.control_inputs
  && a.Node.attrs = b.Node.attrs
  && a.Node.device_spec = b.Node.device_spec

let cse graph ~nodes ~fed =
  let merged = ref 0 in
  let canonical : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let order = Graph.topological_order graph in
  let in_set = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace in_set id ()) nodes;
  List.iter
    (fun (n : Node.t) ->
      if Hashtbl.mem in_set n.Node.id && (not (Hashtbl.mem fed n.Node.id))
         && is_pure n
      then begin
        (* Re-read the node: earlier merges may have rewired its inputs. *)
        let n = Graph.get graph n.Node.id in
        let key = cse_key n in
        match Hashtbl.find_opt canonical key with
        | None -> Hashtbl.replace canonical key n.Node.id
        | Some canon_id ->
            if
              canon_id <> n.Node.id
              && structurally_equal n (Graph.get graph canon_id)
            then begin
              redirect graph ~old_id:n.Node.id ~new_id:canon_id;
              incr merged
            end
      end)
    order;
  !merged

(* Fold trained variables into constants. Every [Read] in the step whose
   producing [Variable]'s name the lookup resolves is redirected to a
   [Const] holding the tensor; one Const is shared by all Reads of the
   same variable. The Variables themselves become dead and fall to the
   next prune. *)
let freeze graph ~nodes ~fed ~lookup =
  let frozen = ref 0 in
  let in_set = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace in_set id ()) nodes;
  let const_of : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun id ->
      let n = Graph.get graph id in
      if
        n.Node.op_type = "Read"
        && (not (Hashtbl.mem fed id))
        && Array.length n.Node.inputs > 0
      then
        let producer = Graph.get graph n.Node.inputs.(0).Node.node_id in
        if producer.Node.op_type = "Variable" then
          let var_name = producer.Node.name in
          let const_id =
            match Hashtbl.find_opt const_of var_name with
            | Some cid -> Some cid
            | None -> (
                match lookup var_name with
                | None -> None
                | Some tensor ->
                    let const =
                      Graph.add_node graph
                        ~name:(var_name ^ "/frozen")
                        ~attrs:[ ("value", Attr.Tensor tensor) ]
                        ~device:n.Node.device_spec ~op_type:"Const" ()
                    in
                    Hashtbl.replace const_of var_name const.Node.id;
                    Some const.Node.id)
          in
          match const_id with
          | None -> ()
          | Some new_id ->
              redirect graph ~old_id:id ~new_id;
              incr frozen)
    nodes;
  !frozen

(* ---------------------------- fusion ------------------------------ *)

(* Collapse maximal chains/trees of pure elementwise operations into
   single [FusedElementwise] nodes (§3.3; the 2015 white paper lists
   "fusing elementwise kernels" among the master's graph
   optimizations). The fused node's "expr" attribute carries the
   operation tree in postfix ({!Fused_eval.to_postfix}); its data
   inputs are the group's external producers in expression order.

   Legality: a node joins a group only when it is pure, elementwise
   (single-output, {!Fused_eval} knows its scalar function), unfed,
   unpinned (not fetched or targeted — a pinned endpoint must still
   materialize), free of control edges in either direction (a control
   dependency needs a real node to anchor it), on the root's device
   spec, and — for interior nodes — consumed exactly once, by the
   group. Multi-consumer producers stay unfused (they may root their
   own group) rather than being recomputed per consumer. AddN joins as
   the left fold of binary Adds its kernel computes. Row-wise ops
   (Softmax, cross-entropy) never join: they reduce within rows, so
   they are not per-element functions of their inputs. *)

let max_fused_nodes = 64

let m_fusion_groups =
  Metrics.Counter.v ~help:"Elementwise fusion groups formed by the Fuse pass"
    "octf_fusion_groups_total"

let m_fusion_nodes =
  Metrics.Counter.v
    ~help:"Original operation nodes collapsed into FusedElementwise kernels"
    "octf_fusion_nodes_total"

let fusable_op (n : Node.t) =
  (Fused_eval.is_unary n.Node.op_type && Array.length n.Node.inputs = 1)
  || (Fused_eval.is_binary n.Node.op_type && Array.length n.Node.inputs = 2)
  || (n.Node.op_type = "AddN" && Array.length n.Node.inputs >= 2)

let fuse graph ~nodes ~fed ~pinned =
  let in_set = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace in_set id ()) nodes;
  (* Data-consumer edge counts and control dependents over the step's
     node set (dead duplicates outside the set must not block fusion). *)
  let data_consumers = Hashtbl.create 64 in
  let control_dep = Hashtbl.create 16 in
  List.iter
    (fun id ->
      let n = Graph.get graph id in
      Array.iter
        (fun (e : Node.endpoint) ->
          Hashtbl.replace data_consumers e.node_id
            (1
            + Option.value ~default:0
                (Hashtbl.find_opt data_consumers e.node_id)))
        n.Node.inputs;
      List.iter
        (fun c -> Hashtbl.replace control_dep c ())
        n.Node.control_inputs)
    nodes;
  let grouped = Hashtbl.create 64 in
  let eligible (n : Node.t) =
    Hashtbl.mem in_set n.Node.id
    && (not (Hashtbl.mem fed n.Node.id))
    && (not (Hashtbl.mem pinned n.Node.id))
    && (not (Hashtbl.mem grouped n.Node.id))
    && is_pure n && fusable_op n
    && n.Node.control_inputs = []
  in
  let groups = ref 0 in
  (* Reverse topological order: each chain is rooted at its topmost
     consumer and grows down through producers, so one sweep forms
     maximal groups. *)
  let order = List.rev (Graph.topological_order graph) in
  List.iter
    (fun (r : Node.t) ->
      let r = Graph.get graph r.Node.id in
      if eligible r then begin
        let members = ref [ r.Node.id ] in
        let size = ref 1 in
        let ext_inputs = ref [] in
        let input_idx (e : Node.endpoint) =
          let rec find k = function
            | [] ->
                ext_inputs := !ext_inputs @ [ e ];
                k
            | x :: tl -> if x = e then k else find (k + 1) tl
          in
          find 0 !ext_inputs
        in
        let rec build (e : Node.endpoint) =
          let p = Graph.get graph e.node_id in
          if
            e.Node.index = 0 && eligible p
            && p.Node.device_spec = r.Node.device_spec
            && (not (Hashtbl.mem control_dep p.Node.id))
            && Option.value ~default:0
                 (Hashtbl.find_opt data_consumers p.Node.id)
               = 1
            && !size < max_fused_nodes
          then begin
            members := p.Node.id :: !members;
            incr size;
            node_expr p
          end
          else Fused_eval.Input (input_idx e)
        and node_expr (p : Node.t) =
          if p.Node.op_type = "AddN" then begin
            (* The AddN kernel left-folds binary adds; expressed the
               same way the fused result is bit-identical. *)
            let acc = ref (build p.Node.inputs.(0)) in
            for k = 1 to Array.length p.Node.inputs - 1 do
              acc := Fused_eval.Binary ("Add", !acc, build p.Node.inputs.(k))
            done;
            !acc
          end
          else if Array.length p.Node.inputs = 1 then
            Fused_eval.Unary (p.Node.op_type, build p.Node.inputs.(0))
          else
            let a = build p.Node.inputs.(0) in
            let b = build p.Node.inputs.(1) in
            Fused_eval.Binary (p.Node.op_type, a, b)
        in
        let expr = node_expr r in
        if !size >= 2 then begin
          let fused =
            Graph.add_node graph
              ~name:(r.Node.name ^ "/fused")
              ~inputs:!ext_inputs
              ~attrs:
                [
                  ("expr", Attr.Strings (Fused_eval.to_postfix expr));
                  ("fused_nodes", Attr.Int !size);
                ]
              ~device:r.Node.device_spec ~op_type:"FusedElementwise" ()
          in
          redirect graph ~old_id:r.Node.id ~new_id:fused.Node.id;
          List.iter (fun id -> Hashtbl.replace grouped id ()) !members;
          incr groups;
          Metrics.Counter.incr m_fusion_groups;
          Metrics.Counter.add m_fusion_nodes !size
        end
      end)
    order;
  !groups

(* -------------------------- quantization ------------------------- *)

(* Rewrite eligible MatMul / Conv2D subgraphs of a frozen inference
   graph into int8 islands (§5: gemmlowp-style quantized inference):

     x ──► Quantize[Range] ──► Quantized<Op>[Q] ──► [Dequantize] ──► ...
             weights: pre-quantized at rewrite time into a packed uint8
             codes Const plus two scalar range Consts (4x smaller).

   Eligibility: the root is a pure, unfed, unpinned MatMul (no
   transposes) or Conv2D with no control edges in either direction
   whose weight operand (input 1) is a Const holding an F32 tensor —
   which is exactly what [Freeze] produces for inference graphs, and
   keeps the pass inert on training graphs (weights are Reads of
   Variables) and on F64 gradient-check graphs.

   With a calibrated range for the island's output ([ranges] hit on the
   node name), the island absorbs the usual inference epilogue — a
   broadcast Add of a rank-1 F32 Const bias, then Relu, each single-
   consumer and clean — into the codes-out kernel variant and decodes
   through an explicit Dequantize. Consecutive calibrated islands then
   exchange codes directly: a later elision sweep rewires any
   Quantize-of-Dequantize straight to the producer's code/range
   endpoints (legal because codes and range travel together — the
   producer's calibrated range becomes authoritative for the consumer).
   Without a calibrated output range the island is the root alone,
   lowered to the float-out kernel (dynamic activation quantization).

   Pinned (fetched) nodes are never rewritten, so a model's final
   logits layer stays float — standard quantization practice. *)

let m_quant_islands =
  Metrics.Counter.v ~help:"Subgraphs rewritten to int8 islands"
    "octf_quant_islands_total"

let m_quant_elisions =
  Metrics.Counter.v
    ~help:"Dequantize->Quantize pairs elided between adjacent islands"
    "octf_quant_elisions_total"

let m_quant_weight_bytes_float =
  Metrics.Counter.v ~help:"Float bytes of weights consumed by quantization"
    "octf_quant_weight_bytes_float_total"

let m_quant_weight_bytes_code =
  Metrics.Counter.v ~help:"Packed uint8 bytes of quantized weight codes"
    "octf_quant_weight_bytes_code_total"

(* Per-slot redirect with arbitrary endpoint targets: consumer endpoint
   (old_id, k) moves to [targets.(k)] — used by elision, where output k
   of a minted Quantize node maps to the k-th input endpoint of the
   producing Dequantize. *)
let redirect_to_endpoints graph ~old_id ~(targets : Node.endpoint array) =
  Graph.iter graph (fun n ->
      Array.iteri
        (fun slot (e : Node.endpoint) ->
          if e.node_id = old_id && e.index < Array.length targets then
            Graph.set_input graph ~node_id:n.Node.id ~slot targets.(e.index))
        n.Node.inputs);
  Graph.iter graph (fun n ->
      if List.mem old_id n.Node.control_inputs then
        Graph.replace_control_inputs graph ~node_id:n.Node.id
          (List.sort_uniq compare
             (List.map
                (fun c -> if c = old_id then targets.(0).Node.node_id else c)
                n.Node.control_inputs)))

let endpoint_name graph (e : Node.endpoint) =
  let p = Graph.get graph e.node_id in
  if e.index = 0 then p.Node.name
  else Printf.sprintf "%s:%d" p.Node.name e.index

let const_tensor graph id =
  let p = Graph.get graph id in
  if p.Node.op_type = "Const" then
    match List.assoc_opt "value" p.Node.attrs with
    | Some (Attr.Tensor t) -> Some t
    | _ -> None
  else None

let quantize_graph graph ~nodes ~fed ~pinned ~ranges =
  let in_set = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace in_set id ()) nodes;
  let data_consumers = Hashtbl.create 64 in
  let consumers_of = Hashtbl.create 64 in
  let control_dep = Hashtbl.create 16 in
  List.iter
    (fun id ->
      let n = Graph.get graph id in
      Array.iter
        (fun (e : Node.endpoint) ->
          Hashtbl.replace data_consumers e.node_id
            (1
            + Option.value ~default:0
                (Hashtbl.find_opt data_consumers e.node_id));
          Hashtbl.replace consumers_of e.node_id
            (n.Node.id
            :: Option.value ~default:[]
                 (Hashtbl.find_opt consumers_of e.node_id)))
        n.Node.inputs;
      List.iter
        (fun c -> Hashtbl.replace control_dep c ())
        n.Node.control_inputs)
    nodes;
  let rewritten = Hashtbl.create 16 in
  let clean (n : Node.t) =
    Hashtbl.mem in_set n.Node.id
    && (not (Hashtbl.mem fed n.Node.id))
    && (not (Hashtbl.mem pinned n.Node.id))
    && (not (Hashtbl.mem rewritten n.Node.id))
    && is_pure n
    && n.Node.control_inputs = []
    && not (Hashtbl.mem control_dep n.Node.id)
  in
  (* Output width of the contraction, for bias-length checks. *)
  let out_cols (root : Node.t) w =
    match root.Node.op_type with
    | "MatMul" -> (Tensor.shape w).(1)
    | _ -> (Tensor.shape w).(3)
  in
  let weight_of (root : Node.t) =
    if Array.length root.Node.inputs <> 2 then None
    else
      let e = root.Node.inputs.(1) in
      if e.Node.index <> 0 then None
      else
        match const_tensor graph e.node_id with
        | Some w
          when Tensor.dtype w = Dtype.F32
               && Tensor.rank w
                  = (if root.Node.op_type = "MatMul" then 2 else 4) ->
            Some (Graph.get graph e.node_id, w)
        | _ -> None
  in
  let no_transpose (n : Node.t) name =
    not (Option.value ~default:false (Attr.find_bool n.Node.attrs name))
  in
  let eligible_root (n : Node.t) =
    clean n
    && (match n.Node.op_type with
       | "MatMul" -> no_transpose n "transpose_a" && no_transpose n "transpose_b"
       | "Conv2D" -> true
       | _ -> false)
    && weight_of n <> None
  in
  let sole_consumer (n : Node.t) =
    if
      Option.value ~default:0 (Hashtbl.find_opt data_consumers n.Node.id) = 1
    then
      match Hashtbl.find_opt consumers_of n.Node.id with
      | Some [ cid ] -> Some (Graph.get graph cid)
      | _ -> None
    else None
  in
  (* The broadcast bias-add epilogue: Add(island, b) or Add(b, island)
     with [b] a rank-1 F32 Const matching the contraction's width. *)
  let bias_endpoint_of ~prev ~cols (c : Node.t) =
    if c.Node.op_type <> "Add" || Array.length c.Node.inputs <> 2 then None
    else
      let other =
        if c.Node.inputs.(0).Node.node_id = prev then Some c.Node.inputs.(1)
        else if c.Node.inputs.(1).Node.node_id = prev then
          Some c.Node.inputs.(0)
        else None
      in
      match other with
      | Some e when e.Node.index = 0 -> (
          match const_tensor graph e.node_id with
          | Some b
            when Tensor.dtype b = Dtype.F32
                 && Tensor.rank b = 1
                 && (Tensor.shape b).(0) = cols ->
              Some e
          | _ -> None)
      | _ -> None
  in
  let absorb (root : Node.t) ~cols =
    let bias = ref None and relu = ref None and last = ref root in
    let try_relu (c : Node.t) =
      if c.Node.op_type = "Relu" && Array.length c.Node.inputs = 1 then begin
        relu := Some c.Node.id;
        last := c
      end
    in
    (match sole_consumer root with
    | Some c when clean c && c.Node.device_spec = root.Node.device_spec -> (
        match bias_endpoint_of ~prev:root.Node.id ~cols c with
        | Some be ->
            bias := Some be;
            last := c
        | None -> try_relu c)
    | _ -> ());
    if !relu = None && !bias <> None then (
      match sole_consumer !last with
      | Some c when clean c && c.Node.device_spec = root.Node.device_spec ->
          try_relu c
      | _ -> ());
    (!bias, !relu, !last)
  in
  let weight_cache = Hashtbl.create 8 in
  let quantized_weight (wnode : Node.t) w =
    match Hashtbl.find_opt weight_cache wnode.Node.id with
    | Some trio -> trio
    | None ->
        let qw, wlo, whi = Quant_kernels.quantize w in
        let mk suffix v =
          (Graph.add_node graph
             ~name:(wnode.Node.name ^ suffix)
             ~attrs:[ ("value", Attr.Tensor v) ]
             ~device:wnode.Node.device_spec ~op_type:"Const" ())
            .Node.id
        in
        let trio =
          ( mk "/codes" qw,
            mk "/qlo" (Tensor.scalar_f wlo),
            mk "/qhi" (Tensor.scalar_f whi) )
        in
        Metrics.Counter.add m_quant_weight_bytes_float (Tensor.byte_size w);
        Metrics.Counter.add m_quant_weight_bytes_code (Tensor.byte_size qw);
        Hashtbl.replace weight_cache wnode.Node.id trio;
        trio
  in
  (* Minted activation-quantize nodes, remembered for the elision sweep. *)
  let minted_quants = ref [] in
  let quant_input (root : Node.t) =
    let e0 = root.Node.inputs.(0) in
    let node =
      match ranges (endpoint_name graph e0) with
      | Some (lo, hi) ->
          Graph.add_node graph
            ~name:(root.Node.name ^ "/qin")
            ~inputs:[ e0 ]
            ~attrs:[ ("lo", Attr.Float lo); ("hi", Attr.Float hi) ]
            ~device:root.Node.device_spec ~op_type:"QuantizeRange" ()
      | None ->
          Graph.add_node graph
            ~name:(root.Node.name ^ "/qin")
            ~inputs:[ e0 ] ~device:root.Node.device_spec ~op_type:"Quantize"
            ()
    in
    minted_quants := node.Node.id :: !minted_quants;
    node
  in
  let contraction_attrs (root : Node.t) =
    if root.Node.op_type = "Conv2D" then
      [
        ("strides", Attr.Ints (Node.attr_ints root "strides"));
        ("padding", Attr.String (Node.attr_string root "padding"));
      ]
    else []
  in
  let islands = ref 0 in
  let order = Graph.topological_order graph in
  List.iter
    (fun (n : Node.t) ->
      let n = Graph.get graph n.Node.id in
      if eligible_root n then begin
        let wnode, w = Option.get (weight_of n) in
        let cols = out_cols n w in
        let bias_e, relu_id, last = absorb n ~cols in
        let qa = quant_input n in
        let cw, lw, hw = quantized_weight wnode w in
        let base_inputs =
          [
            Node.endpoint qa.Node.id 0;
            Node.endpoint qa.Node.id 1;
            Node.endpoint qa.Node.id 2;
            Node.endpoint cw 0;
            Node.endpoint lw 0;
            Node.endpoint hw 0;
          ]
        in
        (match ranges last.Node.name with
        | Some (out_lo, out_hi) ->
            (* Calibrated: codes-out kernel with fused epilogue, decoded
               by an explicit Dequantize so downstream islands can elide
               the float round trip. *)
            let epilogue =
              match (bias_e, relu_id) with
              | None, None -> "none"
              | Some _, None -> "bias"
              | None, Some _ -> "relu"
              | Some _, Some _ -> "bias_relu"
            in
            let op_type =
              if n.Node.op_type = "MatMul" then "QuantizedMatMulQ"
              else "QuantizedConv2DQ"
            in
            let qnode =
              Graph.add_node graph
                ~name:(n.Node.name ^ "/quant")
                ~inputs:
                  (base_inputs
                  @ match bias_e with None -> [] | Some e -> [ e ])
                ~attrs:
                  (contraction_attrs n
                  @ [
                      ("epilogue", Attr.String epilogue);
                      ("out_lo", Attr.Float out_lo);
                      ("out_hi", Attr.Float out_hi);
                    ])
                ~device:n.Node.device_spec ~op_type ()
            in
            let deq =
              Graph.add_node graph
                ~name:(n.Node.name ^ "/deq")
                ~inputs:
                  [
                    Node.endpoint qnode.Node.id 0;
                    Node.endpoint qnode.Node.id 1;
                    Node.endpoint qnode.Node.id 2;
                  ]
                ~device:n.Node.device_spec ~op_type:"Dequantize" ()
            in
            redirect graph ~old_id:last.Node.id ~new_id:deq.Node.id;
            Hashtbl.replace rewritten n.Node.id ();
            Hashtbl.replace rewritten last.Node.id ();
            (match relu_id with
            | Some rid -> Hashtbl.replace rewritten rid ()
            | None -> ())
        | None ->
            (* No calibrated output range: lower the root alone to the
               float-out kernel (dynamic activation quantization). *)
            let op_type =
              if n.Node.op_type = "MatMul" then "QuantizedMatMul"
              else "QuantizedConv2D"
            in
            let qnode =
              Graph.add_node graph
                ~name:(n.Node.name ^ "/quant")
                ~inputs:base_inputs ~attrs:(contraction_attrs n)
                ~device:n.Node.device_spec ~op_type ()
            in
            redirect graph ~old_id:n.Node.id ~new_id:qnode.Node.id;
            Hashtbl.replace rewritten n.Node.id ());
        incr islands;
        Metrics.Counter.incr m_quant_islands
      end)
    order;
  (* Elision: a minted Quantize[Range] reading a Dequantize's output
     takes the producer's code/range endpoints directly. *)
  List.iter
    (fun qid ->
      let qn = Graph.get graph qid in
      let e0 = qn.Node.inputs.(0) in
      let p = Graph.get graph e0.node_id in
      if
        p.Node.op_type = "Dequantize"
        && e0.Node.index = 0
        && Array.length p.Node.inputs = 3
      then begin
        redirect_to_endpoints graph ~old_id:qid ~targets:p.Node.inputs;
        Metrics.Counter.incr m_quant_elisions
      end)
    (List.rev !minted_quants);
  !islands

type pass =
  | Prune
  | Constant_fold
  | Cse
  | Fuse
  | Freeze of (string -> Tensor.t option)
  | Quantize of (string -> (float * float) option)

(* The mid-pipeline Prune refreshes the node set so Consts minted by
   folding are visible to CSE (rewriting passes only see the current
   set; new nodes enter it at the next prune). *)
let default_pipeline = [ Constant_fold; Prune; Cse; Prune ]

(* Fusion runs after fold/CSE (folded constants become external inputs,
   merged duplicates raise consumer counts honestly) and is followed by
   its own prune to drop the absorbed originals. *)
let fused_pipeline = default_pipeline @ [ Fuse; Prune ]

let pass_name = function
  | Prune -> "prune"
  | Constant_fold -> "constant_fold"
  | Cse -> "cse"
  | Fuse -> "fuse"
  | Freeze _ -> "freeze"
  | Quantize _ -> "quantize"

let run graph ~passes ~feeds ~fetches ~targets =
  let fed = Hashtbl.create 8 in
  List.iter (fun (e : Node.endpoint) -> Hashtbl.replace fed e.node_id ()) feeds;
  let pinned = Hashtbl.create 8 in
  List.iter
    (fun (e : Node.endpoint) -> Hashtbl.replace pinned e.node_id ())
    fetches;
  List.iter (fun id -> Hashtbl.replace pinned id ()) targets;
  let prune () = Pruner.prune graph ~feeds ~fetches ~targets in
  (* The step definition itself is the initial node set. *)
  let nodes = ref (prune ()) in
  List.iter
    (fun pass ->
      match pass with
      | Prune -> nodes := prune ()
      | Constant_fold -> ignore (constant_fold graph ~nodes:!nodes ~fed)
      | Cse -> ignore (cse graph ~nodes:!nodes ~fed)
      | Fuse -> ignore (fuse graph ~nodes:!nodes ~fed ~pinned)
      | Freeze lookup -> ignore (freeze graph ~nodes:!nodes ~fed ~lookup)
      | Quantize ranges ->
          ignore (quantize_graph graph ~nodes:!nodes ~fed ~pinned ~ranges))
    passes;
  !nodes

let optimize graph ~nodes ~feeds =
  let fed = Hashtbl.create 8 in
  List.iter (fun (e : Node.endpoint) -> Hashtbl.replace fed e.node_id ()) feeds;
  let _ = constant_fold graph ~nodes ~fed in
  let _ = cse graph ~nodes ~fed in
  ()
