open Octf_tensor

exception Closed of string

type kind = Fifo | Shuffle of Rng.t

(* Per-queue series, labeled by queue name. Queues with the same name
   (e.g. one "grad_queue" per session) share series; the depth gauges
   then reflect the most recent update, and the counters aggregate. *)
type queue_metrics = {
  m_depth : Metrics.Gauge.m;
  m_depth_max : Metrics.Gauge.m;
  m_enqueued : Metrics.Counter.m;
  m_dequeued : Metrics.Counter.m;
  m_blocked_enq : Metrics.Gauge.m;
  m_blocked_deq : Metrics.Gauge.m;
  m_closed : Metrics.Counter.m;
}

let queue_metrics name =
  let labels = [ ("queue", name) ] in
  {
    m_depth =
      Metrics.Gauge.v ~help:"Current queue depth (elements)" ~labels
        "octf_queue_depth";
    m_depth_max =
      Metrics.Gauge.v ~help:"High-watermark queue depth" ~labels
        "octf_queue_depth_max";
    m_enqueued =
      Metrics.Counter.v ~help:"Elements enqueued" ~labels
        "octf_queue_enqueued_total";
    m_dequeued =
      Metrics.Counter.v ~help:"Elements dequeued" ~labels
        "octf_queue_dequeued_total";
    m_blocked_enq =
      Metrics.Gauge.v ~help:"Enqueuers currently blocked on a full queue"
        ~labels "octf_queue_blocked_enqueuers";
    m_blocked_deq =
      Metrics.Gauge.v ~help:"Dequeuers currently blocked on an empty queue"
        ~labels "octf_queue_blocked_dequeuers";
    m_closed =
      Metrics.Counter.v ~help:"Queue close operations" ~labels
        "octf_queue_closed_total";
  }

type t = {
  q_name : string;
  q_capacity : int;
  q_components : int;
  kind : kind;
  m : queue_metrics;
  mutable elements : Tensor.t array list;  (* head = front *)
  mutable tail : Tensor.t array list;  (* reversed back *)
  mutable count : int;
  mutable closed : bool;
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
}

let create ?(kind = Fifo) ~name ~capacity ~num_components () =
  if capacity <= 0 then invalid_arg "Queue_impl.create: capacity must be > 0";
  if num_components <= 0 then
    invalid_arg "Queue_impl.create: num_components must be > 0";
  {
    q_name = name;
    q_capacity = capacity;
    q_components = num_components;
    kind;
    m = queue_metrics name;
    elements = [];
    tail = [];
    count = 0;
    closed = false;
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
  }

let name t = t.q_name

let capacity t = t.q_capacity

let num_components t = t.q_components

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let size t = with_lock t (fun () -> t.count)

let is_closed t = with_lock t (fun () -> t.closed)

(* Called with the queue mutex held; the metric mutexes are leaves. *)
let sync_depth t =
  let d = float_of_int t.count in
  Metrics.Gauge.set t.m.m_depth d;
  Metrics.Gauge.max_to t.m.m_depth_max d

let push_back t elt =
  t.tail <- elt :: t.tail;
  t.count <- t.count + 1;
  Metrics.Counter.incr t.m.m_enqueued;
  sync_depth t

let pop_front t =
  (match t.kind with
  | Fifo -> ()
  | Shuffle rng ->
      (* Rotate a random element to the front. *)
      let all = t.elements @ List.rev t.tail in
      let arr = Array.of_list all in
      let i = Rng.int rng (Array.length arr) in
      let tmp = arr.(0) in
      arr.(0) <- arr.(i);
      arr.(i) <- tmp;
      t.elements <- Array.to_list arr;
      t.tail <- []);
  let e =
    match t.elements with
    | e :: rest ->
        t.elements <- rest;
        t.count <- t.count - 1;
        e
    | [] -> (
        match List.rev t.tail with
        | e :: rest ->
            t.elements <- rest;
            t.tail <- [];
            t.count <- t.count - 1;
            e
        | [] -> assert false)
  in
  Metrics.Counter.incr t.m.m_dequeued;
  sync_depth t;
  e

(* Wake this queue's waiters when [cancel] fires: broadcast both
   conditions while holding the mutex, so a waiter between its cancel
   check and Condition.wait (which still holds the mutex) cannot miss
   the wakeup. Waiters re-check the token after every wake. *)
let wake t () =
  Mutex.lock t.mutex;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mutex

let enqueue ?cancel t components =
  if Array.length components <> t.q_components then
    invalid_arg
      (Printf.sprintf "Queue %s: enqueue of %d components, expected %d"
         t.q_name (Array.length components) t.q_components);
  Cancel.with_waker cancel (wake t) (fun () ->
      with_lock t (fun () ->
          if t.count >= t.q_capacity && not t.closed then begin
            (* Fun.protect so a cancellation raised from the wait loop
               still decrements the blocked gauge. *)
            Metrics.Gauge.incr t.m.m_blocked_enq;
            Fun.protect
              ~finally:(fun () -> Metrics.Gauge.decr t.m.m_blocked_enq)
              (fun () ->
                while
                  t.count >= t.q_capacity && not t.closed
                  && (Cancel.check_opt cancel; true)
                do
                  Condition.wait t.not_full t.mutex
                done)
          end;
          Cancel.check_opt cancel;
          if t.closed then raise (Closed t.q_name);
          push_back t components;
          Condition.signal t.not_empty))

let dequeue_locked ?cancel t =
  if t.count = 0 && not t.closed then begin
    Metrics.Gauge.incr t.m.m_blocked_deq;
    Fun.protect
      ~finally:(fun () -> Metrics.Gauge.decr t.m.m_blocked_deq)
      (fun () ->
        while t.count = 0 && not t.closed && (Cancel.check_opt cancel; true) do
          Condition.wait t.not_empty t.mutex
        done)
  end;
  Cancel.check_opt cancel;
  if t.count = 0 then raise (Closed t.q_name);
  let e = pop_front t in
  Condition.signal t.not_full;
  e

let dequeue ?cancel t =
  Cancel.with_waker cancel (wake t) (fun () ->
      with_lock t (fun () -> dequeue_locked ?cancel t))

let try_dequeue t =
  with_lock t (fun () ->
      if t.count = 0 then begin
        if t.closed then raise (Closed t.q_name);
        None
      end
      else begin
        let e = pop_front t in
        Condition.signal t.not_full;
        Some e
      end)

let stack (tensors : Tensor.t list) =
  match tensors with
  | [] -> invalid_arg "Queue_impl.stack: empty"
  | first :: _ ->
      let shape = Tensor.shape first in
      let n = List.length tensors in
      let out_shape = Array.append [| n |] shape in
      let per = Tensor.numel first in
      let out = Tensor.zeros (Tensor.dtype first) out_shape in
      List.iteri
        (fun i t ->
          if not (Shape.equal (Tensor.shape t) shape) then
            invalid_arg "Queue_impl.dequeue_many: ragged element shapes";
          for j = 0 to per - 1 do
            Tensor.flat_set_f out ((i * per) + j) (Tensor.flat_get_f t j)
          done)
        tensors;
      out

let dequeue_many ?cancel t n =
  if n <= 0 then invalid_arg "Queue_impl.dequeue_many: n must be > 0";
  let elements =
    Cancel.with_waker cancel (wake t) (fun () ->
        with_lock t (fun () ->
            (* On closure/cancellation mid-collection, requeue what was
               already taken so no element is silently lost. *)
            let taken = ref [] in
            (try
               for _ = 1 to n do
                 taken := dequeue_locked ?cancel t :: !taken
               done
             with e ->
               t.elements <- List.rev_append !taken t.elements;
               t.count <- t.count + List.length !taken;
               sync_depth t;
               Condition.broadcast t.not_empty;
               raise e);
            List.rev !taken))
  in
  Array.init t.q_components (fun c ->
      stack (List.map (fun e -> e.(c)) elements))

let close t =
  with_lock t (fun () ->
      if not t.closed then Metrics.Counter.incr t.m.m_closed;
      t.closed <- true;
      Condition.broadcast t.not_empty;
      Condition.broadcast t.not_full)
