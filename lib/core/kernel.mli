(** Operation kernels and the kernel registry (§5).

    A device executes a {e kernel} for each operation assigned to it.
    Multiple kernels may be registered for one operation type, with
    specialized implementations per device type; the placement algorithm
    consults the registry to compute each node's feasible device set.

    In this reproduction every kernel ultimately runs on the host CPU
    (simulated accelerators share implementations), but the registry
    machinery — including per-device registration and lookup with
    fallback — is faithful to the paper's design. *)

(** Execution context passed to a kernel. *)
type ctx = {
  node : Node.t;
  inputs : Value.t array;
  resources : Resource_manager.t;
  rendezvous : Rendezvous.t option;  (** present in partitioned steps *)
  rng : Octf_tensor.Rng.t;  (** per-step stream for random ops *)
  step_id : int;
  cancel : Cancel.t option;
      (** the step's cancellation token; blocking kernels must pass it
          to their waits so deadlines and aborts wake them *)
}

type t = ctx -> Value.t array
(** A kernel maps input values to output values (possibly blocking, for
    queue and [Recv] operations). *)

exception Kernel_error of string * exn
(** [(node name, underlying failure)] — wraps kernel exceptions so step
    errors identify the failing operation. *)

val register : op_type:string -> ?devices:Device.device_type list -> t -> unit
(** Register one implementation for [op_type] on each listed device type
    (default [[CPU; GPU]]). Later registrations override. *)

val lookup : op_type:string -> device:Device.device_type -> t option

val supported_devices : op_type:string -> Device.device_type list
(** Device types with a registered kernel; empty when unknown. *)

val is_registered : op_type:string -> bool

(** {1 Input projection helpers for kernel implementations} *)

val input_tensor : ctx -> int -> Octf_tensor.Tensor.t

val input_var : ctx -> int -> Resource.variable

val input_queue : ctx -> int -> Queue_impl.t

val all_input_tensors : ctx -> Octf_tensor.Tensor.t list

val one : Value.t -> Value.t array
(** Singleton output. *)
