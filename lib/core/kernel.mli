(** Operation kernels and the kernel registry (§5).

    A device executes a {e kernel} for each operation assigned to it.
    Multiple kernels may be registered for one operation type, with
    specialized implementations per device type; the placement algorithm
    consults the registry to compute each node's feasible device set.

    In this reproduction every kernel ultimately runs on the host CPU
    (simulated accelerators share implementations), but the registry
    machinery — including per-device registration and lookup with
    fallback — is faithful to the paper's design. *)

(** Execution context passed to a kernel. *)
type ctx = {
  node : Node.t;
  inputs : Value.t array;
  resources : Resource_manager.t;
  rendezvous : Rendezvous.t option;  (** present in partitioned steps *)
  rng : Octf_tensor.Rng.t;  (** per-step stream for random ops *)
  step_id : int;
  cancel : Cancel.t option;
      (** the step's cancellation token; blocking kernels must pass it
          to their waits so deadlines and aborts wake them *)
  grants : (int * int) list;
      (** in-place grants issued by the executor's memory planner: each
          [(input_idx, output_idx)] pair licenses the kernel to write
          output [output_idx] into input [input_idx]'s backing buffer
          (the input's refcount is 1 and it is not fed, fetched or a
          variable's backing store). Empty unless the op declared
          [~aliases] at registration and planning is enabled. *)
  var_snapshot : (string -> Octf_tensor.Tensor.t option) option;
      (** when the pipelined engine admitted this step with versioned
          variable reads, maps a variable name to the value it held at
          admission. [Read] consults it so every read in the step sees
          one consistent snapshot (§4.4's async consistency); updates
          ([Assign*], [Scatter*]) always apply to the live variable in
          completion order. [None] for barrier-mode and synchronous
          steps — reads then go straight to the live variable. *)
}

type t = ctx -> Value.t array
(** A kernel maps input values to output values (possibly blocking, for
    queue and [Recv] operations). *)

exception Kernel_error of string * exn
(** [(node name, underlying failure)] — wraps kernel exceptions so step
    errors identify the failing operation. *)

val register :
  op_type:string ->
  ?devices:Device.device_type list ->
  ?aliases:(int * int) list ->
  t ->
  unit
(** Register one implementation for [op_type] on each listed device type
    (default [[CPU; GPU]]). Later registrations override.

    [aliases] declares May_alias [(input_idx, output_idx)] pairs: the
    kernel {e can} write that output into that input's buffer when the
    executor grants it (see {!type:ctx}[.grants]). Kernels read their
    grants through {!granted_buffer} / {!granted_input}. *)

val lookup : op_type:string -> device:Device.device_type -> t option

val aliases : op_type:string -> (int * int) list
(** Declared May_alias pairs for [op_type] (empty if none). *)

val supported_devices : op_type:string -> Device.device_type list
(** Device types with a registered kernel; empty when unknown. *)

val is_registered : op_type:string -> bool

(** {1 Input projection helpers for kernel implementations} *)

val input_tensor : ctx -> int -> Octf_tensor.Tensor.t

val input_var : ctx -> int -> Resource.variable

val input_queue : ctx -> int -> Queue_impl.t

val all_input_tensors : ctx -> Octf_tensor.Tensor.t list

val one : Value.t -> Value.t array
(** Singleton output. *)

val snapshot_read : ctx -> Resource.variable -> Octf_tensor.Tensor.t
(** The variable's value as this step should observe it: the admission
    snapshot when the context carries one (and the variable was
    initialized at admission), the live value otherwise. *)

(** {1 In-place grant helpers} *)

val granted_input : ctx -> output:int -> Octf_tensor.Tensor.t option
(** The input tensor whose buffer was granted for [output], if any. *)

val granted_buffer : ctx -> output:int -> float array option
(** Float backing buffer granted for [output] — pass as [?out] to the
    {!Octf_tensor.Tensor_ops} elementwise ops. [None] when no grant was
    issued or the granted input is not float-backed. *)
