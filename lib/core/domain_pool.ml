(* Shared worker-domain pool. One instance per process, created lazily
   and torn down in at_exit so the runtime never exits with a domain
   mid-task. All state is guarded by [mutex]; workers sleep on [cond]. *)

type t = {
  mutex : Mutex.t;
  cond : Condition.t;  (* signalled on submit and on shutdown *)
  tasks : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let size_of_env () =
  match Sys.getenv_opt "OCTF_POOL_SIZE" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> Some n
      | _ -> None)
  | None -> None

let size () =
  match size_of_env () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count () - 1)

let worker_loop pool () =
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.tasks && not pool.stop do
      Condition.wait pool.cond pool.mutex
    done;
    if Queue.is_empty pool.tasks then (* stop, queue drained *)
      Mutex.unlock pool.mutex
    else begin
      let task = Queue.pop pool.tasks in
      Mutex.unlock pool.mutex;
      (try task ()
       with e ->
         Printf.eprintf "octf: Domain_pool task raised %s\n%!"
           (Printexc.to_string e));
      loop ()
    end
  in
  loop ()

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let instance = ref None
let instance_mutex = Mutex.create ()

(* Called with [instance_mutex] held. *)
let create_locked () =
  match !instance with
  | Some pool -> pool
  | None ->
      let pool =
        {
          mutex = Mutex.create ();
          cond = Condition.create ();
          tasks = Queue.create ();
          stop = false;
          workers = [];
        }
      in
      pool.workers <-
        List.init (size ()) (fun _ -> Domain.spawn (worker_loop pool));
      instance := Some pool;
      at_exit (fun () -> shutdown pool);
      pool

(* Concurrent partition threads may hit the first submit at once; the
   creation mutex makes the pool a true singleton. *)
let get () =
  match !instance with
  | Some pool -> pool
  | None ->
      Mutex.lock instance_mutex;
      let pool = create_locked () in
      Mutex.unlock instance_mutex;
      pool

let submit task =
  let pool = get () in
  Mutex.lock pool.mutex;
  Queue.add task pool.tasks;
  Condition.signal pool.cond;
  Mutex.unlock pool.mutex

(* Wire the tensor library's intra-op sharder onto this pool. The tensor
   library cannot depend on the runtime, so it exposes a backend hook;
   module initialisation runs before any kernel executes, and the pool
   itself is still created lazily on the first parallel kernel. *)
let () = Octf_tensor.Parallel.set_backend submit
