(** Jittered exponential backoff with a cap and optional attempt limit.

    One {!policy} describes the retry shape; a {!t} is a mutable
    schedule walking it. Jitter is {e deterministic}: the delay for
    attempt [n] depends only on [(seed, n)], so seeded runs (tests, the
    CI fault matrix) replay the same timeline. Used by
    [Octf_train.Supervisor] for checkpoint-restore retries and by
    [Octf_net] for socket reconnects. *)

type policy = {
  base : float;  (** first delay, seconds *)
  multiplier : float;  (** growth factor per attempt, [>= 1] *)
  cap : float;  (** upper bound on any delay, seconds *)
  jitter : float;
      (** fraction of each delay randomized away, in [[0, 1]]: the
          delay for attempt [n] lies in [[(1 - jitter) * d_n .. d_n]] *)
  max_attempts : int option;  (** [None] = retry forever *)
  seed : int;
}

val policy :
  ?base:float ->
  ?multiplier:float ->
  ?cap:float ->
  ?jitter:float ->
  ?max_attempts:int ->
  ?seed:int ->
  unit ->
  policy
(** Defaults: [base = 0.01], [multiplier = 2.0], [cap = 1.0],
    [jitter = 0.0], no attempt limit, [seed = 0].
    @raise Invalid_argument on a negative base, multiplier < 1, or
    jitter outside [0, 1]. *)

type t

val create : policy -> t

val reset : t -> unit
(** Back to attempt 0 — call after a success. *)

val attempts : t -> int
(** Attempts consumed since creation or the last {!reset}. *)

val delay_for : policy -> attempt:int -> float
(** The (jittered, capped) delay for a given attempt index, as a pure
    function — what {!next} returns without consuming an attempt. *)

val next : t -> float option
(** The delay to sleep before the next retry, or [None] when
    [max_attempts] is exhausted. Consumes one attempt. *)

val wait : t -> bool
(** [wait t] sleeps {!next}'s delay and returns [true], or returns
    [false] without sleeping when attempts are exhausted. *)
