open Octf_tensor

let magic = "OCTFREC1"

exception Corrupt of { source : string; detail : string }

let () =
  Printexc.register_printer (function
    | Corrupt { source; detail } ->
        Some (Printf.sprintf "corrupt record data %s: %s" source detail)
    | _ -> None)

let corrupt source fmt =
  Printf.ksprintf (fun detail -> raise (Corrupt { source; detail })) fmt

(* Cheap checksum: sums of bytes with position mixing; catches the
   truncation and bit-rot cases a reader cares about. *)
let checksum s =
  let acc = ref 0 in
  String.iteri
    (fun i c -> acc := (!acc + ((i + 1) * Char.code c)) land 0x3FFFFFFF)
    s;
  !acc

let add_u32 buf v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  Buffer.add_bytes buf b

let add_u64 buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Buffer.add_bytes buf b

let write_body buf records =
  List.iter
    (fun r ->
      add_u64 buf (String.length r);
      Buffer.add_string buf r;
      add_u32 buf (checksum r))
    records

let write_records path records =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  write_body buf records;
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Sys.rename tmp path

let append_records path records =
  if not (Sys.file_exists path) then write_records path records
  else begin
    let buf = Buffer.create 4096 in
    write_body buf records;
    let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
    output_string oc (Buffer.contents buf);
    close_out oc
  end

(* The reader must distinguish a clean end (file position exactly at a
   record boundary) from a torn write: a partial length prefix, a body
   cut short, or a missing checksum are each a structured {!Corrupt},
   never a silent truncation of the record list. Length fields are
   checked against the bytes actually left before any allocation. *)
let read_records path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let size = in_channel_length ic in
      let input_exact n what =
        try really_input_string ic n
        with End_of_file -> corrupt path "truncated %s" what
      in
      let m = input_exact (String.length magic) "magic" in
      if m <> magic then corrupt path "bad magic %S" m;
      let records = ref [] in
      while pos_in ic < size do
        let len_b = input_exact 8 "record length" in
        let len =
          Int64.to_int (Bytes.get_int64_le (Bytes.of_string len_b) 0)
        in
        (* body + 4-byte checksum must both fit in what's left *)
        if len < 0 || len + 4 > size - pos_in ic then
          corrupt path "record length %d out of range (%d bytes left)" len
            (size - pos_in ic);
        let body = input_exact len "record body" in
        let ck_b = input_exact 4 "record checksum" in
        let ck = Int32.to_int (Bytes.get_int32_le (Bytes.of_string ck_b) 0) in
        if ck <> checksum body then
          corrupt path "checksum mismatch (expected %#x, found %#x)"
            (checksum body) ck;
        records := body :: !records
      done;
      List.rev !records)

(* Example codec: count, then per tensor name / dtype / shape / data,
   reusing the layout of Checkpoint_format but into a string. *)
let encode_example entries =
  let buf = Buffer.create 256 in
  add_u32 buf (List.length entries);
  List.iter
    (fun (name, tensor) ->
      add_u32 buf (String.length name);
      Buffer.add_string buf name;
      let d = Dtype.to_string (Tensor.dtype tensor) in
      add_u32 buf (String.length d);
      Buffer.add_string buf d;
      let shape = Tensor.shape tensor in
      add_u32 buf (Shape.rank shape);
      Array.iter (fun dim -> add_u64 buf dim) shape;
      let n = Tensor.numel tensor in
      match Tensor.dtype tensor with
      | Dtype.F32 | Dtype.F64 ->
          let b = Bytes.create (n * 8) in
          for i = 0 to n - 1 do
            Bytes.set_int64_le b (i * 8)
              (Int64.bits_of_float (Tensor.flat_get_f tensor i))
          done;
          Buffer.add_bytes buf b
      | Dtype.I32 | Dtype.I64 | Dtype.Bool ->
          let b = Bytes.create (n * 8) in
          for i = 0 to n - 1 do
            Bytes.set_int64_le b (i * 8)
              (Int64.of_int (Tensor.flat_get_i tensor i))
          done;
          Buffer.add_bytes buf b
      | Dtype.U8 -> Buffer.add_bytes buf (Tensor.byte_buffer tensor)
      | Dtype.String ->
          Array.iter
            (fun s ->
              add_u32 buf (String.length s);
              Buffer.add_string buf s)
            (Tensor.string_buffer tensor))
    entries;
  Buffer.contents buf

let max_rank = 64

let decode_example s =
  let source = "<record>" in
  let pos = ref 0 in
  let take n what =
    if n < 0 || !pos + n > String.length s then
      corrupt source "truncated %s (%d bytes needed, %d left)" what n
        (String.length s - !pos);
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  let u32 what =
    Int32.to_int (Bytes.get_int32_le (Bytes.of_string (take 4 what)) 0)
  in
  let u64 what =
    Int64.to_int (Bytes.get_int64_le (Bytes.of_string (take 8 what)) 0)
  in
  let count = u32 "entry count" in
  if count < 0 || count > String.length s - !pos then
    corrupt source "entry count %d out of range" count;
  List.init count (fun _ ->
      let name = take (u32 "name length") "name" in
      let dname = take (u32 "dtype length") "dtype" in
      let dtype =
        try Dtype.of_string dname
        with Invalid_argument _ -> corrupt source "unknown dtype %S" dname
      in
      let rank = u32 "rank" in
      if rank < 0 || rank > max_rank then
        corrupt source "bad tensor rank %d" rank;
      let shape =
        Array.init rank (fun _ ->
            let d = u64 "dimension" in
            if d < 0 then corrupt source "negative dimension %d" d;
            d)
      in
      let n = Shape.numel shape in
      let tensor =
        match dtype with
        | Dtype.F32 | Dtype.F64 ->
            let b = Bytes.of_string (take (n * 8) "tensor data") in
            Tensor.of_float_array ~dtype shape
              (Array.init n (fun i ->
                   Int64.float_of_bits (Bytes.get_int64_le b (i * 8))))
        | Dtype.I32 | Dtype.I64 ->
            let b = Bytes.of_string (take (n * 8) "tensor data") in
            Tensor.of_int_array ~dtype shape
              (Array.init n (fun i ->
                   Int64.to_int (Bytes.get_int64_le b (i * 8))))
        | Dtype.U8 ->
            Tensor.of_bytes shape (Bytes.of_string (take n "tensor data"))
        | Dtype.Bool ->
            let b = Bytes.of_string (take (n * 8) "tensor data") in
            Tensor.of_bool_array shape
              (Array.init n (fun i -> Bytes.get_int64_le b (i * 8) <> 0L))
        | Dtype.String ->
            Tensor.of_string_array shape
              (Array.init n (fun _ ->
                   take (u32 "string length") "string element"))
      in
      (name, tensor))
