type t = {
  mutable nodes : Node.t array;
  mutable count : int;
  names : (string, int) Hashtbl.t;
}

let create () = { nodes = [||]; count = 0; names = Hashtbl.create 64 }

let grow g =
  let cap = Array.length g.nodes in
  if g.count >= cap then begin
    let ncap = max 64 (cap * 2) in
    let fresh =
      Array.make ncap
        {
          Node.id = -1;
          name = "";
          op_type = "";
          inputs = [||];
          control_inputs = [];
          attrs = [];
          device_spec = Device.unconstrained;
          assigned_device = None;
        }
    in
    Array.blit g.nodes 0 fresh 0 g.count;
    g.nodes <- fresh
  end

let unique_name g base =
  if not (Hashtbl.mem g.names base) then base
  else
    let rec try_suffix i =
      let candidate = Printf.sprintf "%s_%d" base i in
      if Hashtbl.mem g.names candidate then try_suffix (i + 1) else candidate
    in
    try_suffix 1

let node_count g = g.count

let get g id =
  if id < 0 || id >= g.count then
    invalid_arg (Printf.sprintf "Graph.get: unknown node id %d" id);
  g.nodes.(id)

let add_node g ?name ?(inputs = []) ?(control_inputs = [])
    ?(attrs = []) ?(device = Device.unconstrained) ~op_type () =
  let base = match name with Some n -> n | None -> op_type in
  let name = unique_name g base in
  List.iter
    (fun (e : Node.endpoint) ->
      let producer = get g e.node_id in
      let n_out = Node.num_outputs producer in
      if e.index < 0 || e.index >= n_out then
        invalid_arg
          (Printf.sprintf "Graph.add_node: %s has no output %d (arity %d)"
             producer.name e.index n_out))
    inputs;
  List.iter (fun c -> ignore (get g c)) control_inputs;
  grow g;
  let node =
    {
      Node.id = g.count;
      name;
      op_type;
      inputs = Array.of_list inputs;
      control_inputs;
      attrs;
      device_spec = device;
      assigned_device = None;
    }
  in
  g.nodes.(g.count) <- node;
  Hashtbl.replace g.names name g.count;
  g.count <- g.count + 1;
  node

(* Structurally independent copy. Node records are duplicated (their
   [assigned_device] field is mutable and [inputs] arrays are mutated
   through [set_input]'s record replacement only on the owning graph),
   so in-place rewrites on the copy leave the original untouched. *)
let copy g =
  let nodes =
    Array.init (Array.length g.nodes) (fun i ->
        let n = g.nodes.(i) in
        if i < g.count then
          { n with Node.inputs = Array.copy n.inputs; assigned_device = None }
        else n)
  in
  { nodes; count = g.count; names = Hashtbl.copy g.names }

let find_by_name g name =
  match Hashtbl.find_opt g.names name with
  | None -> None
  | Some id -> Some (get g id)

let get_by_name g name =
  match find_by_name g name with Some n -> n | None -> raise Not_found

let set_input g ~node_id ~slot (e : Node.endpoint) =
  let n = get g node_id in
  if slot < 0 || slot >= Array.length n.inputs then
    invalid_arg "Graph.set_input: slot out of range";
  let inputs = Array.copy n.inputs in
  inputs.(slot) <- e;
  g.nodes.(node_id) <- { n with inputs }

let replace_control_inputs g ~node_id controls =
  let n = get g node_id in
  g.nodes.(node_id) <- { n with control_inputs = controls }

let nodes g = List.init g.count (fun i -> g.nodes.(i))

let iter g f =
  for i = 0 to g.count - 1 do
    f g.nodes.(i)
  done

let consumers_of g =
  let out = Array.make g.count [] in
  iter g (fun n ->
      Array.iter
        (fun (e : Node.endpoint) -> out.(e.node_id) <- n.id :: out.(e.node_id))
        n.inputs;
      List.iter (fun c -> out.(c) <- n.id :: out.(c)) n.control_inputs);
  out

let out_edges g =
  let acc = ref [] in
  iter g (fun n ->
      Array.iteri
        (fun slot (e : Node.endpoint) ->
          acc := (e.node_id, e.index, n.id, slot) :: !acc)
        n.inputs);
  List.rev !acc

(* Back edges from NextIteration into Merge are the only legal cycles. *)
let is_back_edge g ~src ~dst =
  (get g src).op_type = "NextIteration" && (get g dst).op_type = "Merge"

let topological_order g =
  let indegree = Array.make g.count 0 in
  iter g (fun n ->
      Array.iter
        (fun (e : Node.endpoint) ->
          if not (is_back_edge g ~src:e.node_id ~dst:n.id) then
            indegree.(n.id) <- indegree.(n.id) + 1)
        n.inputs;
      List.iter
        (fun c ->
          if not (is_back_edge g ~src:c ~dst:n.id) then
            indegree.(n.id) <- indegree.(n.id) + 1)
        n.control_inputs);
  let ready = Queue.create () in
  for i = 0 to g.count - 1 do
    if indegree.(i) = 0 then Queue.add i ready
  done;
  let consumers = consumers_of g in
  let order = ref [] in
  let visited = ref 0 in
  while not (Queue.is_empty ready) do
    let id = Queue.pop ready in
    order := get g id :: !order;
    incr visited;
    List.iter
      (fun c ->
        if not (is_back_edge g ~src:id ~dst:c) then begin
          indegree.(c) <- indegree.(c) - 1;
          if indegree.(c) = 0 then Queue.add c ready
        end)
      consumers.(id)
  done;
  if !visited <> g.count then
    failwith "Graph.topological_order: graph has a non-loop cycle";
  List.rev !order

let pp fmt g =
  Format.fprintf fmt "graph (%d nodes):@." g.count;
  iter g (fun n -> Format.fprintf fmt "  %a@." Node.pp n)
