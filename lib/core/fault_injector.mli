(** Deterministic fault injection for the distributed runtime (§4.3).

    The paper designs the runtime around failure — "the client, master,
    or any worker process" may die — but a reproduction can only claim
    fault tolerance if it can {e cause} those failures on demand. This
    module is the chaos layer: a process-wide, seeded injector that can
    kill a cluster task at a step, fail a chosen kernel invocation, make
    kernels flaky with a seeded coin, or drop/delay a rendezvous channel.
    The executor consults {!kernel_hook} before every kernel and the
    [Send] kernel consults {!send_hook}, so injected faults travel the
    exact production failure paths (structured {!Step_failure} errors,
    rendezvous abort, cancellation) that real failures would.

    Specs come from code ({!install}), the [OCTF_FAULT] environment
    variable, or the CLI's [--fault] flag. Spec grammar, comma-separable:
    - [kill:<job>/<task>@<step>] — task dies at that step and stays dead
      until {!revive_task};
    - [kernel:<pattern>@<step>] — fail the first kernel whose node name
      or op type contains [pattern] at/after that step (one-shot);
    - [flaky:<pattern>:<prob>] — matching kernels fail with seeded
      probability (deterministic per seed/step/node);
    - [drop:<pattern>@<step>] — swallow the first matching rendezvous
      send (the paired Recv must be rescued by a deadline);
    - [delay:<pattern>@<step>:<ms>] — delay the matching send;
    - [slow:<pattern>@<step>:<ms>] — persistent straggler: {e every}
      matching kernel at/after the step sleeps [ms] before running (a
      slow reader or slow disk, for pipelining experiments);
    - [dropconn:<peer>@<step>] — sever the TCP connection to the peer
      whose ["job/task"] name contains [peer], the next time a frame is
      sent at/after the step (one-shot; consulted via {!net_hook});
    - [framedelay:<pattern>@<step>:<ms>] — hold the first matching
      outbound frame for [ms] before writing it (one-shot);
    - [corrupt:<pattern>@<step>] — flip a payload bit in the first
      matching outbound frame {e after} its checksum was computed, so
      the receiving end reports a checksum mismatch (one-shot). *)

exception Injected of string
(** Raised by {!kernel_hook}; the executor reports it as
    {!Step_failure.Fault_injected} with node and device context. *)

type spec =
  | Kill_task of { job : string; task : int; step : int }
  | Fail_kernel of { pattern : string; step : int }
  | Flaky_kernel of { pattern : string; prob : float }
  | Drop_send of { pattern : string; step : int }
  | Delay_send of { pattern : string; step : int; ms : float }
  | Slow_kernel of { pattern : string; step : int; ms : float }
  | Drop_conn of { peer : string; step : int }
  | Delay_frame of { pattern : string; step : int; ms : float }
  | Corrupt_frame of { pattern : string; step : int }

type send_action = [ `Deliver | `Drop | `Delay of float ]

type net_action = [ `Send | `Drop_conn | `Delay of float | `Corrupt ]

val parse_spec : string -> (spec, string) result

val parse : string -> (spec list, string) result
(** Comma-separated list of specs. *)

val spec_to_string : spec -> string

val install : ?seed:int -> spec list -> unit
(** Replace the active spec set (clearing killed tasks and counters).
    [seed] drives the flaky-kernel coin. *)

val install_from_env : unit -> unit
(** Install from [OCTF_FAULT] / [OCTF_FAULT_SEED] when set. *)

val reset : unit -> unit
(** Disarm everything (specs and killed tasks). Tests must call this in
    a [Fun.protect] finally. *)

val active : unit -> bool

val injections : unit -> int
(** Faults fired since the last {!install}/{!reset} (determinism
    smoke-tests compare this across seeded runs). *)

val kill_task : job:string -> task:int -> unit
(** Programmatic task kill, effective immediately: every kernel placed
    on that task's devices fails until {!revive_task}. *)

val revive_task : job:string -> task:int -> unit

val task_alive : job:string -> task:int -> bool

val killed_tasks : unit -> (string * int) list

val kernel_hook : Node.t -> step_id:int -> unit
(** Called by the executor before running a kernel.
    @raise Injected when a spec fires for this node/step. *)

val send_hook : key:string -> step_id:int -> send_action
(** Called by the [Send] kernel before publishing to the rendezvous. *)

val net_hook :
  peer:string -> kind:string -> key:string -> step_id:int -> net_action
(** Called by the network transport just before writing a frame. [peer]
    is the destination's ["job/task"]; [kind] is the frame-type name
    (["tensor"], ["run_step"], ...); [key] identifies the payload (the
    rendezvous key for tensor frames, else the kind); [step_id] is the
    frame's stream id. {!Drop_conn} matches against [peer];
    {!Delay_frame} and {!Corrupt_frame} match against [key] or
    [kind]. *)
