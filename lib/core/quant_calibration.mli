(** Post-training calibration for quantized inference (§5).

    Run representative batches through a frozen inference graph,
    recording per-endpoint activation ranges; the resulting {!ranges}
    lookup feeds {!Graph_optimizer.Quantize}, which quantizes
    activations against the calibrated ranges ([QuantizeRange]) and
    requantizes island outputs into them (codes-out kernels).

    {[
      let cal = Quant_calibration.create () in
      List.iter
        (fun batch ->
          Quant_calibration.observe_step cal session
            ~feeds:[ (x, batch) ] [ B.output conv1; B.output fc1 ])
        representative_batches;
      (* freeze + quantize against the calibration *)
      Serving.freeze ~quantize:true
        ~ranges:(Quant_calibration.ranges cal) ...
    ]} *)

open Octf_tensor

(** How ranges accumulate across batches: running min/max, or an
    exponential moving average [Ema decay] (decay in (0, 1]) that
    forgets early outliers. *)
type mode = Min_max | Ema of float

type t

val create : ?mode:mode -> unit -> t
(** Default mode {!Min_max}.
    @raise Invalid_argument for an EMA decay outside (0, 1]. *)

val observe : t -> string -> Tensor.t -> unit
(** Record one batch's value of the endpoint named [string] ("name" or
    "name:k" for output k > 0 — {!Graph_optimizer.Quantize}'s key
    convention). *)

val observe_step :
  t ->
  Session.t ->
  ?feeds:(Builder.output * Tensor.t) list ->
  Builder.output list ->
  unit
(** Run one representative batch fetching the given endpoints and
    {!observe} each under its endpoint name.
    @raise Session.Run_error as {!Session.run} does. *)

val ranges : t -> string -> (float * float) option
(** The lookup the {!Graph_optimizer.Quantize} pass consumes: [None]
    for unobserved endpoints; otherwise the accumulated range,
    sanitized to include [0.0] and widened when degenerate (the code
    invariants {!Quant_kernels} relies on). *)

val observed : t -> string list
(** Endpoint names with recorded statistics (unordered). *)
