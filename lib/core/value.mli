(** Values flowing along dataflow edges at runtime.

    Most edges carry dense tensors; edges out of stateful operations
    carry reference handles ({!Resource.t}); and control-flow edges out
    of an untaken [Switch] branch carry the special {e dead} value, which
    propagates recursively until it reaches a [Merge] (§3.4). *)

open Octf_tensor

type t = Tensor of Tensor.t | Resource of Resource.t | Dead

val is_dead : t -> bool

val tensor : t -> Tensor.t
(** Project a tensor. @raise Invalid_argument on a resource or dead
    value. *)

val resource : t -> Resource.t

val variable : t -> Resource.variable

val queue : t -> Queue_impl.t

val iterator : t -> Resource.iterator

val tensor_array : t -> Resource.tensor_array

val byte_size : t -> int
(** Payload size in bytes: the tensor's serialized size, or 0 for
    resources and dead values. Used for transfer accounting. *)

val pp : Format.formatter -> t -> unit
