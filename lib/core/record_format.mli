(** Record files — the "distributed file system" input format of
    Figure 1.

    The paper's training pipelines start with an I/O subgraph whose
    Reader operations pull records from files; this module provides the
    on-disk container (length-prefixed records with a checksum, in the
    spirit of TFRecord) and an Example codec serializing a set of named
    tensors into one record. Reader kernels ({!Io_kernels}) iterate the
    container; {!Octf_data} writes datasets into it. *)

open Octf_tensor

exception Corrupt of { source : string; detail : string }
(** Malformed record data: bad magic, a length field that exceeds the
    bytes left, a checksum mismatch, truncation mid-record, or an
    undecodable example. [source] is the file path (or ["<record>"] for
    in-memory example strings). Every malformed-input path raises this
    — never a bare [End_of_file], [Invalid_argument] or [Failure] — so
    reader kernels surface torn writes as structured step failures. *)

(** {1 Container} *)

val write_records : string -> string list -> unit
(** Write a record file atomically (temp-file rename). *)

val read_records : string -> string list
(** Reads records until the file position sits exactly at end-of-file;
    a file that ends mid-record (torn append, truncation) is corrupt,
    not short.
    @raise Corrupt on bad magic, truncation or a checksum mismatch. *)

val append_records : string -> string list -> unit
(** Append to an existing record file (or create it). *)

(** {1 Examples: named-tensor records} *)

val encode_example : (string * Tensor.t) list -> string

val decode_example : string -> (string * Tensor.t) list
(** @raise Corrupt on malformed input (truncated fields, unknown dtype,
    out-of-range rank or dimensions). *)
