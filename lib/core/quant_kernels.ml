(* Quantization kernels (§5): "we have also implemented support for
   quantization, which enables faster inference in environments such as
   mobile devices ... and use the gemmlowp low-precision matrix
   multiplication library".

   8-bit affine quantization in the TF/gemmlowp style: a float tensor is
   mapped onto [0, 255] with a (min, max) range carried alongside as two
   scalar tensors; the quantized contractions accumulate the 8-bit codes
   in integer arithmetic (exactly what gemmlowp does) and produce the
   rescaled float result. Codes travel in packed uint8 tensors — one
   byte per element, a 4x cut over float32 weights.

   Two families of contraction kernels:
   - [QuantizedMatMul] / [QuantizedConv2D] produce a float output
     directly (used when no calibrated output range is known);
   - [QuantizedMatMulQ] / [QuantizedConv2DQ] produce codes plus range
     scalars, with optional fused bias / ReLU epilogues, so consecutive
     quantized islands can exchange codes without a float round trip
     (the optimizer elides the Dequantize/Quantize pair between them).

   Shape and dtype violations raise structured {!Step_failure} errors
   ([Invalid_graph]) rather than bare [Invalid_argument], so a bad
   quantized graph surfaces through the session's typed error path. *)

open Octf_tensor
module K = Kernel
module SF = Step_failure

let t v = Value.Tensor v

let levels = 255.0

let invalid fmt =
  Printf.ksprintf (fun m -> raise (SF.error (SF.Invalid_graph m))) fmt

let grain_for ~item_cost ~target_work = max 1 (target_work / max 1 item_cost)

(* The range always includes 0.0 (so zero quantizes exactly enough for
   padding and ReLU cut-offs) and degenerate ranges are widened to a
   unit interval so constant tensors still round-trip. *)
let range_of tensor =
  let lo = ref Float.infinity and hi = ref Float.neg_infinity in
  for i = 0 to Tensor.numel tensor - 1 do
    let v = Tensor.flat_get_f tensor i in
    if v < !lo then lo := v;
    if v > !hi then hi := v
  done;
  let lo = Float.min 0.0 !lo in
  let hi = Float.max 0.0 !hi in
  if hi -. lo < 1e-12 then (lo, lo +. 1.0) else (lo, hi)

let scale_of lo hi = (hi -. lo) /. levels

(* The code that decodes nearest to 0.0; in-range because every range
   includes zero. Convolution padding must be filled with this code —
   code 0 decodes to [lo], not to zero. *)
let zero_point lo hi =
  let z = Float.round (-.lo *. levels /. (hi -. lo)) in
  int_of_float (Float.max 0.0 (Float.min levels z))

let quantize_with_range tensor lo hi =
  if not (hi > lo) then invalid "Quantize: empty range [%g, %g]" lo hi;
  let scale = levels /. (hi -. lo) in
  let n = Tensor.numel tensor in
  let q = Tensor.zeros Dtype.U8 (Tensor.shape tensor) in
  let dst = Tensor.byte_buffer q in
  Parallel.parallel_for ~grain:4096 n (fun l h ->
      for i = l to h - 1 do
        let code = Float.round ((Tensor.flat_get_f tensor i -. lo) *. scale) in
        Bytes.unsafe_set dst i
          (Char.unsafe_chr
             (int_of_float (Float.max 0.0 (Float.min levels code))))
      done);
  q

let quantize tensor =
  let lo, hi = range_of tensor in
  (quantize_with_range tensor lo hi, lo, hi)

let dequantize q lo hi =
  let scale = scale_of lo hi in
  let n = Tensor.numel q in
  let out = Tensor.zeros Dtype.F32 (Tensor.shape q) in
  let o = Tensor.float_buffer out in
  (match Tensor.dtype q with
  | Dtype.U8 ->
      let src = Tensor.byte_buffer q in
      Parallel.parallel_for ~grain:4096 n (fun l h ->
          for i = l to h - 1 do
            o.(i) <-
              lo +. (float_of_int (Char.code (Bytes.unsafe_get src i)) *. scale)
          done)
  | _ ->
      (* int-backed codes (e.g. hand-built in tests) still decode *)
      for i = 0 to n - 1 do
        o.(i) <- lo +. (float_of_int (Tensor.flat_get_i q i) *. scale)
      done);
  out

let require_codes op operand q =
  if Tensor.dtype q <> Dtype.U8 then
    invalid "%s: %s must be uint8 codes (got %s)" op operand
      (Dtype.to_string (Tensor.dtype q))

let bias_vector op ~n = function
  | None -> None
  | Some bt ->
      let bs = Tensor.shape bt in
      if Array.length bs <> 1 || bs.(0) <> n then
        invalid "%s: bias must be a length-%d vector" op n;
      Some (Tensor.to_float_array bt)

(* One [m,k] x [k,n] slice of packed codes, integer-accumulated and
   rescaled into [out] at [obase] — the gemmlowp decomposition: with
   a = a_lo + sa*qa and b = b_lo + sb*qb,
     sum_p a_ip*b_pj = sa*sb*acc_ij + a_lo*sb*col_sum_j
                       + b_lo*sa*row_sum_i + a_lo*b_lo*k.
   Shards are disjoint row ranges and each output element is written by
   exactly one shard in a fixed accumulation order, so results are
   bit-identical across thread counts. Integer accumulators cannot
   overflow: 255*255*k stays far inside OCaml's 63-bit ints. *)
let gemm_q_into ~m ~k ~n ~a ~ao ~b ~bo ~a_lo ~a_hi ~b_lo ~b_hi ~bias ~relu
    ~out ~obase =
  let sa = scale_of a_lo a_hi and sb = scale_of b_lo b_hi in
  let col_sum = Array.make n 0 in
  for p = 0 to k - 1 do
    let bb = bo + (p * n) in
    for j = 0 to n - 1 do
      col_sum.(j) <- col_sum.(j) + Char.code (Bytes.unsafe_get b (bb + j))
    done
  done;
  let const_term = a_lo *. b_lo *. float_of_int k in
  Parallel.parallel_for
    ~grain:(grain_for ~item_cost:(k * n) ~target_work:32768)
    m
    (fun lo hi ->
      let acc = Array.make n 0 in
      for i = lo to hi - 1 do
        Array.fill acc 0 n 0;
        let abase = ao + (i * k) in
        let rs = ref 0 in
        for p = 0 to k - 1 do
          let aip = Char.code (Bytes.unsafe_get a (abase + p)) in
          if aip <> 0 then begin
            rs := !rs + aip;
            let bb = bo + (p * n) in
            for j = 0 to n - 1 do
              acc.(j) <-
                acc.(j) + (aip * Char.code (Bytes.unsafe_get b (bb + j)))
            done
          end
        done;
        let row_term = (b_lo *. sa *. float_of_int !rs) +. const_term in
        let ob = obase + (i * n) in
        for j = 0 to n - 1 do
          let v =
            (sa *. sb *. float_of_int acc.(j))
            +. (a_lo *. sb *. float_of_int col_sum.(j))
            +. row_term
          in
          let v = match bias with None -> v | Some bs -> v +. bs.(j) in
          out.(ob + j) <- (if relu && v < 0.0 then 0.0 else v)
        done
      done)

let quantized_matmul ?bias ?(relu = false) qa a_lo a_hi qb b_lo b_hi =
  let op = "QuantizedMatMul" in
  require_codes op "lhs" qa;
  require_codes op "rhs" qb;
  let sa = Tensor.shape qa and sb = Tensor.shape qb in
  let ra = Array.length sa and rb = Array.length sb in
  if ra < 2 || rb < 2 then
    invalid "%s: operands must be rank >= 2 (got ranks %d and %d)" op ra rb;
  let m = sa.(ra - 2) and k = sa.(ra - 1) in
  let kb = sb.(rb - 2) and n = sb.(rb - 1) in
  if kb <> k then invalid "%s: inner dims %d vs %d" op k kb;
  (* rhs is either a plain 2-D matrix shared by every batch slice of a
     (the common weights case) or batched alongside the lhs. *)
  let b_batched =
    if rb = 2 then false
    else begin
      if rb <> ra then
        invalid "%s: rhs must be 2-D or match lhs rank %d (got %d)" op ra rb;
      for i = 0 to ra - 3 do
        if sb.(i) <> sa.(i) then
          invalid "%s: batch dims %d vs %d at axis %d" op sa.(i) sb.(i) i
      done;
      true
    end
  in
  let batch = ref 1 in
  for i = 0 to ra - 3 do
    batch := !batch * sa.(i)
  done;
  let out_shape = Array.append (Array.sub sa 0 (ra - 2)) [| m; n |] in
  let out = Tensor.zeros Dtype.F32 out_shape in
  let o = Tensor.float_buffer out in
  let a = Tensor.byte_buffer qa and b = Tensor.byte_buffer qb in
  let bias = bias_vector op ~n bias in
  for bi = 0 to !batch - 1 do
    gemm_q_into ~m ~k ~n ~a ~ao:(bi * m * k) ~b
      ~bo:(if b_batched then bi * k * n else 0)
      ~a_lo ~a_hi ~b_lo ~b_hi ~bias ~relu ~out:o ~obase:(bi * m * n)
  done;
  out

(* im2col over codes: identical patch layout to Tensor_ops.im2col, but
   out-of-bounds (padding) entries hold the input's zero-point code —
   the code decoding to ~0.0 — so padding contributes (quantized) zeros
   to the contraction, matching the float conv's zero padding to within
   half a quantization step. *)
let im2col_q src ~ih ~iw ~ic ~fh ~fw ~oh ~ow ~sh ~sw ~ph ~pw ~rows ~zp =
  let kdim = fh * fw * ic in
  let cols = Bytes.make (rows * kdim) (Char.chr zp) in
  Parallel.parallel_for
    ~grain:(grain_for ~item_cost:kdim ~target_work:16384)
    rows
    (fun lo hi ->
      for rix = lo to hi - 1 do
        let x = rix mod ow in
        let by = rix / ow in
        let y = by mod oh in
        let b = by / oh in
        let rbase = rix * kdim in
        for ky = 0 to fh - 1 do
          let sy = (y * sh) + ky - ph in
          if sy >= 0 && sy < ih then
            for kx = 0 to fw - 1 do
              let sx = (x * sw) + kx - pw in
              if sx >= 0 && sx < iw then begin
                let ibase = ((((b * ih) + sy) * iw) + sx) * ic in
                let cbase = rbase + (((ky * fw) + kx) * ic) in
                Bytes.blit src ibase cols cbase ic
              end
            done
        done
      done);
  cols

let quantized_conv2d ?bias ?(relu = false) qin in_lo in_hi qf f_lo f_hi
    ~strides ~padding =
  let op = "QuantizedConv2D" in
  require_codes op "input" qin;
  require_codes op "filter" qf;
  let is = Tensor.shape qin and fs = Tensor.shape qf in
  if Array.length is <> 4 || Array.length fs <> 4 then
    invalid "%s: input NHWC and filter HWIO required" op;
  let batch = is.(0) and ih = is.(1) and iw = is.(2) and ic = is.(3) in
  let fh = fs.(0) and fw = fs.(1) and fic = fs.(2) and oc = fs.(3) in
  if ic <> fic then invalid "%s: channel mismatch %d vs %d" op ic fic;
  let sh, sw = strides in
  let oh, ph = Tensor_ops.conv_dim ~padding ~in_size:ih ~filter:fh ~stride:sh in
  let ow, pw = Tensor_ops.conv_dim ~padding ~in_size:iw ~filter:fw ~stride:sw in
  let rows = batch * oh * ow in
  let kdim = fh * fw * ic in
  let zp = zero_point in_lo in_hi in
  let cols =
    im2col_q (Tensor.byte_buffer qin) ~ih ~iw ~ic ~fh ~fw ~oh ~ow ~sh ~sw ~ph
      ~pw ~rows ~zp
  in
  let out = Tensor.zeros Dtype.F32 [| batch; oh; ow; oc |] in
  let bias = bias_vector op ~n:oc bias in
  gemm_q_into ~m:rows ~k:kdim ~n:oc ~a:cols ~ao:0 ~b:(Tensor.byte_buffer qf)
    ~bo:0 ~a_lo:in_lo ~a_hi:in_hi ~b_lo:f_lo ~b_hi:f_hi ~bias ~relu
    ~out:(Tensor.float_buffer out) ~obase:0;
  out

(* Kernel plumbing ---------------------------------------------------- *)

let scalar ctx i = Tensor.flat_get_f (K.input_tensor ctx i) 0

let range_outputs q lo hi =
  [| t q; t (Tensor.scalar_f lo); t (Tensor.scalar_f hi) |]

let strides_of node =
  match Node.attr_ints node "strides" with
  | [ a; b ] -> (a, b)
  | _ -> invalid "%s: strides must be a list of two ints" node.Node.name

let padding_of node =
  match Node.attr_string node "padding" with
  | "SAME" -> Tensor_ops.Same
  | "VALID" -> Tensor_ops.Valid
  | s -> invalid "%s: padding must be SAME or VALID, got %s" node.Node.name s

(* The codes-out contractions carry their fused epilogue as an attr:
   none | bias | relu | bias_relu; with bias the float bias vector is
   input 6. A calibrated output range rides as out_lo/out_hi attrs —
   absent, the kernel falls back to a dynamic min/max pass over the
   float intermediate. *)
let epilogue_of node =
  match
    Option.value ~default:"none"
      (Attr.find_string node.Node.attrs "epilogue")
  with
  | "none" -> (false, false)
  | "bias" -> (true, false)
  | "relu" -> (false, true)
  | "bias_relu" -> (true, true)
  | s -> invalid "%s: unknown epilogue %S" node.Node.name s

let out_range_of node =
  match
    ( Attr.find_float node.Node.attrs "out_lo",
      Attr.find_float node.Node.attrs "out_hi" )
  with
  | Some lo, Some hi -> Some (lo, hi)
  | _ -> None

let requantize node y =
  match out_range_of node with
  | Some (lo, hi) -> (quantize_with_range y lo hi, lo, hi)
  | None -> quantize y

let register () =
  K.register ~op_type:"Quantize" (fun ctx ->
      let q, lo, hi = quantize (K.input_tensor ctx 0) in
      range_outputs q lo hi);
  K.register ~op_type:"QuantizeRange" (fun ctx ->
      let node = ctx.K.node in
      let lo = Node.attr_float node "lo" and hi = Node.attr_float node "hi" in
      range_outputs (quantize_with_range (K.input_tensor ctx 0) lo hi) lo hi);
  K.register ~op_type:"Dequantize" (fun ctx ->
      let q = K.input_tensor ctx 0 in
      K.one (t (dequantize q (scalar ctx 1) (scalar ctx 2))));
  K.register ~op_type:"QuantizedMatMul" (fun ctx ->
      K.one
        (t
           (quantized_matmul (K.input_tensor ctx 0) (scalar ctx 1)
              (scalar ctx 2) (K.input_tensor ctx 3) (scalar ctx 4)
              (scalar ctx 5))));
  K.register ~op_type:"QuantizedConv2D" (fun ctx ->
      let node = ctx.K.node in
      K.one
        (t
           (quantized_conv2d (K.input_tensor ctx 0) (scalar ctx 1)
              (scalar ctx 2) (K.input_tensor ctx 3) (scalar ctx 4)
              (scalar ctx 5) ~strides:(strides_of node)
              ~padding:(padding_of node))));
  K.register ~op_type:"QuantizedMatMulQ" (fun ctx ->
      let node = ctx.K.node in
      let with_bias, relu = epilogue_of node in
      let bias = if with_bias then Some (K.input_tensor ctx 6) else None in
      let y =
        quantized_matmul ?bias ~relu (K.input_tensor ctx 0) (scalar ctx 1)
          (scalar ctx 2) (K.input_tensor ctx 3) (scalar ctx 4) (scalar ctx 5)
      in
      let q, lo, hi = requantize node y in
      range_outputs q lo hi);
  K.register ~op_type:"QuantizedConv2DQ" (fun ctx ->
      let node = ctx.K.node in
      let with_bias, relu = epilogue_of node in
      let bias = if with_bias then Some (K.input_tensor ctx 6) else None in
      let y =
        quantized_conv2d ?bias ~relu (K.input_tensor ctx 0) (scalar ctx 1)
          (scalar ctx 2) (K.input_tensor ctx 3) (scalar ctx 4) (scalar ctx 5)
          ~strides:(strides_of node) ~padding:(padding_of node)
      in
      let q, lo, hi = requantize node y in
      range_outputs q lo hi)
