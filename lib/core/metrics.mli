(** Process-wide, domain-safe metrics registry.

    Families of counters, gauges and histograms, keyed by name, with
    optional labels; each (name, labels) pair is one time series. All
    operations are safe to call from any domain or thread. Metric
    mutexes are leaf locks: instrumented code may update metrics while
    holding its own locks (queue mutex, rendezvous mutex, ...) without
    creating lock-order cycles, because metrics code never takes any
    lock other than its own.

    Handles returned by [Counter.v] / [Gauge.v] / [Histogram.v] are
    cheap to keep around; hot paths should create them once (at module
    or structure-creation time) and update them per event. Calling
    [v] again with the same name and labels returns the same series.

    Exporters: {!to_prometheus} renders the Prometheus text exposition
    format; {!to_json} renders a JSON snapshot. Both are deterministic
    (families and series sorted by name/labels). *)

type t
(** A registry: an isolated namespace of metric families. *)

val create : unit -> t

val default : t
(** The process-wide registry used by all built-in instrumentation. *)

val reset : t -> unit
(** Zero every series in the registry (counters, gauges, histogram sums,
    counts and buckets). Series and families remain registered. Mainly
    for tests. *)

module Counter : sig
  type m

  val v :
    ?registry:t -> ?help:string -> ?labels:(string * string) list ->
    string -> m
  (** Find or create the counter series [name]{[labels]}. Raises
      [Invalid_argument] if [name] is already registered with a
      different metric kind. *)

  val incr : m -> unit
  val add : m -> int -> unit
  val add_f : m -> float -> unit
  (** Negative increments are ignored (counters are monotone). *)

  val value : m -> float
end

module Gauge : sig
  type m

  val v :
    ?registry:t -> ?help:string -> ?labels:(string * string) list ->
    string -> m

  val set : m -> float -> unit
  val add : m -> float -> unit
  val incr : m -> unit
  val decr : m -> unit

  val max_to : m -> float -> unit
  (** Raise the gauge to [x] if [x] is larger (high-watermark). *)

  val value : m -> float
end

module Histogram : sig
  type m

  val v :
    ?registry:t -> ?help:string -> ?labels:(string * string) list ->
    ?buckets:float array -> string -> m
  (** [buckets] are upper bounds, strictly increasing; defaults to a
      latency-oriented ladder from 10µs to 5s. The bucket layout is
      fixed by the first registration of the family. *)

  val observe : m -> float -> unit

  val time : m -> (unit -> 'a) -> 'a
  (** Run the thunk and observe its wall-clock duration in seconds,
      also on exception. *)

  val sum : m -> float
  val count : m -> int
end

(** {1 Kernel-timing gate}

    Per-kernel [gettimeofday] pairs are too expensive for the null-op
    dispatch benchmark, so per-op-type timing in the executor is off by
    default and enabled by tracing or by this process-wide flag.
    Kernel {e counts} are always collected. *)

val set_kernel_timing : bool -> unit
val kernel_timing : unit -> bool

(** {1 Snapshots and exporters} *)

type snapshot_sample = {
  name : string;
  kind : [ `Counter | `Gauge | `Histogram ];
  help : string;
  labels : (string * string) list;  (** sorted by label name *)
  value : float;  (** counter/gauge value; histogram sum *)
  count : int;  (** histogram observation count *)
  buckets : (float * int) list;  (** (upper bound, cumulative count) *)
}

val snapshot : t -> snapshot_sample list
(** Consistent-enough point-in-time view: each series is read under its
    own lock; the set of series is sorted by (name, labels). *)

val to_prometheus : t -> string
(** Prometheus text exposition format v0.0.4: [# HELP]/[# TYPE] headers,
    escaped label values, histograms as cumulative [_bucket{le=...}]
    plus [_sum]/[_count]. *)

val to_json : t -> string

val find_value : ?labels:(string * string) list -> t -> string -> float option
(** Look up one series' value (histogram: sum) in a fresh snapshot.
    Mainly for tests. *)
