open Octf_tensor

let magic = "OCTFCKPT1"

exception Corrupt of { source : string; detail : string }

let () =
  Printexc.register_printer (function
    | Corrupt { source; detail } ->
        Some (Printf.sprintf "corrupt checkpoint %s: %s" source detail)
    | _ -> None)

let corrupt source fmt =
  Printf.ksprintf (fun detail -> raise (Corrupt { source; detail })) fmt

let write_string oc s =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int (String.length s));
  output_bytes oc b;
  output_string oc s

let write_int64 oc i =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int i);
  output_bytes oc b

let write_tensor oc name t =
  write_string oc name;
  write_string oc (Dtype.to_string (Tensor.dtype t));
  let shape = Tensor.shape t in
  write_int64 oc (Shape.rank shape);
  Array.iter (fun d -> write_int64 oc d) shape;
  let n = Tensor.numel t in
  write_int64 oc n;
  match Tensor.dtype t with
  | Dtype.F32 | Dtype.F64 ->
      let b = Bytes.create (n * 8) in
      for i = 0 to n - 1 do
        Bytes.set_int64_le b (i * 8)
          (Int64.bits_of_float (Tensor.flat_get_f t i))
      done;
      output_bytes oc b
  | Dtype.I32 | Dtype.I64 | Dtype.Bool ->
      let b = Bytes.create (n * 8) in
      for i = 0 to n - 1 do
        Bytes.set_int64_le b (i * 8) (Int64.of_int (Tensor.flat_get_i t i))
      done;
      output_bytes oc b
  | Dtype.U8 -> output_bytes oc (Tensor.byte_buffer t)
  | Dtype.String ->
      Array.iter (fun s -> write_string oc s) (Tensor.string_buffer t)

(* The read side trusts nothing: every length field is bounded by the
   bytes actually left in the file before any allocation, truncation
   anywhere is a structured {!Corrupt} (never a bare [End_of_file]),
   and dtype / rank / shape fields are validated before use. A
   half-written or bit-flipped checkpoint must surface as a
   recoverable, descriptive failure in the [Restore] kernel. *)

let max_rank = 64

let input_exact ic path n what =
  try really_input_string ic n
  with End_of_file -> corrupt path "truncated %s" what

let remaining ic = in_channel_length ic - pos_in ic

let read_int ic path what =
  Int64.to_int
    (Bytes.get_int64_le (Bytes.of_string (input_exact ic path 8 what)) 0)

let read_string ic path what =
  let len =
    Int32.to_int
      (Bytes.get_int32_le
         (Bytes.of_string (input_exact ic path 4 (what ^ " length")))
         0)
  in
  if len < 0 || len > remaining ic then
    corrupt path "%s length %d out of range (%d bytes left)" what len
      (remaining ic);
  input_exact ic path len what

let read_tensor ic path =
  let name = read_string ic path "tensor name" in
  let dname = read_string ic path "dtype" in
  let dtype =
    try Dtype.of_string dname
    with Invalid_argument _ -> corrupt path "unknown dtype %S" dname
  in
  let rank = read_int ic path "rank" in
  if rank < 0 || rank > max_rank then corrupt path "bad tensor rank %d" rank;
  let shape =
    Array.init rank (fun _ ->
        let d = read_int ic path "dimension" in
        if d < 0 then corrupt path "negative dimension %d" d;
        d)
  in
  let n = read_int ic path "element count" in
  if n < 0 || n <> Shape.numel shape then
    corrupt path "element count %d does not match shape" n;
  let need_bytes b =
    if b > remaining ic then
      corrupt path "truncated tensor data for %S (%d bytes needed, %d left)"
        name b (remaining ic)
  in
  let t =
    match dtype with
    | Dtype.F32 | Dtype.F64 ->
        need_bytes (n * 8);
        let b = Bytes.of_string (input_exact ic path (n * 8) "tensor data") in
        Tensor.of_float_array ~dtype shape
          (Array.init n (fun i ->
               Int64.float_of_bits (Bytes.get_int64_le b (i * 8))))
    | Dtype.I32 | Dtype.I64 ->
        need_bytes (n * 8);
        let b = Bytes.of_string (input_exact ic path (n * 8) "tensor data") in
        Tensor.of_int_array ~dtype shape
          (Array.init n (fun i -> Int64.to_int (Bytes.get_int64_le b (i * 8))))
    | Dtype.U8 ->
        need_bytes n;
        Tensor.of_bytes shape
          (Bytes.of_string (input_exact ic path n "tensor data"))
    | Dtype.Bool ->
        need_bytes (n * 8);
        let b = Bytes.of_string (input_exact ic path (n * 8) "tensor data") in
        Tensor.of_bool_array shape
          (Array.init n (fun i -> Bytes.get_int64_le b (i * 8) <> 0L))
    | Dtype.String ->
        Tensor.of_string_array shape
          (Array.init n (fun _ -> read_string ic path "string element"))
  in
  (name, t)

let write path entries =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc magic;
     write_int64 oc (List.length entries);
     List.iter (fun (name, t) -> write_tensor oc name t) entries;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let m = input_exact ic path (String.length magic) "magic" in
      if m <> magic then corrupt path "bad magic %S" m;
      let count = read_int ic path "entry count" in
      (* each entry needs at least its name + dtype length fields *)
      if count < 0 || count > remaining ic then
        corrupt path "entry count %d out of range" count;
      List.init count (fun _ -> read_tensor ic path))

let read path name =
  match List.assoc_opt name (read_all path) with
  | Some t -> t
  | None -> raise Not_found

let names path = List.map fst (read_all path)
