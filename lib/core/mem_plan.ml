(* Memory-planning policy shared by both executor paths (§5 of the
   paper; the 2015 white paper's "Common Subexpression / Memory"
   passes): which op outputs own a fresh buffer, which consumers are
   safe to free behind, and the process-wide enable switch + metrics.

   The lifetime analysis itself lives in Executor; this module only
   answers the static questions that make dropping and reusing a stored
   value sound:

   - [fresh_output_op op]: every output of [op] is a freshly allocated
     buffer no other value shares.  Pass-through ops (Identity, Switch,
     Merge, control-flow plumbing), buffer-sharing reshapes, variable
     reads/writes and queue/rendezvous endpoints all fail this test —
     their outputs may alias graph state that outlives the step.

   - [retains_input op]: [op] may keep a reference to an input tensor
     beyond its own execution (stores it into a variable, a queue, the
     rendezvous, passes the value through as its own output, or wraps
     it via a buffer-sharing reshape).  An endpoint with such a
     consumer must never hand its buffer to the pool when dropped. *)

let enabled_ref =
  ref
    (match Sys.getenv_opt "OCTF_MEMORY_PLANNING" with
    | Some ("0" | "off" | "false" | "no") -> false
    | _ -> true)

let enabled () = !enabled_ref
let set_enabled v = enabled_ref := v

let fresh_output_op = function
  | "Add" | "Sub" | "Mul" | "Div" | "Pow" | "Mod" | "Maximum" | "Minimum"
  | "Neg" | "Abs" | "Sign" | "Exp" | "Log" | "Sqrt" | "Square" | "Reciprocal"
  | "Equal" | "Less" | "Greater" | "GreaterEqual" | "Select" | "AddN"
  | "FusedElementwise"
  | "MatMul" | "Cast" | "ArgMax" | "ReduceSum" | "ReduceMean" | "ReduceMax"
  | "ShapeOf" | "ZerosLike" | "OnesLike" | "Fill" | "RandomUniform"
  | "RandomNormal" | "Relu" | "Sigmoid" | "Tanh" | "Softmax" | "LogSoftmax"
  | "ReluGrad" | "SoftmaxCrossEntropy" | "Conv2D" | "Conv2DGradInput"
  | "Conv2DGradFilter" | "MaxPool" | "MaxPoolGrad" | "AvgPool" | "AvgPoolGrad"
  | "Transpose" | "Concat" | "Slice" | "Pad" | "Tile" | "OneHot" | "Gather"
  | "Split" | "RangeLike" | "RandomIndices" | "DynamicPartition"
  | "DynamicStitch" | "ScatterIntoShape" | "ReduceSumGrad" | "ReduceMeanGrad"
  | "ConcatGrad" | "SliceGrad" | "PadGrad" | "TileGrad"
  | "DynamicPartitionGrad" | "Quantize" | "Dequantize" | "QuantizedMatMul" ->
      true
  (* Everything else — Const (graph attribute), Placeholder, Identity,
     StopGradient, Reshape/ExpandDims/ReshapeLike/Pack/Unpack (share
     buffers), Variable/Read/Assign* (variable state), Switch/Merge/
     Enter/Exit/NextIteration/LoopCond (pass-through), SumToShape
     (returns its input when shapes already match), queue, rendezvous,
     TensorArray and IO ops — is conservatively not fresh. *)
  | _ -> false

let retains_input = function
  | "Identity" | "StopGradient" | "Reshape" | "ExpandDims" | "ReshapeLike"
  | "SumToShape" | "Switch" | "Merge" | "Enter" | "Exit" | "NextIteration"
  | "LoopCond" | "Send" | "Enqueue" | "EnqueueMany" | "Assign"
  | "TensorArrayWrite" ->
      true
  | _ -> false

(* Metrics: live/peak bytes are process-wide gauges fed by every
   executing step; pool counters mirror Buffer_pool's own counters
   (lib/tensor cannot depend on Metrics, so the executor syncs them at
   step boundaries). *)

let m_live =
  Metrics.Gauge.v
    ~help:"Live intermediate tensor bytes tracked by the memory planner"
    "octf_mem_live_bytes"

let m_peak =
  Metrics.Gauge.v ~help:"High watermark of octf_mem_live_bytes"
    "octf_mem_peak_bytes"

let m_pool_hits =
  Metrics.Gauge.v ~help:"Buffer pool allocations served from a free list"
    "octf_mem_pool_hits"

let m_pool_misses =
  Metrics.Gauge.v
    ~help:"Buffer pool allocations that fell through to fresh allocation"
    "octf_mem_pool_misses"

let m_pool_evictions =
  Metrics.Gauge.v
    ~help:"Buffer releases dropped because the pool was at its byte bound"
    "octf_mem_pool_evictions"

let m_grants =
  Metrics.Counter.v
    ~help:"In-place (aliasing) buffer grants issued to kernels"
    "octf_mem_inplace_grants_total"

let live_add bytes =
  if bytes <> 0 then begin
    Metrics.Gauge.add m_live (float_of_int bytes);
    Metrics.Gauge.max_to m_peak (Metrics.Gauge.value m_live)
  end

let live_sub bytes =
  if bytes <> 0 then Metrics.Gauge.add m_live (float_of_int (-bytes))

let live_bytes () = int_of_float (Metrics.Gauge.value m_live)
let count_grant () = Metrics.Counter.incr m_grants

let sync_pool_metrics () =
  let s = Octf_tensor.Buffer_pool.stats () in
  Metrics.Gauge.set m_pool_hits (float_of_int s.Octf_tensor.Buffer_pool.hits);
  Metrics.Gauge.set m_pool_misses
    (float_of_int s.Octf_tensor.Buffer_pool.misses);
  Metrics.Gauge.set m_pool_evictions
    (float_of_int s.Octf_tensor.Buffer_pool.evictions)
