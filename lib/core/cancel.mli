(** Cooperative cancellation tokens with deadlines (§4.2 of the
    preliminary white paper: the lightweight failure-detection path).

    One token is shared by every partition of a step. Cancellation is
    cooperative: compute loops poll ({!check}) between kernels, and
    blocking primitives (rendezvous waits, queue waits) register a
    {e waker} so that {!cancel} — or deadline expiry — broadcasts their
    condition variable and the woken waiter observes the cancelled state.
    A token with a deadline owns a small watchdog thread whose only job
    is to fire those wakers if every thread of the step is parked when
    the deadline passes; polling callers detect expiry synchronously. *)

type t

val create : ?parent:t -> ?deadline:float -> unit -> t
(** [create ~deadline:budget ()] cancels itself [budget] seconds from
    now with cause {!Step_failure.Deadline_exceeded}. Without
    [?deadline] the token only cancels explicitly (and spawns no
    watchdog).

    [?parent] links the new token under a longer-lived one: when the
    parent fires (explicitly or by its own deadline), the child fires
    with the parent's cause — this is how a pipeline's group token
    tears down every in-flight step. The link is removed by
    {!complete}, so a group token supervising thousands of steps does
    not accumulate dead wakers. *)

val cancel : t -> reason:string -> unit
(** Cancel with cause {!Step_failure.Cancelled}. First cancellation
    wins; later calls (and a later deadline) are no-ops. Runs all
    registered wakers. *)

val cancelled : t -> Step_failure.cause option
(** The cancellation cause, if any — checking the deadline
    synchronously, so callers never depend on watchdog latency. *)

val check : t -> unit
(** @raise Step_failure.Error when cancelled. *)

val check_opt : t option -> unit

val add_waker : t -> (unit -> unit) -> int
(** Register a callback run on cancellation, without the token's lock
    held — from the cancelling thread, or from the watchdog thread when
    a polling caller detects deadline expiry (the poller may hold the
    very lock its waker takes, so it never fires wakers itself).
    Returns an id for {!remove_waker}. A waker registered after
    cancellation never runs: blocking waits must re-check {!cancelled}
    before parking. *)

val remove_waker : t -> int -> unit

val with_waker : t option -> (unit -> unit) -> (unit -> 'a) -> 'a
(** [with_waker cancel wake f] runs [f] with [wake] registered on
    [cancel] (no-op when [cancel] is [None]). *)

val complete : t -> unit
(** Mark the run finished so a deadline watchdog exits promptly, and
    unlink the token from its [?parent] (if any). *)
