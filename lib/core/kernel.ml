type ctx = {
  node : Node.t;
  inputs : Value.t array;
  resources : Resource_manager.t;
  rendezvous : Rendezvous.t option;
  rng : Octf_tensor.Rng.t;
  step_id : int;
  cancel : Cancel.t option;
  grants : (int * int) list;
  var_snapshot : (string -> Octf_tensor.Tensor.t option) option;
}

type t = ctx -> Value.t array

exception Kernel_error of string * exn

let registry : (string * Device.device_type, t) Hashtbl.t = Hashtbl.create 256

(* Declared May_alias (input_idx, output_idx) pairs per op type.  A
   declaration is a capability, not a promise: the executor grants a
   pair only when its lifetime analysis proves the input buffer is
   exclusively owned (refcount 1, not fed/fetched/variable-backed), and
   the kernel may still decline (e.g. a broadcast changed the output
   size). *)
let alias_registry : (string, (int * int) list) Hashtbl.t = Hashtbl.create 64

let register ~op_type ?(devices = [ Device.CPU; Device.GPU ]) ?(aliases = [])
    kernel =
  if aliases <> [] then Hashtbl.replace alias_registry op_type aliases;
  List.iter
    (fun d -> Hashtbl.replace registry (op_type, d) kernel)
    devices

let lookup ~op_type ~device = Hashtbl.find_opt registry (op_type, device)

let aliases ~op_type =
  Option.value ~default:[] (Hashtbl.find_opt alias_registry op_type)

let supported_devices ~op_type =
  List.filter
    (fun d -> Hashtbl.mem registry (op_type, d))
    [ Device.CPU; Device.GPU; Device.TPU ]

let is_registered ~op_type = supported_devices ~op_type <> []

let input_tensor ctx i = Value.tensor ctx.inputs.(i)

let input_var ctx i = Value.variable ctx.inputs.(i)

let input_queue ctx i = Value.queue ctx.inputs.(i)

let all_input_tensors ctx =
  Array.to_list (Array.map Value.tensor ctx.inputs)

let one v = [| v |]

let snapshot_read ctx (v : Resource.variable) =
  match ctx.var_snapshot with
  | Some lookup -> (
      match lookup v.Resource.var_name with
      | Some t -> t
      | None -> Resource.variable_read v)
  | None -> Resource.variable_read v

let granted_input ctx ~output =
  List.find_map
    (fun (i, o) ->
      if o = output then
        match ctx.inputs.(i) with
        | Value.Tensor t -> Some t
        | _ -> None
      else None)
    ctx.grants

let granted_buffer ctx ~output =
  match granted_input ctx ~output with
  | Some t when Octf_tensor.Dtype.is_floating (Octf_tensor.Tensor.dtype t) ->
      Some (Octf_tensor.Tensor.float_buffer t)
  | _ -> None
