type ctx = {
  node : Node.t;
  inputs : Value.t array;
  resources : Resource_manager.t;
  rendezvous : Rendezvous.t option;
  rng : Octf_tensor.Rng.t;
  step_id : int;
  cancel : Cancel.t option;
}

type t = ctx -> Value.t array

exception Kernel_error of string * exn

let registry : (string * Device.device_type, t) Hashtbl.t = Hashtbl.create 256

let register ~op_type ?(devices = [ Device.CPU; Device.GPU ]) kernel =
  List.iter
    (fun d -> Hashtbl.replace registry (op_type, d) kernel)
    devices

let lookup ~op_type ~device = Hashtbl.find_opt registry (op_type, device)

let supported_devices ~op_type =
  List.filter
    (fun d -> Hashtbl.mem registry (op_type, d))
    [ Device.CPU; Device.GPU; Device.TPU ]

let is_registered ~op_type = supported_devices ~op_type <> []

let input_tensor ctx i = Value.tensor ctx.inputs.(i)

let input_var ctx i = Value.variable ctx.inputs.(i)

let input_queue ctx i = Value.queue ctx.inputs.(i)

let all_input_tensors ctx =
  Array.to_list (Array.map Value.tensor ctx.inputs)

let one v = [| v |]
