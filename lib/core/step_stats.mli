(** Per-step execution statistics — TensorFlow's [StepStats] shape.

    One record per executed node: timing, placement, execution lane and
    output payload bytes, restricted to a single step. This is the
    structured per-step view that supersedes scanning raw {!Tracer}
    event lists; build one with {!of_tracer} from the tracer that
    observed the step (as {!Session.run_with_metadata} does when
    [collect_stats] is set).

    Invariant: {!total_time} over a [Step_stats.t] built from a tracer
    that saw exactly one step equals [Tracer.total_time] on that tracer
    — both sum the same per-kernel durations. *)

type node_stats = {
  node : string;  (** node (operation) name in the graph *)
  op_type : string;
  device : string;
  lane : int;  (** executing domain id; see {!Tracer.event} *)
  start : float;  (** seconds, [Unix.gettimeofday] clock *)
  duration : float;  (** kernel wall-clock seconds *)
  output_bytes : int;  (** payload bytes (Recv tensors; 0 otherwise) *)
  shards : int;
      (** intra-op shards the kernel dispatched; 0 = serial loops *)
  peak_bytes : int;
      (** live planner-tracked tensor bytes when the node finished *)
  fused : int;
      (** original operation count a [FusedElementwise] kernel replaced
          ({!Tracer.event.fused}); [0] for ordinary nodes *)
}

type t = { step_id : int; nodes : node_stats list }

val of_tracer : step_id:int -> Tracer.t -> t
(** Extract the events of [step_id] from a tracer, in recording order. *)

val total_time : t -> float
(** Summed kernel durations, in seconds. *)

val total_bytes : t -> int

val by_op_type : t -> (string * int * float) list
(** Per op type: (type, invocations, total seconds), slowest first. *)

val fusion_groups : t -> (string * int * float) list
(** Every fused kernel executed in the step:
    [(node name, original nodes replaced, duration seconds)] — one entry
    per [FusedElementwise] node, in recording order. Empty when the fuse
    pass did not run (or found nothing to collapse). *)

val pp_summary : Format.formatter -> t -> unit
