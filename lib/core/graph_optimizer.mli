(** Master-side graph optimizations (§5), as a declared pass pipeline.

    "Since the master sees the overall computation for a step, it applies
    standard optimizations such as common subexpression elimination and
    constant folding; pruning is a form of dead code elimination."

    Each step compilation runs a caller-chosen list of {!pass}es over
    the step's subgraph. Rewriting passes ({!Constant_fold}, {!Cse},
    {!Freeze}) mutate the graph in place by repointing consumer edges:
    they never mutate an existing node's input array (a new node record
    replaces it), so executors holding references to old records are
    unaffected. A rewrite leaves the losing duplicates disconnected —
    follow it with a {!Prune} pass (as {!default_pipeline} does) to drop
    them from the executed node set. *)

open Octf_tensor

(** One step of the optimization pipeline. *)
type pass =
  | Prune
      (** Dead-code elimination (§3.2): recompute the executed node set
          as everything backward-reachable from the step's fetches and
          targets, not expanding past fed nodes. Also the required
          cleanup after any rewriting pass. *)
  | Constant_fold
      (** Evaluate pure operations whose inputs are all constants and
          replace them with [Const] nodes. *)
  | Cse
      (** Merge pure operations with identical type, attributes, inputs
          and placement constraints onto one canonical node. Control
          dependencies compare as a set. *)
  | Fuse
      (** Collapse maximal chains/trees of pure elementwise operations
          (Add/Sub/Mul/Div/Neg/Exp/Relu/Sigmoid/Tanh/..., AddN,
          ReluGrad) into single [FusedElementwise] nodes whose "expr"
          attribute carries the operation tree in postfix
          ({!Octf_tensor.Fused_eval}). The fused kernel makes one pass
          over one output buffer instead of one pass per op, with
          bit-identical results. Interior nodes must be pure, unfed,
          unfetched, single-consumer, control-edge free and on the
          root's device. Follow with {!Prune}. *)
  | Freeze of (string -> Tensor.t option)
      (** Fold trained variables into constants: every [Read] whose
          variable name the lookup resolves is replaced by a [Const]
          holding the returned tensor. The inference path of the frozen
          step no longer touches variable state, so a following
          {!Prune} drops the [Variable] nodes and the whole training
          subgraph from the executed set. Variables the lookup returns
          [None] for (e.g. uninitialized) are left untouched. *)
  | Quantize of (string -> (float * float) option)
      (** Rewrite eligible MatMul / Conv2D subgraphs of a frozen
          inference graph into int8 islands (§5): activations pass
          through [Quantize] (or [QuantizeRange], when the lookup
          yields a calibrated [(lo, hi)] for the input endpoint name —
          ["name"] or ["name:k"]), weights are pre-quantized at rewrite
          time into packed uint8 [Const]s (4x smaller), and the
          contraction runs as a quantized kernel. When the lookup
          yields a range for the island's {e output} node name, the
          island absorbs a bias-Add/Relu epilogue into a codes-out
          kernel followed by an explicit [Dequantize]; consecutive
          calibrated islands then exchange codes directly (the
          Dequantize→Quantize pair between them is elided — the
          producer's range becomes authoritative). Fetched nodes are
          never rewritten, so final logits stay float. Inert on
          training and F64 graphs: the weight operand must be an F32
          [Const], which only {!Freeze} produces. Pass
          [(fun _ -> None)] for uncalibrated dynamic quantization.
          Follow with {!Prune}. *)

val default_pipeline : pass list
(** [[Constant_fold; Prune; Cse; Prune]] — what sessions run per step
    compilation (after {!run}'s implicit initial prune) unless
    configured otherwise ({!Session.Config.t.passes}). The mid-pipeline
    prune refreshes the node set so constants minted by folding are
    visible to CSE: rewriting passes operate on the {e current} set,
    and nodes added by a rewrite enter it at the next {!Prune}. *)

val fused_pipeline : pass list
(** {!default_pipeline} [@ [Fuse; Prune]] — what sessions run when the
    fusion knob resolves on ({!Session.Config.t.fusion}, [OCTF_FUSION],
    default on). Fusion runs last so folded constants are external
    inputs and CSE-merged duplicates carry honest consumer counts. *)

val pass_name : pass -> string
(** Stable lowercase name ("prune", "constant_fold", "cse", "fuse",
    "freeze", "quantize") for logs and metrics labels. *)

val run :
  Graph.t ->
  passes:pass list ->
  feeds:Node.endpoint list ->
  fetches:Node.endpoint list ->
  targets:int list ->
  int list
(** Run the pipeline over the step defined by [feeds]/[fetches]/[targets]
    and return the node ids the executor should compile (ascending).
    The pipeline starts from an initial {!Prune} (the step definition
    itself); each listed pass then transforms the graph or the node
    set. Fed nodes are never folded, merged or frozen. *)

val optimize : Graph.t -> nodes:int list -> feeds:Node.endpoint list -> unit
(** @deprecated Thin wrapper from before passes were declarable: runs
    [Constant_fold] then [Cse] over the given node set, without the
    trailing re-prune. Use {!run}. *)

val is_pure : Node.t -> bool
(** Operations eligible for folding/merging: stateless, side-effect free,
    not control flow, not communication, not fed at runtime. *)
