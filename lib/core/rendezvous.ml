exception Aborted of string

(* The key format agreed between a Send/Recv pair. Scoping the key by
   step id means even a rendezvous shared across in-flight steps can
   never deliver step N's tensor to step N+1's Recv — per-step isolation
   holds by construction, not only because sessions happen to allocate
   one rendezvous per step today. *)
let step_key ~step_id ~send_device ~recv_device ~tensor_name =
  Printf.sprintf "step:%d;%s;%s;%s" step_id send_device recv_device
    tensor_name

(* Process-wide series, aggregated over all live rendezvous objects
   (sessions create one per distributed step). *)
let m_pending =
  Metrics.Gauge.v ~help:"Tensors sent but not yet received"
    "octf_rendezvous_pending"

let m_sends =
  Metrics.Counter.v ~help:"Rendezvous send operations"
    "octf_rendezvous_sends_total"

let m_recvs =
  Metrics.Counter.v ~help:"Rendezvous recv completions"
    "octf_rendezvous_recvs_total"

let m_send_bytes =
  Metrics.Counter.v ~help:"Tensor bytes passed to rendezvous send"
    "octf_rendezvous_send_bytes_total"

let m_recv_bytes =
  Metrics.Counter.v ~help:"Tensor bytes delivered by rendezvous recv"
    "octf_rendezvous_recv_bytes_total"

let m_aborts =
  Metrics.Counter.v ~help:"Rendezvous aborts" "octf_rendezvous_aborts_total"

type t = {
  table : (string, Value.t) Hashtbl.t;
  mutable aborted : string option;
  mutable gen : int;
  mutex : Mutex.t;
  cond : Condition.t;
  route : (key:string -> Value.t -> bool) option;
      (* Out-of-process delivery hook (Octf_net): consulted by [send]
         before the local table, outside the mutex (it does network
         I/O). Returns true when it consumed the value — the key's
         receiver lives in another process. *)
}

let create ?route () =
  {
    table = Hashtbl.create 32;
    aborted = None;
    gen = 0;
    mutex = Mutex.create ();
    cond = Condition.create ();
    route;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Wake this rendezvous' waiters when [cancel] fires. The waker takes
   the mutex before broadcasting: a waiter between its cancel check and
   Condition.wait still holds the mutex, so the broadcast cannot land in
   that window and be missed. *)
let wake t () =
  Mutex.lock t.mutex;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let local_send t ~key v =
  with_lock t (fun () ->
      if Hashtbl.mem t.table key then
        raise (Step_failure.error (Step_failure.Duplicate_send key));
      Hashtbl.replace t.table key v;
      t.gen <- t.gen + 1;
      Metrics.Counter.incr m_sends;
      Metrics.Counter.add m_send_bytes (Value.byte_size v);
      Metrics.Gauge.incr m_pending;
      Condition.broadcast t.cond)

let send t ~key v =
  match t.route with
  | Some route when route ~key v ->
      (* Delivered into another process; that side's rendezvous counts
         it as pending. The route raises a structured Step_failure on
         transport failure, surfacing through the Send kernel. *)
      Metrics.Counter.incr m_sends;
      Metrics.Counter.add m_send_bytes (Value.byte_size v)
  | _ -> local_send t ~key v

let recv ?cancel t ~key =
  Cancel.with_waker cancel (wake t) (fun () ->
      with_lock t (fun () ->
          let rec wait () =
            (match t.aborted with Some r -> raise (Aborted r) | None -> ());
            Cancel.check_opt cancel;
            match Hashtbl.find_opt t.table key with
            | Some v ->
                Hashtbl.remove t.table key;
                Metrics.Counter.incr m_recvs;
                Metrics.Counter.add m_recv_bytes (Value.byte_size v);
                Metrics.Gauge.decr m_pending;
                v
            | None ->
                Condition.wait t.cond t.mutex;
                wait ()
          in
          wait ()))

let try_recv t ~key =
  with_lock t (fun () ->
      (match t.aborted with Some r -> raise (Aborted r) | None -> ());
      match Hashtbl.find_opt t.table key with
      | Some v ->
          Hashtbl.remove t.table key;
          Metrics.Counter.incr m_recvs;
          Metrics.Counter.add m_recv_bytes (Value.byte_size v);
          Metrics.Gauge.decr m_pending;
          Some v
      | None -> None)

let generation t = with_lock t (fun () -> t.gen)

let wait_new ?cancel t ~last =
  Cancel.with_waker cancel (wake t) (fun () ->
      with_lock t (fun () ->
          let rec wait () =
            (match t.aborted with Some r -> raise (Aborted r) | None -> ());
            Cancel.check_opt cancel;
            if t.gen > last then t.gen
            else begin
              Condition.wait t.cond t.mutex;
              wait ()
            end
          in
          wait ()))

let abort t ~reason =
  with_lock t (fun () ->
      if t.route <> None then
        (* A routed rendezvous is process-global and outlives any one
           step: a sticky abort here (say, from a Send kernel whose
           connection just died) would poison every later step in the
           process. Per-step teardown is the step's cancel token plus
           [drop_step]; wake waiters and leave the table usable. *)
        Condition.broadcast t.cond
      else begin
        if t.aborted = None then begin
          Metrics.Counter.incr m_aborts;
          (* Entries in an aborted rendezvous can never be received
             (recv raises); stop counting them as pending. The table
             itself is kept so pending_keys still reports them for
             diagnostics. *)
          Metrics.Gauge.add m_pending
            (-.float_of_int (Hashtbl.length t.table))
        end;
        t.aborted <- Some reason;
        Condition.broadcast t.cond
      end)

let pending_keys t =
  with_lock t (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) t.table [])

let pending_count t = with_lock t (fun () -> Hashtbl.length t.table)

(* Scrub entries leaked by a finished step — sends whose paired Recv
   was cancelled, abandoned, or raced the step's failure. Long-lived
   rendezvous (the process-global network one) would otherwise grow
   without bound. *)
let drop_step t ~step_id =
  let prefix = Printf.sprintf "step:%d;" step_id in
  let pl = String.length prefix in
  with_lock t (fun () ->
      let doomed =
        Hashtbl.fold
          (fun k _ acc ->
            if String.length k >= pl && String.sub k 0 pl = prefix then
              k :: acc
            else acc)
          t.table []
      in
      List.iter
        (fun k ->
          Hashtbl.remove t.table k;
          if t.aborted = None then Metrics.Gauge.decr m_pending)
        doomed;
      List.length doomed)
