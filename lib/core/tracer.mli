(** Step tracing — the distributed profiler of §5.

    "a distributed profiler that traces the execution of a computation
    across multiple devices and tasks."

    A tracer collects one event per kernel invocation (operation name,
    type, device, wall-clock start and duration, step id) from every
    partition executor participating in a step, and renders them as a
    summary or as Chrome-trace JSON (load in chrome://tracing or
    Perfetto; one row per device). Obtain one populated from a real step
    with {!Session.run_traced}. *)

type event = {
  name : string;
  op_type : string;
  device : string;
  lane : int;
      (** Execution lane: the id of the OCaml domain that ran the
          kernel. [0] is the coordinating (main) domain; worker domains
          of the {!Domain_pool} report their own ids, so a pool-scheduled
          step shows one lane per worker. *)
  start : float;  (** seconds, [Unix.gettimeofday] clock *)
  duration : float;
  step_id : int;
  bytes : int;
      (** Payload bytes attributable to the kernel: the size of the
          tensor received for a [Recv], 0 for most compute kernels. *)
  shards : int;
      (** Intra-op shards dispatched while the kernel ran on this domain
          ({!Octf_tensor.Parallel}); [0] for kernels that ran their loops
          serially. *)
  peak_bytes : int;
      (** Live planner-tracked tensor bytes observed when the kernel
          finished (its own outputs included) — the per-node memory
          high-watermark view used by the memory planner; [0] when the
          executor does not track memory for the step. *)
  fused : int;
      (** Number of original graph nodes this kernel stands in for: a
          [FusedElementwise] kernel minted by {!Graph_optimizer}'s fuse
          pass reports the size of its fusion group (from the node's
          ["fused_nodes"] attribute); [0] for ordinary kernels. *)
}

type t

val create : unit -> t

val record : t -> event -> unit
(** Called by the executors, from the coordinating thread and — under
    the pool scheduler — from worker domains concurrently; the event
    list is guarded by the tracer's mutex. *)

val lanes : t -> (string * int) list
(** Distinct (device, lane) pairs observed, sorted. *)

val events : t -> event list
(** In recording order. *)

val by_op_type : t -> (string * int * float) list
(** Per op type: (type, invocations, total seconds), slowest first. *)

val total_time : t -> float
(** Sum of kernel durations across all devices. *)

val total_bytes : t -> int
(** Sum of per-event payload bytes. *)

val lane_utilization : t -> (string * int * float * float) list
(** Per (device, lane): (device, lane, busy seconds, utilization), where
    utilization is busy time divided by the trace's wall-clock span
    (first event start to last event end). Sorted by (device, lane). *)

val to_chrome_trace : t -> string
(** Chrome trace-event JSON ("traceEvents" array of "X" events, one
    track per device {e and} execution lane). When the trace holds
    events from more than one step — a tracer shared across a pipelined
    session's in-flight steps — tracks are further split per step
    ([device/step:S/lane:L]), so inter-step overlap renders as parallel
    rows. *)

val pp_summary : Format.formatter -> t -> unit
