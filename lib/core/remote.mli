(** Capability record linking a session to an out-of-process runtime.

    [Octf.Session] cannot depend on [Octf_net] (the network library
    depends on this one), so [Octf_net.Runtime.runner] builds this
    record and [Session.create ~remote] consumes it. With a runner
    installed, the session executes partitions placed on {!is_local}
    devices in-process as usual, shares the runner's {!rendezvous} for
    all tensor traffic (its route hook forwards cross-process sends over
    TCP), and dispatches each remote task's partitions through
    {!run_partitions} — a blocking Run_step RPC. *)

type runner = {
  is_local : Device.t -> bool;
      (** does this device's (job, task) live in the current process? *)
  rendezvous : Rendezvous.t;
      (** process-global routed rendezvous shared by every step; never
          aborted (per-step cleanup uses [Cancel] tokens and
          {!Rendezvous.drop_step}) *)
  run_partitions :
    job:string ->
    task:int ->
    step_id:int ->
    feeds:(Node.endpoint * Octf_tensor.Tensor.t) list ->
    fetches:Node.endpoint list ->
    targets:int list ->
    deadline:float option ->
    cancel:Cancel.t option ->
    ((Node.endpoint * Value.t) list, Step_failure.t) result;
      (** run the partitions owned by [(job, task)] remotely under the
          caller's [step_id]; blocks until the peer's Step_done or a
          structured failure (transport loss, deadline, remote error) *)
  retire_step : step_id:int -> unit;
      (** called by the session when a step finishes (success or
          failure): drops the step's leaked rendezvous entries and
          arranges for late tensor frames under that id to be
          discarded *)
}
