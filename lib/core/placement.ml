exception Placement_error of string

(* Ops whose output is a reference handle; their consumers must be
   colocated with them so state never crosses a device boundary. *)
let produces_resource = function
  | "Variable" | "FIFOQueue" | "RandomShuffleQueue" -> true
  | _ -> false

module Uf = struct
  let create n = Array.init n (fun i -> i)

  let rec find t i = if t.(i) = i then i else find t t.(i)

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then t.(rb) <- ra
end

let groups_of graph ~nodes =
  let ids = Array.of_list nodes in
  let index = Hashtbl.create (Array.length ids) in
  Array.iteri (fun i id -> Hashtbl.replace index id i) ids;
  let uf = Uf.create (Array.length ids) in
  Array.iter
    (fun id ->
      let n = Graph.get graph id in
      Array.iter
        (fun (e : Node.endpoint) ->
          match Hashtbl.find_opt index e.node_id with
          | Some src_i
            when produces_resource (Graph.get graph e.node_id).Node.op_type ->
              Uf.union uf src_i (Hashtbl.find index id)
          | Some _ | None -> ())
        n.Node.inputs)
    ids;
  let table = Hashtbl.create 16 in
  Array.iteri
    (fun i id ->
      let root = Uf.find uf i in
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt table root)
      in
      Hashtbl.replace table root (id :: existing))
    ids;
  Hashtbl.fold (fun _ g acc -> List.rev g :: acc) table []

let colocation_groups = groups_of

let place graph ~nodes ~devices =
  Builtin_kernels.ensure ();
  if devices = [] then raise (Placement_error "no devices");
  let load = Hashtbl.create 8 in
  let bump d n =
    Hashtbl.replace load d (n + Option.value ~default:0 (Hashtbl.find_opt load d))
  in
  (* Account for pre-existing assignments in load balancing. *)
  Graph.iter graph (fun n ->
      match n.Node.assigned_device with
      | Some d -> bump d 1
      | None -> ());
  (* Deterministic group order (lowest member id first): placement must
     be a pure function of the graph so that every process of an SPMD
     cluster — each compiling its own subset of steps — derives the
     identical assignment. Hashtbl fold order or load history must not
     leak into the result. *)
  let groups =
    List.sort
      (fun a b -> compare (List.fold_left min max_int a) (List.fold_left min max_int b))
      (groups_of graph ~nodes)
  in
  List.iter
    (fun group ->
      let members = List.map (Graph.get graph) group in
      let unassigned =
        List.filter (fun (n : Node.t) -> n.Node.assigned_device = None) members
      in
      if unassigned <> [] then begin
        (* Merge every member's partial spec. *)
        let spec =
          List.fold_left
            (fun acc (n : Node.t) ->
              try Device.merge_specs acc n.Node.device_spec
              with Invalid_argument _ ->
                raise
                  (Placement_error
                     (Printf.sprintf
                        "conflicting device constraints in colocation group \
                         of %s"
                        n.Node.name)))
            Device.unconstrained members
        in
        (* Existing assignments pin the group. *)
        let pinned =
          List.filter_map (fun (n : Node.t) -> n.Node.assigned_device) members
        in
        let feasible_types (n : Node.t) =
          let types = Kernel.supported_devices ~op_type:n.Node.op_type in
          if types = [] then
            raise
              (Placement_error
                 (Printf.sprintf "no kernel registered for op %s (node %s)"
                    n.Node.op_type n.Node.name));
          types
        in
        let group_types =
          List.fold_left
            (fun acc n ->
              List.filter (fun t -> List.mem t (feasible_types n)) acc)
            [ Device.CPU; Device.GPU; Device.TPU ]
            members
        in
        let candidates =
          match pinned with
          | d :: _ -> [ d ]
          | [] ->
              List.filter
                (fun d ->
                  Device.matches spec d
                  && List.mem d.Device.dev_type group_types)
                devices
        in
        match candidates with
        | [] ->
            raise
              (Placement_error
                 (Printf.sprintf
                    "no feasible device for colocation group of %s \
                     (constraint %s, feasible types %s)"
                    (List.hd members).Node.name
                    (Device.spec_to_string spec)
                    (String.concat ","
                       (List.map Device.device_type_to_string group_types))))
        | _ ->
            (* Pick the least-loaded candidate. *)
            let best =
              List.fold_left
                (fun acc d ->
                  let l =
                    Option.value ~default:0 (Hashtbl.find_opt load d)
                  in
                  match acc with
                  | None -> Some (d, l)
                  | Some (_, bl) when l < bl -> Some (d, l)
                  | Some _ -> acc)
                None candidates
            in
            let d = fst (Option.get best) in
            List.iter
              (fun (n : Node.t) ->
                if n.Node.assigned_device = None then begin
                  if not (Device.matches n.Node.device_spec d) then
                    raise
                      (Placement_error
                         (Printf.sprintf
                            "device %s violates constraint %s of node %s"
                            (Device.to_string d)
                            (Device.spec_to_string n.Node.device_spec)
                            n.Node.name));
                  n.Node.assigned_device <- Some d
                end)
              members;
            bump d (List.length unassigned)
      end)
    groups
