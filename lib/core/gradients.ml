open Octf_tensor
module B = Builder

type grad =
  | Dense of B.output
  | Sparse of {
      indices : B.output;
      values : B.output;
      dense_shape : B.output;
    }

type grad_fn = B.t -> Node.t -> B.output option array -> grad option list

let registry : (string, grad_fn) Hashtbl.t = Hashtbl.create 64

let register_gradient ~op_type fn = Hashtbl.replace registry op_type fn

let densify b = function
  | Dense o -> o
  | Sparse { indices; values; dense_shape } ->
      B.scatter_into_shape b dense_shape indices values

(* Sum a non-empty list of gradient contributions. All-sparse sums stay
   sparse (concatenated slices; scatter accumulation handles duplicate
   indices); mixed sums densify. *)
let sum_grads b = function
  | [] -> None
  | [ g ] -> Some g
  | gs ->
      let all_sparse =
        List.for_all (function Sparse _ -> true | Dense _ -> false) gs
      in
      if all_sparse then begin
        let parts =
          List.map
            (function
              | Sparse { indices; values; dense_shape } ->
                  (indices, values, dense_shape)
              | Dense _ -> assert false)
            gs
        in
        let indices =
          B.concat b ~axis:0 (List.map (fun (i, _, _) -> i) parts)
        in
        let values =
          B.concat b ~axis:0 (List.map (fun (_, v, _) -> v) parts)
        in
        let dense_shape =
          match parts with (_, _, d) :: _ -> d | [] -> assert false
        in
        Some (Sparse { indices; values; dense_shape })
      end
      else Some (Dense (B.add_n b (List.map (densify b) gs)))

(* --------------------------------------------------------------- *)
(* Built-in gradient functions                                      *)
(* --------------------------------------------------------------- *)

let inp b node i =
  let (e : Node.endpoint) = node.Node.inputs.(i) in
  B.output ~index:e.index (Graph.get (B.graph b) e.node_id)

let out node i = B.output ~index:i node

let dy0 dys =
  match dys.(0) with
  | Some d -> d
  | None -> invalid_arg "Gradients: missing output gradient"

let dense1 g = [ Some (Dense g) ]

let dense2 g1 g2 = [ Some (Dense g1); Some (Dense g2) ]

(* Restore a broadcast operand's shape by summing the expanded axes. *)
let sts b dy operand = B.sum_to_shape b dy (B.shape_of b operand)

let ensure_builtins =
  lazy
    begin
      let reg = register_gradient in
      reg ~op_type:"Add" (fun b n dys ->
          let dy = dy0 dys in
          dense2 (sts b dy (inp b n 0)) (sts b dy (inp b n 1)));
      reg ~op_type:"Sub" (fun b n dys ->
          let dy = dy0 dys in
          dense2 (sts b dy (inp b n 0)) (sts b (B.neg b dy) (inp b n 1)));
      reg ~op_type:"Mul" (fun b n dys ->
          let dy = dy0 dys in
          let x = inp b n 0 and y = inp b n 1 in
          dense2 (sts b (B.mul b dy y) x) (sts b (B.mul b dy x) y));
      reg ~op_type:"Div" (fun b n dys ->
          let dy = dy0 dys in
          let x = inp b n 0 and y = inp b n 1 in
          let dx = B.div b dy y in
          let dyy = B.neg b (B.div b (B.mul b dy x) (B.mul b y y)) in
          dense2 (sts b dx x) (sts b dyy y));
      reg ~op_type:"Pow" (fun b n dys ->
          let dy = dy0 dys in
          let x = inp b n 0 and p = inp b n 1 in
          let y = out n 0 in
          ignore y;
          let dx =
            B.mul b dy
              (B.mul b p (B.pow b x (B.sub b p (B.ones_like b p))))
          in
          let dp = B.mul b dy (B.mul b (B.pow b x p) (B.log b x)) in
          dense2 (sts b dx x) (sts b dp p));
      (* Select rather than mask-and-multiply: it keeps the gradient in
         dy's dtype (a cast-to-F32 mask would silently demote F64). *)
      reg ~op_type:"Maximum" (fun b n dys ->
          let dy = dy0 dys in
          let x = inp b n 0 and y = inp b n 1 in
          let zero = B.zeros_like b dy in
          let gx = B.select b (B.greater_equal b x y) dy zero in
          let gy = B.select b (B.greater b y x) dy zero in
          dense2 (sts b gx x) (sts b gy y));
      reg ~op_type:"Minimum" (fun b n dys ->
          let dy = dy0 dys in
          let x = inp b n 0 and y = inp b n 1 in
          let zero = B.zeros_like b dy in
          let gx = B.select b (B.greater_equal b y x) dy zero in
          let gy = B.select b (B.greater b x y) dy zero in
          dense2 (sts b gx x) (sts b gy y));
      reg ~op_type:"Neg" (fun b _ dys -> dense1 (B.neg b (dy0 dys)));
      reg ~op_type:"Abs" (fun b n dys ->
          dense1 (B.mul b (dy0 dys) (B.sign b (inp b n 0))));
      reg ~op_type:"Exp" (fun b n dys ->
          dense1 (B.mul b (dy0 dys) (out n 0)));
      reg ~op_type:"Log" (fun b n dys ->
          dense1 (B.div b (dy0 dys) (inp b n 0)));
      reg ~op_type:"Sqrt" (fun b n dys ->
          let y = out n 0 in
          dense1 (B.div b (dy0 dys) (B.add b y y)));
      reg ~op_type:"Square" (fun b n dys ->
          let x = inp b n 0 in
          dense1 (B.mul b (dy0 dys) (B.add b x x)));
      reg ~op_type:"Reciprocal" (fun b n dys ->
          let y = out n 0 in
          dense1 (B.neg b (B.mul b (dy0 dys) (B.mul b y y))));
      reg ~op_type:"Relu" (fun b n dys ->
          dense1 (B.relu_grad b (dy0 dys) (inp b n 0)));
      reg ~op_type:"Sigmoid" (fun b n dys ->
          let y = out n 0 in
          dense1
            (B.mul b (dy0 dys)
               (B.mul b y (B.sub b (B.ones_like b y) y))));
      reg ~op_type:"Tanh" (fun b n dys ->
          let y = out n 0 in
          dense1
            (B.mul b (dy0 dys) (B.sub b (B.ones_like b y) (B.mul b y y))));
      (* The AddN kernel broadcasts like Add, so each input's gradient
         must be reduced back to that input's shape — returning the raw
         [dy] hands a [2;3]-shaped gradient to a [3]-shaped operand. *)
      reg ~op_type:"AddN" (fun b n dys ->
          let dy = dy0 dys in
          List.init (Array.length n.Node.inputs) (fun i ->
              Some (Dense (sts b dy (inp b n i)))));
      reg ~op_type:"MatMul" (fun b n dys ->
          let dy = dy0 dys in
          let a = inp b n 0 and bb = inp b n 1 in
          let ta = Node.attr_bool n "transpose_a"
          and tb = Node.attr_bool n "transpose_b" in
          let da, db =
            match (ta, tb) with
            | false, false ->
                ( B.matmul b dy bb ~transpose_b:true,
                  B.matmul b a dy ~transpose_a:true )
            | true, false ->
                (B.matmul b bb dy ~transpose_b:true, B.matmul b a dy)
            | false, true ->
                (B.matmul b dy bb, B.matmul b dy a ~transpose_a:true)
            | true, true ->
                ( B.matmul b bb dy ~transpose_a:true ~transpose_b:true,
                  B.matmul b dy a ~transpose_a:true ~transpose_b:true )
          in
          dense2 da db);
      reg ~op_type:"Identity" (fun _ _ dys -> dense1 (dy0 dys));
      reg ~op_type:"Cast" (fun b _ dys ->
          dense1 (B.cast b (dy0 dys) Dtype.F32));
      reg ~op_type:"Select" (fun b n dys ->
          let dy = dy0 dys in
          let cond = inp b n 0 in
          let zeros = B.zeros_like b dy in
          [
            None;
            Some (Dense (sts b (B.select b cond dy zeros) (inp b n 1)));
            Some (Dense (sts b (B.select b cond zeros dy) (inp b n 2)));
          ]);
      reg ~op_type:"Reshape" (fun b n dys ->
          dense1 (B.reshape_like b (dy0 dys) (inp b n 0)));
      reg ~op_type:"ExpandDims" (fun b n dys ->
          dense1 (B.reshape_like b (dy0 dys) (inp b n 0)));
      reg ~op_type:"ReshapeLike" (fun b n dys ->
          [ Some (Dense (B.reshape_like b (dy0 dys) (inp b n 0))); None ]);
      reg ~op_type:"Transpose" (fun b n dys ->
          let perm = Attr.find_ints n.Node.attrs "perm" in
          let inv =
            Option.map
              (fun p ->
                let arr = Array.of_list p in
                let inv = Array.make (Array.length arr) 0 in
                Array.iteri (fun i v -> inv.(v) <- i) arr;
                inv)
              perm
          in
          dense1 (B.transpose b ?perm:inv (dy0 dys)));
      reg ~op_type:"Concat" (fun b n dys ->
          let dy = dy0 dys in
          let axis = Node.attr_int n "axis" in
          let num = Array.length n.Node.inputs in
          let xs = List.init num (fun i -> inp b n i) in
          let node =
            B.op b
              ~attrs:[ ("axis", Attr.Int axis); ("n", Attr.Int num) ]
              ~op_type:"ConcatGrad" (dy :: xs)
          in
          List.init num (fun i -> Some (Dense (B.output ~index:i node))));
      reg ~op_type:"Slice" (fun b n dys ->
          let node =
            B.op b ~attrs:n.Node.attrs ~op_type:"SliceGrad"
              [ inp b n 0; dy0 dys ]
          in
          dense1 (B.output node));
      reg ~op_type:"Pad" (fun b n dys ->
          let node =
            B.op b ~attrs:n.Node.attrs ~op_type:"PadGrad"
              [ inp b n 0; dy0 dys ]
          in
          dense1 (B.output node));
      reg ~op_type:"Tile" (fun b n dys ->
          let node =
            B.op b ~attrs:n.Node.attrs ~op_type:"TileGrad"
              [ inp b n 0; dy0 dys ]
          in
          dense1 (B.output node));
      reg ~op_type:"ReduceSum" (fun b n dys ->
          let node =
            B.op b ~attrs:n.Node.attrs ~op_type:"ReduceSumGrad"
              [ inp b n 0; dy0 dys ]
          in
          dense1 (B.output node));
      reg ~op_type:"ReduceMean" (fun b n dys ->
          let node =
            B.op b ~attrs:n.Node.attrs ~op_type:"ReduceMeanGrad"
              [ inp b n 0; dy0 dys ]
          in
          dense1 (B.output node));
      reg ~op_type:"Gather" (fun b n dys ->
          let dy = dy0 dys in
          let params = inp b n 0 and indices = inp b n 1 in
          [
            Some
              (Sparse
                 {
                   indices;
                   values = dy;
                   dense_shape = B.shape_of b params;
                 });
            None;
          ]);
      reg ~op_type:"DynamicPartition" (fun b n dys ->
          let num = Node.attr_int n "num_partitions" in
          let dy_list =
            List.init num (fun i ->
                match dys.(i) with
                | Some d -> d
                | None -> B.zeros_like b (out n i))
          in
          let node =
            B.op b
              ~attrs:[ ("num_partitions", Attr.Int num) ]
              ~op_type:"DynamicPartitionGrad"
              (inp b n 1 :: dy_list)
          in
          [ Some (Dense (B.output node)); None ]);
      reg ~op_type:"DynamicStitch" (fun b n dys ->
          let dy = dy0 dys in
          let num = Node.attr_int n "n" in
          let index_grads = List.init num (fun _ -> None) in
          let data_grads =
            List.init num (fun i ->
                Some (Dense (B.gather b dy (inp b n i))))
          in
          index_grads @ data_grads);
      reg ~op_type:"Pack" (fun b n dys ->
          let dy = dy0 dys in
          let num = Array.length n.Node.inputs in
          let node =
            B.op b ~attrs:[ ("num", Attr.Int num) ] ~op_type:"Unpack" [ dy ]
          in
          List.init num (fun i -> Some (Dense (B.output ~index:i node))));
      reg ~op_type:"Unpack" (fun b n dys ->
          let num = Node.attr_int n "num" in
          let pieces =
            List.init num (fun i ->
                match dys.(i) with
                | Some d -> d
                | None -> B.zeros_like b (out n i))
          in
          dense1 (B.pack b pieces));
      reg ~op_type:"Split" (fun b n dys ->
          let num = Node.attr_int n "num" in
          let axis = Node.attr_int n "axis" in
          let pieces =
            List.init num (fun i ->
                match dys.(i) with
                | Some d -> d
                | None -> B.zeros_like b (out n i))
          in
          dense1 (B.concat b ~axis pieces));
      reg ~op_type:"Softmax" (fun b n dys ->
          let dy = dy0 dys in
          let y = out n 0 in
          let s =
            B.reduce_sum b ~axes:[ 1 ] ~keep_dims:true (B.mul b dy y)
          in
          dense1 (B.mul b (B.sub b dy s) y));
      reg ~op_type:"LogSoftmax" (fun b n dys ->
          let dy = dy0 dys in
          let x = inp b n 0 in
          let s = B.reduce_sum b ~axes:[ 1 ] ~keep_dims:true dy in
          dense1 (B.sub b dy (B.mul b (B.softmax b x) s)));
      reg ~op_type:"SoftmaxCrossEntropy" (fun b n dys ->
          (* Output 0 is the per-example loss; output 1 caches
             softmax(logits) - labels. d loss_i / d logits = backprop_i. *)
          match dys.(0) with
          | None -> [ None; None ]
          | Some dl ->
              let backprop = out n 1 in
              let scaled =
                B.mul b backprop (B.expand_dims b dl ~axis:1)
              in
              [ Some (Dense scaled); None ]);
      reg ~op_type:"Conv2D" (fun b n dys ->
          let dy = dy0 dys in
          let input = inp b n 0 and filter = inp b n 1 in
          let gi =
            B.op b ~attrs:n.Node.attrs ~op_type:"Conv2DGradInput"
              [ input; filter; dy ]
          in
          let gf =
            B.op b ~attrs:n.Node.attrs ~op_type:"Conv2DGradFilter"
              [ input; filter; dy ]
          in
          dense2 (B.output gi) (B.output gf));
      reg ~op_type:"MaxPool" (fun b n dys ->
          let node =
            B.op b ~attrs:n.Node.attrs ~op_type:"MaxPoolGrad"
              [ inp b n 0; dy0 dys ]
          in
          dense1 (B.output node));
      reg ~op_type:"AvgPool" (fun b n dys ->
          let node =
            B.op b ~attrs:n.Node.attrs ~op_type:"AvgPoolGrad"
              [ inp b n 0; dy0 dys ]
          in
          dense1 (B.output node));
      (* Conditional gradients (§4.1): a Merge built by Builder.cond
         carries its predicate, so its gradient demultiplexes the
         incoming gradient back onto the taken branch; the gradient of
         Switch multiplexes whichever branch gradients are live. Merges
         without a predicate annotation (loop merges) stop gradients. *)
      reg ~op_type:"Merge" (fun b n dys ->
          match
            (Attr.find_int n.Node.attrs "pred_node",
             Attr.find_int n.Node.attrs "pred_index")
          with
          | Some pred_node, Some pred_index ->
              let pred =
                B.output ~index:pred_index (Graph.get (B.graph b) pred_node)
              in
              let g_false, g_true = B.switch b (dy0 dys) pred in
              (* Builder.cond's Merge inputs are [then; else]. *)
              [ Some (Dense g_true); Some (Dense g_false) ]
          | _ ->
              List.init (Array.length n.Node.inputs) (fun _ -> None));
      reg ~op_type:"Switch" (fun b _n dys ->
          (* dys.(0) is the false branch's gradient, dys.(1) the true
             branch's; at runtime exactly one is live and Merge forwards
             it. *)
          let live = List.filter_map Fun.id (Array.to_list dys) in
          match live with
          | [] -> [ None; None ]
          | [ g ] -> [ Some (Dense g); None ]
          | gs -> [ Some (Dense (B.merge b gs)); None ])
    end

let has_gradient ~op_type =
  Lazy.force ensure_builtins;
  Hashtbl.mem registry op_type

(* --------------------------------------------------------------- *)
(* Backward pass                                                     *)
(* --------------------------------------------------------------- *)

let gradients b ~ys ~xs ?grad_ys () =
  Lazy.force ensure_builtins;
  let graph = B.graph b in
  let grad_ys =
    match grad_ys with
    | Some gs ->
        if List.length gs <> List.length ys then
          invalid_arg "Gradients.gradients: grad_ys length mismatch";
        gs
    | None -> List.map (fun y -> B.ones_like b y) ys
  in
  (* Nodes forward-reachable from xs... *)
  let consumers = Graph.consumers_of graph in
  let forward = Hashtbl.create 64 in
  let q = Queue.create () in
  List.iter
    (fun (x : B.output) ->
      let id = x.B.node.Node.id in
      if not (Hashtbl.mem forward id) then begin
        Hashtbl.replace forward id ();
        Queue.add id q
      end)
    xs;
  while not (Queue.is_empty q) do
    let id = Queue.pop q in
    if id < Array.length consumers then
      List.iter
        (fun c ->
          if not (Hashtbl.mem forward c) then begin
            Hashtbl.replace forward c ();
            Queue.add c q
          end)
        consumers.(id)
  done;
  (* ...intersected with ancestors of ys: the "between" set the paper's
     breadth-first search identifies. *)
  let between = Hashtbl.create 64 in
  List.iter
    (fun (y : B.output) ->
      let id = y.B.node.Node.id in
      if Hashtbl.mem forward id && not (Hashtbl.mem between id) then begin
        Hashtbl.replace between id ();
        Queue.add id q
      end)
    ys;
  while not (Queue.is_empty q) do
    let id = Queue.pop q in
    let n = Graph.get graph id in
    Array.iter
      (fun (e : Node.endpoint) ->
        if Hashtbl.mem forward e.node_id && not (Hashtbl.mem between e.node_id)
        then begin
          Hashtbl.replace between e.node_id ();
          Queue.add e.node_id q
        end)
      n.Node.inputs
  done;
  (* Accumulate gradient contributions per endpoint. *)
  let acc : (int * int, grad list) Hashtbl.t = Hashtbl.create 64 in
  let accumulate (e : Node.endpoint) g =
    let key = (e.node_id, e.index) in
    Hashtbl.replace acc key
      (g :: Option.value ~default:[] (Hashtbl.find_opt acc key))
  in
  List.iter2
    (fun (y : B.output) gy ->
      accumulate (B.endpoint_of_output y) (Dense gy))
    ys grad_ys;
  (* Reverse topological sweep over the between set. *)
  let order = List.rev (Graph.topological_order graph) in
  List.iter
    (fun (n : Node.t) ->
      if Hashtbl.mem between n.Node.id then begin
        (* xs stop the recursion: their accumulated grads are results. *)
        let is_x =
          List.exists
            (fun (x : B.output) -> x.B.node.Node.id = n.Node.id)
            xs
        in
        if not is_x then begin
          let n_out = Node.num_outputs n in
          let dys =
            Array.init n_out (fun i ->
                match Hashtbl.find_opt acc (n.Node.id, i) with
                | None -> None
                | Some gs ->
                    Option.map (densify b) (sum_grads b gs))
          in
          let any = Array.exists Option.is_some dys in
          if any then begin
            match Hashtbl.find_opt registry n.Node.op_type with
            | None -> ()  (* treated as stop_gradient *)
            | Some fn ->
                let input_grads = fn b n dys in
                if List.length input_grads <> Array.length n.Node.inputs then
                  invalid_arg
                    (Printf.sprintf
                       "gradient of %s returned %d grads for %d inputs"
                       n.Node.op_type (List.length input_grads)
                       (Array.length n.Node.inputs));
                List.iteri
                  (fun i g ->
                    match g with
                    | None -> ()
                    | Some g -> accumulate n.Node.inputs.(i) g)
                  input_grads
          end
        end
      end)
    order;
  List.map
    (fun (x : B.output) ->
      match Hashtbl.find_opt acc (x.B.node.Node.id, x.B.out) with
      | None -> None
      | Some gs -> sum_grads b gs)
    xs
