(* Domain-safe free lists of tensor backing buffers, keyed by exact
   element count (Tensor.create requires buffer_length = numel, so bins
   never need size-class rounding beyond the exact length).

   The executor returns a buffer here only when its static lifetime
   analysis proves no live reference remains (see Mem_plan in lib/core);
   kernels additionally release private scratch (im2col columns,
   transpose packs) that never escapes.  Taking from the pool is always
   safe — soundness lives entirely on the release side. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  pooled_bytes : int;
}

let mutex = Mutex.create ()
let float_bins : (int, float array list) Hashtbl.t = Hashtbl.create 64
let pooled_bytes = ref 0
let hits = ref 0
let misses = ref 0
let evictions = ref 0

(* Arrays below this many elements are cheaper to allocate than to
   funnel through a mutex; they bypass the pool (and its stats). *)
let min_pool_elems = 1024
let bytes_per_elem = 8

let default_limit_mb =
  match Sys.getenv_opt "OCTF_BUFFER_POOL_MB" with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n when n >= 0 -> n | _ -> 256)
  | None -> 256

let limit_bytes = ref (default_limit_mb * 1024 * 1024)

let set_limit_mb mb =
  Mutex.lock mutex;
  limit_bytes := max 0 mb * 1024 * 1024;
  Mutex.unlock mutex

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

(* Allocate a float buffer of exactly [n] elements, recycling a pooled
   one when available.  [zero] controls whether a recycled buffer is
   cleared; callers that overwrite every element pass ~zero:false. *)
let alloc_float ?(zero = true) n =
  if n < min_pool_elems then Array.make n 0.0
  else
    let recycled =
      with_lock (fun () ->
          match Hashtbl.find_opt float_bins n with
          | Some (buf :: rest) ->
              (if rest = [] then Hashtbl.remove float_bins n
               else Hashtbl.replace float_bins n rest);
              pooled_bytes := !pooled_bytes - (n * bytes_per_elem);
              incr hits;
              Some buf
          | Some [] | None ->
              incr misses;
              None)
    in
    match recycled with
    | Some buf ->
        if zero then Array.fill buf 0 n 0.0;
        buf
    | None -> Array.make n 0.0

(* Return a buffer to the pool.  The caller asserts nothing else can
   read or write it.  Over-budget releases are dropped (eviction). *)
let release_float buf =
  let n = Array.length buf in
  if n >= min_pool_elems then
    with_lock (fun () ->
        let sz = n * bytes_per_elem in
        if !pooled_bytes + sz <= !limit_bytes then begin
          let bin = Option.value ~default:[] (Hashtbl.find_opt float_bins n) in
          Hashtbl.replace float_bins n (buf :: bin);
          pooled_bytes := !pooled_bytes + sz
        end
        else incr evictions)

let stats () =
  with_lock (fun () ->
      {
        hits = !hits;
        misses = !misses;
        evictions = !evictions;
        pooled_bytes = !pooled_bytes;
      })

let clear () =
  with_lock (fun () ->
      Hashtbl.reset float_bins;
      pooled_bytes := 0;
      hits := 0;
      misses := 0;
      evictions := 0)
