type buffer =
  | Float_buf of float array
  | Int_buf of int array
  | Byte_buf of Bytes.t  (* U8: packed, one byte per element (§5 codes) *)
  | Bool_buf of bool array
  | String_buf of string array

type t = { dtype : Dtype.t; shape : Shape.t; buf : buffer }

let buffer_length = function
  | Float_buf a -> Array.length a
  | Int_buf a -> Array.length a
  | Byte_buf b -> Bytes.length b
  | Bool_buf a -> Array.length a
  | String_buf a -> Array.length a

let buffer_matches dtype buf =
  match (dtype, buf) with
  | (Dtype.F32 | Dtype.F64), Float_buf _ -> true
  | (Dtype.I32 | Dtype.I64), Int_buf _ -> true
  | Dtype.U8, Byte_buf _ -> true
  | Dtype.Bool, Bool_buf _ -> true
  | Dtype.String, String_buf _ -> true
  | _ -> false

let create dtype shape buf =
  Shape.validate shape;
  if not (buffer_matches dtype buf) then
    invalid_arg "Tensor.create: buffer kind does not match dtype";
  if buffer_length buf <> Shape.numel shape then
    invalid_arg
      (Printf.sprintf "Tensor.create: buffer length %d does not match %s"
         (buffer_length buf) (Shape.to_string shape));
  { dtype; shape; buf }

let alloc dtype shape =
  let n = Shape.numel shape in
  let buf =
    match dtype with
    | Dtype.F32 | Dtype.F64 -> Float_buf (Buffer_pool.alloc_float n)
    | Dtype.I32 | Dtype.I64 -> Int_buf (Array.make n 0)
    | Dtype.U8 -> Byte_buf (Bytes.make n '\000')
    | Dtype.Bool -> Bool_buf (Array.make n false)
    | Dtype.String -> String_buf (Array.make n "")
  in
  create dtype shape buf

let zeros dtype shape = alloc dtype shape

let full dtype shape v =
  let t = alloc dtype shape in
  (match t.buf with
  | Float_buf a -> Array.fill a 0 (Array.length a) v
  | Int_buf a -> Array.fill a 0 (Array.length a) (int_of_float v)
  | Byte_buf b ->
      Bytes.fill b 0 (Bytes.length b)
        (Char.chr (max 0 (min 255 (int_of_float v))))
  | Bool_buf a -> Array.fill a 0 (Array.length a) (v <> 0.0)
  | String_buf _ -> invalid_arg "Tensor.full: string tensor");
  t

let ones dtype shape = full dtype shape 1.0

let scalar_f ?(dtype = Dtype.F32) v = create dtype [||] (Float_buf [| v |])

let scalar_i ?(dtype = Dtype.I32) v = create dtype [||] (Int_buf [| v |])

let scalar_b v = create Dtype.Bool [||] (Bool_buf [| v |])

let scalar_s v = create Dtype.String [||] (String_buf [| v |])

let of_float_array ?(dtype = Dtype.F32) shape a =
  create dtype shape (Float_buf a)

let of_int_array ?(dtype = Dtype.I32) shape a = create dtype shape (Int_buf a)

let of_bool_array shape a = create Dtype.Bool shape (Bool_buf a)

let of_bytes shape b = create Dtype.U8 shape (Byte_buf b)

let of_string_array shape a = create Dtype.String shape (String_buf a)

let init_f ?(dtype = Dtype.F32) shape f =
  let n = Shape.numel shape in
  let a = Array.init n (fun i -> f (Shape.multi_index shape i)) in
  of_float_array ~dtype shape a

let iota ?(dtype = Dtype.I32) n =
  create dtype [| n |] (Int_buf (Array.init n (fun i -> i)))

let uniform ?(dtype = Dtype.F32) rng shape ~lo ~hi =
  let n = Shape.numel shape in
  of_float_array ~dtype shape (Array.init n (fun _ -> Rng.uniform rng ~lo ~hi))

let normal ?(dtype = Dtype.F32) rng shape ~mean ~stddev =
  let n = Shape.numel shape in
  of_float_array ~dtype shape
    (Array.init n (fun _ -> Rng.normal rng ~mean ~stddev))

let dtype t = t.dtype

let shape t = t.shape

let rank t = Shape.rank t.shape

let numel t = Shape.numel t.shape

let byte_size t = numel t * Dtype.byte_size t.dtype

let float_buffer t =
  match t.buf with
  | Float_buf a -> a
  | Int_buf _ | Byte_buf _ | Bool_buf _ | String_buf _ ->
      invalid_arg "Tensor.float_buffer: not a float tensor"

let int_buffer t =
  match t.buf with
  | Int_buf a -> a
  | Float_buf _ | Byte_buf _ | Bool_buf _ | String_buf _ ->
      invalid_arg "Tensor.int_buffer: not an int tensor"

let byte_buffer t =
  match t.buf with
  | Byte_buf b -> b
  | Float_buf _ | Int_buf _ | Bool_buf _ | String_buf _ ->
      invalid_arg "Tensor.byte_buffer: not a uint8 tensor"

let bool_buffer t =
  match t.buf with
  | Bool_buf a -> a
  | Float_buf _ | Int_buf _ | Byte_buf _ | String_buf _ ->
      invalid_arg "Tensor.bool_buffer: not a bool tensor"

let string_buffer t =
  match t.buf with
  | String_buf a -> a
  | Float_buf _ | Int_buf _ | Byte_buf _ | Bool_buf _ ->
      invalid_arg "Tensor.string_buffer: not a string tensor"

let flat_get_f t i =
  match t.buf with
  | Float_buf a -> a.(i)
  | Int_buf a -> float_of_int a.(i)
  | Byte_buf b -> float_of_int (Char.code (Bytes.get b i))
  | Bool_buf a -> if a.(i) then 1.0 else 0.0
  | String_buf _ -> invalid_arg "Tensor.flat_get_f: string tensor"

let flat_get_i t i =
  match t.buf with
  | Int_buf a -> a.(i)
  | Float_buf a -> int_of_float a.(i)
  | Byte_buf b -> Char.code (Bytes.get b i)
  | Bool_buf a -> if a.(i) then 1 else 0
  | String_buf _ -> invalid_arg "Tensor.flat_get_i: string tensor"

let flat_set_f t i v =
  match t.buf with
  | Float_buf a -> a.(i) <- v
  | Int_buf a -> a.(i) <- int_of_float v
  | Byte_buf b -> Bytes.set b i (Char.chr (max 0 (min 255 (int_of_float v))))
  | Bool_buf a -> a.(i) <- v <> 0.0
  | String_buf _ -> invalid_arg "Tensor.flat_set_f: string tensor"

let flat_set_i t i v =
  match t.buf with
  | Int_buf a -> a.(i) <- v
  | Float_buf a -> a.(i) <- float_of_int v
  | Byte_buf b -> Bytes.set b i (Char.chr (max 0 (min 255 v)))
  | Bool_buf a -> a.(i) <- v <> 0
  | String_buf _ -> invalid_arg "Tensor.flat_set_i: string tensor"

let get_f t idx = flat_get_f t (Shape.flat_index t.shape idx)

let get_i t idx = flat_get_i t (Shape.flat_index t.shape idx)

let get_s t idx = (string_buffer t).(Shape.flat_index t.shape idx)

let to_float_array t = Array.init (numel t) (fun i -> flat_get_f t i)

let to_int_array t = Array.init (numel t) (fun i -> flat_get_i t i)

let copy t =
  let buf =
    match t.buf with
    | Float_buf a -> Float_buf (Array.copy a)
    | Int_buf a -> Int_buf (Array.copy a)
    | Byte_buf b -> Byte_buf (Bytes.copy b)
    | Bool_buf a -> Bool_buf (Array.copy a)
    | String_buf a -> String_buf (Array.copy a)
  in
  { t with buf }

let reshape t new_shape =
  let inferred =
    let minus_ones = Array.to_list new_shape |> List.filter (fun d -> d = -1) in
    match minus_ones with
    | [] -> new_shape
    | [ _ ] ->
        let known =
          Array.fold_left (fun acc d -> if d = -1 then acc else acc * d) 1
            new_shape
        in
        if known = 0 || numel t mod known <> 0 then
          invalid_arg "Tensor.reshape: cannot infer dimension";
        Array.map (fun d -> if d = -1 then numel t / known else d) new_shape
    | _ -> invalid_arg "Tensor.reshape: more than one -1 dimension"
  in
  if Shape.numel inferred <> numel t then
    invalid_arg
      (Printf.sprintf "Tensor.reshape: %s -> %s element count mismatch"
         (Shape.to_string t.shape)
         (Shape.to_string inferred));
  { t with shape = inferred }

let cast t new_dtype =
  if Dtype.equal t.dtype new_dtype then copy t
  else
    match new_dtype with
    | Dtype.F32 | Dtype.F64 ->
        of_float_array ~dtype:new_dtype t.shape (to_float_array t)
    | Dtype.I32 | Dtype.I64 ->
        of_int_array ~dtype:new_dtype t.shape (to_int_array t)
    | Dtype.U8 ->
        let n = numel t in
        let b = Bytes.create n in
        for i = 0 to n - 1 do
          Bytes.set b i (Char.chr (max 0 (min 255 (flat_get_i t i))))
        done;
        of_bytes t.shape b
    | Dtype.Bool ->
        of_bool_array t.shape
          (Array.init (numel t) (fun i -> flat_get_f t i <> 0.0))
    | Dtype.String -> invalid_arg "Tensor.cast: cannot cast to string"

(* Elementwise loops shard over the flat index space; below this many
   elements the dispatch overhead outweighs the loop and the sharder
   runs inline. *)
let elementwise_grain = 8192

(* The executor may hand an input's backing buffer as [out] (in-place
   grant).  Elementwise loops read index [i] before writing index [i],
   so aliasing input and output is safe; buffers of the wrong length
   are ignored and a fresh one is allocated. *)
let use_or_alloc out n =
  match out with
  | Some o when Array.length o = n -> o
  | _ -> Buffer_pool.alloc_float ~zero:false n

let map_f ?out f t =
  let a = float_buffer t in
  let n = Array.length a in
  let out = use_or_alloc out n in
  Parallel.parallel_for ~grain:elementwise_grain n (fun lo hi ->
      for i = lo to hi - 1 do
        out.(i) <- f a.(i)
      done);
  { t with buf = Float_buf out }

(* Broadcast iteration: map an output flat index back into an operand by
   a precomputed per-dimension stride plan (stride 0 on broadcast
   dimensions), avoiding any per-element allocation. *)
type bplan = {
  bp_out_strides : int array;
  bp_out_dims : int array;
  bp_src_strides : int array;
}

let broadcast_plan t out_shape =
  let r = Shape.rank out_shape and rt = rank t in
  let out_strides = Shape.strides out_shape in
  let src_strides = Shape.strides t.shape in
  let bp_src_strides =
    Array.init r (fun d ->
        let td = d - (r - rt) in
        if td < 0 || t.shape.(td) = 1 then 0 else src_strides.(td))
  in
  { bp_out_strides = out_strides; bp_out_dims = Array.copy out_shape; bp_src_strides }

let plan_index plan i =
  let acc = ref 0 in
  for d = 0 to Array.length plan.bp_src_strides - 1 do
    let s = plan.bp_src_strides.(d) in
    if s <> 0 then
      acc := !acc + (i / plan.bp_out_strides.(d) mod plan.bp_out_dims.(d)) * s
  done;
  !acc

let broadcast_index t out_shape =
  if Shape.equal t.shape out_shape then fun i -> i
  else begin
    let plan = broadcast_plan t out_shape in
    fun i -> plan_index plan i
  end

let map2_generic ?out f a b =
  let out_shape = Shape.broadcast a.shape b.shape in
  let n = Shape.numel out_shape in
  (* A granted buffer aliasing [a] or [b] is only length-compatible
     when the aliased operand's broadcast plan is the identity, so the
     read-index-i-before-write-index-i discipline below holds in the
     broadcast branch too. *)
  let out = use_or_alloc out n in
  (if Shape.equal a.shape b.shape then
     match (a.buf, b.buf) with
     | Float_buf da, Float_buf db ->
         (* Fast path: direct float-array indexing. *)
         Parallel.parallel_for ~grain:elementwise_grain n (fun lo hi ->
             for i = lo to hi - 1 do
               out.(i) <- f da.(i) db.(i)
             done)
     | _ ->
         Parallel.parallel_for ~grain:elementwise_grain n (fun lo hi ->
             for i = lo to hi - 1 do
               out.(i) <- f (flat_get_f a i) (flat_get_f b i)
             done)
   else begin
     let pa = broadcast_plan a out_shape and pb = broadcast_plan b out_shape in
     Parallel.parallel_for ~grain:(elementwise_grain / 2) n (fun lo hi ->
         for i = lo to hi - 1 do
           out.(i) <-
             f (flat_get_f a (plan_index pa i)) (flat_get_f b (plan_index pb i))
         done)
   end);
  (out_shape, out)

let map2_f ?out f a b =
  if not (Dtype.equal a.dtype b.dtype) then
    invalid_arg
      (Printf.sprintf "Tensor.map2_f: dtype mismatch %s vs %s"
         (Dtype.to_string a.dtype) (Dtype.to_string b.dtype));
  let out_shape, out = map2_generic ?out f a b in
  if Dtype.is_floating a.dtype then of_float_array ~dtype:a.dtype out_shape out
  else
    of_int_array ~dtype:a.dtype out_shape (Array.map int_of_float out)

let map2_cmp f a b =
  let out_shape, out =
    map2_generic (fun x y -> if f x y then 1.0 else 0.0) a b
  in
  of_bool_array out_shape (Array.map (fun v -> v <> 0.0) out)

let fold_f f init t =
  let acc = ref init in
  for i = 0 to numel t - 1 do
    acc := f !acc (flat_get_f t i)
  done;
  !acc

let equal a b =
  Dtype.equal a.dtype b.dtype && Shape.equal a.shape b.shape && a.buf = b.buf

let approx_equal ?(tol = 1e-6) a b =
  Shape.equal a.shape b.shape
  &&
  let ok = ref true in
  for i = 0 to numel a - 1 do
    if Float.abs (flat_get_f a i -. flat_get_f b i) > tol then ok := false
  done;
  !ok

let to_string t =
  let n = numel t in
  let max_show = 16 in
  let elt i =
    match t.buf with
    | Float_buf a -> Printf.sprintf "%g" a.(i)
    | Int_buf a -> string_of_int a.(i)
    | Byte_buf b -> string_of_int (Char.code (Bytes.get b i))
    | Bool_buf a -> string_of_bool a.(i)
    | String_buf a -> Printf.sprintf "%S" a.(i)
  in
  let shown = min n max_show in
  let body = String.concat " " (List.init shown elt) in
  let suffix = if n > max_show then " ..." else "" in
  Printf.sprintf "%s%s(%s %s)" body suffix
    (Dtype.to_string t.dtype)
    (Shape.to_string t.shape)

let pp fmt t = Format.pp_print_string fmt (to_string t)
