(* Evaluator for fused elementwise expressions. The graph optimizer's
   Fuse pass collapses a chain/tree of pure elementwise operations into
   one FusedElementwise node carrying a postfix expression over its
   external inputs; this module interprets that expression once per
   output element in a single pass over one output buffer, so a 10-op
   chain costs one read and one write of memory instead of ten.

   Bit-identity with unfused execution is the contract: each operation
   applies exactly the scalar function its standalone kernel applies
   (same primitive, same operand order), and for non-float dtypes every
   {e binary} operation truncates its result through [int_of_float],
   mirroring how [Tensor.map2_f] materializes integer tensors between
   unfused ops ([Tensor.map_f] does not truncate, so unary ops don't
   either). *)

type expr =
  | Input of int
  | Unary of string * expr
  | Binary of string * expr * expr

(* Floor-mod, duplicated from Tensor_ops.floor_mod (same formula so the
   fused path stays bit-identical to the Mod kernel). *)
let floor_mod a b =
  let r = Float.rem a b in
  if r <> 0.0 && r < 0.0 <> (b < 0.0) then r +. b else r

let unary_fn = function
  | "Neg" -> Some (fun x -> -.x)
  | "Abs" -> Some Float.abs
  | "Sign" ->
      Some (fun x -> if x > 0.0 then 1.0 else if x < 0.0 then -1.0 else 0.0)
  | "Exp" -> Some Stdlib.exp
  | "Log" -> Some Stdlib.log
  | "Sqrt" -> Some Stdlib.sqrt
  | "Square" -> Some (fun x -> x *. x)
  | "Reciprocal" -> Some (fun x -> 1.0 /. x)
  | "Relu" -> Some (fun x -> Float.max 0.0 x)
  | "Sigmoid" -> Some (fun x -> 1.0 /. (1.0 +. Stdlib.exp (-.x)))
  | "Tanh" -> Some Stdlib.tanh
  | _ -> None

let binary_fn = function
  | "Add" -> Some ( +. )
  | "Sub" -> Some ( -. )
  | "Mul" -> Some ( *. )
  | "Div" -> Some ( /. )
  | "Pow" -> Some ( ** )
  | "Mod" -> Some floor_mod
  | "Maximum" -> Some Float.max
  | "Minimum" -> Some Float.min
  | "ReluGrad" -> Some (fun g v -> if v > 0.0 then g else 0.0)
  | _ -> None

let is_unary op = Option.is_some (unary_fn op)
let is_binary op = Option.is_some (binary_fn op)

let rec num_inputs = function
  | Input k -> k + 1
  | Unary (_, e) -> num_inputs e
  | Binary (_, a, b) -> Stdlib.max (num_inputs a) (num_inputs b)

let rec op_count = function
  | Input _ -> 0
  | Unary (_, e) -> 1 + op_count e
  | Binary (_, a, b) -> 1 + op_count a + op_count b

(* Wire format for the node attribute: postfix token list, inputs as
   "in<k>", operations by their graph op_type. *)
let to_postfix expr =
  (* [go acc e] returns [rev (postfix e) @ acc]: operator first, then
     the second operand's tokens, then the first's — reversing at the
     end yields true postfix, which [of_postfix] pops b-then-a. *)
  let rec go acc = function
    | Input k -> Printf.sprintf "in%d" k :: acc
    | Unary (op, e) -> op :: go acc e
    | Binary (op, a, b) -> op :: go (go acc a) b
  in
  List.rev (go [] expr)

let of_postfix tokens =
  let stack = ref [] in
  List.iter
    (fun tok ->
      if String.length tok > 2 && String.sub tok 0 2 = "in" then
        match int_of_string_opt (String.sub tok 2 (String.length tok - 2)) with
        | Some k when k >= 0 -> stack := Input k :: !stack
        | _ -> invalid_arg ("Fused_eval.of_postfix: bad input token " ^ tok)
      else if is_unary tok then
        match !stack with
        | e :: rest -> stack := Unary (tok, e) :: rest
        | [] -> invalid_arg "Fused_eval.of_postfix: unary underflow"
      else if is_binary tok then
        match !stack with
        | b :: a :: rest -> stack := Binary (tok, a, b) :: rest
        | _ -> invalid_arg "Fused_eval.of_postfix: binary underflow"
      else invalid_arg ("Fused_eval.of_postfix: unknown token " ^ tok))
    tokens;
  match !stack with
  | [ e ] -> e
  | _ -> invalid_arg "Fused_eval.of_postfix: ill-formed expression"

(* Execution is a blocked stack machine: the postfix expression runs
   over L1-resident scratch chunks, one tight loop per operation per
   chunk, with the scalar primitive inlined into the loop body. A naive
   per-element closure tree pays a boxed-float allocation per operation
   per element (OCaml boxes float returns across closure calls), which
   costs more than the memory passes fusion is meant to save; blocking
   amortizes operator dispatch over [chunk] elements and keeps every
   intermediate in an unboxed float array. *)

let chunk = 1024

(* Per-op chunk loops with the primitive inlined. The scalar formulas
   are character-for-character those of [unary_fn]/[binary_fn] (which
   standalone kernels use), so blocked evaluation stays bit-identical.
   Unlisted ops fall back to the closure-per-element loop. *)
let unary_block op : float array -> int -> unit =
  match op with
  | "Neg" ->
      fun a len ->
        for i = 0 to len - 1 do
          a.(i) <- -.a.(i)
        done
  | "Abs" ->
      fun a len ->
        for i = 0 to len - 1 do
          a.(i) <- Float.abs a.(i)
        done
  | "Sign" ->
      fun a len ->
        for i = 0 to len - 1 do
          let x = a.(i) in
          a.(i) <- (if x > 0.0 then 1.0 else if x < 0.0 then -1.0 else 0.0)
        done
  | "Exp" ->
      fun a len ->
        for i = 0 to len - 1 do
          a.(i) <- Stdlib.exp a.(i)
        done
  | "Log" ->
      fun a len ->
        for i = 0 to len - 1 do
          a.(i) <- Stdlib.log a.(i)
        done
  | "Sqrt" ->
      fun a len ->
        for i = 0 to len - 1 do
          a.(i) <- Stdlib.sqrt a.(i)
        done
  | "Square" ->
      fun a len ->
        for i = 0 to len - 1 do
          let x = a.(i) in
          a.(i) <- x *. x
        done
  | "Reciprocal" ->
      fun a len ->
        for i = 0 to len - 1 do
          a.(i) <- 1.0 /. a.(i)
        done
  | "Relu" ->
      fun a len ->
        for i = 0 to len - 1 do
          a.(i) <- Float.max 0.0 a.(i)
        done
  | "Sigmoid" ->
      fun a len ->
        for i = 0 to len - 1 do
          a.(i) <- 1.0 /. (1.0 +. Stdlib.exp (-.a.(i)))
        done
  | "Tanh" ->
      fun a len ->
        for i = 0 to len - 1 do
          a.(i) <- Stdlib.tanh a.(i)
        done
  | op -> (
      match unary_fn op with
      | Some f ->
          fun a len ->
            for i = 0 to len - 1 do
              a.(i) <- f a.(i)
            done
      | None -> invalid_arg ("Fused_eval: unknown unary " ^ op))

let binary_block op : float array -> float array -> int -> unit =
  match op with
  | "Add" ->
      fun a b len ->
        for i = 0 to len - 1 do
          a.(i) <- a.(i) +. b.(i)
        done
  | "Sub" ->
      fun a b len ->
        for i = 0 to len - 1 do
          a.(i) <- a.(i) -. b.(i)
        done
  | "Mul" ->
      fun a b len ->
        for i = 0 to len - 1 do
          a.(i) <- a.(i) *. b.(i)
        done
  | "Div" ->
      fun a b len ->
        for i = 0 to len - 1 do
          a.(i) <- a.(i) /. b.(i)
        done
  | "Pow" ->
      fun a b len ->
        for i = 0 to len - 1 do
          a.(i) <- a.(i) ** b.(i)
        done
  | "Mod" ->
      fun a b len ->
        for i = 0 to len - 1 do
          a.(i) <- floor_mod a.(i) b.(i)
        done
  | "Maximum" ->
      fun a b len ->
        for i = 0 to len - 1 do
          a.(i) <- Float.max a.(i) b.(i)
        done
  | "Minimum" ->
      fun a b len ->
        for i = 0 to len - 1 do
          a.(i) <- Float.min a.(i) b.(i)
        done
  | "ReluGrad" ->
      fun a b len ->
        for i = 0 to len - 1 do
          a.(i) <- (if a.(i) > 0.0 then b.(i) else 0.0)
        done
  | op -> (
      match binary_fn op with
      | Some f ->
          fun a b len ->
            for i = 0 to len - 1 do
              a.(i) <- f a.(i) b.(i)
            done
      | None -> invalid_arg ("Fused_eval: unknown binary " ^ op))

(* Non-float variant: binary results truncate through int, exactly as a
   chain of standalone [map2_f] kernels would materialize them. The
   generic closure loop is fine here — integer graphs are small. *)
let binary_block_int op : float array -> float array -> int -> unit =
  match binary_fn op with
  | Some f ->
      fun a b len ->
        for i = 0 to len - 1 do
          a.(i) <- float_of_int (int_of_float (f a.(i) b.(i)))
        done
  | None -> invalid_arg ("Fused_eval: unknown binary " ^ op)

(* One compiled step of the stack machine. [Load] fills the next free
   scratch slot from an input for elements [pos .. pos+len); [Un]
   rewrites the top slot in place; [Bin] combines the top two slots
   into the lower one and pops. *)
type step =
  | Load of (float array -> int -> int -> unit)
  | Un of (float array -> int -> unit)
  | Bin of (float array -> float array -> int -> unit)

let compile_steps ~floating ~loads expr =
  List.map
    (fun tok ->
      if String.length tok > 2 && String.sub tok 0 2 = "in" then
        Load loads.(int_of_string (String.sub tok 2 (String.length tok - 2)))
      else if is_unary tok then Un (unary_block tok)
      else Bin (if floating then binary_block tok else binary_block_int tok))
    (to_postfix expr)

let rec stack_depth = function
  | Input _ -> 1
  | Unary (_, e) -> stack_depth e
  (* left-to-right postfix: a's tokens run first, then b's on top *)
  | Binary (_, a, b) -> Stdlib.max (stack_depth a) (1 + stack_depth b)

let root_is_binary = function Binary _ -> true | _ -> false

let eval ?out expr inputs =
  let n_in = Array.length inputs in
  if n_in < num_inputs expr then
    invalid_arg "Fused_eval.eval: expression references missing inputs";
  let dtype = Tensor.dtype inputs.(0) in
  Array.iter
    (fun t ->
      if not (Dtype.equal (Tensor.dtype t) dtype) then
        invalid_arg "Fused_eval.eval: input dtype mismatch")
    inputs;
  let out_shape =
    Array.fold_left
      (fun acc t -> Shape.broadcast acc (Tensor.shape t))
      [||] inputs
  in
  let n = Shape.numel out_shape in
  (* Per-input chunk loads: a blit when the input already has the
     output's element count (its plan is the identity), a fill for
     scalars, the stride plan otherwise. *)
  let loads =
    Array.map
      (fun t ->
        let numel = Tensor.numel t in
        if Dtype.is_floating (Tensor.dtype t) then begin
          let buf = Tensor.float_buffer t in
          if numel = n then fun dst pos len -> Array.blit buf pos dst 0 len
          else if numel = 1 then begin
            let v = buf.(0) in
            fun dst _ len -> Array.fill dst 0 len v
          end
          else begin
            let plan = Tensor.broadcast_plan t out_shape in
            fun dst pos len ->
              for i = 0 to len - 1 do
                dst.(i) <- buf.(Tensor.plan_index plan (pos + i))
              done
          end
        end
        else if numel = n then fun dst pos len ->
          for i = 0 to len - 1 do
            dst.(i) <- Tensor.flat_get_f t (pos + i)
          done
        else if numel = 1 then begin
          let v = Tensor.flat_get_f t 0 in
          fun dst _ len -> Array.fill dst 0 len v
        end
        else begin
          let plan = Tensor.broadcast_plan t out_shape in
          fun dst pos len ->
            for i = 0 to len - 1 do
              dst.(i) <- Tensor.flat_get_f t (Tensor.plan_index plan (pos + i))
            done
        end)
      inputs
  in
  let floating = Dtype.is_floating dtype in
  let steps = compile_steps ~floating ~loads expr in
  let depth = stack_depth expr in
  let out = Tensor.use_or_alloc out n in
  Parallel.parallel_for ~grain:(Tensor.elementwise_grain / 2) n (fun lo hi ->
      let scratch = Array.init depth (fun _ -> Array.make chunk 0.0) in
      let pos = ref lo in
      while !pos < hi do
        let len = Stdlib.min chunk (hi - !pos) in
        let sp = ref 0 in
        List.iter
          (fun s ->
            match s with
            | Load load ->
                load scratch.(!sp) !pos len;
                incr sp
            | Un f -> f scratch.(!sp - 1) len
            | Bin f ->
                f scratch.(!sp - 2) scratch.(!sp - 1) len;
                decr sp)
          steps;
        Array.blit scratch.(0) 0 out !pos len;
        pos := !pos + len
      done);
  if floating then Tensor.of_float_array ~dtype out_shape out
  else if root_is_binary expr then
    (* map2_f materializes integer results through int_of_float ... *)
    Tensor.of_int_array ~dtype out_shape (Array.map int_of_float out)
  else
    (* ... while map_f keeps the float buffer under the integer dtype. *)
    Tensor.of_float_array ~dtype out_shape out
