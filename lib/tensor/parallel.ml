(* Intra-op parallelism: a grain-aware parallel-for sharder.

   The tensor library cannot depend on the runtime's domain pool (the
   dependency points the other way), so the execution backend is a hook:
   [set_backend] is called once at runtime initialisation (see
   {!Octf.Domain_pool}) with a task-submission function. Until a backend
   is installed — or whenever the work is too small, the thread budget
   is 1, or we are already inside a parallel region — [parallel_for]
   degrades to the plain serial loop, so the tensor library works
   standalone and the null-op dispatch path pays only two loads.

   Scheduling is caller-runs: the calling thread claims chunks from an
   atomic counter alongside [shards - 1] helper tasks submitted to the
   backend. The caller always makes progress even if no helper ever
   runs (e.g. every pool worker is busy), so a kernel executing *on* a
   pool worker may shard onto the same pool without risk of deadlock.
   Late helpers find the counter drained and exit immediately.

   Determinism: chunks are contiguous, disjoint index ranges. Kernels
   built on [parallel_for] write disjoint output ranges and keep each
   output element's accumulation order fixed, so results are
   bit-identical for every thread count. *)

let default_threads () =
  match Sys.getenv_opt "OCTF_INTRA_OP_THREADS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> n
      | _ ->
          Printf.eprintf
            "octf: OCTF_INTRA_OP_THREADS must be a positive integer, got %S; \
             using the core count\n\
             %!"
            s;
          Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let threads_cell = Atomic.make (default_threads ())

let threads () = Atomic.get threads_cell

let set_threads n =
  if n < 1 then invalid_arg "Parallel.set_threads: thread count must be >= 1";
  Atomic.set threads_cell n

(* Both hooks are written once during process initialisation, before any
   worker domain exists, and only read afterwards. *)
let backend : ((unit -> unit) -> unit) option ref = ref None

let set_backend submit = backend := Some submit

let shard_hook : (int -> unit) option ref = ref None

let set_shard_hook f = shard_hook := Some f

(* Per-domain state: a re-entrancy flag (nested parallel_for runs
   serially: the outer call already owns the thread budget) and a shard
   counter the executor samples around each kernel to attribute shard
   counts per node. *)
let in_parallel_key = Domain.DLS.new_key (fun () -> ref false)

let shards_key = Domain.DLS.new_key (fun () -> ref 0)

let domain_shards () = !(Domain.DLS.get shards_key)

let default_grain = 1024

let parallel_for ?(grain = default_grain) n body =
  if n > 0 then begin
    let grain = max 1 grain in
    let t = Atomic.get threads_cell in
    let in_parallel = Domain.DLS.get in_parallel_key in
    if t <= 1 || n <= grain || !in_parallel || !backend = None then body 0 n
    else begin
      let shards = min t ((n + grain - 1) / grain) in
      if shards <= 1 then body 0 n
      else begin
        let submit = Option.get !backend in
        let chunk = (n + shards - 1) / shards in
        let next = Atomic.make 0 in
        let mutex = Mutex.create () in
        let finished = Condition.create () in
        let completed = ref 0 in
        let failure = ref None in
        let run_chunks () =
          let flag = Domain.DLS.get in_parallel_key in
          let saved = !flag in
          flag := true;
          let rec loop () =
            let i = Atomic.fetch_and_add next 1 in
            if i < shards then begin
              let lo = i * chunk and hi = min n ((i + 1) * chunk) in
              (try body lo hi
               with e ->
                 Mutex.lock mutex;
                 if !failure = None then failure := Some e;
                 Mutex.unlock mutex);
              Mutex.lock mutex;
              incr completed;
              if !completed = shards then Condition.broadcast finished;
              Mutex.unlock mutex;
              loop ()
            end
          in
          loop ();
          flag := saved
        in
        for _ = 2 to shards do
          submit run_chunks
        done;
        let counter = Domain.DLS.get shards_key in
        counter := !counter + shards;
        (match !shard_hook with None -> () | Some f -> f shards);
        run_chunks ();
        Mutex.lock mutex;
        while !completed < shards do
          Condition.wait finished mutex
        done;
        Mutex.unlock mutex;
        match !failure with Some e -> raise e | None -> ()
      end
    end
  end
