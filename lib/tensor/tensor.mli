(** Dense n-dimensional tensors (§3.1 of the paper).

    All values flowing along dataflow edges are dense tensors with a
    primitive element type. Floating-point data is stored in an OCaml
    [float array] (unboxed); integral data in an [int array]. Sparse
    tensors are represented, as in the paper, by tuples of dense tensors
    (an index vector plus a value matrix) — see {!Octf_nn.Embedding}. *)

type buffer =
  | Float_buf of float array
  | Int_buf of int array
  | Byte_buf of Bytes.t  (** [U8]: packed, one byte per element *)
  | Bool_buf of bool array
  | String_buf of string array

type t = private { dtype : Dtype.t; shape : Shape.t; buf : buffer }

(** {1 Construction} *)

val create : Dtype.t -> Shape.t -> buffer -> t
(** @raise Invalid_argument if the buffer length or kind does not match
    the shape and dtype. *)

val zeros : Dtype.t -> Shape.t -> t

val ones : Dtype.t -> Shape.t -> t

val full : Dtype.t -> Shape.t -> float -> t

val scalar_f : ?dtype:Dtype.t -> float -> t

val scalar_i : ?dtype:Dtype.t -> int -> t

val scalar_b : bool -> t

val scalar_s : string -> t

val of_float_array : ?dtype:Dtype.t -> Shape.t -> float array -> t

val of_int_array : ?dtype:Dtype.t -> Shape.t -> int array -> t

val of_bool_array : Shape.t -> bool array -> t

val of_bytes : Shape.t -> Bytes.t -> t
(** [of_bytes shape b] wraps a packed byte buffer as a [U8] tensor (one
    byte per element, no copy) — the storage form of 8-bit quantized
    codes (§5). *)

val of_string_array : Shape.t -> string array -> t

val init_f : ?dtype:Dtype.t -> Shape.t -> (int array -> float) -> t
(** [init_f shape f] fills element [idx] with [f idx]. *)

val iota : ?dtype:Dtype.t -> int -> t
(** [iota n] is the 1-D integer tensor [0; 1; ...; n-1]. *)

val uniform : ?dtype:Dtype.t -> Rng.t -> Shape.t -> lo:float -> hi:float -> t

val normal :
  ?dtype:Dtype.t -> Rng.t -> Shape.t -> mean:float -> stddev:float -> t

(** {1 Inspection} *)

val dtype : t -> Dtype.t

val shape : t -> Shape.t

val rank : t -> int

val numel : t -> int

val byte_size : t -> int
(** Serialized size in bytes: [numel * Dtype.byte_size dtype]. *)

val get_f : t -> int array -> float
(** Read an element as a float (works on any numeric or bool dtype). *)

val get_i : t -> int array -> int

val get_s : t -> int array -> string

val flat_get_f : t -> int -> float

val flat_get_i : t -> int -> int

val flat_set_f : t -> int -> float -> unit
(** Mutating writes are reserved for kernel implementations (variables own
    their buffers; everything else is copy-on-write by convention). *)

val flat_set_i : t -> int -> int -> unit

val to_float_array : t -> float array
(** A fresh float array of all elements; converts integer/bool data. *)

val to_int_array : t -> int array

val float_buffer : t -> float array
(** The underlying buffer without copy. @raise Invalid_argument if the
    tensor is not float-backed. *)

val int_buffer : t -> int array

val byte_buffer : t -> Bytes.t
(** Packed [U8] backing without copy. @raise Invalid_argument if the
    tensor is not uint8. *)

val bool_buffer : t -> bool array

val string_buffer : t -> string array

(** {1 Transformation} *)

val copy : t -> t

val reshape : t -> Shape.t -> t
(** Shares the buffer. At most one dimension may be [-1] (inferred).
    @raise Invalid_argument if element counts differ. *)

val cast : t -> Dtype.t -> t

val map_f : ?out:float array -> (float -> float) -> t -> t
(** Elementwise map over a float-backed tensor. Large tensors shard
    across the intra-op thread budget (see {!Parallel}); results are
    bit-identical for every thread count. [?out] lets the executor's
    memory planner supply a reusable output buffer (it may alias the
    input's buffer — the loop reads index [i] before writing it);
    buffers of the wrong length are ignored. *)

val map2_f :
  ?out:float array -> (float -> float -> float) -> t -> t -> t
(** Elementwise with numpy-style broadcasting; result dtype is the
    operand dtype (both must match). Sharded like {!map_f}; [?out] as
    in {!map_f}. *)

val broadcast_index : t -> Shape.t -> int -> int
(** [broadcast_index t out_shape] maps a flat index of [out_shape] to
    the flat index of [t] under numpy broadcasting. Partial application
    precomputes the stride plan; the returned function allocates
    nothing, so kernels can iterate an output space once and read every
    operand directly. *)

type bplan
(** A precomputed broadcast stride plan: per-dimension strides into a
    source tensor, with stride 0 on broadcast dimensions. *)

val broadcast_plan : t -> Shape.t -> bplan
(** [broadcast_plan t out_shape] builds the plan {!broadcast_index}
    uses internally; {!plan_index} applies it. Exposed so multi-operand
    kernels (the fused elementwise evaluator) can hold one plan per
    operand and map each output index without per-element closures. *)

val plan_index : bplan -> int -> int

val elementwise_grain : int
(** Minimum flat-index span worth sharding across the intra-op pool;
    below it dispatch overhead beats the loop. *)

val use_or_alloc : float array option -> int -> float array
(** [use_or_alloc out n] returns [out]'s buffer when it has exactly [n]
    elements (the executor's in-place grant), else a fresh pool
    allocation. *)

val map2_cmp : (float -> float -> bool) -> t -> t -> t
(** Broadcasting comparison producing a [Bool] tensor. *)

val fold_f : ('a -> float -> 'a) -> 'a -> t -> 'a

val equal : t -> t -> bool
(** Structural equality: dtype, shape and exact element equality. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Float comparison within absolute tolerance (default [1e-6]). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Compact rendering, truncated for large tensors. *)
