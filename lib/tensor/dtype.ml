type t = F32 | F64 | I32 | I64 | U8 | Bool | String

let equal (a : t) (b : t) = a = b

let to_string = function
  | F32 -> "float32"
  | F64 -> "float64"
  | I32 -> "int32"
  | I64 -> "int64"
  | U8 -> "uint8"
  | Bool -> "bool"
  | String -> "string"

let of_string = function
  | "float32" -> F32
  | "float64" -> F64
  | "int32" -> I32
  | "int64" -> I64
  | "uint8" -> U8
  | "bool" -> Bool
  | "string" -> String
  | s -> invalid_arg ("Dtype.of_string: " ^ s)

let is_floating = function
  | F32 | F64 -> true
  | I32 | I64 | U8 | Bool | String -> false

let is_integer = function
  | I32 | I64 | U8 -> true
  | F32 | F64 | Bool | String -> false

let byte_size = function
  | F32 | I32 -> 4
  | F64 | I64 -> 8
  | U8 | Bool -> 1
  | String -> 0

let pp fmt t = Format.pp_print_string fmt (to_string t)
