(** Domain-safe recycling pool for tensor backing buffers.

    Freed float buffers are binned by exact element count and handed
    back to subsequent allocations of the same size.  Total pooled
    bytes are bounded ([OCTF_BUFFER_POOL_MB], default 256; see
    {!set_limit_mb}) — releases past the bound are dropped and counted
    as evictions.  Taking from the pool is always safe; the releaser
    must guarantee the buffer is unreachable. *)

type stats = {
  hits : int;  (** allocations served from the pool *)
  misses : int;  (** pool-eligible allocations that fell through *)
  evictions : int;  (** releases dropped because the pool was full *)
  pooled_bytes : int;  (** bytes currently held in free lists *)
}

val alloc_float : ?zero:bool -> int -> float array
(** [alloc_float n] returns a float buffer of exactly [n] elements,
    recycled when possible.  [~zero:false] skips clearing a recycled
    buffer — only for callers that overwrite every element.  Small
    allocations bypass the pool. *)

val release_float : float array -> unit
(** Return a buffer to the pool.  Caller asserts no live references. *)

val set_limit_mb : int -> unit
(** Bound the pool's total retained bytes. *)

val stats : unit -> stats
val clear : unit -> unit
(** Drop all pooled buffers and reset counters (tests, benchmarks). *)
