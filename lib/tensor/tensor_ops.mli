(** Mathematical operations on dense tensors.

    These are the pure functions behind the runtime's operation kernels
    (§5 of the paper): elementwise arithmetic with broadcasting, matrix
    multiplication, 2-D convolution and pooling, reductions, array
    manipulation, and the sparse-access primitives (Gather,
    DynamicPartition, DynamicStitch) that §4.2 builds sharded embedding
    layers from. All functions are non-mutating. *)

(** {1 Elementwise (broadcasting)}

    All elementwise ops accept [?out], a preallocated output buffer the
    executor's memory planner may supply when it has proved the buffer
    can be reused in place (it may alias an operand's backing store —
    see {!Tensor.map_f}).  Buffers of the wrong length are ignored. *)

val add : ?out:float array -> Tensor.t -> Tensor.t -> Tensor.t

val sub : ?out:float array -> Tensor.t -> Tensor.t -> Tensor.t

val mul : ?out:float array -> Tensor.t -> Tensor.t -> Tensor.t

val div : ?out:float array -> Tensor.t -> Tensor.t -> Tensor.t

val maximum : ?out:float array -> Tensor.t -> Tensor.t -> Tensor.t

val minimum : ?out:float array -> Tensor.t -> Tensor.t -> Tensor.t

val pow : ?out:float array -> Tensor.t -> Tensor.t -> Tensor.t

val modulo : ?out:float array -> Tensor.t -> Tensor.t -> Tensor.t
(** Floor-mod with TensorFlow FloorMod semantics: the result has the
    divisor's sign and [modulo x y = x - floor(x / y) * y] for fractional
    operands (no truncation to integer). *)

val neg : ?out:float array -> Tensor.t -> Tensor.t

val abs : ?out:float array -> Tensor.t -> Tensor.t

val sign : ?out:float array -> Tensor.t -> Tensor.t

val exp : ?out:float array -> Tensor.t -> Tensor.t

val log : ?out:float array -> Tensor.t -> Tensor.t

val sqrt : ?out:float array -> Tensor.t -> Tensor.t

val square : ?out:float array -> Tensor.t -> Tensor.t

val reciprocal : ?out:float array -> Tensor.t -> Tensor.t

val relu : ?out:float array -> Tensor.t -> Tensor.t

val relu_grad : ?out:float array -> Tensor.t -> Tensor.t -> Tensor.t
(** [relu_grad dy x] is [dy] where [x > 0], else [0]. *)

val sigmoid : ?out:float array -> Tensor.t -> Tensor.t

val tanh : ?out:float array -> Tensor.t -> Tensor.t

(** {1 Comparison and selection} *)

val equal : Tensor.t -> Tensor.t -> Tensor.t

val less : Tensor.t -> Tensor.t -> Tensor.t

val greater : Tensor.t -> Tensor.t -> Tensor.t

val greater_equal : Tensor.t -> Tensor.t -> Tensor.t

val select : Tensor.t -> Tensor.t -> Tensor.t -> Tensor.t
(** [select cond a b]: elementwise [if cond then a else b]; [cond] is a
    bool (or numeric, non-zero = true) tensor broadcastable against
    [a]/[b]. Single broadcast-indexed pass: only the output is
    allocated. *)

(** {1 Linear algebra} *)

val matmul :
  ?transpose_a:bool -> ?transpose_b:bool -> Tensor.t -> Tensor.t -> Tensor.t
(** 2-D matrix product. All four transpose variants run the same
    cache-blocked kernel (transposed operands are packed first), row-
    sharded across the intra-op thread budget ({!Parallel}); results are
    bit-identical for every thread count.
    @raise Invalid_argument on non-2-D input or inner dimension
    mismatch. *)

val transpose : ?perm:int array -> Tensor.t -> Tensor.t
(** General axis permutation; default reverses all axes. *)

(** {1 Reductions} *)

val reduce_sum : ?axes:int list -> ?keep_dims:bool -> Tensor.t -> Tensor.t

val reduce_mean : ?axes:int list -> ?keep_dims:bool -> Tensor.t -> Tensor.t

val reduce_max : ?axes:int list -> ?keep_dims:bool -> Tensor.t -> Tensor.t

val argmax : Tensor.t -> axis:int -> Tensor.t
(** Integer tensor of indices of maxima along [axis]. *)

(** {1 Array manipulation} *)

val concat : Tensor.t list -> axis:int -> Tensor.t

val split : Tensor.t -> axis:int -> num:int -> Tensor.t list
(** Even split. @raise Invalid_argument if the axis is not divisible. *)

val slice : Tensor.t -> begin_:int array -> size:int array -> Tensor.t

val pad : Tensor.t -> paddings:(int * int) array -> Tensor.t
(** Zero padding; [paddings.(i)] is [(before, after)] for axis [i]. *)

val tile : Tensor.t -> multiples:int array -> Tensor.t

val broadcast_to : Tensor.t -> Shape.t -> Tensor.t

val one_hot : Tensor.t -> depth:int -> Tensor.t
(** [one_hot indices ~depth] appends a size-[depth] one-hot axis. *)

(** {1 Sparse access primitives (§4.2)} *)

val gather : Tensor.t -> Tensor.t -> Tensor.t
(** [gather params indices] selects rows (axis 0) of [params]; the result
    shape is [shape indices @ (shape params).(1..)]. *)

val scatter_add : Tensor.t -> Tensor.t -> Tensor.t -> Tensor.t
(** [scatter_add acc indices updates] returns a copy of [acc] with
    [updates] rows added at [indices] (duplicates accumulate). *)

val dynamic_partition : Tensor.t -> Tensor.t -> num:int -> Tensor.t list
(** [dynamic_partition data partitions ~num] splits rows of [data] into
    [num] tensors according to the partition id of each row. *)

val dynamic_stitch : Tensor.t list -> Tensor.t list -> Tensor.t
(** [dynamic_stitch indices data] inverts {!dynamic_partition}: element
    rows of [data.(p)] land at row [indices.(p).(i)] of the result. *)

(** {1 Neural-network math} *)

type padding = Same | Valid

val conv_dim :
  padding:padding -> in_size:int -> filter:int -> stride:int -> int * int
(** [(out_size, pad_before)] for one spatial axis — the arithmetic
    shared by [conv2d], its gradients, and the quantized convolution
    ({!Octf.Quant_kernels}). *)

val conv2d :
  Tensor.t -> Tensor.t -> strides:int * int -> padding:padding -> Tensor.t
(** [conv2d input filter]: input is NHWC [batch; h; w; in_c], filter is
    [fh; fw; in_c; out_c]. *)

val conv2d_grad_input :
  input_shape:Shape.t ->
  Tensor.t ->
  Tensor.t ->
  strides:int * int ->
  padding:padding ->
  Tensor.t
(** Gradient of conv2d w.r.t. its input: [conv2d_grad_input ~input_shape
    filter dy]. *)

val conv2d_grad_filter :
  filter_shape:Shape.t ->
  Tensor.t ->
  Tensor.t ->
  strides:int * int ->
  padding:padding ->
  Tensor.t
(** Gradient of conv2d w.r.t. the filter: [conv2d_grad_filter
    ~filter_shape input dy]. *)

val max_pool :
  Tensor.t -> ksize:int * int -> strides:int * int -> padding:padding ->
  Tensor.t

val max_pool_grad :
  Tensor.t ->
  Tensor.t ->
  ksize:int * int ->
  strides:int * int ->
  padding:padding ->
  Tensor.t
(** [max_pool_grad input dy ...] routes [dy] back to each window's argmax. *)

val avg_pool :
  Tensor.t -> ksize:int * int -> strides:int * int -> padding:padding ->
  Tensor.t

val softmax : Tensor.t -> Tensor.t
(** Row softmax of a 2-D tensor (numerically stabilized). *)

val log_softmax : Tensor.t -> Tensor.t

val softmax_cross_entropy : logits:Tensor.t -> labels:Tensor.t -> Tensor.t
(** Per-example loss vector; [labels] is a distribution per row. *)

val softmax_cross_entropy_grad :
  logits:Tensor.t -> labels:Tensor.t -> Tensor.t
(** d(sum of per-example losses)/d(logits) = softmax(logits) - labels. *)
