(** Intra-op parallelism: a grain-aware parallel-for over worker threads.

    The second parallelism axis of the paper's CPU kernels (§3.1, §5):
    where {!Octf.Scheduler} runs {e independent} dataflow nodes
    concurrently (inter-op), this module shards the element loop of a
    {e single} kernel across cores (intra-op), the way Eigen's device
    threadpool does for TensorFlow's CPU kernels.

    The module is backend-agnostic: the runtime installs a
    task-submission function at initialisation ({!Octf.Domain_pool}
    wires itself in), and until then every [parallel_for] is a plain
    serial loop. Scheduling is caller-runs — the calling thread claims
    chunks alongside the submitted helpers — so a kernel already running
    on a pool worker can shard onto the same pool without deadlock, and
    small loops never pay a dispatch.

    Kernels built on this module are deterministic: shards are disjoint
    contiguous ranges and every output element's accumulation order is
    independent of the shard layout, so results are bit-identical across
    thread counts (see the intra-op test suite). *)

val threads : unit -> int
(** The current intra-op thread budget. Defaults to
    [Domain.recommended_domain_count ()], overridden by the
    [OCTF_INTRA_OP_THREADS] environment variable. *)

val set_threads : int -> unit
(** Set the process-wide intra-op thread budget (a hardware-resource
    knob, like TensorFlow's [intra_op_parallelism_threads]). [1] makes
    every kernel run its serial loop.
    @raise Invalid_argument when the count is < 1. *)

val parallel_for : ?grain:int -> int -> (int -> int -> unit) -> unit
(** [parallel_for ~grain n body] executes [body lo hi] over disjoint
    contiguous chunks covering [0, n). Runs serially (one [body 0 n]
    call on the calling thread) when [n <= grain], the thread budget is
    1, no backend is installed, or the caller is already inside a
    [parallel_for] (no nested parallelism). Otherwise splits into at
    most [threads ()] chunks of at least [grain] items and runs them on
    the backend plus the calling thread. [grain] defaults to 1024 items;
    pass the per-item cost scaled value for expensive bodies.

    Exceptions raised by [body] are re-raised on the calling thread
    after all chunks finish. [body] must not block. *)

val domain_shards : unit -> int
(** Shards dispatched by [parallel_for] calls made {e from this domain}
    since process start. The executor samples this around a kernel
    invocation to attribute per-node shard counts in {!Octf.Step_stats}. *)

(** {1 Runtime wiring} *)

val set_backend : ((unit -> unit) -> unit) -> unit
(** Install the helper-task submission function. Called once at runtime
    initialisation by {!Octf.Domain_pool}; tasks must run eventually and
    must not be dropped. *)

val set_shard_hook : (int -> unit) -> unit
(** Install an observability callback invoked with the shard count of
    every parallel (non-serial) [parallel_for]; {!Octf} points it at the
    process metrics registry. *)
