(** Element types for tensors.

    The paper (§3.1) models all data as dense tensors whose elements have
    one of a small number of primitive types. We support the types the
    experiments need: 32/64-bit floats, 32/64-bit integers, unsigned
    8-bit integers (quantized codes, §5), booleans and strings. Floats
    are stored in OCaml [float array]s (64-bit); [F32] is a semantic tag
    that affects serialization width, not storage. [U8] tensors are
    packed one byte per element ([Bytes.t] backing), which is what buys
    quantized weights their ~4x memory cut over [F32]. *)

type t = F32 | F64 | I32 | I64 | U8 | Bool | String

val equal : t -> t -> bool

val to_string : t -> string

val of_string : string -> t
(** Inverse of {!to_string}. @raise Invalid_argument on unknown names. *)

val is_floating : t -> bool

val is_integer : t -> bool

val byte_size : t -> int
(** Serialized width of one element in bytes; 0 for [String] (variable). *)

val pp : Format.formatter -> t -> unit
