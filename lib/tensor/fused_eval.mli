(** Single-pass evaluator for fused elementwise expressions.

    The optimizer's Fuse pass collapses a tree of pure elementwise
    operations into one [FusedElementwise] node whose "expr" attribute
    is {!to_postfix} of the tree; the kernel parses it back with
    {!of_postfix} and runs {!eval}. Evaluation is bit-identical to
    executing the original operations one kernel at a time: every
    operation applies the same scalar primitive in the same operand
    order, broadcast projections compose (an input's stride plan
    against the final output shape equals the chained per-op plans),
    and non-float binary results truncate through [int_of_float]
    exactly where a standalone [Tensor.map2_f] would have. *)

type expr =
  | Input of int  (** [Input k]: the fused node's k-th data input *)
  | Unary of string * expr  (** graph op_type, e.g. ["Neg"], ["Tanh"] *)
  | Binary of string * expr * expr  (** e.g. ["Add"], ["ReluGrad"] *)

val is_unary : string -> bool
(** Ops eligible as fused unaries: Neg, Abs, Sign, Exp, Log, Sqrt,
    Square, Reciprocal, Relu, Sigmoid, Tanh. *)

val is_binary : string -> bool
(** Ops eligible as fused binaries: Add, Sub, Mul, Div, Pow, Mod,
    Maximum, Minimum, ReluGrad. *)

val num_inputs : expr -> int
(** [1 + ] the highest input index referenced. *)

val op_count : expr -> int
(** Number of operation nodes in the expression (the fused group's
    original size, minus any absorbed AddN arity adjustments). *)

val to_postfix : expr -> string list
(** Serialize to postfix tokens: ["in<k>"] for inputs, the op_type for
    operations. *)

val of_postfix : string list -> expr
(** @raise Invalid_argument on unknown tokens or stack mismatch. *)

val eval : ?out:float array -> expr -> Tensor.t array -> Tensor.t
(** Evaluate over the inputs' broadcast shape in one sharded pass.
    [?out] accepts the executor's in-place grant exactly as
    {!Tensor.map_f} does (ignored unless its length matches the output
    element count).
    @raise Invalid_argument on missing inputs or dtype mismatch. *)
